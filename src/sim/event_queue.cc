#include "event_queue.hh"

#include "util/logging.hh"

namespace psm::sim
{

void
EventQueue::schedule(Tick when, Callback cb, std::string label)
{
    psm_assert(cb != nullptr);
    heap.push(Event{when, next_seq++, std::move(label), std::move(cb)});
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t fired = 0;
    while (!heap.empty() && heap.top().when <= now) {
        // Move out before pop (the callback may schedule more events,
        // invalidating top()).  priority_queue::top() is const, but
        // popping immediately after makes the moved-from state
        // unobservable — this avoids re-allocating the callback and
        // label on every fire, which matters once open-loop arrival
        // streams keep the queue hot.
        Event ev = std::move(const_cast<Event &>(heap.top()));
        heap.pop();
        ev.cb(ev.when);
        ++fired;
    }
    return fired;
}

Tick
EventQueue::nextEventTime() const
{
    return heap.empty() ? maxTick : heap.top().when;
}

} // namespace psm::sim
