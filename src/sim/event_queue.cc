#include "event_queue.hh"

#include "util/logging.hh"

namespace psm::sim
{

void
EventQueue::schedule(Tick when, Callback cb, std::string label)
{
    psm_assert(cb != nullptr);
    heap.push(Event{when, next_seq++, std::move(label), std::move(cb)});
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t fired = 0;
    while (!heap.empty() && heap.top().when <= now) {
        // Copy out before pop: the callback may schedule more events.
        Event ev = heap.top();
        heap.pop();
        ev.cb(ev.when);
        ++fired;
    }
    return fired;
}

Tick
EventQueue::nextEventTime() const
{
    return heap.empty() ? maxTick : heap.top().when;
}

} // namespace psm::sim
