#include "server.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::sim
{

Server::Server(const power::PlatformConfig &config, Tick step_size)
    : config(config), model(config), step_ticks(step_size),
      socket_owner(static_cast<std::size_t>(config.sockets), -1)
{
    psm_assert(step_size > 0);
    config.validate();
}

power::RaplDomainId
Server::packageDomain(int socket) const
{
    psm_assert(socket >= 0 && socket < config.sockets);
    return socket == 0 ? power::RaplDomainId::Package0
                       : power::RaplDomainId::Package1;
}

power::RaplDomainId
Server::dramDomain(int socket) const
{
    psm_assert(socket >= 0 && socket < config.sockets);
    return socket == 0 ? power::RaplDomainId::Dram0
                       : power::RaplDomainId::Dram1;
}

int
Server::admit(const perf::AppProfile &profile)
{
    auto free_it = std::find(socket_owner.begin(), socket_owner.end(),
                             -1);
    if (free_it == socket_owner.end()) {
        fatal("server has no free socket for '%s'",
              profile.name.c_str());
    }
    int socket = static_cast<int>(free_it - socket_owner.begin());
    int id = next_app_id++;
    resident.emplace(id, std::make_unique<Application>(id, socket,
                                                       config,
                                                       profile));
    *free_it = id;
    return id;
}

void
Server::remove(int id)
{
    auto it = resident.find(id);
    psm_assert(it != resident.end());
    int socket = it->second->socket();
    socket_owner[static_cast<std::size_t>(socket)] = -1;
    resident.erase(it);
}

bool
Server::hasApp(int id) const
{
    return resident.count(id) > 0;
}

Application &
Server::app(int id)
{
    auto it = resident.find(id);
    psm_assert(it != resident.end());
    return *it->second;
}

const Application &
Server::app(int id) const
{
    auto it = resident.find(id);
    psm_assert(it != resident.end());
    return *it->second;
}

std::vector<Application *>
Server::apps()
{
    std::vector<Application *> out;
    out.reserve(resident.size());
    for (auto &[id, app] : resident)
        out.push_back(app.get());
    return out;
}

std::vector<const Application *>
Server::apps() const
{
    std::vector<const Application *> out;
    out.reserve(resident.size());
    for (const auto &[id, app] : resident)
        out.push_back(app.get());
    return out;
}

std::vector<Application *>
Server::activeApps()
{
    std::vector<Application *> out;
    for (auto &[id, app] : resident)
        if (!app->finished())
            out.push_back(app.get());
    return out;
}

int
Server::freeSockets() const
{
    return static_cast<int>(
        std::count(socket_owner.begin(), socket_owner.end(), -1));
}

void
Server::setPackageLimit(int socket, Watts limit)
{
    rapl_if.domain(packageDomain(socket)).setPowerLimit(limit);
}

void
Server::clearPackageLimit(int socket)
{
    rapl_if.domain(packageDomain(socket)).clearPowerLimit();
}

void
Server::attachEsd(const esd::BatteryConfig &esd_config)
{
    battery_state.emplace(esd_config);
}

esd::Battery *
Server::battery()
{
    return hasEsd() ? &battery_state->battery : nullptr;
}

const esd::Battery *
Server::battery() const
{
    return hasEsd() ? &battery_state->battery : nullptr;
}

esd::Battery *
Server::installedBattery()
{
    return battery_state ? &battery_state->battery : nullptr;
}

Watts
Server::observedAppPower(int id) const
{
    const Application &a = app(id);
    Watts pkg = rapl_if.domain(packageDomain(a.socket()))
                    .windowAveragePower();
    Watts dram = rapl_if.domain(dramDomain(a.socket()))
                     .windowAveragePower();
    return pkg + dram;
}

Watts
Server::observedAppDramPower(int id) const
{
    const Application &a = app(id);
    return rapl_if.domain(dramDomain(a.socket())).windowAveragePower();
}

Watts
Server::observedServerPower() const
{
    return config.idlePower +
           (was_active ? config.cmPower : 0.0) +
           rapl_if.totalWindowPower();
}

StepResult
Server::step()
{
    StepResult result;
    result.start = clock;
    result.duration = step_ticks;

    bool any_active = false;
    for (auto &[id, app] : resident)
        any_active |= app->running();

    result.breakdown = model.beginBreakdown(any_active, 0);

    // Charge the PC6 exit energy once per sleep -> active transition.
    if (any_active && !was_active && clock > 0) {
        result.breakdown.uncore +=
            model.uncore().wakeEnergy() / toSeconds(step_ticks);
        ++pc6_wakes;
    }
    if (!any_active)
        pc6_time += step_ticks;

    // Sockets with no running application still advance their RAPL
    // windows (with zero draw), so stale samples age out and software
    // reads honest post-departure averages.
    std::vector<bool> socket_active(
        static_cast<std::size_t>(config.sockets), false);
    for (auto &[id, app] : resident)
        if (app->running())
            socket_active[static_cast<std::size_t>(app->socket())] =
                true;
    for (int s = 0; s < config.sockets; ++s) {
        if (!socket_active[static_cast<std::size_t>(s)]) {
            rapl_if.recordEnergy(packageDomain(s), 0.0, step_ticks);
            rapl_if.recordEnergy(dramDomain(s), 0.0, step_ticks);
        }
    }

    for (auto &[id, app] : resident) {
        if (!app->running()) {
            // Open-loop clients don't pause with the server: a
            // suspended interactive app keeps accumulating arrivals.
            app->advanceIdleQueue(clock, step_ticks);
            continue;
        }
        // RAPL package enforcement: translate the required power
        // reduction into a frequency multiplier via the inverse of
        // the power-frequency curve, as the hardware's running
        // average controller does.
        double power_ratio =
            rapl_if.domain(packageDomain(app->socket()))
                .throttleFactor();
        double freq_throttle =
            model.cores().inverseFreqFactor(power_ratio);
        AppStepResult app_res =
            app->step(clock, step_ticks, freq_throttle, 1.0);

        power::AppPower ap;
        ap.app = app->name();
        ap.core = app_res.op.corePower;
        ap.dram = app_res.op.dramPower;
        ap.base = app_res.op.basePower;
        result.breakdown.apps.push_back(ap);

        rapl_if.recordEnergy(packageDomain(app->socket()),
                             ap.core + ap.base, step_ticks);
        rapl_if.recordEnergy(dramDomain(app->socket()), ap.dram,
                             step_ticks);

        if (app->finished())
            result.finished.push_back(id);
    }

    if (battery_state && esd_available) {
        esd::ChargeController controller(battery_state->battery);
        Watts demand = result.breakdown.serverPower();
        esd::EsdFlow planned = controller.plan(demand, power_cap,
                                               esd_charge);
        esd::EsdFlow actual = controller.apply(planned, step_ticks);
        result.breakdown.esdCharge = actual.charge;
        result.breakdown.esdDischarge = actual.discharge;
    } else if (battery_state) {
        // Installed but unavailable: no controlled flows, the cells
        // still self-discharge.
        battery_state->battery.rest(step_ticks);
    }

    power_meter.push(clock, step_ticks, result.breakdown.wallPower(),
                     power_cap);

    was_active = any_active;
    clock += step_ticks;
    return result;
}

std::vector<int>
Server::run(Tick duration)
{
    std::vector<int> finished;
    Tick end = clock + duration;
    while (clock < end) {
        StepResult res = step();
        finished.insert(finished.end(), res.finished.begin(),
                        res.finished.end());
    }
    return finished;
}

} // namespace psm::sim
