/**
 * @file
 * Open-loop request queue for interactive (latency-critical)
 * applications.
 *
 * The paper's evaluation covers throughput batch apps; CuttleSys's
 * regime — request servers whose p99 must survive a shared power cap —
 * needs an arrival process the allocator cannot slow down.  This
 * module simulates exactly that: a seeded Poisson arrival stream
 * scheduled on a private sim::EventQueue, a FIFO single-server queue
 * whose service rate is the application's (power-dependent, warmup-
 * scaled) heartbeat rate divided by the mean request cost, and
 * exponential per-request work draws — so at a fixed knob setting the
 * queue is M/M/1 and perf::LatencyModel is its closed-form cross-check
 * (bench_slo --check enforces the agreement at low utilization).
 *
 * Determinism: all draws come from one seeded Rng consumed in event
 * order, arrivals are tick-quantized through the EventQueue, and
 * service is integrated in continuous time between event boundaries.
 * Identical step sequences (which NodePool guarantees at any
 * PSM_THREADS width and shard size) therefore reproduce response
 * times bit-for-bit.
 */

#ifndef PSM_SIM_REQUEST_QUEUE_HH
#define PSM_SIM_REQUEST_QUEUE_HH

#include <cstdint>
#include <deque>

#include "event_queue.hh"
#include "perf/app_profile.hh"
#include "util/stats.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace psm::sim
{

/**
 * Per-application open-loop queue: Poisson arrivals at the profile's
 * offered load, exponential service demands with mean hbPerRequest
 * heartbeats, FIFO service at whatever heartbeat rate each simulation
 * step delivers.
 */
class RequestQueue
{
  public:
    /**
     * @param profile An interactive profile (fatal()s otherwise).
     * @param seed Seed for the arrival/service draw stream.
     */
    RequestQueue(const perf::AppProfile &profile, std::uint64_t seed);

    /**
     * Advance the queue over [from, to) while the server earns
     * heartbeats at @p hb_rate (the step's operating-point rate times
     * any warmup factor).  Fires the arrivals falling inside the
     * window and serves the queue FIFO between them; a non-positive
     * rate stalls service but not arrivals.
     */
    void advance(Tick from, Tick to, double hb_rate);

    // --- Statistics -------------------------------------------------

    std::uint64_t arrivals() const { return arrived; }
    std::uint64_t completed() const { return done; }
    std::uint64_t sloViolations() const { return violations; }

    /** Fraction of completed requests over their SLO (0 when none
     * completed yet). */
    double violationFraction() const
    {
        return done > 0
                   ? static_cast<double>(violations) /
                         static_cast<double>(done)
                   : 0.0;
    }

    /** Observed 99th-percentile response time in seconds (0 until a
     * request completes). */
    double p99() const { return response_hist.percentile(99.0); }

    /** Mean response time over completed requests in seconds. */
    double meanResponse() const
    {
        return done > 0 ? response_sum / static_cast<double>(done) : 0.0;
    }

    /** Requests currently queued or in service. */
    std::size_t depth() const { return pending.size(); }

    /** The profile's p99 SLO in seconds. */
    double slo() const { return slo_p99; }

    /** The response-time histogram (seconds). */
    const Histogram &responseTimes() const { return response_hist; }

  private:
    struct Request
    {
        double arrivalSec;  ///< continuous arrival time
        double workHb;      ///< remaining service demand in heartbeats
    };

    /** Serve the FIFO over [t0, t1) at a constant heartbeat rate. */
    void serve(Tick t0, Tick t1, double hb_rate);

    /** Record one arrival and schedule the next. */
    void onArrival();

    double offered_load;  ///< lambda, requests per second
    double hb_per_request;
    double slo_p99;

    Rng rng;
    EventQueue events;
    double next_arrival_s = 0.0;
    double served_until_s = 0.0;
    std::deque<Request> pending;

    std::uint64_t arrived = 0;
    std::uint64_t done = 0;
    std::uint64_t violations = 0;
    double response_sum = 0.0;
    Histogram response_hist;
};

} // namespace psm::sim

#endif // PSM_SIM_REQUEST_QUEUE_HH
