/**
 * @file
 * Runtime state of one application executing on the simulated server.
 *
 * Wraps the analytic PerfModel with everything that changes over time:
 * progress toward completion, the current knob setting, suspension for
 * temporal coordination (with the cache-flush penalty the paper notes
 * for duty cycling), and execution phases that change the workload's
 * compute/memory balance mid-run (the trigger for event E4).
 */

#ifndef PSM_SIM_APPLICATION_HH
#define PSM_SIM_APPLICATION_HH

#include <memory>
#include <string>
#include <vector>

#include "perf/heartbeats.hh"
#include "perf/perf_model.hh"
#include "power/platform.hh"
#include "request_queue.hh"
#include "util/units.hh"

namespace psm::sim
{

/** Lifecycle state of a simulated application. */
enum class AppState
{
    Running,   ///< making progress
    Suspended, ///< duty-cycled off (SIGSTOP in the paper's framework)
    Finished,  ///< all heartbeats completed
};

/** Printable name of an AppState. */
std::string appStateName(AppState state);

/**
 * One execution phase: active until the application has completed
 * @c untilFraction of its heartbeats, scaling per-heartbeat work.
 */
struct Phase
{
    double untilFraction = 1.0; ///< progress fraction where it ends
    double cpuScale = 1.0;      ///< multiplier on compute per beat
    double memScale = 1.0;      ///< multiplier on traffic per beat
};

/** What one simulation step did for an application. */
struct AppStepResult
{
    perf::OperatingPoint op; ///< operating point over the step
    double beats = 0.0;      ///< heartbeats earned
};

/**
 * An application instance resident on a server.
 */
class Application
{
  public:
    /**
     * @param id Server-assigned identifier.
     * @param socket Socket (and memory channel) hosting the app.
     * @param config Platform calibration.
     * @param profile Workload description.
     */
    Application(int id, int socket,
                const power::PlatformConfig &config,
                perf::AppProfile profile);

    int id() const { return app_id; }
    int socket() const { return home_socket; }
    const std::string &name() const { return model.profile().name; }
    const perf::PerfModel &perf() const { return model; }
    const perf::Heartbeats &heartbeats() const { return beats; }

    AppState state() const { return run_state; }
    bool running() const { return run_state == AppState::Running; }
    bool finished() const { return run_state == AppState::Finished; }

    /** Completed fraction of the job in [0, 1]. */
    double progress() const;

    const power::KnobSetting &knobs() const { return setting; }
    /** Actuate the three power knobs (clamped to platform ranges). */
    void setKnobs(const power::KnobSetting &knobs);

    /** Replace the phase script (fractions must be increasing). */
    void setPhases(std::vector<Phase> phases);
    /** The phase active at the current progress. */
    const Phase &currentPhase() const;

    /**
     * Duty-cycle the application off.  Its private-cache state is
     * flushed; resuming pays a warm-up penalty.  No-op when already
     * suspended or finished.
     */
    void suspend(Tick now);

    /** Resume a suspended application. */
    void resume(Tick now);

    /**
     * Advance the application by @p dt while Running.
     *
     * @param now Interval start time.
     * @param dt Interval length.
     * @param freq_throttle Package RAPL enforcement factor (0, 1].
     * @param bw_throttle DRAM enforcement factor (0, 1].
     * @return Operating point and heartbeats earned; all-zero result
     *         when not Running.
     */
    AppStepResult step(Tick now, Tick dt, double freq_throttle = 1.0,
                       double bw_throttle = 1.0);

    /** Remaining warm-up time after the latest resume. */
    Tick warmupRemaining() const { return warmup_left; }

    /** Total time spent suspended. */
    Tick suspendedTime() const { return suspended_time; }

    /** True for the interactive (latency-critical) class. */
    bool interactive() const { return model.profile().interactive(); }

    /**
     * The open-loop request queue; nullptr for batch applications.
     * Seeded deterministically from the app id and profile name, so
     * the same placement reproduces the same arrival stream.
     */
    RequestQueue *requestQueue() { return req_queue.get(); }
    const RequestQueue *requestQueue() const { return req_queue.get(); }

    /**
     * Let an interactive app's open-loop arrivals accumulate while it
     * is not Running (suspension stops service, not clients).  No-op
     * for batch applications or when Running (step() advances the
     * queue itself then).
     */
    void advanceIdleQueue(Tick now, Tick dt);

  private:
    int app_id;
    int home_socket;
    perf::PerfModel model;
    perf::Heartbeats beats;
    power::KnobSetting setting;
    AppState run_state = AppState::Running;
    std::vector<Phase> phases;
    double done_beats = 0.0;
    std::unique_ptr<RequestQueue> req_queue;
    Tick warmup_left = 0;
    Tick suspended_time = 0;
    Tick suspended_since = 0;

    /** Warm-up duration implied by the profile's resident state. */
    Tick warmupDuration() const;
};

} // namespace psm::sim

#endif // PSM_SIM_APPLICATION_HH
