/**
 * @file
 * The simulated shared server: the paper's evaluation platform as a
 * digital twin.
 *
 * Hosts up to one application per socket (the paper's co-location
 * setup), aggregates power per Eq. 2, meters it against the cap,
 * maintains the emulated RAPL counters/limits that the management
 * framework observes and actuates, and integrates an optional energy
 * storage device.
 *
 * The server itself is policy-free: it faithfully executes whatever
 * knob settings, suspensions and ESD charge windows the management
 * layer (src/core) requests, including bad ones — cap violations are
 * recorded, not prevented.
 */

#ifndef PSM_SIM_SERVER_HH
#define PSM_SIM_SERVER_HH

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "application.hh"
#include "esd/battery.hh"
#include "esd/charge_controller.hh"
#include "perf/app_profile.hh"
#include "power/platform.hh"
#include "power/power_meter.hh"
#include "power/rapl.hh"
#include "power/server_power.hh"
#include "util/units.hh"

namespace psm::sim
{

/** Everything that happened during one simulation step. */
struct StepResult
{
    Tick start = 0;                      ///< step start time
    Tick duration = 0;                   ///< step length
    power::PowerBreakdown breakdown;     ///< power flows of the step
    std::vector<int> finished;           ///< apps that completed
};

/**
 * One shared server.
 */
class Server
{
  public:
    /**
     * @param config Platform description (must outlive the server).
     * @param step_size Simulation step; power is piecewise constant
     *        over a step.
     */
    explicit Server(
        const power::PlatformConfig &config = power::defaultPlatform(),
        Tick step_size = ticksPerMs * 10);

    const power::PlatformConfig &platform() const { return config; }
    const power::ServerPowerModel &powerModel() const { return model; }
    Tick stepSize() const { return step_ticks; }
    Tick now() const { return clock; }

    // --- Application lifecycle --------------------------------------

    /**
     * Admit an application onto a free socket.
     *
     * @return The new application's id.
     *
     * Calls fatal() when no socket is free — the cluster manager is
     * responsible for not over-packing servers.
     */
    int admit(const perf::AppProfile &profile);

    /** Remove a (typically finished) application, freeing its socket. */
    void remove(int id);

    bool hasApp(int id) const;
    Application &app(int id);
    const Application &app(int id) const;

    /** All resident applications in admission order. */
    std::vector<Application *> apps();
    std::vector<const Application *> apps() const;

    /** Resident applications that have not finished. */
    std::vector<Application *> activeApps();

    /** Number of free sockets. */
    int freeSockets() const;

    // --- Power control ----------------------------------------------

    /** Set the server power cap P_cap used for metering. */
    void setCap(Watts cap) { power_cap = cap; }
    Watts cap() const { return power_cap; }

    /**
     * Program a package RAPL limit for a socket (limits that socket's
     * core + per-app base power via frequency throttling) — the
     * enforcement knob of the Util-Unaware baseline.
     */
    void setPackageLimit(int socket, Watts limit);
    void clearPackageLimit(int socket);

    /** Attach an energy storage device (replaces any existing one). */
    void attachEsd(const esd::BatteryConfig &esd_config);

    /**
     * An ESD is usable when one is installed AND currently available.
     * Fault injection can mark an installed ESD unavailable (BMS
     * fault, maintenance pull); while unavailable the management
     * plane sees hasEsd() == false and battery() == nullptr, and the
     * physical battery only self-discharges.
     */
    bool hasEsd() const
    {
        return battery_state.has_value() && esd_available;
    }

    /** True when an ESD is physically installed (even if faulted). */
    bool esdInstalled() const { return battery_state.has_value(); }

    /** Mark the installed ESD available/unavailable (fault hook). */
    void setEsdAvailable(bool available) { esd_available = available; }
    bool esdAvailable() const { return esd_available; }

    esd::Battery *battery();
    const esd::Battery *battery() const;

    /**
     * The physical battery regardless of availability (nullptr only
     * when none is installed) — for fault hooks such as capacity
     * fade, which age the hardware whether or not the management
     * plane can reach it.
     */
    esd::Battery *installedBattery();

    /** Configuration of the attached ESD (requires hasEsd()). */
    const esd::BatteryConfig &esdConfig() const
    {
        return battery_state->battery.config();
    }

    /**
     * Allow or forbid ESD charging.  Discharge needs no permission:
     * whenever server demand exceeds the cap and charge is off, the
     * ESD bridges what it can (Eq. 4).
     */
    void setEsdChargeEnabled(bool enabled) { esd_charge = enabled; }
    bool esdChargeEnabled() const { return esd_charge; }

    // --- Observation (the framework's view) --------------------------

    const power::RaplInterface &rapl() const { return rapl_if; }
    const power::PowerMeter &meter() const { return power_meter; }

    /**
     * The app's power draw as software would measure it: the window
     * averages of its socket's package and DRAM RAPL domains.
     */
    Watts observedAppPower(int id) const;

    /** The DRAM share of observedAppPower(). */
    Watts observedAppDramPower(int id) const;

    /** Window-average wall power (all RAPL domains + constants). */
    Watts observedServerPower() const;

    /**
     * Total time both packages have spent in deep sleep (PC6) — no
     * application running anywhere.  The Fig. 10 discussion's point:
     * the server is never switched off, only the sockets sleep, with
     * wake-ups in hundreds of microseconds.
     */
    Tick packageSleepTime() const { return pc6_time; }

    /** Number of PC6 exit (wake) transitions. */
    std::size_t packageWakeCount() const { return pc6_wakes; }

    // --- Simulation ---------------------------------------------------

    /** Advance one step. */
    StepResult step();

    /**
     * Step repeatedly for @p duration; returns ids of apps that
     * finished along the way.
     */
    std::vector<int> run(Tick duration);

  private:
    const power::PlatformConfig &config;
    power::ServerPowerModel model;
    power::RaplInterface rapl_if;
    power::PowerMeter power_meter;
    Tick step_ticks;
    Tick clock = 0;
    Watts power_cap = 0.0;
    bool esd_charge = false;
    bool esd_available = true;
    bool was_active = false;
    Tick pc6_time = 0;
    std::size_t pc6_wakes = 0;
    int next_app_id = 1;

    std::map<int, std::unique_ptr<Application>> resident;
    std::vector<int> socket_owner; ///< app id per socket, -1 free

    struct EsdState
    {
        esd::Battery battery;
        explicit EsdState(const esd::BatteryConfig &c) : battery(c) {}
    };
    std::optional<EsdState> battery_state;

    power::RaplDomainId packageDomain(int socket) const;
    power::RaplDomainId dramDomain(int socket) const;
};

} // namespace psm::sim

#endif // PSM_SIM_SERVER_HH
