/**
 * @file
 * A minimal discrete-event queue used to script scenarios against the
 * time-stepped server simulation: application arrivals, cap changes,
 * trace replay points.
 */

#ifndef PSM_SIM_EVENT_QUEUE_HH
#define PSM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "util/units.hh"

namespace psm::sim
{

/**
 * Time-ordered callback queue.  Events scheduled for the same tick
 * fire in insertion order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    /** Schedule @p cb to fire at @p when. */
    void schedule(Tick when, Callback cb, std::string label = "");

    /**
     * Fire every event with time <= @p now, in time order.
     *
     * @return Number of events fired.
     */
    std::size_t runUntil(Tick now);

    /** Time of the earliest pending event; maxTick when empty. */
    Tick nextEventTime() const;

    bool empty() const { return heap.empty(); }
    std::size_t pending() const { return heap.size(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::string label;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    std::uint64_t next_seq = 0;
};

} // namespace psm::sim

#endif // PSM_SIM_EVENT_QUEUE_HH
