#include "application.hh"

#include <algorithm>
#include <cstdint>

#include "util/logging.hh"

namespace psm::sim
{

namespace
{
/** Refill bandwidth assumed while re-warming flushed state. */
constexpr double warmupRefillGBps = 3.0;
/** Performance multiplier while the warm-up is in progress. */
constexpr double warmupPerfFactor = 0.6;

/**
 * Deterministic request-queue seed: FNV-1a over the profile name,
 * mixed with the app id so co-located instances of the same service
 * draw independent streams.
 */
std::uint64_t
queueSeed(int id, const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h ^ (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ULL);
}
} // namespace

std::string
appStateName(AppState state)
{
    switch (state) {
      case AppState::Running:
        return "running";
      case AppState::Suspended:
        return "suspended";
      case AppState::Finished:
        return "finished";
      default:
        panic("invalid AppState %d", static_cast<int>(state));
    }
}

Application::Application(int id, int socket,
                         const power::PlatformConfig &config,
                         perf::AppProfile profile)
    : app_id(id), home_socket(socket),
      model(config, std::move(profile)),
      setting(config.maxSetting()),
      phases({Phase{}})
{
    psm_assert(socket >= 0 && socket < config.sockets);
    if (model.profile().interactive())
        req_queue = std::make_unique<RequestQueue>(
            model.profile(), queueSeed(id, model.profile().name));
    // First touch is cold: the app must stage its working set.
    warmup_left = warmupDuration();
}

void
Application::advanceIdleQueue(Tick now, Tick dt)
{
    if (req_queue && run_state != AppState::Running && dt > 0)
        req_queue->advance(now, now + dt, 0.0);
}

double
Application::progress() const
{
    return std::min(1.0,
                    done_beats / model.profile().totalHeartbeats);
}

void
Application::setKnobs(const power::KnobSetting &knobs)
{
    setting = model.platform().clampSetting(knobs);
}

void
Application::setPhases(std::vector<Phase> new_phases)
{
    psm_assert(!new_phases.empty());
    double prev = 0.0;
    for (const auto &ph : new_phases) {
        psm_assert(ph.untilFraction > prev &&
                   ph.untilFraction <= 1.0 + 1e-9);
        psm_assert(ph.cpuScale > 0.0 && ph.memScale >= 0.0);
        prev = ph.untilFraction;
    }
    psm_assert(new_phases.back().untilFraction >= 1.0 - 1e-9);
    phases = std::move(new_phases);
}

const Phase &
Application::currentPhase() const
{
    double frac = progress();
    for (const auto &ph : phases)
        if (frac < ph.untilFraction)
            return ph;
    return phases.back();
}

Tick
Application::warmupDuration() const
{
    double gb = model.profile().residentStateMb / 1024.0;
    return toTicks(gb / warmupRefillGBps);
}

void
Application::suspend(Tick now)
{
    if (run_state != AppState::Running)
        return;
    run_state = AppState::Suspended;
    suspended_since = now;
}

void
Application::resume(Tick now)
{
    if (run_state != AppState::Suspended)
        return;
    run_state = AppState::Running;
    suspended_time += now - suspended_since;
    // Private caches were flushed during the off period; refilling
    // the resident set costs a warm-up window.
    warmup_left = warmupDuration();
}

AppStepResult
Application::step(Tick now, Tick dt, double freq_throttle,
                  double bw_throttle)
{
    AppStepResult result;
    if (run_state != AppState::Running || dt == 0)
        return result;

    const Phase &phase = currentPhase();
    result.op = model.evaluate(setting, freq_throttle, bw_throttle,
                               phase.cpuScale, phase.memScale);

    double perf_factor = 1.0;
    if (warmup_left > 0) {
        Tick warm = std::min(warmup_left, dt);
        double warm_frac = static_cast<double>(warm) /
                           static_cast<double>(dt);
        perf_factor = warm_frac * warmupPerfFactor +
                      (1.0 - warm_frac);
        warmup_left -= warm;
    }

    result.beats = result.op.hbRate * perf_factor * toSeconds(dt);
    if (req_queue)
        req_queue->advance(now, now + dt,
                           result.op.hbRate * perf_factor);
    double remaining =
        model.profile().totalHeartbeats - done_beats;
    if (result.beats >= remaining && !req_queue) {
        // Batch jobs complete; an interactive service is open-ended —
        // its heartbeat budget only sizes progress accounting.
        result.beats = std::max(remaining, 0.0);
        run_state = AppState::Finished;
    }
    done_beats += result.beats;
    beats.emit(now + dt, dt, result.beats);
    return result;
}

} // namespace psm::sim
