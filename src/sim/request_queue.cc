#include "request_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::sim
{

namespace
{
/** Histogram span as a multiple of the SLO; beyond that a response is
 * catastrophically late and edge-bin clamping loses nothing. */
constexpr double histSpanSlos = 32.0;
constexpr std::size_t histBins = 4096;
} // namespace

RequestQueue::RequestQueue(const perf::AppProfile &profile,
                           std::uint64_t seed)
    : offered_load(profile.offeredLoad),
      hb_per_request(profile.hbPerRequest), slo_p99(profile.sloP99),
      rng(seed), response_hist(0.0, histSpanSlos * profile.sloP99,
                               histBins)
{
    if (!profile.interactive())
        fatal("%s: RequestQueue requires an interactive profile (type "
              "%s)",
              profile.name.c_str(),
              perf::appTypeName(profile.type).c_str());
    profile.validate();

    // Seed the open loop: the first arrival lands one exponential gap
    // after t=0, and each arrival schedules its successor.
    next_arrival_s = rng.exponential(offered_load);
    events.schedule(toTicks(next_arrival_s),
                    [this](Tick) { onArrival(); }, "arrival");
}

void
RequestQueue::onArrival()
{
    ++arrived;
    pending.push_back(
        Request{next_arrival_s, rng.exponential(1.0 / hb_per_request)});

    next_arrival_s += rng.exponential(offered_load);
    events.schedule(toTicks(next_arrival_s),
                    [this](Tick) { onArrival(); }, "arrival");
}

void
RequestQueue::advance(Tick from, Tick to, double hb_rate)
{
    psm_assert(to >= from);
    Tick t = from;
    while (true) {
        Tick next = events.nextEventTime();
        Tick seg_end = std::min(std::max(next, t), to);
        serve(t, seg_end, hb_rate);
        t = seg_end;
        if (next > to)
            break;
        // Fires every arrival at this tick, including ones an arrival
        // callback schedules for the same tick.
        events.runUntil(next);
    }
}

void
RequestQueue::serve(Tick t0, Tick t1, double hb_rate)
{
    if (t1 <= t0)
        return;
    double end_s = toSeconds(t1);
    if (hb_rate <= 0.0) {
        // Stalled server: requests age in place.
        served_until_s = end_s;
        return;
    }
    double now_s = std::max(served_until_s, toSeconds(t0));
    while (!pending.empty()) {
        Request &head = pending.front();
        // A request cannot start before it arrives (the queue can be
        // momentarily empty in continuous time even though the
        // arrival event already fired at its quantized tick).
        double start_s = std::max(now_s, head.arrivalSec);
        double finish_s = start_s + head.workHb / hb_rate;
        if (finish_s > end_s) {
            double served = std::max(0.0, end_s - start_s) * hb_rate;
            head.workHb = std::max(0.0, head.workHb - served);
            break;
        }
        now_s = finish_s;
        double response = finish_s - head.arrivalSec;
        ++done;
        if (response > slo_p99)
            ++violations;
        response_sum += response;
        response_hist.push(response);
        pending.pop_front();
    }
    served_until_s = end_s;
}

} // namespace psm::sim
