/**
 * @file
 * Roofline-style analytic performance/power model for one application.
 *
 * Given a knob setting (f, n, m) the model produces the application's
 * heartbeat rate and its power demand on each direct resource.  The
 * heartbeat time is composed of a compute component (scaled by Amdahl
 * over n and linearly by f) and a memory component (scaled by the
 * bandwidth ceiling the DRAM power budget m permits), with a
 * per-application overlap factor between the two.
 *
 * Core power scales with the dynamically computed core utilization —
 * cores stall while exposed memory time accumulates — which reproduces
 * the application-dependent power/performance slopes of the paper's
 * Fig. 2 and the resource-level differences of Fig. 3.
 */

#ifndef PSM_PERF_PERF_MODEL_HH
#define PSM_PERF_PERF_MODEL_HH

#include "app_profile.hh"
#include "power/core_power.hh"
#include "power/dram_power.hh"
#include "power/platform.hh"
#include "util/units.hh"

namespace psm::perf
{

/**
 * Everything the simulator and the allocator need to know about one
 * application at one operating point.
 */
struct OperatingPoint
{
    double hbRate = 0.0;      ///< heartbeats per second
    double perfNorm = 0.0;    ///< hbRate / hbRate at the max setting
    double coreUtilization = 0.0; ///< busy fraction of allocated cores
    GBps memBandwidth = 0.0;  ///< served memory bandwidth

    Watts corePower = 0.0;    ///< dynamic core power
    Watts dramPower = 0.0;    ///< channel power incl. background
    Watts basePower = 0.0;    ///< per-app activation overhead

    /** The application's total dynamic power P_X. */
    Watts totalPower() const { return corePower + dramPower + basePower; }
};

/**
 * Per-application analytic model; immutable once constructed.
 */
class PerfModel
{
  public:
    PerfModel(const power::PlatformConfig &config, AppProfile profile);

    const AppProfile &profile() const { return app; }
    const power::PlatformConfig &platform() const { return config; }

    /**
     * Evaluate the model at a knob setting with optional hardware
     * throttles and phase scaling.
     *
     * @param setting Knob setting; clamped to the platform ranges.
     * @param freq_throttle Multiplier on effective frequency in
     *        (0, 1], from package RAPL enforcement.
     * @param bw_throttle Multiplier on the DRAM bandwidth ceiling in
     *        (0, 1], from DRAM RAPL enforcement.
     * @param cpu_scale Phase multiplier on compute work per heartbeat.
     * @param mem_scale Phase multiplier on memory traffic per
     *        heartbeat.
     */
    OperatingPoint evaluate(const power::KnobSetting &setting,
                            double freq_throttle = 1.0,
                            double bw_throttle = 1.0,
                            double cpu_scale = 1.0,
                            double mem_scale = 1.0) const;

    /** Heartbeat rate at the maximal knob setting (no throttles). */
    double maxHbRate() const { return max_hb_rate; }

    /**
     * The dynamic power P_X at the maximal setting — the isolated,
     * uncapped draw used in the paper's worked examples (~20 W).
     */
    Watts maxPower() const { return max_power; }

    /**
     * The lowest total power at which the application can make
     * forward progress: the minimal setting's power draw.
     */
    Watts minPower() const { return min_power; }

  private:
    const power::PlatformConfig &config;
    AppProfile app;
    power::CorePowerModel core_model;
    power::DramPowerModel dram_model;
    double max_hb_rate = 0.0;
    Watts max_power = 0.0;
    Watts min_power = 0.0;

    OperatingPoint evaluateRaw(const power::KnobSetting &setting,
                               double freq_throttle, double bw_throttle,
                               double cpu_scale, double mem_scale) const;
};

} // namespace psm::perf

#endif // PSM_PERF_PERF_MODEL_HH
