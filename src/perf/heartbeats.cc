#include "heartbeats.hh"

#include "util/logging.hh"

namespace psm::perf
{

Heartbeats::Heartbeats(Tick window) : window(window)
{
    psm_assert(window > 0);
}

void
Heartbeats::emit(Tick now, Tick dt, double beats)
{
    (void)now;
    psm_assert(beats >= 0.0);
    if (dt == 0)
        return;

    total_beats += beats;
    span += dt;

    samples.emplace_back(dt, beats);
    samples_span += dt;
    samples_beats += beats;
    while (samples_span > window && samples.size() > 1) {
        auto [d, b] = samples.front();
        Tick excess = samples_span - window;
        if (d <= excess) {
            samples.pop_front();
            samples_span -= d;
            samples_beats -= b;
        } else {
            double share = static_cast<double>(excess) /
                           static_cast<double>(d);
            samples.front().first = d - excess;
            samples.front().second = b * (1.0 - share);
            samples_span -= excess;
            samples_beats -= b * share;
            break;
        }
    }
}

double
Heartbeats::windowRate() const
{
    if (samples_span == 0)
        return 0.0;
    return samples_beats / toSeconds(samples_span);
}

double
Heartbeats::lifetimeRate() const
{
    if (span == 0)
        return 0.0;
    return total_beats / toSeconds(span);
}

void
Heartbeats::reset()
{
    total_beats = 0.0;
    span = 0;
    samples.clear();
    samples_span = 0;
    samples_beats = 0.0;
}

} // namespace psm::perf
