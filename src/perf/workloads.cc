#include "workloads.hh"

#include <sstream>

#include "latency.hh"
#include "perf_model.hh"
#include "power/dram_power.hh"
#include "power/platform.hh"
#include "util/logging.hh"
#include "util/mathutil.hh"

namespace psm::perf
{

namespace
{

/**
 * Build one profile from calibration-friendly parameters.
 *
 * @param mem_ratio Ratio of memory time to compute time at the
 *        maximal knob setting; >1 means memory bound.
 * @param run_seconds Approximate isolated runtime at the maximal
 *        setting, used to size totalHeartbeats.
 */
AppProfile
makeProfile(std::string name, AppType type, double pf,
            double cpu_sec_per_hb, double mem_ratio, double overlap,
            double activity, double state_mb, double run_seconds)
{
    const auto &plat = power::defaultPlatform();
    power::DramPowerModel dram(plat);
    GBps full_bw = dram.bandwidthCeiling(plat.dramPowerMax);

    AppProfile p;
    p.name = std::move(name);
    p.type = type;
    p.parallelFraction = pf;
    p.cpuSecPerHb = cpu_sec_per_hb;
    p.overlap = overlap;
    p.activity = activity;
    p.basePower = 2.5;
    p.residentStateMb = state_mb;

    // Memory traffic sized so that t_mem / t_cpu at the max setting
    // equals mem_ratio when the channel runs at its full ceiling.
    double t_cpu_max =
        cpu_sec_per_hb / amdahlSpeedup(plat.coresMaxPerApp, pf);
    p.memGbPerHb = mem_ratio * t_cpu_max * full_bw;

    // Heartbeat budget for the requested isolated runtime.
    double t_long = std::max(t_cpu_max, mem_ratio * t_cpu_max);
    double t_short = std::min(t_cpu_max, mem_ratio * t_cpu_max);
    double t_total = t_long + (1.0 - overlap) * t_short;
    p.totalHeartbeats = run_seconds / t_total;

    if (type != AppType::Interactive)
        p.validate();
    return p;
}

/**
 * Build one interactive (latency-critical) profile.  The roofline
 * parameters are shared with makeProfile; the open-loop queueing
 * parameters are derived from the profile's own maximal service
 * capacity so every interactive workload lands with a meaningful SLO
 * knee inside the platform's power range:
 *
 * @param hb_per_request Mean request cost in heartbeats.
 * @param load_factor Utilization rho at the maximal knob setting;
 *        sizes offeredLoad = load_factor * mu_max.
 * @param slo_slack SLO headroom over the best achievable tail:
 *        sloP99 = slo_slack * p99(mu_max, lambda).  Values around
 *        2-3x put the knee mid-range, so tight caps genuinely
 *        violate and generous caps genuinely satisfy.
 */
AppProfile
makeInteractive(std::string name, double pf, double cpu_sec_per_hb,
                double mem_ratio, double overlap, double activity,
                double state_mb, double hb_per_request,
                double load_factor, double slo_slack)
{
    AppProfile p = makeProfile(std::move(name), AppType::Interactive, pf,
                               cpu_sec_per_hb, mem_ratio, overlap,
                               activity, state_mb, 3600.0);
    p.hbPerRequest = hb_per_request;

    // Probe the roofline ceiling with placeholder queueing fields
    // (PerfModel validates its profile; the queue parameters do not
    // affect the roofline).
    AppProfile probe = p;
    probe.offeredLoad = 1.0;
    probe.sloP99 = 1.0;
    PerfModel model(power::defaultPlatform(), probe);
    double mu_max = p.serviceRate(model.maxHbRate());

    p.offeredLoad = load_factor * mu_max;
    p.sloP99 = slo_slack * LatencyModel::p99(mu_max, p.offeredLoad);
    p.validate();
    return p;
}

std::vector<AppProfile>
buildLibrary()
{
    std::vector<AppProfile> lib;
    // name, type, parallel fraction, cpu s/hb, mem ratio, overlap,
    // activity, resident MB, nominal seconds.
    lib.push_back(makeProfile("stream", AppType::Memory, 0.95, 0.004,
                              3.50, 0.93, 0.60, 40.0, 90.0));
    lib.push_back(makeProfile("kmeans", AppType::Analytics, 0.90, 0.020,
                              0.10, 0.60, 0.95, 25.0, 100.0));
    lib.push_back(makeProfile("apr", AppType::Analytics, 0.75, 0.030,
                              0.40, 0.50, 0.90, 60.0, 110.0));
    lib.push_back(makeProfile("bfs", AppType::Graph, 0.78, 0.012,
                              1.60, 0.30, 0.55, 120.0, 80.0));
    lib.push_back(makeProfile("connected", AppType::Graph, 0.82, 0.015,
                              1.30, 0.35, 0.60, 100.0, 95.0));
    lib.push_back(makeProfile("betweenness", AppType::Graph, 0.70, 0.025,
                              0.75, 0.40, 0.75, 90.0, 105.0));
    lib.push_back(makeProfile("sssp", AppType::Graph, 0.78, 0.018,
                              1.10, 0.35, 0.65, 110.0, 85.0));
    lib.push_back(makeProfile("triangle", AppType::Graph, 0.85, 0.040,
                              0.45, 0.50, 0.85, 80.0, 120.0));
    lib.push_back(makeProfile("pagerank", AppType::Search, 0.88, 0.022,
                              0.20, 0.65, 0.92, 50.0, 90.0));
    lib.push_back(makeProfile("x264", AppType::Media, 0.85, 0.035,
                              0.30, 0.60, 0.88, 35.0, 100.0));
    lib.push_back(makeProfile("facesim", AppType::Media, 0.72, 0.045,
                              0.65, 0.50, 0.80, 70.0, 115.0));
    lib.push_back(makeProfile("ferret", AppType::Media, 0.80, 0.028,
                              0.45, 0.55, 0.85, 45.0, 95.0));
    return lib;
}

std::vector<AppProfile>
buildInteractiveLibrary()
{
    std::vector<AppProfile> lib;
    // name, parallel fraction, cpu s/hb, mem ratio, overlap, activity,
    // resident MB, hb/request, load factor, SLO slack.
    lib.push_back(makeInteractive("websearch", 0.90, 0.008, 0.55, 0.55,
                                  0.85, 80.0, 6.0, 0.35, 3.0));
    lib.push_back(makeInteractive("kvstore", 0.95, 0.003, 1.40, 0.70,
                                  0.65, 60.0, 2.0, 0.50, 2.5));
    lib.push_back(makeInteractive("inference", 0.85, 0.015, 0.35, 0.60,
                                  0.92, 120.0, 10.0, 0.40, 2.5));
    return lib;
}

/** Comma-separated names of every library workload, both classes. */
std::string
libraryNames()
{
    std::ostringstream names;
    const char *sep = "";
    for (const auto &p : workloadLibrary()) {
        names << sep << p.name;
        sep = ", ";
    }
    for (const auto &p : interactiveLibrary())
        names << ", " << p.name;
    return names.str();
}

} // namespace

const std::vector<AppProfile> &
workloadLibrary()
{
    static const std::vector<AppProfile> library = buildLibrary();
    return library;
}

const std::vector<AppProfile> &
interactiveLibrary()
{
    static const std::vector<AppProfile> library =
        buildInteractiveLibrary();
    return library;
}

const AppProfile &
workload(const std::string &name)
{
    for (const auto &p : workloadLibrary())
        if (p.name == name)
            return p;
    for (const auto &p : interactiveLibrary())
        if (p.name == name)
            return p;
    fatal("unknown workload '%s' (expected one of %s)", name.c_str(),
          libraryNames().c_str());
}

bool
hasWorkload(const std::string &name)
{
    for (const auto &p : workloadLibrary())
        if (p.name == name)
            return true;
    for (const auto &p : interactiveLibrary())
        if (p.name == name)
            return true;
    return false;
}

std::string
workloadNames()
{
    return libraryNames();
}

const std::vector<Mix> &
tableTwoMixes()
{
    static const std::vector<Mix> mixes = {
        {1, "stream", "kmeans"},
        {2, "connected", "kmeans"},
        {3, "stream", "bfs"},
        {4, "facesim", "bfs"},
        {5, "ferret", "betweenness"},
        {6, "ferret", "pagerank"},
        {7, "facesim", "betweenness"},
        {8, "x264", "triangle"},
        {9, "apr", "connected"},
        {10, "pagerank", "kmeans"},
        {11, "ferret", "sssp"},
        {12, "facesim", "x264"},
        {13, "apr", "kmeans"},
        {14, "x264", "sssp"},
        {15, "apr", "x264"},
    };
    return mixes;
}

const Mix &
mix(int id)
{
    const auto &mixes = tableTwoMixes();
    if (id < 1 || id > static_cast<int>(mixes.size()))
        fatal("mix id %d outside Table II's range [1, %zu]", id,
              mixes.size());
    return mixes[static_cast<std::size_t>(id - 1)];
}

} // namespace psm::perf
