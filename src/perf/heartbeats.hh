/**
 * @file
 * Application heartbeats instrumentation (Hoffmann et al.), the
 * performance observable the paper's framework consumes.
 *
 * Applications emit heartbeats as they complete units of useful work;
 * the monitor exposes total progress and a windowed heartbeat rate.
 * The framework never sees model internals — like the paper, it
 * observes performance only through this interface.
 */

#ifndef PSM_PERF_HEARTBEATS_HH
#define PSM_PERF_HEARTBEATS_HH

#include <deque>

#include "util/units.hh"

namespace psm::perf
{

/**
 * Heartbeat recorder for one application.
 */
class Heartbeats
{
  public:
    /**
     * @param window Span over which the windowed rate is computed.
     */
    explicit Heartbeats(Tick window = toTicks(1.0));

    /**
     * Record @p beats (possibly fractional) heartbeats earned over
     * the interval ending at @p now with duration @p dt.
     */
    void emit(Tick now, Tick dt, double beats);

    /** Total heartbeats since construction or reset. */
    double total() const { return total_beats; }

    /** Heartbeat rate averaged over the trailing window. */
    double windowRate() const;

    /** Heartbeat rate averaged over the entire recorded span. */
    double lifetimeRate() const;

    /** Forget all history. */
    void reset();

  private:
    Tick window;
    double total_beats = 0.0;
    Tick span = 0;

    /** Trailing samples of (duration, beats). */
    std::deque<std::pair<Tick, double>> samples;
    Tick samples_span = 0;
    double samples_beats = 0.0;
};

} // namespace psm::perf

#endif // PSM_PERF_HEARTBEATS_HH
