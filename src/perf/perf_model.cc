#include "perf_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/mathutil.hh"

namespace psm::perf
{

PerfModel::PerfModel(const power::PlatformConfig &config,
                     AppProfile profile)
    : config(config), app(std::move(profile)), core_model(config),
      dram_model(config)
{
    app.validate();
    OperatingPoint best = evaluateRaw(config.maxSetting(), 1.0, 1.0,
                                      1.0, 1.0);
    max_hb_rate = best.hbRate;
    max_power = best.totalPower();
    OperatingPoint least = evaluateRaw(config.minSetting(), 1.0, 1.0,
                                       1.0, 1.0);
    min_power = least.totalPower();
    psm_assert(max_hb_rate > 0.0);
}

OperatingPoint
PerfModel::evaluateRaw(const power::KnobSetting &raw_setting,
                       double freq_throttle, double bw_throttle,
                       double cpu_scale, double mem_scale) const
{
    psm_assert(freq_throttle > 0.0 && freq_throttle <= 1.0);
    psm_assert(bw_throttle > 0.0 && bw_throttle <= 1.0);
    psm_assert(cpu_scale > 0.0 && mem_scale >= 0.0);

    power::KnobSetting s = config.clampSetting(raw_setting);
    GHz f_eff = s.freq * freq_throttle;

    // Compute time: Amdahl over the allocated cores, linear in the
    // effective clock.
    double speedup = amdahlSpeedup(s.cores, app.parallelFraction) *
                     (f_eff / config.freqMax);
    double t_cpu = app.cpuSecPerHb * cpu_scale / speedup;

    // Memory time: stream the heartbeat's traffic at the bandwidth
    // ceiling allowed by the DRAM power budget.
    double mem_gb = app.memGbPerHb * mem_scale;
    GBps ceiling = dram_model.bandwidthCeiling(s.dramPower) *
                   bw_throttle;
    double t_mem = mem_gb > 0.0 ? mem_gb / ceiling : 0.0;

    // Partial overlap roofline: the longer phase dominates; the
    // non-overlapped share of the shorter phase is exposed.
    double t_long = std::max(t_cpu, t_mem);
    double t_short = std::min(t_cpu, t_mem);
    double t_total = t_long + (1.0 - app.overlap) * t_short;
    psm_assert(t_total > 0.0);

    OperatingPoint op;
    op.hbRate = 1.0 / t_total;
    op.coreUtilization = std::min(1.0, t_cpu / t_total);
    op.memBandwidth = mem_gb * op.hbRate;

    // Stalled cores are not free: only part of the dynamic power
    // scales away with utilization.
    double stall = config.coreStallPowerFraction;
    double effective_activity =
        app.activity * (stall + (1.0 - stall) * op.coreUtilization);
    op.corePower = core_model.corePower(
        std::min(f_eff, config.freqMax), effective_activity, s.cores);
    op.dramPower = dram_model.throttledPower(op.memBandwidth,
                                             s.dramPower);
    op.basePower = app.basePower;
    return op;
}

OperatingPoint
PerfModel::evaluate(const power::KnobSetting &setting,
                    double freq_throttle, double bw_throttle,
                    double cpu_scale, double mem_scale) const
{
    OperatingPoint op = evaluateRaw(setting, freq_throttle, bw_throttle,
                                    cpu_scale, mem_scale);
    op.perfNorm = op.hbRate / max_hb_rate;
    return op;
}

} // namespace psm::perf
