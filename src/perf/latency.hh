/**
 * @file
 * Latency extension: response-time estimates for latency-critical
 * applications under power capping.
 *
 * The paper's evaluation uses throughput workloads, but its footnote
 * notes that all four requirements also apply to latency-critical
 * applications.  This module adds the missing observable: treat a
 * latency-critical application as a single-queue server whose service
 * rate is its (power-dependent) heartbeat rate, and derive mean and
 * tail response times under an offered request load — an M/M/1
 * approximation, which is the standard first-order model for
 * capacity-vs-latency trade-offs in capped servers.
 *
 * With it, a power allocation maps directly to a p99, so SLO
 * compliance under each policy can be evaluated (see
 * bench_ext_latency).
 */

#ifndef PSM_PERF_LATENCY_HH
#define PSM_PERF_LATENCY_HH

#include <limits>

#include "util/units.hh"

namespace psm::perf
{

/**
 * Queueing estimates for a service with rate @p mu (requests/s)
 * under offered load @p lambda (requests/s).
 *
 * The sentinel contract is uniform: every query returns `unstable`
 * (infinity) for any input outside the model's domain — an unstable
 * queue (lambda >= mu, mu == 0), negative rates, NaNs, or a
 * non-positive SLO — never an assertion.  Callers feeding measured
 * (possibly faulted) telemetry through the model can thus rank
 * allocations without pre-screening their inputs; infinity loses
 * every comparison, which is exactly the ranking an infeasible
 * operating point deserves.
 */
class LatencyModel
{
  public:
    /** Utilization rho = lambda / mu (`unstable` when mu == 0 or
     * either rate is negative/NaN). */
    static double utilization(double mu, double lambda);

    /**
     * Mean sojourn (queue + service) time in seconds: 1/(mu-lambda).
     * `unstable` when the queue is unstable (lambda >= mu) or either
     * rate is negative/NaN.
     */
    static double meanSojourn(double mu, double lambda);

    /**
     * Approximate 99th percentile sojourn time: the sojourn
     * distribution of M/M/1 is exponential with mean 1/(mu-lambda),
     * so p99 = ln(100) * mean.  `unstable` whenever meanSojourn is.
     */
    static double p99(double mu, double lambda);

    /**
     * Smallest service rate meeting a p99 SLO at load @p lambda:
     * mu = lambda + ln(100)/slo.  `unstable` when lambda is
     * negative/NaN or the SLO is not a positive time — no finite
     * rate meets a 0-second tail bound.
     */
    static double requiredRateForSlo(double lambda, double slo_p99);

    /** Sentinel for queries outside the model's domain. */
    static constexpr double unstable =
        std::numeric_limits<double>::infinity();
};

} // namespace psm::perf

#endif // PSM_PERF_LATENCY_HH
