/**
 * @file
 * Latency extension: response-time estimates for latency-critical
 * applications under power capping.
 *
 * The paper's evaluation uses throughput workloads, but its footnote
 * notes that all four requirements also apply to latency-critical
 * applications.  This module adds the missing observable: treat a
 * latency-critical application as a single-queue server whose service
 * rate is its (power-dependent) heartbeat rate, and derive mean and
 * tail response times under an offered request load — an M/M/1
 * approximation, which is the standard first-order model for
 * capacity-vs-latency trade-offs in capped servers.
 *
 * With it, a power allocation maps directly to a p99, so SLO
 * compliance under each policy can be evaluated (see
 * bench_ext_latency).
 */

#ifndef PSM_PERF_LATENCY_HH
#define PSM_PERF_LATENCY_HH

#include <limits>

#include "util/units.hh"

namespace psm::perf
{

/**
 * Queueing estimates for a service with rate @p mu (requests/s)
 * under offered load @p lambda (requests/s).
 */
class LatencyModel
{
  public:
    /** Utilization rho = lambda / mu (infinity when mu == 0). */
    static double utilization(double mu, double lambda);

    /**
     * Mean sojourn (queue + service) time in seconds: 1/(mu-lambda).
     * Infinite when the queue is unstable (lambda >= mu).
     */
    static double meanSojourn(double mu, double lambda);

    /**
     * Approximate 99th percentile sojourn time: the sojourn
     * distribution of M/M/1 is exponential with mean 1/(mu-lambda),
     * so p99 = ln(100) * mean.
     */
    static double p99(double mu, double lambda);

    /**
     * Smallest service rate meeting a p99 SLO at load @p lambda:
     * mu = lambda + ln(100)/slo.
     */
    static double requiredRateForSlo(double lambda, double slo_p99);

    /** Sentinel for unstable queues. */
    static constexpr double unstable =
        std::numeric_limits<double>::infinity();
};

} // namespace psm::perf

#endif // PSM_PERF_LATENCY_HH
