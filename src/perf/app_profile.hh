/**
 * @file
 * Application profiles: the per-workload parameters that drive the
 * roofline performance model and the power attribution.
 *
 * The paper evaluates PARSEC / GAP / MineBench / STREAM workloads on
 * real hardware; here each workload is described by a small analytic
 * profile (parallel fraction, compute and memory work per heartbeat,
 * compute/memory overlap, circuit activity, resident state) calibrated
 * so the workload lands in the same qualitative class the paper
 * reports — e.g. kmeans and PageRank compute-bound, STREAM memory
 * bandwidth bound, graph kernels latency-sensitive and irregular.
 */

#ifndef PSM_PERF_APP_PROFILE_HH
#define PSM_PERF_APP_PROFILE_HH

#include <string>

namespace psm::perf
{

/** Workload family, as labelled in Table II. */
enum class AppType
{
    Analytics,   ///< data analytics (kmeans, APR)
    Graph,       ///< graph analytics (BFS, CC, SSSP, BC, TC)
    Search,      ///< search indexing (PageRank)
    Memory,      ///< memory streaming (STREAM)
    Media,       ///< media processing (x264, facesim, ferret)
    Interactive, ///< latency-critical request serving (open-loop)
};

/** Printable name of an AppType ("graph", "media", ...). */
std::string appTypeName(AppType type);

/**
 * Analytic description of one application.
 *
 * A "heartbeat" is the application's own unit of useful work (a frame
 * for x264, an iteration for kmeans, ...), reported through the
 * heartbeats interface exactly as in the paper's instrumentation.
 */
struct AppProfile
{
    std::string name;     ///< e.g. "kmeans"
    AppType type = AppType::Analytics;

    /** Amdahl parallel fraction of the compute phase. */
    double parallelFraction = 0.9;

    /**
     * Single-core compute seconds per heartbeat at f_max (the serial
     * execution time of one heartbeat's compute, before Amdahl and
     * DVFS scaling).
     */
    double cpuSecPerHb = 0.02;

    /** Memory traffic per heartbeat in gigabytes. */
    double memGbPerHb = 0.01;

    /**
     * Fraction of memory time hidden under compute in [0, 1]:
     * 1 = perfectly overlapped streaming, 0 = fully serialized
     * pointer chasing.
     */
    double overlap = 0.5;

    /**
     * Circuit activity factor of a busy core in (0, 1]; multiplies
     * peak core power together with the dynamically computed core
     * utilization.
     */
    double activity = 0.9;

    /** Per-app activation overhead in watts (private caches, OS). */
    double basePower = 2.0;

    /**
     * Resident state (hot working set) in megabytes; lost when the
     * application is duty-cycled off and refilled from DRAM on
     * resume.
     */
    double residentStateMb = 30.0;

    /** Total heartbeats to completion (job length). */
    double totalHeartbeats = 1.0e9;

    // --- Interactive (latency-critical) class -----------------------
    //
    // Meaningful only when type == AppType::Interactive.  An
    // interactive application is an open-loop request server: requests
    // arrive Poisson at `offeredLoad`, each needing an exponentially
    // distributed amount of work with mean `hbPerRequest` heartbeats,
    // so its service rate at a knob setting is hbRate / hbPerRequest
    // and its tail latency must stay under `sloP99`.

    /** Offered request load in requests per second. */
    double offeredLoad = 0.0;

    /** Mean request service demand in heartbeats. */
    double hbPerRequest = 0.0;

    /** 99th-percentile response-time SLO in seconds. */
    double sloP99 = 0.0;

    /** True for the latency-critical request-serving class. */
    bool interactive() const { return type == AppType::Interactive; }

    /**
     * Service rate in requests per second when the application earns
     * heartbeats at @p hb_rate (0 for non-interactive profiles).
     */
    double serviceRate(double hb_rate) const
    {
        return hbPerRequest > 0.0 ? hb_rate / hbPerRequest : 0.0;
    }

    /** Validate parameter ranges; calls fatal() on nonsense. */
    void validate() const;
};

} // namespace psm::perf

#endif // PSM_PERF_APP_PROFILE_HH
