/**
 * @file
 * The workload library: analytic stand-ins for the twelve datacenter
 * applications the paper evaluates (Section IV), plus the fifteen
 * co-location mixes of Table II.
 *
 * Sources in the paper: data analytics kmeans and APR from MineBench;
 * graph analytics BFS, connected components, betweenness centrality,
 * SSSP and triangle counting from the GAP benchmark suite; PageRank as
 * search indexing; STREAM for memory streaming; and x264, facesim and
 * ferret from PARSEC for media processing.
 */

#ifndef PSM_PERF_WORKLOADS_HH
#define PSM_PERF_WORKLOADS_HH

#include <string>
#include <vector>

#include "app_profile.hh"

namespace psm::perf
{

/** One row of Table II: a pair of co-located applications. */
struct Mix
{
    int id = 0;          ///< 1-based mix number from Table II
    std::string app1;    ///< first application name
    std::string app2;    ///< second application name
};

/**
 * All twelve calibrated batch application profiles.  The vector is
 * built once and lives for the program's lifetime.  Deliberately
 * excludes the interactive class: corpus seeding and the paper-claim
 * suites iterate this library, and the latency-critical profiles are
 * not throughput jobs.
 */
const std::vector<AppProfile> &workloadLibrary();

/**
 * The interactive (latency-critical) profiles: open-loop request
 * servers with an offered load, a per-request heartbeat cost and a
 * p99 SLO (AppType::Interactive).  Built once, program lifetime.
 */
const std::vector<AppProfile> &interactiveLibrary();

/**
 * Look up a profile by name in both libraries; calls fatal() with
 * the full list of valid names for unknown ones.
 */
const AppProfile &workload(const std::string &name);

/** True when @p name names a library workload (either class). */
bool hasWorkload(const std::string &name);

/** Comma-separated names of every library workload, both classes. */
std::string workloadNames();

/** The fifteen application mixes of Table II, in paper order. */
const std::vector<Mix> &tableTwoMixes();

/** Look up a mix by its 1-based Table II id. */
const Mix &mix(int id);

} // namespace psm::perf

#endif // PSM_PERF_WORKLOADS_HH
