#include "latency.hh"

#include <cmath>

#include "util/logging.hh"

namespace psm::perf
{

namespace
{
const double ln100 = std::log(100.0);
} // namespace

double
LatencyModel::utilization(double mu, double lambda)
{
    psm_assert(lambda >= 0.0 && mu >= 0.0);
    if (mu <= 0.0)
        return unstable;
    return lambda / mu;
}

double
LatencyModel::meanSojourn(double mu, double lambda)
{
    psm_assert(lambda >= 0.0 && mu >= 0.0);
    if (lambda >= mu)
        return unstable;
    return 1.0 / (mu - lambda);
}

double
LatencyModel::p99(double mu, double lambda)
{
    double mean = meanSojourn(mu, lambda);
    if (mean == unstable)
        return unstable;
    return ln100 * mean;
}

double
LatencyModel::requiredRateForSlo(double lambda, double slo_p99)
{
    psm_assert(lambda >= 0.0);
    psm_assert(slo_p99 > 0.0);
    return lambda + ln100 / slo_p99;
}

} // namespace psm::perf
