#include "latency.hh"

#include <cmath>

namespace psm::perf
{

namespace
{
const double ln100 = std::log(100.0);

/** True when the pair is outside the model's domain: negative rates
 * make no physical sense and NaNs would otherwise propagate as
 * silently-wrong finite comparisons. */
bool
invalidRates(double mu, double lambda)
{
    return !(mu >= 0.0) || !(lambda >= 0.0);
}

} // namespace

double
LatencyModel::utilization(double mu, double lambda)
{
    if (invalidRates(mu, lambda) || mu <= 0.0)
        return unstable;
    return lambda / mu;
}

double
LatencyModel::meanSojourn(double mu, double lambda)
{
    if (invalidRates(mu, lambda) || lambda >= mu)
        return unstable;
    return 1.0 / (mu - lambda);
}

double
LatencyModel::p99(double mu, double lambda)
{
    double mean = meanSojourn(mu, lambda);
    if (mean == unstable)
        return unstable;
    return ln100 * mean;
}

double
LatencyModel::requiredRateForSlo(double lambda, double slo_p99)
{
    if (!(lambda >= 0.0) || !(slo_p99 > 0.0))
        return unstable;
    return lambda + ln100 / slo_p99;
}

} // namespace psm::perf
