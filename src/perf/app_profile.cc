#include "app_profile.hh"

#include "util/logging.hh"

namespace psm::perf
{

std::string
appTypeName(AppType type)
{
    switch (type) {
      case AppType::Analytics:
        return "analytics";
      case AppType::Graph:
        return "graph";
      case AppType::Search:
        return "search";
      case AppType::Memory:
        return "memory";
      case AppType::Media:
        return "media";
      case AppType::Interactive:
        return "interactive";
      default:
        panic("invalid AppType %d", static_cast<int>(type));
    }
}

void
AppProfile::validate() const
{
    if (name.empty())
        fatal("application profile requires a name");
    if (parallelFraction < 0.0 || parallelFraction > 1.0)
        fatal("%s: parallelFraction %f outside [0,1]", name.c_str(),
              parallelFraction);
    if (cpuSecPerHb <= 0.0)
        fatal("%s: cpuSecPerHb must be positive", name.c_str());
    if (memGbPerHb < 0.0)
        fatal("%s: memGbPerHb must be non-negative", name.c_str());
    if (overlap < 0.0 || overlap > 1.0)
        fatal("%s: overlap %f outside [0,1]", name.c_str(), overlap);
    if (activity <= 0.0 || activity > 1.0)
        fatal("%s: activity %f outside (0,1]", name.c_str(), activity);
    if (basePower < 0.0)
        fatal("%s: basePower must be non-negative", name.c_str());
    if (residentStateMb < 0.0)
        fatal("%s: residentStateMb must be non-negative", name.c_str());
    if (totalHeartbeats <= 0.0)
        fatal("%s: totalHeartbeats must be positive", name.c_str());
    if (interactive()) {
        if (offeredLoad <= 0.0)
            fatal("%s: interactive offeredLoad must be positive",
                  name.c_str());
        if (hbPerRequest <= 0.0)
            fatal("%s: interactive hbPerRequest must be positive",
                  name.c_str());
        if (sloP99 <= 0.0)
            fatal("%s: interactive sloP99 must be positive", name.c_str());
    } else if (offeredLoad != 0.0 || hbPerRequest != 0.0 ||
               sloP99 != 0.0) {
        fatal("%s: interactive fields set on a %s profile", name.c_str(),
              appTypeName(type).c_str());
    }
}

} // namespace psm::perf
