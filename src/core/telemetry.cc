#include "telemetry.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace psm::core
{

namespace
{

/** JSON string escaping: quotes, backslashes, and every control
 * character below 0x20 (named escapes where JSON has them, \u00XX
 * otherwise) — decision triggers may carry arbitrary text. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Emit one JSON number; NaN/Inf have no JSON spelling, so sanitize
 * them to null instead of corrupting the document. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

Telemetry::Backend
envDefaultBackend()
{
    const char *env = std::getenv("PSM_TELEMETRY_LEGACY");
    if (env && *env && *env != '0')
        return Telemetry::Backend::Legacy;
    return Telemetry::Backend::Trace;
}

std::atomic<Telemetry::Backend> &
processBackend()
{
    static std::atomic<Telemetry::Backend> backend{envDefaultBackend()};
    return backend;
}

} // namespace

Telemetry::Backend
Telemetry::processDefault()
{
    return processBackend().load(std::memory_order_relaxed);
}

void
Telemetry::setProcessDefault(Backend backend)
{
    processBackend().store(backend, std::memory_order_relaxed);
}

// --- legacy string-keyed publish paths -----------------------------

void
Telemetry::legacyCount(trace::EventId id, std::uint64_t delta)
{
    counter_map[std::string(trace::eventName(id))] += delta;
}

void
Telemetry::legacyObserve(trace::EventId id, Tick elapsed)
{
    TimerStat &t = timer_map[std::string(trace::eventName(id))];
    ++t.count;
    t.total += elapsed;
    if (elapsed > t.max)
        t.max = elapsed;
}

void
Telemetry::legacyGauge(trace::EventId id, std::uint64_t value)
{
    counter_map[std::string(trace::eventName(id))] = value;
}

// --- string façade -------------------------------------------------

void
Telemetry::count(const std::string &name, std::uint64_t delta)
{
    if (mode == Backend::Trace) {
        trace::EventId id;
        if (trace::lookupEvent(name, id) &&
            trace::eventKind(id) == trace::EventKind::Counter) {
            trace_sink.count(id, delta);
            return;
        }
        ++overflow_gen;
    }
    counter_map[name] += delta;
}

void
Telemetry::observe(const std::string &name, Tick elapsed)
{
    if (mode == Backend::Trace) {
        trace::EventId id;
        if (trace::lookupEvent(name, id) &&
            trace::eventKind(id) == trace::EventKind::Timer) {
            trace_sink.observe(id, elapsed);
            return;
        }
        ++overflow_gen;
    }
    TimerStat &t = timer_map[name];
    ++t.count;
    t.total += elapsed;
    if (elapsed > t.max)
        t.max = elapsed;
}

std::uint64_t
Telemetry::counter(const std::string &name) const
{
    if (mode == Backend::Trace) {
        trace::EventId id;
        if (trace::lookupEvent(name, id) &&
            trace::eventKind(id) != trace::EventKind::Timer)
            return trace_sink.counterValue(id);
    }
    auto it = counter_map.find(name);
    return it == counter_map.end() ? 0 : it->second;
}

std::uint64_t
Telemetry::counter(trace::EventId id) const
{
    if (mode == Backend::Trace)
        return trace_sink.counterValue(id);
    auto it = counter_map.find(std::string(trace::eventName(id)));
    return it == counter_map.end() ? 0 : it->second;
}

TimerStat
Telemetry::timer(const std::string &name) const
{
    if (mode == Backend::Trace) {
        trace::EventId id;
        if (trace::lookupEvent(name, id) &&
            trace::eventKind(id) == trace::EventKind::Timer) {
            trace::TimerAgg agg = trace_sink.timerValue(id);
            return TimerStat{agg.count, agg.total, agg.max};
        }
    }
    auto it = timer_map.find(name);
    return it == timer_map.end() ? TimerStat{} : it->second;
}

TimerStat
Telemetry::timer(trace::EventId id) const
{
    if (mode == Backend::Trace) {
        trace::TimerAgg agg = trace_sink.timerValue(id);
        return TimerStat{agg.count, agg.total, agg.max};
    }
    auto it = timer_map.find(std::string(trace::eventName(id)));
    return it == timer_map.end() ? TimerStat{} : it->second;
}

// --- decision records ----------------------------------------------

std::uint32_t
Telemetry::intern(const std::string &s)
{
    auto it = intern_ids.find(s);
    if (it != intern_ids.end())
        return it->second;
    auto id = static_cast<std::uint32_t>(intern_table.size());
    intern_table.push_back(s);
    intern_ids.emplace(s, id);
    return id;
}

void
Telemetry::record(DecisionRecord rec)
{
    if (mode == Backend::Trace) {
        PackedDecision d;
        d.when = rec.when;
        d.latency = rec.latency;
        d.objective = rec.objective;
        d.budget = rec.budget;
        d.apps = rec.apps;
        d.trigger = intern(rec.trigger);
        d.policy = intern(rec.policy);
        d.plan = intern(rec.plan);
        d.mode_name = intern(rec.mode);
        packed_log.push_back(d);
        while (packed_log.size() > maxDecisions)
            packed_log.pop_front();
        ++decision_gen;
        return;
    }
    decision_log.push_back(std::move(rec));
    while (decision_log.size() > maxDecisions)
        decision_log.pop_front();
}

void
Telemetry::pushPacked(const PackedDecision &d, const Telemetry &src)
{
    PackedDecision mine = d;
    mine.trigger = intern(src.intern_table[d.trigger]);
    mine.policy = intern(src.intern_table[d.policy]);
    mine.plan = intern(src.intern_table[d.plan]);
    mine.mode_name = intern(src.intern_table[d.mode_name]);
    packed_log.push_back(mine);
    while (packed_log.size() > maxDecisions)
        packed_log.pop_front();
    ++decision_gen;
}

const std::deque<DecisionRecord> &
Telemetry::decisions() const
{
    if (mode == Backend::Legacy)
        return decision_log;
    if (decision_view_gen != decision_gen) {
        auto &view = const_cast<Telemetry *>(this)->decision_log;
        view.clear();
        for (const PackedDecision &d : packed_log) {
            DecisionRecord rec;
            rec.when = d.when;
            rec.trigger = intern_table[d.trigger];
            rec.policy = intern_table[d.policy];
            rec.plan = intern_table[d.plan];
            rec.mode = intern_table[d.mode_name];
            rec.objective = d.objective;
            rec.budget = d.budget;
            rec.apps = static_cast<std::size_t>(d.apps);
            rec.latency = d.latency;
            view.push_back(std::move(rec));
        }
        decision_view_gen = decision_gen;
    }
    return decision_log;
}

// --- aggregate views -----------------------------------------------

void
Telemetry::refreshCounterView() const
{
    if (counter_view_seq == trace_sink.publishSeq() &&
        counter_view_overflow == overflow_gen)
        return;
    counter_view = counter_map; // overflow names
    trace_sink.forEachTouched([&](trace::EventId id) {
        if (trace::eventKind(id) != trace::EventKind::Timer) {
            counter_view[std::string(trace::eventName(id))] =
                trace_sink.counterValue(id);
        }
    });
    counter_view_seq = trace_sink.publishSeq();
    counter_view_overflow = overflow_gen;
}

void
Telemetry::refreshTimerView() const
{
    if (timer_view_seq == trace_sink.publishSeq() &&
        timer_view_overflow == overflow_gen)
        return;
    timer_view = timer_map; // overflow names
    trace_sink.forEachTouched([&](trace::EventId id) {
        if (trace::eventKind(id) == trace::EventKind::Timer) {
            trace::TimerAgg agg = trace_sink.timerValue(id);
            timer_view[std::string(trace::eventName(id))] =
                TimerStat{agg.count, agg.total, agg.max};
        }
    });
    timer_view_seq = trace_sink.publishSeq();
    timer_view_overflow = overflow_gen;
}

const std::map<std::string, std::uint64_t> &
Telemetry::counters() const
{
    if (mode == Backend::Legacy)
        return counter_map;
    refreshCounterView();
    return counter_view;
}

const std::map<std::string, TimerStat> &
Telemetry::timers() const
{
    if (mode == Backend::Legacy)
        return timer_map;
    refreshTimerView();
    return timer_view;
}

// --- merge / fold ---------------------------------------------------

void
Telemetry::merge(const Telemetry &other)
{
    if (mode == Backend::Trace && other.mode == Backend::Trace) {
        trace_sink.mergeFrom(other.trace_sink);
        if (!other.counter_map.empty() || !other.timer_map.empty()) {
            for (const auto &[name, value] : other.counter_map)
                counter_map[name] += value;
            for (const auto &[name, stat] : other.timer_map) {
                TimerStat &t = timer_map[name];
                t.count += stat.count;
                t.total += stat.total;
                if (stat.max > t.max)
                    t.max = stat.max;
            }
            ++overflow_gen;
        }
        for (const PackedDecision &d : other.packed_log)
            pushPacked(d, other);
        return;
    }

    // Mixed or legacy: bridge through the name-keyed views so either
    // storage shape folds correctly.
    for (const auto &[name, value] : other.counters()) {
        trace::EventId id;
        bool registered = trace::lookupEvent(name, id);
        bool is_gauge = registered && trace::eventKind(id) ==
                                          trace::EventKind::Gauge;
        if (mode == Backend::Trace && registered &&
            trace::eventKind(id) != trace::EventKind::Timer) {
            if (is_gauge)
                trace_sink.gauge(id, value);
            else
                trace_sink.count(id, value);
        } else if (is_gauge) {
            counter_map[name] = value;
            ++overflow_gen;
        } else {
            counter_map[name] += value;
            ++overflow_gen;
        }
    }
    for (const auto &[name, stat] : other.timers()) {
        trace::EventId id;
        if (mode == Backend::Trace && trace::lookupEvent(name, id) &&
            trace::eventKind(id) == trace::EventKind::Timer) {
            trace_sink.addTimer(
                id, trace::TimerAgg{stat.count, stat.total, stat.max});
        } else {
            TimerStat &t = timer_map[name];
            t.count += stat.count;
            t.total += stat.total;
            if (stat.max > t.max)
                t.max = stat.max;
            ++overflow_gen;
        }
    }
    for (const auto &rec : other.decisions())
        record(rec);
}

void
Telemetry::foldInto(trace::TraceSink &out) const
{
    if (mode == Backend::Trace) {
        out.mergeFrom(trace_sink);
        return;
    }
    for (const auto &[name, value] : counter_map) {
        trace::EventId id;
        if (!trace::lookupEvent(name, id))
            continue;
        switch (trace::eventKind(id)) {
          case trace::EventKind::Counter:
            out.count(id, value);
            break;
          case trace::EventKind::Gauge:
            out.gauge(id, value);
            break;
          case trace::EventKind::Timer:
            break;
        }
    }
    for (const auto &[name, stat] : timer_map) {
        trace::EventId id;
        if (trace::lookupEvent(name, id) &&
            trace::eventKind(id) == trace::EventKind::Timer) {
            out.addTimer(
                id, trace::TimerAgg{stat.count, stat.total, stat.max});
        }
    }
}

void
Telemetry::reset()
{
    trace_sink.reset();
    counter_map.clear();
    timer_map.clear();
    packed_log.clear();
    intern_table.clear();
    intern_ids.clear();
    decision_log.clear();
    counter_view.clear();
    timer_view.clear();
    ++overflow_gen;
    ++decision_gen;
    counter_view_seq = ~0ULL;
    timer_view_seq = ~0ULL;
    decision_view_gen = ~0ULL;
}

// --- dumps ----------------------------------------------------------

void
Telemetry::dumpText(std::ostream &os) const
{
    os << "== telemetry ==\n";
    os << "counters:\n";
    for (const auto &[name, value] : counters())
        os << "  " << name << " = " << value << "\n";
    os << "timers:\n";
    for (const auto &[name, t] : timers()) {
        os << "  " << name << ": count=" << t.count
           << " total=" << toSeconds(t.total) << "s"
           << " max=" << toSeconds(t.max) << "s\n";
    }
    const auto &log = decisions();
    os << "decisions (" << log.size() << "):\n";
    for (const auto &d : log) {
        os << "  t=" << toSeconds(d.when) << "s"
           << " trigger=" << d.trigger << " policy=" << d.policy
           << " plan=" << d.plan << " mode=" << d.mode
           << " objective=" << d.objective << " budget=" << d.budget
           << "W apps=" << d.apps
           << " latency=" << toSeconds(d.latency) << "s\n";
    }
}

void
Telemetry::dumpJson(std::ostream &os) const
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":" << value;
        first = false;
    }
    os << "},\"timers\":{";
    first = true;
    for (const auto &[name, t] : timers()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":{\"count\":" << t.count
           << ",\"total_s\":" << toSeconds(t.total)
           << ",\"max_s\":" << toSeconds(t.max) << "}";
        first = false;
    }
    os << "},\"decisions\":[";
    first = true;
    for (const auto &d : decisions()) {
        os << (first ? "" : ",") << "{\"when_s\":" << toSeconds(d.when)
           << ",\"trigger\":\"" << jsonEscape(d.trigger) << "\""
           << ",\"policy\":\"" << jsonEscape(d.policy) << "\""
           << ",\"plan\":\"" << jsonEscape(d.plan) << "\""
           << ",\"mode\":\"" << jsonEscape(d.mode) << "\""
           << ",\"objective\":";
        jsonNumber(os, d.objective);
        os << ",\"budget_w\":";
        jsonNumber(os, d.budget);
        os << ",\"apps\":" << d.apps
           << ",\"latency_s\":" << toSeconds(d.latency) << "}";
        first = false;
    }
    os << "]}";
}

} // namespace psm::core
