#include "telemetry.hh"

#include <ostream>

namespace psm::core
{

namespace
{

/** Minimal JSON string escaping (bus names are plain identifiers,
 * but decision triggers may one day carry arbitrary text). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

void
Telemetry::count(const std::string &name, std::uint64_t delta)
{
    counter_map[name] += delta;
}

std::uint64_t
Telemetry::counter(const std::string &name) const
{
    auto it = counter_map.find(name);
    return it == counter_map.end() ? 0 : it->second;
}

void
Telemetry::observe(const std::string &name, Tick elapsed)
{
    TimerStat &t = timer_map[name];
    ++t.count;
    t.total += elapsed;
    if (elapsed > t.max)
        t.max = elapsed;
}

TimerStat
Telemetry::timer(const std::string &name) const
{
    auto it = timer_map.find(name);
    return it == timer_map.end() ? TimerStat{} : it->second;
}

void
Telemetry::record(DecisionRecord rec)
{
    decision_log.push_back(std::move(rec));
    while (decision_log.size() > maxDecisions)
        decision_log.pop_front();
}

void
Telemetry::merge(const Telemetry &other)
{
    for (const auto &[name, value] : other.counter_map)
        counter_map[name] += value;
    for (const auto &[name, stat] : other.timer_map) {
        TimerStat &t = timer_map[name];
        t.count += stat.count;
        t.total += stat.total;
        if (stat.max > t.max)
            t.max = stat.max;
    }
    for (const auto &rec : other.decision_log)
        record(rec);
}

void
Telemetry::reset()
{
    counter_map.clear();
    timer_map.clear();
    decision_log.clear();
}

void
Telemetry::dumpText(std::ostream &os) const
{
    os << "== telemetry ==\n";
    os << "counters:\n";
    for (const auto &[name, value] : counter_map)
        os << "  " << name << " = " << value << "\n";
    os << "timers:\n";
    for (const auto &[name, t] : timer_map) {
        os << "  " << name << ": count=" << t.count
           << " total=" << toSeconds(t.total) << "s"
           << " max=" << toSeconds(t.max) << "s\n";
    }
    os << "decisions (" << decision_log.size() << "):\n";
    for (const auto &d : decision_log) {
        os << "  t=" << toSeconds(d.when) << "s"
           << " trigger=" << d.trigger << " policy=" << d.policy
           << " plan=" << d.plan << " mode=" << d.mode
           << " objective=" << d.objective << " budget=" << d.budget
           << "W apps=" << d.apps
           << " latency=" << toSeconds(d.latency) << "s\n";
    }
}

void
Telemetry::dumpJson(std::ostream &os) const
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counter_map) {
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":" << value;
        first = false;
    }
    os << "},\"timers\":{";
    first = true;
    for (const auto &[name, t] : timer_map) {
        os << (first ? "" : ",") << "\"" << jsonEscape(name)
           << "\":{\"count\":" << t.count
           << ",\"total_s\":" << toSeconds(t.total)
           << ",\"max_s\":" << toSeconds(t.max) << "}";
        first = false;
    }
    os << "},\"decisions\":[";
    first = true;
    for (const auto &d : decision_log) {
        os << (first ? "" : ",") << "{\"when_s\":" << toSeconds(d.when)
           << ",\"trigger\":\"" << jsonEscape(d.trigger) << "\""
           << ",\"policy\":\"" << jsonEscape(d.policy) << "\""
           << ",\"plan\":\"" << jsonEscape(d.plan) << "\""
           << ",\"mode\":\"" << jsonEscape(d.mode) << "\""
           << ",\"objective\":" << d.objective
           << ",\"budget_w\":" << d.budget << ",\"apps\":" << d.apps
           << ",\"latency_s\":" << toSeconds(d.latency) << "}";
        first = false;
    }
    os << "]}";
}

} // namespace psm::core
