/**
 * @file
 * FastCap-style fair capping (Liu et al., "FastCap: Fair and Fast
 * Power Capping with Many-Core DVFS"): a rival allocator for the
 * policy arena.
 *
 * FastCap's objective is fairness under a power cap: every
 * application is throttled to a similar degree relative to its
 * uncapped performance, with per-core and memory DVFS chosen jointly.
 * Mapped onto this framework, "throttling degree" is exactly
 * normalized performance (perfNorm — heartbeat rate over uncapped
 * rate), and the joint core+memory knob space is the learnt (f, n, m)
 * Pareto frontier, so the policy maximizes the MINIMUM perfNorm
 * across applications instead of the paper scheme's SUM (Eq. 1):
 *
 *   1. find the highest uniform performance level t such that every
 *      application can reach min(t, its max) within the budget
 *      (water-filling over the discrete ladder of frontier levels);
 *   2. spend the leftover worst-first — repeatedly upgrade the
 *      application with the lowest achieved perfNorm to its next
 *      frontier point while the slack allows.
 *
 * Max-min trades aggregate utility for fairness, which is the point:
 * in the arena it brackets the paper's utilitarian allocator from the
 * egalitarian side.
 */

#ifndef PSM_CORE_POLICY_FASTCAP_HH
#define PSM_CORE_POLICY_FASTCAP_HH

#include "policy_registry.hh"

namespace psm::core
{

/** The FastCap-style max-min fair spatial planner. */
class FastCapPlanner : public SpatialPlanner
{
  public:
    Allocation plan(const std::vector<const UtilityCurve *> &curves,
                    Watts usable, const Context &ctx) override;
};

} // namespace psm::core

#endif // PSM_CORE_POLICY_FASTCAP_HH
