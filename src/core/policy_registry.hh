/**
 * @file
 * The policy arena's front door: a first-class registry of power
 * management policies.
 *
 * The five paper policies plus any number of rival allocators live
 * behind one table mapping a PolicyKind to its printable name, its
 * CLI spelling, its capability flags (what information the control
 * plane lets it use and how grants are enforced) and, for policies
 * that replace the built-in DP allocator, a factory producing a
 * SpatialPlanner.  Everything that used to switch over PolicyKind —
 * policy.cc's name/capability tables, psm-served's --policy parser,
 * the capture decoder's enum validation and the cluster manager's
 * per-node policy choice — now consults this registry, so adding an
 * allocator is one registration, not five edits.
 */

#ifndef PSM_CORE_POLICY_REGISTRY_HH
#define PSM_CORE_POLICY_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy.hh"
#include "power_allocator.hh"
#include "telemetry.hh"
#include "utility_curve.hh"
#include "util/units.hh"

namespace psm::core
{

/**
 * What a policy is allowed to know and how its grants are enforced.
 * The control plane consults these flags instead of switching on the
 * kind: they decide whether applications calibrate, which knobs the
 * learnt frontier may vary, whether ESD plans are considered and
 * whether per-application grants are enforced by RAPL clock
 * modulation instead of per-resource knob settings.
 */
struct PolicyCaps
{
    /** Learns per-application utilities (apps calibrate online). */
    bool appAware = false;
    /** Apportions power across the full (f, n, m) knob space;
     * without it the frontier is restricted to frequency only. */
    bool resAware = false;
    /** Considers ESD-assisted consolidated duty cycling. */
    bool usesEsd = false;
    /** Per-application grants are enforced with the default hardware
     * knob (RAPL clock modulation), which can throttle below any
     * frontier point — so curve minima are not hard minima. */
    bool raplEnforced = false;
};

/**
 * A pluggable spatial allocator: rival policies that keep the
 * standard control-plane ladder (calibration, degradation fallbacks,
 * temporal plans) but replace the budget-splitting optimization
 * itself.  plan() must conserve the budget — the sum of granted
 * operating-point powers may never exceed @p usable (bench_arena
 * --check trips otherwise).  Returning an allocation with
 * !allScheduled() sends the selector down the standard fallback
 * ladder (temporal duty cycling, fair RAPL, idle).
 *
 * Planners may keep cross-event state (warm starts); determinism is
 * still required — the same call sequence must reproduce the same
 * plans bit-for-bit, or capture replay diverges.
 */
class SpatialPlanner
{
  public:
    /** Everything a planner may consult besides the curves. */
    struct Context
    {
        const power::PlatformConfig &platform;
        const AllocatorConfig &allocator;
        Telemetry *telemetry = nullptr; ///< may be null
    };

    virtual ~SpatialPlanner() = default;

    /** Split @p usable watts across @p curves (admission order). */
    virtual Allocation
    plan(const std::vector<const UtilityCurve *> &curves, Watts usable,
         const Context &ctx) = 0;
};

/** Factory for a policy's planner; null for the built-in DP. */
using PlannerFactory = std::function<std::unique_ptr<SpatialPlanner>()>;

/** One registered policy. */
struct PolicyInfo
{
    PolicyKind kind = PolicyKind::UtilUnaware;
    /** Printable name, matching the paper's figure legends. */
    std::string name;
    /** CLI spelling (psm-served --policy, bench filters). */
    std::string cliName;
    PolicyCaps caps;
    /** Planner factory; null policies use the built-in allocator. */
    PlannerFactory makePlanner;
};

/**
 * The process-wide policy table.  Built-ins register on first use;
 * out-of-tree policies may add() themselves at startup (registration
 * is not thread-safe — do it before spinning up managers).
 */
class PolicyRegistry
{
  public:
    static PolicyRegistry &instance();

    /** All registered policies, registration order. */
    const std::vector<PolicyInfo> &all() const { return entries; }

    /** Look up by kind; null when unregistered. */
    const PolicyInfo *find(PolicyKind kind) const;

    /** Look up by kind; panics when unregistered (the old invalid-
     * PolicyKind panic, now in one place). */
    const PolicyInfo &infoFor(PolicyKind kind) const;

    /** Look up by CLI spelling; null when unknown. */
    const PolicyInfo *findName(const std::string &cli_name) const;

    /**
     * Validate a policy id read from an untrusted capture file:
     * null unless @p wire_id is the encoding of a registered kind.
     * The wire encoding of a PolicyKind is its enum value.
     */
    const PolicyInfo *findWireId(std::uint8_t wire_id) const;

    /** "util-unaware|server-res-aware|..." for usage strings. */
    std::string cliNames() const;

    /**
     * Register a policy.  The kind and both names must be unused;
     * panics otherwise (a duplicate registration is a programming
     * error, not user input).
     */
    void add(PolicyInfo info);

  private:
    PolicyRegistry();

    std::vector<PolicyInfo> entries;
};

} // namespace psm::core

#endif // PSM_CORE_POLICY_REGISTRY_HH
