/**
 * @file
 * The ServerManager: the paper's complete per-server framework
 * (Fig. 6) assembled around one simulated server.
 *
 * It is composition glue over the layered control plane:
 *
 *   LearningPipeline  — Profiler -> Sampler -> UtilityEstimator
 *   PlanSelector      — curves + policy + budget -> one plan
 *   Actuator          — plan -> Directives -> Coordinator/Accountant
 *   ControlLoop       — Accountant events E1-E4, trim, refresh
 *
 * all publishing on one Telemetry bus.  The policy (PolicyKind)
 * selects how much information each stage is allowed to use,
 * producing the baselines and schemes compared in Figs. 8 and 10.
 */

#ifndef PSM_CORE_MANAGER_HH
#define PSM_CORE_MANAGER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accountant.hh"
#include "actuator.hh"
#include "cf/cross_validation.hh"
#include "cf/estimator.hh"
#include "cf/profiler.hh"
#include "cf/sampler.hh"
#include "control_loop.hh"
#include "coordinator.hh"
#include "learning_pipeline.hh"
#include "plan_selector.hh"
#include "policy.hh"
#include "power_allocator.hh"
#include "sim/server.hh"
#include "telemetry.hh"
#include "utility_curve.hh"
#include "util/fault.hh"
#include "util/units.hh"

namespace psm::core
{

/** Configuration of the per-server management framework. */
struct ManagerConfig
{
    PolicyKind policy = PolicyKind::AppResAware;

    /** Fraction of knob settings measured online (Fig. 7's 10%). */
    double sampleFraction = 0.10;
    /** Use exhaustive ground-truth utilities instead of CF. */
    bool oracleUtilities = false;
    /** Relative measurement noise of online profiling. */
    double measurementNoise = 0.02;
    /** Wall-clock cost of measuring one knob setting online. */
    Tick calibrationPerSample = toTicks(0.018);

    /** Accountant poll / decision period. */
    Tick controlPeriod = toTicks(0.1);

    /**
     * Guard band: fraction of the dynamic budget withheld to absorb
     * utility-estimation error, so CF under-prediction does not turn
     * straight into cap overshoot.
     */
    double budgetGuard = 0.02;
    /** Gain of the integral cap-adherence trim loop. */
    double trimGain = 0.5;
    /** Spatial-mode steady-state refresh period (RAPL limit and trim
     * updates without a triggering event). */
    Tick refreshPeriod = toTicks(0.5);

    CoordinatorConfig coordinator;
    AllocatorConfig allocator;
    cf::AlsConfig als;
    cf::SamplingStrategy sampling = cf::SamplingStrategy::Stratified;
    AccountantConfig accountant;

    /**
     * Fault plan for this server.  When no rates are configured, the
     * `PSM_FAULT_RATE` environment variable (an ambient per-poll
     * probability) arms the injector instead; `faults.seed == 0`
     * derives the roll seed from `seed` below, so one manager seed
     * reproduces both the workload and the fault schedule.
     */
    util::FaultPlanConfig faults;

    std::uint64_t seed = 7;
};

/** Per-application accounting kept by the manager for reporting. */
struct AppRecord
{
    int id = -1;
    std::string name;
    Tick admitted = 0;
    Tick finishedAt = maxTick; ///< maxTick while still running
    double beats = 0.0;        ///< heartbeats completed so far
    double uncappedRate = 0.0; ///< heartbeat rate with no cap
    bool done = false;

    // Interactive (latency-critical) request statistics; zero for
    // batch applications.
    bool interactive = false;
    double sloP99 = 0.0;       ///< the profile's p99 SLO in seconds
    std::uint64_t requestArrivals = 0;
    std::uint64_t requestCompletions = 0;
    std::uint64_t requestSloViolations = 0;
    double requestP99 = 0.0;   ///< observed p99 in seconds
    double requestMeanResponse = 0.0; ///< mean response in seconds
    std::size_t queueDepth = 0;

    /** Fraction of completed requests that missed the SLO. */
    double violationFraction() const
    {
        return requestCompletions > 0
                   ? static_cast<double>(requestSloViolations) /
                         static_cast<double>(requestCompletions)
                   : 0.0;
    }

    /**
     * Throughput normalized to uncapped execution over the app's
     * lifetime so far (the paper's per-app metric).
     */
    double normalizedPerf(Tick now) const;
};

/**
 * The management framework for one server: composition glue over the
 * control-plane layers.
 */
class ServerManager : private ControlLoop::Delegate
{
  public:
    /**
     * @param server The server to manage; must outlive the manager.
     */
    ServerManager(sim::Server &server, ManagerConfig config = {});

    const ManagerConfig &config() const { return cfg; }
    sim::Server &server() { return srv; }
    const sim::Server &server() const { return srv; }
    const Coordinator &coordinator() const { return coord; }
    CoordinationMode mode() const { return coord.mode(); }

    /** The control plane's shared telemetry bus. */
    Telemetry &telemetry() { return tel; }
    const Telemetry &telemetry() const { return tel; }

    /** The learning layer (read access for tests and tools). */
    const LearningPipeline &learning() const { return pipeline; }

    /** The fault oracle this manager rolls against. */
    const util::FaultInjector &faultInjector() const
    {
        return injector;
    }

    /**
     * Seed the collaborative filtering corpus with exhaustively
     * profiled applications ("previously seen applications" in
     * Section III-A).  When later estimating an application that is
     * itself in the corpus, its own row is excluded (leave-one-out).
     */
    void seedCorpus(const std::vector<perf::AppProfile> &profiles);

    /**
     * Admit an application (event E2).  Calibration, if the policy
     * needs it, runs online and charges its wall-clock overhead; the
     * first utility-aware allocation lands once calibration is done.
     *
     * @return The application id.
     */
    int addApp(const perf::AppProfile &profile);

    /** Change the server cap (event E1; applied at the next poll). */
    void setCap(Watts cap);

    /**
     * Change the server cap only when it differs from the last cap
     * pushed through this entry point.  The hierarchical cluster
     * layer (PowerTree) re-resolves grants on every event and pushes
     * the result to every affected leaf; deduplicating here means an
     * untouched sibling subtree costs its servers no E1 event, no
     * allocator pass and no actuation — the per-server half of the
     * O(depth) propagation argument.
     *
     * @return true when a cap change was actually enqueued.
     */
    bool setCapIfChanged(Watts cap);

    /**
     * True while an app of this name occupies a live record — the
     * same test addApp() fatals on.  Callers admitting external
     * requests (the serving daemon) use this to pre-validate, since a
     * finished app's record stays live until the next poll retires it.
     */
    bool nameActive(const std::string &name) const;

    /**
     * Externally terminate an application (event E3 from outside the
     * simulation: the serving daemon's kill entry point, mirroring
     * the fault injector's app-kill path).  Harvests the app's
     * heartbeats and removes it from the server; the Accountant's
     * next poll emits the synthetic departure that retires the
     * record and replans.
     *
     * @return false when the id is unknown or the app already ended.
     */
    bool killApp(int id);

    /** Drive the managed server forward. */
    void run(Tick duration);

    /** Convenience: run until all admitted apps finish (bounded). */
    void runUntilAllDone(Tick max_duration);

    // --- Reporting ----------------------------------------------------

    /** Records for every app ever admitted, in admission order. */
    std::vector<AppRecord> records() const;

    /** True while any admitted app is unfinished. */
    bool anyAppRunning() const;

    /**
     * Mean normalized throughput across all admitted applications —
     * the per-mix bar of Figs. 8a and 10.
     */
    double serverNormalizedThroughput() const;

    /** Latest spatial allocation (empty before the first one). */
    const Allocation &lastAllocation() const
    {
        return actuator.lastAllocation();
    }

    /** Wall-clock latency of the most recent reallocation event
     * (calibration + decision), for the Section IV-C claim. */
    Tick lastReallocationLatency() const { return last_realloc_latency; }

    /** Total number of reallocations performed. */
    std::size_t reallocationCount() const { return realloc_count; }

    /** Events seen so far, in order (for tests and the dynamics
     * figure). */
    const std::vector<AccountantEvent> &eventLog() const
    {
        return control.eventLog();
    }

  private:
    sim::Server &srv;
    ManagerConfig cfg;
    Telemetry tel;
    util::FaultInjector injector;
    Coordinator coord;
    LearningPipeline pipeline;
    PlanSelector selector;
    ControlLoop control;
    Actuator actuator;

    Tick last_realloc_latency = 0;
    std::size_t realloc_count = 0;
    Tick next_fault_check = 0;
    Tick esd_restore_at = maxTick; ///< pending ESD restoration time
    Watts last_pushed_cap = 0.0;   ///< setCapIfChanged() dedup state
    bool cap_ever_pushed = false;

    /** Cumulative interactive totals already published as counters. */
    struct InteractivePublished
    {
        std::uint64_t arrivals = 0;
        std::uint64_t completions = 0;
        std::uint64_t violations = 0;
    } interactive_published;

    std::map<int, AppRecord> app_records;

    // ControlLoop::Delegate
    void onDeparture(const AccountantEvent &ev) override;
    bool onDrift(int app_id) override;
    bool onCalibrationsDue() override;
    void reallocate(const std::string &trigger) override;

    /** Refresh heartbeat counts of live records. */
    void syncRecords();

    /** Active apps in admission order. */
    std::vector<int> activeIds() const;

    /** Roll and apply injected faults (once per control period). */
    void maybeInjectFaults();

    static LearningConfig learningConfig(const ManagerConfig &cfg);
    static ControlLoopConfig controlConfig(const ManagerConfig &cfg);
    static ManagerConfig normalizedConfig(ManagerConfig cfg);
};

} // namespace psm::core

#endif // PSM_CORE_MANAGER_HH
