#include "control_loop.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

namespace
{

/** The trace event counting one accountant event kind (the typed
 * equivalent of the old "event." + eventKindName() key). */
trace::EventId
eventKindTraceId(EventKind kind)
{
    switch (kind) {
      case EventKind::CapChange:
        return trace::EventId::EventCapChange;
      case EventKind::Arrival:
        return trace::EventId::EventArrival;
      case EventKind::Departure:
        return trace::EventId::EventDeparture;
      case EventKind::Drift:
        break;
    }
    return trace::EventId::EventDrift;
}

} // namespace

ControlLoop::ControlLoop(sim::Server &server, Coordinator &coordinator,
                         ControlLoopConfig config, Delegate &delegate,
                         Telemetry *telemetry)
    : srv(server), coord(coordinator), cfg(config), delegate(delegate),
      acct(cfg.accountant), tel(telemetry)
{
    if (cfg.controlPeriod == 0)
        fatal("controlPeriod must be positive");
}

void
ControlLoop::maybePoll()
{
    if (srv.now() < next_control)
        return;
    poll();
    next_control = srv.now() + cfg.controlPeriod;
}

bool
ControlLoop::updateCapTrim()
{
    // Integral cap-adherence loop: trim the budget while the metered
    // power over the last control interval rides above the cap, relax
    // slowly when back under.  The meter's energy delta is the honest
    // signal (RAPL window averages carry ghosts across duty-cycle
    // transitions).  Trim grows only in the steadily-drawing modes
    // (Space/Time) — in EsdAssisted mode the battery bridges over-cap
    // draw by design — and is bounded so it can never idle the server
    // outright.
    Watts cap = srv.cap();
    bool steady = coord.mode() == CoordinationMode::Space ||
                  coord.mode() == CoordinationMode::Time;
    Joules energy = srv.meter().totalEnergy();
    Tick meter_now = srv.now();

    // Graceful degradation: a meter read can fail (injected fault or
    // genuinely non-finite aggregate).  Hold the last-known-good
    // baselines and skip the trim update — a bogus interval average
    // must not steer the integral loop.  Energy is cumulative, so on
    // recovery the delta over the whole outage still yields a correct
    // interval average.
    bool nan_read = !std::isfinite(energy) ||
                    (faults && faults->inject(util::FaultKind::MeterNan,
                                              meter_now));
    bool stale_read =
        !nan_read && faults &&
        faults->inject(util::FaultKind::MeterStale, meter_now);
    if (nan_read || stale_read) {
        if (tel) {
            tel->count(nan_read ? trace::EventId::FaultMeterNan
                                : trace::EventId::FaultMeterStale);
            tel->count(trace::EventId::DegradedMeterFallback);
        }
        if (meter_stale_since == maxTick)
            meter_stale_since = meter_now;
        bool watchdog_changed = false;
        if (meter_now - meter_stale_since >= cfg.meterWatchdog) {
            // Staleness watchdog: after a prolonged outage, bleed the
            // trim back toward the open-loop (guard-band only)
            // budget so a stale correction cannot pin the server at a
            // wrong operating point indefinitely.
            Watts before = cap_trim;
            cap_trim *= 0.8;
            if (tel)
                tel->count(trace::EventId::DegradedMeterWatchdog);
            watchdog_changed = std::abs(cap_trim - before) > 0.25;
        }
        return watchdog_changed;
    }
    if (meter_stale_since != maxTick) {
        meter_stale_since = maxTick;
        if (tel)
            tel->count(trace::EventId::DegradedMeterRecovered);
    }

    bool changed = false;
    if (cap > 0.0 && meter_now > last_meter_time) {
        Watts interval_avg = (energy - last_meter_energy) /
                             toSeconds(meter_now - last_meter_time);
        Watts setpoint = cap - 0.5;
        Watts before = cap_trim;
        if (steady && interval_avg > setpoint) {
            cap_trim += cfg.trimGain * (interval_avg - setpoint);
        } else if (interval_avg < setpoint) {
            // Headroom: hand it back.  In Time mode the OFF slots
            // legitimately sit far below the cap, so only decay
            // there; in Space mode run the full symmetric loop.
            if (coord.mode() == CoordinationMode::Space) {
                cap_trim -= cfg.trimGain *
                            std::min(setpoint - interval_avg, 2.0);
            } else {
                cap_trim *= 0.95;
            }
        }
        Watts raw_budget = std::max(
            cap - srv.platform().idlePower - srv.platform().cmPower,
            0.0);
        cap_trim = std::clamp(cap_trim, -0.3 * raw_budget,
                              0.6 * raw_budget);
        if (std::abs(cap_trim - before) > 0.25)
            changed = true;
    }
    last_meter_energy = energy;
    last_meter_time = meter_now;
    return changed;
}

void
ControlLoop::poll()
{
    if (tel)
        tel->count(trace::EventId::ControlPolls);
    bool need_realloc = false;
    std::string trigger;

    if (updateCapTrim()) {
        need_realloc = true;
        trigger = "cap-trim";
        if (tel)
            tel->count(trace::EventId::ControlTrimReplans);
    }

    // Steady-state refresh: re-derive RAPL limits and re-apply the
    // plan periodically so demand-following enforcement tracks the
    // applications (temporal refreshes update slots in place).  Idle
    // mode also retries here, in case a transient drove the trim up.
    bool steady = coord.mode() == CoordinationMode::Space ||
                  coord.mode() == CoordinationMode::Time;
    if (srv.now() >= next_refresh &&
        (steady || coord.mode() == CoordinationMode::Idle)) {
        if (!need_realloc)
            trigger = "refresh";
        need_realloc = true;
        next_refresh = srv.now() + cfg.refreshPeriod;
    }

    if (delegate.onCalibrationsDue()) {
        need_realloc = true;
        trigger = "calibration-done";
    }

    for (const AccountantEvent &ev : acct.poll(srv)) {
        event_log.push_back(ev);
        if (tel)
            tel->count(eventKindTraceId(ev.kind));
        switch (ev.kind) {
          case EventKind::CapChange:
            srv.setCap(ev.newCap);
            need_realloc = true;
            trigger = eventKindName(ev.kind);
            break;
          case EventKind::Arrival:
            need_realloc = true;
            trigger = eventKindName(ev.kind);
            break;
          case EventKind::Departure:
            // Synthetic E3s (app killed / vanished without finishing)
            // arrive with the server entry already gone.
            if (!srv.hasApp(ev.appId) && tel)
                tel->count(trace::EventId::DegradedAppReaped);
            delegate.onDeparture(ev);
            acct.forget(ev.appId);
            if (srv.hasApp(ev.appId))
                srv.remove(ev.appId);
            need_realloc = true;
            trigger = eventKindName(ev.kind);
            break;
          case EventKind::Drift:
            if (delegate.onDrift(ev.appId)) {
                need_realloc = true;
                trigger = eventKindName(ev.kind);
            }
            break;
        }
    }

    if (need_realloc)
        delegate.reallocate(trigger);
}

} // namespace psm::core
