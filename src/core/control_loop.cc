#include "control_loop.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

ControlLoop::ControlLoop(sim::Server &server, Coordinator &coordinator,
                         ControlLoopConfig config, Delegate &delegate,
                         Telemetry *telemetry)
    : srv(server), coord(coordinator), cfg(config), delegate(delegate),
      acct(cfg.accountant), tel(telemetry)
{
    if (cfg.controlPeriod == 0)
        fatal("controlPeriod must be positive");
}

void
ControlLoop::maybePoll()
{
    if (srv.now() < next_control)
        return;
    poll();
    next_control = srv.now() + cfg.controlPeriod;
}

bool
ControlLoop::updateCapTrim()
{
    // Integral cap-adherence loop: trim the budget while the metered
    // power over the last control interval rides above the cap, relax
    // slowly when back under.  The meter's energy delta is the honest
    // signal (RAPL window averages carry ghosts across duty-cycle
    // transitions).  Trim grows only in the steadily-drawing modes
    // (Space/Time) — in EsdAssisted mode the battery bridges over-cap
    // draw by design — and is bounded so it can never idle the server
    // outright.
    Watts cap = srv.cap();
    bool steady = coord.mode() == CoordinationMode::Space ||
                  coord.mode() == CoordinationMode::Time;
    Joules energy = srv.meter().totalEnergy();
    Tick meter_now = srv.now();
    bool changed = false;
    if (cap > 0.0 && meter_now > last_meter_time) {
        Watts interval_avg = (energy - last_meter_energy) /
                             toSeconds(meter_now - last_meter_time);
        Watts setpoint = cap - 0.5;
        Watts before = cap_trim;
        if (steady && interval_avg > setpoint) {
            cap_trim += cfg.trimGain * (interval_avg - setpoint);
        } else if (interval_avg < setpoint) {
            // Headroom: hand it back.  In Time mode the OFF slots
            // legitimately sit far below the cap, so only decay
            // there; in Space mode run the full symmetric loop.
            if (coord.mode() == CoordinationMode::Space) {
                cap_trim -= cfg.trimGain *
                            std::min(setpoint - interval_avg, 2.0);
            } else {
                cap_trim *= 0.95;
            }
        }
        Watts raw_budget = std::max(
            cap - srv.platform().idlePower - srv.platform().cmPower,
            0.0);
        cap_trim = std::clamp(cap_trim, -0.3 * raw_budget,
                              0.6 * raw_budget);
        if (std::abs(cap_trim - before) > 0.25)
            changed = true;
    }
    last_meter_energy = energy;
    last_meter_time = meter_now;
    return changed;
}

void
ControlLoop::poll()
{
    if (tel)
        tel->count("control.polls");
    bool need_realloc = false;
    std::string trigger;

    if (updateCapTrim()) {
        need_realloc = true;
        trigger = "cap-trim";
        if (tel)
            tel->count("control.trim_replans");
    }

    // Steady-state refresh: re-derive RAPL limits and re-apply the
    // plan periodically so demand-following enforcement tracks the
    // applications (temporal refreshes update slots in place).  Idle
    // mode also retries here, in case a transient drove the trim up.
    bool steady = coord.mode() == CoordinationMode::Space ||
                  coord.mode() == CoordinationMode::Time;
    if (srv.now() >= next_refresh &&
        (steady || coord.mode() == CoordinationMode::Idle)) {
        if (!need_realloc)
            trigger = "refresh";
        need_realloc = true;
        next_refresh = srv.now() + cfg.refreshPeriod;
    }

    if (delegate.onCalibrationsDue()) {
        need_realloc = true;
        trigger = "calibration-done";
    }

    for (const AccountantEvent &ev : acct.poll(srv)) {
        event_log.push_back(ev);
        if (tel)
            tel->count("event." + eventKindName(ev.kind));
        switch (ev.kind) {
          case EventKind::CapChange:
            srv.setCap(ev.newCap);
            need_realloc = true;
            trigger = eventKindName(ev.kind);
            break;
          case EventKind::Arrival:
            need_realloc = true;
            trigger = eventKindName(ev.kind);
            break;
          case EventKind::Departure:
            delegate.onDeparture(ev);
            acct.forget(ev.appId);
            srv.remove(ev.appId);
            need_realloc = true;
            trigger = eventKindName(ev.kind);
            break;
          case EventKind::Drift:
            if (delegate.onDrift(ev.appId)) {
                need_realloc = true;
                trigger = eventKindName(ev.kind);
            }
            break;
        }
    }

    if (need_realloc)
        delegate.reallocate(trigger);
}

} // namespace psm::core
