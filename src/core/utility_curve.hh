/**
 * @file
 * Power-utility curves and Pareto frontiers over the knob space.
 *
 * A utility surface (power and heartbeat rate per knob setting, either
 * measured or CF-estimated) is reduced to a Pareto frontier: the
 * settings for which no other setting delivers more performance at no
 * more power.  The frontier is the object the PowerAllocator searches:
 * its slope at a budget is the application's marginal utility per
 * watt (Fig. 2), and comparing frontiers restricted to single knobs
 * yields the per-resource utilities of Fig. 3.
 */

#ifndef PSM_CORE_UTILITY_CURVE_HH
#define PSM_CORE_UTILITY_CURVE_HH

#include <optional>
#include <string>
#include <vector>

#include "cf/estimator.hh"
#include "perf/app_profile.hh"
#include "power/platform.hh"
#include "util/units.hh"

namespace psm::core
{

/**
 * The queueing contract of an interactive application, as far as the
 * allocator needs to know it: offered load, mean request cost, and
 * the p99 SLO.  When attached to a UtilityCurve it replaces throughput
 * normalization with an SLO utility (see the curve constructor).
 */
struct InteractiveSlo
{
    double offeredLoad = 0.0;  ///< lambda, requests per second
    double hbPerRequest = 0.0; ///< mean request cost in heartbeats
    double sloP99 = 0.0;       ///< p99 SLO in seconds

    bool valid() const
    {
        return offeredLoad > 0.0 && hbPerRequest > 0.0 && sloP99 > 0.0;
    }

    /** The spec of an interactive profile; invalid (all-zero) for
     * batch profiles. */
    static InteractiveSlo fromProfile(const perf::AppProfile &p)
    {
        InteractiveSlo s;
        if (p.interactive()) {
            s.offeredLoad = p.offeredLoad;
            s.hbPerRequest = p.hbPerRequest;
            s.sloP99 = p.sloP99;
        }
        return s;
    }
};

/** One Pareto-optimal operating point. */
struct UtilityPoint
{
    power::KnobSetting setting; ///< knobs achieving the point
    Watts power = 0.0;          ///< predicted application power P_X
    double hbRate = 0.0;        ///< predicted heartbeat rate
    double perfNorm = 0.0;      ///< hbRate / uncapped hbRate
};

/**
 * Which knobs a frontier may vary; baselines that are unaware of
 * resource-level utilities only scale frequency (the way RAPL
 * enforcement does), while the full scheme searches all three knobs.
 */
enum class KnobFreedom
{
    FrequencyOnly, ///< n = n_max, m = m_max, vary f
    All,           ///< vary f, n and m jointly
};

/**
 * The Pareto frontier of one application's utility surface, sorted by
 * increasing power.
 */
class UtilityCurve
{
  public:
    /**
     * Build from a surface.
     *
     * @param name Application name (for reporting).
     * @param settings Knob setting of each surface column.
     * @param surface Predicted power / heartbeat rate per column.
     * @param freedom Which knob combinations are admissible.
     * @param platform Optional platform description (reserved for
     *        enforcement-specific curve adjustments; currently
     *        unused).
     * @param slo Optional interactive-SLO spec.  When valid, perfNorm
     *        is no longer hbRate/uncapped but the SLO utility
     *        min(1, sloP99 / p99(mu, lambda)) with mu the service rate
     *        the setting's heartbeat rate sustains — 0 where the M/M/1
     *        queue is unstable, saturating at 1 once the tail meets
     *        the SLO.  The transform is monotone non-decreasing in
     *        hbRate, so the Pareto frontier and every allocator
     *        invariant (non-decreasing perfNorm along the curve) are
     *        preserved; the DP, fastcap and cuttlesys policies see a
     *        curve whose marginal utility collapses past the SLO knee
     *        and trade watts to batch apps exactly there.
     */
    UtilityCurve(std::string name,
                 const std::vector<power::KnobSetting> &settings,
                 const cf::UtilitySurface &surface,
                 KnobFreedom freedom = KnobFreedom::All,
                 const power::PlatformConfig *platform = nullptr,
                 const InteractiveSlo *slo = nullptr);

    const std::string &name() const { return app_name; }
    const std::vector<UtilityPoint> &points() const { return frontier; }
    bool empty() const { return frontier.empty(); }

    /** Uncapped (max-setting) heartbeat rate used for normalization. */
    double uncappedHbRate() const { return nocap_rate; }

    /** The interactive-SLO spec shaping perfNorm; nullopt for
     * throughput (batch) curves. */
    const std::optional<InteractiveSlo> &interactiveSlo() const
    {
        return slo_spec;
    }

    /** Least power at which the application can run at all. */
    Watts minPower() const;
    /** Power of the most performant point. */
    Watts maxPower() const;

    /**
     * Best point whose power fits within @p budget; nullopt when even
     * the cheapest point exceeds it.
     */
    std::optional<UtilityPoint> bestWithin(Watts budget) const;

    /**
     * The frontier compressed onto the allocator's bucket grid: for
     * each frontier point affordable within @p reserve plus
     * @p max_buckets * @p granularity, the smallest bucket count at
     * which bestWithin(reserve + buckets * granularity) reaches it,
     * paired with the perfNorm delivered there.
     *
     * perfAt() is a non-decreasing step function of the bucket index,
     * so these thresholds are the only indices where its value
     * changes: a DP transition restricted to them is exactly
     * equivalent to scanning every bucket, at O(points) instead of
     * O(buckets) cost.  Values are re-read through perfAt() at the
     * threshold so the compressed transition sees bit-identical
     * doubles to a dense per-bucket table.  Always contains the
     * (0, perfAt(reserve)) candidate; thresholds strictly increase.
     */
    std::vector<std::pair<std::size_t, double>>
    bucketCandidates(Watts reserve, Watts granularity,
                     std::size_t max_buckets) const;

    /** Normalized performance at @p budget (0 when infeasible). */
    double perfAt(Watts budget) const;

    /**
     * Marginal utility at @p budget: d(perfNorm)/d(watts) estimated
     * from the frontier segment containing the budget; 0 beyond the
     * frontier's ends.
     */
    double marginalUtility(Watts budget) const;

    /**
     * The point with the highest perfNorm-per-watt ratio within
     * @p budget — the most efficient ON-period operating point for
     * duty cycling.
     */
    std::optional<UtilityPoint> mostEfficientWithin(Watts budget) const;

  private:
    std::string app_name;
    std::vector<UtilityPoint> frontier;
    double nocap_rate = 0.0;
    std::optional<InteractiveSlo> slo_spec;
};

/**
 * Per-resource marginal utilities at a base setting (the bars of
 * Fig. 3/9d): performance gained per extra watt spent on one more
 * core, one DVFS step, or one more DRAM watt.
 */
struct ResourceMarginals
{
    double corePerWatt = 0.0; ///< +1 core
    double freqPerWatt = 0.0; ///< +1 DVFS step on all cores
    double dramPerWatt = 0.0; ///< +1 W DRAM budget
};

/**
 * Compute resource marginals from a surface around @p base.
 */
ResourceMarginals
resourceMarginals(const power::PlatformConfig &config,
                  const std::vector<power::KnobSetting> &settings,
                  const cf::UtilitySurface &surface,
                  const power::KnobSetting &base);

/**
 * Average several surfaces cell-wise — the application-agnostic
 * "server level" utility the Server+Res-Aware baseline uses.
 */
cf::UtilitySurface
averageSurfaces(const std::vector<cf::UtilitySurface> &surfaces);

} // namespace psm::core

#endif // PSM_CORE_UTILITY_CURVE_HH
