/**
 * @file
 * The PowerAllocator: apportions the server's dynamic power budget
 * across applications (R1) and, through each application's utility
 * frontier, across its direct resources (R2) — the optimization of
 * Eq. 1 subject to Eq. 2.
 *
 * Allocation is a discrete knapsack over per-application Pareto
 * frontiers, solved by dynamic programming at sub-watt granularity,
 * followed by a greedy pass that hands any slack to the application
 * with the best marginal utility.  The DP transition only inspects
 * the bucket thresholds where a frontier point first becomes
 * affordable (P points instead of B buckets per cell — bit-identical
 * to the dense scan, see AllocatorConfig::denseDp), and an optional
 * AllocatorCache reuses prefix/suffix tables across E1–E4 events so
 * single arrivals and departures avoid a full re-solve.
 *
 * Besides the spatial allocation it also produces the two temporal
 * plans the Coordinator needs: alternate duty-cycle slots (R3b) and
 * the ESD-assisted consolidated plan with the Eq. 5 duty ratio (R4).
 */

#ifndef PSM_CORE_POWER_ALLOCATOR_HH
#define PSM_CORE_POWER_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "esd/battery.hh"
#include "power/platform.hh"
#include "telemetry.hh"
#include "utility_curve.hh"
#include "util/units.hh"

namespace psm::core
{

/** The allocator's verdict for one application. */
struct AppAllocation
{
    std::string app;       ///< application name
    Watts budget = 0.0;    ///< granted power budget P_X
    /** Chosen operating point; nullopt when the app got nothing. */
    std::optional<UtilityPoint> point;
    double expectedPerf = 0.0; ///< perfNorm the point should deliver

    bool scheduled() const { return point.has_value(); }
};

/** A complete spatial allocation. */
struct Allocation
{
    std::vector<AppAllocation> apps;
    Watts dynamicBudget = 0.0; ///< budget that was divided
    Watts used = 0.0;          ///< sum of granted app power
    double objective = 0.0;    ///< sum of expected perfNorm (Eq. 1)

    /** True when every application received a feasible point. */
    bool allScheduled() const;
};

/** One application's slot in an alternate duty-cycle schedule. */
struct TemporalSlot
{
    std::string app;
    UtilityPoint point;  ///< operating point during the ON period
    double share = 0.0;  ///< fraction of wall-clock time ON
};

/** A temporal (alternate duty-cycling) plan. */
struct TemporalPlan
{
    std::vector<TemporalSlot> slots;
    double objective = 0.0; ///< sum share * perfNorm
    /** Apps that cannot run even alone within the budget. */
    std::vector<std::string> unschedulable;
};

/** An ESD-assisted consolidated duty-cycle plan (R4). */
struct EsdPlan
{
    Allocation onAllocation; ///< spatial allocation during ON periods
    double offFraction = 0.0; ///< (d2-d1)/(d3-d1) from Eq. 5
    Watts deficit = 0.0;      ///< draw above cap during ON, from ESD
    Watts chargePower = 0.0;  ///< wall power into ESD during OFF
    double objective = 0.0;   ///< onFraction * sum perfNorm
    bool viable = false;      ///< a positive-throughput plan exists
};

/** How duty-cycle ON-time shares are chosen. */
enum class ShareMode
{
    Equal,          ///< fair alternate duty cycling (the baselines)
    UtilityWeighted, ///< shares follow perf-per-watt, with a floor
};

/** Allocator tuning. */
struct AllocatorConfig
{
    Watts granularity = 0.25;   ///< DP watt quantum
    double shareFloor = 0.25;   ///< min ON share under UtilityWeighted
    /** Candidate ON-budget steps searched when planning with ESD. */
    Watts esdSearchStep = 1.0;
    /**
     * When the budget covers every application's cheapest frontier
     * point, reserve those minima before optimizing (Eq. 1 weighs
     * apps evenly — nobody starves while spatial coordination is
     * feasible).  Disable for policies whose enforcement can throttle
     * below the frontier's floor (RAPL clock modulation), where the
     * curve minimum is not a real hardware minimum.
     */
    bool reserveMinima = true;
    /**
     * Exact-equivalence fallback: solve with the dense O(k·B²)
     * per-bucket DP and re-run the full allocation for every esdPlan
     * sweep candidate, instead of the frontier-compressed O(k·B·P)
     * transition with one shared sweep table.  Both paths produce
     * bit-identical allocations (bench_allocator --check trips
     * otherwise); this flag exists as the A/B baseline and as an
     * escape hatch.
     */
    bool denseDp = false;
};

/**
 * Cross-event DP state for incremental re-allocation.
 *
 * The spatial knapsack is re-solved on every E1–E4 event, yet between
 * events the curve set usually changes by at most one application:
 * the cache keeps the per-app frontier candidates plus prefix tables
 * pre[i] (apps [0,i) folded left-to-right) and suffix tables suf[i]
 * (apps [i,k) folded right-to-left), so
 *
 *  - an unchanged sequence is served by walking the cached choices,
 *  - an arrival appended at the end extends the prefix tables with
 *    one pass per new app,
 *  - a departure of app j recombines pre[j] with suf[j+1] in O(B)
 *    instead of recomputing all k apps.
 *
 * Tables are built a little wider than the current bucket count so a
 * departure's freed reserve minimum (which re-enters the headroom)
 * still lands inside them.  Validity is keyed on the owner's
 * surface-cache epoch: any recalibration that replaces a live curve
 * must bump the epoch or the cache serves stale frontiers.
 */
class AllocatorCache
{
  public:
    /** Drop all cached state (next use rebuilds). */
    void invalidate() { valid = false; }

  private:
    friend class PowerAllocator;

    /** One application's frontier on the bucket grid. */
    struct AppEntry
    {
        std::string name;
        Watts reserve = 0.0;
        /** (bucket threshold, perfNorm), thresholds ascending. */
        std::vector<std::pair<std::size_t, double>> cands;
    };

    bool valid = false;
    std::uint64_t epoch = 0;
    Watts granularity = 0.0;
    bool reserveApplied = false;
    std::size_t buckets = 0; ///< table width (includes the pad)
    std::vector<AppEntry> apps;
    /** pre[i][b]: best objective of apps [0,i) within b buckets. */
    std::vector<std::vector<double>> pre;
    std::vector<std::vector<std::size_t>> preChoice;
    /** suf[i][b]: best objective of apps [i,k) within b buckets. */
    std::vector<std::vector<double>> suf;
    std::vector<std::vector<std::size_t>> sufChoice;
};

/**
 * Stateless allocator over utility frontiers.  All cross-event state
 * lives in a caller-owned AllocatorCache; the allocator itself can be
 * constructed freely per decision.
 */
class PowerAllocator
{
  public:
    explicit PowerAllocator(AllocatorConfig config = {});

    const AllocatorConfig &config() const { return cfg; }

    /** Attach a telemetry bus (nullptr detaches). */
    void setTelemetry(Telemetry *telemetry) { tel = telemetry; }

    /**
     * Utility-optimal split of @p dynamic_budget across @p curves
     * (DP + greedy slack pass).  Applications whose cheapest point
     * does not fit may end up unscheduled (budget 0).
     */
    Allocation allocate(const std::vector<const UtilityCurve *> &curves,
                        Watts dynamic_budget) const;

    /**
     * Same optimization, reusing @p cache across events: identical
     * curve sequences walk cached tables, an appended arrival extends
     * them, a single departure recombines the prefix/suffix halves.
     * @p epoch is the owner's surface-cache epoch; the cache is
     * invalid the moment it changes.  epoch 0 means "no epoch
     * discipline available" and bypasses the cache entirely.
     */
    Allocation allocate(const std::vector<const UtilityCurve *> &curves,
                        Watts dynamic_budget, AllocatorCache *cache,
                        std::uint64_t epoch) const;

    /**
     * The Util-Unaware baseline's split: every application gets an
     * equal share regardless of utility.
     */
    Allocation
    equalSplit(const std::vector<const UtilityCurve *> &curves,
               Watts dynamic_budget) const;

    /**
     * Alternate duty-cycle plan: one application ON at a time, each
     * using the whole @p on_budget during its slot.
     */
    TemporalPlan
    temporalPlan(const std::vector<const UtilityCurve *> &curves,
                 Watts on_budget, ShareMode mode) const;

    /**
     * ESD-assisted consolidated plan: all applications ON together
     * above the cap, bridged by the battery, alternating with
     * all-off charge periods per Eq. 5.
     *
     * @param idle_power P_idle of the platform.
     * @param cm_power P_cm of the platform.
     * @param cap The server power cap.
     * @param esd The battery's static parameters.
     * @param off_cm_power Management power still drawn during OFF
     *        (charge) periods.  0 on platforms whose uncore parks in
     *        PC6 once every core sleeps (the default platform — its
     *        OFF draw is P_idle alone, matching the paper's §II-C
     *        headroom example); set to the platform's P_cm when the
     *        management plane stays awake while charging, where
     *        ignoring it would understate Eq. 5's off/on ratio and
     *        overstate the plan objective.
     */
    EsdPlan esdPlan(const std::vector<const UtilityCurve *> &curves,
                    Watts idle_power, Watts cm_power, Watts cap,
                    const esd::BatteryConfig &esd,
                    Watts off_cm_power = 0.0) const;

  private:
    /** Reserve-minima decision plus the resulting bucket count. */
    struct ReservePlan
    {
        std::vector<Watts> reserve;
        Watts total = 0.0;
        bool applied = false;
        std::size_t buckets = 0;
    };

    AllocatorConfig cfg;
    Telemetry *tel = nullptr;

    ReservePlan
    reservePlan(const std::vector<const UtilityCurve *> &curves,
                Watts dynamic_budget) const;

    /** One-shot solve (no cross-event state); dense or frontier DP
     * per cfg.denseDp. */
    Allocation
    solveDirect(const std::vector<const UtilityCurve *> &curves,
                Watts dynamic_budget, const ReservePlan &rp) const;

    /** Cache-backed solve: full hit / extend / combine / rebuild. */
    Allocation
    solveCached(const std::vector<const UtilityCurve *> &curves,
                Watts dynamic_budget, const ReservePlan &rp,
                AllocatorCache &cache, std::uint64_t epoch) const;

    void rebuildCache(const std::vector<const UtilityCurve *> &curves,
                      const ReservePlan &rp, AllocatorCache &cache,
                      std::uint64_t epoch) const;

    /** bestWithin + slack pass + objective/used rollup over per-app
     * granted watts, with the point<=budget invariant asserted. */
    Allocation
    buildAllocation(const std::vector<const UtilityCurve *> &curves,
                    const std::vector<Watts> &granted,
                    Watts dynamic_budget) const;

    /** Greedy upgrade pass distributing DP slack.  Bounded: a
     * non-monotonic marginal-utility corner case cannot spin forever
     * (guard trips are counted on the telemetry bus). */
    void distributeSlack(const std::vector<const UtilityCurve *> &curves,
                         Allocation &alloc) const;
};

} // namespace psm::core

#endif // PSM_CORE_POWER_ALLOCATOR_HH
