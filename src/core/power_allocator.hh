/**
 * @file
 * The PowerAllocator: apportions the server's dynamic power budget
 * across applications (R1) and, through each application's utility
 * frontier, across its direct resources (R2) — the optimization of
 * Eq. 1 subject to Eq. 2.
 *
 * Allocation is a discrete knapsack over per-application Pareto
 * frontiers, solved by dynamic programming at sub-watt granularity,
 * followed by a greedy pass that hands any slack to the application
 * with the best marginal utility.
 *
 * Besides the spatial allocation it also produces the two temporal
 * plans the Coordinator needs: alternate duty-cycle slots (R3b) and
 * the ESD-assisted consolidated plan with the Eq. 5 duty ratio (R4).
 */

#ifndef PSM_CORE_POWER_ALLOCATOR_HH
#define PSM_CORE_POWER_ALLOCATOR_HH

#include <optional>
#include <string>
#include <vector>

#include "esd/battery.hh"
#include "power/platform.hh"
#include "telemetry.hh"
#include "utility_curve.hh"
#include "util/units.hh"

namespace psm::core
{

/** The allocator's verdict for one application. */
struct AppAllocation
{
    std::string app;       ///< application name
    Watts budget = 0.0;    ///< granted power budget P_X
    /** Chosen operating point; nullopt when the app got nothing. */
    std::optional<UtilityPoint> point;
    double expectedPerf = 0.0; ///< perfNorm the point should deliver

    bool scheduled() const { return point.has_value(); }
};

/** A complete spatial allocation. */
struct Allocation
{
    std::vector<AppAllocation> apps;
    Watts dynamicBudget = 0.0; ///< budget that was divided
    Watts used = 0.0;          ///< sum of granted app power
    double objective = 0.0;    ///< sum of expected perfNorm (Eq. 1)

    /** True when every application received a feasible point. */
    bool allScheduled() const;
};

/** One application's slot in an alternate duty-cycle schedule. */
struct TemporalSlot
{
    std::string app;
    UtilityPoint point;  ///< operating point during the ON period
    double share = 0.0;  ///< fraction of wall-clock time ON
};

/** A temporal (alternate duty-cycling) plan. */
struct TemporalPlan
{
    std::vector<TemporalSlot> slots;
    double objective = 0.0; ///< sum share * perfNorm
    /** Apps that cannot run even alone within the budget. */
    std::vector<std::string> unschedulable;
};

/** An ESD-assisted consolidated duty-cycle plan (R4). */
struct EsdPlan
{
    Allocation onAllocation; ///< spatial allocation during ON periods
    double offFraction = 0.0; ///< (d2-d1)/(d3-d1) from Eq. 5
    Watts deficit = 0.0;      ///< draw above cap during ON, from ESD
    Watts chargePower = 0.0;  ///< wall power into ESD during OFF
    double objective = 0.0;   ///< onFraction * sum perfNorm
    bool viable = false;      ///< a positive-throughput plan exists
};

/** How duty-cycle ON-time shares are chosen. */
enum class ShareMode
{
    Equal,          ///< fair alternate duty cycling (the baselines)
    UtilityWeighted, ///< shares follow perf-per-watt, with a floor
};

/** Allocator tuning. */
struct AllocatorConfig
{
    Watts granularity = 0.25;   ///< DP watt quantum
    double shareFloor = 0.25;   ///< min ON share under UtilityWeighted
    /** Candidate ON-budget steps searched when planning with ESD. */
    Watts esdSearchStep = 1.0;
    /**
     * When the budget covers every application's cheapest frontier
     * point, reserve those minima before optimizing (Eq. 1 weighs
     * apps evenly — nobody starves while spatial coordination is
     * feasible).  Disable for policies whose enforcement can throttle
     * below the frontier's floor (RAPL clock modulation), where the
     * curve minimum is not a real hardware minimum.
     */
    bool reserveMinima = true;
};

/**
 * Stateless allocator over utility frontiers.
 */
class PowerAllocator
{
  public:
    explicit PowerAllocator(AllocatorConfig config = {});

    const AllocatorConfig &config() const { return cfg; }

    /** Attach a telemetry bus (nullptr detaches). */
    void setTelemetry(Telemetry *telemetry) { tel = telemetry; }

    /**
     * Utility-optimal split of @p dynamic_budget across @p curves
     * (DP + greedy slack pass).  Applications whose cheapest point
     * does not fit may end up unscheduled (budget 0).
     */
    Allocation allocate(const std::vector<const UtilityCurve *> &curves,
                        Watts dynamic_budget) const;

    /**
     * The Util-Unaware baseline's split: every application gets an
     * equal share regardless of utility.
     */
    Allocation
    equalSplit(const std::vector<const UtilityCurve *> &curves,
               Watts dynamic_budget) const;

    /**
     * Alternate duty-cycle plan: one application ON at a time, each
     * using the whole @p on_budget during its slot.
     */
    TemporalPlan
    temporalPlan(const std::vector<const UtilityCurve *> &curves,
                 Watts on_budget, ShareMode mode) const;

    /**
     * ESD-assisted consolidated plan: all applications ON together
     * above the cap, bridged by the battery, alternating with
     * all-off charge periods per Eq. 5.
     *
     * @param idle_power P_idle of the platform.
     * @param cm_power P_cm of the platform.
     * @param cap The server power cap.
     * @param esd The battery's static parameters.
     */
    EsdPlan esdPlan(const std::vector<const UtilityCurve *> &curves,
                    Watts idle_power, Watts cm_power, Watts cap,
                    const esd::BatteryConfig &esd) const;

  private:
    AllocatorConfig cfg;
    Telemetry *tel = nullptr;

    /** Greedy upgrade pass distributing DP slack.  Bounded: a
     * non-monotonic marginal-utility corner case cannot spin forever
     * (guard trips are counted on the telemetry bus). */
    void distributeSlack(const std::vector<const UtilityCurve *> &curves,
                         Allocation &alloc) const;
};

} // namespace psm::core

#endif // PSM_CORE_POWER_ALLOCATOR_HH
