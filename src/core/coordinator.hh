/**
 * @file
 * The Coordinator: executes an allocation on the server, coordinating
 * application power draw in space (R3a), in time (R3b), or in space
 * and time with the ESD (R4).
 *
 *  - Space: all applications run simultaneously at their allocated
 *    operating points.
 *  - Time: alternate duty cycling — applications take ON turns whose
 *    lengths follow the planned shares; someone is always running, so
 *    P_cm is always paid.
 *  - ESD-assisted: consolidated duty cycling — everybody OFF while
 *    the battery charges from the cap headroom (Eq. 3), then
 *    everybody ON together above the cap with the battery bridging
 *    the deficit (Eq. 4), with the OFF:ON ratio from Eq. 5.  Running
 *    concurrently amortizes the non-convex P_cm, which is why this
 *    beats alternate cycling (Fig. 5).
 *
 * Enforcement per application is either direct knob actuation
 * (f, n, m) or a package RAPL limit (the hardware-enforced baseline).
 */

#ifndef PSM_CORE_COORDINATOR_HH
#define PSM_CORE_COORDINATOR_HH

#include <optional>
#include <string>
#include <vector>

#include "power/platform.hh"
#include "sim/server.hh"
#include "telemetry.hh"
#include "util/units.hh"

namespace psm::core
{

/** Coordination regimes. */
enum class CoordinationMode
{
    Idle,        ///< nothing scheduled
    Space,       ///< simultaneous execution under the cap (R3a)
    Time,        ///< alternate duty cycling (R3b)
    EsdAssisted, ///< consolidated duty cycling with the battery (R4)
};

/** Printable mode name. */
std::string coordinationModeName(CoordinationMode mode);

/** How one application should execute while it is ON. */
struct Directive
{
    int appId = -1;
    power::KnobSetting knobs;   ///< actuated unless useRapl
    bool useRapl = false;       ///< enforce via package RAPL instead
    Watts packageLimit = 0.0;   ///< RAPL limit when useRapl
};

/** Tuning of the temporal machinery. */
struct CoordinatorConfig
{
    Tick dutyPeriod = toTicks(2.0); ///< full ON/OFF cycle length
    /** Battery SoC floor: stop discharging below this. */
    double socFloor = 0.02;
};

/**
 * Stateful executor; the ServerManager installs plans and calls
 * advance() every simulation step.
 */
class Coordinator
{
  public:
    explicit Coordinator(CoordinatorConfig config = {});

    CoordinationMode mode() const { return current_mode; }

    /** Attach a telemetry bus (nullptr detaches). */
    void setTelemetry(Telemetry *telemetry) { tel = telemetry; }

    /** Suspend everything (no feasible plan and no ESD). */
    void idle(sim::Server &server);

    /**
     * Everybody runs at once with their directives.  An empty list
     * degrades to idle().
     */
    void coordinateSpace(sim::Server &server,
                         const std::vector<Directive> &directives);

    /**
     * Alternate duty cycling: slot i is ON for shares[i] of each duty
     * period.  Shares must be non-negative with a positive sum; a sum
     * away from 1 is renormalized (and counted on the telemetry bus).
     * An empty directive list degrades to idle().
     */
    void coordinateTime(sim::Server &server,
                        std::vector<Directive> directives,
                        std::vector<double> shares);

    /**
     * Consolidated ESD duty cycling with the given OFF fraction of
     * each period.  An empty directive list degrades to idle().
     */
    void coordinateEsd(sim::Server &server,
                       std::vector<Directive> directives,
                       double off_fraction);

    /**
     * Per-step upkeep: rotates duty-cycle turns and toggles ESD
     * charge windows.  Cheap when nothing changes.
     */
    void advance(sim::Server &server);

    /** Index of the slot currently ON in Time mode (-1 otherwise). */
    int activeSlot() const;

    /** True during the OFF (charging) phase of EsdAssisted mode. */
    bool inChargePhase() const
    {
        return current_mode == CoordinationMode::EsdAssisted &&
               esd_charging;
    }

  private:
    CoordinatorConfig cfg;
    CoordinationMode current_mode = CoordinationMode::Idle;
    Telemetry *tel = nullptr;

    // Time mode state.
    std::vector<Directive> slots;
    std::vector<double> slot_shares;
    std::size_t slot_ix = 0;
    Tick slot_started = 0;

    // ESD mode state.
    std::vector<Directive> esd_directives;
    double esd_off_fraction = 0.0;
    bool esd_charging = false;
    Tick esd_phase_started = 0;

    void applyDirective(sim::Server &server, const Directive &d,
                        bool run);
    void suspendAll(sim::Server &server);
    Tick slotLength(std::size_t ix) const;

    /** Switch modes, publishing the transition on the bus. */
    void enterMode(CoordinationMode mode);
};

} // namespace psm::core

#endif // PSM_CORE_COORDINATOR_HH
