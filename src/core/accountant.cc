#include "accountant.hh"

#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

std::string
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::CapChange:
        return "E1-cap-change";
      case EventKind::Arrival:
        return "E2-arrival";
      case EventKind::Departure:
        return "E3-departure";
      case EventKind::Drift:
        return "E4-drift";
      default:
        panic("invalid EventKind %d", static_cast<int>(kind));
    }
}

Accountant::Accountant(AccountantConfig config) : cfg(config)
{
    psm_assert(cfg.driftThreshold > 0.0);
}

void
Accountant::notifyCapChange(Watts new_cap)
{
    AccountantEvent ev;
    ev.kind = EventKind::CapChange;
    ev.newCap = new_cap;
    queued.push_back(ev);
}

void
Accountant::notifyArrival(int app_id)
{
    AccountantEvent ev;
    ev.kind = EventKind::Arrival;
    ev.appId = app_id;
    queued.push_back(ev);
    // Reset, don't keep: a reused app id (slot recycled after a kill
    // or migration) must not inherit the previous tenant's state — a
    // stale `reported_finished` would suppress the next E3 and a
    // stale `allocated` would mis-arm drift detection.
    tracked.insert_or_assign(app_id, TrackedApp{});
}

void
Accountant::setAllocatedPower(int app_id, Watts budget)
{
    auto it = tracked.find(app_id);
    if (it == tracked.end())
        it = tracked.emplace(app_id, TrackedApp{}).first;
    it->second.allocated = budget;
    it->second.drift_since = maxTick;
}

void
Accountant::forget(int app_id)
{
    tracked.erase(app_id);
}

std::vector<AccountantEvent>
Accountant::poll(const sim::Server &server)
{
    Tick now = server.now();
    std::vector<AccountantEvent> events = std::move(queued);
    queued.clear();
    for (auto &ev : events)
        ev.when = now;

    std::vector<int> vanished;
    for (auto &[id, state] : tracked) {
        if (!server.hasApp(id)) {
            // The app left the server without finishing (killed,
            // crashed, migrated away).  Emit the synthetic E3 exactly
            // once and drop the entry; skipping it forever leaked the
            // entry and silently swallowed the departure.
            if (!state.reported_finished) {
                AccountantEvent ev;
                ev.kind = EventKind::Departure;
                ev.when = now;
                ev.appId = id;
                events.push_back(ev);
            }
            vanished.push_back(id);
            continue;
        }
        const sim::Application &app = server.app(id);

        // E3: completion.
        if (app.finished()) {
            if (!state.reported_finished) {
                state.reported_finished = true;
                AccountantEvent ev;
                ev.kind = EventKind::Departure;
                ev.when = now;
                ev.appId = id;
                events.push_back(ev);
            }
            continue;
        }

        // E4: sustained deviation of observed draw from allocation.
        if (!drift_enabled || state.allocated <= 0.0 ||
            !app.running()) {
            state.drift_since = maxTick;
            continue;
        }
        Watts observed = server.observedAppPower(id);
        if (!std::isfinite(observed)) {
            // A garbage sensor reading must not masquerade as drift.
            state.drift_since = maxTick;
            continue;
        }
        double deviation = std::abs(observed - state.allocated) /
                           state.allocated;
        if (deviation > cfg.driftThreshold) {
            if (state.drift_since == maxTick)
                state.drift_since = now;
            bool held = now - state.drift_since >= cfg.driftHold;
            bool cooled =
                now - state.last_drift_event >= cfg.driftCooldown;
            if (held && cooled) {
                AccountantEvent ev;
                ev.kind = EventKind::Drift;
                ev.when = now;
                ev.appId = id;
                events.push_back(ev);
                state.last_drift_event = now;
                state.drift_since = maxTick;
            }
        } else {
            state.drift_since = maxTick;
        }
    }
    for (int id : vanished)
        tracked.erase(id);
    return events;
}

} // namespace psm::core
