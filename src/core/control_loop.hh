/**
 * @file
 * The ControlLoop: the reactive layer of the control plane.
 *
 * It owns the Accountant and the periodic poll that reacts to the
 * four events of Section III-C (E1 cap change, E2 arrival, E3
 * departure, E4 drift), plus the two steady-state feedback paths that
 * need no event at all: the integral cap-adherence trim and the
 * periodic plan refresh.  Whenever any of those demand a new plan it
 * calls back into its Delegate (the ServerManager), which re-runs
 * learning -> selection -> actuation.
 */

#ifndef PSM_CORE_CONTROL_LOOP_HH
#define PSM_CORE_CONTROL_LOOP_HH

#include <string>
#include <vector>

#include "accountant.hh"
#include "coordinator.hh"
#include "sim/server.hh"
#include "telemetry.hh"
#include "util/fault.hh"
#include "util/units.hh"

namespace psm::core
{

/** Tuning of the reactive layer. */
struct ControlLoopConfig
{
    /** Accountant poll / decision period. */
    Tick controlPeriod = toTicks(0.1);
    /** Gain of the integral cap-adherence trim loop. */
    double trimGain = 0.5;
    /** Spatial-mode steady-state refresh period (RAPL limit and trim
     * updates without a triggering event). */
    Tick refreshPeriod = toTicks(0.5);
    /** How long the meter may stay unreadable before the staleness
     * watchdog starts bleeding the integral trim back toward the
     * open-loop budget. */
    Tick meterWatchdog = toTicks(1.0);
    AccountantConfig accountant;
};

/**
 * Per-server reactive loop.  The server, coordinator and delegate
 * must outlive it.
 */
class ControlLoop
{
  public:
    /** The layer above: reacts to events and replans. */
    struct Delegate
    {
        virtual ~Delegate() = default;
        /** E3: bookkeep the departed app (the server entry is still
         * alive here; the loop removes it afterwards). */
        virtual void onDeparture(const AccountantEvent &ev) = 0;
        /** E4: restart calibration if the policy wants it.
         * @return Whether a re-allocation is needed. */
        virtual bool onDrift(int app_id) = 0;
        /** Deliver due calibrations.
         * @return Whether any finished (-> re-allocate). */
        virtual bool onCalibrationsDue() = 0;
        /** Re-run selection + actuation under the current trim. */
        virtual void reallocate(const std::string &trigger) = 0;
    };

    ControlLoop(sim::Server &server, Coordinator &coordinator,
                ControlLoopConfig config, Delegate &delegate,
                Telemetry *telemetry = nullptr);

    Accountant &accountant() { return acct; }

    /** Current integral cap-adherence correction (subtracted from the
     * dynamic budget by the layer above). */
    Watts capTrim() const { return cap_trim; }

    /** Events seen so far, in order. */
    const std::vector<AccountantEvent> &eventLog() const
    {
        return event_log;
    }

    /** Poll if a control period has elapsed (call once per step). */
    void maybePoll();

    /** Install the fault oracle consulted before each meter read. */
    void setFaultInjector(const util::FaultInjector *injector)
    {
        faults = injector;
    }

    /** First tick of the current meter outage (maxTick when healthy). */
    Tick meterStaleSince() const { return meter_stale_since; }

  private:
    sim::Server &srv;
    Coordinator &coord;
    ControlLoopConfig cfg;
    Delegate &delegate;
    Accountant acct;
    Telemetry *tel;

    const util::FaultInjector *faults = nullptr;
    Tick next_control = 0;
    Tick next_refresh = 0;
    Watts cap_trim = 0.0; ///< integral cap-adherence correction
    Joules last_meter_energy = 0.0;
    Tick last_meter_time = 0;
    Tick meter_stale_since = maxTick;
    std::vector<AccountantEvent> event_log;

    void poll();
    bool updateCapTrim();
};

} // namespace psm::core

#endif // PSM_CORE_CONTROL_LOOP_HH
