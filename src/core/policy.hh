/**
 * @file
 * The power management policies compared in the paper's evaluation
 * (Sections IV-A and IV-B), from the utility-oblivious RAPL baseline
 * up to the full application+resource+ESD-aware scheme.
 */

#ifndef PSM_CORE_POLICY_HH
#define PSM_CORE_POLICY_HH

#include <string>

#include "power/platform.hh"
#include "util/units.hh"

namespace psm::core
{

/**
 * The policies: the paper's five schemes plus the rival allocators
 * of the policy arena.  The enum value doubles as the capture-file
 * wire encoding, so values are append-only; everything else about a
 * policy (names, capability flags, custom planners) lives in the
 * PolicyRegistry.
 */
enum class PolicyKind
{
    /**
     * Baseline 1: fair (equal) power split, enforced with package
     * RAPL limits; no knowledge of utilities.
     */
    UtilUnaware,
    /**
     * Baseline 2: equal split, but knob settings chosen from
     * resource-level utilities *averaged across all applications* —
     * resource-aware, application-unaware.
     */
    ServerResAware,
    /**
     * Application-level utility aware: unequal split via the
     * allocator, but power within an application is enforced by
     * frequency scaling only (no per-resource apportioning).
     */
    AppAware,
    /**
     * The paper's main scheme: unequal split plus per-resource
     * apportioning through the full (f, n, m) knob space.
     */
    AppResAware,
    /**
     * AppResAware plus consolidated ESD duty cycling when the cap is
     * too stringent for spatial coordination.
     */
    AppResEsdAware,
    /**
     * FastCap-style fair capping (Liu et al.): max-min fairness over
     * normalized performance with joint core+memory knob choice — a
     * uniform throttle level water-filled over the frontier ladder,
     * leftover spent worst-first.
     */
    FastCapFair,
    /**
     * CuttleSys-style data-driven search (Kulkarni et al.): the CF
     * utility estimates seed a greedy local search (upgrades and
     * downgrade/upgrade swaps) over the joint frontier-point space
     * instead of solving the DP exactly.
     */
    CuttleSysSearch,
};

/** Printable policy name, matching the paper's figure legends. */
std::string policyName(PolicyKind kind);

/** True when the policy learns per-application utilities. */
bool policyAppAware(PolicyKind kind);

/** True when the policy apportions power across direct resources. */
bool policyResAware(PolicyKind kind);

/** True when the policy exploits an attached ESD. */
bool policyUsesEsd(PolicyKind kind);

/**
 * True when per-application grants are enforced with RAPL clock
 * modulation (which can throttle below any frontier point) instead of
 * per-resource knob settings.
 */
bool policyRaplEnforced(PolicyKind kind);

/**
 * The platform-derived lower bound on a single application's power
 * draw that utility-unaware policies use for their spatial/temporal
 * feasibility check: one core at f_min plus the activation overhead
 * and the DRAM background.  (Utility-aware policies get the real
 * per-application minimum from the learnt frontier instead.)
 */
Watts minFeasibleAppPower(const power::PlatformConfig &config);

} // namespace psm::core

#endif // PSM_CORE_POLICY_HH
