/**
 * @file
 * The LearningPipeline: the learning layer of the control plane
 * (Fig. 6's Profiler -> Sampler -> UtilityEstimator path).
 *
 * It owns everything the framework knows about application utilities:
 * the exhaustively profiled corpus of previously seen applications,
 * the online sparse-sampling calibration of newly arrived (or phase-
 * changed) applications, the CF estimation that turns sparse samples
 * into full utility surfaces, and the server-average surface used by
 * the Server+Res-Aware baseline.
 *
 * The decision layers above consume it through two calls:
 * calibrated(id) and utilityFor(id, freedom).  Calibration wall-clock
 * cost is modelled faithfully: startCalibration() charges the
 * measurement time and the surface only becomes available once
 * finishDueCalibrations() observes the deadline pass.
 */

#ifndef PSM_CORE_LEARNING_PIPELINE_HH
#define PSM_CORE_LEARNING_PIPELINE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cf/cross_validation.hh"
#include "cf/estimator.hh"
#include "cf/profiler.hh"
#include "cf/sampler.hh"
#include "sim/server.hh"
#include "telemetry.hh"
#include "utility_curve.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace psm::core
{

/** Tuning of the learning layer. */
struct LearningConfig
{
    /** Fraction of knob settings measured online (Fig. 7's 10%). */
    double sampleFraction = 0.10;
    /** Use exhaustive ground-truth utilities instead of CF. */
    bool oracleUtilities = false;
    /** Relative measurement noise of online profiling. */
    double measurementNoise = 0.02;
    /** Wall-clock cost of measuring one knob setting online. */
    Tick calibrationPerSample = toTicks(0.018);

    cf::AlsConfig als;
    cf::SamplingStrategy sampling = cf::SamplingStrategy::Stratified;
    std::uint64_t seed = 7;
};

/**
 * Per-server learning pipeline.  The server reference is used for
 * profiling measurements and the simulation clock; it must outlive
 * the pipeline.
 */
class LearningPipeline
{
  public:
    LearningPipeline(sim::Server &server, LearningConfig config,
                     Telemetry *telemetry = nullptr);

    const LearningConfig &config() const { return cfg; }

    /**
     * Seed the collaborative filtering corpus with exhaustively
     * profiled applications ("previously seen applications" in
     * Section III-A).  When later estimating an application that is
     * itself in the corpus, its own row is excluded (leave-one-out).
     */
    void seedCorpus(const std::vector<perf::AppProfile> &profiles);

    /** Server-average utility curve over the corpus (nullopt while
     * the corpus is empty). */
    const std::optional<UtilityCurve> &serverAverageCurve() const
    {
        return server_avg_curve;
    }

    /** Register an application with the pipeline. */
    void track(int id, const std::string &name);

    /**
     * Register an application carrying its full profile.  Interactive
     * profiles additionally record their SLO spec, so utilityFor()
     * hands the allocator an SLO-shaped curve; batch profiles behave
     * exactly like the name-only overload.
     */
    void track(int id, const perf::AppProfile &profile);

    /** Drop a departed application's learning state. */
    void forget(int id);

    /**
     * Begin (re)calibrating an application.
     *
     * Oracle mode re-profiles exhaustively and instantaneously at the
     * application's current phase; online mode selects sparse samples,
     * charges their wall-clock cost, and pins the application to the
     * minimal knob setting while it is being profiled.
     *
     * @return True when the surface is available immediately (oracle).
     */
    bool startCalibration(int id);

    /**
     * Deliver surfaces whose calibration deadline has passed.
     *
     * @return Ids whose calibration finished during this poll.
     */
    std::vector<int> finishDueCalibrations();

    /** True when a utility surface is available for the app. */
    bool calibrated(int id) const;

    /**
     * The application's utility frontier under the given knob freedom
     * — the single entry point for the decision layers.  Requires
     * calibrated(id).
     */
    UtilityCurve utilityFor(int id, KnobFreedom freedom) const;

    /**
     * Wall-clock duration of the most recently completed calibration
     * (0 for oracle calibrations, which are instantaneous).
     */
    Tick lastCalibrationLatency() const { return last_latency; }

    /**
     * Monotonic epoch of the utility surfaces: bumped whenever a
     * calibration starts replacing an application's live surface, so
     * downstream caches keyed on curve contents (the allocator's DP
     * tables) know their frontiers may be stale.  First-time
     * calibrations do not bump it — a brand-new surface only extends
     * the curve set, which the caches handle incrementally.  Starts
     * at 1 (0 is the "no epoch discipline" sentinel).
     */
    std::uint64_t surfaceEpoch() const { return surface_epoch; }

  private:
    sim::Server &srv;
    LearningConfig cfg;
    Telemetry *tel;
    Rng rng;
    cf::Profiler profiler;
    cf::Sampler sampler;

    /** Corpus kept locally for leave-one-out estimation. */
    struct CorpusEntry
    {
        std::string name;
        std::vector<double> power;
        std::vector<double> hbRate;
    };
    std::vector<CorpusEntry> corpus;
    std::optional<UtilityCurve> server_avg_curve;

    /**
     * Per-app memoized estimation state, keyed by application name so
     * it survives departure/re-arrival of the same app.  A repeat
     * calibration whose sampled-column mask is unchanged serves the
     * cached surface (zero ALS sweeps); a grown mask warm-starts the
     * refit.  Invalidated wholesale when the corpus changes.
     */
    std::map<std::string, cf::FitState> fit_states;

    struct AppLearning
    {
        std::string name;
        InteractiveSlo slo; ///< invalid (all-zero) for batch apps
        std::optional<cf::UtilitySurface> surface;
        Tick calibration_ready = maxTick; ///< maxTick = none pending
        Tick calibration_started = 0;
        std::vector<std::size_t> pending_cols;
    };
    std::map<int, AppLearning> apps;
    Tick last_latency = 0;
    std::uint64_t surface_epoch = 1;
    /** Names ever tracked, to detect same-name re-arrivals. */
    std::set<std::string> tracked_names;

    void finishCalibration(int id);
    void rebuildServerAverageCurve();
};

} // namespace psm::core

#endif // PSM_CORE_LEARNING_PIPELINE_HH
