/**
 * @file
 * CuttleSys-style data-driven search (Kulkarni et al., "CuttleSys:
 * Data-Driven Resource Management for Interactive Services on
 * Reconfigurable Multicores"): a rival allocator for the policy
 * arena.
 *
 * CuttleSys estimates each job's performance across resource
 * configurations with collaborative filtering, then runs a local
 * search over the joint configuration space instead of solving the
 * assignment exactly.  Mapped onto this framework, the CF estimates
 * are the learnt utility frontiers (psm::cf already produces them via
 * the LearningPipeline), a "configuration" is one frontier point per
 * application, and the search is greedy hill climbing over
 * single-point moves:
 *
 *   1. seed from the CF estimates — per-application budgets
 *      proportional to estimated efficiency (perf per watt at the
 *      frontier knee), repaired to fit the budget, or from the
 *      previous decision's configuration when the application set is
 *      unchanged (warm start);
 *   2. climb: among all single-app upgrades that fit the slack and
 *      all downgrade-one/upgrade-another swaps, apply the move with
 *      the best aggregate-utility gain until no move improves.
 *
 * The search is deterministic (ties break toward lower app indices)
 * and bounded, and it conserves the budget at every step.  Against
 * the paper's exact DP it trades optimality for a search that never
 * touches a DP table — the arena shows where that trade wins and
 * where it costs.
 */

#ifndef PSM_CORE_POLICY_CUTTLESYS_HH
#define PSM_CORE_POLICY_CUTTLESYS_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "policy_registry.hh"

namespace psm::core
{

/** The CuttleSys-style CF-seeded local-search planner. */
class CuttleSysPlanner : public SpatialPlanner
{
  public:
    Allocation plan(const std::vector<const UtilityCurve *> &curves,
                    Watts usable, const Context &ctx) override;

  private:
    /** Last decision's configuration (app name -> frontier index),
     * the warm start when the application set is unchanged. */
    std::map<std::string, std::size_t> last_choice;
};

} // namespace psm::core

#endif // PSM_CORE_POLICY_CUTTLESYS_HH
