/**
 * @file
 * The Actuator: the enforcement layer of the control plane.
 *
 * It turns a PlanDecision into per-application Directives — direct
 * knob actuation, demand-following RAPL, or the baseline's blind
 * RAPL accounting — and hands them to the Coordinator, recording the
 * granted budgets with the Accountant so E4 drift detection has its
 * reference.  It owns the only piece of cross-decision enforcement
 * state: the per-application DRAM demand tracker that survives
 * duty-cycle OFF periods.
 */

#ifndef PSM_CORE_ACTUATOR_HH
#define PSM_CORE_ACTUATOR_HH

#include <map>
#include <vector>

#include "accountant.hh"
#include "coordinator.hh"
#include "plan_selector.hh"
#include "sim/server.hh"
#include "telemetry.hh"
#include "util/units.hh"

namespace psm::core
{

/**
 * Per-server actuator.  Server, coordinator and accountant must
 * outlive it.
 */
class Actuator
{
  public:
    Actuator(sim::Server &server, Coordinator &coordinator,
             Accountant &accountant, Telemetry *telemetry = nullptr);

    /**
     * Hold still-calibrating applications at the platform's minimal
     * setting with a reserved power floor (and keep them running so
     * profiling can observe them).
     */
    void holdForCalibration(const std::vector<int> &ids);

    /**
     * Execute a plan decision.
     *
     * @param d The selector's verdict.
     * @param all All active app ids (used by plans that cover
     *        calibrating apps too, e.g. the uncapped run).
     * @param ready Calibrated app ids, aligned with the curve order
     *        the selector saw.
     * @param policy The deciding policy (selects enforcement style).
     */
    void execute(const PlanDecision &d, const std::vector<int> &all,
                 const std::vector<int> &ready, PolicyKind policy);

    /** Latest spatial allocation (empty before the first one). */
    const Allocation &lastAllocation() const { return last_alloc; }

    /** Drop a departed application's enforcement state. */
    void forget(int id);

  private:
    sim::Server &srv;
    Coordinator &coord;
    Accountant &acct;
    Telemetry *tel;

    Allocation last_alloc;

    /** Per-app DRAM demand tracker for demand-following RAPL. */
    std::map<int, Watts> dram_demand;

    Watts dramDemandEstimate(int id);
    Directive raplDirective(int id, Watts app_budget);
    Directive blindRaplDirective(int id, Watts app_budget);
    static Directive directiveFor(int id, const AppAllocation &alloc);

    void executeUncapped(const std::vector<int> &ids);
    void executeSpatialUtility(const std::vector<int> &ids,
                               const Allocation &alloc,
                               PolicyKind policy);
    void executeFairRaplSpace(const std::vector<int> &ids,
                              Watts share);
    void executeFairRaplTime(const std::vector<int> &ids, Watts budget,
                             bool demand_following);
    void executeServerAvg(const PlanDecision &d,
                          const std::vector<int> &ids);
    void executeTemporalUtility(const TemporalPlan &plan,
                                const std::vector<int> &ids,
                                PolicyKind policy);
    void executeEsd(const EsdPlan &plan, const std::vector<int> &ids);

    int idForApp(const std::vector<int> &ids,
                 const std::string &name) const;
};

} // namespace psm::core

#endif // PSM_CORE_ACTUATOR_HH
