#include "power_allocator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

namespace
{

using Cands = std::vector<std::pair<std::size_t, double>>;

/**
 * One DP fold: next[b] = max over candidates (x, v), x <= b, of
 * dp[b - x] + v, recording the smallest maximizing x.
 *
 * Exactly equivalent to the dense scan over every x in [0, b]: the
 * dense table's value is constant between thresholds while dp is
 * non-decreasing, so any non-threshold x is dominated by the start of
 * its step — which is also smaller, so the dense scan's first
 * maximizer is always a threshold and the ascending strict-> scan
 * below picks the very same one.
 */
void
frontierFold(const Cands &cands, const std::vector<double> &dp,
             std::vector<double> &next,
             std::vector<std::size_t> &choice)
{
    std::size_t buckets = dp.size() - 1;
    next.resize(buckets + 1);
    choice.resize(buckets + 1);
    for (std::size_t b = 0; b <= buckets; ++b) {
        double best = -1.0;
        std::size_t best_x = 0;
        for (const auto &[x, v] : cands) {
            if (x > b)
                break;
            double cand = dp[b - x] + v;
            if (cand > best) {
                best = cand;
                best_x = x;
            }
        }
        next[b] = best;
        choice[b] = best_x;
    }
}

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

bool
Allocation::allScheduled() const
{
    for (const auto &a : apps)
        if (!a.scheduled())
            return false;
    return !apps.empty();
}

PowerAllocator::PowerAllocator(AllocatorConfig config) : cfg(config)
{
    psm_assert(cfg.granularity > 0.0);
    psm_assert(cfg.shareFloor >= 0.0 && cfg.shareFloor <= 1.0);
    psm_assert(cfg.esdSearchStep > 0.0);
}

PowerAllocator::ReservePlan
PowerAllocator::reservePlan(
    const std::vector<const UtilityCurve *> &curves,
    Watts dynamic_budget) const
{
    std::size_t k = curves.size();

    // Eq. 1 weighs all applications evenly: whenever the budget can
    // host every application's cheapest point, reserve those minima
    // so nobody is starved, and let the DP divide only the headroom.
    ReservePlan rp;
    rp.reserve.assign(k, 0.0);
    if (cfg.reserveMinima) {
        Watts mins = 0.0;
        for (const auto *c : curves)
            mins += c->minPower();
        if (mins <= dynamic_budget) {
            for (std::size_t i = 0; i < k; ++i)
                rp.reserve[i] = curves[i]->minPower();
            rp.total = mins;
            rp.applied = true;
        }
    }
    Watts headroom = dynamic_budget - rp.total;
    rp.buckets = static_cast<std::size_t>(
        std::floor(headroom / cfg.granularity));
    return rp;
}

Allocation
PowerAllocator::allocate(const std::vector<const UtilityCurve *> &curves,
                         Watts dynamic_budget) const
{
    return allocate(curves, dynamic_budget, nullptr, 0);
}

Allocation
PowerAllocator::allocate(const std::vector<const UtilityCurve *> &curves,
                         Watts dynamic_budget, AllocatorCache *cache,
                         std::uint64_t epoch) const
{
    psm_assert(!curves.empty());
    psm_assert(dynamic_budget >= 0.0);
    auto t0 = std::chrono::steady_clock::now();
    if (tel)
        tel->count(trace::EventId::AllocatorAllocate);

    ReservePlan rp = reservePlan(curves, dynamic_budget);
    Allocation alloc = !cache || epoch == 0 || cfg.denseDp
                           ? solveDirect(curves, dynamic_budget, rp)
                           : solveCached(curves, dynamic_budget, rp,
                                         *cache, epoch);
    if (tel)
        tel->observe(trace::EventId::AllocatorSpatial, toTicks(wallSeconds(t0)));
    return alloc;
}

Allocation
PowerAllocator::solveDirect(
    const std::vector<const UtilityCurve *> &curves,
    Watts dynamic_budget, const ReservePlan &rp) const
{
    std::size_t k = curves.size();
    std::size_t buckets = rp.buckets;

    std::vector<double> dp(buckets + 1, 0.0);
    std::vector<std::vector<std::size_t>> choice(
        k, std::vector<std::size_t>(buckets + 1, 0));
    if (cfg.denseDp) {
        // Dense baseline: per-bucket perf tables and an O(B²) scan
        // per app.  Kept verbatim as the exact-equivalence reference
        // for the frontier transition.
        std::vector<std::vector<double>> perf(k);
        for (std::size_t i = 0; i < k; ++i) {
            perf[i].resize(buckets + 1);
            for (std::size_t b = 0; b <= buckets; ++b) {
                perf[i][b] = curves[i]->perfAt(
                    rp.reserve[i] +
                    static_cast<double>(b) * cfg.granularity);
            }
        }
        for (std::size_t i = 0; i < k; ++i) {
            std::vector<double> next(buckets + 1, 0.0);
            for (std::size_t b = 0; b <= buckets; ++b) {
                double best = -1.0;
                std::size_t best_x = 0;
                for (std::size_t x = 0; x <= b; ++x) {
                    double v = dp[b - x] + perf[i][x];
                    if (v > best) {
                        best = v;
                        best_x = x;
                    }
                }
                next[b] = best;
                choice[i][b] = best_x;
            }
            dp = std::move(next);
        }
    } else {
        // Frontier transition: only the thresholds where a frontier
        // point first becomes affordable can change the step function,
        // so the inner max needs P candidates, not B buckets.
        std::vector<double> next;
        for (std::size_t i = 0; i < k; ++i) {
            Cands cands = curves[i]->bucketCandidates(
                rp.reserve[i], cfg.granularity, buckets);
            frontierFold(cands, dp, next, choice[i]);
            dp.swap(next);
        }
    }

    // Walk the choices back from the full budget.
    std::vector<Watts> granted(k, 0.0);
    std::size_t b = buckets;
    for (std::size_t ii = k; ii-- > 0;) {
        std::size_t x = choice[ii][b];
        granted[ii] = rp.reserve[ii] +
                      static_cast<double>(x) * cfg.granularity;
        b -= x;
    }
    return buildAllocation(curves, granted, dynamic_budget);
}

Allocation
PowerAllocator::buildAllocation(
    const std::vector<const UtilityCurve *> &curves,
    const std::vector<Watts> &granted, Watts dynamic_budget) const
{
    Allocation alloc;
    alloc.dynamicBudget = dynamic_budget;
    alloc.apps.resize(curves.size());
    for (std::size_t i = 0; i < curves.size(); ++i) {
        AppAllocation &a = alloc.apps[i];
        a.app = curves[i]->name();
        a.point = curves[i]->bestWithin(granted[i]);
        if (a.point) {
            a.budget = granted[i];
            a.expectedPerf = a.point->perfNorm;
        }
    }

    distributeSlack(curves, alloc);

    alloc.used = 0.0;
    alloc.objective = 0.0;
    for (const auto &a : alloc.apps) {
        if (a.scheduled()) {
            // Consumers (actuation accounting, decision records) rely
            // on a scheduled app's point fitting its granted budget.
            psm_assert(a.point->power <= a.budget + 1e-9);
            alloc.used += a.point->power;
            alloc.objective += a.expectedPerf;
        }
    }
    return alloc;
}

void
PowerAllocator::rebuildCache(
    const std::vector<const UtilityCurve *> &curves,
    const ReservePlan &rp, AllocatorCache &cache,
    std::uint64_t epoch) const
{
    std::size_t k = curves.size();

    // Pad the table width so a single departure still fits: the freed
    // reserve minimum re-enters the headroom, so the recombined walk
    // needs more buckets than this build does.
    std::size_t pad = 0;
    for (Watts r : rp.reserve) {
        if (r > 0.0) {
            pad = std::max(
                pad, static_cast<std::size_t>(
                         std::ceil(r / cfg.granularity)) + 1);
        }
    }

    cache.valid = true;
    cache.epoch = epoch;
    cache.granularity = cfg.granularity;
    cache.reserveApplied = rp.applied;
    cache.buckets = rp.buckets + pad;
    cache.apps.assign(k, {});
    for (std::size_t i = 0; i < k; ++i) {
        cache.apps[i].name = curves[i]->name();
        cache.apps[i].reserve = rp.reserve[i];
        cache.apps[i].cands = curves[i]->bucketCandidates(
            rp.reserve[i], cfg.granularity, cache.buckets);
    }

    cache.pre.assign(k + 1, {});
    cache.preChoice.assign(k, {});
    cache.pre[0].assign(cache.buckets + 1, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        frontierFold(cache.apps[i].cands, cache.pre[i],
                     cache.pre[i + 1], cache.preChoice[i]);
    }

    cache.suf.assign(k + 1, {});
    cache.sufChoice.assign(k, {});
    cache.suf[k].assign(cache.buckets + 1, 0.0);
    for (std::size_t i = k; i-- > 0;) {
        frontierFold(cache.apps[i].cands, cache.suf[i + 1],
                     cache.suf[i], cache.sufChoice[i]);
    }
}

Allocation
PowerAllocator::solveCached(
    const std::vector<const UtilityCurve *> &curves,
    Watts dynamic_budget, const ReservePlan &rp,
    AllocatorCache &cache, std::uint64_t epoch) const
{
    std::size_t k = curves.size();

    enum class Match
    {
        Rebuild,
        Full,    ///< identical name sequence
        Extend,  ///< cached sequence is a strict prefix (arrival)
        Combine, ///< cached sequence minus one app (departure)
    };
    Match match = Match::Rebuild;
    std::size_t hole = 0;

    if (cache.valid && cache.epoch == epoch &&
        cache.granularity == cfg.granularity &&
        cache.reserveApplied == rp.applied &&
        rp.buckets <= cache.buckets) {
        std::size_t kc = cache.apps.size();
        auto same = [&](std::size_t ci, std::size_t i) {
            return cache.apps[ci].name == curves[i]->name() &&
                   cache.apps[ci].reserve == rp.reserve[i];
        };
        if (k >= kc) {
            bool prefix = true;
            for (std::size_t i = 0; i < kc && prefix; ++i)
                prefix = same(i, i);
            if (prefix)
                match = k == kc ? Match::Full : Match::Extend;
        } else if (k + 1 == kc) {
            std::size_t ci = 0;
            bool ok = true;
            std::size_t h = kc - 1; // hole at the end if no mismatch
            for (std::size_t i = 0; i < k; ++i) {
                if (ci == i && !same(ci, i)) {
                    h = ci;
                    ++ci; // skip the departed app once
                }
                ok = ok && same(ci, i);
                ++ci;
            }
            if (ok) {
                match = Match::Combine;
                hole = h;
            }
        }
    }

    if (match == Match::Rebuild || match == Match::Extend) {
        if (match == Match::Extend) {
            // Arrival(s) appended at the end: the prefix tables fold
            // left-to-right, so only the new apps need a pass — but
            // every suffix now ends differently, so those rebuild.
            std::size_t old_k = cache.apps.size();
            cache.apps.resize(k);
            cache.pre.resize(k + 1);
            cache.preChoice.resize(k);
            for (std::size_t i = old_k; i < k; ++i) {
                cache.apps[i].name = curves[i]->name();
                cache.apps[i].reserve = rp.reserve[i];
                cache.apps[i].cands = curves[i]->bucketCandidates(
                    rp.reserve[i], cfg.granularity, cache.buckets);
                frontierFold(cache.apps[i].cands, cache.pre[i],
                             cache.pre[i + 1], cache.preChoice[i]);
            }
            cache.suf.assign(k + 1, {});
            cache.sufChoice.assign(k, {});
            cache.suf[k].assign(cache.buckets + 1, 0.0);
            for (std::size_t i = k; i-- > 0;) {
                frontierFold(cache.apps[i].cands, cache.suf[i + 1],
                             cache.suf[i], cache.sufChoice[i]);
            }
            if (tel)
                tel->count(trace::EventId::AllocatorDpExtends);
        } else {
            rebuildCache(curves, rp, cache, epoch);
            if (tel)
                tel->count(trace::EventId::AllocatorDpRebuilds);
        }
        match = Match::Full;
        hole = k; // not a combine
    } else if (tel) {
        tel->count(match == Match::Full
                       ? trace::EventId::AllocatorDpFullHits
                       : trace::EventId::AllocatorDpCombines);
    }

    std::vector<Watts> granted(k, 0.0);
    if (match == Match::Full) {
        std::size_t b = rp.buckets;
        for (std::size_t ii = k; ii-- > 0;) {
            std::size_t x = cache.preChoice[ii][b];
            granted[ii] = rp.reserve[ii] +
                          static_cast<double>(x) * cfg.granularity;
            b -= x;
        }
    } else {
        // Departure of cached app `hole`: the optimum over the
        // remaining apps is the best split of the budget between the
        // prefix [0, hole) and the suffix [hole+1, k+1) — one O(B)
        // max-plus combine of two cached tables, no DP pass at all.
        // The cache keeps describing the pre-departure sequence, so
        // follow-up allocations (and further departures elsewhere)
        // keep recombining the same tables.
        std::size_t kc = cache.apps.size();
        std::size_t b = rp.buckets;
        double best = -1.0;
        std::size_t best_b1 = 0;
        for (std::size_t b1 = 0; b1 <= b; ++b1) {
            double v = cache.pre[hole][b1] +
                       cache.suf[hole + 1][b - b1];
            if (v > best) {
                best = v;
                best_b1 = b1;
            }
        }
        std::size_t pb = best_b1;
        for (std::size_t ii = hole; ii-- > 0;) {
            std::size_t x = cache.preChoice[ii][pb];
            granted[ii] = rp.reserve[ii] +
                          static_cast<double>(x) * cfg.granularity;
            pb -= x;
        }
        std::size_t sb = b - best_b1;
        for (std::size_t ci = hole + 1; ci < kc; ++ci) {
            std::size_t x = cache.sufChoice[ci][sb];
            granted[ci - 1] = rp.reserve[ci - 1] +
                              static_cast<double>(x) * cfg.granularity;
            sb -= x;
        }
    }
    return buildAllocation(curves, granted, dynamic_budget);
}

void
PowerAllocator::distributeSlack(
    const std::vector<const UtilityCurve *> &curves,
    Allocation &alloc) const
{
    // Repeatedly upgrade the application whose next frontier point
    // fits the remaining slack with the best perf-per-watt gain.
    // Each upgrade strictly increases one app's power, so the loop is
    // bounded by the total number of frontier points — but a frontier
    // with a pathological (non-monotonic) shape must not be able to
    // spin the control loop, hence the explicit iteration guard.
    std::size_t max_upgrades = 0;
    for (const auto *c : curves)
        max_upgrades += c->points().size() + 1;
    for (std::size_t iter = 0;; ++iter) {
        if (iter > max_upgrades) {
            if (tel)
                tel->count(trace::EventId::AllocatorSlackGuardTrips);
            warn("allocator slack pass exceeded %zu upgrades; "
                 "keeping the current allocation",
                 max_upgrades);
            return;
        }
        Watts used = 0.0;
        for (const auto &a : alloc.apps)
            if (a.scheduled())
                used += a.point->power;
        Watts slack = alloc.dynamicBudget - used;
        if (slack <= cfg.granularity / 2.0)
            return;

        double best_gain = 0.0;
        std::size_t best_i = alloc.apps.size();
        std::optional<UtilityPoint> best_point;
        for (std::size_t i = 0; i < alloc.apps.size(); ++i) {
            const AppAllocation &a = alloc.apps[i];
            Watts current = a.scheduled() ? a.point->power : 0.0;
            double current_perf = a.scheduled() ? a.expectedPerf : 0.0;
            auto upgraded = curves[i]->bestWithin(current + slack);
            if (!upgraded || upgraded->power <= current + 1e-9)
                continue;
            double gain = (upgraded->perfNorm - current_perf) /
                          (upgraded->power - current);
            if (gain > best_gain) {
                best_gain = gain;
                best_i = i;
                best_point = upgraded;
            }
        }
        if (best_i == alloc.apps.size())
            return;
        AppAllocation &a = alloc.apps[best_i];
        a.point = best_point;
        // The upgrade spends slack, not the app's grant: keep the
        // granted watts (only widening them if the DP never scheduled
        // this app) so point->power <= budget stays true.
        a.budget = std::max(a.budget, best_point->power);
        a.expectedPerf = best_point->perfNorm;
    }
}

Allocation
PowerAllocator::equalSplit(
    const std::vector<const UtilityCurve *> &curves,
    Watts dynamic_budget) const
{
    psm_assert(!curves.empty());
    Allocation alloc;
    alloc.dynamicBudget = dynamic_budget;
    Watts share = dynamic_budget / static_cast<double>(curves.size());
    for (const auto *curve : curves) {
        AppAllocation a;
        a.app = curve->name();
        a.point = curve->bestWithin(share);
        if (a.point) {
            a.budget = share;
            a.expectedPerf = a.point->perfNorm;
            alloc.used += a.point->power;
            alloc.objective += a.expectedPerf;
        }
        alloc.apps.push_back(std::move(a));
    }
    return alloc;
}

TemporalPlan
PowerAllocator::temporalPlan(
    const std::vector<const UtilityCurve *> &curves, Watts on_budget,
    ShareMode mode) const
{
    if (tel)
        tel->count(trace::EventId::AllocatorTemporalPlan);
    TemporalPlan plan;
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < curves.size(); ++i) {
        auto point = curves[i]->bestWithin(on_budget);
        if (point) {
            TemporalSlot slot;
            slot.app = curves[i]->name();
            slot.point = *point;
            plan.slots.push_back(std::move(slot));
            runnable.push_back(i);
        } else {
            plan.unschedulable.push_back(curves[i]->name());
        }
    }
    if (plan.slots.empty())
        return plan;

    if (mode == ShareMode::Equal) {
        double share = 1.0 / static_cast<double>(plan.slots.size());
        for (auto &slot : plan.slots)
            slot.share = share;
    } else {
        // Weight by perf-per-watt at the ON point, floored so no
        // application starves.  Clamping a slot to the floor and then
        // renormalizing dilutes every other slot, which can push a
        // previously-safe slot back under the floor — so water-fill:
        // clamp offenders, re-spread only the unclamped weight mass
        // over the remaining share, and repeat.  Each round clamps at
        // least one more slot, so it terminates within n rounds (the
        // all-clamped case is exactly the equal split when the floor
        // is feasible, i.e. shareFloor <= 1).
        double floor_share =
            cfg.shareFloor / static_cast<double>(plan.slots.size());
        std::vector<double> weight(plan.slots.size());
        std::vector<bool> clamped(plan.slots.size(), false);
        for (std::size_t i = 0; i < plan.slots.size(); ++i) {
            weight[i] = plan.slots[i].point.perfNorm /
                        std::max(plan.slots[i].point.power, 1e-9);
        }
        for (;;) {
            double free_weight = 0.0;
            double free_share = 1.0;
            for (std::size_t i = 0; i < plan.slots.size(); ++i) {
                if (clamped[i])
                    free_share -= floor_share;
                else
                    free_weight += weight[i];
            }
            bool changed = false;
            for (std::size_t i = 0; i < plan.slots.size(); ++i) {
                if (clamped[i]) {
                    plan.slots[i].share = floor_share;
                    continue;
                }
                double share =
                    free_share * weight[i] /
                    std::max(free_weight, 1e-12);
                if (share < floor_share - 1e-12) {
                    clamped[i] = true;
                    changed = true;
                } else {
                    plan.slots[i].share = share;
                }
            }
            if (!changed)
                break;
        }
    }

    for (const auto &slot : plan.slots)
        plan.objective += slot.share * slot.point.perfNorm;
    return plan;
}

EsdPlan
PowerAllocator::esdPlan(const std::vector<const UtilityCurve *> &curves,
                        Watts idle_power, Watts cm_power, Watts cap,
                        const esd::BatteryConfig &esd,
                        Watts off_cm_power) const
{
    EsdPlan best;
    auto t0 = std::chrono::steady_clock::now();
    if (tel)
        tel->count(trace::EventId::AllocatorEsdPlan);
    if (curves.empty())
        return best;
    if (cap <= idle_power + off_cm_power)
        return best; // no headroom to ever charge

    // Whatever the platform still draws while everything is OFF
    // (idle floor plus any always-awake management plane) eats into
    // the charge headroom Eq. 5 divides by.
    Watts charge = std::min(cap - idle_power - off_cm_power,
                            esd.maxChargePower);
    double eta = esd.roundTripEfficiency();

    // Candidate ON-period dynamic budgets: from the cheapest joint
    // operating point up to everyone flat out.
    Watts lo = 0.0;
    Watts hi = 0.0;
    for (const auto *c : curves) {
        lo += c->minPower();
        hi += c->maxPower();
    }

    // Walk the candidate budgets by integer bucket index rather than
    // accumulating `budget += step`: repeated addition drifts, and
    // near the boundary the drift could add or drop the final
    // candidate depending on how the error happened to round.
    auto sweep = static_cast<std::size_t>(
        std::floor((hi - lo + 1e-9) / cfg.esdSearchStep)) + 1;

    auto consider = [&](Allocation alloc) {
        if (!alloc.allScheduled())
            return;
        Watts on_draw = idle_power + cm_power + alloc.used;
        Watts deficit = on_draw - cap;
        double on_fraction;
        if (deficit <= 0.0) {
            // Fits under the cap outright; no OFF period needed.
            on_fraction = 1.0;
            deficit = 0.0;
        } else {
            if (deficit > esd.maxDischargePower)
                return; // battery cannot bridge this draw
            // Eq. 5: off/on = deficit / (eta * charge headroom).
            double off_over_on = deficit / (eta * charge);
            on_fraction = 1.0 / (1.0 + off_over_on);
        }
        double objective = on_fraction * alloc.objective;
        if (objective > best.objective) {
            best.onAllocation = std::move(alloc);
            best.offFraction = 1.0 - on_fraction;
            best.deficit = deficit;
            best.chargePower = charge;
            best.objective = objective;
            best.viable = true;
        }
    };

    if (cfg.denseDp) {
        // Reference path: a full allocation per candidate budget.
        for (std::size_t bucket = 0; bucket < sweep; ++bucket) {
            Watts budget =
                lo + static_cast<double>(bucket) * cfg.esdSearchStep;
            consider(allocate(curves, budget));
        }
    } else {
        // The DP table for the largest candidate budget subsumes every
        // smaller one: dp rows and choices at bucket index b never
        // depend on the table width, so one forward pass plus a cheap
        // walk-back per candidate replaces `sweep` independent
        // allocate() calls.  This needs the reserve regime to be
        // uniform across the sweep, which it is: every candidate
        // budget is lo + bucket*step >= lo, and lo accumulates the
        // same minPower() terms in the same order reservePlan() sums,
        // so `mins <= budget` answers identically for all candidates.
        std::size_t k = curves.size();
        Watts budget_max =
            lo + static_cast<double>(sweep - 1) * cfg.esdSearchStep;
        ReservePlan rp_max = reservePlan(curves, budget_max);

        std::vector<double> dp(rp_max.buckets + 1, 0.0);
        std::vector<double> scratch;
        std::vector<std::vector<std::size_t>> choice(k);
        for (std::size_t i = 0; i < k; ++i) {
            Cands cands = curves[i]->bucketCandidates(
                rp_max.reserve[i], cfg.granularity, rp_max.buckets);
            frontierFold(cands, dp, scratch, choice[i]);
            dp.swap(scratch);
        }

        for (std::size_t bucket = 0; bucket < sweep; ++bucket) {
            Watts budget =
                lo + static_cast<double>(bucket) * cfg.esdSearchStep;
            // Re-derive the candidate's bucket count through the very
            // expressions a standalone allocate() would use, so the
            // walk-back starts from a bit-identical index.
            ReservePlan rp = reservePlan(curves, budget);
            psm_assert(rp.applied == rp_max.applied);
            psm_assert(rp.buckets <= rp_max.buckets);
            std::vector<Watts> granted(k, 0.0);
            std::size_t b = rp.buckets;
            for (std::size_t ii = k; ii-- > 0;) {
                std::size_t x = choice[ii][b];
                granted[ii] = rp.reserve[ii] +
                              static_cast<double>(x) * cfg.granularity;
                b -= x;
            }
            consider(buildAllocation(curves, granted, budget));
        }
    }
    if (tel)
        tel->observe(trace::EventId::AllocatorEsd, toTicks(wallSeconds(t0)));
    return best;
}

} // namespace psm::core
