#include "power_allocator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

bool
Allocation::allScheduled() const
{
    for (const auto &a : apps)
        if (!a.scheduled())
            return false;
    return !apps.empty();
}

PowerAllocator::PowerAllocator(AllocatorConfig config) : cfg(config)
{
    psm_assert(cfg.granularity > 0.0);
    psm_assert(cfg.shareFloor >= 0.0 && cfg.shareFloor <= 1.0);
    psm_assert(cfg.esdSearchStep > 0.0);
}

Allocation
PowerAllocator::allocate(const std::vector<const UtilityCurve *> &curves,
                         Watts dynamic_budget) const
{
    psm_assert(!curves.empty());
    psm_assert(dynamic_budget >= 0.0);
    if (tel)
        tel->count("allocator.allocate");

    std::size_t k = curves.size();

    // Eq. 1 weighs all applications evenly: whenever the budget can
    // host every application's cheapest point, reserve those minima
    // so nobody is starved, and let the DP divide only the headroom.
    std::vector<Watts> reserve(k, 0.0);
    Watts reserved_total = 0.0;
    if (cfg.reserveMinima) {
        Watts mins = 0.0;
        for (const auto *c : curves)
            mins += c->minPower();
        if (mins <= dynamic_budget) {
            for (std::size_t i = 0; i < k; ++i)
                reserve[i] = curves[i]->minPower();
            reserved_total = mins;
        }
    }
    Watts headroom = dynamic_budget - reserved_total;
    auto buckets = static_cast<std::size_t>(
        std::floor(headroom / cfg.granularity));

    // perf[i][b]: best perfNorm app i reaches within its reserve plus
    // b * granularity.
    std::vector<std::vector<double>> perf(k);
    for (std::size_t i = 0; i < k; ++i) {
        perf[i].resize(buckets + 1);
        for (std::size_t b = 0; b <= buckets; ++b) {
            perf[i][b] = curves[i]->perfAt(
                reserve[i] +
                static_cast<double>(b) * cfg.granularity);
        }
    }

    // Knapsack DP with per-app choice reconstruction.
    std::vector<double> dp(buckets + 1, 0.0);
    std::vector<std::vector<std::size_t>> choice(
        k, std::vector<std::size_t>(buckets + 1, 0));
    for (std::size_t i = 0; i < k; ++i) {
        std::vector<double> next(buckets + 1, 0.0);
        for (std::size_t b = 0; b <= buckets; ++b) {
            double best = -1.0;
            std::size_t best_x = 0;
            for (std::size_t x = 0; x <= b; ++x) {
                double v = dp[b - x] + perf[i][x];
                if (v > best) {
                    best = v;
                    best_x = x;
                }
            }
            next[b] = best;
            choice[i][b] = best_x;
        }
        dp = std::move(next);
    }

    // Walk the choices back from the full budget.
    Allocation alloc;
    alloc.dynamicBudget = dynamic_budget;
    alloc.apps.resize(k);
    std::size_t b = buckets;
    for (std::size_t ii = k; ii-- > 0;) {
        std::size_t x = choice[ii][b];
        Watts granted = reserve[ii] +
                        static_cast<double>(x) * cfg.granularity;
        AppAllocation &a = alloc.apps[ii];
        a.app = curves[ii]->name();
        a.point = curves[ii]->bestWithin(granted);
        if (a.point) {
            a.budget = granted;
            a.expectedPerf = a.point->perfNorm;
        }
        b -= x;
    }

    distributeSlack(curves, alloc);

    alloc.used = 0.0;
    alloc.objective = 0.0;
    for (const auto &a : alloc.apps) {
        if (a.scheduled()) {
            alloc.used += a.point->power;
            alloc.objective += a.expectedPerf;
        }
    }
    return alloc;
}

void
PowerAllocator::distributeSlack(
    const std::vector<const UtilityCurve *> &curves,
    Allocation &alloc) const
{
    // Repeatedly upgrade the application whose next frontier point
    // fits the remaining slack with the best perf-per-watt gain.
    // Each upgrade strictly increases one app's power, so the loop is
    // bounded by the total number of frontier points — but a frontier
    // with a pathological (non-monotonic) shape must not be able to
    // spin the control loop, hence the explicit iteration guard.
    std::size_t max_upgrades = 0;
    for (const auto *c : curves)
        max_upgrades += c->points().size() + 1;
    for (std::size_t iter = 0;; ++iter) {
        if (iter > max_upgrades) {
            if (tel)
                tel->count("allocator.slack_guard_trips");
            warn("allocator slack pass exceeded %zu upgrades; "
                 "keeping the current allocation",
                 max_upgrades);
            return;
        }
        Watts used = 0.0;
        for (const auto &a : alloc.apps)
            if (a.scheduled())
                used += a.point->power;
        Watts slack = alloc.dynamicBudget - used;
        if (slack <= cfg.granularity / 2.0)
            return;

        double best_gain = 0.0;
        std::size_t best_i = alloc.apps.size();
        std::optional<UtilityPoint> best_point;
        for (std::size_t i = 0; i < alloc.apps.size(); ++i) {
            const AppAllocation &a = alloc.apps[i];
            Watts current = a.scheduled() ? a.point->power : 0.0;
            double current_perf = a.scheduled() ? a.expectedPerf : 0.0;
            auto upgraded = curves[i]->bestWithin(current + slack);
            if (!upgraded || upgraded->power <= current + 1e-9)
                continue;
            double gain = (upgraded->perfNorm - current_perf) /
                          (upgraded->power - current);
            if (gain > best_gain) {
                best_gain = gain;
                best_i = i;
                best_point = upgraded;
            }
        }
        if (best_i == alloc.apps.size())
            return;
        AppAllocation &a = alloc.apps[best_i];
        a.point = best_point;
        a.budget = best_point->power;
        a.expectedPerf = best_point->perfNorm;
    }
}

Allocation
PowerAllocator::equalSplit(
    const std::vector<const UtilityCurve *> &curves,
    Watts dynamic_budget) const
{
    psm_assert(!curves.empty());
    Allocation alloc;
    alloc.dynamicBudget = dynamic_budget;
    Watts share = dynamic_budget / static_cast<double>(curves.size());
    for (const auto *curve : curves) {
        AppAllocation a;
        a.app = curve->name();
        a.point = curve->bestWithin(share);
        if (a.point) {
            a.budget = share;
            a.expectedPerf = a.point->perfNorm;
            alloc.used += a.point->power;
            alloc.objective += a.expectedPerf;
        }
        alloc.apps.push_back(std::move(a));
    }
    return alloc;
}

TemporalPlan
PowerAllocator::temporalPlan(
    const std::vector<const UtilityCurve *> &curves, Watts on_budget,
    ShareMode mode) const
{
    if (tel)
        tel->count("allocator.temporal_plan");
    TemporalPlan plan;
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < curves.size(); ++i) {
        auto point = curves[i]->bestWithin(on_budget);
        if (point) {
            TemporalSlot slot;
            slot.app = curves[i]->name();
            slot.point = *point;
            plan.slots.push_back(std::move(slot));
            runnable.push_back(i);
        } else {
            plan.unschedulable.push_back(curves[i]->name());
        }
    }
    if (plan.slots.empty())
        return plan;

    if (mode == ShareMode::Equal) {
        double share = 1.0 / static_cast<double>(plan.slots.size());
        for (auto &slot : plan.slots)
            slot.share = share;
    } else {
        // Weight by perf-per-watt at the ON point, floored so no
        // application starves, then normalized.
        double sum = 0.0;
        for (auto &slot : plan.slots) {
            slot.share = slot.point.perfNorm /
                         std::max(slot.point.power, 1e-9);
            sum += slot.share;
        }
        double floor_share =
            cfg.shareFloor / static_cast<double>(plan.slots.size());
        double total = 0.0;
        for (auto &slot : plan.slots) {
            slot.share = std::max(slot.share / sum, floor_share);
            total += slot.share;
        }
        for (auto &slot : plan.slots)
            slot.share /= total;
    }

    for (const auto &slot : plan.slots)
        plan.objective += slot.share * slot.point.perfNorm;
    return plan;
}

EsdPlan
PowerAllocator::esdPlan(const std::vector<const UtilityCurve *> &curves,
                        Watts idle_power, Watts cm_power, Watts cap,
                        const esd::BatteryConfig &esd) const
{
    EsdPlan best;
    if (tel)
        tel->count("allocator.esd_plan");
    if (cap <= idle_power)
        return best; // no headroom to ever charge

    Watts charge = std::min(cap - idle_power, esd.maxChargePower);
    double eta = esd.roundTripEfficiency();

    // Candidate ON-period dynamic budgets: from the cheapest joint
    // operating point up to everyone flat out.
    Watts lo = 0.0;
    Watts hi = 0.0;
    for (const auto *c : curves) {
        lo += c->minPower();
        hi += c->maxPower();
    }

    // Walk the candidate budgets by integer bucket index rather than
    // accumulating `budget += step`: repeated addition drifts, and
    // near the boundary the drift could add or drop the final
    // candidate depending on how the error happened to round.
    auto buckets = static_cast<std::size_t>(
        std::floor((hi - lo + 1e-9) / cfg.esdSearchStep)) + 1;
    for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
        Watts budget =
            lo + static_cast<double>(bucket) * cfg.esdSearchStep;
        Allocation alloc = allocate(curves, budget);
        if (!alloc.allScheduled())
            continue;
        Watts on_draw = idle_power + cm_power + alloc.used;
        Watts deficit = on_draw - cap;
        double on_fraction;
        if (deficit <= 0.0) {
            // Fits under the cap outright; no OFF period needed.
            on_fraction = 1.0;
            deficit = 0.0;
        } else {
            if (deficit > esd.maxDischargePower)
                continue; // battery cannot bridge this draw
            // Eq. 5: off/on = deficit / (eta * charge headroom).
            double off_over_on = deficit / (eta * charge);
            on_fraction = 1.0 / (1.0 + off_over_on);
        }
        double objective = on_fraction * alloc.objective;
        if (objective > best.objective) {
            best.onAllocation = std::move(alloc);
            best.offFraction = 1.0 - on_fraction;
            best.deficit = deficit;
            best.chargePower = charge;
            best.objective = objective;
            best.viable = true;
        }
    }
    return best;
}

} // namespace psm::core
