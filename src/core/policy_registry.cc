#include "policy_registry.hh"

#include <memory>

#include "policy_cuttlesys.hh"
#include "policy_fastcap.hh"
#include "util/logging.hh"

namespace psm::core
{

PolicyRegistry::PolicyRegistry()
{
    // The five paper policies (Sections IV-A/IV-B).  Flags encode
    // what the old policyAppAware/policyResAware/policyUsesEsd
    // switch tables answered, plus App-Aware's RAPL enforcement.
    add({PolicyKind::UtilUnaware, "Util-Unaware", "util-unaware",
         {false, false, false, false}, nullptr});
    add({PolicyKind::ServerResAware, "Server+Res-Aware",
         "server-res-aware", {false, true, false, false}, nullptr});
    add({PolicyKind::AppAware, "App-Aware", "app-aware",
         {true, false, false, true}, nullptr});
    add({PolicyKind::AppResAware, "App+Res-Aware", "app-res-aware",
         {true, true, false, false}, nullptr});
    add({PolicyKind::AppResEsdAware, "App+Res+ESD-Aware",
         "app-res-esd-aware", {true, true, true, false}, nullptr});

    // The rival allocators of the policy arena.  Both learn full
    // (f, n, m) frontiers but replace the exact DP with their own
    // optimization; neither considers ESD plans.
    add({PolicyKind::FastCapFair, "FastCap", "fastcap",
         {true, true, false, false},
         [] { return std::make_unique<FastCapPlanner>(); }});
    add({PolicyKind::CuttleSysSearch, "CuttleSys", "cuttlesys",
         {true, true, false, false},
         [] { return std::make_unique<CuttleSysPlanner>(); }});
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

const PolicyInfo *
PolicyRegistry::find(PolicyKind kind) const
{
    for (const PolicyInfo &info : entries)
        if (info.kind == kind)
            return &info;
    return nullptr;
}

const PolicyInfo &
PolicyRegistry::infoFor(PolicyKind kind) const
{
    const PolicyInfo *info = find(kind);
    if (!info)
        panic("invalid PolicyKind %d", static_cast<int>(kind));
    return *info;
}

const PolicyInfo *
PolicyRegistry::findName(const std::string &cli_name) const
{
    for (const PolicyInfo &info : entries)
        if (info.cliName == cli_name)
            return &info;
    return nullptr;
}

const PolicyInfo *
PolicyRegistry::findWireId(std::uint8_t wire_id) const
{
    return find(static_cast<PolicyKind>(wire_id));
}

std::string
PolicyRegistry::cliNames() const
{
    std::string names;
    for (const PolicyInfo &info : entries) {
        if (!names.empty())
            names += '|';
        names += info.cliName;
    }
    return names;
}

void
PolicyRegistry::add(PolicyInfo info)
{
    if (find(info.kind)) {
        panic("policy kind %d registered twice",
              static_cast<int>(info.kind));
    }
    for (const PolicyInfo &e : entries) {
        if (e.name == info.name || e.cliName == info.cliName) {
            panic("policy name '%s'/'%s' registered twice",
                  info.name.c_str(), info.cliName.c_str());
        }
    }
    entries.push_back(std::move(info));
}

} // namespace psm::core
