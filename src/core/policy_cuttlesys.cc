#include "policy_cuttlesys.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::core
{

namespace
{

/** Search-effort bound: moves per plan() call.  Generous — the move
 * space is tiny (k apps, tens of frontier points) and each move must
 * strictly improve the objective, but a hard ceiling keeps a
 * pathological frontier from ever stalling the control loop. */
constexpr std::size_t kMaxMoves = 512;

/** Total power of a configuration (one frontier index per app). */
Watts
configPower(const std::vector<const UtilityCurve *> &curves,
            const std::vector<std::size_t> &choice)
{
    Watts total = 0.0;
    for (std::size_t i = 0; i < curves.size(); ++i)
        total += curves[i]->points()[choice[i]].power;
    return total;
}

/**
 * Estimated efficiency used to seed the search: the best
 * perf-per-watt over the frontier (its knee), which is what the CF
 * estimates make cheap to read off.
 */
double
kneeEfficiency(const UtilityCurve &curve)
{
    double best = 0.0;
    for (const UtilityPoint &p : curve.points()) {
        if (p.power > 0.0)
            best = std::max(best, p.perfNorm / p.power);
    }
    return best;
}

} // namespace

Allocation
CuttleSysPlanner::plan(const std::vector<const UtilityCurve *> &curves,
                       Watts usable, const Context &ctx)
{
    Allocation out;
    out.dynamicBudget = usable;
    const std::size_t k = curves.size();
    if (k == 0)
        return out;
    if (ctx.telemetry)
        ctx.telemetry->count(trace::EventId::PolicyCuttlesysPlans);

    // Floor feasibility: below the sum of cheapest points no full
    // configuration exists; hand back a best-effort equal split whose
    // unscheduled apps send the selector down the fallback ladder.
    Watts floor_total = 0.0;
    for (const UtilityCurve *c : curves)
        floor_total += c->minPower();
    if (floor_total > usable + 1e-9) {
        Watts share = usable / static_cast<double>(k);
        for (const UtilityCurve *c : curves) {
            AppAllocation a;
            a.app = c->name();
            a.budget = share;
            a.point = c->bestWithin(share);
            if (a.point) {
                a.expectedPerf = a.point->perfNorm;
                out.used += a.point->power;
                out.objective += a.expectedPerf;
            }
            out.apps.push_back(std::move(a));
        }
        return out;
    }

    // --- Seed -----------------------------------------------------
    // Warm start when the application set matches the previous
    // decision; otherwise CF-efficiency-proportional shares.
    std::vector<std::size_t> choice(k, 0);
    bool warm = last_choice.size() == k;
    if (warm) {
        for (std::size_t i = 0; i < k && warm; ++i) {
            auto it = last_choice.find(curves[i]->name());
            if (it == last_choice.end() ||
                it->second >= curves[i]->points().size())
                warm = false;
            else
                choice[i] = it->second;
        }
    }
    if (!warm) {
        double eff_sum = 0.0;
        std::vector<double> eff(k, 0.0);
        for (std::size_t i = 0; i < k; ++i) {
            eff[i] = kneeEfficiency(*curves[i]);
            eff_sum += eff[i];
        }
        for (std::size_t i = 0; i < k; ++i) {
            Watts share =
                eff_sum > 0.0
                    ? usable * eff[i] / eff_sum
                    : usable / static_cast<double>(k);
            share = std::max(share, curves[i]->minPower());
            const auto &pts = curves[i]->points();
            std::size_t ix = 0;
            while (ix + 1 < pts.size() &&
                   pts[ix + 1].power <= share + 1e-9)
                ++ix;
            choice[i] = ix;
        }
    } else if (ctx.telemetry) {
        ctx.telemetry->count(trace::EventId::PolicyCuttlesysWarmStarts);
    }

    // --- Repair ---------------------------------------------------
    // The seed can exceed the budget (rounding up to minima, a warm
    // start against a shrunk budget): walk configurations down,
    // cheapest utility loss per watt freed first, until it fits.
    // Bounded by the total frontier size; the all-minima floor fits.
    Watts total = configPower(curves, choice);
    while (total > usable + 1e-9) {
        std::size_t pick = k;
        double pick_score = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            if (choice[i] == 0)
                continue;
            const auto &pts = curves[i]->points();
            Watts freed =
                pts[choice[i]].power - pts[choice[i] - 1].power;
            double loss =
                pts[choice[i]].perfNorm - pts[choice[i] - 1].perfNorm;
            double score = loss / freed; // both > 0 on the frontier
            if (pick == k || score < pick_score) {
                pick = i;
                pick_score = score;
            }
        }
        psm_assert(pick < k);
        const auto &pts = curves[pick]->points();
        total -= pts[choice[pick]].power - pts[choice[pick] - 1].power;
        --choice[pick];
    }

    // --- Local search ---------------------------------------------
    // Greedy hill climbing: the best strictly-improving move among
    // single-app upgrades (within slack) and downgrade/upgrade swaps.
    for (std::size_t moves = 0; moves < kMaxMoves; ++moves) {
        Watts slack = usable - total;
        double best_gain = 1e-12;
        std::size_t up = k, down = k; // down == k: pure upgrade

        for (std::size_t i = 0; i < k; ++i) {
            const auto &pi = curves[i]->points();
            if (choice[i] + 1 >= pi.size())
                continue;
            Watts need = pi[choice[i] + 1].power - pi[choice[i]].power;
            double gain =
                pi[choice[i] + 1].perfNorm - pi[choice[i]].perfNorm;
            if (need <= slack + 1e-9 && gain > best_gain) {
                best_gain = gain;
                up = i;
                down = k;
            }
            // Swap: fund the upgrade by stepping one other app down.
            for (std::size_t j = 0; j < k; ++j) {
                if (j == i || choice[j] == 0)
                    continue;
                const auto &pj = curves[j]->points();
                Watts freed =
                    pj[choice[j]].power - pj[choice[j] - 1].power;
                if (need > slack + freed + 1e-9)
                    continue;
                double net = gain - (pj[choice[j]].perfNorm -
                                     pj[choice[j] - 1].perfNorm);
                if (net > best_gain) {
                    best_gain = net;
                    up = i;
                    down = j;
                }
            }
        }
        if (up == k)
            break;
        if (down < k) {
            const auto &pj = curves[down]->points();
            total -= pj[choice[down]].power -
                     pj[choice[down] - 1].power;
            --choice[down];
        }
        const auto &pi = curves[up]->points();
        total += pi[choice[up] + 1].power - pi[choice[up]].power;
        ++choice[up];
        if (ctx.telemetry)
            ctx.telemetry->count(trace::EventId::PolicyCuttlesysMoves);
    }
    psm_assert(total <= usable + 1e-6);

    last_choice.clear();
    for (std::size_t i = 0; i < k; ++i)
        last_choice.emplace(curves[i]->name(), choice[i]);

    for (std::size_t i = 0; i < k; ++i) {
        const UtilityPoint &p = curves[i]->points()[choice[i]];
        AppAllocation a;
        a.app = curves[i]->name();
        a.budget = p.power;
        a.point = p;
        a.expectedPerf = p.perfNorm;
        out.used += p.power;
        out.objective += p.perfNorm;
        out.apps.push_back(std::move(a));
    }
    return out;
}

} // namespace psm::core
