/**
 * @file
 * The Telemetry bus: a lightweight, cross-cutting sink for control-plane
 * observability.
 *
 * Every layer of the control plane — learning pipeline, plan selector,
 * allocator, coordinator, control loop and the cluster substrate —
 * publishes into one of three primitives:
 *
 *  - counters: monotonically increasing named event tallies
 *    (plan choices, accountant events, guard trips, mode transitions);
 *  - timers: named duration observations with count/total/max;
 *  - decision records: one structured record per allocation decision
 *    (trigger, policy, selected plan, resulting coordination mode,
 *    objective, budget, latency).
 *
 * The bus is passive and allocation-light: publishing never influences
 * control decisions, so a manager with and without telemetry attached
 * behaves identically.  Text and JSON dump hooks serve the benches
 * (see bench/bench_common.hh) and tests.
 */

#ifndef PSM_CORE_TELEMETRY_HH
#define PSM_CORE_TELEMETRY_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.hh"

namespace psm::core
{

/** One allocation decision as observed on the bus. */
struct DecisionRecord
{
    Tick when = 0;          ///< simulated time of the decision
    std::string trigger;    ///< comma-joined causes ("E1-cap-change",
                            ///< "refresh", "trim", "calibration", ...)
    std::string policy;     ///< policyName() of the deciding manager
    std::string plan;       ///< planChoiceName() of the selected plan
    std::string mode;       ///< coordinationModeName() after actuation
    double objective = 0.0; ///< expected Eq. 1 objective of the plan
    Watts budget = 0.0;     ///< dynamic budget the plan divided
    std::size_t apps = 0;   ///< active applications at decision time
    Tick latency = 0;       ///< allocation latency (calibration+decision)
};

/** Aggregate of one named timer. */
struct TimerStat
{
    std::uint64_t count = 0;
    Tick total = 0;
    Tick max = 0;
};

/**
 * The bus itself.  Not thread-safe (the simulator is single-threaded);
 * cheap enough to leave attached in benches.
 */
class Telemetry
{
  public:
    /** Bump a named counter. */
    void count(const std::string &name, std::uint64_t delta = 1);

    /** Read a counter (0 when never bumped). */
    std::uint64_t counter(const std::string &name) const;

    /** Observe one duration under a named timer. */
    void observe(const std::string &name, Tick elapsed);

    /** Read a timer's aggregate (zeroes when never observed). */
    TimerStat timer(const std::string &name) const;

    /** Publish one allocation decision record. */
    void record(DecisionRecord rec);

    /** All decision records, oldest first (bounded ring). */
    const std::deque<DecisionRecord> &decisions() const
    {
        return decision_log;
    }

    /** All counters, name-ordered. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counter_map;
    }

    /**
     * Fold another bus into this one: counters and timers add up,
     * decision records append.  Used to aggregate per-node telemetry
     * at cluster scope.
     */
    void merge(const Telemetry &other);

    /** Drop everything. */
    void reset();

    /** Human-readable dump (counters, timers, recent decisions). */
    void dumpText(std::ostream &os) const;

    /** Machine-readable JSON dump of the same content. */
    void dumpJson(std::ostream &os) const;

    /**
     * Decision records kept before the ring starts dropping its
     * oldest entries (counters and timers are never dropped).
     */
    static constexpr std::size_t maxDecisions = 65536;

  private:
    std::map<std::string, std::uint64_t> counter_map;
    std::map<std::string, TimerStat> timer_map;
    std::deque<DecisionRecord> decision_log;
};

/**
 * Race-free publishing path for parallel loops: one private Telemetry
 * shard per work index, merged into a target bus in index order after
 * the loop joins.
 *
 * The bus itself stays unsynchronized (the common case is still a
 * single-threaded control plane); parallel regions that want to
 * publish grab shard(i) — which no other index touches — and the
 * deterministic merge order keeps aggregated decision logs stable
 * across worker counts.
 */
class TelemetryShards
{
  public:
    explicit TelemetryShards(std::size_t n) : shard_list(n) {}

    std::size_t size() const { return shard_list.size(); }

    /** The private bus of work index @p ix. */
    Telemetry &shard(std::size_t ix) { return shard_list.at(ix); }

    /** Fold every shard into @p bus, in index order. */
    void
    mergeInto(Telemetry &bus) const
    {
        for (const Telemetry &s : shard_list)
            bus.merge(s);
    }

  private:
    std::vector<Telemetry> shard_list;
};

} // namespace psm::core

#endif // PSM_CORE_TELEMETRY_HH
