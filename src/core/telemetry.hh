/**
 * @file
 * The Telemetry bus: a lightweight, cross-cutting sink for control-plane
 * observability.
 *
 * Every layer of the control plane — learning pipeline, plan selector,
 * allocator, coordinator, control loop and the cluster substrate —
 * publishes into one of three primitives:
 *
 *  - counters: monotonically increasing named event tallies
 *    (plan choices, accountant events, guard trips, mode transitions);
 *  - timers: named duration observations with count/total/max;
 *  - decision records: one structured record per allocation decision
 *    (trigger, policy, selected plan, resulting coordination mode,
 *    objective, budget, latency).
 *
 * Since the binary-tracing rework the bus is a thin façade over the
 * trace core (src/trace): publishers use compile-time event ids
 * (trace::EventId) and each publish appends one fixed-size binary
 * TraceRecord to a private ring buffer — no allocation, no string
 * hashing — with aggregation folded post hoc.  The historical
 * string-keyed API is kept verbatim on top: registered names route to
 * their dense id, unregistered names (tests, ad-hoc keys) land on an
 * overflow map with the old std::map semantics.
 *
 * The string-keyed storage backend itself also survives, behind
 * Backend::Legacy — the A/B escape hatch (like the allocator's
 * denseDp): construct Telemetry(Backend::Legacy), or set
 * PSM_TELEMETRY_LEGACY=1 to flip the process default, and every
 * publish goes through the original maps.  bench_trace --check
 * asserts both backends aggregate identically.
 *
 * The bus is passive and allocation-light: publishing never influences
 * control decisions, so a manager with and without telemetry attached
 * behaves identically.  Text and JSON dump hooks serve the benches
 * (see bench/bench_common.hh) and tests.
 */

#ifndef PSM_CORE_TELEMETRY_HH
#define PSM_CORE_TELEMETRY_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/units.hh"

namespace psm::core
{

/** One allocation decision as observed on the bus. */
struct DecisionRecord
{
    Tick when = 0;          ///< simulated time of the decision
    std::string trigger;    ///< comma-joined causes ("E1-cap-change",
                            ///< "refresh", "trim", "calibration", ...)
    std::string policy;     ///< policyName() of the deciding manager
    std::string plan;       ///< planChoiceName() of the selected plan
    std::string mode;       ///< coordinationModeName() after actuation
    double objective = 0.0; ///< expected Eq. 1 objective of the plan
    Watts budget = 0.0;     ///< dynamic budget the plan divided
    std::size_t apps = 0;   ///< active applications at decision time
    Tick latency = 0;       ///< allocation latency (calibration+decision)
};

/** Aggregate of one named timer. */
struct TimerStat
{
    std::uint64_t count = 0;
    Tick total = 0;
    Tick max = 0;
};

/**
 * The bus itself.  Not thread-safe (the simulator is single-threaded;
 * parallel regions publish through TelemetryShards); cheap enough to
 * leave attached in benches.
 */
class Telemetry
{
  public:
    /** Which publish path this bus runs. */
    enum class Backend
    {
        Trace,  ///< binary TraceRecords in a ring, dense aggregates
        Legacy, ///< the original string-keyed std::map storage
    };

    /** A bus on the process-default backend (see setProcessDefault). */
    Telemetry() : Telemetry(processDefault()) {}

    explicit Telemetry(Backend backend) : mode(backend) {}

    Backend backend() const { return mode; }

    /**
     * The backend new default-constructed buses use: Trace, unless
     * PSM_TELEMETRY_LEGACY is set in the environment or a bench
     * flipped it here (the A/B escape hatch, like denseDp).
     */
    static Backend processDefault();
    static void setProcessDefault(Backend backend);

    // --- publishing ---------------------------------------------------

    /** Bump a counter by compile-time id (the hot path). */
    void
    count(trace::EventId id, std::uint64_t delta = 1)
    {
        if (mode == Backend::Trace)
            trace_sink.count(id, delta);
        else
            legacyCount(id, delta);
    }

    /** Observe one duration by compile-time id (the hot path). */
    void
    observe(trace::EventId id, Tick elapsed)
    {
        if (mode == Backend::Trace)
            trace_sink.observe(id, elapsed);
        else
            legacyObserve(id, elapsed);
    }

    /** Sample a last-value gauge by compile-time id. */
    void
    gauge(trace::EventId id, std::uint64_t value)
    {
        if (mode == Backend::Trace)
            trace_sink.gauge(id, value);
        else
            legacyGauge(id, value);
    }

    /** Bump a named counter (registered names route to their dense
     * id; unknown names keep the old map semantics). */
    void count(const std::string &name, std::uint64_t delta = 1);

    /** Observe one duration under a named timer. */
    void observe(const std::string &name, Tick elapsed);

    /** Publish one allocation decision record. */
    void record(DecisionRecord rec);

    // --- reading ------------------------------------------------------

    /** Read a counter (0 when never bumped). */
    std::uint64_t counter(const std::string &name) const;

    /** Read a counter (or gauge) by id. */
    std::uint64_t counter(trace::EventId id) const;

    /** Read a timer's aggregate (zeroes when never observed). */
    TimerStat timer(const std::string &name) const;

    /** Read a timer's aggregate by id. */
    TimerStat timer(trace::EventId id) const;

    /** All decision records, oldest first (bounded ring).  On the
     * trace backend this materializes from the packed binary log; the
     * reference stays valid until the next publish or merge. */
    const std::deque<DecisionRecord> &decisions() const;

    /** All counters (and gauges), name-ordered.  Same view rules as
     * decisions(). */
    const std::map<std::string, std::uint64_t> &counters() const;

    /** All timers, name-ordered.  Same view rules as decisions(). */
    const std::map<std::string, TimerStat> &timers() const;

    /**
     * Fold another bus into this one: counters and timers add up,
     * gauges keep the incoming sample, decision records append
     * (oldest dropped once past maxDecisions).  Used to aggregate
     * per-node telemetry at cluster scope.  Trace-to-trace merges are
     * dense O(#events) array folds; mixed-backend merges bridge
     * through the name registry.
     */
    void merge(const Telemetry &other);

    /**
     * Fold this bus's registered aggregates into a raw trace sink
     * (the serving layer's snapshot path).  Overflow-map names have
     * no dense id and are skipped.
     */
    void foldInto(trace::TraceSink &out) const;

    /** The underlying trace sink (empty on the legacy backend). */
    const trace::TraceSink &sink() const { return trace_sink; }

    /** Drop everything. */
    void reset();

    /** Human-readable dump (counters, timers, recent decisions). */
    void dumpText(std::ostream &os) const;

    /** Machine-readable JSON dump of the same content.  Non-finite
     * numbers (NaN/Inf objectives or budgets) are emitted as null so
     * the output always parses. */
    void dumpJson(std::ostream &os) const;

    /**
     * Decision records kept before the ring starts dropping its
     * oldest entries (counters and timers are never dropped).
     */
    static constexpr std::size_t maxDecisions = 65536;

  private:
    /** One decision in fixed-size binary form: strings interned into
     * the bus-local string table. */
    struct PackedDecision
    {
        Tick when = 0;
        Tick latency = 0;
        double objective = 0.0;
        Watts budget = 0.0;
        std::uint64_t apps = 0;
        std::uint32_t trigger = 0; ///< intern ids
        std::uint32_t policy = 0;
        std::uint32_t plan = 0;
        std::uint32_t mode_name = 0;
    };

    Backend mode;
    trace::TraceSink trace_sink;

    /** Legacy storage; doubles as the unregistered-name overflow on
     * the trace backend. */
    std::map<std::string, std::uint64_t> counter_map;
    std::map<std::string, TimerStat> timer_map;
    std::uint64_t overflow_gen = 0; ///< bumped on overflow writes

    /** Trace-backend decision storage: packed records + interned
     * strings.  Legacy stores DecisionRecords directly. */
    std::deque<PackedDecision> packed_log;
    std::vector<std::string> intern_table;
    std::map<std::string, std::uint32_t> intern_ids;
    std::uint64_t decision_gen = 0;
    std::deque<DecisionRecord> decision_log; ///< legacy + trace view

    // Materialized read views (trace backend), rebuilt when stale.
    mutable std::map<std::string, std::uint64_t> counter_view;
    mutable std::map<std::string, TimerStat> timer_view;
    mutable std::uint64_t counter_view_seq = ~0ULL;
    mutable std::uint64_t counter_view_overflow = ~0ULL;
    mutable std::uint64_t timer_view_seq = ~0ULL;
    mutable std::uint64_t timer_view_overflow = ~0ULL;
    mutable std::uint64_t decision_view_gen = ~0ULL;

    std::uint32_t intern(const std::string &s);
    void pushPacked(const PackedDecision &d, const Telemetry &src);
    void legacyCount(trace::EventId id, std::uint64_t delta);
    void legacyObserve(trace::EventId id, Tick elapsed);
    void legacyGauge(trace::EventId id, std::uint64_t value);
    void refreshCounterView() const;
    void refreshTimerView() const;
};

/**
 * Race-free publishing path for parallel loops: one private Telemetry
 * shard per work index, merged into a target bus in index order after
 * the loop joins.
 *
 * The bus itself stays unsynchronized (the common case is still a
 * single-threaded control plane); parallel regions that want to
 * publish grab shard(i) — which no other index touches — and the
 * deterministic merge order keeps aggregated decision logs stable
 * across worker counts.  On the trace backend each shard is a ring
 * of binary records and mergeInto() is a dense array fold per shard,
 * so the merge cost no longer grows with the number of distinct
 * names.
 */
class TelemetryShards
{
  public:
    explicit TelemetryShards(std::size_t n) : shard_list(n) {}

    std::size_t size() const { return shard_list.size(); }

    /** The private bus of work index @p ix. */
    Telemetry &shard(std::size_t ix) { return shard_list.at(ix); }

    /** Fold every shard into @p bus, in index order. */
    void
    mergeInto(Telemetry &bus) const
    {
        for (const Telemetry &s : shard_list)
            bus.merge(s);
    }

  private:
    std::vector<Telemetry> shard_list;
};

} // namespace psm::core

#endif // PSM_CORE_TELEMETRY_HH
