#include "utility_curve.hh"

#include <algorithm>
#include <cmath>

#include "perf/latency.hh"
#include "util/logging.hh"

namespace psm::core
{

UtilityCurve::UtilityCurve(
    std::string name,
    const std::vector<power::KnobSetting> &settings,
    const cf::UtilitySurface &surface, KnobFreedom freedom,
    const power::PlatformConfig *platform, const InteractiveSlo *slo)
    : app_name(std::move(name))
{
    (void)platform;
    if (slo != nullptr && slo->valid())
        slo_spec = *slo;
    psm_assert(settings.size() == surface.power.size() &&
               settings.size() == surface.hbRate.size());
    psm_assert(!settings.empty());

    // Uncapped rate: the surface's best heartbeat rate (the max
    // setting is always admissible, but estimates can be noisy, so
    // normalize by the best seen).
    nocap_rate = *std::max_element(surface.hbRate.begin(),
                                   surface.hbRate.end());
    psm_assert(nocap_rate > 0.0);

    // Under FrequencyOnly freedom, only settings with the
    // non-frequency knobs pinned at their maxima are admissible.
    int top_cores = 0;
    double top_dram = 0.0;
    for (const auto &s : settings) {
        top_cores = std::max(top_cores, s.cores);
        top_dram = std::max(top_dram, s.dramPower);
    }

    // Collect admissible candidates.
    std::vector<UtilityPoint> candidates;
    for (std::size_t c = 0; c < settings.size(); ++c) {
        const power::KnobSetting &s = settings[c];
        if (freedom == KnobFreedom::FrequencyOnly &&
            (s.cores != top_cores ||
             std::abs(s.dramPower - top_dram) > 1e-9)) {
            continue;
        }
        UtilityPoint p;
        p.setting = s;
        p.power = surface.power[c];
        p.hbRate = surface.hbRate[c];
        if (slo_spec) {
            // SLO utility: 1 while the predicted M/M/1 tail meets
            // the SLO, decaying as the tail stretches past it, 0
            // where the queue is unstable.  Monotone non-decreasing
            // in hbRate, so the frontier ordering below still yields
            // non-decreasing perfNorm along increasing power.
            double mu = p.hbRate / slo_spec->hbPerRequest;
            double p99 =
                perf::LatencyModel::p99(mu, slo_spec->offeredLoad);
            p.perfNorm = std::isfinite(p99)
                             ? std::min(1.0, slo_spec->sloP99 / p99)
                             : 0.0;
        } else {
            p.perfNorm = p.hbRate / nocap_rate;
        }
        candidates.push_back(p);
    }
    psm_assert(!candidates.empty());

    // Pareto filter: sort by power ascending (perf descending as the
    // tie-break) and keep points that strictly improve performance.
    std::sort(candidates.begin(), candidates.end(),
              [](const UtilityPoint &a, const UtilityPoint &b) {
                  if (a.power != b.power)
                      return a.power < b.power;
                  return a.hbRate > b.hbRate;
              });
    double best = -1.0;
    for (const auto &p : candidates) {
        if (p.hbRate > best + 1e-12) {
            frontier.push_back(p);
            best = p.hbRate;
        }
    }
}

Watts
UtilityCurve::minPower() const
{
    psm_assert(!frontier.empty());
    return frontier.front().power;
}

Watts
UtilityCurve::maxPower() const
{
    psm_assert(!frontier.empty());
    return frontier.back().power;
}

std::optional<UtilityPoint>
UtilityCurve::bestWithin(Watts budget) const
{
    // Frontier is sorted by power with increasing performance, so the
    // last affordable point is the best.
    std::optional<UtilityPoint> best;
    for (const auto &p : frontier) {
        if (p.power <= budget + 1e-9)
            best = p;
        else
            break;
    }
    return best;
}

double
UtilityCurve::perfAt(Watts budget) const
{
    auto p = bestWithin(budget);
    return p ? p->perfNorm : 0.0;
}

std::vector<std::pair<std::size_t, double>>
UtilityCurve::bucketCandidates(Watts reserve, Watts granularity,
                               std::size_t max_buckets) const
{
    psm_assert(granularity > 0.0);
    std::vector<std::pair<std::size_t, double>> cands;
    cands.emplace_back(0, perfAt(reserve));
    for (const auto &p : frontier) {
        // Points inside the reserve are already captured by the
        // bucket-0 candidate.
        if (p.power <= reserve + 1e-9)
            continue;
        if ((p.power - reserve) / granularity >
            static_cast<double>(max_buckets) + 2.0) {
            break; // beyond the grid (frontier ascends in power)
        }
        // Smallest x with p.power <= reserve + x * granularity + eps.
        // ceil() can land one bucket off through rounding, so settle
        // with the exact affordability predicate bestWithin() uses.
        auto x = static_cast<std::size_t>(std::max(
            std::ceil((p.power - reserve - 1e-9) / granularity), 0.0));
        while (x > 0 &&
               p.power <= reserve +
                              static_cast<double>(x - 1) * granularity +
                              1e-9) {
            --x;
        }
        while (p.power >
               reserve + static_cast<double>(x) * granularity + 1e-9) {
            ++x;
        }
        if (x > max_buckets)
            break;
        double v =
            perfAt(reserve + static_cast<double>(x) * granularity);
        if (cands.back().first == x)
            cands.back().second = v; // same bucket: keep the best
        else
            cands.emplace_back(x, v);
    }
    return cands;
}

double
UtilityCurve::marginalUtility(Watts budget) const
{
    if (frontier.size() < 2)
        return 0.0;
    if (budget < frontier.front().power ||
        budget >= frontier.back().power) {
        return 0.0;
    }
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        if (frontier[i].power > budget) {
            double dp = frontier[i].power - frontier[i - 1].power;
            double dperf =
                frontier[i].perfNorm - frontier[i - 1].perfNorm;
            return dp > 0.0 ? dperf / dp : 0.0;
        }
    }
    return 0.0;
}

std::optional<UtilityPoint>
UtilityCurve::mostEfficientWithin(Watts budget) const
{
    std::optional<UtilityPoint> best;
    double best_ratio = -1.0;
    for (const auto &p : frontier) {
        if (p.power > budget + 1e-9)
            break;
        double ratio = p.perfNorm / std::max(p.power, 1e-9);
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best = p;
        }
    }
    return best;
}

ResourceMarginals
resourceMarginals(const power::PlatformConfig &config,
                  const std::vector<power::KnobSetting> &settings,
                  const cf::UtilitySurface &surface,
                  const power::KnobSetting &base)
{
    psm_assert(settings.size() == surface.power.size());

    auto find = [&](const power::KnobSetting &want) -> long {
        power::KnobSetting s = config.clampSetting(want);
        for (std::size_t c = 0; c < settings.size(); ++c) {
            if (std::abs(settings[c].freq - s.freq) < 1e-6 &&
                settings[c].cores == s.cores &&
                std::abs(settings[c].dramPower - s.dramPower) < 1e-6) {
                return static_cast<long>(c);
            }
        }
        return -1;
    };

    long base_ix = find(base);
    psm_assert(base_ix >= 0);
    double base_power = surface.power[static_cast<std::size_t>(base_ix)];
    double base_hb = surface.hbRate[static_cast<std::size_t>(base_ix)];

    auto marginal = [&](power::KnobSetting next, Watts min_cost) {
        long ix = find(next);
        if (ix < 0 || ix == base_ix)
            return 0.0;
        double dpow = surface.power[static_cast<std::size_t>(ix)] -
                      base_power;
        double dperf = (surface.hbRate[static_cast<std::size_t>(ix)] -
                        base_hb) / std::max(base_hb, 1e-9);
        // Charge at least the knob's commitment: an allocated watt is
        // spent from the budget whether the hardware draws it or not,
        // and a (nearly) free knob move must not yield a
        // noise-dominated ratio.
        dpow = std::max(dpow, min_cost);
        if (dpow <= 0.05)
            return 0.0;
        return dperf / dpow;
    };

    ResourceMarginals out;
    power::KnobSetting more_cores = base;
    more_cores.cores += 1;
    out.corePerWatt = marginal(more_cores, 0.05);

    power::KnobSetting more_freq = base;
    more_freq.freq += config.freqStep;
    out.freqPerWatt = marginal(more_freq, 0.05);

    // The DRAM knob is a budget grant of a full step.
    power::KnobSetting more_dram = base;
    more_dram.dramPower += config.dramPowerStep;
    out.dramPerWatt = marginal(more_dram, config.dramPowerStep);
    return out;
}

cf::UtilitySurface
averageSurfaces(const std::vector<cf::UtilitySurface> &surfaces)
{
    psm_assert(!surfaces.empty());
    std::size_t n = surfaces.front().power.size();
    cf::UtilitySurface avg;
    avg.power.assign(n, 0.0);
    avg.hbRate.assign(n, 0.0);
    avg.sampledColumns = n;

    // Average normalized performance so large-throughput apps do not
    // dominate the shape; average power in watts directly.
    for (const auto &s : surfaces) {
        psm_assert(s.power.size() == n && s.hbRate.size() == n);
        double peak = *std::max_element(s.hbRate.begin(),
                                        s.hbRate.end());
        psm_assert(peak > 0.0);
        for (std::size_t c = 0; c < n; ++c) {
            avg.power[c] += s.power[c];
            avg.hbRate[c] += s.hbRate[c] / peak;
        }
    }
    for (std::size_t c = 0; c < n; ++c) {
        avg.power[c] /= static_cast<double>(surfaces.size());
        avg.hbRate[c] /= static_cast<double>(surfaces.size());
    }
    return avg;
}

} // namespace psm::core
