#include "learning_pipeline.hh"

#include "util/logging.hh"

namespace psm::core
{

LearningPipeline::LearningPipeline(sim::Server &server,
                                   LearningConfig config,
                                   Telemetry *telemetry)
    : srv(server), cfg(config), tel(telemetry), rng(cfg.seed),
      profiler(server.platform(), cfg.measurementNoise),
      sampler(server.platform(), cfg.sampling)
{
    if (cfg.sampleFraction <= 0.0 || cfg.sampleFraction > 1.0)
        fatal("sampleFraction must lie in (0, 1]");
}

void
LearningPipeline::seedCorpus(
    const std::vector<perf::AppProfile> &profiles)
{
    cf::Profiler exhaustive(srv.platform(), 0.0);
    Rng corpus_rng(cfg.seed ^ 0xc0f5eULL);
    for (const auto &p : profiles) {
        bool duplicate = false;
        for (const auto &e : corpus)
            duplicate |= e.name == p.name;
        if (duplicate)
            continue;
        perf::PerfModel model(srv.platform(), p);
        CorpusEntry entry;
        entry.name = p.name;
        exhaustive.measureAll(model, entry.power, entry.hbRate,
                              corpus_rng);
        corpus.push_back(std::move(entry));
    }
    // Cached fits were made against the old corpus; drop them.
    fit_states.clear();
    rebuildServerAverageCurve();
    if (tel)
        tel->count(trace::EventId::LearningCorpusApps, corpus.size());
}

void
LearningPipeline::rebuildServerAverageCurve()
{
    if (corpus.empty()) {
        server_avg_curve.reset();
        return;
    }
    std::vector<cf::UtilitySurface> surfaces;
    surfaces.reserve(corpus.size());
    for (const auto &e : corpus) {
        surfaces.push_back(
            cf::UtilityEstimator::surfaceFromRows(e.power, e.hbRate));
    }
    server_avg_curve.emplace("server-average", profiler.settings(),
                             averageSurfaces(surfaces),
                             KnobFreedom::All);
}

void
LearningPipeline::track(int id, const std::string &name)
{
    // A re-arrival reuses the name of a departed app whose frontier
    // may still sit in downstream caches (the cache can keep serving
    // a departed sequence by recombination) — and the newcomer's
    // surface can differ while matching on name.  Bump the epoch so
    // those entries cannot be mistaken for the new app; first-time
    // names leave it alone so the arrival extends caches in place.
    if (!tracked_names.insert(name).second)
        ++surface_epoch;
    AppLearning a;
    a.name = name;
    apps.emplace(id, std::move(a));
}

void
LearningPipeline::track(int id, const perf::AppProfile &profile)
{
    track(id, profile.name);
    apps.at(id).slo = InteractiveSlo::fromProfile(profile);
}

void
LearningPipeline::forget(int id)
{
    apps.erase(id);
}

bool
LearningPipeline::startCalibration(int id)
{
    auto it = apps.find(id);
    psm_assert(it != apps.end());
    AppLearning &a = it->second;
    a.calibration_started = srv.now();
    // Recalibration replaces a live surface, so curves derived from it
    // go stale the moment we start; first-time calibrations only add a
    // curve, which downstream caches absorb incrementally.
    if (a.surface.has_value())
        ++surface_epoch;
    if (tel)
        tel->count(trace::EventId::LearningCalibrationsStarted);

    if (cfg.oracleUtilities) {
        // Oracle: exhaustive, instantaneous, noiseless re-profiling
        // at the application's current phase.
        sim::Application &app = srv.app(id);
        const sim::Phase &phase = app.currentPhase();
        cf::Profiler exhaustive(srv.platform(), 0.0);
        Rng oracle_rng(cfg.seed ^ 0x04ac1eULL);
        std::vector<double> power_row;
        std::vector<double> hb_row;
        // measureAll lacks phase scaling; measure per column instead.
        std::size_t n = exhaustive.columnCount();
        power_row.resize(n);
        hb_row.resize(n);
        for (std::size_t c = 0; c < n; ++c) {
            cf::Measurement s = exhaustive.measureOne(
                app.perf(), c, oracle_rng, phase.cpuScale,
                phase.memScale);
            power_row[c] = s.power;
            hb_row[c] = s.hbRate;
        }
        a.surface = cf::UtilityEstimator::surfaceFromRows(power_row,
                                                          hb_row);
        a.calibration_ready = maxTick;
        last_latency = 0;
        if (tel)
            tel->count(trace::EventId::LearningOracleCalibrations);
        return true;
    }

    // Online sparse sampling: choose the settings now, charge the
    // measurement wall-clock, deliver the surface when it elapses.
    a.surface.reset();
    a.pending_cols = sampler.select(cfg.sampleFraction, rng);
    a.calibration_ready =
        srv.now() + static_cast<Tick>(a.pending_cols.size()) *
                        cfg.calibrationPerSample;
    // The application runs conservatively while being profiled.
    srv.app(id).setKnobs(srv.platform().minSetting());
    return false;
}

void
LearningPipeline::finishCalibration(int id)
{
    auto it = apps.find(id);
    psm_assert(it != apps.end());
    AppLearning &a = it->second;
    psm_assert(!a.pending_cols.empty());

    sim::Application &app = srv.app(id);
    const sim::Phase &phase = app.currentPhase();
    auto samples = profiler.measure(app.perf(), a.pending_cols, rng,
                                    phase.cpuScale, phase.memScale);

    // Leave-one-out corpus: never let an application predict itself.
    cf::UtilityEstimator estimator(srv.platform(), cfg.als);
    for (const auto &e : corpus) {
        if (e.name != a.name)
            estimator.addCorpusApp(e.name, e.power, e.hbRate);
    }
    cf::FitOutcome outcome;
    a.surface = estimator.estimate(samples, &fit_states[a.name],
                                   &outcome);
    a.calibration_ready = maxTick;
    a.pending_cols.clear();
    last_latency = srv.now() - a.calibration_started;
    if (tel) {
        tel->count(trace::EventId::LearningCalibrationsFinished);
        tel->observe(trace::EventId::LearningCalibration, last_latency);
        if (outcome.cacheHit) {
            // Cache hits run zero ALS sweeps and never touch the
            // fit timer.
            tel->count(trace::EventId::LearningSurfaceCacheHits);
        } else {
            tel->count(trace::EventId::LearningAlsFits);
            tel->count(trace::EventId::LearningAlsSweeps, outcome.sweeps);
            tel->observe(trace::EventId::LearningAlsFit,
                         toTicks(outcome.fitSeconds));
            if (outcome.warmStarted)
                tel->count(trace::EventId::LearningAlsWarmStarts);
        }
    }
}

std::vector<int>
LearningPipeline::finishDueCalibrations()
{
    std::vector<int> finished;
    for (auto &[id, a] : apps) {
        if (a.calibration_ready != maxTick &&
            srv.now() >= a.calibration_ready && srv.hasApp(id) &&
            !srv.app(id).finished()) {
            finishCalibration(id);
            finished.push_back(id);
        }
    }
    return finished;
}

bool
LearningPipeline::calibrated(int id) const
{
    auto it = apps.find(id);
    return it != apps.end() && it->second.surface.has_value();
}

UtilityCurve
LearningPipeline::utilityFor(int id, KnobFreedom freedom) const
{
    auto it = apps.find(id);
    psm_assert(it != apps.end());
    psm_assert(it->second.surface.has_value());
    return UtilityCurve(it->second.name, profiler.settings(),
                        *it->second.surface, freedom, &srv.platform(),
                        &it->second.slo);
}

} // namespace psm::core
