#include "manager.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

double
AppRecord::normalizedPerf(Tick now) const
{
    Tick until = done ? finishedAt : now;
    if (until <= admitted || uncappedRate <= 0.0)
        return 0.0;
    double elapsed = toSeconds(until - admitted);
    return (beats / elapsed) / uncappedRate;
}

ServerManager::ServerManager(sim::Server &server, ManagerConfig config)
    : srv(server), cfg(std::move(config)), rng(cfg.seed),
      profiler(server.platform(), cfg.measurementNoise),
      sampler(server.platform(), cfg.sampling),
      allocator(cfg.allocator), coord(cfg.coordinator),
      accountant(cfg.accountant)
{
    if (cfg.sampleFraction <= 0.0 || cfg.sampleFraction > 1.0)
        fatal("sampleFraction must lie in (0, 1]");
    if (cfg.controlPeriod == 0)
        fatal("controlPeriod must be positive");
    if (policyUsesEsd(cfg.policy) && !srv.hasEsd()) {
        warn("policy %s selected but the server has no ESD; it will "
             "fall back to temporal coordination",
             policyName(cfg.policy).c_str());
    }
}

void
ServerManager::seedCorpus(const std::vector<perf::AppProfile> &profiles)
{
    cf::Profiler exhaustive(srv.platform(), 0.0);
    Rng corpus_rng(cfg.seed ^ 0xc0f5eULL);
    for (const auto &p : profiles) {
        bool duplicate = false;
        for (const auto &e : corpus)
            duplicate |= e.name == p.name;
        if (duplicate)
            continue;
        perf::PerfModel model(srv.platform(), p);
        CorpusEntry entry;
        entry.name = p.name;
        exhaustive.measureAll(model, entry.power, entry.hbRate,
                              corpus_rng);
        corpus.push_back(std::move(entry));
    }
    rebuildServerAverageCurve();
}

void
ServerManager::rebuildServerAverageCurve()
{
    if (corpus.empty()) {
        server_avg_curve.reset();
        return;
    }
    std::vector<cf::UtilitySurface> surfaces;
    surfaces.reserve(corpus.size());
    for (const auto &e : corpus) {
        surfaces.push_back(
            cf::UtilityEstimator::surfaceFromRows(e.power, e.hbRate));
    }
    server_avg_curve.emplace("server-average", profiler.settings(),
                             averageSurfaces(surfaces),
                             KnobFreedom::All);
}

int
ServerManager::addApp(const perf::AppProfile &profile)
{
    for (const auto &[id, m] : managed) {
        if (!m.record.done && m.record.name == profile.name) {
            fatal("an active application named '%s' already exists on "
                  "this server", profile.name.c_str());
        }
    }

    int id = srv.admit(profile);
    ManagedApp m;
    m.record.id = id;
    m.record.name = profile.name;
    m.record.admitted = srv.now();
    m.record.uncappedRate = srv.app(id).perf().maxHbRate();
    managed.emplace(id, std::move(m));

    accountant.notifyArrival(id);
    if (policyAppAware(cfg.policy))
        startCalibration(id);
    return id;
}

void
ServerManager::startCalibration(int id)
{
    auto it = managed.find(id);
    psm_assert(it != managed.end());
    ManagedApp &m = it->second;
    m.calibration_started = srv.now();

    if (cfg.oracleUtilities) {
        // Oracle: exhaustive, instantaneous, noiseless re-profiling
        // at the application's current phase.
        sim::Application &app = srv.app(id);
        const sim::Phase &phase = app.currentPhase();
        cf::Profiler exhaustive(srv.platform(), 0.0);
        Rng oracle_rng(cfg.seed ^ 0x04ac1eULL);
        std::vector<double> power_row;
        std::vector<double> hb_row;
        // measureAll lacks phase scaling; measure per column instead.
        std::size_t n = exhaustive.columnCount();
        power_row.resize(n);
        hb_row.resize(n);
        for (std::size_t c = 0; c < n; ++c) {
            cf::Measurement s = exhaustive.measureOne(
                app.perf(), c, oracle_rng, phase.cpuScale,
                phase.memScale);
            power_row[c] = s.power;
            hb_row[c] = s.hbRate;
        }
        m.surface = cf::UtilityEstimator::surfaceFromRows(power_row,
                                                          hb_row);
        m.calibration_ready = maxTick;
        last_realloc_latency = cfg.controlPeriod;
        return;
    }

    // Online sparse sampling: choose the settings now, charge the
    // measurement wall-clock, deliver the surface when it elapses.
    m.surface.reset();
    m.pending_cols = sampler.select(cfg.sampleFraction, rng);
    m.calibration_ready =
        srv.now() + static_cast<Tick>(m.pending_cols.size()) *
                        cfg.calibrationPerSample;
    // The application runs conservatively while being profiled.
    srv.app(id).setKnobs(srv.platform().minSetting());
}

void
ServerManager::finishCalibration(int id)
{
    auto it = managed.find(id);
    psm_assert(it != managed.end());
    ManagedApp &m = it->second;
    psm_assert(!m.pending_cols.empty());

    sim::Application &app = srv.app(id);
    const sim::Phase &phase = app.currentPhase();
    auto samples = profiler.measure(app.perf(), m.pending_cols, rng,
                                    phase.cpuScale, phase.memScale);

    // Leave-one-out corpus: never let an application predict itself.
    cf::UtilityEstimator estimator(srv.platform(), cfg.als);
    for (const auto &e : corpus) {
        if (e.name != m.record.name)
            estimator.addCorpusApp(e.name, e.power, e.hbRate);
    }
    m.surface = estimator.estimate(samples);
    m.calibration_ready = maxTick;
    m.pending_cols.clear();
    last_realloc_latency = srv.now() - m.calibration_started +
                           cfg.controlPeriod;
}

void
ServerManager::setCap(Watts cap)
{
    accountant.notifyCapChange(cap);
}

std::vector<int>
ServerManager::managedActiveIds() const
{
    std::vector<int> ids;
    for (const auto &[id, m] : managed) {
        if (!m.record.done && srv.hasApp(id) &&
            !srv.app(id).finished()) {
            ids.push_back(id);
        }
    }
    return ids;
}

UtilityCurve
ServerManager::buildCurve(int id, KnobFreedom freedom) const
{
    auto it = managed.find(id);
    psm_assert(it != managed.end());
    psm_assert(it->second.surface.has_value());
    return UtilityCurve(it->second.record.name, profiler.settings(),
                        *it->second.surface, freedom,
                        &srv.platform());
}

Directive
ServerManager::directiveFor(int id, const AppAllocation &alloc) const
{
    Directive d;
    d.appId = id;
    psm_assert(alloc.point.has_value());
    d.knobs = alloc.point->setting;
    return d;
}

void
ServerManager::applySpatialUtilityPlan(const std::vector<int> &ids,
                                       const Allocation &alloc)
{
    psm_assert(ids.size() == alloc.apps.size());
    // App-Aware uses utilities only to *split* the budget; within an
    // application it enforces the grant with the default hardware
    // knob (RAPL), not per-resource apportioning.
    bool rapl_enforced = cfg.policy == PolicyKind::AppAware;
    std::vector<Directive> directives;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        psm_assert(alloc.apps[i].scheduled());
        if (rapl_enforced) {
            directives.push_back(blindRaplDirective(
                ids[i], alloc.apps[i].point->power));
        } else {
            directives.push_back(directiveFor(ids[i], alloc.apps[i]));
        }
        accountant.setAllocatedPower(ids[i],
                                     alloc.apps[i].point->power);
    }
    coord.coordinateSpace(srv, directives);
    last_alloc = alloc;
}

void
ServerManager::applyTemporalUtilityPlan(
    const std::vector<int> &ids,
    const std::vector<const UtilityCurve *> &curves, Watts budget)
{
    TemporalPlan plan = allocator.temporalPlan(curves, budget,
                                               ShareMode::UtilityWeighted);
    if (plan.slots.empty()) {
        // Even the cheapest learnt operating point exceeds the ON
        // budget; fall back to the hardware floor: RAPL-throttled
        // fair alternation (the same last resort the baseline has).
        // Below the hardware floor no one can run within the cap.
        if (budget >= minFeasibleAppPower(srv.platform())) {
            std::vector<Directive> directives;
            std::vector<double> shares;
            for (int id : ids) {
                directives.push_back(raplDirective(id, budget));
                shares.push_back(1.0 /
                                 static_cast<double>(ids.size()));
                accountant.setAllocatedPower(id, 0.0);
            }
            coord.coordinateTime(srv, std::move(directives),
                                 std::move(shares));
        } else {
            coord.idle(srv);
        }
        return;
    }

    // Suspend applications that cannot run even alone at this cap.
    auto id_of = [&](const std::string &name) {
        for (std::size_t i = 0; i < curves.size(); ++i)
            if (curves[i]->name() == name)
                return ids[i];
        panic("temporal plan names unknown app '%s'", name.c_str());
    };
    for (const auto &name : plan.unschedulable)
        srv.app(id_of(name)).suspend(srv.now());

    bool rapl_enforced = cfg.policy == PolicyKind::AppAware;
    std::vector<Directive> directives;
    std::vector<double> shares;
    for (const auto &slot : plan.slots) {
        int id = id_of(slot.app);
        if (rapl_enforced) {
            directives.push_back(
                blindRaplDirective(id, slot.point.power));
        } else {
            Directive d;
            d.appId = id;
            d.knobs = slot.point.setting;
            directives.push_back(d);
        }
        shares.push_back(slot.share);
        accountant.setAllocatedPower(id, 0.0);
    }
    coord.coordinateTime(srv, std::move(directives), std::move(shares));
}

Watts
ServerManager::dramDemandEstimate(int id)
{
    // Remember each application's DRAM appetite across duty-cycle OFF
    // periods (the instantaneous RAPL window forgets in ~10 ms): grow
    // immediately when more draw is observed, decay slowly otherwise.
    Watts obs = srv.observedAppDramPower(id);
    auto [it, inserted] = dram_demand.try_emplace(
        id, srv.platform().dramPowerMin);
    if (obs > it->second)
        it->second = obs;
    else if (obs > 0.5)
        it->second = std::max(it->second * 0.99, obs);
    return it->second;
}

Directive
ServerManager::raplDirective(int id, Watts app_budget)
{
    const power::PlatformConfig &plat = srv.platform();
    Directive d;
    d.appId = id;
    d.useRapl = true;

    // Split the app budget between the DRAM and package domains the
    // way a demand-following RAPL controller would: give DRAM its
    // tracked demand plus ratchet headroom (so a throttled channel can
    // reveal more appetite), the rest to the package.
    Watts demand = dramDemandEstimate(id);
    Watts dram_limit =
        std::clamp(demand * 1.25 + 0.25, plat.dramPowerMin,
                   std::min(plat.dramPowerMax,
                            std::max(app_budget - 0.5,
                                     plat.dramPowerMin)));
    d.knobs = plat.maxSetting();
    d.knobs.dramPower = dram_limit;
    // The package gets the budget minus the *expected* DRAM draw
    // (the limit only carries ratchet headroom above it).
    Watts expected_dram = std::min(demand, dram_limit);
    d.packageLimit = std::max(app_budget - expected_dram, 0.5);
    return d;
}

Directive
ServerManager::blindRaplDirective(int id, Watts app_budget)
{
    // The utility-unaware baseline's enforcement: leave the DRAM
    // domain at its default limit unless the budget is so small that
    // even a fully-drawn channel would blow it, and cap the package
    // at budget minus the *measured* DRAM draw — pure accounting, no
    // notion of where a watt is worth more.
    const power::PlatformConfig &plat = srv.platform();
    Directive d;
    d.appId = id;
    d.useRapl = true;
    d.knobs = plat.maxSetting();
    d.knobs.dramPower = std::clamp(app_budget - 1.5,
                                   plat.dramPowerMin,
                                   plat.dramPowerMax);
    Watts dram_obs = std::max(srv.observedAppDramPower(id),
                              plat.dramPowerMin);
    d.packageLimit = std::max(app_budget - dram_obs, 0.5);
    return d;
}

void
ServerManager::applyUtilUnaware(const std::vector<int> &ids,
                                Watts budget)
{
    Watts floor_power = minFeasibleAppPower(srv.platform());
    Watts share = budget / static_cast<double>(ids.size());

    if (share >= floor_power) {
        std::vector<Directive> directives;
        for (int id : ids) {
            directives.push_back(blindRaplDirective(id, share));
            accountant.setAllocatedPower(id, share);
        }
        coord.coordinateSpace(srv, directives);
    } else if (budget >= floor_power) {
        // Fair alternate duty cycling; the ON app gets the whole
        // budget, enforced by RAPL throttling.
        std::vector<Directive> directives;
        std::vector<double> shares;
        for (int id : ids) {
            directives.push_back(blindRaplDirective(id, budget));
            shares.push_back(1.0 / static_cast<double>(ids.size()));
            accountant.setAllocatedPower(id, 0.0);
        }
        coord.coordinateTime(srv, std::move(directives),
                             std::move(shares));
    } else {
        coord.idle(srv);
    }
}

void
ServerManager::applyServerResAware(const std::vector<int> &ids,
                                   Watts budget)
{
    if (!server_avg_curve) {
        fatal("Server+Res-Aware requires a seeded corpus for the "
              "server-level average utilities");
    }
    const UtilityCurve &avg = *server_avg_curve;
    Watts share = budget / static_cast<double>(ids.size());

    auto spatial_point = avg.bestWithin(share);
    if (spatial_point) {
        // Knobs from the server-average utilities, but the equal
        // share is enforced strictly with a package RAPL backstop —
        // this policy has no per-application knowledge to justify
        // letting one app spend another's unused share.
        std::vector<Directive> directives;
        for (int id : ids) {
            Directive d;
            d.appId = id;
            d.useRapl = true;
            d.knobs = spatial_point->setting;
            d.packageLimit = std::max(
                share - spatial_point->setting.dramPower, 0.5);
            directives.push_back(d);
            accountant.setAllocatedPower(id, share);
        }
        coord.coordinateSpace(srv, directives);
        return;
    }

    auto on_point = avg.bestWithin(budget);
    if (!on_point) {
        coord.idle(srv);
        return;
    }
    std::vector<Directive> directives;
    std::vector<double> shares;
    for (int id : ids) {
        Directive d;
        d.appId = id;
        d.knobs = on_point->setting;
        directives.push_back(d);
        shares.push_back(1.0 / static_cast<double>(ids.size()));
        accountant.setAllocatedPower(id, 0.0);
    }
    coord.coordinateTime(srv, std::move(directives), std::move(shares));
}

void
ServerManager::reallocate()
{
    ++realloc_count;
    const power::PlatformConfig &plat = srv.platform();
    std::vector<int> ids = managedActiveIds();
    if (ids.empty()) {
        coord.idle(srv);
        accountant.setDriftDetection(false);
        return;
    }

    Watts cap = srv.cap();
    if (cap <= 0.0) {
        // Uncapped: everyone flat out.
        std::vector<Directive> directives;
        for (int id : ids) {
            Directive d;
            d.appId = id;
            d.knobs = plat.maxSetting();
            directives.push_back(d);
            accountant.setAllocatedPower(id, 0.0);
        }
        coord.coordinateSpace(srv, directives);
        accountant.setDriftDetection(false);
        return;
    }

    Watts budget = std::max(cap - plat.idlePower - plat.cmPower, 0.0);
    // Withhold the guard band and the adherence trim so estimation
    // error does not become cap overshoot.
    budget = std::max(budget * (1.0 - cfg.budgetGuard) - cap_trim,
                      0.0);

    if (!policyAppAware(cfg.policy)) {
        if (cfg.policy == PolicyKind::UtilUnaware)
            applyUtilUnaware(ids, budget);
        else
            applyServerResAware(ids, budget);
        accountant.setDriftDetection(false);
        return;
    }

    // Utility-aware policies: split calibrated from still-calibrating
    // applications; the latter run at the minimal setting with a
    // reserved power floor.
    std::vector<int> ready;
    std::vector<int> calibrating;
    for (int id : ids) {
        const ManagedApp &m = managed.at(id);
        if (m.surface)
            ready.push_back(id);
        else
            calibrating.push_back(id);
    }
    Watts reserved = static_cast<double>(calibrating.size()) *
                     minFeasibleAppPower(plat);
    Watts usable = std::max(budget - reserved, 0.0);

    for (int id : calibrating) {
        sim::Application &app = srv.app(id);
        app.setKnobs(plat.minSetting());
        app.resume(srv.now());
        accountant.setAllocatedPower(id, 0.0);
    }

    if (ready.empty()) {
        accountant.setDriftDetection(false);
        return;
    }

    // App-Aware sees the application's power-performance response
    // under its own (RAPL, frequency-only) enforcement — including
    // the clock-modulation region below f_min — while the
    // resource-aware policies search the full (f, n, m) frontier.
    KnobFreedom freedom = policyResAware(cfg.policy)
                              ? KnobFreedom::All
                              : KnobFreedom::FrequencyOnly;
    std::vector<UtilityCurve> curves;
    curves.reserve(ready.size());
    for (int id : ready)
        curves.push_back(buildCurve(id, freedom));
    std::vector<const UtilityCurve *> curve_ptrs;
    for (const auto &c : curves)
        curve_ptrs.push_back(&c);

    // App-Aware's RAPL enforcement can clock-modulate below any
    // frontier point, so its curve minima are not hard minima and are
    // not reserved; infeasible splits fall back to the fair RAPL
    // split below.
    AllocatorConfig alloc_cfg = cfg.allocator;
    alloc_cfg.reserveMinima = policyResAware(cfg.policy);
    PowerAllocator policy_allocator(alloc_cfg);
    Allocation alloc = policy_allocator.allocate(curve_ptrs, usable);
    if (alloc.allScheduled()) {
        applySpatialUtilityPlan(ready, alloc);
        accountant.setDriftDetection(!cfg.oracleUtilities ||
                                     true); // E4 active in Space mode
        return;
    }

    // App-Aware's frequency-only utility view bottoms out at f_min,
    // but its RAPL enforcement can clock-modulate below it: when the
    // curves claim spatial infeasibility yet an equal share clears
    // the hardware floor, fall back to the fair RAPL split rather
    // than duty-cycling.
    if (cfg.policy == PolicyKind::AppAware && calibrating.empty() &&
        usable / static_cast<double>(ready.size()) >=
            minFeasibleAppPower(plat)) {
        applyUtilUnaware(ready, usable);
        accountant.setDriftDetection(false);
        return;
    }

    if (policyUsesEsd(cfg.policy) && srv.hasEsd() &&
        calibrating.empty()) {
        EsdPlan plan = allocator.esdPlan(
            curve_ptrs, plat.idlePower, plat.cmPower, cap,
            srv.battery()->config());
        if (plan.viable) {
            std::vector<Directive> directives;
            for (std::size_t i = 0; i < ready.size(); ++i) {
                psm_assert(plan.onAllocation.apps[i].scheduled());
                directives.push_back(directiveFor(
                    ready[i], plan.onAllocation.apps[i]));
                accountant.setAllocatedPower(ready[i], 0.0);
            }
            coord.coordinateEsd(srv, std::move(directives),
                                plan.offFraction);
            last_alloc = plan.onAllocation;
            accountant.setDriftDetection(false);
            return;
        }
    }

    applyTemporalUtilityPlan(ready, curve_ptrs, usable);
    accountant.setDriftDetection(false);
}

void
ServerManager::handleControl()
{
    bool need_realloc = false;

    // Integral cap-adherence loop: trim the budget while the metered
    // power over the last control interval rides above the cap, relax
    // slowly when back under.  The meter's energy delta is the honest
    // signal (RAPL window averages carry ghosts across duty-cycle
    // transitions).  Trim grows only in the steadily-drawing modes
    // (Space/Time) — in EsdAssisted mode the battery bridges over-cap
    // draw by design — and is bounded so it can never idle the server
    // outright.
    Watts cap = srv.cap();
    bool steady = coord.mode() == CoordinationMode::Space ||
                  coord.mode() == CoordinationMode::Time;
    Joules energy = srv.meter().totalEnergy();
    Tick meter_now = srv.now();
    if (cap > 0.0 && meter_now > last_meter_time) {
        Watts interval_avg = (energy - last_meter_energy) /
                             toSeconds(meter_now - last_meter_time);
        Watts setpoint = cap - 0.5;
        Watts before = cap_trim;
        if (steady && interval_avg > setpoint) {
            cap_trim += cfg.trimGain * (interval_avg - setpoint);
        } else if (interval_avg < setpoint) {
            // Headroom: hand it back.  In Time mode the OFF slots
            // legitimately sit far below the cap, so only decay
            // there; in Space mode run the full symmetric loop.
            if (coord.mode() == CoordinationMode::Space) {
                cap_trim -= cfg.trimGain *
                            std::min(setpoint - interval_avg, 2.0);
            } else {
                cap_trim *= 0.95;
            }
        }
        Watts raw_budget = std::max(
            cap - srv.platform().idlePower - srv.platform().cmPower,
            0.0);
        cap_trim = std::clamp(cap_trim, -0.3 * raw_budget,
                              0.6 * raw_budget);
        if (std::abs(cap_trim - before) > 0.25)
            need_realloc = true;
    }
    last_meter_energy = energy;
    last_meter_time = meter_now;

    // Steady-state refresh: re-derive RAPL limits and re-apply the
    // plan periodically so demand-following enforcement tracks the
    // applications (temporal refreshes update slots in place).  Idle
    // mode also retries here, in case a transient drove the trim up.
    if (srv.now() >= next_refresh &&
        (steady || coord.mode() == CoordinationMode::Idle)) {
        need_realloc = true;
        next_refresh = srv.now() + cfg.refreshPeriod;
    }

    for (auto &[id, m] : managed) {
        if (m.calibration_ready != maxTick &&
            srv.now() >= m.calibration_ready && srv.hasApp(id) &&
            !srv.app(id).finished()) {
            finishCalibration(id);
            need_realloc = true;
        }
    }

    for (const AccountantEvent &ev : accountant.poll(srv)) {
        event_log.push_back(ev);
        switch (ev.kind) {
          case EventKind::CapChange:
            srv.setCap(ev.newCap);
            need_realloc = true;
            break;
          case EventKind::Arrival:
            need_realloc = true;
            break;
          case EventKind::Departure: {
            auto it = managed.find(ev.appId);
            psm_assert(it != managed.end());
            ManagedApp &m = it->second;
            m.record.done = true;
            m.record.finishedAt = ev.when;
            m.record.beats =
                srv.app(ev.appId).heartbeats().total();
            accountant.forget(ev.appId);
            srv.remove(ev.appId);
            need_realloc = true;
            break;
          }
          case EventKind::Drift:
            if (policyAppAware(cfg.policy)) {
                startCalibration(ev.appId);
                need_realloc = true;
            }
            break;
        }
    }

    if (need_realloc)
        reallocate();
}

void
ServerManager::run(Tick duration)
{
    Tick end = srv.now() + duration;
    while (srv.now() < end) {
        if (srv.now() >= next_control) {
            handleControl();
            next_control = srv.now() + cfg.controlPeriod;
        }
        coord.advance(srv);
        srv.step();
    }
    syncRecords();
}

void
ServerManager::runUntilAllDone(Tick max_duration)
{
    Tick deadline = srv.now() + max_duration;
    while (anyAppRunning() && srv.now() < deadline)
        run(std::min(toTicks(1.0), deadline - srv.now()));
    syncRecords();
}

void
ServerManager::syncRecords()
{
    for (auto &[id, m] : managed) {
        if (!m.record.done && srv.hasApp(id))
            m.record.beats = srv.app(id).heartbeats().total();
    }
}

std::vector<AppRecord>
ServerManager::records() const
{
    std::vector<AppRecord> out;
    out.reserve(managed.size());
    for (const auto &[id, m] : managed)
        out.push_back(m.record);
    return out;
}

bool
ServerManager::anyAppRunning() const
{
    for (const auto &[id, m] : managed)
        if (!m.record.done)
            return true;
    return false;
}

double
ServerManager::serverNormalizedThroughput() const
{
    std::vector<AppRecord> recs = records();
    if (recs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : recs)
        sum += r.normalizedPerf(srv.now());
    return sum / static_cast<double>(recs.size());
}

} // namespace psm::core
