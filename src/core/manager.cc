#include "manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::core
{

double
AppRecord::normalizedPerf(Tick now) const
{
    // Latency-critical services are judged on SLO attainment, not
    // throughput (an open-loop client offers a fixed load, so served
    // beats saturate at the offered rate long before the knee).
    // The ratio mirrors the SLO utility transform: 1 inside the SLO,
    // rolling off as the observed p99 blows past it.
    if (interactive) {
        if (requestCompletions == 0)
            return 0.0;
        if (requestP99 <= 0.0)
            return 1.0;
        return std::min(1.0, sloP99 / requestP99);
    }
    Tick until = done ? finishedAt : now;
    if (until <= admitted || uncappedRate <= 0.0)
        return 0.0;
    double elapsed = toSeconds(until - admitted);
    return (beats / elapsed) / uncappedRate;
}

LearningConfig
ServerManager::learningConfig(const ManagerConfig &cfg)
{
    LearningConfig lc;
    lc.sampleFraction = cfg.sampleFraction;
    lc.oracleUtilities = cfg.oracleUtilities;
    lc.measurementNoise = cfg.measurementNoise;
    lc.calibrationPerSample = cfg.calibrationPerSample;
    lc.als = cfg.als;
    lc.sampling = cfg.sampling;
    lc.seed = cfg.seed;
    return lc;
}

ControlLoopConfig
ServerManager::controlConfig(const ManagerConfig &cfg)
{
    ControlLoopConfig cc;
    cc.controlPeriod = cfg.controlPeriod;
    cc.trimGain = cfg.trimGain;
    cc.refreshPeriod = cfg.refreshPeriod;
    cc.accountant = cfg.accountant;
    return cc;
}

ManagerConfig
ServerManager::normalizedConfig(ManagerConfig cfg)
{
    // An explicitly configured plan wins; otherwise the ambient
    // PSM_FAULT_RATE environment knob (used by the fault-rate ctest
    // job) arms the injector for every manager in the process.
    if (!cfg.faults.enabled()) {
        double ambient = util::FaultPlanConfig::ambientRateFromEnv();
        if (ambient > 0.0)
            cfg.faults.setAmbientRate(ambient);
    }
    if (cfg.faults.seed == 0)
        cfg.faults.seed = cfg.seed;
    return cfg;
}

ServerManager::ServerManager(sim::Server &server, ManagerConfig config)
    : srv(server), cfg(normalizedConfig(std::move(config))),
      injector(cfg.faults), coord(cfg.coordinator),
      pipeline(server, learningConfig(cfg), &tel),
      selector(server.platform(), cfg.allocator, &tel),
      control(server, coord, controlConfig(cfg), *this, &tel),
      actuator(server, coord, control.accountant(), &tel)
{
    coord.setTelemetry(&tel);
    control.setFaultInjector(&injector);
    if (policyUsesEsd(cfg.policy) && !srv.hasEsd()) {
        warn("policy %s selected but the server has no ESD; it will "
             "fall back to temporal coordination",
             policyName(cfg.policy).c_str());
    }
}

void
ServerManager::seedCorpus(const std::vector<perf::AppProfile> &profiles)
{
    pipeline.seedCorpus(profiles);
}

int
ServerManager::addApp(const perf::AppProfile &profile)
{
    for (const auto &[id, r] : app_records) {
        if (!r.done && r.name == profile.name) {
            fatal("an active application named '%s' already exists on "
                  "this server", profile.name.c_str());
        }
    }

    int id = srv.admit(profile);
    AppRecord r;
    r.id = id;
    r.name = profile.name;
    r.admitted = srv.now();
    r.uncappedRate = srv.app(id).perf().maxHbRate();
    r.interactive = profile.interactive();
    r.sloP99 = profile.sloP99;
    app_records.emplace(id, std::move(r));

    pipeline.track(id, profile);
    control.accountant().notifyArrival(id);
    if (policyAppAware(cfg.policy)) {
        if (pipeline.startCalibration(id))
            last_realloc_latency = cfg.controlPeriod;
    }
    return id;
}

void
ServerManager::setCap(Watts cap)
{
    control.accountant().notifyCapChange(cap);
}

bool
ServerManager::setCapIfChanged(Watts cap)
{
    if (cap_ever_pushed && cap == last_pushed_cap)
        return false;
    cap_ever_pushed = true;
    last_pushed_cap = cap;
    setCap(cap);
    return true;
}

bool
ServerManager::nameActive(const std::string &name) const
{
    for (const auto &[id, r] : app_records) {
        if (!r.done && r.name == name)
            return true;
    }
    return false;
}

bool
ServerManager::killApp(int id)
{
    auto it = app_records.find(id);
    if (it == app_records.end() || it->second.done || !srv.hasApp(id))
        return false;
    it->second.beats = srv.app(id).heartbeats().total();
    srv.remove(id);
    return true;
}

std::vector<int>
ServerManager::activeIds() const
{
    std::vector<int> ids;
    for (const auto &[id, r] : app_records) {
        if (!r.done && srv.hasApp(id) && !srv.app(id).finished())
            ids.push_back(id);
    }
    return ids;
}

void
ServerManager::onDeparture(const AccountantEvent &ev)
{
    auto it = app_records.find(ev.appId);
    psm_assert(it != app_records.end());
    AppRecord &r = it->second;
    r.done = true;
    r.finishedAt = ev.when;
    // A synthetic E3 (killed app) arrives after the server entry is
    // gone; its final heartbeat count was harvested at kill time.
    if (srv.hasApp(ev.appId))
        r.beats = srv.app(ev.appId).heartbeats().total();
    pipeline.forget(ev.appId);
    actuator.forget(ev.appId);
}

bool
ServerManager::onDrift(int app_id)
{
    if (!policyAppAware(cfg.policy))
        return false;
    if (pipeline.startCalibration(app_id))
        last_realloc_latency = cfg.controlPeriod;
    return true;
}

bool
ServerManager::onCalibrationsDue()
{
    std::vector<int> finished = pipeline.finishDueCalibrations();
    if (finished.empty())
        return false;
    last_realloc_latency =
        pipeline.lastCalibrationLatency() + cfg.controlPeriod;
    return true;
}

void
ServerManager::reallocate(const std::string &trigger)
{
    ++realloc_count;
    const power::PlatformConfig &plat = srv.platform();
    std::vector<int> ids = activeIds();
    Watts cap = srv.cap();

    // Utility-aware policies split calibrated from still-calibrating
    // applications; the latter run at the minimal setting with a
    // reserved power floor.  The other policies never calibrate.
    std::vector<int> ready;
    std::vector<int> calibrating;
    if (policyAppAware(cfg.policy)) {
        for (int id : ids) {
            if (pipeline.calibrated(id))
                ready.push_back(id);
            else
                calibrating.push_back(id);
        }
    } else {
        ready = ids;
    }

    PlanInputs in;
    in.policy = cfg.policy;
    in.cap = cap;
    in.appCount = ids.size();
    in.calibratingCount = calibrating.size();
    in.hasEsd = srv.hasEsd();
    if (srv.hasEsd())
        in.esd = &srv.esdConfig();
    // Knob-actuation fault: when the roll says per-app actuation is
    // stuck this decision, tell the selector so it demotes to
    // hardware RAPL enforcement.  Only meaningful when a utility
    // plan with ready curves would otherwise be chosen.
    if (policyAppAware(cfg.policy) && cap > 0.0 && !ready.empty() &&
        injector.inject(util::FaultKind::ActuationStuck, srv.now(),
                        realloc_count)) {
        in.knobsAvailable = false;
        tel.count(trace::EventId::FaultActuationStuck);
    }
    if (pipeline.serverAverageCurve())
        in.serverAverage = &*pipeline.serverAverageCurve();
    in.surfaceEpoch = pipeline.surfaceEpoch();

    if (cap > 0.0) {
        // Withhold the guard band and the adherence trim so estimation
        // error does not become cap overshoot.
        Watts budget =
            std::max(cap - plat.idlePower - plat.cmPower, 0.0);
        in.budget = std::max(
            budget * (1.0 - cfg.budgetGuard) - control.capTrim(), 0.0);
    }

    // App-Aware sees the application's power-performance response
    // under its own (RAPL, frequency-only) enforcement — including
    // the clock-modulation region below f_min — while the
    // resource-aware policies search the full (f, n, m) frontier.
    std::vector<UtilityCurve> curves;
    if (policyAppAware(cfg.policy) && cap > 0.0 && !ids.empty()) {
        KnobFreedom freedom = policyResAware(cfg.policy)
                                  ? KnobFreedom::All
                                  : KnobFreedom::FrequencyOnly;
        curves.reserve(ready.size());
        for (int id : ready)
            curves.push_back(pipeline.utilityFor(id, freedom));
        for (const auto &c : curves)
            in.curves.push_back(&c);
        actuator.holdForCalibration(calibrating);
    }

    Tick started = srv.now();
    PlanDecision d = selector.select(in);
    actuator.execute(d, ids, ready, cfg.policy);

    DecisionRecord rec;
    rec.when = srv.now();
    rec.trigger = trigger;
    rec.policy = policyName(cfg.policy);
    rec.plan = planChoiceName(d.choice);
    rec.mode = coordinationModeName(coord.mode());
    rec.objective = d.objective;
    rec.budget = in.budget;
    rec.apps = ids.size();
    rec.latency = last_realloc_latency;
    tel.record(std::move(rec));
    tel.observe(trace::EventId::ManagerReallocate, srv.now() - started);
    tel.count(trace::EventId::ManagerReallocations);
}

void
ServerManager::maybeInjectFaults()
{
    if (!injector.enabled())
        return;
    Tick now = srv.now();

    // Timed ESD restoration fires on its own deadline.
    if (now >= esd_restore_at) {
        esd_restore_at = maxTick;
        srv.setEsdAvailable(true);
        tel.count(trace::EventId::DegradedEsdRestored);
        reallocate("esd-restored");
    }

    // Fault rolls happen once per control period (the rates are
    // per-poll probabilities), keyed purely on (seed, kind, tick) so
    // the schedule replays identically at any thread count.
    if (now < next_fault_check)
        return;
    next_fault_check = now + cfg.controlPeriod;

    if (srv.esdInstalled() && srv.esdAvailable()) {
        if (injector.inject(util::FaultKind::EsdLoss, now)) {
            srv.setEsdAvailable(false);
            esd_restore_at = now + injector.config().esdOutage;
            tel.count(trace::EventId::FaultEsdLoss);
            tel.count(trace::EventId::DegradedEsdUnavailable);
            // Replan immediately without the battery; the coordinator
            // additionally demotes mid-duty-cycle on its next advance
            // if it was in EsdAssisted mode.
            reallocate("fault-esd-loss");
        } else if (injector.inject(util::FaultKind::EsdFade, now)) {
            srv.installedBattery()->fadeCapacity(
                injector.config().fadeFactor);
            tel.count(trace::EventId::FaultEsdFade);
            tel.count(trace::EventId::DegradedEsdCapacity);
        }
    }

    for (int id : activeIds()) {
        if (!injector.inject(util::FaultKind::AppKill, now,
                             static_cast<std::uint64_t>(id), id))
            continue;
        tel.count(trace::EventId::FaultAppKill);
        auto it = app_records.find(id);
        if (it != app_records.end())
            it->second.beats = srv.app(id).heartbeats().total();
        // Departure without finished(): the Accountant's next poll
        // emits the synthetic E3, which retires the record, forgets
        // pipeline/actuator state and replans.
        srv.remove(id);
    }
}

void
ServerManager::run(Tick duration)
{
    Tick end = srv.now() + duration;
    while (srv.now() < end) {
        maybeInjectFaults();
        control.maybePoll();
        coord.advance(srv);
        srv.step();
    }
    syncRecords();
}

void
ServerManager::runUntilAllDone(Tick max_duration)
{
    Tick deadline = srv.now() + max_duration;
    while (anyAppRunning() && srv.now() < deadline)
        run(std::min(toTicks(1.0), deadline - srv.now()));
    syncRecords();
}

void
ServerManager::syncRecords()
{
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t violations = 0;
    std::uint64_t depth = 0;
    double worst_p99 = 0.0;
    bool any_interactive = false;

    for (auto &[id, r] : app_records) {
        if (!r.done && srv.hasApp(id)) {
            r.beats = srv.app(id).heartbeats().total();
            if (const auto *q = srv.app(id).requestQueue()) {
                r.requestArrivals = q->arrivals();
                r.requestCompletions = q->completed();
                r.requestSloViolations = q->sloViolations();
                r.requestP99 = q->p99();
                r.requestMeanResponse = q->meanResponse();
                r.queueDepth = q->depth();
            }
        }
        if (r.interactive) {
            any_interactive = true;
            arrivals += r.requestArrivals;
            completions += r.requestCompletions;
            violations += r.requestSloViolations;
            if (!r.done) {
                depth += r.queueDepth;
                worst_p99 = std::max(worst_p99, r.requestP99);
            }
        }
    }

    if (any_interactive) {
        // Records keep their totals after departure, so the sums are
        // monotone; publish the delta since the last sync.
        tel.count(trace::EventId::InteractiveArrivals,
                  arrivals - interactive_published.arrivals);
        tel.count(trace::EventId::InteractiveCompletions,
                  completions - interactive_published.completions);
        tel.count(trace::EventId::InteractiveSloViolations,
                  violations - interactive_published.violations);
        interactive_published = {arrivals, completions, violations};
        tel.gauge(trace::EventId::InteractiveQueueDepth, depth);
        tel.gauge(trace::EventId::InteractiveP99Us,
                  static_cast<std::uint64_t>(worst_p99 * 1e6));
    }
}

std::vector<AppRecord>
ServerManager::records() const
{
    std::vector<AppRecord> out;
    out.reserve(app_records.size());
    for (const auto &[id, r] : app_records)
        out.push_back(r);
    return out;
}

bool
ServerManager::anyAppRunning() const
{
    for (const auto &[id, r] : app_records)
        if (!r.done)
            return true;
    return false;
}

double
ServerManager::serverNormalizedThroughput() const
{
    std::vector<AppRecord> recs = records();
    if (recs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : recs)
        sum += r.normalizedPerf(srv.now());
    return sum / static_cast<double>(recs.size());
}

} // namespace psm::core
