#include "plan_selector.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::core
{

std::string
planChoiceName(PlanChoice choice)
{
    switch (choice) {
      case PlanChoice::Idle:
        return "idle";
      case PlanChoice::CalibrationOnly:
        return "calibration-only";
      case PlanChoice::UncappedRun:
        return "uncapped-run";
      case PlanChoice::SpatialUtility:
        return "spatial-utility";
      case PlanChoice::FairRaplSpace:
        return "fair-rapl-space";
      case PlanChoice::FairRaplTime:
        return "fair-rapl-time";
      case PlanChoice::ServerAvgSpace:
        return "server-avg-space";
      case PlanChoice::ServerAvgTime:
        return "server-avg-time";
      case PlanChoice::TemporalUtility:
        return "temporal-utility";
      case PlanChoice::EsdAssisted:
        return "esd-assisted";
      default:
        panic("invalid PlanChoice %d", static_cast<int>(choice));
    }
}

namespace
{

/** The trace event counting one plan choice (the typed equivalent of
 * the old "selector." + planChoiceName() key). */
trace::EventId
selectorTraceId(PlanChoice choice)
{
    switch (choice) {
      case PlanChoice::Idle:
        return trace::EventId::SelectorIdle;
      case PlanChoice::CalibrationOnly:
        return trace::EventId::SelectorCalibrationOnly;
      case PlanChoice::UncappedRun:
        return trace::EventId::SelectorUncappedRun;
      case PlanChoice::SpatialUtility:
        return trace::EventId::SelectorSpatialUtility;
      case PlanChoice::FairRaplSpace:
        return trace::EventId::SelectorFairRaplSpace;
      case PlanChoice::FairRaplTime:
        return trace::EventId::SelectorFairRaplTime;
      case PlanChoice::ServerAvgSpace:
        return trace::EventId::SelectorServerAvgSpace;
      case PlanChoice::ServerAvgTime:
        return trace::EventId::SelectorServerAvgTime;
      case PlanChoice::TemporalUtility:
        return trace::EventId::SelectorTemporalUtility;
      case PlanChoice::EsdAssisted:
        return trace::EventId::SelectorEsdAssisted;
      default:
        panic("invalid PlanChoice %d", static_cast<int>(choice));
    }
}

} // namespace

PlanSelector::PlanSelector(const power::PlatformConfig &platform,
                           AllocatorConfig allocator,
                           Telemetry *telemetry)
    : plat(platform), alloc_cfg(allocator), tel(telemetry)
{
}

PlanDecision
PlanSelector::fairSplit(Watts budget, std::size_t n,
                        bool demand_following) const
{
    PlanDecision d;
    Watts floor_power = minFeasibleAppPower(plat);
    Watts share = budget / static_cast<double>(n);
    if (share >= floor_power) {
        d.choice = PlanChoice::FairRaplSpace;
        d.perAppBudget = share;
    } else if (budget >= floor_power) {
        // Fair alternate duty cycling; the ON app gets the whole
        // budget, enforced by RAPL throttling.
        d.choice = PlanChoice::FairRaplTime;
        d.perAppBudget = budget;
        d.demandFollowingRapl = demand_following;
    } else {
        d.choice = PlanChoice::Idle;
    }
    return d;
}

PlanDecision
PlanSelector::selectServerResAware(const PlanInputs &in) const
{
    if (!in.serverAverage) {
        fatal("Server+Res-Aware requires a seeded corpus for the "
              "server-level average utilities");
    }
    const UtilityCurve &avg = *in.serverAverage;
    PlanDecision d;
    Watts share = in.budget / static_cast<double>(in.appCount);

    auto spatial_point = avg.bestWithin(share);
    if (spatial_point) {
        d.choice = PlanChoice::ServerAvgSpace;
        d.perAppBudget = share;
        d.avgPoint = spatial_point;
        d.objective = spatial_point->perfNorm *
                      static_cast<double>(in.appCount);
        return d;
    }

    auto on_point = avg.bestWithin(in.budget);
    if (!on_point) {
        d.choice = PlanChoice::Idle;
        return d;
    }
    d.choice = PlanChoice::ServerAvgTime;
    d.perAppBudget = in.budget;
    d.avgPoint = on_point;
    d.objective = on_point->perfNorm;
    return d;
}

SpatialPlanner &
PlanSelector::plannerFor(const PolicyInfo &info) const
{
    auto it = planners.find(info.kind);
    if (it == planners.end()) {
        it = planners.emplace(info.kind, info.makePlanner()).first;
        psm_assert(it->second != nullptr);
    }
    return *it->second;
}

PlanDecision
PlanSelector::selectUtilityAware(const PlanInputs &in) const
{
    PlanDecision d;
    Watts floor_power = minFeasibleAppPower(plat);
    Watts reserved =
        static_cast<double>(in.calibratingCount) * floor_power;
    Watts usable = std::max(in.budget - reserved, 0.0);
    d.usableBudget = usable;

    if (in.curves.empty()) {
        // Everybody is still calibrating at the conservative floor;
        // nothing to (re)plan yet.
        d.choice = PlanChoice::CalibrationOnly;
        return d;
    }

    if (!in.knobsAvailable) {
        // Degradation ladder: per-app knob actuation is failing, so
        // utility-shaped plans (which rely on software operating
        // points) cannot be enforced.  Demote to the fair RAPL split
        // — hardware enforcement that needs no app cooperation.
        if (tel)
            tel->count(trace::EventId::DegradedKnobsToRapl);
        PlanDecision fair = fairSplit(usable, in.curves.size(), true);
        fair.usableBudget = usable;
        return fair;
    }

    // The planning allocator (temporal/ESD plans) keeps the
    // configured reservation behaviour; the spatial optimization is
    // the policy's own: registry policies with a planner factory
    // (FastCap, CuttleSys, out-of-tree rivals) replace the DP
    // entirely, the rest run the built-in DP with reservation
    // toggled per policy — RAPL-enforced grants can clock-modulate
    // below any frontier point, so their curve minima are not hard
    // minima.
    const PolicyInfo &info =
        PolicyRegistry::instance().infoFor(in.policy);
    PowerAllocator planner(alloc_cfg);
    planner.setTelemetry(tel);

    Allocation alloc;
    if (info.makePlanner) {
        alloc = plannerFor(info).plan(
            in.curves, usable,
            SpatialPlanner::Context{plat, alloc_cfg, tel});
    } else {
        AllocatorConfig dp_cfg = alloc_cfg;
        dp_cfg.reserveMinima = info.caps.resAware;
        PowerAllocator dp(dp_cfg);
        dp.setTelemetry(tel);
        alloc = dp.allocate(in.curves, usable, &dp_cache,
                            in.surfaceEpoch);
    }
    if (alloc.allScheduled()) {
        d.choice = PlanChoice::SpatialUtility;
        d.objective = alloc.objective;
        d.alloc = std::move(alloc);
        d.driftDetection = true; // E4 active in Space mode
        return d;
    }

    // A RAPL-enforced policy's utility view bottoms out at f_min,
    // but its enforcement can clock-modulate below it: when the
    // curves claim spatial infeasibility yet an equal share clears
    // the hardware floor, fall back to the fair RAPL split rather
    // than duty-cycling.
    std::size_t n = in.curves.size();
    if (info.caps.raplEnforced && in.calibratingCount == 0 &&
        usable / static_cast<double>(n) >= floor_power) {
        PlanDecision fair = fairSplit(usable, n, false);
        fair.usableBudget = usable;
        return fair;
    }

    if (policyUsesEsd(in.policy) && in.hasEsd && in.esd &&
        in.calibratingCount == 0) {
        EsdPlan plan = planner.esdPlan(in.curves, plat.idlePower,
                                       plat.cmPower, in.cap, *in.esd,
                                       plat.offPeriodCmPower);
        if (plan.viable) {
            d.choice = PlanChoice::EsdAssisted;
            d.objective = plan.objective;
            d.esd = std::move(plan);
            return d;
        }
    } else if (policyUsesEsd(in.policy) && !in.hasEsd && tel) {
        // The policy would consider ESD plans but the device is gone
        // (fault or never installed): continue down the ladder to the
        // temporal plan.
        tel->count(trace::EventId::DegradedEsdToTime);
    }

    TemporalPlan plan = planner.temporalPlan(
        in.curves, usable, ShareMode::UtilityWeighted);
    if (plan.slots.empty()) {
        // Even the cheapest learnt operating point exceeds the ON
        // budget; fall back to the hardware floor: RAPL-throttled
        // fair alternation (the same last resort the baseline has).
        // Below the hardware floor no one can run within the cap.
        if (usable >= floor_power) {
            d.choice = PlanChoice::FairRaplTime;
            d.perAppBudget = usable;
            d.demandFollowingRapl = true;
        } else {
            d.choice = PlanChoice::Idle;
        }
        return d;
    }
    d.choice = PlanChoice::TemporalUtility;
    d.objective = plan.objective;
    d.temporal = std::move(plan);
    return d;
}

PlanDecision
PlanSelector::select(const PlanInputs &in) const
{
    PlanDecision d;
    if (in.appCount == 0) {
        d.choice = PlanChoice::Idle;
    } else if (in.cap <= 0.0) {
        d.choice = PlanChoice::UncappedRun;
    } else if (!policyAppAware(in.policy)) {
        d = in.policy == PolicyKind::UtilUnaware
                ? fairSplit(in.budget, in.appCount, false)
                : selectServerResAware(in);
    } else {
        d = selectUtilityAware(in);
    }
    if (tel)
        tel->count(selectorTraceId(d.choice));
    return d;
}

} // namespace psm::core
