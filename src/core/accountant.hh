/**
 * @file
 * The Accountant (Section III-C): tracks the server cap, the resident
 * applications and their power draw, and raises the four re-allocation
 * events:
 *
 *   E1 — the server power budget changed (explicit message);
 *   E2 — an application arrived (explicit message);
 *   E3 — an application departed (detected by polling);
 *   E4 — an application's power drifted from its allocated budget
 *        (detected by polling its RAPL-observed draw against the
 *        allocation, sustained over a hold window).
 */

#ifndef PSM_CORE_ACCOUNTANT_HH
#define PSM_CORE_ACCOUNTANT_HH

#include <map>
#include <vector>

#include "sim/server.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace psm::core
{

/** The four events of Section III-C. */
enum class EventKind
{
    CapChange, ///< E1
    Arrival,   ///< E2
    Departure, ///< E3
    Drift,     ///< E4
};

/** Printable event name ("E1-cap-change", ...). */
std::string eventKindName(EventKind kind);

/** One raised event. */
struct AccountantEvent
{
    EventKind kind;
    Tick when = 0;
    int appId = -1;      ///< for E2/E3/E4
    Watts newCap = 0.0;  ///< for E1
};

/** Accountant tuning. */
struct AccountantConfig
{
    /** Relative deviation of observed from allocated power that
     * counts as drift. */
    double driftThreshold = 0.30;
    /** Drift must persist this long before E4 fires.  Keep shorter
     * than the manager's refresh period: every re-allocation resets
     * the hold timer. */
    Tick driftHold = toTicks(0.3);
    /** Refractory period after an E4 for the same application. */
    Tick driftCooldown = toTicks(2.0);
};

/**
 * Polling monitor over one server.
 */
class Accountant
{
  public:
    explicit Accountant(AccountantConfig config = {});

    /** E1: the datacenter pushed a new cap. */
    void notifyCapChange(Watts new_cap);

    /** E2: the scheduler placed a new application. */
    void notifyArrival(int app_id);

    /**
     * Record the power budget the allocator granted an application
     * (the reference for E4 drift detection).
     */
    void setAllocatedPower(int app_id, Watts budget);

    /** Stop tracking a departed application. */
    void forget(int app_id);

    /**
     * Enable/disable drift detection.  The manager disables it while
     * duty cycling, where per-app draw legitimately swings between
     * zero and full.
     */
    void setDriftDetection(bool enabled) { drift_enabled = enabled; }

    /**
     * Poll the server: collects queued explicit events and runs the
     * E3/E4 detectors.  Returns every event raised since the last
     * poll.
     */
    std::vector<AccountantEvent> poll(const sim::Server &server);

  private:
    AccountantConfig cfg;
    bool drift_enabled = true;
    std::vector<AccountantEvent> queued;

    struct TrackedApp
    {
        Watts allocated = 0.0;
        Tick drift_since = maxTick; ///< when deviation started
        Tick last_drift_event = 0;
        bool reported_finished = false;
    };
    std::map<int, TrackedApp> tracked;
};

} // namespace psm::core

#endif // PSM_CORE_ACCOUNTANT_HH
