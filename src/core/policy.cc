#include "policy.hh"

#include "policy_registry.hh"
#include "power/core_power.hh"
#include "util/logging.hh"

namespace psm::core
{

// The name/capability switch tables that used to live here moved into
// the PolicyRegistry; these wrappers keep the old call sites (and the
// old invalid-kind panic semantics) intact.

std::string
policyName(PolicyKind kind)
{
    return PolicyRegistry::instance().infoFor(kind).name;
}

bool
policyAppAware(PolicyKind kind)
{
    return PolicyRegistry::instance().infoFor(kind).caps.appAware;
}

bool
policyResAware(PolicyKind kind)
{
    return PolicyRegistry::instance().infoFor(kind).caps.resAware;
}

bool
policyUsesEsd(PolicyKind kind)
{
    return PolicyRegistry::instance().infoFor(kind).caps.usesEsd;
}

bool
policyRaplEnforced(PolicyKind kind)
{
    return PolicyRegistry::instance().infoFor(kind).caps.raplEnforced;
}

Watts
minFeasibleAppPower(const power::PlatformConfig &config)
{
    power::CorePowerModel cores(config);
    // One core at the lowest DVFS state, fully busy, plus the typical
    // per-app activation overhead and the channel background power.
    constexpr Watts typical_base = 2.0;
    return cores.corePower(config.freqMin, 1.0, 1) + typical_base +
           config.dramPowerMin;
}

} // namespace psm::core
