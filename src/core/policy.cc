#include "policy.hh"

#include "power/core_power.hh"
#include "util/logging.hh"

namespace psm::core
{

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::UtilUnaware:
        return "Util-Unaware";
      case PolicyKind::ServerResAware:
        return "Server+Res-Aware";
      case PolicyKind::AppAware:
        return "App-Aware";
      case PolicyKind::AppResAware:
        return "App+Res-Aware";
      case PolicyKind::AppResEsdAware:
        return "App+Res+ESD-Aware";
      default:
        panic("invalid PolicyKind %d", static_cast<int>(kind));
    }
}

bool
policyAppAware(PolicyKind kind)
{
    return kind == PolicyKind::AppAware ||
           kind == PolicyKind::AppResAware ||
           kind == PolicyKind::AppResEsdAware;
}

bool
policyResAware(PolicyKind kind)
{
    return kind == PolicyKind::ServerResAware ||
           kind == PolicyKind::AppResAware ||
           kind == PolicyKind::AppResEsdAware;
}

bool
policyUsesEsd(PolicyKind kind)
{
    return kind == PolicyKind::AppResEsdAware;
}

Watts
minFeasibleAppPower(const power::PlatformConfig &config)
{
    power::CorePowerModel cores(config);
    // One core at the lowest DVFS state, fully busy, plus the typical
    // per-app activation overhead and the channel background power.
    constexpr Watts typical_base = 2.0;
    return cores.corePower(config.freqMin, 1.0, 1) + typical_base +
           config.dramPowerMin;
}

} // namespace psm::core
