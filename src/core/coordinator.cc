#include "coordinator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::core
{

std::string
coordinationModeName(CoordinationMode mode)
{
    switch (mode) {
      case CoordinationMode::Idle:
        return "idle";
      case CoordinationMode::Space:
        return "space";
      case CoordinationMode::Time:
        return "time";
      case CoordinationMode::EsdAssisted:
        return "esd";
      default:
        panic("invalid CoordinationMode %d", static_cast<int>(mode));
    }
}

namespace
{

/** The trace event counting one mode entry (the typed equivalent of
 * the old "coordinator.enter." + coordinationModeName() key). */
trace::EventId
enterModeTraceId(CoordinationMode mode)
{
    switch (mode) {
      case CoordinationMode::Idle:
        return trace::EventId::CoordEnterIdle;
      case CoordinationMode::Space:
        return trace::EventId::CoordEnterSpace;
      case CoordinationMode::Time:
        return trace::EventId::CoordEnterTime;
      case CoordinationMode::EsdAssisted:
        break;
    }
    return trace::EventId::CoordEnterEsd;
}

} // namespace

Coordinator::Coordinator(CoordinatorConfig config) : cfg(config)
{
    psm_assert(cfg.dutyPeriod > 0);
    psm_assert(cfg.socFloor >= 0.0 && cfg.socFloor < 1.0);
}

void
Coordinator::applyDirective(sim::Server &server, const Directive &d,
                            bool run)
{
    if (!server.hasApp(d.appId))
        return;
    sim::Application &app = server.app(d.appId);
    if (run) {
        if (d.useRapl) {
            // RAPL enforcement: knobs carry the DRAM domain limit
            // (m); core power is held down by the package limit's
            // frequency throttling.
            app.setKnobs(d.knobs);
            server.setPackageLimit(app.socket(),
                                   std::max(d.packageLimit, 0.5));
        } else {
            server.clearPackageLimit(app.socket());
            app.setKnobs(d.knobs);
        }
        app.resume(server.now());
    } else {
        app.suspend(server.now());
    }
}

void
Coordinator::suspendAll(sim::Server &server)
{
    for (sim::Application *app : server.activeApps())
        app->suspend(server.now());
}

void
Coordinator::enterMode(CoordinationMode mode)
{
    if (tel && mode != current_mode)
        tel->count(enterModeTraceId(mode));
    current_mode = mode;
}

void
Coordinator::idle(sim::Server &server)
{
    enterMode(CoordinationMode::Idle);
    suspendAll(server);
    server.setEsdChargeEnabled(false);
}

void
Coordinator::coordinateSpace(sim::Server &server,
                             const std::vector<Directive> &directives)
{
    if (directives.empty()) {
        if (tel)
            tel->count(trace::EventId::CoordEmptyPlan);
        idle(server);
        return;
    }
    enterMode(CoordinationMode::Space);
    server.setEsdChargeEnabled(false);
    for (const Directive &d : directives)
        applyDirective(server, d, true);
}

void
Coordinator::coordinateTime(sim::Server &server,
                            std::vector<Directive> directives,
                            std::vector<double> shares)
{
    psm_assert(directives.size() == shares.size());
    if (directives.empty()) {
        if (tel)
            tel->count(trace::EventId::CoordEmptyPlan);
        idle(server);
        return;
    }
    double total = 0.0;
    for (double s : shares) {
        psm_assert(s >= 0.0);
        total += s;
    }
    psm_assert(total > 0.0);
    if (std::abs(total - 1.0) > 1e-6) {
        // Tolerate planners whose shares do not quite sum to one
        // (floors, rounding): renormalize rather than die.
        for (double &s : shares)
            s /= total;
        if (tel)
            tel->count(trace::EventId::CoordShareRenormalized);
    }

    // Re-planning over the same application set updates the
    // directives and shares in place without resetting the rotation,
    // so steady-state refreshes cannot starve later slots.
    bool same_apps = current_mode == CoordinationMode::Time &&
                     slots.size() == directives.size();
    if (same_apps) {
        for (std::size_t i = 0; i < slots.size(); ++i)
            same_apps &= slots[i].appId == directives[i].appId;
    }

    enterMode(CoordinationMode::Time);
    server.setEsdChargeEnabled(false);
    slots = std::move(directives);
    slot_shares = std::move(shares);
    if (same_apps && slot_ix < slots.size()) {
        // Refresh the currently running slot's enforcement only.
        applyDirective(server, slots[slot_ix], true);
        return;
    }
    slot_ix = 0;
    slot_started = server.now();

    // Start the first slot, suspend the rest.
    for (std::size_t i = 0; i < slots.size(); ++i)
        applyDirective(server, slots[i], i == slot_ix);
}

void
Coordinator::coordinateEsd(sim::Server &server,
                           std::vector<Directive> directives,
                           double off_fraction)
{
    if (directives.empty()) {
        if (tel)
            tel->count(trace::EventId::CoordEmptyPlan);
        idle(server);
        return;
    }
    psm_assert(off_fraction >= 0.0 && off_fraction < 1.0);
    if (!server.hasEsd()) {
        // The ESD vanished between planning and actuation (fault,
        // maintenance pull).  Demote to time multiplexing with equal
        // shares rather than crash: same duty structure, just no
        // battery to bridge the OFF phases.
        if (tel)
            tel->count(trace::EventId::DegradedEsdToTime);
        std::vector<double> shares(directives.size(),
                                   1.0 / static_cast<double>(
                                             directives.size()));
        coordinateTime(server, std::move(directives),
                       std::move(shares));
        return;
    }

    enterMode(CoordinationMode::EsdAssisted);
    esd_directives = std::move(directives);
    esd_off_fraction = off_fraction;
    esd_phase_started = server.now();

    // Begin with a charge phase unless the battery is already full
    // or no OFF time is needed.
    const esd::Battery *bat = server.battery();
    esd_charging = off_fraction > 0.0 && !bat->full();
    if (esd_charging) {
        suspendAll(server);
        server.setEsdChargeEnabled(true);
    } else {
        server.setEsdChargeEnabled(false);
        for (const Directive &d : esd_directives)
            applyDirective(server, d, true);
    }
}

Tick
Coordinator::slotLength(std::size_t ix) const
{
    psm_assert(ix < slot_shares.size());
    // Cumulative rounding: slot ix spans the tick range
    // [floor(P*c_ix), floor(P*c_{ix+1})) of the duty period, where
    // c_ix is the cumulative share before slot ix.  Lengths therefore
    // sum to exactly dutyPeriod — the last slot absorbs the residual
    // ticks that independent per-slot truncation used to drop (up to
    // slots.size()-1 ticks per period).
    double before = 0.0;
    for (std::size_t i = 0; i < ix; ++i)
        before += slot_shares[i];
    double period = static_cast<double>(cfg.dutyPeriod);
    Tick lo = static_cast<Tick>(before * period);
    Tick hi = ix + 1 == slot_shares.size()
                  ? cfg.dutyPeriod
                  : static_cast<Tick>((before + slot_shares[ix]) *
                                      period);
    return hi > lo ? hi - lo : 0;
}

int
Coordinator::activeSlot() const
{
    if (current_mode != CoordinationMode::Time)
        return -1;
    return static_cast<int>(slot_ix);
}

void
Coordinator::advance(sim::Server &server)
{
    Tick now = server.now();
    switch (current_mode) {
      case CoordinationMode::Idle:
      case CoordinationMode::Space:
        return;

      case CoordinationMode::Time: {
        if (slots.empty())
            return;
        // Skip zero-length slots defensively.
        std::size_t guard = 0;
        while (now - slot_started >= slotLength(slot_ix) &&
               guard++ <= slots.size()) {
            Tick len = slotLength(slot_ix);
            applyDirective(server, slots[slot_ix], false);
            // Carry the slot boundary instead of resetting it to
            // `now`: resetting discarded the overshoot past the
            // boundary, so every rotation started late and the error
            // accumulated across duty periods.
            slot_started += len;
            slot_ix = (slot_ix + 1) % slots.size();
            applyDirective(server, slots[slot_ix], true);
            if (tel)
                tel->count(trace::EventId::CoordSlotRotations);
        }
        return;
      }

      case CoordinationMode::EsdAssisted: {
        const esd::Battery *bat = server.battery();
        if (bat == nullptr) {
            // ESD lost mid-duty-cycle: fall back to time slicing the
            // surviving directives until the next replan (which will
            // see hasEsd() == false and plan without the battery).
            if (tel)
                tel->count(trace::EventId::DegradedEsdToTime);
            std::vector<Directive> ds = std::move(esd_directives);
            esd_directives.clear();
            if (ds.empty()) {
                idle(server);
                return;
            }
            std::vector<double> shares(
                ds.size(), 1.0 / static_cast<double>(ds.size()));
            coordinateTime(server, std::move(ds), std::move(shares));
            return;
        }
        Tick off_len = static_cast<Tick>(
            esd_off_fraction * static_cast<double>(cfg.dutyPeriod));
        Tick on_len = cfg.dutyPeriod - off_len;
        Tick elapsed = now - esd_phase_started;

        if (esd_charging) {
            // Leave the charge phase when its time is up or the
            // battery cannot absorb more.
            if (elapsed >= off_len || bat->full()) {
                esd_charging = false;
                esd_phase_started = now;
                server.setEsdChargeEnabled(false);
                for (const Directive &d : esd_directives)
                    applyDirective(server, d, true);
                if (tel)
                    tel->count(trace::EventId::CoordEsdPhaseFlips);
            }
        } else {
            // Leave the ON phase when its time is up or the battery
            // hit its floor (it can no longer bridge the deficit).
            bool drained = bat->soc() <= cfg.socFloor;
            if ((off_len > 0 && elapsed >= on_len) || drained) {
                esd_charging = true;
                esd_phase_started = now;
                suspendAll(server);
                server.setEsdChargeEnabled(true);
                if (tel)
                    tel->count(trace::EventId::CoordEsdPhaseFlips);
            }
        }
        return;
      }
    }
}

} // namespace psm::core
