#include "actuator.hh"

#include <algorithm>

#include "policy.hh"
#include "util/logging.hh"

namespace psm::core
{

Actuator::Actuator(sim::Server &server, Coordinator &coordinator,
                   Accountant &accountant, Telemetry *telemetry)
    : srv(server), coord(coordinator), acct(accountant), tel(telemetry)
{
}

void
Actuator::forget(int id)
{
    dram_demand.erase(id);
}

void
Actuator::holdForCalibration(const std::vector<int> &ids)
{
    const power::PlatformConfig &plat = srv.platform();
    for (int id : ids) {
        sim::Application &app = srv.app(id);
        app.setKnobs(plat.minSetting());
        app.resume(srv.now());
        acct.setAllocatedPower(id, 0.0);
    }
}

Watts
Actuator::dramDemandEstimate(int id)
{
    // Remember each application's DRAM appetite across duty-cycle OFF
    // periods (the instantaneous RAPL window forgets in ~10 ms): grow
    // immediately when more draw is observed, decay slowly otherwise.
    Watts obs = srv.observedAppDramPower(id);
    auto [it, inserted] = dram_demand.try_emplace(
        id, srv.platform().dramPowerMin);
    if (obs > it->second)
        it->second = obs;
    else if (obs > 0.5)
        it->second = std::max(it->second * 0.99, obs);
    return it->second;
}

Directive
Actuator::raplDirective(int id, Watts app_budget)
{
    const power::PlatformConfig &plat = srv.platform();
    Directive d;
    d.appId = id;
    d.useRapl = true;

    // Split the app budget between the DRAM and package domains the
    // way a demand-following RAPL controller would: give DRAM its
    // tracked demand plus ratchet headroom (so a throttled channel can
    // reveal more appetite), the rest to the package.
    Watts demand = dramDemandEstimate(id);
    Watts dram_limit =
        std::clamp(demand * 1.25 + 0.25, plat.dramPowerMin,
                   std::min(plat.dramPowerMax,
                            std::max(app_budget - 0.5,
                                     plat.dramPowerMin)));
    d.knobs = plat.maxSetting();
    d.knobs.dramPower = dram_limit;
    // The package gets the budget minus the *expected* DRAM draw
    // (the limit only carries ratchet headroom above it).
    Watts expected_dram = std::min(demand, dram_limit);
    d.packageLimit = std::max(app_budget - expected_dram, 0.5);
    return d;
}

Directive
Actuator::blindRaplDirective(int id, Watts app_budget)
{
    // The utility-unaware baseline's enforcement: leave the DRAM
    // domain at its default limit unless the budget is so small that
    // even a fully-drawn channel would blow it, and cap the package
    // at budget minus the *measured* DRAM draw — pure accounting, no
    // notion of where a watt is worth more.
    const power::PlatformConfig &plat = srv.platform();
    Directive d;
    d.appId = id;
    d.useRapl = true;
    d.knobs = plat.maxSetting();
    d.knobs.dramPower = std::clamp(app_budget - 1.5,
                                   plat.dramPowerMin,
                                   plat.dramPowerMax);
    Watts dram_obs = std::max(srv.observedAppDramPower(id),
                              plat.dramPowerMin);
    d.packageLimit = std::max(app_budget - dram_obs, 0.5);
    return d;
}

Directive
Actuator::directiveFor(int id, const AppAllocation &alloc)
{
    Directive d;
    d.appId = id;
    psm_assert(alloc.point.has_value());
    d.knobs = alloc.point->setting;
    return d;
}

int
Actuator::idForApp(const std::vector<int> &ids,
                   const std::string &name) const
{
    for (int id : ids)
        if (srv.app(id).name() == name)
            return id;
    panic("temporal plan names unknown app '%s'", name.c_str());
}

void
Actuator::executeUncapped(const std::vector<int> &ids)
{
    std::vector<Directive> directives;
    for (int id : ids) {
        Directive d;
        d.appId = id;
        d.knobs = srv.platform().maxSetting();
        directives.push_back(d);
        acct.setAllocatedPower(id, 0.0);
    }
    coord.coordinateSpace(srv, directives);
}

void
Actuator::executeSpatialUtility(const std::vector<int> &ids,
                                const Allocation &alloc,
                                PolicyKind policy)
{
    psm_assert(ids.size() == alloc.apps.size());
    // RAPL-enforced policies (App-Aware) use utilities only to
    // *split* the budget; within an application they enforce the
    // grant with the default hardware knob (RAPL), not per-resource
    // apportioning.
    bool rapl_enforced = policyRaplEnforced(policy);
    std::vector<Directive> directives;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        psm_assert(alloc.apps[i].scheduled());
        if (rapl_enforced) {
            directives.push_back(blindRaplDirective(
                ids[i], alloc.apps[i].point->power));
        } else {
            directives.push_back(directiveFor(ids[i], alloc.apps[i]));
        }
        acct.setAllocatedPower(ids[i], alloc.apps[i].point->power);
    }
    coord.coordinateSpace(srv, directives);
    last_alloc = alloc;
}

void
Actuator::executeFairRaplSpace(const std::vector<int> &ids, Watts share)
{
    std::vector<Directive> directives;
    for (int id : ids) {
        directives.push_back(blindRaplDirective(id, share));
        acct.setAllocatedPower(id, share);
    }
    coord.coordinateSpace(srv, directives);
}

void
Actuator::executeFairRaplTime(const std::vector<int> &ids, Watts budget,
                              bool demand_following)
{
    std::vector<Directive> directives;
    std::vector<double> shares;
    for (int id : ids) {
        directives.push_back(demand_following
                                 ? raplDirective(id, budget)
                                 : blindRaplDirective(id, budget));
        shares.push_back(1.0 / static_cast<double>(ids.size()));
        acct.setAllocatedPower(id, 0.0);
    }
    coord.coordinateTime(srv, std::move(directives),
                         std::move(shares));
}

void
Actuator::executeServerAvg(const PlanDecision &d,
                           const std::vector<int> &ids)
{
    psm_assert(d.avgPoint.has_value());
    const UtilityPoint &point = *d.avgPoint;
    if (d.choice == PlanChoice::ServerAvgSpace) {
        // Knobs from the server-average utilities, but the equal
        // share is enforced strictly with a package RAPL backstop —
        // this policy has no per-application knowledge to justify
        // letting one app spend another's unused share.
        std::vector<Directive> directives;
        for (int id : ids) {
            Directive dir;
            dir.appId = id;
            dir.useRapl = true;
            dir.knobs = point.setting;
            dir.packageLimit = std::max(
                d.perAppBudget - point.setting.dramPower, 0.5);
            directives.push_back(dir);
            acct.setAllocatedPower(id, d.perAppBudget);
        }
        coord.coordinateSpace(srv, directives);
        return;
    }
    std::vector<Directive> directives;
    std::vector<double> shares;
    for (int id : ids) {
        Directive dir;
        dir.appId = id;
        dir.knobs = point.setting;
        directives.push_back(dir);
        shares.push_back(1.0 / static_cast<double>(ids.size()));
        acct.setAllocatedPower(id, 0.0);
    }
    coord.coordinateTime(srv, std::move(directives),
                         std::move(shares));
}

void
Actuator::executeTemporalUtility(const TemporalPlan &plan,
                                 const std::vector<int> &ids,
                                 PolicyKind policy)
{
    // Suspend applications that cannot run even alone at this cap.
    for (const auto &name : plan.unschedulable) {
        srv.app(idForApp(ids, name)).suspend(srv.now());
        if (tel)
            tel->count(trace::EventId::ActuatorSuspendedUnschedulable);
    }

    bool rapl_enforced = policyRaplEnforced(policy);
    std::vector<Directive> directives;
    std::vector<double> shares;
    for (const auto &slot : plan.slots) {
        int id = idForApp(ids, slot.app);
        if (rapl_enforced) {
            directives.push_back(
                blindRaplDirective(id, slot.point.power));
        } else {
            Directive d;
            d.appId = id;
            d.knobs = slot.point.setting;
            directives.push_back(d);
        }
        shares.push_back(slot.share);
        acct.setAllocatedPower(id, 0.0);
    }
    coord.coordinateTime(srv, std::move(directives),
                         std::move(shares));
}

void
Actuator::executeEsd(const EsdPlan &plan, const std::vector<int> &ids)
{
    std::vector<Directive> directives;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        psm_assert(plan.onAllocation.apps[i].scheduled());
        directives.push_back(
            directiveFor(ids[i], plan.onAllocation.apps[i]));
        acct.setAllocatedPower(ids[i], 0.0);
    }
    coord.coordinateEsd(srv, std::move(directives), plan.offFraction);
    last_alloc = plan.onAllocation;
}

void
Actuator::execute(const PlanDecision &d, const std::vector<int> &all,
                  const std::vector<int> &ready, PolicyKind policy)
{
    switch (d.choice) {
      case PlanChoice::Idle:
        coord.idle(srv);
        break;
      case PlanChoice::CalibrationOnly:
        // Calibrating apps were already held conservatively; there is
        // nothing else to actuate.
        break;
      case PlanChoice::UncappedRun:
        executeUncapped(all);
        break;
      case PlanChoice::SpatialUtility:
        executeSpatialUtility(ready, d.alloc, policy);
        break;
      case PlanChoice::FairRaplSpace:
        executeFairRaplSpace(ready, d.perAppBudget);
        break;
      case PlanChoice::FairRaplTime:
        executeFairRaplTime(ready, d.perAppBudget,
                            d.demandFollowingRapl);
        break;
      case PlanChoice::ServerAvgSpace:
      case PlanChoice::ServerAvgTime:
        executeServerAvg(d, ready);
        break;
      case PlanChoice::TemporalUtility:
        executeTemporalUtility(d.temporal, ready, policy);
        break;
      case PlanChoice::EsdAssisted:
        executeEsd(d.esd, ready);
        break;
    }
    acct.setDriftDetection(d.driftDetection);
}

} // namespace psm::core
