/**
 * @file
 * The PlanSelector: the decision layer of the control plane.
 *
 * Given the policy, the dynamic power budget and the utility
 * frontiers the LearningPipeline has produced, it chooses ONE plan —
 * a spatial Allocation (R3a), a TemporalPlan (R3b), an EsdPlan (R4)
 * or one of the degraded fallbacks (fair RAPL split, server-average
 * knobs, idle) — without touching the server.  Actuating the chosen
 * plan is the Actuator's job; this separation is what makes the
 * policy semantics of Figs. 8/10 testable in isolation.
 */

#ifndef PSM_CORE_PLAN_SELECTOR_HH
#define PSM_CORE_PLAN_SELECTOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "esd/battery.hh"
#include "policy.hh"
#include "policy_registry.hh"
#include "power/platform.hh"
#include "power_allocator.hh"
#include "telemetry.hh"
#include "utility_curve.hh"
#include "util/units.hh"

namespace psm::core
{

/** Every plan shape the control plane can decide on. */
enum class PlanChoice
{
    /** Suspend everything: no feasible plan at this budget. */
    Idle,
    /** Calibrations in flight and nobody ready: leave the
     * conservatively-held calibrating apps alone. */
    CalibrationOnly,
    /** No cap: everyone flat out. */
    UncappedRun,
    /** Utility-optimal spatial allocation (R1/R2 + R3a). */
    SpatialUtility,
    /** Equal split enforced by RAPL, all apps concurrent. */
    FairRaplSpace,
    /** Equal-share alternate duty cycling under RAPL. */
    FairRaplTime,
    /** Server-average knobs, equal spatial shares. */
    ServerAvgSpace,
    /** Server-average knobs, equal temporal shares. */
    ServerAvgTime,
    /** Utility-weighted alternate duty cycling (R3b). */
    TemporalUtility,
    /** ESD-assisted consolidated duty cycling (R4). */
    EsdAssisted,
};

/** Printable plan-choice name (for telemetry records). */
std::string planChoiceName(PlanChoice choice);

/** Everything the selector needs to decide. */
struct PlanInputs
{
    PolicyKind policy = PolicyKind::AppResAware;
    Watts cap = 0.0;    ///< server cap (<= 0 means uncapped)
    Watts budget = 0.0; ///< dynamic budget after guard band and trim
    /** Frontiers of calibrated apps, admission order. */
    std::vector<const UtilityCurve *> curves;
    std::size_t calibratingCount = 0; ///< apps still calibrating
    std::size_t appCount = 0;         ///< all active apps
    bool hasEsd = false;
    const esd::BatteryConfig *esd = nullptr;
    /** False when per-app knob actuation is currently failing: the
     * selector demotes to hardware RAPL enforcement, which needs no
     * per-app software knobs. */
    bool knobsAvailable = true;
    /** Corpus-average curve (Server+Res-Aware baseline). */
    const UtilityCurve *serverAverage = nullptr;
    /**
     * LearningPipeline::surfaceEpoch() of the curves, keying the
     * selector's incremental allocator cache.  0 (the default)
     * disables cross-event reuse.
     */
    std::uint64_t surfaceEpoch = 0;
};

/** The selector's verdict: which plan, and its payload. */
struct PlanDecision
{
    PlanChoice choice = PlanChoice::Idle;
    Allocation alloc;      ///< SpatialUtility payload
    TemporalPlan temporal; ///< TemporalUtility payload
    EsdPlan esd;           ///< EsdAssisted payload
    /** FairRapl*: per-app (Space) or ON-period (Time) budget;
     * ServerAvg*: the equal share. */
    Watts perAppBudget = 0.0;
    /** ServerAvg*: the chosen server-average operating point. */
    std::optional<UtilityPoint> avgPoint;
    /** FairRaplTime: demand-following RAPL (utility-aware fallback)
     * instead of the blind baseline enforcement. */
    bool demandFollowingRapl = false;
    /** Whether the Accountant's E4 drift detector should run. */
    bool driftDetection = false;
    double objective = 0.0; ///< expected Eq. 1 objective (when known)
    /** Budget left after reserving floors for calibrating apps. */
    Watts usableBudget = 0.0;
};

/**
 * Decision layer; one per manager.  Pure with respect to the server —
 * its only state is the allocator's cross-event DP cache, which is a
 * transparent accelerator (allocations are bit-identical with or
 * without it).
 */
class PlanSelector
{
  public:
    PlanSelector(const power::PlatformConfig &platform,
                 AllocatorConfig allocator,
                 Telemetry *telemetry = nullptr);

    /** Decide a plan.  No server mutation, no actuation. */
    PlanDecision select(const PlanInputs &in) const;

  private:
    const power::PlatformConfig &plat;
    AllocatorConfig alloc_cfg;
    Telemetry *tel;
    /** Cross-event DP reuse for the spatial allocation, keyed on
     * PlanInputs::surfaceEpoch. */
    mutable AllocatorCache dp_cache;
    /** Registry-made planners of policies that replace the built-in
     * DP, constructed on first use and kept across events so they
     * can warm-start. */
    mutable std::map<PolicyKind, std::unique_ptr<SpatialPlanner>>
        planners;

    PlanDecision fairSplit(Watts budget, std::size_t n,
                           bool demand_following) const;
    PlanDecision selectServerResAware(const PlanInputs &in) const;
    PlanDecision selectUtilityAware(const PlanInputs &in) const;

    /** The cached planner instance for a registered custom policy. */
    SpatialPlanner &plannerFor(const PolicyInfo &info) const;
};

} // namespace psm::core

#endif // PSM_CORE_PLAN_SELECTOR_HH
