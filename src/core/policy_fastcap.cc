#include "policy_fastcap.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::core
{

namespace
{

/**
 * Cheapest frontier index delivering perfNorm >= min(level, max):
 * the frontier is strictly increasing in both power and perfNorm, so
 * this is a lower bound on perfNorm, clamped to the last point when
 * the application cannot reach the level at all.
 */
std::size_t
indexForLevel(const UtilityCurve &curve, double level)
{
    const auto &pts = curve.points();
    auto it = std::lower_bound(
        pts.begin(), pts.end(), level,
        [](const UtilityPoint &p, double l) { return p.perfNorm < l; });
    if (it == pts.end())
        return pts.size() - 1;
    return static_cast<std::size_t>(it - pts.begin());
}

/** Total power of the per-app cheapest points reaching @p level. */
Watts
costAtLevel(const std::vector<const UtilityCurve *> &curves,
            double level)
{
    Watts total = 0.0;
    for (const UtilityCurve *c : curves)
        total += c->points()[indexForLevel(*c, level)].power;
    return total;
}

/** Best-effort equal split when even the floor does not fit; at
 * least one application stays unscheduled, so the selector's
 * fallback ladder (temporal plans, fair RAPL, idle) takes over. */
Allocation
equalBestEffort(const std::vector<const UtilityCurve *> &curves,
                Watts usable)
{
    Allocation out;
    out.dynamicBudget = usable;
    Watts share = usable / static_cast<double>(curves.size());
    for (const UtilityCurve *c : curves) {
        AppAllocation a;
        a.app = c->name();
        a.budget = share;
        a.point = c->bestWithin(share);
        if (a.point) {
            a.expectedPerf = a.point->perfNorm;
            out.used += a.point->power;
            out.objective += a.expectedPerf;
        }
        out.apps.push_back(std::move(a));
    }
    return out;
}

} // namespace

Allocation
FastCapPlanner::plan(const std::vector<const UtilityCurve *> &curves,
                     Watts usable, const Context &ctx)
{
    Allocation out;
    out.dynamicBudget = usable;
    const std::size_t k = curves.size();
    if (k == 0)
        return out;
    if (ctx.telemetry)
        ctx.telemetry->count(trace::EventId::PolicyFastcapPlans);

    // Floor feasibility: every application at its cheapest point.
    Watts floor_total = 0.0;
    for (const UtilityCurve *c : curves)
        floor_total += c->minPower();
    if (floor_total > usable + 1e-9)
        return equalBestEffort(curves, usable);

    // The uniform throttle ladder: every distinct frontier perfNorm
    // is a candidate common performance level.
    std::vector<double> levels;
    for (const UtilityCurve *c : curves)
        for (const UtilityPoint &p : c->points())
            levels.push_back(p.perfNorm);
    std::sort(levels.begin(), levels.end());
    levels.erase(std::unique(levels.begin(), levels.end()),
                 levels.end());

    // Water-fill: the highest level t whose per-app cheapest points
    // (capped at each app's own maximum) fit the budget.  cost() is
    // non-decreasing in t and cost(levels[0]) == floor_total, which
    // fits, so the invariant "lo is feasible" holds throughout.
    std::size_t lo = 0, hi = levels.size() - 1;
    while (lo < hi) {
        std::size_t mid = lo + (hi - lo + 1) / 2;
        if (costAtLevel(curves, levels[mid]) <= usable + 1e-9)
            lo = mid;
        else
            hi = mid - 1;
    }

    std::vector<std::size_t> chosen(k);
    Watts spent = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        chosen[i] = indexForLevel(*curves[i], levels[lo]);
        spent += curves[i]->points()[chosen[i]].power;
    }

    // Spend the leftover worst-first: repeatedly upgrade the
    // application with the lowest achieved perfNorm (ties broken by
    // admission order) to its next frontier point while it fits.
    // Each pass either upgrades one app or terminates, and every app
    // can only climb its own frontier once, so the loop is bounded by
    // the total point count.
    Watts leftover = usable - spent;
    for (;;) {
        std::size_t pick = k;
        double pick_perf = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            const auto &pts = curves[i]->points();
            if (chosen[i] + 1 >= pts.size())
                continue;
            Watts delta =
                pts[chosen[i] + 1].power - pts[chosen[i]].power;
            if (delta > leftover + 1e-9)
                continue;
            double perf = pts[chosen[i]].perfNorm;
            if (pick == k || perf < pick_perf) {
                pick = i;
                pick_perf = perf;
            }
        }
        if (pick == k)
            break;
        const auto &pts = curves[pick]->points();
        leftover -= pts[chosen[pick] + 1].power -
                    pts[chosen[pick]].power;
        ++chosen[pick];
        if (ctx.telemetry)
            ctx.telemetry->count(trace::EventId::PolicyFastcapUpgrades);
    }

    for (std::size_t i = 0; i < k; ++i) {
        const UtilityPoint &p = curves[i]->points()[chosen[i]];
        AppAllocation a;
        a.app = curves[i]->name();
        a.budget = p.power;
        a.point = p;
        a.expectedPerf = p.perfNorm;
        out.used += p.power;
        out.objective += p.perfNorm;
        out.apps.push_back(std::move(a));
    }
    psm_assert(out.used <= usable + 1e-6);
    return out;
}

} // namespace psm::core
