/**
 * @file
 * Physical units and simulated-time primitives used across the library.
 *
 * The simulator models electrical power flows and application progress on
 * a shared server.  To keep arithmetic ergonomic we represent physical
 * quantities as doubles with strongly-named aliases, and simulated time as
 * an integral tick count (1 tick = 100 microseconds) so that time
 * comparisons are exact and event ordering is deterministic.
 */

#ifndef PSM_UTIL_UNITS_HH
#define PSM_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace psm
{

/** Electrical power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Core clock frequency in gigahertz. */
using GHz = double;

/** Memory bandwidth in gigabytes per second. */
using GBps = double;

/** Simulated time expressed in ticks. */
using Tick = std::uint64_t;

/** Number of simulation ticks in one second (tick = 100 us). */
constexpr Tick ticksPerSecond = 10000;

/** Number of simulation ticks in one millisecond. */
constexpr Tick ticksPerMs = ticksPerSecond / 1000;

/** Largest representable tick, used as "never" for event scheduling. */
constexpr Tick maxTick = UINT64_MAX;

/**
 * Convert a tick count to seconds.
 *
 * @param t Tick count.
 * @return Equivalent wall-clock seconds in simulated time.
 */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/**
 * Convert seconds to the nearest tick count.
 *
 * @param s Simulated seconds; negative values clamp to zero.
 * @return Equivalent tick count.
 */
constexpr Tick
toTicks(double s)
{
    if (s <= 0.0)
        return 0;
    return static_cast<Tick>(s * static_cast<double>(ticksPerSecond) + 0.5);
}

/**
 * Integrate power over a tick interval to obtain energy.
 *
 * @param p Constant power over the interval.
 * @param dt Interval length in ticks.
 * @return Energy in joules.
 */
constexpr Joules
energyOver(Watts p, Tick dt)
{
    return p * toSeconds(dt);
}

/**
 * Format a tick count as a human-readable duration ("12.345 s").
 */
std::string formatTime(Tick t);

/**
 * Format a power value as a human-readable string ("87.3 W").
 */
std::string formatPower(Watts p);

} // namespace psm

#endif // PSM_UTIL_UNITS_HH
