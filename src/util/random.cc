#include "random.hh"

#include "logging.hh"

namespace psm
{

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    psm_assert(k <= n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    // Partial Fisher-Yates: after k swaps the first k entries are a
    // uniform sample without replacement.
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + static_cast<std::size_t>(uniformInt(
                                0, static_cast<int>(n - i) - 1));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

} // namespace psm
