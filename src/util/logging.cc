#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace psm
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, ap);
    std::fprintf(stream, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "", fmt, ap);
    va_end(ap);
}

} // namespace psm
