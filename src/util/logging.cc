#include "logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace psm
{

namespace
{

std::once_flag level_once;
std::atomic<int> globalLevel{static_cast<int>(LogLevel::Normal)};

/** Seed the threshold from PSM_LOG_LEVEL exactly once; an explicit
 * setLogLevel() consumes the once-flag first and wins. */
void
seedLevelFromEnv()
{
    const char *env = std::getenv("PSM_LOG_LEVEL");
    if (!env || *env == '\0')
        return;
    LogLevel parsed;
    if (parseLogLevel(env, parsed)) {
        globalLevel.store(static_cast<int>(parsed),
                          std::memory_order_relaxed);
    } else {
        std::fprintf(stderr,
                     "warn: PSM_LOG_LEVEL='%s' is not a level in "
                     "[0, 3] or quiet/normal/verbose/debug; ignored\n",
                     env);
    }
}

std::mutex &
reportMutex()
{
    static std::mutex m;
    return m;
}

/** Format privately, then emit one atomic line under the lock. */
void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    char body[2048];
    std::vsnprintf(body, sizeof(body), fmt, ap);
    std::lock_guard lk(reportMutex());
    std::fprintf(stream, "%s%s\n", prefix, body);
}

} // namespace

bool
parseLogLevel(const char *text, LogLevel &out)
{
    if (!text || *text == '\0')
        return false;
    if (std::isdigit(static_cast<unsigned char>(*text))) {
        char *end = nullptr;
        long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || v < 0 || v > 3)
            return false;
        out = static_cast<LogLevel>(v);
        return true;
    }
    std::string lower;
    for (const char *p = text; *p; ++p)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (lower == "quiet")
        out = LogLevel::Quiet;
    else if (lower == "normal")
        out = LogLevel::Normal;
    else if (lower == "verbose")
        out = LogLevel::Verbose;
    else if (lower == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

void
setLogLevel(LogLevel level)
{
    // Consume the env seeding slot so a later logLevel() cannot
    // overwrite an explicit choice.
    std::call_once(level_once, [] {});
    globalLevel.store(static_cast<int>(level),
                      std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    std::call_once(level_once, seedLevelFromEnv);
    return static_cast<LogLevel>(
        globalLevel.load(std::memory_order_relaxed));
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) > static_cast<int>(logLevel()))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "", fmt, ap);
    va_end(ap);
}

} // namespace psm
