#include "parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace psm::util
{

bool
parseLong(const char *text, long &out)
{
    if (!text || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    long value = std::strtol(text, &end, 10);
    if (errno == ERANGE)
        return false; // overflow/underflow
    if (end == text || *end != '\0')
        return false; // nothing parsed, or trailing garbage
    out = value;
    return true;
}

bool
parseLongInRange(const char *text, long lo, long hi, long &out)
{
    long value = 0;
    if (!parseLong(text, value))
        return false;
    if (value < lo || value > hi)
        return false;
    out = value;
    return true;
}

bool
parseFiniteDouble(const char *text, double &out)
{
    if (!text || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL))
        return false; // magnitude overflow
    if (end == text || *end != '\0')
        return false;
    if (!std::isfinite(value))
        return false; // "nan", "inf" parse but are never valid knobs
    out = value;
    return true;
}

bool
parsePort(const char *text, std::uint16_t &out)
{
    long value = 0;
    if (!parseLongInRange(text, 1, 65535, value))
        return false;
    out = static_cast<std::uint16_t>(value);
    return true;
}

} // namespace psm::util
