#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace psm
{

void
RunningStats::push(double x)
{
    ++n;
    total += x;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel-variance combination.
    double delta = other.m - m;
    std::size_t total_n = n + other.n;
    double combined_m = m + delta * static_cast<double>(other.n) /
                                static_cast<double>(total_n);
    m2 = m2 + other.m2 + delta * delta * static_cast<double>(n) *
                             static_cast<double>(other.n) /
                             static_cast<double>(total_n);
    m = combined_m;
    n = total_n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
TimeWeightedStats::push(double value, Tick dt)
{
    if (dt == 0)
        return;
    area += value * toSeconds(dt);
    span += dt;
    lo = std::min(lo, value);
    hi = std::max(hi, value);
}

void
TimeWeightedStats::reset()
{
    *this = TimeWeightedStats();
}

double
TimeWeightedStats::mean() const
{
    if (span == 0)
        return 0.0;
    return area / toSeconds(span);
}

Ewma::Ewma(double alpha) : alpha(alpha)
{
    psm_assert(alpha > 0.0 && alpha <= 1.0);
}

double
Ewma::push(double x)
{
    if (!seeded) {
        current = x;
        seeded = true;
    } else {
        current = alpha * x + (1.0 - alpha) * current;
    }
    return current;
}

void
Ewma::reset()
{
    current = 0.0;
    seeded = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo(lo), hi(hi), counts(bins, 0)
{
    psm_assert(bins > 0 && hi > lo);
}

void
Histogram::push(double x)
{
    // NaN carries no ranking information, and casting it (or an
    // overflowing fraction) to an integer is UB — clamp in floating
    // point first, where comparisons against NaN are safely false.
    if (std::isnan(x))
        return;
    double frac = (x - lo) / (hi - lo);
    double scaled =
        std::clamp(frac * static_cast<double>(counts.size()), 0.0,
                   static_cast<double>(counts.size()) - 1.0);
    auto bin = static_cast<std::size_t>(scaled);
    ++counts[bin];
    ++total;
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    total = 0;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo + (hi - lo) * static_cast<double>(bin) /
                    static_cast<double>(counts.size());
}

double
Histogram::percentile(double p) const
{
    if (total == 0 || std::isnan(p))
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    auto target = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(total - 1));
    std::size_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen > target) {
            double width = (hi - lo) / static_cast<double>(counts.size());
            return binLow(b) + width / 2.0;
        }
    }
    return hi;
}

double
percentileOf(std::vector<double> samples, double p)
{
    // NaN samples would poison std::sort (strict weak ordering) and
    // a NaN p survives std::clamp; drop both up front.
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [](double s) {
                                     return std::isnan(s);
                                 }),
                  samples.end());
    if (samples.empty() || std::isnan(p))
        return 0.0;
    std::sort(samples.begin(), samples.end());
    p = std::clamp(p, 0.0, 100.0);
    double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
    auto below = static_cast<std::size_t>(idx);
    std::size_t above = std::min(below + 1, samples.size() - 1);
    double frac = idx - static_cast<double>(below);
    return samples[below] * (1.0 - frac) + samples[above] * frac;
}

double
meanOf(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    return sum / static_cast<double>(samples.size());
}

double
geomeanOf(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        if (s <= 0.0)
            return 0.0;
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace psm
