/**
 * @file
 * Console table / CSV emission used by the benchmark harness to print
 * the rows and series reported in each of the paper's tables and
 * figures.
 */

#ifndef PSM_UTIL_TABLE_HH
#define PSM_UTIL_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace psm
{

/**
 * A simple row-oriented table that renders either as an aligned
 * monospace grid (for terminal output) or as CSV (for plotting).
 *
 * Cells are stored as strings; numeric convenience setters format with
 * a fixed precision.  The table is append-only.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a fully-formed row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell by cell. */
    Table &beginRow();
    /** Append a string cell to the row being built. */
    Table &cell(const std::string &value);
    /** Append a numeric cell with the given decimal precision. */
    Table &cell(double value, int precision = 2);
    /** Append an integer cell. */
    Table &cell(long value);
    /** Finish the row being built; must match the header width. */
    void endRow();

    std::size_t rowCount() const { return rows.size(); }
    std::size_t columnCount() const { return headers.size(); }
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render as an aligned grid with a rule under the header. */
    void print(std::ostream &os) const;
    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    void printCsv(std::ostream &os) const;
    /** Convenience: print the grid to stdout with a caption line. */
    void print(const std::string &caption) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> pending;
    bool building = false;
};

/** Format a double with fixed precision (helper for table cells). */
std::string fmtDouble(double value, int precision = 2);

/** Format a ratio as a percent string, e.g. 0.37 -> "37.0%". */
std::string fmtPercent(double ratio, int precision = 1);

} // namespace psm

#endif // PSM_UTIL_TABLE_HH
