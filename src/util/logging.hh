/**
 * @file
 * Status/diagnostic reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; aborts.
 * fatal()  — the user asked for something impossible; exits cleanly.
 * warn()   — something suspicious happened; execution continues.
 * inform() — progress/status output, gated by verbosity.
 *
 * All reporting entry points are thread-safe: the serving daemon logs
 * concurrently from its reactor and control threads, so each message
 * is formatted privately and emitted as one atomic line, and the
 * verbosity threshold is an atomic.  The initial threshold comes from
 * the PSM_LOG_LEVEL environment variable (a number 0-3 or a level
 * name: quiet, normal, verbose, debug); setLogLevel() overrides it.
 */

#ifndef PSM_UTIL_LOGGING_HH
#define PSM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace psm
{

/** Verbosity levels for inform(); higher prints more. */
enum class LogLevel
{
    Quiet = 0,   ///< only warnings and errors
    Normal = 1,  ///< high-level progress messages
    Verbose = 2, ///< per-event detail
    Debug = 3,   ///< per-tick detail
};

/** Set the global verbosity threshold for inform(). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold (seeded from PSM_LOG_LEVEL on
 * first use, unless setLogLevel() ran earlier). */
LogLevel logLevel();

/**
 * Parse a verbosity spelling: a number in [0, 3] or a case-insensitive
 * level name (quiet, normal, verbose, debug).
 *
 * @return Whether @p text was a valid level (on false, @p out is
 *         untouched).
 */
bool parseLogLevel(const char *text, LogLevel &out);

/**
 * Report an internal simulator bug and abort with a core dump.
 *
 * Call when a condition that should be impossible regardless of user
 * input has occurred.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a suspicious but survivable condition to stderr.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a status message to stdout if the verbosity threshold allows.
 *
 * @param level Minimum verbosity at which this message appears.
 */
void inform(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Assert a simulator invariant; on failure calls panic() with location
 * information.  Unlike <cassert> this is always active.
 */
#define psm_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::psm::panic("assertion '%s' failed at %s:%d", #cond,          \
                         __FILE__, __LINE__);                              \
        }                                                                  \
    } while (0)

} // namespace psm

#endif // PSM_UTIL_LOGGING_HH
