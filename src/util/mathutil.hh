/**
 * @file
 * Small numeric helpers shared by power/performance models and the
 * allocator's search routines.
 */

#ifndef PSM_UTIL_MATHUTIL_HH
#define PSM_UTIL_MATHUTIL_HH

#include <cstddef>
#include <vector>

namespace psm
{

/** Linear interpolation: a + t * (b - a). */
constexpr double
lerp(double a, double b, double t)
{
    return a + t * (b - a);
}

/** n evenly spaced samples covering [lo, hi] inclusive (n >= 2). */
std::vector<double> linspace(double lo, double hi, std::size_t n);

/**
 * Piecewise-linear interpolation through (xs, ys) pairs; xs must be
 * strictly increasing.  Queries outside the range clamp to the end
 * values.
 */
double interpolate(const std::vector<double> &xs,
                   const std::vector<double> &ys, double x);

/** True when |a - b| <= tol. */
constexpr bool
nearlyEqual(double a, double b, double tol = 1e-9)
{
    double diff = a - b;
    return diff <= tol && diff >= -tol;
}

/**
 * Round @p value to the nearest multiple of @p step (step > 0).
 */
double quantize(double value, double step);

/**
 * Saturating exponential utility: rises from 0 toward @p ceiling with
 * rate @p k; used for DRAM-power -> bandwidth curves.
 *
 * f(x) = ceiling * (1 - exp(-k * x))
 */
double saturating(double x, double ceiling, double k);

/** Amdahl's-law speedup of n workers with parallel fraction p. */
double amdahlSpeedup(double n, double parallel_fraction);

} // namespace psm

#endif // PSM_UTIL_MATHUTIL_HH
