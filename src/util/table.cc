#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "logging.hh"

namespace psm
{

std::string
fmtDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtPercent(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers(std::move(headers))
{
    psm_assert(!this->headers.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    psm_assert(cells.size() == headers.size());
    rows.push_back(std::move(cells));
}

Table &
Table::beginRow()
{
    psm_assert(!building);
    building = true;
    pending.clear();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    psm_assert(building);
    pending.push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(fmtDouble(value, precision));
}

Table &
Table::cell(long value)
{
    return cell(std::to_string(value));
}

void
Table::endRow()
{
    psm_assert(building);
    building = false;
    addRow(std::move(pending));
    pending.clear();
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    return rows.at(row).at(col);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c]
               << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(headers);
    std::size_t rule = 0;
    for (std::size_t w : widths)
        rule += w + 2;
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            bool quote = cells[c].find(',') != std::string::npos;
            if (quote)
                os << '"' << cells[c] << '"';
            else
                os << cells[c];
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

void
Table::print(const std::string &caption) const
{
    std::cout << '\n' << caption << '\n';
    print(std::cout);
    std::cout.flush();
}

} // namespace psm
