#include "units.hh"

#include <cstdio>

namespace psm
{

std::string
formatTime(Tick t)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f s", toSeconds(t));
    return buf;
}

std::string
formatPower(Watts p)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f W", p);
    return buf;
}

} // namespace psm
