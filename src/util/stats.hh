/**
 * @file
 * Statistics accumulators used by the power meter, benchmarks and tests.
 */

#ifndef PSM_UTIL_STATS_HH
#define PSM_UTIL_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

#include "units.hh"

namespace psm
{

/**
 * Streaming scalar statistics (Welford's online algorithm) with min/max
 * tracking.  O(1) memory regardless of sample count.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Discard all samples. */
    void reset();

    std::size_t count() const { return n; }
    double mean() const { return n ? m : 0.0; }
    /** Population variance; zero for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/**
 * Time-weighted average of a piecewise-constant signal, e.g. power draw
 * held constant over each simulation tick interval.
 */
class TimeWeightedStats
{
  public:
    /**
     * Record that the signal held @p value for @p dt ticks.
     */
    void push(double value, Tick dt);

    void reset();

    /** Time-weighted mean over the whole recorded span. */
    double mean() const;
    double min() const { return span ? lo : 0.0; }
    double max() const { return span ? hi : 0.0; }
    /** Integral of the signal over time: sum(value * seconds). */
    double integral() const { return area; }
    /** Total recorded span. */
    Tick duration() const { return span; }

  private:
    double area = 0.0;
    Tick span = 0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Exponentially weighted moving average used by the Accountant to
 * smooth noisy per-poll power observations before change detection.
 */
class Ewma
{
  public:
    /**
     * @param alpha Smoothing factor in (0, 1]; higher tracks faster.
     */
    explicit Ewma(double alpha = 0.2);

    /** Incorporate one observation and return the new average. */
    double push(double x);

    double value() const { return current; }
    bool primed() const { return seeded; }
    void reset();

  private:
    double alpha;
    double current = 0.0;
    bool seeded = false;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples land in the
 * first/last bin (NaN samples are dropped).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void push(double x);
    void reset();

    std::size_t binCount() const { return counts.size(); }
    std::size_t binSamples(std::size_t bin) const { return counts.at(bin); }
    std::size_t totalSamples() const { return total; }
    /** Lower edge of a bin. */
    double binLow(std::size_t bin) const;
    /** Approximate p-th percentile by bin midpoint.  p is clamped to
     * [0, 100]; a NaN p (like an empty histogram) yields 0. */
    double percentile(double p) const;

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t total = 0;
};

/** Exact percentile of a sample vector (copies and sorts).  p is
 * clamped to [0, 100]; NaN samples are dropped, and an empty (or
 * all-NaN) vector or a NaN p yields 0. */
double percentileOf(std::vector<double> samples, double p);

/** Arithmetic mean of a vector; zero when empty. */
double meanOf(const std::vector<double> &samples);

/** Geometric mean of a vector of positive values; zero when empty. */
double geomeanOf(const std::vector<double> &samples);

} // namespace psm

#endif // PSM_UTIL_STATS_HH
