#include "fault.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"

namespace psm::util
{

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::MeterStale:
        return "meter_stale";
      case FaultKind::MeterNan:
        return "meter_nan";
      case FaultKind::EsdLoss:
        return "esd_loss";
      case FaultKind::EsdFade:
        return "esd_fade";
      case FaultKind::ActuationStuck:
        return "actuation_stuck";
      case FaultKind::NodeCrash:
        return "node_crash";
      case FaultKind::AppKill:
        return "app_kill";
      default:
        panic("invalid FaultKind %d", static_cast<int>(kind));
    }
}

double
FaultPlanConfig::rate(FaultKind kind) const
{
    switch (kind) {
      case FaultKind::MeterStale:
        return meterStaleRate;
      case FaultKind::MeterNan:
        return meterNanRate;
      case FaultKind::EsdLoss:
        return esdLossRate;
      case FaultKind::EsdFade:
        return esdFadeRate;
      case FaultKind::ActuationStuck:
        return actuationFailRate;
      case FaultKind::NodeCrash:
        return nodeCrashRate;
      case FaultKind::AppKill:
        return appKillRate;
      default:
        return 0.0;
    }
}

bool
FaultPlanConfig::enabled() const
{
    return meterStaleRate > 0.0 || meterNanRate > 0.0 ||
           esdLossRate > 0.0 || esdFadeRate > 0.0 ||
           actuationFailRate > 0.0 || appKillRate > 0.0 ||
           nodeCrashRate > 0.0 || !schedule.empty();
}

void
FaultPlanConfig::setAmbientRate(double r)
{
    psm_assert(r >= 0.0 && r < 1.0);
    // Meter rolls happen every control period, so they carry the
    // nominal rate; destructive faults are scaled down so an ambient
    // 1-5% rate perturbs a run without depopulating it, and node
    // crashes (rolled once per cluster interval, which is far less
    // often) are scaled up so they actually occur in short replays.
    meterStaleRate = r;
    meterNanRate = r * 0.5;
    esdLossRate = r * 0.25;
    esdFadeRate = r * 0.1;
    actuationFailRate = r * 0.25;
    appKillRate = r * 0.05;
    nodeCrashRate = std::min(0.5, r * 2.0);
}

double
FaultPlanConfig::ambientRateFromEnv()
{
    const char *env = std::getenv("PSM_FAULT_RATE");
    if (env == nullptr || *env == '\0')
        return 0.0;
    char *end = nullptr;
    double r = std::strtod(env, &end);
    if (end == env || r <= 0.0 || r >= 1.0) {
        warn("ignoring invalid PSM_FAULT_RATE '%s' (want 0 < r < 1)",
             env);
        return 0.0;
    }
    return r;
}

FaultInjector::FaultInjector(FaultPlanConfig config,
                             std::uint64_t stream)
    : cfg(std::move(config)), stream_id(stream)
{
}

namespace
{

/** splitmix64 finalizer: well-mixed 64-bit hash step. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

bool
FaultInjector::scheduled(FaultKind kind, Tick now,
                         std::int64_t target) const
{
    for (const FaultWindow &w : cfg.schedule) {
        if (w.kind != kind || now < w.start || now >= w.end)
            continue;
        if (w.target < 0 || w.target == target)
            return true;
    }
    return false;
}

bool
FaultInjector::inject(FaultKind kind, Tick now, std::uint64_t salt,
                      std::int64_t target) const
{
    if (scheduled(kind, now, target))
        return true;
    double p = cfg.rate(kind);
    if (p <= 0.0)
        return false;
    // Counter-based roll: hash the full identity of this decision so
    // the outcome is independent of evaluation order and thread
    // count.  Top 53 bits -> uniform in [0, 1).
    std::uint64_t h =
        mix(cfg.seed ^
            mix(stream_id ^
                mix(static_cast<std::uint64_t>(kind) ^
                    mix(static_cast<std::uint64_t>(now) ^
                        mix(salt)))));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < p;
}

} // namespace psm::util
