/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * All stochastic behaviour in the simulator (trace generation, sampling
 * choices, workload phase jitter) flows through Rng instances so that a
 * run is exactly reproducible from its seed.
 */

#ifndef PSM_UTIL_RANDOM_HH
#define PSM_UTIL_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

namespace psm
{

/**
 * A seedable random source wrapping std::mt19937_64 with convenience
 * draws used throughout the simulator.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for replay). */
    explicit Rng(std::uint64_t seed = 0x5eedULL) : engine(seed) {}

    /** Re-seed the generator, restarting the stream. */
    void reseed(std::uint64_t seed) { engine.seed(seed); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        return std::uniform_int_distribution<int>(lo, hi)(engine);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Exponential draw with the given rate (mean = 1/rate). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine);
    }

    /** Bernoulli draw: true with probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Sample k distinct indices from [0, n) without replacement
     * (Fisher-Yates over an index vector).
     */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<int>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Access the underlying engine for std distributions. */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace psm

#endif // PSM_UTIL_RANDOM_HH
