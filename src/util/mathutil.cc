#include "mathutil.hh"

#include <cmath>

#include "logging.hh"

namespace psm
{

std::vector<double>
linspace(double lo, double hi, std::size_t n)
{
    psm_assert(n >= 2);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = lerp(lo, hi,
                      static_cast<double>(i) / static_cast<double>(n - 1));
    }
    return out;
}

double
interpolate(const std::vector<double> &xs, const std::vector<double> &ys,
            double x)
{
    psm_assert(xs.size() == ys.size() && !xs.empty());
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    // Binary search for the bracketing segment.
    std::size_t lo = 0;
    std::size_t hi = xs.size() - 1;
    while (hi - lo > 1) {
        std::size_t mid = (lo + hi) / 2;
        if (xs[mid] <= x)
            lo = mid;
        else
            hi = mid;
    }
    double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return lerp(ys[lo], ys[hi], t);
}

double
quantize(double value, double step)
{
    psm_assert(step > 0.0);
    return std::round(value / step) * step;
}

double
saturating(double x, double ceiling, double k)
{
    if (x <= 0.0)
        return 0.0;
    return ceiling * (1.0 - std::exp(-k * x));
}

double
amdahlSpeedup(double n, double parallel_fraction)
{
    psm_assert(n >= 1.0);
    psm_assert(parallel_fraction >= 0.0 && parallel_fraction <= 1.0);
    double serial = 1.0 - parallel_fraction;
    return 1.0 / (serial + parallel_fraction / n);
}

} // namespace psm
