/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * Production servers lose sensors, batteries, nodes, and applications
 * at inconvenient times; the control plane has to degrade instead of
 * crash.  This header provides the injection side of that story: a
 * `FaultInjector` that components consult at their natural decision
 * points ("should the meter read fail this poll?", "does this node
 * crash this interval?").
 *
 * Every roll is a pure function of (seed, stream, kind, tick, salt) —
 * there is no stateful RNG stream to consume, so the fault schedule
 * for a given seed is identical regardless of thread count, call
 * order, or which other components also roll.  This is what makes a
 * faulted run replayable at any `PSM_THREADS`.
 *
 * The injector lives in `util` and therefore knows nothing about
 * telemetry; the call sites in `core`/`cluster` count the `fault.*`
 * and `degraded.*` events.
 */

#ifndef PSM_UTIL_FAULT_HH
#define PSM_UTIL_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace psm::util
{

/** The fault classes the injector can produce. */
enum class FaultKind {
    MeterStale,     ///< power meter returns a stale reading
    MeterNan,       ///< power meter returns garbage (NaN)
    EsdLoss,        ///< ESD/battery becomes unavailable mid-run
    EsdFade,        ///< ESD capacity fades (aging, cell failure)
    ActuationStuck, ///< per-app knob actuation fails to apply
    NodeCrash,      ///< a cluster node crashes for an interval
    AppKill,        ///< an app is killed without finishing
};

/** Stable short name for a fault kind ("meter_stale", ...). */
std::string faultKindName(FaultKind kind);

/**
 * A scheduled fault: deterministically active for every roll of
 * @p kind whose tick falls in [start, end) and whose target matches.
 */
struct FaultWindow
{
    FaultKind kind = FaultKind::MeterStale;
    Tick start = 0;        ///< first tick the window is active
    Tick end = maxTick;    ///< first tick past the window
    std::int64_t target = -1; ///< app id / node index; -1 matches any
};

/**
 * Fault plan: per-kind ambient probabilities plus explicit scheduled
 * windows.  Probabilities are per-roll — components roll once per
 * control period (meters, ESD, kills) or once per cluster interval
 * (node crashes), so a rate of 0.02 means "2% of polls fault".
 */
struct FaultPlanConfig
{
    double meterStaleRate = 0.0;
    double meterNanRate = 0.0;
    double esdLossRate = 0.0;
    double esdFadeRate = 0.0;
    double actuationFailRate = 0.0;
    double appKillRate = 0.0;
    double nodeCrashRate = 0.0;

    /** How long an injected ESD loss lasts before restoration. */
    Tick esdOutage = toTicks(5.0);
    /** Capacity multiplier applied by each EsdFade event. */
    double fadeFactor = 0.9;

    /** Explicit deterministic fault windows (checked before rolls). */
    std::vector<FaultWindow> schedule;

    /**
     * Seed for the roll hash.  0 means "derive from the owning
     * component's seed" (manager seed, pool seed base) so one
     * top-level seed reproduces the whole fault schedule.
     */
    std::uint64_t seed = 0;

    /** Ambient probability for @p kind. */
    double rate(FaultKind kind) const;

    /** True when any rate is positive or any window is scheduled. */
    bool enabled() const;

    /**
     * Derive the per-kind rates from one ambient rate @p r, scaled so
     * frequent rolls (meter, per control period) fault at @p r while
     * destructive ones (kills, node crashes) fault correspondingly
     * less often.  Used by the `PSM_FAULT_RATE` ambient mode and by
     * `bench_faults` rate sweeps.
     */
    void setAmbientRate(double r);

    /** Parse `PSM_FAULT_RATE` from the environment (0 when unset). */
    static double ambientRateFromEnv();
};

/**
 * Stateless fault oracle.  `inject()` answers "does a fault of this
 * kind occur at this tick (for this target)?" by first consulting the
 * scheduled windows and then hashing (seed, stream, kind, tick, salt)
 * into a uniform variate compared against the kind's ambient rate.
 */
class FaultInjector
{
  public:
    /** Disabled injector: every roll answers no. */
    FaultInjector() = default;

    /**
     * @param config Fault plan (probabilities + schedule + seed).
     * @param stream Optional sub-stream id so two components sharing
     *               a seed (e.g. manager vs. pool) roll independently.
     */
    explicit FaultInjector(FaultPlanConfig config,
                           std::uint64_t stream = 0);

    const FaultPlanConfig &config() const { return cfg; }
    bool enabled() const { return cfg.enabled(); }

    /**
     * Roll for a fault of @p kind at tick @p now.
     *
     * @param salt Distinguishes otherwise-identical rolls at the same
     *             tick (app id, node index, attempt counter).
     * @param target Identity checked against scheduled windows; pass
     *             the app id / node index when windows should be able
     *             to single one out (-1 rolls match any-target
     *             windows only).
     */
    bool inject(FaultKind kind, Tick now, std::uint64_t salt = 0,
                std::int64_t target = -1) const;

    /** True when a scheduled window for @p kind covers @p now. */
    bool scheduled(FaultKind kind, Tick now,
                   std::int64_t target = -1) const;

  private:
    FaultPlanConfig cfg;
    std::uint64_t stream_id = 0;
};

} // namespace psm::util

#endif // PSM_UTIL_FAULT_HH
