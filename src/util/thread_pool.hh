/**
 * @file
 * A fixed-size worker pool for the performance layer.
 *
 * The simulator's hot paths — stepping N independent cluster nodes
 * through an interval, solving the per-row/per-column ridge systems
 * of an ALS sweep — are embarrassingly parallel: every unit of work
 * writes disjoint state.  The pool exploits that without giving up
 * reproducibility: parallelFor() partitions an index range and each
 * index writes only its own slice, so results are bit-identical to a
 * serial run regardless of worker count or scheduling.
 *
 * Sizing: the process-wide pool (global()) reads PSM_THREADS, falling
 * back to std::thread::hardware_concurrency().  With one worker every
 * entry point runs inline on the caller — the serial baseline — so
 * PSM_THREADS=1 recovers the pre-pool execution exactly.
 *
 * Nesting: a parallelFor() issued from inside a pool task runs inline
 * on that worker.  This keeps nested parallel regions (a cluster step
 * whose per-node control plane fits an ALS model) deadlock-free and
 * bounds total concurrency at the pool width.
 */

#ifndef PSM_UTIL_THREAD_POOL_HH
#define PSM_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psm::util
{

/**
 * Fixed-width pool with a shared task queue.  The caller of every
 * blocking entry point (parallelFor, invoke) participates in draining
 * the queue, so a pool of width W applies W threads of compute: W-1
 * workers plus the caller.
 */
class ThreadPool
{
  public:
    /**
     * @param width Total concurrency (caller included).  0 picks the
     *        environment default: PSM_THREADS, else
     *        hardware_concurrency().
     */
    explicit ThreadPool(unsigned width = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency this pool applies (>= 1, caller included). */
    unsigned width() const { return n_width; }

    /**
     * Run body(i) for every i in [0, n), partitioned into chunks and
     * executed across the pool; returns when all n calls finished.
     * Each index must write only state no other index touches — then
     * the result is independent of the partitioning and identical to
     * the serial loop.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Range flavour of parallelFor: body(begin, end) per chunk, for
     * loops that want to hoist per-chunk scratch state.
     */
    void parallelForRange(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t)> &body);

    /** Run two independent tasks concurrently; returns when both did. */
    void invoke(const std::function<void()> &a,
                const std::function<void()> &b);

    // --- Backlog gauges (lock-free reads) ----------------------------
    //
    // The serving layer's admission controller and Telemetry read
    // these to observe pool pressure instead of guessing.  Both count
    // only tasks that went through the shared queue: chunks a blocking
    // caller runs inline on itself are not backlog.

    /** Tasks currently waiting in the shared queue. */
    std::size_t queueDepth() const
    {
        return n_queued.load(std::memory_order_relaxed);
    }

    /** Dequeued tasks currently executing (workers or helping
     * callers). */
    std::size_t inflight() const
    {
        return n_inflight.load(std::memory_order_relaxed);
    }

    /**
     * The process-wide pool, built on first use from PSM_THREADS /
     * hardware_concurrency.
     */
    static ThreadPool &global();

    /**
     * Rebuild the process-wide pool at the given width (0 = the
     * environment default).  Must not race with work on the old pool;
     * intended for benches sweeping thread counts and for tests.
     */
    static void configureGlobal(unsigned width);

    /** The width the environment asks for (PSM_THREADS or hardware). */
    static unsigned envWidth();

  private:
    /** Completion state of one blocking call's set of tasks. */
    struct Batch
    {
        std::mutex mtx;
        std::condition_variable done;
        std::size_t pending = 0;
    };

    unsigned n_width = 1;
    std::atomic<std::size_t> n_queued{0};
    std::atomic<std::size_t> n_inflight{0};
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cv_work; ///< workers: queue non-empty/stop
    bool stopping = false;

    void workerLoop();

    /**
     * Caller-side wait: drain queued tasks (own or foreign) until the
     * batch's pending count reaches zero, then return.
     */
    void helpWhilePending(Batch &batch);
};

} // namespace psm::util

#endif // PSM_UTIL_THREAD_POOL_HH
