#include "thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "logging.hh"

namespace psm::util
{

namespace
{

/** Set while this thread is executing a pool task: nested parallel
 * regions run inline so total concurrency stays at the pool width. */
thread_local bool in_pool_task = false;

/** Upper bound on configurable width; PSM_THREADS beyond this is a
 * configuration mistake, not a real machine. */
constexpr unsigned maxWidth = 256;

} // namespace

unsigned
ThreadPool::envWidth()
{
    const char *env = std::getenv("PSM_THREADS");
    if (env && *env != '\0') { // PSM_THREADS= means unset
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0' || v == 0 || v > maxWidth)
            fatal("PSM_THREADS='%s' is not a thread count in [1, %u]",
                  env, maxWidth);
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, hw);
}

ThreadPool::ThreadPool(unsigned width)
    : n_width(width == 0 ? envWidth() : std::min(width, maxWidth))
{
    // Width counts the caller; spawn one fewer worker thread.
    for (unsigned w = 1; w < n_width; ++w)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lk(mtx);
        stopping = true;
    }
    cv_work.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> fn;
        {
            std::unique_lock lk(mtx);
            cv_work.wait(lk,
                         [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            fn = std::move(queue.front());
            queue.pop_front();
        }
        n_queued.fetch_sub(1, std::memory_order_relaxed);
        n_inflight.fetch_add(1, std::memory_order_relaxed);
        in_pool_task = true;
        fn();
        in_pool_task = false;
        n_inflight.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
ThreadPool::helpWhilePending(Batch &batch)
{
    for (;;) {
        {
            std::lock_guard g(batch.mtx);
            if (batch.pending == 0)
                return;
        }
        std::function<void()> fn;
        {
            std::lock_guard lk(mtx);
            if (!queue.empty()) {
                fn = std::move(queue.front());
                queue.pop_front();
            }
        }
        if (fn) {
            n_queued.fetch_sub(1, std::memory_order_relaxed);
            n_inflight.fetch_add(1, std::memory_order_relaxed);
            in_pool_task = true;
            fn();
            in_pool_task = false;
            n_inflight.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        // Nothing left to steal; the stragglers are on workers.
        std::unique_lock g(batch.mtx);
        batch.done.wait(g, [&batch] { return batch.pending == 0; });
        return;
    }
}

void
ThreadPool::parallelForRange(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (n == 0)
        return;
    if (n_width <= 1 || in_pool_task || n == 1) {
        body(0, n);
        return;
    }

    // Over-decompose (4 chunks per thread) so the caller and any
    // worker finishing early can steal the tail.
    std::size_t chunks =
        std::min(n, static_cast<std::size_t>(n_width) * 4);
    std::size_t chunk = (n + chunks - 1) / chunks;
    chunks = (n + chunk - 1) / chunk;

    Batch batch;
    batch.pending = chunks;
    {
        std::lock_guard lk(mtx);
        for (std::size_t c = 1; c < chunks; ++c) {
            std::size_t lo = c * chunk;
            std::size_t hi = std::min(n, lo + chunk);
            queue.push_back([&body, &batch, lo, hi] {
                body(lo, hi);
                // Notify while holding the lock: the caller destroys
                // the Batch the moment it can observe pending == 0,
                // so nothing may touch it after the unlock.
                std::lock_guard g(batch.mtx);
                --batch.pending;
                batch.done.notify_one();
            });
            n_queued.fetch_add(1, std::memory_order_relaxed);
        }
    }
    cv_work.notify_all();

    // The caller takes the first chunk, then helps with the rest.
    body(0, std::min(n, chunk));
    {
        std::lock_guard g(batch.mtx);
        --batch.pending;
    }
    helpWhilePending(batch);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    parallelForRange(n, [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            body(i);
    });
}

void
ThreadPool::invoke(const std::function<void()> &a,
                   const std::function<void()> &b)
{
    if (n_width <= 1 || in_pool_task) {
        a();
        b();
        return;
    }
    Batch batch;
    batch.pending = 1;
    {
        std::lock_guard lk(mtx);
        queue.push_back([&a, &batch] {
            a();
            // Same destroy-race guard as parallelForRange: notify
            // under the lock.
            std::lock_guard g(batch.mtx);
            --batch.pending;
            batch.done.notify_one();
        });
        n_queued.fetch_add(1, std::memory_order_relaxed);
    }
    cv_work.notify_one();
    b();
    helpWhilePending(batch);
}

namespace
{
std::unique_ptr<ThreadPool> global_pool;
std::mutex global_mtx;
} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard lk(global_mtx);
    if (!global_pool)
        global_pool = std::make_unique<ThreadPool>();
    return *global_pool;
}

void
ThreadPool::configureGlobal(unsigned width)
{
    std::lock_guard lk(global_mtx);
    global_pool.reset(); // join the old workers first
    global_pool = std::make_unique<ThreadPool>(width);
}

} // namespace psm::util
