/**
 * @file
 * Checked numeric parsing for command-line and config input.
 *
 * The std::atoi/atof family silently returns 0 on garbage and has
 * undefined behaviour on overflow, which turns a typo'd flag into a
 * daemon quietly listening on port 0.  These helpers wrap strtol /
 * strtod with the full error protocol: the WHOLE string must parse
 * (no trailing junk), the value must be in range, and doubles must be
 * finite.  They return false instead of guessing so the caller can
 * print the offending text and exit with usage.
 */

#ifndef PSM_UTIL_PARSE_HH
#define PSM_UTIL_PARSE_HH

#include <cstdint>

namespace psm::util
{

/**
 * Parse the whole of @p text as a base-10 long.  Leading whitespace
 * is accepted (strtol semantics); empty strings, trailing garbage
 * ("12x"), bare signs and out-of-range values are rejected.
 *
 * @return true and sets @p out on success; false leaves @p out
 *         untouched.
 */
bool parseLong(const char *text, long &out);

/** parseLong plus a [lo, hi] range check (inclusive). */
bool parseLongInRange(const char *text, long lo, long hi, long &out);

/**
 * Parse the whole of @p text as a finite double.  Rejects empty
 * strings, trailing garbage, overflow to +-inf and explicit
 * "nan"/"inf" spellings (a power cap of NaN is never what the
 * operator meant).
 */
bool parseFiniteDouble(const char *text, double &out);

/** Parse a TCP port: an integer in [1, 65535] (0 is the kernel's
 * "pick for me" wildcard, which a daemon that prints its port should
 * never silently accept). */
bool parsePort(const char *text, std::uint16_t &out);

} // namespace psm::util

#endif // PSM_UTIL_PARSE_HH
