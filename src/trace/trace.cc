#include "trace.hh"

#include <algorithm>
#include <unordered_map>

namespace psm::trace
{

namespace
{

constexpr std::string_view kEventNames[] = {
#define PSM_TRACE_EVENT(id, kind, name) name,
#include "events.def"
#undef PSM_TRACE_EVENT
};

constexpr EventKind kEventKinds[] = {
#define PSM_TRACE_EVENT(id, kind, name) EventKind::kind,
#include "events.def"
#undef PSM_TRACE_EVENT
};

static_assert(sizeof(kEventNames) / sizeof(kEventNames[0]) ==
                  kEventCount,
              "registry tables out of sync");

/** name -> id index, built once on first lookup. */
const std::unordered_map<std::string_view, EventId> &
nameIndex()
{
    static const auto *index = [] {
        auto *m = new std::unordered_map<std::string_view, EventId>();
        m->reserve(kEventCount);
        for (std::size_t i = 0; i < kEventCount; ++i)
            m->emplace(kEventNames[i], static_cast<EventId>(i));
        return m;
    }();
    return *index;
}

} // namespace

std::string_view
eventName(EventId id)
{
    return kEventNames[static_cast<std::size_t>(id)];
}

EventKind
eventKind(EventId id)
{
    return kEventKinds[static_cast<std::size_t>(id)];
}

bool
lookupEvent(std::string_view name, EventId &out)
{
    const auto &index = nameIndex();
    auto it = index.find(name);
    if (it == index.end())
        return false;
    out = it->second;
    return true;
}

void
TraceSink::fold() const
{
    for (const TraceRecord &rec : ring) {
        auto ix = static_cast<std::size_t>(rec.event);
        touched_flags[ix] = 1;
        switch (static_cast<EventKind>(rec.kind)) {
          case EventKind::Counter:
            counter_agg[ix] += rec.value;
            break;
          case EventKind::Timer: {
            TimerAgg &t = timer_agg[ix];
            ++t.count;
            t.total += rec.value;
            t.max = std::max(t.max, rec.value);
            break;
          }
          case EventKind::Gauge:
            counter_agg[ix] = rec.value;
            break;
        }
    }
    ring.clear();
}

std::uint64_t
TraceSink::counterValue(EventId id) const
{
    fold();
    return counter_agg[static_cast<std::size_t>(id)];
}

TimerAgg
TraceSink::timerValue(EventId id) const
{
    fold();
    return timer_agg[static_cast<std::size_t>(id)];
}

bool
TraceSink::touched(EventId id) const
{
    fold();
    return touched_flags[static_cast<std::size_t>(id)] != 0;
}

void
TraceSink::addTimer(EventId id, const TimerAgg &agg)
{
    if (agg.count == 0)
        return;
    fold();
    auto ix = static_cast<std::size_t>(id);
    touched_flags[ix] = 1;
    TimerAgg &t = timer_agg[ix];
    t.count += agg.count;
    t.total += agg.total;
    t.max = std::max(t.max, agg.max);
    ++seq_counter;
}

void
TraceSink::mergeFrom(const TraceSink &other)
{
    if (other.empty())
        return;
    fold();
    other.fold();
    for (std::size_t i = 0; i < kEventCount; ++i) {
        if (!other.touched_flags[i])
            continue;
        touched_flags[i] = 1;
        switch (kEventKinds[i]) {
          case EventKind::Counter:
            counter_agg[i] += other.counter_agg[i];
            break;
          case EventKind::Timer: {
            TimerAgg &t = timer_agg[i];
            const TimerAgg &o = other.timer_agg[i];
            t.count += o.count;
            t.total += o.total;
            t.max = std::max(t.max, o.max);
            break;
          }
          case EventKind::Gauge:
            counter_agg[i] = other.counter_agg[i];
            break;
        }
    }
    seq_counter += other.seq_counter;
}

void
TraceSink::reset()
{
    ring.clear();
    seq_counter = 0;
    counter_agg.fill(0);
    timer_agg.fill(TimerAgg{});
    touched_flags.fill(0);
}

} // namespace psm::trace
