#include "log.hh"

#include <cstring>

namespace psm::trace
{

namespace
{

/** 64 MiB: far beyond any sane capture record; bounds corrupt reads. */
constexpr std::uint32_t kMaxRecordLength = 64u << 20;

bool
writeBytes(std::ofstream &out, const void *data, std::size_t n)
{
    out.write(static_cast<const char *>(data),
              static_cast<std::streamsize>(n));
    return out.good();
}

bool
writeU32(std::ofstream &out, std::uint32_t v)
{
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (i * 8));
    return writeBytes(out, b, sizeof(b));
}

bool
writeU64(std::ofstream &out, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (i * 8));
    return writeBytes(out, b, sizeof(b));
}

bool
readBytes(std::ifstream &in, void *data, std::size_t n)
{
    in.read(static_cast<char *>(data),
            static_cast<std::streamsize>(n));
    return in.gcount() == static_cast<std::streamsize>(n);
}

bool
readU32(std::ifstream &in, std::uint32_t &v)
{
    std::uint8_t b[4];
    if (!readBytes(in, b, sizeof(b)))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (i * 8);
    return true;
}

bool
readU64(std::ifstream &in, std::uint64_t &v)
{
    std::uint8_t b[8];
    if (!readBytes(in, b, sizeof(b)))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (i * 8);
    return true;
}

} // namespace

void
putF64(std::vector<std::uint8_t> &buf, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(buf, bits);
}

bool
ByteCursor::getF64(double &v)
{
    std::uint64_t bits;
    if (!getU64(bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
LogWriter::open(const std::string &path)
{
    out.open(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
        return false;
    if (!writeU64(out, kLogMagic) || !writeU32(out, kLogVersion)) {
        out.close();
        return false;
    }
    return true;
}

bool
LogWriter::writeRecord(std::uint8_t type,
                       const std::vector<std::uint8_t> &payload)
{
    if (!out.is_open())
        return false;
    if (!writeBytes(out, &type, 1) ||
        !writeU32(out, static_cast<std::uint32_t>(payload.size())))
        return false;
    if (!payload.empty() &&
        !writeBytes(out, payload.data(), payload.size()))
        return false;
    return true;
}

void
LogWriter::close()
{
    if (out.is_open()) {
        out.flush();
        out.close();
    }
}

bool
LogReader::open(const std::string &path, std::string &error)
{
    in.open(path, std::ios::binary);
    if (!in.is_open()) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    if (!readU64(in, magic) || magic != kLogMagic) {
        error = "'" + path + "' is not a psm trace log (bad magic)";
        return false;
    }
    if (!readU32(in, version) || version != kLogVersion) {
        error = "unsupported trace log version";
        return false;
    }
    return true;
}

bool
LogReader::readRecord(std::uint8_t &type,
                      std::vector<std::uint8_t> &payload)
{
    err.clear();
    std::uint8_t t = 0;
    if (!readBytes(in, &t, 1))
        return false; // clean EOF
    std::uint32_t len = 0;
    if (!readU32(in, len) || len > kMaxRecordLength) {
        err = "truncated or corrupt record header";
        return false;
    }
    payload.resize(len);
    if (len > 0 && !readBytes(in, payload.data(), len)) {
        err = "truncated record payload";
        return false;
    }
    type = t;
    return true;
}

} // namespace psm::trace
