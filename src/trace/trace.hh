/**
 * @file
 * The trace core: compile-time event ids, fixed-size binary trace
 * records and per-shard ring-buffer sinks with a post-hoc merge.
 *
 * This layer replaces the string-keyed hot path of the Telemetry bus.
 * Publishing appends one 16-byte TraceRecord to a private ring — no
 * allocation, no string hashing, no map walk — and aggregation
 * happens post hoc: the ring is folded into dense per-event arrays
 * when it fills, when a value is read, or when sinks merge.  Merging
 * two sinks is an O(#events) array add instead of an O(n log n)
 * string-map fold, which is what keeps per-node shard merges flat as
 * the cluster layer scales toward thousands of nodes.
 *
 * The event registry lives in events.def (X-macro): one dense id per
 * name the control plane publishes.  The legacy string API resolves
 * names to ids through lookupEvent(); unknown names stay on the
 * façade's overflow map, so arbitrary test keys keep working.
 *
 * The sink is intentionally single-writer (one shard per thread or
 * per work index, exactly like the TelemetryShards discipline); the
 * deterministic merge order is the caller's, so aggregate state is
 * bit-identical across PSM_THREADS widths.
 */

#ifndef PSM_TRACE_TRACE_HH
#define PSM_TRACE_TRACE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace psm::trace
{

/** What one event's aggregate means. */
enum class EventKind : std::uint8_t
{
    Counter = 0, ///< monotonic tally; merge adds
    Timer,       ///< duration observations; merge folds count/total/max
    Gauge,       ///< last-value sample; merge keeps the later write
};

/** Dense compile-time event ids, one per registry row. */
enum class EventId : std::uint16_t
{
#define PSM_TRACE_EVENT(id, kind, name) id,
#include "events.def"
#undef PSM_TRACE_EVENT
};

/** Number of registered events (== one past the last EventId). */
inline constexpr std::size_t kEventCount = []() {
    std::size_t n = 0;
#define PSM_TRACE_EVENT(id, kind, name) ++n;
#include "events.def"
#undef PSM_TRACE_EVENT
    return n;
}();

/** The registry name of an event (the legacy bus string key). */
std::string_view eventName(EventId id);

/** The aggregate kind of an event. */
EventKind eventKind(EventId id);

/**
 * Resolve a legacy string key to its dense id.
 * @return true and sets @p out when the name is registered.
 */
bool lookupEvent(std::string_view name, EventId &out);

/**
 * One published observation, fixed-size and binary: what travels
 * through the ring buffers and what a binary trace dump would write.
 */
struct TraceRecord
{
    std::uint16_t event = 0; ///< EventId
    std::uint8_t kind = 0;   ///< EventKind (self-describing streams)
    std::uint8_t flags = 0;  ///< reserved
    std::uint32_t seq = 0;   ///< per-sink publish sequence
    std::uint64_t value = 0; ///< delta (Counter), ticks (Timer), sample (Gauge)
};

static_assert(sizeof(TraceRecord) == 16,
              "TraceRecord must stay fixed-size and 16 bytes");

/** Aggregate of one Timer event. */
struct TimerAgg
{
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    std::uint64_t max = 0;
};

/**
 * A single-writer trace sink: one bounded ring of TraceRecords plus
 * the dense aggregate arrays the ring folds into.
 *
 * Publish paths (count/observe/gauge) only append to the ring; all
 * aggregate reads fold lazily.  The ring is allocated on first
 * publish, so an untouched sink costs only its (zeroed) aggregate
 * arrays.
 */
class TraceSink
{
  public:
    /** Records buffered before an automatic fold. */
    static constexpr std::size_t kDefaultRingCapacity = 256;

    explicit TraceSink(std::size_t ring_capacity = kDefaultRingCapacity)
        : ring_capacity(ring_capacity ? ring_capacity : 1)
    {
    }

    /** Bump a Counter event. */
    void
    count(EventId id, std::uint64_t delta = 1)
    {
        push(id, EventKind::Counter, delta);
    }

    /** Observe one duration under a Timer event. */
    void
    observe(EventId id, std::uint64_t ticks)
    {
        push(id, EventKind::Timer, ticks);
    }

    /** Sample a Gauge event (last write wins). */
    void
    gauge(EventId id, std::uint64_t value)
    {
        push(id, EventKind::Gauge, value);
    }

    /** Counter total (or last Gauge sample) for @p id. */
    std::uint64_t counterValue(EventId id) const;

    /** Timer aggregate for @p id (zeroes when never observed). */
    TimerAgg timerValue(EventId id) const;

    /** True once @p id was published at least once (even with a zero
     * delta — mirrors the legacy map's "key exists" semantics). */
    bool touched(EventId id) const;

    /** True when nothing was ever published. */
    bool empty() const { return seq_counter == 0; }

    /** Total records published into this sink (monotonic; reads of
     * this double as a cheap change-detection generation). */
    std::uint64_t publishSeq() const { return seq_counter; }

    /**
     * Fold a pre-aggregated timer into this sink (the legacy-bus
     * bridge: a string-keyed TimerStat has no record stream to
     * replay, only its aggregate).
     */
    void addTimer(EventId id, const TimerAgg &agg);

    /**
     * Post-hoc merge: fold @p other's aggregates into this sink.
     * Counters add, timers fold count/total/max, gauges keep the
     * other sink's sample when it published one (merge order is the
     * caller's, so the result is deterministic).
     */
    void mergeFrom(const TraceSink &other);

    /** Drop everything. */
    void reset();

    /**
     * Drain the ring into the dense aggregates.  Publishing folds
     * automatically when the ring fills; readers fold lazily.  Const
     * because aggregation is observable state, not logical state.
     */
    void fold() const;

    /** Visit every touched event in id order: f(EventId). */
    template <typename F>
    void
    forEachTouched(F &&f) const
    {
        fold();
        for (std::size_t i = 0; i < kEventCount; ++i) {
            if (touched_flags[i])
                f(static_cast<EventId>(i));
        }
    }

  private:
    std::size_t ring_capacity;
    std::uint64_t seq_counter = 0;
    mutable std::vector<TraceRecord> ring;

    mutable std::array<std::uint64_t, kEventCount> counter_agg{};
    mutable std::array<TimerAgg, kEventCount> timer_agg{};
    mutable std::array<std::uint8_t, kEventCount> touched_flags{};

    void
    push(EventId id, EventKind kind, std::uint64_t value)
    {
        if (ring.capacity() == 0)
            ring.reserve(ring_capacity);
        if (ring.size() >= ring_capacity)
            fold();
        TraceRecord rec;
        rec.event = static_cast<std::uint16_t>(id);
        rec.kind = static_cast<std::uint8_t>(kind);
        rec.seq = static_cast<std::uint32_t>(seq_counter);
        rec.value = value;
        ring.push_back(rec);
        ++seq_counter;
    }
};

} // namespace psm::trace

#endif // PSM_TRACE_TRACE_HH
