/**
 * @file
 * A tiny binary record-log format: the container the deterministic
 * record/replay capture rides in.
 *
 * Layout (all little-endian):
 *
 *   [u64 magic "PSMTRLOG"] [u32 version]
 *   repeated: [u8 type] [u32 length] [length bytes payload]
 *
 * The log layer knows nothing about payload contents — the serve
 * layer's capture format (serve/replay.hh) defines record types and
 * encodes its own payloads with the wire-protocol codecs.  Keeping
 * the container generic means any future trace dump (binary record
 * streams, per-shard spills) reuses the same framing.
 */

#ifndef PSM_TRACE_LOG_HH
#define PSM_TRACE_LOG_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace psm::trace
{

inline constexpr std::uint64_t kLogMagic = 0x474F4C52544D5350ULL; // "PSMTRLOG"
inline constexpr std::uint32_t kLogVersion = 1;

/** Sequential writer; records are flushed on close/destruction. */
class LogWriter
{
  public:
    LogWriter() = default;

    /** Open @p path and write the header.  @return false on I/O
     * failure (the writer stays unusable). */
    bool open(const std::string &path);

    bool isOpen() const { return out.is_open(); }

    /** Append one record. */
    bool writeRecord(std::uint8_t type,
                     const std::vector<std::uint8_t> &payload);

    /** Flush and close. */
    void close();

  private:
    std::ofstream out;
};

/** Sequential reader over a log produced by LogWriter. */
class LogReader
{
  public:
    LogReader() = default;

    /** Open @p path and validate magic/version. */
    bool open(const std::string &path, std::string &error);

    /**
     * Read the next record.  @return true on success; false at clean
     * EOF or on corruption (the two are distinguished by error()).
     */
    bool readRecord(std::uint8_t &type,
                    std::vector<std::uint8_t> &payload);

    /** Non-empty when the last readRecord failure was corruption,
     * not EOF. */
    const std::string &error() const { return err; }

  private:
    std::ifstream in;
    std::string err;
};

// --- little-endian scalar helpers for payload codecs ---------------

inline void
putU8(std::vector<std::uint8_t> &buf, std::uint8_t v)
{
    buf.push_back(v);
}

inline void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

inline void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void putF64(std::vector<std::uint8_t> &buf, double v);

/** Cursor-based reader mirror of the put* helpers; every get returns
 * false on a truncated buffer and leaves the cursor unspecified. */
struct ByteCursor
{
    const std::vector<std::uint8_t> *buf = nullptr;
    std::size_t pos = 0;

    explicit ByteCursor(const std::vector<std::uint8_t> &b) : buf(&b) {}

    bool
    getU8(std::uint8_t &v)
    {
        if (pos + 1 > buf->size())
            return false;
        v = (*buf)[pos++];
        return true;
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (pos + 4 > buf->size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>((*buf)[pos++]) << (i * 8);
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (pos + 8 > buf->size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>((*buf)[pos++]) << (i * 8);
        return true;
    }

    bool getF64(double &v);

    bool atEnd() const { return pos == buf->size(); }
};

} // namespace psm::trace

#endif // PSM_TRACE_LOG_HH
