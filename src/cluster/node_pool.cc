#include "node_pool.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "perf/workloads.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm::cluster
{

namespace
{

/** Resolve the pool's fault plan: ambient env fallback + seed. */
util::FaultPlanConfig
poolFaultPlan(const NodePoolConfig &config)
{
    util::FaultPlanConfig fc = config.faults;
    if (!fc.enabled()) {
        double ambient = util::FaultPlanConfig::ambientRateFromEnv();
        if (ambient > 0.0)
            fc.setAmbientRate(ambient);
    }
    if (fc.seed == 0)
        fc.seed = config.seedBase;
    return fc;
}

} // namespace

NodePool::NodePool(const NodePoolConfig &config)
    // Stream 1 keeps pool-level rolls independent of the managers'
    // (stream 0) even when they share a seed base.
    : fault_injector(poolFaultPlan(config), 1)
{
    psm_assert(config.servers >= 1);
    auto n = static_cast<std::size_t>(config.servers);
    node_list.resize(n);
    // Building a managed node profiles the whole workload library
    // into its corpus — the dominant setup cost.  Nodes share only
    // immutable platform/workload tables, so build them in parallel.
    util::ThreadPool::global().parallelFor(n, [&](std::size_t s) {
        Node &node = node_list[s];
        node.server = std::make_unique<sim::Server>();
        if (config.esd)
            node.server->attachEsd(*config.esd);
        if (config.serverCap > 0.0)
            node.server->setCap(config.serverCap);
        if (config.managed) {
            core::ManagerConfig mc = config.manager;
            mc.seed =
                config.seedBase + static_cast<std::uint64_t>(s);
            node.manager = std::make_unique<core::ServerManager>(
                *node.server, mc);
            if (config.seedWorkloadCorpus)
                node.manager->seedCorpus(perf::workloadLibrary());
        }
    });
}

void
NodePool::isolate(Node &node, core::Telemetry &shard,
                  trace::EventId fault_counter)
{
    ++node.crashStreak;
    // First crash retries next interval; consecutive crashes back
    // off exponentially (1, 2, 4, capped at 8 intervals out).
    node.cooldown = node.crashStreak <= 1
                        ? 0
                        : std::min(1 << (node.crashStreak - 2), 8);
    shard.count(fault_counter);
    shard.count(trace::EventId::DegradedNodeIsolated);
}

void
NodePool::runAll(Tick duration, core::Telemetry *driver_tel)
{
    auto interval_start = std::chrono::steady_clock::now();
    core::TelemetryShards shards(node_list.size());
    util::ThreadPool::global().parallelFor(
        node_list.size(), [&](std::size_t s) {
            Node &node = node_list[s];
            if (!node.manager)
                return;
            core::Telemetry &shard = shards.shard(s);
            ++node.attempts;
            if (node.cooldown > 0) {
                // Still backing off after a crash: sit this interval
                // out.  The node's simulated clock simply does not
                // advance — availability loss, not time travel.
                --node.cooldown;
                shard.count(trace::EventId::DegradedNodeSkipped);
                return;
            }
            // The crash roll is keyed on per-node state only (the
            // 1-based attempt counter; a crashed node's sim clock
            // freezes, so clock-keyed rolls would repeat forever), so
            // the schedule is identical at any thread count.
            // NodeCrash schedule windows are therefore expressed in
            // attempt numbers, not sim ticks.
            bool crash = fault_injector.inject(
                util::FaultKind::NodeCrash,
                static_cast<Tick>(node.attempts),
                (static_cast<std::uint64_t>(s) << 32) ^
                    node.server->now(),
                static_cast<std::int64_t>(s));
            if (crash) {
                isolate(node, shard, trace::EventId::FaultNodeCrash);
                return;
            }
            auto t0 = std::chrono::steady_clock::now();
            try {
                node.manager->run(duration);
            } catch (const std::exception &e) {
                // A node whose control plane throws must not take the
                // whole cluster step down: isolate it like a crash.
                warn("node %zu faulted (%s); isolating", s, e.what());
                isolate(node, shard,
                        trace::EventId::FaultNodeException);
                return;
            }
            if (node.crashStreak > 0) {
                node.crashStreak = 0;
                shard.count(trace::EventId::DegradedNodeRestarted);
            }
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            shard.observe(trace::EventId::ClusterNodeStep, toTicks(secs));
        });
    // Isolation/fault counters must survive even when the driver does
    // not collect telemetry: fall back to the pool's own bus (merged
    // into aggregateTelemetry()).
    core::Telemetry &sink = driver_tel ? *driver_tel : pool_tel;
    shards.mergeInto(sink);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - interval_start)
                      .count();
    sink.observe(trace::EventId::ClusterStep, toTicks(secs));
}

Joules
NodePool::totalEnergy() const
{
    Joules total = 0.0;
    for (const Node &node : node_list)
        total += node.server->meter().totalEnergy();
    return total;
}

core::Telemetry
NodePool::aggregateTelemetry() const
{
    core::Telemetry cluster;
    cluster.merge(pool_tel);
    for (const Node &node : node_list) {
        if (node.manager)
            cluster.merge(node.manager->telemetry());
    }
    return cluster;
}

std::uint64_t
NodePool::aggregateCounter(const std::string &key) const
{
    std::uint64_t total = pool_tel.counter(key);
    for (const Node &node : node_list) {
        if (node.manager)
            total += node.manager->telemetry().counter(key);
    }
    return total;
}

core::TimerStat
NodePool::aggregateTimer(const std::string &key) const
{
    core::TimerStat agg = pool_tel.timer(key);
    for (const Node &node : node_list) {
        if (!node.manager)
            continue;
        core::TimerStat t = node.manager->telemetry().timer(key);
        agg.count += t.count;
        agg.total += t.total;
        agg.max = std::max(agg.max, t.max);
    }
    return agg;
}

void
NodePool::foldTrace(trace::TraceSink &out) const
{
    pool_tel.foldInto(out);
    for (const Node &node : node_list) {
        if (node.manager)
            node.manager->telemetry().foldInto(out);
    }
}

std::vector<NodePool::NodeSnapshot>
NodePool::snapshot() const
{
    std::vector<NodeSnapshot> out;
    out.reserve(node_list.size());
    for (const Node &node : node_list) {
        NodeSnapshot s;
        const sim::Server &srv = *node.server;
        s.now = srv.now();
        s.cap = srv.cap();
        for (const sim::Application *app : srv.apps()) {
            if (!app->finished())
                ++s.activeApps;
        }
        s.freeSockets = srv.freeSockets();
        s.energy = srv.meter().totalEnergy();
        if (node.manager) {
            s.reallocations = node.manager->reallocationCount();
            s.events = node.manager->eventLog().size();
        }
        out.push_back(s);
    }
    return out;
}

} // namespace psm::cluster
