#include "node_pool.hh"

#include "perf/workloads.hh"
#include "util/logging.hh"

namespace psm::cluster
{

NodePool::NodePool(const NodePoolConfig &config)
{
    psm_assert(config.servers >= 1);
    node_list.reserve(static_cast<std::size_t>(config.servers));
    for (int s = 0; s < config.servers; ++s) {
        Node node;
        node.server = std::make_unique<sim::Server>();
        if (config.esd)
            node.server->attachEsd(*config.esd);
        if (config.serverCap > 0.0)
            node.server->setCap(config.serverCap);
        if (config.managed) {
            core::ManagerConfig mc = config.manager;
            mc.seed =
                config.seedBase + static_cast<std::uint64_t>(s);
            node.manager = std::make_unique<core::ServerManager>(
                *node.server, mc);
            if (config.seedWorkloadCorpus)
                node.manager->seedCorpus(perf::workloadLibrary());
        }
        node_list.push_back(std::move(node));
    }
}

Joules
NodePool::totalEnergy() const
{
    Joules total = 0.0;
    for (const Node &node : node_list)
        total += node.server->meter().totalEnergy();
    return total;
}

core::Telemetry
NodePool::aggregateTelemetry() const
{
    core::Telemetry cluster;
    for (const Node &node : node_list) {
        if (node.manager)
            cluster.merge(node.manager->telemetry());
    }
    return cluster;
}

} // namespace psm::cluster
