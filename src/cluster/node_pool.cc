#include "node_pool.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "perf/workloads.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm::cluster
{

namespace
{

/** Resolve the pool's fault plan: ambient env fallback + seed. */
util::FaultPlanConfig
poolFaultPlan(const NodePoolConfig &config)
{
    util::FaultPlanConfig fc = config.faults;
    if (!fc.enabled()) {
        double ambient = util::FaultPlanConfig::ambientRateFromEnv();
        if (ambient > 0.0)
            fc.setAmbientRate(ambient);
    }
    if (fc.seed == 0)
        fc.seed = config.seedBase;
    return fc;
}

} // namespace

NodePool::NodePool(const NodePoolConfig &config)
    // Stream 1 keeps pool-level rolls independent of the managers'
    // (stream 0) even when they share a seed base.
    : fault_injector(poolFaultPlan(config), 1),
      shard_size(config.shardSize >= 1
                     ? static_cast<std::size_t>(config.shardSize)
                     : 1)
{
    psm_assert(config.servers >= 1);
    auto n = static_cast<std::size_t>(config.servers);
    node_list.resize(n);
    // Resolve any corpus override once, outside the parallel build:
    // workload() fatal()s with the valid-name list on a typo, and a
    // fatal inside a pool task would abort without that diagnostic
    // reaching the caller cleanly.
    std::vector<perf::AppProfile> corpus_override;
    if (config.seedWorkloadCorpus)
        for (const std::string &name : config.corpusWorkloads)
            corpus_override.push_back(perf::workload(name));
    // Building a managed node profiles the whole workload library
    // into its corpus — the dominant setup cost.  Nodes share only
    // immutable platform/workload tables, so build them in parallel.
    util::ThreadPool::global().parallelFor(n, [&](std::size_t s) {
        Node &node = node_list[s];
        node.server = std::make_unique<sim::Server>();
        if (config.esd)
            node.server->attachEsd(*config.esd);
        if (config.serverCap > 0.0)
            node.server->setCap(config.serverCap);
        if (config.managed) {
            core::ManagerConfig mc = config.manager;
            mc.seed =
                config.seedBase + static_cast<std::uint64_t>(s);
            node.manager = std::make_unique<core::ServerManager>(
                *node.server, mc);
            if (config.seedWorkloadCorpus) {
                node.manager->seedCorpus(
                    corpus_override.empty() ? perf::workloadLibrary()
                                            : corpus_override);
            }
        }
    });
}

void
NodePool::isolate(Node &node, core::Telemetry &shard,
                  trace::EventId fault_counter)
{
    // Saturate the streak: its only uses are the <= 1 retry test and
    // the clamped shift below, and an unbounded int would overflow
    // (UB) on a node that crashes for years.
    if (node.crashStreak < 1 << 20)
        ++node.crashStreak;
    // First crash retries next interval; consecutive crashes back
    // off exponentially (1, 2, 4, capped at 8 intervals out).  The
    // shift amount itself is clamped — `1 << (streak - 2)` alone is
    // undefined once the streak passes the width of int.
    node.cooldown = node.crashStreak <= 1
                        ? 0
                        : 1 << std::min(node.crashStreak - 2, 3);
    shard.count(fault_counter);
    shard.count(trace::EventId::DegradedNodeIsolated);
}

void
NodePool::stepNode(std::size_t ix, Tick duration,
                   core::Telemetry &shard)
{
    Node &node = node_list[ix];
    if (!node.manager)
        return;
    ++node.attempts;
    if (node.cooldown > 0) {
        // Still backing off after a crash: sit this interval out.
        // The node's simulated clock simply does not advance —
        // availability loss, not time travel.
        --node.cooldown;
        shard.count(trace::EventId::DegradedNodeSkipped);
        return;
    }
    // The crash roll is keyed on per-node state only (the 1-based
    // attempt counter; a crashed node's sim clock freezes, so
    // clock-keyed rolls would repeat forever), so the schedule is
    // identical at any thread count.  NodeCrash schedule windows are
    // therefore expressed in attempt numbers, not sim ticks.
    bool crash = fault_injector.inject(
        util::FaultKind::NodeCrash, static_cast<Tick>(node.attempts),
        (static_cast<std::uint64_t>(ix) << 32) ^ node.server->now(),
        static_cast<std::int64_t>(ix));
    if (crash) {
        isolate(node, shard, trace::EventId::FaultNodeCrash);
        return;
    }
    auto t0 = std::chrono::steady_clock::now();
    try {
        node.manager->run(duration);
    } catch (const std::exception &e) {
        // A node whose control plane throws must not take the whole
        // cluster step down: isolate it like a crash.
        warn("node %zu faulted (%s); isolating", ix, e.what());
        isolate(node, shard, trace::EventId::FaultNodeException);
        return;
    }
    if (node.crashStreak > 0) {
        node.crashStreak = 0;
        shard.count(trace::EventId::DegradedNodeRestarted);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    shard.observe(trace::EventId::ClusterNodeStep, toTicks(secs));
}

void
NodePool::runAll(Tick duration, core::Telemetry *driver_tel)
{
    auto interval_start = std::chrono::steady_clock::now();
    // Contiguous per-shard batches.  The partition depends only on
    // shard_size — never on the thread count — and every publish on
    // the step path is a commutative counter/timer aggregate, so the
    // shard-order merge below is bit-identical to the serial loop at
    // any PSM_THREADS and any shard size.  No lock is taken anywhere
    // on the step path: a shard's nodes and its sink belong to
    // exactly one worker for the duration of the interval.
    std::size_t n = node_list.size();
    std::size_t n_shards = (n + shard_size - 1) / shard_size;
    core::TelemetryShards shards(n_shards);
    util::ThreadPool::global().parallelFor(
        n_shards, [&](std::size_t sh) {
            core::Telemetry &shard = shards.shard(sh);
            std::size_t lo = sh * shard_size;
            std::size_t hi = std::min(n, lo + shard_size);
            for (std::size_t s = lo; s < hi; ++s)
                stepNode(s, duration, shard);
        });
    // Isolation/fault counters must survive even when the driver does
    // not collect telemetry: fall back to the pool's own bus (merged
    // into aggregateTelemetry()).  Trace-backend shard merges are
    // dense O(#events) array folds.
    core::Telemetry &sink = driver_tel ? *driver_tel : pool_tel;
    shards.mergeInto(sink);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - interval_start)
                      .count();
    sink.observe(trace::EventId::ClusterStep, toTicks(secs));
}

Joules
NodePool::totalEnergy() const
{
    Joules total = 0.0;
    for (const Node &node : node_list)
        total += node.server->meter().totalEnergy();
    return total;
}

core::Telemetry
NodePool::aggregateTelemetry() const
{
    core::Telemetry cluster;
    cluster.merge(pool_tel);
    for (const Node &node : node_list) {
        if (node.manager)
            cluster.merge(node.manager->telemetry());
    }
    return cluster;
}

std::uint64_t
NodePool::aggregateCounter(const std::string &key) const
{
    // Registered names: resolve the string to its dense id once,
    // then the whole fold is O(nodes) array reads.  Unregistered
    // (overflow) names keep the historical per-node string-map walk.
    trace::EventId id;
    if (trace::lookupEvent(key, id)) {
        std::uint64_t total = pool_tel.counter(id);
        for (const Node &node : node_list) {
            if (node.manager)
                total += node.manager->telemetry().counter(id);
        }
        return total;
    }
    std::uint64_t total = pool_tel.counter(key);
    for (const Node &node : node_list) {
        if (node.manager)
            total += node.manager->telemetry().counter(key);
    }
    return total;
}

core::TimerStat
NodePool::aggregateTimer(const std::string &key) const
{
    auto fold = [this](auto read) {
        core::TimerStat agg = read(pool_tel);
        for (const Node &node : node_list) {
            if (!node.manager)
                continue;
            core::TimerStat t = read(node.manager->telemetry());
            agg.count += t.count;
            agg.total += t.total;
            agg.max = std::max(agg.max, t.max);
        }
        return agg;
    };
    // Same dense-lookup rule as aggregateCounter().
    trace::EventId id;
    if (trace::lookupEvent(key, id) &&
        trace::eventKind(id) == trace::EventKind::Timer) {
        return fold([id](const core::Telemetry &tel) {
            return tel.timer(id);
        });
    }
    return fold([&key](const core::Telemetry &tel) {
        return tel.timer(key);
    });
}

void
NodePool::foldTrace(trace::TraceSink &out) const
{
    pool_tel.foldInto(out);
    for (const Node &node : node_list) {
        if (node.manager)
            node.manager->telemetry().foldInto(out);
    }
}

std::vector<NodePool::NodeSnapshot>
NodePool::snapshot() const
{
    std::vector<NodeSnapshot> out;
    out.reserve(node_list.size());
    for (const Node &node : node_list) {
        NodeSnapshot s;
        const sim::Server &srv = *node.server;
        s.now = srv.now();
        s.cap = srv.cap();
        for (const sim::Application *app : srv.apps()) {
            if (!app->finished())
                ++s.activeApps;
        }
        s.freeSockets = srv.freeSockets();
        s.energy = srv.meter().totalEnergy();
        if (node.manager) {
            s.reallocations = node.manager->reallocationCount();
            s.events = node.manager->eventLog().size();
        }
        out.push_back(s);
    }
    return out;
}

} // namespace psm::cluster
