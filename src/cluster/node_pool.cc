#include "node_pool.hh"

#include <chrono>

#include "perf/workloads.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm::cluster
{

NodePool::NodePool(const NodePoolConfig &config)
{
    psm_assert(config.servers >= 1);
    auto n = static_cast<std::size_t>(config.servers);
    node_list.resize(n);
    // Building a managed node profiles the whole workload library
    // into its corpus — the dominant setup cost.  Nodes share only
    // immutable platform/workload tables, so build them in parallel.
    util::ThreadPool::global().parallelFor(n, [&](std::size_t s) {
        Node &node = node_list[s];
        node.server = std::make_unique<sim::Server>();
        if (config.esd)
            node.server->attachEsd(*config.esd);
        if (config.serverCap > 0.0)
            node.server->setCap(config.serverCap);
        if (config.managed) {
            core::ManagerConfig mc = config.manager;
            mc.seed =
                config.seedBase + static_cast<std::uint64_t>(s);
            node.manager = std::make_unique<core::ServerManager>(
                *node.server, mc);
            if (config.seedWorkloadCorpus)
                node.manager->seedCorpus(perf::workloadLibrary());
        }
    });
}

void
NodePool::runAll(Tick duration, core::Telemetry *driver_tel)
{
    auto interval_start = std::chrono::steady_clock::now();
    core::TelemetryShards shards(node_list.size());
    util::ThreadPool::global().parallelFor(
        node_list.size(), [&](std::size_t s) {
            Node &node = node_list[s];
            if (!node.manager)
                return;
            auto t0 = std::chrono::steady_clock::now();
            node.manager->run(duration);
            if (driver_tel) {
                double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
                shards.shard(s).observe("cluster.node_step",
                                        toTicks(secs));
            }
        });
    if (driver_tel) {
        shards.mergeInto(*driver_tel);
        double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - interval_start)
                .count();
        driver_tel->observe("cluster.step", toTicks(secs));
    }
}

Joules
NodePool::totalEnergy() const
{
    Joules total = 0.0;
    for (const Node &node : node_list)
        total += node.server->meter().totalEnergy();
    return total;
}

core::Telemetry
NodePool::aggregateTelemetry() const
{
    core::Telemetry cluster;
    for (const Node &node : node_list) {
        if (node.manager)
            cluster.merge(node.manager->telemetry());
    }
    return cluster;
}

} // namespace psm::cluster
