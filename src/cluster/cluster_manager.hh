/**
 * @file
 * Cluster-scale power management (Section IV-D, Fig. 12).
 *
 * A small private cloud of identical servers replays a dynamic
 * cluster-level power cap (peak shaving) under one of three
 * strategies:
 *
 *  - Equal(RAPL): the cluster manager splits the cap equally across
 *    servers; each server enforces its share with the Util-Unaware
 *    RAPL policy.  The paper's stand-in for today's state of the art
 *    (Dynamo-style).
 *  - Equal(Ours): equal split, but each server runs the full
 *    App+Res+ESD-Aware policy, using its battery only under very
 *    stringent caps.
 *  - Consolidation+Migration(no cap): the cluster manager powers only
 *    as many servers as the budget allows, packs applications onto
 *    them (two per server — one per socket) and leaves the powered
 *    servers uncapped.  More energy-proportional (fewer P_idle+P_cm
 *    lumps) but pays migration downtime and parks applications when
 *    slots run out.
 *
 * The default population is fully packed: mixes 1-10 of Table II,
 * one pair per server (one application per socket).  Consolidation
 * can then only shed a server by parking its pair — the
 * capacity-versus-power trade the paper's discussion turns on.
 */

#ifndef PSM_CLUSTER_CLUSTER_MANAGER_HH
#define PSM_CLUSTER_CLUSTER_MANAGER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/manager.hh"
#include "core/telemetry.hh"
#include "esd/battery.hh"
#include "node_pool.hh"
#include "perf/workloads.hh"
#include "power_trace.hh"
#include "power_tree.hh"
#include "sim/server.hh"
#include "util/units.hh"

namespace psm::cluster
{

/** The three cluster strategies of Fig. 12b. */
enum class ClusterPolicy
{
    EqualRapl,
    EqualOurs,
    ConsolidationMigration,
};

/** Printable policy name matching the paper's legend. */
std::string clusterPolicyName(ClusterPolicy policy);

/**
 * How the cluster cap reaches the servers.
 *
 * Flat is the paper's private cloud: one global equal split per cap
 * value (the seed behaviour, byte-for-byte).  Tree routes every cap
 * through a PowerTree hierarchy — per-level capacities and
 * oversubscription, epoch-cached subtree summaries, and grants
 * pushed only to servers whose share actually changed.  A depth-1
 * tree over uniform demands computes the identical cap/N share, so
 * Flat is the degenerate case Tree generalizes.
 */
enum class Topology
{
    Flat,
    Tree,
};

/** Printable topology name. */
std::string topologyName(Topology topology);

/** Cluster configuration. */
struct ClusterConfig
{
    ClusterPolicy policy = ClusterPolicy::EqualOurs;
    int servers = 10;
    /** Per-server management template (policy field is overridden). */
    core::ManagerConfig manager;
    /**
     * CLI name (PolicyRegistry) of the per-server policy the managed
     * strategies run.  Equal(RAPL) always pins util-unaware — that IS
     * the strategy; Equal(Ours) and Consolidation+Migration resolve
     * this name, so the arena can race rival per-server allocators
     * under the same cluster-level cap replay.
     */
    std::string managedPolicy = "app-res-esd-aware";
    /** Battery attached per server for Equal(Ours). */
    esd::BatteryConfig esd;
    /**
     * Downtime an application pays when migrated: checkpointing and
     * shipping multi-gigabyte state across the rack network, then
     * re-warming (the feasibility cost the paper flags for
     * consolidation).
     */
    Tick migrationDowntime = toTicks(60.0);
    /** Latency from powering a server until it can run work. */
    Tick serverBootDelay = toTicks(60.0);
    /** Draw of a powered-down server (PSU trickle / BMC). */
    Watts offServerPower = 2.0;
    std::uint64_t seed = 11;

    /** Pool-level fault plan (node crashes); per-server faults go in
     * `manager.faults`. */
    util::FaultPlanConfig faults;

    /** Nodes per telemetry shard on the pool step path. */
    int shardSize = 64;

    /**
     * Seed each node's CF corpus from the workload library.  Turn off
     * (with `manager.oracleUtilities`) for scale benches that build
     * thousands of managed nodes: an oracle control plane skips the
     * per-node corpus profiling without changing the cap-split
     * mechanics under test.
     */
    bool seedWorkloadCorpus = true;

    /**
     * Workload names to seed each node's CF corpus with instead of
     * the full batch library (empty keeps the historical default).
     * Typos used to abort deep inside the node build with a bare
     * "unknown workload" fatal; validate() now rejects them up front
     * with the valid-name list.
     */
    std::vector<std::string> corpusWorkloads;

    /**
     * Replace this many of each server's two default batch slots
     * (0, 1 or 2) with latency-critical services from the interactive
     * library in populateDefault(), rotating the library across
     * servers.  The services are open-ended (they hold their socket
     * for the whole replay) and their normalized performance is the
     * SLO-relative p99 attainment, so the cluster strategies trade
     * batch throughput against tail latency under the same cap trace.
     */
    int interactivePerServer = 0;

    ClusterConfig();

    /**
     * Check the configuration without aborting: servers >= 1,
     * managedPolicy resolves in the PolicyRegistry, every
     * corpusWorkloads name exists (perf::hasWorkload) and
     * interactivePerServer is in [0, 2].  On failure returns false
     * and, when @p error is non-null, fills it with a diagnostic that
     * lists the valid names — callers with user-supplied
     * configuration (CLI front ends, the serving layer) should call
     * this and surface the message instead of letting the constructor
     * fatal().
     */
    bool validate(std::string *error) const;

    // --- hierarchical topology (Topology::Tree only) -------------

    Topology topology = Topology::Flat;
    /** Tree levels below the root (1 = flat-equivalent). */
    int treeDepth = 1;
    /** Interior fanout; 0 derives ceil(servers^(1/depth)). */
    int treeFanout = 0;
    /** Interior oversubscription factor (>= 1; nvPAX's regime). */
    double oversubscription = 1.0;
    /** Per-server circuit capacity (<= 0: uncapped). */
    Watts leafCapacity = 0.0;
    /**
     * Water-fill each level on measured per-server demand (last
     * interval's average draw) instead of uniform weights.  Uniform
     * weights reproduce the flat equal split exactly; demand-aware
     * splitting is the FastCap-style fairness objective — servers
     * drawing more get proportionally more of the cap.
     */
    bool demandAwareSplit = false;
};

/** Outcome of one cap-trace replay. */
struct ClusterResult
{
    double aggregatePerf = 0.0;   ///< mean normalized app throughput
    Watts avgClusterPower = 0.0;  ///< time-averaged total draw
    Joules totalEnergy = 0.0;
    /** Normalized performance per average kilowatt — the paper's
     * "cluster power efficiency". */
    double perfPerKw = 0.0;
    /** Fraction of time the cluster exceeded its cap. */
    double capViolationFraction = 0.0;
    Tick duration = 0;
    std::size_t migrations = 0;   ///< consolidation only
    std::size_t parkedAppSteps = 0; ///< app-steps spent unplaced
    /** Spatial allocator invocations across every node's control
     * plane (managed replays only). */
    std::size_t allocatorCalls = 0;
    /** Wall-clock seconds those invocations cost, cluster-wide. */
    double allocatorSeconds = 0.0;

    // --- hierarchical replays (Topology::Tree only) --------------

    int treeDepth = 0;                 ///< 0 on flat replays
    std::size_t treeNodes = 0;         ///< tree nodes incl. interior
    std::uint64_t treeResolveVisits = 0; ///< splits recomputed
    std::uint64_t treeResolvePrunes = 0; ///< subtrees skipped
    /** E1 cap changes actually pushed to servers (grant changes). */
    std::uint64_t capPushes = 0;
    /** Per-interval conservation-check failures (must stay 0). */
    std::uint64_t conservationViolations = 0;
};

/**
 * The cluster: servers plus the logical application population.
 */
class ClusterManager
{
  public:
    explicit ClusterManager(ClusterConfig config = {});

    /**
     * Install the default population (mixes 1-5 paired plus five
     * singletons), with effectively infinite work per application so
     * throughput is steady-state.
     */
    void populateDefault();

    /** Number of logical applications installed. */
    std::size_t appCount() const { return ledger.size(); }

    /**
     * Replay a cluster cap trace and account performance and power.
     */
    ClusterResult replay(const PowerTrace &caps);

    /**
     * Estimated uncapped draw of the whole populated cluster, used
     * to size cap traces.
     */
    Watts uncappedDemandEstimate() const;

    /**
     * Cluster-scope telemetry: every node's control-plane bus folded
     * into one, plus the cluster driver's own counters (migrations,
     * parked app-steps).  Empty before replay().
     */
    core::Telemetry aggregateTelemetry() const;

  private:
    ClusterConfig cfg;

    /** One logical application whose beats survive migrations. */
    struct LogicalApp
    {
        perf::AppProfile profile;
        double uncappedRate = 0.0;
        double beats = 0.0;       ///< harvested from past placements
        int server = -1;          ///< current placement, -1 = parked
        int simAppId = -1;        ///< id inside the hosting server
        int homeServer = -1;      ///< placement under equal policies
        Tick resumeAt = 0;        ///< migration/boot downtime deadline
    };
    std::vector<LogicalApp> ledger;

    /** Server substrate: managed under the equal policies, raw under
     * consolidation (which never caps a powered server). */
    std::optional<NodePool> pool;

    /** Cluster-driver-level counters (migrations, parked steps). */
    core::Telemetry tel;

    // Consolidation: powered set, placement bookkeeping.
    std::vector<char> powered;
    std::size_t migration_count = 0;
    std::size_t parked_steps = 0;

    void buildNodes();
    ClusterResult replayEqual(const PowerTrace &caps);
    ClusterResult replayTree(const PowerTrace &caps);
    ClusterResult replayConsolidation(const PowerTrace &caps);

    /** Fold perf/power/violation accounting common to the managed
     * (equal and tree) replays into @p result. */
    void accountManagedReplay(ClusterResult &result) const;

    /** Estimated uncapped draw of a server hosting the given apps. */
    Watts serverDemand(const std::vector<std::size_t> &apps) const;

    /** Harvest beats from an app's current placement and remove it. */
    void unplace(std::size_t app_ix);

    /** Place an app on a powered server with a free socket. */
    void place(std::size_t app_ix, int server_ix, Tick now_downtime);
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_CLUSTER_MANAGER_HH
