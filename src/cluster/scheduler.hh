/**
 * @file
 * Cluster job scheduling integrated with per-server power management
 * — the paper's first "further research" direction (Section VI):
 * "integration with cluster/datacenter level scheduling and job
 * allocation mechanisms to individual servers".
 *
 * A stream of finite jobs is placed onto a cluster of power-capped,
 * framework-managed servers as sockets free up.  Two placement
 * policies are provided:
 *
 *  - FirstFit: the classic power-oblivious scheduler — lowest-index
 *    server with a free socket.
 *  - PowerHeadroom: power-struggle-aware — place where the gap
 *    between the server's cap and its observed draw is largest, so a
 *    new arrival causes the smallest struggle with the incumbent.
 *
 * The interesting metric is job completion time: a job placed onto a
 * server with no headroom must split a tight budget with its
 * neighbour, while the same job elsewhere runs unthrottled.
 */

#ifndef PSM_CLUSTER_SCHEDULER_HH
#define PSM_CLUSTER_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/manager.hh"
#include "core/telemetry.hh"
#include "node_pool.hh"
#include "perf/app_profile.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace psm::cluster
{

/** Placement policies for arriving jobs. */
enum class PlacementPolicy
{
    FirstFit,      ///< first server with a free socket
    PowerHeadroom, ///< most cap-minus-draw headroom
};

/** Printable placement policy name. */
std::string placementPolicyName(PlacementPolicy policy);

/** One finite job submitted to the cluster. */
struct Job
{
    perf::AppProfile profile;
    Tick arrival = 0;

    // Filled in by the scheduler.
    Tick started = maxTick;
    Tick finished = maxTick;
    int server = -1;

    bool done() const { return finished != maxTick; }

    /** Queueing + execution time; maxTick while unfinished. */
    Tick completionTime() const
    {
        return done() ? finished - arrival : maxTick;
    }
};

/** Scheduler configuration. */
struct SchedulerConfig
{
    int servers = 4;
    /** Per-server power cap (the cluster cap split equally). */
    Watts serverCap = 95.0;
    PlacementPolicy placement = PlacementPolicy::PowerHeadroom;
    core::ManagerConfig manager;
    std::uint64_t seed = 31;
};

/**
 * The job-level cluster scheduler over framework-managed servers.
 */
class ClusterScheduler
{
  public:
    explicit ClusterScheduler(SchedulerConfig config = {});

    /** Submit a job (arrival must be >= any previous arrival). */
    void submit(Job job);

    /**
     * Generate a reproducible synthetic job stream: @p count jobs
     * drawn from the workload library, exponential inter-arrivals
     * with the given mean, each sized to roughly @p mean_seconds of
     * uncapped runtime.
     *
     * @param interactive_fraction Probability that a job is drawn
     *        from the interactive library instead.  Interactive jobs
     *        are open-ended services — they hold their socket for the
     *        rest of the run and never appear in completion-time
     *        statistics; what they add is the power struggle batch
     *        jobs must complete under.  0 (the default) reproduces
     *        the historical all-batch stream bit-for-bit.
     */
    void generateWorkload(std::size_t count,
                          double mean_interarrival_s,
                          double mean_seconds,
                          double interactive_fraction = 0.0);

    /**
     * Run until every submitted job finishes or @p horizon elapses.
     */
    void run(Tick horizon);

    const std::vector<Job> &jobs() const { return job_list; }
    std::size_t unfinished() const;

    /** Mean completion (queue + run) time of finished jobs. */
    double meanCompletionSeconds() const;
    /** 95th percentile completion time of finished jobs. */
    double p95CompletionSeconds() const;
    /** Time-averaged total cluster draw. */
    Watts averageClusterPower() const;
    Tick now() const { return clock; }

    /**
     * Cluster-scope telemetry: every node's control-plane bus plus
     * the scheduler's own placement counters, folded into one.
     */
    core::Telemetry aggregateTelemetry() const;

  private:
    SchedulerConfig cfg;
    Rng rng;
    Tick clock = 0;

    /** The shared server substrate (one manager per node). */
    NodePool pool;
    /** Scheduler-level counters (placements, retargets, queueing). */
    core::Telemetry tel;
    /** Per node: jobs it is hosting, as (job index, app id). */
    std::vector<std::vector<std::pair<std::size_t, int>>> placed;
    std::vector<Job> job_list;
    std::vector<std::size_t> queue; ///< waiting job indices, FIFO

    int pickServer() const;
    void placeWaitingJobs();
    void harvestFinished();
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_SCHEDULER_HH
