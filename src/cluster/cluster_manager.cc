#include "cluster_manager.hh"

#include <algorithm>
#include <cmath>

#include "core/policy_registry.hh"
#include "perf/perf_model.hh"
#include "util/logging.hh"

namespace psm::cluster
{


std::string
clusterPolicyName(ClusterPolicy policy)
{
    switch (policy) {
      case ClusterPolicy::EqualRapl:
        return "Equal(RAPL)";
      case ClusterPolicy::EqualOurs:
        return "Equal(Ours)";
      case ClusterPolicy::ConsolidationMigration:
        return "Consolidation+Migration(no cap)";
      default:
        panic("invalid ClusterPolicy %d", static_cast<int>(policy));
    }
}

std::string
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::Flat:
        return "Flat";
      case Topology::Tree:
        return "Tree";
      default:
        panic("invalid Topology %d", static_cast<int>(topology));
    }
}

ClusterConfig::ClusterConfig() : esd(esd::leadAcidUps())
{
}

bool
ClusterConfig::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (servers < 1)
        return fail("cluster needs at least one server (servers = " +
                    std::to_string(servers) + ")");
    if (policy != ClusterPolicy::EqualRapl &&
        !core::PolicyRegistry::instance().findName(managedPolicy)) {
        return fail("unknown managed policy '" + managedPolicy +
                    "' (expected one of " +
                    core::PolicyRegistry::instance().cliNames() + ")");
    }
    for (const std::string &name : corpusWorkloads) {
        if (!perf::hasWorkload(name)) {
            return fail("unknown corpus workload '" + name +
                        "' (expected one of " + perf::workloadNames() +
                        ")");
        }
    }
    if (interactivePerServer < 0 || interactivePerServer > 2) {
        return fail("interactivePerServer must be 0, 1 or 2 (got " +
                    std::to_string(interactivePerServer) + ")");
    }
    return true;
}

ClusterManager::ClusterManager(ClusterConfig config)
    : cfg(std::move(config))
{
    // Programmatic callers that skipped validate() still get the
    // full diagnostic, just as an abort instead of a checked error.
    std::string err;
    if (!cfg.validate(&err))
        fatal("%s", err.c_str());
}

void
ClusterManager::populateDefault()
{
    psm_assert(ledger.empty());
    const auto &plat = power::defaultPlatform();

    auto add = [&](const std::string &name, int home) {
        LogicalApp app;
        app.profile = perf::workload(name);
        // Effectively endless so cluster throughput is steady-state.
        app.profile.totalHeartbeats *= 1000.0;
        perf::PerfModel model(plat, app.profile);
        app.uncappedRate = model.maxHbRate();
        app.homeServer = home;
        ledger.push_back(std::move(app));
    };

    // Interactive services keep their calibrated open-ended profile:
    // no runtime sizing, and their "throughput" is SLO attainment.
    auto addInteractive = [&](std::size_t slot, int home) {
        const auto &ilib = perf::interactiveLibrary();
        LogicalApp app;
        app.profile = ilib[slot % ilib.size()];
        perf::PerfModel model(plat, app.profile);
        app.uncappedRate = model.maxHbRate();
        app.homeServer = home;
        ledger.push_back(std::move(app));
    };

    // Mixes 1..servers of Table II, co-located pairwise: the cluster
    // is fully packed (two applications per server, one per socket),
    // so consolidation can only shed a server by parking its pair.
    // interactivePerServer swaps that many of each pair's slots for
    // latency-critical services, rotated so neighbouring servers host
    // different services (names must be unique per server, and the
    // rotation keeps consolidation able to co-locate pairs).
    int n_mixes = static_cast<int>(perf::tableTwoMixes().size());
    for (int s = 0; s < cfg.servers; ++s) {
        const perf::Mix &mx = perf::mix(s % n_mixes + 1);
        auto su = static_cast<std::size_t>(s);
        if (cfg.interactivePerServer >= 1)
            addInteractive(su, s);
        else
            add(mx.app1, s);
        if (cfg.interactivePerServer >= 2)
            addInteractive(su + 1, s);
        else
            add(mx.app2, s);
    }
}

Watts
ClusterManager::serverDemand(const std::vector<std::size_t> &apps) const
{
    const auto &plat = power::defaultPlatform();
    Watts demand = plat.idlePower + plat.cmPower;
    for (std::size_t ix : apps) {
        perf::PerfModel model(plat, ledger[ix].profile);
        demand += model.maxPower();
    }
    return demand;
}

Watts
ClusterManager::uncappedDemandEstimate() const
{
    psm_assert(!ledger.empty());
    const auto &plat = power::defaultPlatform();
    std::vector<Watts> per_server(static_cast<std::size_t>(cfg.servers),
                                  plat.idlePower);
    for (const auto &app : ledger) {
        auto s = static_cast<std::size_t>(app.homeServer);
        if (per_server[s] == plat.idlePower)
            per_server[s] += plat.cmPower;
        perf::PerfModel model(plat, app.profile);
        per_server[s] += model.maxPower();
    }
    Watts total = 0.0;
    for (Watts w : per_server)
        total += w;
    return total;
}

void
ClusterManager::buildNodes()
{
    psm_assert(!pool.has_value());
    NodePoolConfig pc;
    pc.servers = cfg.servers;
    pc.manager = cfg.manager;
    if (cfg.policy == ClusterPolicy::EqualRapl) {
        pc.manager.policy = core::PolicyKind::UtilUnaware;
    } else {
        const core::PolicyInfo *info =
            core::PolicyRegistry::instance().findName(
                cfg.managedPolicy);
        if (!info) {
            fatal("unknown managed policy '%s' (expected one of %s)",
                  cfg.managedPolicy.c_str(),
                  core::PolicyRegistry::instance().cliNames()
                      .c_str());
        }
        pc.manager.policy = info->kind;
    }
    pc.seedBase = cfg.seed;
    pc.faults = cfg.faults;
    pc.shardSize = cfg.shardSize;
    pc.seedWorkloadCorpus = cfg.seedWorkloadCorpus;
    pc.corpusWorkloads = cfg.corpusWorkloads;
    if (cfg.policy == ClusterPolicy::EqualOurs)
        pc.esd = cfg.esd;
    pool.emplace(pc);
    for (auto &app : ledger) {
        auto &node = (*pool)[static_cast<std::size_t>(app.homeServer)];
        app.simAppId = node.manager->addApp(app.profile);
        app.server = app.homeServer;
    }
}

void
ClusterManager::accountManagedReplay(ClusterResult &result) const
{
    double viol = 0.0;
    for (const auto &node : *pool) {
        result.totalEnergy += node.server->meter().totalEnergy();
        viol += node.server->meter().violationFraction();
    }
    result.capViolationFraction =
        viol / static_cast<double>(pool->size());
    result.avgClusterPower =
        result.totalEnergy / toSeconds(result.duration);

    double perf = 0.0;
    for (const auto &node : *pool) {
        for (const auto &rec : node.manager->records())
            perf += rec.normalizedPerf(node.server->now());
    }
    result.aggregatePerf = perf / static_cast<double>(ledger.size());
    result.perfPerKw =
        result.aggregatePerf / (result.avgClusterPower / 1000.0);
    core::TimerStat spatial = pool->aggregateTimer("allocator.spatial");
    result.allocatorCalls = spatial.count;
    result.allocatorSeconds = toSeconds(spatial.total);
}

ClusterResult
ClusterManager::replayEqual(const PowerTrace &caps)
{
    buildNodes();

    for (Watts cap : caps.values) {
        Watts share = cap / static_cast<double>(cfg.servers);
        tel.count(trace::EventId::ClusterCapUpdates);
        for (auto &node : *pool)
            node.manager->setCap(share);
        // Nodes are independent within an interval: step them in
        // parallel (bit-identical to the serial loop).
        pool->runAll(caps.interval, &tel);
    }

    ClusterResult result;
    result.duration = caps.duration();
    accountManagedReplay(result);
    return result;
}

ClusterResult
ClusterManager::replayTree(const PowerTrace &caps)
{
    buildNodes();

    PowerTreeConfig tc;
    tc.leaves = cfg.servers;
    tc.depth = std::max(1, cfg.treeDepth);
    tc.fanout = cfg.treeFanout;
    tc.leafCap = cfg.leafCapacity;
    tc.oversubscription = cfg.oversubscription;
    PowerTree tree(tc);

    std::vector<Joules> last_energy(pool->size(), 0.0);
    std::uint64_t violations = 0;
    std::uint64_t cap_pushes = 0;

    for (Watts cap : caps.values) {
        tel.count(trace::EventId::ClusterCapUpdates);
        if (cfg.demandAwareSplit) {
            // Leaf demand := last interval's average draw.  Metered
            // energy is simulated (deterministic), so the resulting
            // splits replay identically at any thread count.  Only
            // leaves whose draw moved touch the tree, keeping the
            // epoch churn proportional to actual change.
            for (std::size_t s = 0; s < pool->size(); ++s) {
                Joules e = (*pool)[s].server->meter().totalEnergy();
                double draw =
                    (e - last_energy[s]) / toSeconds(caps.interval);
                last_energy[s] = e;
                if (draw > 0.0 && draw != tree.leafDemand(s))
                    tree.setLeafDemand(s, draw);
            }
        }
        tree.setRootCap(cap);
        tree.resolve();
        // Only leaves whose grant changed pay an E1: untouched
        // sibling subtrees keep their caps, their managers see no
        // event, and their next interval runs allocator-free.
        for (std::size_t leaf : tree.changedLeaves()) {
            auto &node = (*pool)[leaf];
            if (node.manager->setCapIfChanged(tree.leafGrant(leaf))) {
                ++cap_pushes;
                tel.count(trace::EventId::TreeCapPushes);
            }
        }
        if (!tree.checkConservation()) {
            ++violations;
            tel.count(trace::EventId::TreeConservationViolations);
        }
        pool->runAll(caps.interval, &tel);
    }

    ClusterResult result;
    result.duration = caps.duration();
    accountManagedReplay(result);

    const PowerTreeStats &ts = tree.stats();
    tel.count(trace::EventId::TreeResolves, ts.resolves);
    tel.count(trace::EventId::TreeNodeVisits, ts.nodeVisits);
    tel.count(trace::EventId::TreeNodePrunes, ts.nodePrunes);
    tel.count(trace::EventId::TreeGrantChanges, ts.grantChanges);
    result.treeDepth = tree.depth();
    result.treeNodes = tree.nodeCount();
    result.treeResolveVisits = ts.nodeVisits;
    result.treeResolvePrunes = ts.nodePrunes;
    result.capPushes = cap_pushes;
    result.conservationViolations = violations;
    return result;
}

void
ClusterManager::unplace(std::size_t app_ix)
{
    LogicalApp &app = ledger[app_ix];
    if (app.server < 0)
        return;
    auto &node = (*pool)[static_cast<std::size_t>(app.server)];
    app.beats +=
        node.server->app(app.simAppId).heartbeats().total();
    node.server->remove(app.simAppId);
    app.server = -1;
    app.simAppId = -1;
}

void
ClusterManager::place(std::size_t app_ix, int server_ix,
                      Tick downtime)
{
    LogicalApp &app = ledger[app_ix];
    psm_assert(app.server < 0);
    auto &node = (*pool)[static_cast<std::size_t>(server_ix)];
    app.simAppId = node.server->admit(app.profile);
    app.server = server_ix;
    sim::Application &sim_app =
        node.server->app(app.simAppId);
    sim_app.setKnobs(power::defaultPlatform().maxSetting());
    app.resumeAt = node.server->now() + downtime;
    if (downtime > 0)
        sim_app.suspend(node.server->now());
}

ClusterResult
ClusterManager::replayConsolidation(const PowerTrace &caps)
{
    // Raw servers, no managers: consolidation never caps a powered
    // server.
    psm_assert(!pool.has_value());
    NodePoolConfig pc;
    pc.servers = cfg.servers;
    pc.managed = false;
    pool.emplace(pc);
    powered.assign(static_cast<std::size_t>(cfg.servers), 0);

    ClusterResult result;
    result.duration = caps.duration();
    std::vector<Joules> last_energy(pool->size(), 0.0);
    Tick viol_time = 0;
    int current_on = -1; // force an initial plan

    for (Watts cap : caps.values) {
        // Plan: pack applications pairwise onto the fewest servers
        // that fit under the cap.
        std::size_t max_pairs = (ledger.size() + 1) / 2;
        Watts base = cfg.offServerPower *
                     static_cast<double>(cfg.servers);
        Watts budget = cap - base;
        int want_on = 0;
        std::size_t placed = 0;
        while (want_on < cfg.servers &&
               static_cast<std::size_t>(want_on) < max_pairs) {
            std::vector<std::size_t> pair;
            for (std::size_t a = placed;
                 a < std::min(placed + 2, ledger.size()); ++a) {
                pair.push_back(a);
            }
            Watts cost = serverDemand(pair) - cfg.offServerPower;
            if (cost > budget)
                break;
            budget -= cost;
            placed += pair.size();
            ++want_on;
        }

        if (want_on != current_on) {
            // Re-place: apps [0, 2*want_on) run, the rest park.
            // An app landing on a freshly powered server waits for
            // the boot on top of its own migration downtime.
            for (std::size_t a = 0; a < ledger.size(); ++a) {
                std::size_t target_server = a / 2;
                bool should_run =
                    target_server < static_cast<std::size_t>(want_on);
                int target =
                    should_run ? static_cast<int>(target_server) : -1;
                if (ledger[a].server != target) {
                    unplace(a);
                    if (target >= 0) {
                        Tick downtime = cfg.migrationDowntime;
                        if (!powered[target_server])
                            downtime += cfg.serverBootDelay;
                        place(a, target, downtime);
                        ++migration_count;
                        tel.count(trace::EventId::ClusterMigrations);
                    }
                }
            }
            for (int s = 0; s < cfg.servers; ++s)
                powered[static_cast<std::size_t>(s)] = s < want_on;
            current_on = want_on;
        }

        // Step powered servers in sub-chunks, resuming applications
        // as their migration/boot downtime deadlines pass.
        const Tick chunk = toTicks(2.0);
        for (int s = 0; s < cfg.servers; ++s) {
            auto &node = (*pool)[static_cast<std::size_t>(s)];
            if (!powered[static_cast<std::size_t>(s)])
                continue;
            Tick end = node.server->now() + caps.interval;
            while (node.server->now() < end) {
                for (auto &app : ledger) {
                    if (app.server == s && app.simAppId >= 0 &&
                        node.server->now() >= app.resumeAt) {
                        node.server->app(app.simAppId)
                            .resume(node.server->now());
                    }
                }
                node.server->run(
                    std::min(chunk, end - node.server->now()));
            }
        }

        // Account power for this interval.
        Watts draw = cfg.offServerPower *
                     static_cast<double>(cfg.servers - current_on);
        for (int s = 0; s < cfg.servers; ++s) {
            auto &node = (*pool)[static_cast<std::size_t>(s)];
            if (!powered[static_cast<std::size_t>(s)])
                continue;
            Joules e = node.server->meter().totalEnergy();
            draw += (e - last_energy[static_cast<std::size_t>(s)]) /
                    toSeconds(caps.interval);
            last_energy[static_cast<std::size_t>(s)] = e;
        }
        result.totalEnergy += draw * toSeconds(caps.interval);
        if (draw > cap + 1e-6)
            viol_time += caps.interval;

        for (const auto &app : ledger) {
            if (app.server < 0) {
                ++parked_steps;
                tel.count(trace::EventId::ClusterParkedAppSteps);
            }
        }
    }

    result.migrations = migration_count;
    result.parkedAppSteps = parked_steps;
    result.capViolationFraction =
        static_cast<double>(viol_time) /
        static_cast<double>(result.duration);
    result.avgClusterPower =
        result.totalEnergy / toSeconds(result.duration);

    // Harvest the final placements.
    double perf = 0.0;
    double horizon = toSeconds(result.duration);
    for (std::size_t a = 0; a < ledger.size(); ++a) {
        unplace(a);
        perf += ledger[a].beats / horizon / ledger[a].uncappedRate;
    }
    result.aggregatePerf = perf / static_cast<double>(ledger.size());
    result.perfPerKw =
        result.aggregatePerf / (result.avgClusterPower / 1000.0);
    return result;
}

core::Telemetry
ClusterManager::aggregateTelemetry() const
{
    core::Telemetry cluster;
    cluster.merge(tel);
    if (pool)
        cluster.merge(pool->aggregateTelemetry());
    return cluster;
}

ClusterResult
ClusterManager::replay(const PowerTrace &caps)
{
    psm_assert(!ledger.empty());
    psm_assert(!pool.has_value()); // one replay per ClusterManager
    psm_assert(!caps.values.empty());
    if (cfg.policy == ClusterPolicy::ConsolidationMigration)
        return replayConsolidation(caps);
    if (cfg.topology == Topology::Tree)
        return replayTree(caps);
    return replayEqual(caps);
}

} // namespace psm::cluster
