#include "power_trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace psm::cluster
{

Watts
PowerTrace::at(Tick t) const
{
    psm_assert(!values.empty() && interval > 0);
    std::size_t ix = static_cast<std::size_t>(t / interval);
    ix = std::min(ix, values.size() - 1);
    return values[ix];
}

Tick
PowerTrace::duration() const
{
    return interval * static_cast<Tick>(values.size());
}

Watts
PowerTrace::peak() const
{
    psm_assert(!values.empty());
    return *std::max_element(values.begin(), values.end());
}

Watts
PowerTrace::mean() const
{
    psm_assert(!values.empty());
    double sum = 0.0;
    for (Watts v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

PowerTrace
generateDiurnalDemand(const TraceConfig &config)
{
    psm_assert(config.points >= 2);
    psm_assert(config.peak > config.floor && config.floor > 0.0);

    Rng rng(config.seed);
    PowerTrace trace;
    trace.interval = config.interval;
    trace.values.reserve(config.points);

    double n = static_cast<double>(config.points);
    for (std::size_t i = 0; i < config.points; ++i) {
        double day = static_cast<double>(i) / n; // 0..1 over the day
        // Base diurnal: low overnight, high during working hours.
        double base = 0.5 - 0.5 * std::cos(2.0 * M_PI * day);
        // Double hump: morning and evening activity peaks.
        double hump = 0.15 * std::exp(-50.0 * (day - 0.40) *
                                      (day - 0.40)) +
                      0.20 * std::exp(-50.0 * (day - 0.80) *
                                      (day - 0.80));
        double shape = std::min(base + hump, 1.0);
        Watts demand = config.floor +
                       (config.peak - config.floor) * shape;
        demand *= 1.0 + rng.gaussian(0.0, config.noise);
        trace.values.push_back(std::clamp(demand, config.floor * 0.8,
                                          config.peak * 1.05));
    }
    return trace;
}

PowerTrace
peakShavingCaps(const PowerTrace &demand, double shave)
{
    psm_assert(shave >= 0.0 && shave < 1.0);
    PowerTrace caps;
    caps.interval = demand.interval;
    Watts ceiling = demand.peak() * (1.0 - shave);
    caps.values.reserve(demand.values.size());
    for (Watts v : demand.values)
        caps.values.push_back(std::min(v, ceiling));
    return caps;
}

void
saveTraceCsv(const PowerTrace &trace, const std::string &path)
{
    psm_assert(!trace.values.empty() && trace.interval > 0);
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace to '%s'", path.c_str());
    out.precision(12);
    out << "seconds,watts\n";
    for (std::size_t i = 0; i < trace.values.size(); ++i) {
        out << toSeconds(static_cast<Tick>(i) * trace.interval) << ','
            << trace.values[i] << '\n';
    }
    if (!out)
        fatal("short write to '%s'", path.c_str());
}

PowerTrace
loadTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read trace from '%s'", path.c_str());

    PowerTrace trace;
    std::string line;
    std::vector<double> seconds;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (first) {
            first = false;
            // Skip a header row if present.
            if (line.find_first_not_of("0123456789.,+-eE \t") !=
                std::string::npos) {
                continue;
            }
        }
        std::istringstream row(line);
        double t = 0.0, w = 0.0;
        char comma = 0;
        if (!(row >> t >> comma >> w) || comma != ',')
            fatal("malformed trace row '%s' in '%s'", line.c_str(),
                  path.c_str());
        seconds.push_back(t);
        trace.values.push_back(w);
    }
    if (trace.values.size() < 2)
        fatal("trace '%s' needs at least two points", path.c_str());

    double step = seconds[1] - seconds[0];
    if (step <= 0.0)
        fatal("trace '%s' timestamps must increase", path.c_str());
    for (std::size_t i = 1; i < seconds.size(); ++i) {
        if (std::abs((seconds[i] - seconds[i - 1]) - step) >
            1e-6 * step) {
            fatal("trace '%s' is not uniformly spaced at row %zu",
                  path.c_str(), i);
        }
    }
    trace.interval = toTicks(step);
    return trace;
}

PowerTrace
loadFollowingCaps(const PowerTrace &demand, Watts uncapped,
                  double shave)
{
    psm_assert(shave >= 0.0 && shave < 1.0);
    psm_assert(uncapped > 0.0);
    Watts peak = demand.peak();
    Watts low = *std::min_element(demand.values.begin(),
                                  demand.values.end());
    psm_assert(peak > low);

    PowerTrace caps;
    caps.interval = demand.interval;
    caps.values.reserve(demand.values.size());
    for (Watts v : demand.values) {
        double shape = (v - low) / (peak - low);
        caps.values.push_back(uncapped * (1.0 - shave * shape));
    }
    return caps;
}

} // namespace psm::cluster
