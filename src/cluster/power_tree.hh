/**
 * @file
 * The PowerTree: a cluster -> rack/PDU -> server power hierarchy with
 * per-level capacities, oversubscription and O(depth * fanout)
 * incremental re-resolution.
 *
 * The paper's cluster layer is a flat private cloud: one cap, split
 * across N servers in a single global pass.  Datacenters are not
 * flat — power flows through a tree of feeds, PDUs and rack
 * circuits, each level provisioned for less than the sum of its
 * children (oversubscription), and a cap or demand change in one
 * rack must not force a full re-plan of ten thousand servers.  The
 * nvPAX direction (PAPERS.md) is exactly this constrained
 * hierarchical allocation; FastCap's fairness objective gives the
 * per-level split rule.
 *
 * The tree here keeps, per node, a cached subtree demand summary and
 * an epoch that bumps whenever anything below it changes.  resolve()
 * walks top-down and prunes every subtree whose (budget, epoch) pair
 * matches its cache.  Locality comes from binding capacities: a
 * node pinned at its capacity hands its children the same budgets no
 * matter how the outside wobbles, so in the oversubscribed regime —
 * levels provisioned below peak, exactly when a hierarchy matters —
 * a leaf event re-resolves only the path from that leaf to the root
 * plus the pruned sibling checks along it: O(depth * fanout) node
 * visits instead of a global O(N) pass.  (An unconstrained
 * demand-proportional split renormalizes every share by
 * construction; nothing prunes, and the full walk is the correct
 * cost.)  Grants are deterministic pure functions of (caps,
 * demands) — path updates resum, never delta-adjust, ancestor
 * summaries — so incremental resolution is bit-identical to
 * rebuilding the tree from scratch.
 *
 * Split rule per interior node: water-filling proportional to child
 * subtree demand, clamped by child capacity, residual redistributed
 * over the unclamped children.  Uniform demands with no binding
 * child capacity split as one exact division (budget / fanout), so a
 * depth-1 tree over N uniform leaves reproduces the paper's flat
 * "Equal" share cap/N bit-for-bit.
 */

#ifndef PSM_CLUSTER_POWER_TREE_HH
#define PSM_CLUSTER_POWER_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace psm::cluster
{

/** Shape and provisioning of the hierarchy. */
struct PowerTreeConfig
{
    /** Leaf count: one leaf per server. */
    int leaves = 10;
    /**
     * Levels of splitting below the root: 1 reproduces the paper's
     * flat cluster (root -> N servers), 3 models cluster -> PDU ->
     * rack -> server.
     */
    int depth = 1;
    /**
     * Interior fanout; 0 derives the smallest uniform fanout whose
     * depth-fold power covers the leaves.  Ranges that run out of
     * leaves produce thinner (or pass-through) interior nodes, so any
     * (leaves, depth, fanout) combination builds.
     */
    int fanout = 0;
    /** Per-leaf circuit capacity (<= 0: uncapped). */
    Watts leafCap = 0.0;
    /**
     * Oversubscription factor F >= 1: an interior node's capacity is
     * (sum of child capacities) / F, i.e. F = 1.2 provisions every
     * PDU for ~83% of the worst case its children could draw — the
     * industry practice nvPAX targets.  Uncapped children make the
     * parent uncapped.
     */
    double oversubscription = 1.0;
    /** Initial per-leaf demand weight (uniform by default). */
    double initialDemand = 1.0;
};

/** Monotonic work counters (the bench's O(depth) evidence). */
struct PowerTreeStats
{
    std::uint64_t resolves = 0;      ///< resolve() calls
    std::uint64_t nodeVisits = 0;    ///< splits actually recomputed
    std::uint64_t nodePrunes = 0;    ///< subtrees skipped via cache
    std::uint64_t demandUpdates = 0; ///< setLeafDemand() calls
    std::uint64_t grantChanges = 0;  ///< leaf grants that changed
};

/**
 * The hierarchy itself.  Leaves are indexed [0, leaves) in the same
 * order as the NodePool they feed; interior structure is contiguous
 * ranges of leaves (rack locality).
 */
class PowerTree
{
  public:
    explicit PowerTree(const PowerTreeConfig &config);

    std::size_t leafCount() const { return leaf_node.size(); }
    std::size_t nodeCount() const { return node_list.size(); }
    int depth() const { return cfg.depth; }
    int fanout() const { return cfg.fanout; }

    /** The dynamic cluster cap the root divides (peak shaving). */
    void setRootCap(Watts cap);
    Watts rootCap() const { return root_cap; }

    /**
     * Update one leaf's demand weight.  O(depth * fanout): resums
     * the cached subtree summaries and bumps epochs along the
     * leaf -> root path only.
     */
    void setLeafDemand(std::size_t leaf, double demand);
    double leafDemand(std::size_t leaf) const;

    /**
     * Re-provision one leaf's circuit capacity (<= 0: uncapped).
     * O(depth * fanout): ancestor capacities are resummed along the
     * leaf -> root path only.
     */
    void setLeafCap(std::size_t leaf, Watts cap);

    /**
     * Re-resolve grants top-down, pruning every subtree whose
     * (budget, epoch) matches the cached resolution.
     * @return Number of leaf grants that changed value (their
     *         indices are in changedLeaves()).
     */
    std::size_t resolve();

    /** Leaves whose grant changed in the last resolve(), ascending. */
    const std::vector<std::size_t> &changedLeaves() const
    {
        return changed_leaves;
    }

    /** Current grant of one leaf (valid after resolve()). */
    Watts leafGrant(std::size_t leaf) const;

    /**
     * Validate the conservation invariant: at every node, the grants
     * handed to children sum to no more than the node's own grant,
     * and no grant exceeds its node's capacity.
     * @return true when the invariant holds within @p eps watts.
     */
    bool checkConservation(double eps = 1e-6,
                           std::string *why = nullptr) const;

    const PowerTreeStats &stats() const { return tree_stats; }
    void resetStats() { tree_stats = PowerTreeStats{}; }

    /** Per-level rollup for benches and logs. */
    struct LevelSummary
    {
        int level = 0;          ///< 0 = root
        std::size_t nodes = 0;
        Watts capacity = 0.0;   ///< summed capacity (0 if any uncapped)
        Watts granted = 0.0;    ///< summed grants after last resolve
        double demand = 0.0;    ///< summed subtree demand
    };
    std::vector<LevelSummary> levelSummaries() const;

  private:
    struct Node
    {
        int parent = -1;
        int level = 0;
        int leafIx = -1;             ///< >= 0 for leaves
        std::vector<int> children;   ///< empty for leaves
        Watts cap = 0.0;             ///< capacity; <= 0 = uncapped
        Watts capSum = 0.0;          ///< sum of child caps (interior)
        int uncappedChildren = 0;    ///< children with cap <= 0
        double demand = 0.0;         ///< cached subtree demand
        std::uint64_t epoch = 0;     ///< bumped on any change below
        // Resolution cache: the (budget, epoch) the grants below
        // were last computed for.
        Watts lastBudget = -1.0;
        std::uint64_t lastEpoch = ~0ULL;
        Watts grant = 0.0;           ///< effective budget received
    };

    PowerTreeConfig cfg;
    std::vector<Node> node_list;
    std::vector<int> leaf_node;      ///< leaf index -> node index
    Watts root_cap = 0.0;
    std::vector<std::size_t> changed_leaves;
    PowerTreeStats tree_stats;

    // Per-level scratch for splitBudget: resolveNode only descends,
    // so a node iterating its level's scratch never races a child
    // using the next level's.  Avoids per-visit allocation.
    std::vector<std::vector<Watts>> level_grants;
    std::vector<std::vector<char>> level_active;

    int build(int level, std::size_t lo, std::size_t hi, int parent);
    void recomputeCapacity(int ix);
    void resolveNode(int ix, Watts budget);
    void splitBudget(const Node &n, Watts budget,
                     std::vector<Watts> &out);
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_POWER_TREE_HH
