#include "scheduler.hh"

#include <algorithm>

#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace psm::cluster
{

std::string
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FirstFit:
        return "FirstFit";
      case PlacementPolicy::PowerHeadroom:
        return "PowerHeadroom";
      default:
        panic("invalid PlacementPolicy %d", static_cast<int>(policy));
    }
}

static NodePoolConfig
schedulerPoolConfig(const SchedulerConfig &cfg)
{
    psm_assert(cfg.servers >= 1);
    psm_assert(cfg.serverCap > 0.0);
    NodePoolConfig pc;
    pc.servers = cfg.servers;
    pc.manager = cfg.manager;
    pc.seedBase = cfg.seed + 1;
    pc.serverCap = cfg.serverCap;
    return pc;
}

ClusterScheduler::ClusterScheduler(SchedulerConfig config)
    : cfg(std::move(config)), rng(cfg.seed),
      pool(schedulerPoolConfig(cfg)),
      placed(static_cast<std::size_t>(cfg.servers))
{
}

void
ClusterScheduler::submit(Job job)
{
    psm_assert(job_list.empty() ||
               job.arrival >= job_list.back().arrival);
    job_list.push_back(std::move(job));
}

void
ClusterScheduler::generateWorkload(std::size_t count,
                                   double mean_interarrival_s,
                                   double mean_seconds,
                                   double interactive_fraction)
{
    psm_assert(mean_interarrival_s > 0.0 && mean_seconds > 0.0);
    psm_assert(interactive_fraction >= 0.0 &&
               interactive_fraction <= 1.0);
    const auto &library = perf::workloadLibrary();
    const auto &interactive = perf::interactiveLibrary();
    double arrival_s = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        Job job;
        // Short-circuit keeps the all-batch draw stream (and thus
        // every historical workload) bit-identical when the fraction
        // is zero.
        if (interactive_fraction > 0.0 &&
            rng.chance(interactive_fraction)) {
            // An open-ended service: profile as calibrated, no
            // runtime sizing — it occupies its socket until the run
            // ends.
            job.profile = interactive[static_cast<std::size_t>(
                rng.uniformInt(
                    0, static_cast<int>(interactive.size()) - 1))];
        } else {
            job.profile =
                library[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(library.size()) - 1))];
            // Size to ~mean_seconds of uncapped runtime
            // (exponential).
            perf::PerfModel model(power::defaultPlatform(),
                                  job.profile);
            double seconds =
                std::max(rng.exponential(1.0 / mean_seconds),
                         mean_seconds / 10.0);
            job.profile.totalHeartbeats = seconds * model.maxHbRate();
        }
        job.arrival = toTicks(arrival_s);
        arrival_s += rng.exponential(1.0 / mean_interarrival_s);
        submit(std::move(job));
    }
}

int
ClusterScheduler::pickServer() const
{
    int best = -1;
    double best_headroom = -1.0;
    for (int s = 0; s < cfg.servers; ++s) {
        const NodePool::Node &node =
            pool[static_cast<std::size_t>(s)];
        if (node.server->freeSockets() == 0)
            continue;
        if (cfg.placement == PlacementPolicy::FirstFit)
            return s;
        double headroom = node.server->cap() -
                          node.server->observedServerPower();
        if (headroom > best_headroom) {
            best_headroom = headroom;
            best = s;
        }
    }
    return best;
}

void
ClusterScheduler::placeWaitingJobs()
{
    while (!queue.empty()) {
        int target = pickServer();
        if (target < 0)
            return; // every socket busy; keep queueing
        std::size_t job_ix = queue.front();
        queue.erase(queue.begin());
        Job &job = job_list[job_ix];
        NodePool::Node &node = pool[static_cast<std::size_t>(target)];

        // Two instances of the same workload cannot share a server
        // (names must be unique per server); retarget if needed.
        bool clash = false;
        for (const sim::Application *app : node.server->apps())
            clash |= app->name() == job.profile.name;
        if (clash) {
            int other = -1;
            for (int s = 0; s < cfg.servers && other < 0; ++s) {
                NodePool::Node &cand =
                    pool[static_cast<std::size_t>(s)];
                if (cand.server->freeSockets() == 0)
                    continue;
                bool also_clash = false;
                for (const sim::Application *app :
                     cand.server->apps()) {
                    also_clash |= app->name() == job.profile.name;
                }
                if (!also_clash)
                    other = s;
            }
            if (other < 0) {
                // Nowhere legal right now; try again later.
                queue.insert(queue.begin(), job_ix);
                tel.count(trace::EventId::ClusterPlacementDeferrals);
                return;
            }
            target = other;
            tel.count(trace::EventId::ClusterPlacementRetargets);
        }

        NodePool::Node &host = pool[static_cast<std::size_t>(target)];
        int app_id = host.manager->addApp(job.profile);
        placed[static_cast<std::size_t>(target)].emplace_back(job_ix,
                                                             app_id);
        job.started = clock;
        job.server = target;
        tel.count(trace::EventId::ClusterPlacements);
    }
}

void
ClusterScheduler::harvestFinished()
{
    for (std::size_t s = 0; s < pool.size(); ++s) {
        NodePool::Node &node = pool[s];
        auto &hosted = placed[s];
        for (auto it = hosted.begin(); it != hosted.end();) {
            auto [job_ix, app_id] = *it;
            bool finished = true;
            for (const auto &rec : node.manager->records()) {
                if (rec.id == app_id)
                    finished = rec.done;
            }
            if (finished) {
                job_list[job_ix].finished = clock;
                it = hosted.erase(it);
            } else {
                ++it;
            }
        }
    }
}

void
ClusterScheduler::run(Tick horizon)
{
    Tick end = clock + horizon;
    std::size_t next_arrival = 0;
    const Tick slice = toTicks(1.0);

    while (clock < end) {
        while (next_arrival < job_list.size() &&
               job_list[next_arrival].arrival <= clock) {
            queue.push_back(next_arrival++);
        }
        placeWaitingJobs();

        // Nodes are independent within a slice: step them in parallel
        // (bit-identical to the serial loop).
        pool.runAll(slice, &tel);
        clock += slice;
        harvestFinished();

        bool all_done = next_arrival == job_list.size() &&
                        queue.empty();
        for (const auto &hosted : placed)
            all_done &= hosted.empty();
        if (all_done)
            return;
    }
}

std::size_t
ClusterScheduler::unfinished() const
{
    std::size_t n = 0;
    for (const auto &job : job_list)
        n += !job.done();
    return n;
}

double
ClusterScheduler::meanCompletionSeconds() const
{
    std::vector<double> times;
    for (const auto &job : job_list)
        if (job.done())
            times.push_back(toSeconds(job.completionTime()));
    return meanOf(times);
}

double
ClusterScheduler::p95CompletionSeconds() const
{
    std::vector<double> times;
    for (const auto &job : job_list)
        if (job.done())
            times.push_back(toSeconds(job.completionTime()));
    return percentileOf(std::move(times), 95.0);
}

Watts
ClusterScheduler::averageClusterPower() const
{
    if (clock == 0)
        return 0.0;
    return pool.totalEnergy() / toSeconds(clock);
}

core::Telemetry
ClusterScheduler::aggregateTelemetry() const
{
    core::Telemetry cluster;
    cluster.merge(tel);
    cluster.merge(pool.aggregateTelemetry());
    return cluster;
}

} // namespace psm::cluster
