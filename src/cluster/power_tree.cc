#include "power_tree.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace psm::cluster
{

namespace
{

/** Smallest fanout f >= 1 with f^depth >= leaves. */
int
deriveFanout(int leaves, int depth)
{
    if (leaves <= 1)
        return 1;
    for (int f = 2;; ++f) {
        long long cover = 1;
        for (int d = 0; d < depth; ++d) {
            cover *= f;
            if (cover >= leaves)
                return f;
        }
    }
}

/** f^depth, saturating well past any sane leaf count. */
long long
coverage(int fanout, int depth)
{
    long long cover = 1;
    for (int d = 0; d < depth; ++d) {
        cover *= fanout;
        if (cover > (1LL << 40))
            return 1LL << 40;
    }
    return cover;
}

} // namespace

PowerTree::PowerTree(const PowerTreeConfig &config) : cfg(config)
{
    psm_assert(cfg.leaves >= 1);
    psm_assert(cfg.depth >= 1);
    psm_assert(cfg.oversubscription >= 1.0);
    if (cfg.fanout <= 0)
        cfg.fanout = deriveFanout(cfg.leaves, cfg.depth);
    psm_assert(coverage(cfg.fanout, cfg.depth) >= cfg.leaves);

    leaf_node.resize(static_cast<std::size_t>(cfg.leaves), -1);
    // Worst case one pass-through chain per leaf per level.
    node_list.reserve(static_cast<std::size_t>(cfg.leaves) *
                          static_cast<std::size_t>(cfg.depth) +
                      1);
    build(0, 0, static_cast<std::size_t>(cfg.leaves), -1);

    // Bottom-up capacity and demand summaries.  Children always have
    // higher indices than their parent (build() appends the parent
    // first), so a reverse index walk folds children before parents.
    for (std::size_t i = node_list.size(); i-- > 0;) {
        Node &n = node_list[i];
        if (n.leafIx >= 0)
            continue;
        n.capSum = 0.0;
        n.uncappedChildren = 0;
        n.demand = 0.0;
        for (int c : n.children) {
            const Node &child = node_list[static_cast<std::size_t>(c)];
            if (child.cap > 0.0)
                n.capSum += child.cap;
            else
                ++n.uncappedChildren;
            n.demand += child.demand;
        }
        n.cap = n.uncappedChildren > 0
                    ? 0.0
                    : n.capSum / cfg.oversubscription;
    }

    level_grants.resize(static_cast<std::size_t>(cfg.depth));
    level_active.resize(static_cast<std::size_t>(cfg.depth));
}

int
PowerTree::build(int level, std::size_t lo, std::size_t hi, int parent)
{
    auto ix = static_cast<int>(node_list.size());
    node_list.emplace_back();
    Node &n = node_list.back();
    n.parent = parent;
    n.level = level;
    if (level == cfg.depth) {
        psm_assert(hi - lo == 1);
        n.leafIx = static_cast<int>(lo);
        n.cap = cfg.leafCap;
        n.demand = cfg.initialDemand;
        leaf_node[lo] = ix;
        return ix;
    }
    // Split [lo, hi) into up to `fanout` near-equal contiguous
    // chunks.  A chunk that is already a single leaf still descends
    // (as a pass-through chain) so every leaf sits at the same level.
    std::size_t span = hi - lo;
    auto chunks = std::min<std::size_t>(
        static_cast<std::size_t>(cfg.fanout), span);
    std::vector<int> children;
    children.reserve(chunks);
    std::size_t base = span / chunks;
    std::size_t extra = span % chunks;
    std::size_t at = lo;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t len = base + (c < extra ? 1 : 0);
        children.push_back(build(level + 1, at, at + len, ix));
        at += len;
    }
    psm_assert(at == hi);
    // `n` may be a dangling reference after the recursive appends.
    node_list[static_cast<std::size_t>(ix)].children =
        std::move(children);
    return ix;
}

void
PowerTree::setRootCap(Watts cap)
{
    root_cap = cap;
}

double
PowerTree::leafDemand(std::size_t leaf) const
{
    return node_list[static_cast<std::size_t>(leaf_node.at(leaf))]
        .demand;
}

void
PowerTree::setLeafDemand(std::size_t leaf, double demand)
{
    ++tree_stats.demandUpdates;
    int ix = leaf_node.at(leaf);
    node_list[static_cast<std::size_t>(ix)].demand = demand;
    ++node_list[static_cast<std::size_t>(ix)].epoch;
    // Resum each ancestor over its children in child order — the same
    // fold the constructor runs — rather than delta-adjusting.  Float
    // addition is not associative, so `sum += new - old` drifts by
    // ulps from a fresh bottom-up fold and incremental resolution
    // would stop being bit-identical to a rebuilt tree.  Still
    // O(depth * fanout).  Epochs bump along the whole path even on a
    // no-op update: a re-asserted demand is cheap to revisit and
    // keeps "epoch changed iff anything below might have"
    // conservative.
    for (int i = node_list[static_cast<std::size_t>(ix)].parent;
         i >= 0; i = node_list[static_cast<std::size_t>(i)].parent) {
        Node &n = node_list[static_cast<std::size_t>(i)];
        n.demand = 0.0;
        for (int c : n.children)
            n.demand += node_list[static_cast<std::size_t>(c)].demand;
        ++n.epoch;
    }
}

void
PowerTree::setLeafCap(std::size_t leaf, Watts cap)
{
    int ix = leaf_node.at(leaf);
    node_list[static_cast<std::size_t>(ix)].cap = cap;
    ++node_list[static_cast<std::size_t>(ix)].epoch;
    // Resum, as in setLeafDemand(): delta-adjusted capacity sums
    // would drift by ulps from the constructor's fold.
    for (int i = node_list[static_cast<std::size_t>(ix)].parent;
         i >= 0; i = node_list[static_cast<std::size_t>(i)].parent) {
        Node &n = node_list[static_cast<std::size_t>(i)];
        n.capSum = 0.0;
        n.uncappedChildren = 0;
        for (int c : n.children) {
            const Node &child = node_list[static_cast<std::size_t>(c)];
            if (child.cap > 0.0)
                n.capSum += child.cap;
            else
                ++n.uncappedChildren;
        }
        n.cap = n.uncappedChildren > 0
                    ? 0.0
                    : n.capSum / cfg.oversubscription;
        ++n.epoch;
    }
}

Watts
PowerTree::leafGrant(std::size_t leaf) const
{
    return node_list[static_cast<std::size_t>(leaf_node.at(leaf))]
        .grant;
}

std::size_t
PowerTree::resolve()
{
    ++tree_stats.resolves;
    changed_leaves.clear();
    resolveNode(0, root_cap);
    return changed_leaves.size();
}

void
PowerTree::resolveNode(int ix, Watts budget)
{
    Node &n = node_list[static_cast<std::size_t>(ix)];
    Watts effective = (n.cap > 0.0 && n.cap < budget) ? n.cap : budget;
    if (effective < 0.0)
        effective = 0.0;
    if (effective == n.lastBudget && n.epoch == n.lastEpoch) {
        ++tree_stats.nodePrunes;
        return;
    }
    ++tree_stats.nodeVisits;
    n.lastBudget = effective;
    n.lastEpoch = n.epoch;
    if (n.leafIx >= 0) {
        if (n.grant != effective) {
            n.grant = effective;
            ++tree_stats.grantChanges;
            changed_leaves.push_back(
                static_cast<std::size_t>(n.leafIx));
        }
        return;
    }
    n.grant = effective;
    std::vector<Watts> &grants =
        level_grants[static_cast<std::size_t>(n.level)];
    splitBudget(n, effective, grants);
    for (std::size_t c = 0; c < n.children.size(); ++c)
        resolveNode(n.children[c], grants[c]);
}

void
PowerTree::splitBudget(const Node &n, Watts budget,
                       std::vector<Watts> &out)
{
    std::size_t nc = n.children.size();
    out.assign(nc, 0.0);
    if (budget <= 0.0)
        return;

    const auto child = [&](std::size_t c) -> const Node & {
        return node_list[static_cast<std::size_t>(n.children[c])];
    };

    // Fast path: uniform demand, no binding child capacity — one
    // exact division, so a balanced uniform tree reproduces the flat
    // Equal split (cap / N at depth 1) bit-for-bit.
    bool uniform = true;
    double d0 = child(0).demand;
    for (std::size_t c = 1; c < nc && uniform; ++c)
        uniform = child(c).demand == d0;
    if (uniform) {
        Watts share = budget / static_cast<double>(nc);
        bool cap_binds = false;
        for (std::size_t c = 0; c < nc && !cap_binds; ++c)
            cap_binds = child(c).cap > 0.0 && child(c).cap < share;
        if (!cap_binds) {
            out.assign(nc, share);
            return;
        }
    }

    // Water-fill: proposals proportional to subtree demand; children
    // whose capacity binds are granted their capacity and removed,
    // the residual re-filled over the rest.  At most nc rounds.
    std::vector<char> &active =
        level_active[static_cast<std::size_t>(n.level)];
    active.assign(nc, 1);
    std::size_t active_count = nc;
    Watts remaining = budget;
    while (active_count > 0 && remaining > 0.0) {
        double dsum = 0.0;
        for (std::size_t c = 0; c < nc; ++c) {
            if (active[c])
                dsum += std::max(0.0, child(c).demand);
        }
        bool clamped = false;
        for (std::size_t c = 0; c < nc; ++c) {
            if (!active[c])
                continue;
            Watts share =
                dsum > 0.0
                    ? remaining * (std::max(0.0, child(c).demand) /
                                   dsum)
                    : remaining / static_cast<double>(active_count);
            Watts cap = child(c).cap;
            if (cap > 0.0 && share > cap) {
                out[c] = cap;
                active[c] = 0;
                clamped = true;
            } else {
                out[c] = share;
            }
        }
        if (!clamped)
            return;
        // Recount and deduct the clamped grants against the budget.
        active_count = 0;
        remaining = budget;
        for (std::size_t c = 0; c < nc; ++c) {
            if (active[c])
                ++active_count;
            else
                remaining -= out[c];
        }
        if (remaining < 0.0)
            remaining = 0.0;
        // Unclamped proposals from this round are stale; zero them so
        // an early exit (remaining == 0) grants nothing extra.
        for (std::size_t c = 0; c < nc; ++c) {
            if (active[c])
                out[c] = 0.0;
        }
    }
}

bool
PowerTree::checkConservation(double eps, std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    for (std::size_t i = 0; i < node_list.size(); ++i) {
        const Node &n = node_list[i];
        if (n.cap > 0.0 && n.grant > n.cap + eps) {
            std::ostringstream os;
            os << "node " << i << " grant " << n.grant
               << " exceeds capacity " << n.cap;
            return fail(os.str());
        }
        if (n.children.empty())
            continue;
        Watts granted = 0.0;
        for (int c : n.children)
            granted += node_list[static_cast<std::size_t>(c)].grant;
        if (granted > n.grant + eps) {
            std::ostringstream os;
            os << "node " << i << " children granted " << granted
               << " over its own grant " << n.grant;
            return fail(os.str());
        }
    }
    if (!node_list.empty() &&
        node_list[0].grant > std::max(root_cap, 0.0) + eps) {
        std::ostringstream os;
        os << "root grant " << node_list[0].grant
           << " exceeds root cap " << root_cap;
        return fail(os.str());
    }
    return true;
}

std::vector<PowerTree::LevelSummary>
PowerTree::levelSummaries() const
{
    std::vector<LevelSummary> levels(
        static_cast<std::size_t>(cfg.depth) + 1);
    for (std::size_t l = 0; l < levels.size(); ++l)
        levels[l].level = static_cast<int>(l);
    for (const Node &n : node_list) {
        LevelSummary &s = levels[static_cast<std::size_t>(n.level)];
        ++s.nodes;
        if (n.cap > 0.0)
            s.capacity += n.cap;
        s.granted += n.grant;
        s.demand += n.demand;
    }
    return levels;
}

} // namespace psm::cluster
