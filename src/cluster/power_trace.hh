/**
 * @file
 * Cluster power traces for the peak-shaving study (Fig. 12).
 *
 * The paper replays dynamic power caps derived from a publicly
 * available cluster power trace (Chen et al., NSDI'08 — a
 * connection-intensive internet service with a strong diurnal cycle).
 * That trace is not redistributable, so we generate a synthetic
 * diurnal demand curve with the same character — a daily sinusoidal
 * base, a morning/evening double hump, and short-term noise — and
 * derive cap traces that shave 15%, 30% and 45% off the peak, exactly
 * as the paper's Fig. 12a does.
 */

#ifndef PSM_CLUSTER_POWER_TRACE_HH
#define PSM_CLUSTER_POWER_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/units.hh"

namespace psm::cluster
{

/** A piecewise-constant power trace. */
struct PowerTrace
{
    Tick interval = 0;          ///< duration of each point
    std::vector<Watts> values;  ///< one value per interval

    /** Value in force at @p t (clamps to the last point). */
    Watts at(Tick t) const;

    /** Total trace duration. */
    Tick duration() const;

    Watts peak() const;
    Watts mean() const;
};

/** Parameters of the synthetic diurnal demand generator. */
struct TraceConfig
{
    std::size_t points = 96;        ///< samples across the day
    Tick interval = toTicks(30.0);  ///< simulated time per sample
    Watts floor = 600.0;            ///< overnight demand (10 servers)
    Watts peak = 1100.0;            ///< daily peak demand
    double noise = 0.03;            ///< relative short-term noise
    std::uint64_t seed = 2020;
};

/**
 * Generate the diurnal cluster demand curve.
 */
PowerTrace generateDiurnalDemand(const TraceConfig &config);

/**
 * Derive the peak-shaving cap trace: cap(t) = min(demand(t),
 * (1 - shave) * peak(demand)).  With shave = 0 the cap simply tracks
 * demand (uncapped operation).
 */
PowerTrace peakShavingCaps(const PowerTrace &demand, double shave);

/**
 * Serialize a trace to CSV ("seconds,watts" rows with a header) so
 * externally measured cluster traces can be inspected or replayed.
 */
void saveTraceCsv(const PowerTrace &trace, const std::string &path);

/**
 * Load a trace from CSV as written by saveTraceCsv() (or any
 * two-column "seconds,watts" file with uniform spacing).  Calls
 * fatal() on unreadable files or non-uniform timestamps.
 */
PowerTrace loadTraceCsv(const std::string &path);

/**
 * Load-following peak-shaving caps for a steady-state population.
 *
 * The paper's cluster load follows the diurnal trace, so its caps
 * only bind around the daily peak.  Our synthetic population draws a
 * constant uncapped power, so we map the trace's diurnal *shape*
 * onto the cap instead: the cap equals the population's uncapped
 * draw off-peak and dips to (1 - shave) of it at the daily peak:
 *
 *   cap(t) = uncapped * (1 - shave * shape(t)),
 *   shape(t) = (demand(t) - min) / (peak - min) in [0, 1].
 */
PowerTrace loadFollowingCaps(const PowerTrace &demand,
                             Watts uncapped, double shave);

} // namespace psm::cluster

#endif // PSM_CLUSTER_POWER_TRACE_HH
