/**
 * @file
 * The NodePool: the shared server substrate of the cluster layer.
 *
 * Both cluster drivers — the cap-trace replayer (ClusterManager) and
 * the job scheduler (ClusterScheduler) — need the same thing: N
 * identical simulated servers, each optionally wrapped in the
 * per-server control plane (ServerManager) with a deterministic
 * per-node seed and a corpus seeded from the workload library.  The
 * pool builds them once, uniformly, and offers cluster-scope rollups
 * (total energy, merged telemetry) over whatever the drivers did.
 */

#ifndef PSM_CLUSTER_NODE_POOL_HH
#define PSM_CLUSTER_NODE_POOL_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/manager.hh"
#include "core/telemetry.hh"
#include "esd/battery.hh"
#include "sim/server.hh"
#include "util/fault.hh"
#include "util/units.hh"

namespace psm::cluster
{

/** How to build each node of the pool. */
struct NodePoolConfig
{
    int servers = 1;
    /**
     * Wrap each server in a ServerManager (the per-server control
     * plane).  Raw pools (no manager) serve the consolidation
     * baseline, which never caps a powered server.
     */
    bool managed = true;
    /** Per-server manager template; node s runs with
     * seed = seedBase + s. */
    core::ManagerConfig manager;
    std::uint64_t seedBase = 0;
    /** Battery attached to every server when set. */
    std::optional<esd::BatteryConfig> esd;
    /** Initial per-server cap (<= 0 leaves the server uncapped). */
    Watts serverCap = 0.0;
    /** Seed each manager's CF corpus from the workload library. */
    bool seedWorkloadCorpus = true;
    /**
     * Workload names to seed the corpus with instead of the full
     * batch library (only consulted when seedWorkloadCorpus is set;
     * empty keeps the historical full-library corpus bit-for-bit).
     * Names may come from either class — listing interactive services
     * lets CF estimate a newly arrived service from previously seen
     * ones.  Callers should pre-validate with perf::hasWorkload (see
     * ClusterConfig::validate); an unknown name here is programmer
     * error and fatal()s with the valid-name list.
     */
    std::vector<std::string> corpusWorkloads;
    /**
     * Pool-level fault plan: only the node-crash rate and NodeCrash
     * schedule entries (target = node index) are consulted here;
     * per-server faults belong in `manager.faults`.  `faults.seed ==
     * 0` derives the roll seed from `seedBase`.  NodeCrash rolls are
     * keyed on the node's 1-based runAll() attempt counter (a crashed
     * node's sim clock freezes), so schedule windows for NodeCrash are
     * expressed in attempt numbers, not sim ticks.
     */
    util::FaultPlanConfig faults;

    /**
     * Nodes per telemetry shard on the step path.  runAll() walks the
     * pool in contiguous per-shard batches, each publishing into its
     * own private sink, merged in shard order after the join.  The
     * partition depends only on this value (never on PSM_THREADS), and
     * shard-local publishes are commutative counter/timer aggregates,
     * so any shard size is bit-identical to `shardSize = 1` (the
     * historical one-shard-per-node layout) at any thread count.
     * Batching matters at scale: 10k nodes at the default shard size
     * build ~160 shard sinks per interval instead of 10k.
     */
    int shardSize = 64;
};

/**
 * N uniformly built servers (optionally managed).
 */
class NodePool
{
  public:
    /** One server and (when managed) its control plane. */
    struct Node
    {
        std::unique_ptr<sim::Server> server;
        std::unique_ptr<core::ServerManager> manager; ///< null if raw

        // Crash-isolation bookkeeping (driver-side state, not
        // simulated hardware): a crashed node sits out intervals
        // with exponential backoff, then rejoins.
        int crashStreak = 0;        ///< consecutive faulted runs
        int cooldown = 0;           ///< intervals left to sit out
        std::uint64_t attempts = 0; ///< runAll() attempts (roll salt)
    };

    explicit NodePool(const NodePoolConfig &config);

    std::size_t size() const { return node_list.size(); }
    Node &operator[](std::size_t ix) { return node_list[ix]; }
    const Node &operator[](std::size_t ix) const
    {
        return node_list[ix];
    }

    std::vector<Node>::iterator begin() { return node_list.begin(); }
    std::vector<Node>::iterator end() { return node_list.end(); }
    std::vector<Node>::const_iterator begin() const
    {
        return node_list.begin();
    }
    std::vector<Node>::const_iterator end() const
    {
        return node_list.end();
    }

    /**
     * Step every managed node forward by @p duration, in parallel on
     * the global thread pool in contiguous per-shard batches (see
     * NodePoolConfig::shardSize).  Nodes are fully independent within
     * an interval (own server, manager, rng and telemetry bus) and no
     * lock is taken on the step path, so the result is bit-identical
     * to stepping them serially regardless of PSM_THREADS.
     *
     * @param driver_tel Optional driver bus: receives one
     *        "cluster.node_step" wall-clock observation per node
     *        (published race-free via per-shard telemetry sinks and
     *        merged in shard order — node order — via the dense
     *        O(#events) trace fold) plus one "cluster.step"
     *        observation for the whole interval.
     */
    void runAll(Tick duration, core::Telemetry *driver_tel = nullptr);

    /** Sum of every node's metered energy. */
    Joules totalEnergy() const;

    /**
     * Cluster-scope telemetry: every managed node's bus folded into
     * one (counters and timers add up, decision records append),
     * plus the pool's own isolation counters when no driver bus
     * collected them.
     */
    core::Telemetry aggregateTelemetry() const;

    /** Cluster-wide sum of one counter across the pool bus and every
     * managed node — cheaper than folding whole buses when a driver
     * only wants a single rollup (e.g. allocator cache hit counts).
     * Registered names resolve to their dense trace::EventId once and
     * fold as O(nodes) array reads; unregistered (overflow) names
     * fall back to the per-node string maps. */
    std::uint64_t aggregateCounter(const std::string &key) const;

    /** Cluster-wide fold of one timer, same scope and dense-lookup
     * rules as aggregateCounter(). */
    core::TimerStat aggregateTimer(const std::string &key) const;

    /**
     * Fold the pool bus plus every managed node's registered
     * aggregates into one dense trace sink — O(nodes × #events), no
     * string maps.  The serving layer builds its STATS snapshot from
     * this.
     */
    void foldTrace(trace::TraceSink &out) const;

    /** Read-only per-node view for external observers (the serving
     * layer's telemetry path reads this instead of walking live
     * control-plane objects). */
    struct NodeSnapshot
    {
        Tick now = 0;
        Watts cap = 0.0;
        int activeApps = 0;
        int freeSockets = 0;
        std::uint64_t reallocations = 0; ///< allocator passes so far
        std::uint64_t events = 0;        ///< E1-E4 seen by the loop
        Joules energy = 0.0;             ///< metered total energy
    };

    /** Snapshot every node (managed or raw) in index order. */
    std::vector<NodeSnapshot> snapshot() const;

    /** The pool's fault oracle (node-crash rolls). */
    const util::FaultInjector &faultInjector() const
    {
        return fault_injector;
    }

  private:
    std::vector<Node> node_list;
    util::FaultInjector fault_injector;
    std::size_t shard_size;
    /** Shard sink when runAll is called without a driver bus. */
    core::Telemetry pool_tel;

    void isolate(Node &node, core::Telemetry &shard,
                 trace::EventId fault_counter);
    void stepNode(std::size_t ix, Tick duration,
                  core::Telemetry &shard);
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_NODE_POOL_HH
