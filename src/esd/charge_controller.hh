/**
 * @file
 * Charge controller: decides the ESD power flow each interval given
 * the server cap and demand, enforcing Eq. 3 (charging must fit under
 * the cap) and Eq. 4 (discharge covers demand above the cap).
 */

#ifndef PSM_ESD_CHARGE_CONTROLLER_HH
#define PSM_ESD_CHARGE_CONTROLLER_HH

#include "battery.hh"
#include "util/units.hh"

namespace psm::esd
{

/** The controller's decision for one interval. */
struct EsdFlow
{
    Watts charge = 0.0;    ///< wall power drawn into the ESD
    Watts discharge = 0.0; ///< power delivered from the ESD
};

/**
 * Stateless policy around a Battery; the coordinator asks it what
 * flow to apply for one interval and then applies it.
 */
class ChargeController
{
  public:
    explicit ChargeController(Battery &battery);

    /**
     * Decide the flow for an interval where the server internals
     * draw @p server_demand and the cap is @p cap:
     *
     *  - demand above the cap is covered by discharge (up to the
     *    battery's limits);
     *  - headroom below the cap charges the battery, unless
     *    @p allow_charge is false (e.g. during ON phases when every
     *    spare watt should go to applications).
     */
    EsdFlow plan(Watts server_demand, Watts cap,
                 bool allow_charge = true) const;

    /**
     * Apply a planned flow for @p dt, respecting battery state; the
     * returned flow reflects what actually happened (e.g. a nearly
     * full battery tapers its charge).
     */
    EsdFlow apply(const EsdFlow &flow, Tick dt);

    Battery &battery() { return bat; }
    const Battery &battery() const { return bat; }

  private:
    Battery &bat;
};

} // namespace psm::esd

#endif // PSM_ESD_CHARGE_CONTROLLER_HH
