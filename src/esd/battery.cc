#include "battery.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::esd
{

double
BatteryConfig::roundTripEfficiency() const
{
    return chargeEfficiency * dischargeEfficiency;
}

void
BatteryConfig::validate() const
{
    if (capacity <= 0.0)
        fatal("battery capacity must be positive");
    if (maxChargePower <= 0.0 || maxDischargePower <= 0.0)
        fatal("battery power limits must be positive");
    if (chargeEfficiency <= 0.0 || chargeEfficiency > 1.0 ||
        dischargeEfficiency <= 0.0 || dischargeEfficiency > 1.0) {
        fatal("battery efficiencies must lie in (0, 1]");
    }
    if (selfDischargePerHour < 0.0 || selfDischargePerHour >= 1.0)
        fatal("self-discharge rate must lie in [0, 1)");
    if (initialSoc < 0.0 || initialSoc > 1.0)
        fatal("initial SoC must lie in [0, 1]");
}

BatteryConfig
leadAcidUps()
{
    BatteryConfig c;
    c.chemistry = "lead-acid";
    c.capacity = 5000.0;
    c.maxChargePower = 30.0;
    c.maxDischargePower = 60.0;
    c.chargeEfficiency = 0.90;
    c.dischargeEfficiency = 0.89;
    c.selfDischargePerHour = 0.001;
    c.initialSoc = 0.0;
    c.validate();
    return c;
}

BatteryConfig
liIonPack()
{
    BatteryConfig c;
    c.chemistry = "li-ion";
    c.capacity = 5000.0;
    c.maxChargePower = 60.0;
    c.maxDischargePower = 120.0;
    c.chargeEfficiency = 0.97;
    c.dischargeEfficiency = 0.96;
    c.selfDischargePerHour = 0.0002;
    c.initialSoc = 0.0;
    c.validate();
    return c;
}

BatteryConfig
paperExampleEsd()
{
    BatteryConfig c;
    c.chemistry = "lead-acid";
    c.capacity = 200.0;
    c.maxChargePower = 20.0;
    c.maxDischargePower = 60.0;
    // The Fig. 5 walk-through uses ideal storage arithmetic (200 J
    // banked sustains exactly 200 J of extra draw).
    c.chargeEfficiency = 1.0;
    c.dischargeEfficiency = 1.0;
    c.selfDischargePerHour = 0.0;
    c.initialSoc = 0.0;
    c.validate();
    return c;
}

Battery::Battery(BatteryConfig config) : cfg(std::move(config))
{
    cfg.validate();
    stored_energy = cfg.initialSoc * cfg.capacity;
}

Watts
Battery::charge(Watts offered, Tick dt)
{
    psm_assert(offered >= 0.0);
    if (dt == 0 || offered <= 0.0 || full())
        return 0.0;

    Watts wall = std::min(offered, cfg.maxChargePower);
    Joules would_store = energyOver(wall, dt) * cfg.chargeEfficiency;
    Joules room = cfg.capacity - stored_energy;
    if (would_store > room) {
        // Taper: only draw what the remaining capacity can absorb.
        would_store = room;
        wall = room / cfg.chargeEfficiency / toSeconds(dt);
    }
    stored_energy += would_store;
    wall_in += energyOver(wall, dt);
    return wall;
}

Watts
Battery::discharge(Watts requested, Tick dt)
{
    psm_assert(requested >= 0.0);
    if (dt == 0 || requested <= 0.0 || empty())
        return 0.0;

    Watts delivered = std::min(requested, cfg.maxDischargePower);
    Joules from_store =
        energyOver(delivered, dt) / cfg.dischargeEfficiency;
    if (from_store > stored_energy) {
        from_store = stored_energy;
        delivered =
            from_store * cfg.dischargeEfficiency / toSeconds(dt);
    }
    stored_energy -= from_store;
    delivered_out += energyOver(delivered, dt);
    return delivered;
}

void
Battery::rest(Tick dt)
{
    if (dt == 0 || stored_energy <= 0.0)
        return;
    double hours = toSeconds(dt) / 3600.0;
    double keep = std::pow(1.0 - cfg.selfDischargePerHour, hours);
    stored_energy *= keep;
}

void
Battery::fadeCapacity(double factor)
{
    psm_assert(factor > 0.0 && factor <= 1.0);
    cfg.capacity *= factor;
    stored_energy = std::min(stored_energy, cfg.capacity);
}

Tick
Battery::sustainTime(Watts delivered) const
{
    if (delivered <= 0.0)
        return maxTick;
    Watts actual = std::min(delivered, cfg.maxDischargePower);
    double seconds =
        stored_energy * cfg.dischargeEfficiency / actual;
    return toTicks(seconds);
}

Tick
Battery::timeToFull(Watts offered) const
{
    if (offered <= 0.0)
        return maxTick;
    Watts wall = std::min(offered, cfg.maxChargePower);
    double stored_per_sec = wall * cfg.chargeEfficiency;
    if (stored_per_sec <= 0.0)
        return maxTick;
    return toTicks((cfg.capacity - stored_energy) / stored_per_sec);
}

double
Battery::equivalentCycles() const
{
    return delivered_out / cfg.dischargeEfficiency / cfg.capacity;
}

} // namespace psm::esd
