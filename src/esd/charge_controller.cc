#include "charge_controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::esd
{

ChargeController::ChargeController(Battery &battery) : bat(battery)
{
}

EsdFlow
ChargeController::plan(Watts server_demand, Watts cap,
                       bool allow_charge) const
{
    psm_assert(server_demand >= 0.0);
    EsdFlow flow;
    if (server_demand > cap) {
        // Eq. 4: bridge the deficit from storage.
        Watts deficit = server_demand - cap;
        flow.discharge = std::min(deficit,
                                  bat.config().maxDischargePower);
        if (bat.empty())
            flow.discharge = 0.0;
    } else if (allow_charge && !bat.full()) {
        // Eq. 3: bank the headroom.
        Watts headroom = cap - server_demand;
        flow.charge = std::min(headroom, bat.config().maxChargePower);
    }
    return flow;
}

EsdFlow
ChargeController::apply(const EsdFlow &flow, Tick dt)
{
    EsdFlow actual;
    if (flow.charge > 0.0)
        actual.charge = bat.charge(flow.charge, dt);
    else if (flow.discharge > 0.0)
        actual.discharge = bat.discharge(flow.discharge, dt);
    else
        bat.rest(dt);
    return actual;
}

} // namespace psm::esd
