/**
 * @file
 * Energy storage device (ESD) model.
 *
 * The paper equips the server with a Lead-Acid UPS and uses it to
 * time-shift power (Requirement R4): bank energy when the cap leaves
 * headroom, spend it to exceed the cap while both applications run
 * concurrently, amortizing the non-convex P_cm.
 *
 * The model tracks state of charge with separate charge and discharge
 * efficiencies (their product is the round-trip efficiency eta in the
 * paper's Eq. 5), power limits in both directions, and self-discharge.
 */

#ifndef PSM_ESD_BATTERY_HH
#define PSM_ESD_BATTERY_HH

#include <string>

#include "util/units.hh"

namespace psm::esd
{

/** Static parameters of an energy storage device. */
struct BatteryConfig
{
    std::string chemistry = "lead-acid";
    Joules capacity = 5000.0;      ///< usable energy capacity
    Watts maxChargePower = 30.0;   ///< wall power limit when charging
    Watts maxDischargePower = 60.0; ///< delivery limit when discharging
    double chargeEfficiency = 0.90; ///< stored / drawn-from-wall
    double dischargeEfficiency = 0.89; ///< delivered / drawn-from-store
    double selfDischargePerHour = 0.001; ///< SoC fraction lost per hour
    double initialSoc = 0.0;       ///< starting state of charge [0,1]

    /** Round-trip efficiency eta = chargeEff * dischargeEff. */
    double roundTripEfficiency() const;

    /** Validate ranges; calls fatal() on nonsense. */
    void validate() const;
};

/**
 * A Lead-Acid UPS preset matching the paper's platform: ~80%
 * round-trip efficiency, which yields the 60-40 OFF-ON duty cycle the
 * paper reports at the 80 W cap.
 */
BatteryConfig leadAcidUps();

/**
 * The tiny illustrative device of the paper's Fig. 5 walk-through:
 * 200 J charged from 20 W of headroom.
 */
BatteryConfig paperExampleEsd();

/**
 * A Li-ion pack of comparable usable energy: higher round-trip
 * efficiency and power limits, faster self-discharge than the paper's
 * Lead-Acid UPS but far better cycle behaviour.  Provided for the
 * chemistry ablation (the paper's ESD-placement citations compare
 * chemistries this way).
 */
BatteryConfig liIonPack();

/**
 * Stateful battery: integrates charge/discharge over simulation time.
 */
class Battery
{
  public:
    explicit Battery(BatteryConfig config);

    const BatteryConfig &config() const { return cfg; }

    /** Stored energy in joules. */
    Joules stored() const { return stored_energy; }

    /** State of charge in [0, 1]. */
    double soc() const { return stored_energy / cfg.capacity; }

    bool full() const { return stored_energy >= cfg.capacity - 1e-9; }
    bool empty() const { return stored_energy <= 1e-9; }

    /**
     * Charge from the wall for @p dt at up to @p offered watts.
     *
     * @return The wall power actually drawn (limited by the charge
     *         power limit and remaining capacity).
     */
    Watts charge(Watts offered, Tick dt);

    /**
     * Discharge for @p dt, requesting @p requested watts of delivered
     * power.
     *
     * @return The power actually delivered (limited by the discharge
     *         power limit and stored energy).
     */
    Watts discharge(Watts requested, Tick dt);

    /** Let @p dt pass with no charge or discharge (self-discharge). */
    void rest(Tick dt);

    /**
     * Permanently shrink the usable capacity to @p factor of its
     * current value (cell aging / failure), clamping stored energy to
     * the new ceiling.  The planner sees the faded capacity through
     * config() on its next decision.
     */
    void fadeCapacity(double factor);

    /**
     * Longest duration the battery can sustain @p delivered watts of
     * output from its current charge; maxTick when delivered <= 0.
     */
    Tick sustainTime(Watts delivered) const;

    /**
     * Time to charge from the current level to full with @p offered
     * wall watts; maxTick when no effective charging is possible.
     */
    Tick timeToFull(Watts offered) const;

    // --- Lifetime accounting ---------------------------------------
    /** Total energy drawn from the wall while charging. */
    Joules totalChargedFromWall() const { return wall_in; }
    /** Total energy delivered to the server while discharging. */
    Joules totalDelivered() const { return delivered_out; }
    /** Equivalent full cycles so far (discharge throughput). */
    double equivalentCycles() const;

  private:
    BatteryConfig cfg;
    Joules stored_energy;
    Joules wall_in = 0.0;
    Joules delivered_out = 0.0;
};

} // namespace psm::esd

#endif // PSM_ESD_BATTERY_HH
