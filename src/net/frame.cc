#include "frame.hh"

#include <algorithm>
#include <cstring>

namespace psm::net
{

bool
validFrameType(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(FrameType::Hello) &&
           raw <= static_cast<std::uint8_t>(FrameType::Error);
}

std::string
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello:
        return "HELLO";
      case FrameType::HelloAck:
        return "HELLO-ACK";
      case FrameType::Event:
        return "EVENT";
      case FrameType::EventReply:
        return "EVENT-REPLY";
      case FrameType::Query:
        return "QUERY";
      case FrameType::QueryReply:
        return "QUERY-REPLY";
      case FrameType::Stats:
        return "STATS";
      case FrameType::StatsReply:
        return "STATS-REPLY";
      case FrameType::Shutdown:
        return "SHUTDOWN";
      case FrameType::ShutdownAck:
        return "SHUTDOWN-ACK";
      case FrameType::Error:
        return "ERROR";
    }
    return "UNKNOWN";
}

namespace
{

void
putLe32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

} // namespace

void
encodeFrame(FrameType type, std::uint32_t request_id,
            const std::vector<std::uint8_t> &payload,
            std::vector<std::uint8_t> &out)
{
    out.reserve(out.size() + kHeaderSize + payload.size());
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    out.push_back(kProtocolVersion);
    out.push_back(static_cast<std::uint8_t>(type));
    putLe32(out, request_id);
    putLe32(out, static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    std::vector<std::uint8_t> out;
    encodeFrame(frame.type, frame.requestId, frame.payload, out);
    return out;
}

// --- WireWriter ----------------------------------------------------

void
WireWriter::putU16(std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void
WireWriter::putU32(std::uint32_t v)
{
    putU16(static_cast<std::uint16_t>(v & 0xffff));
    putU16(static_cast<std::uint16_t>(v >> 16));
}

void
WireWriter::putU64(std::uint64_t v)
{
    putU32(static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32(static_cast<std::uint32_t>(v >> 32));
}

void
WireWriter::putI32(std::int32_t v)
{
    putU32(static_cast<std::uint32_t>(v));
}

void
WireWriter::putF64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
WireWriter::putString(const std::string &s)
{
    std::size_t len = std::min<std::size_t>(s.size(), 0xffff);
    putU16(static_cast<std::uint16_t>(len));
    buf.insert(buf.end(), s.begin(), s.begin() + len);
}

// --- WireReader ----------------------------------------------------

bool
WireReader::take(std::size_t count, const std::uint8_t *&out)
{
    if (failed || n - pos < count) {
        failed = true;
        return false;
    }
    out = p + pos;
    pos += count;
    return true;
}

std::uint8_t
WireReader::u8()
{
    const std::uint8_t *b;
    return take(1, b) ? b[0] : 0;
}

std::uint16_t
WireReader::u16()
{
    const std::uint8_t *b;
    if (!take(2, b))
        return 0;
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t
WireReader::u32()
{
    const std::uint8_t *b;
    if (!take(4, b))
        return 0;
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t
WireReader::u64()
{
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | (hi << 32);
}

std::int32_t
WireReader::i32()
{
    return static_cast<std::int32_t>(u32());
}

double
WireReader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    std::uint16_t len = u16();
    const std::uint8_t *b;
    if (!take(len, b))
        return std::string();
    return std::string(reinterpret_cast<const char *>(b), len);
}

} // namespace psm::net
