/**
 * @file
 * A recycling object pool for request objects on the serving hot
 * path.
 *
 * The reactor parses thousands of requests per second; heap-allocating
 * each one churns the allocator from two threads.  The pool owns every
 * object it ever created and hands out RAII pointers that return to
 * the free list instead of deleting, so the steady state performs no
 * allocation at all — the pool only grows while concurrent demand
 * exceeds anything seen before.
 *
 * Thread-safe: acquire and release take a small spin of a mutex (the
 * critical section is a vector push/pop).  The pool must outlive
 * every Ptr it handed out.  Objects are NOT reset between uses —
 * callers overwrite every field they read.
 */

#ifndef PSM_NET_OBJECT_POOL_HH
#define PSM_NET_OBJECT_POOL_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace psm::net
{

template <typename T>
class ObjectPool
{
  public:
    /** Returns the object to its pool instead of deleting it. */
    struct Recycler
    {
        ObjectPool *pool = nullptr;

        void
        operator()(T *obj) const
        {
            if (pool && obj)
                pool->release(obj);
        }
    };

    using Ptr = std::unique_ptr<T, Recycler>;

    /** @param reserve Objects created eagerly. */
    explicit ObjectPool(std::size_t reserve = 0)
    {
        for (std::size_t i = 0; i < reserve; ++i) {
            storage.push_back(std::make_unique<T>());
            free_list.push_back(storage.back().get());
        }
    }

    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /** Take an object (recycled when possible, created otherwise). */
    Ptr
    acquire()
    {
        std::lock_guard lk(mtx);
        T *obj;
        if (free_list.empty()) {
            storage.push_back(std::make_unique<T>());
            obj = storage.back().get();
        } else {
            obj = free_list.back();
            free_list.pop_back();
        }
        return Ptr(obj, Recycler{this});
    }

    /** Objects ever created (high-water mark of concurrent demand). */
    std::size_t
    created() const
    {
        std::lock_guard lk(mtx);
        return storage.size();
    }

    /** Objects currently handed out. */
    std::size_t
    outstanding() const
    {
        std::lock_guard lk(mtx);
        return storage.size() - free_list.size();
    }

  private:
    friend Recycler;

    void
    release(T *obj)
    {
        std::lock_guard lk(mtx);
        free_list.push_back(obj);
    }

    mutable std::mutex mtx;
    std::vector<std::unique_ptr<T>> storage;
    std::vector<T *> free_list;
};

} // namespace psm::net

#endif // PSM_NET_OBJECT_POOL_HH
