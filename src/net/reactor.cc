#include "reactor.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.hh"

namespace psm::net
{

namespace
{

constexpr std::uint64_t kWakeId = 0;
constexpr std::uint64_t kListenId = 1;

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        fatal("cannot make fd %d non-blocking: %s", fd,
              std::strerror(errno));
    }
}

} // namespace

Reactor::Reactor(Handler &h) : handler(h)
{
    epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0)
        fatal("epoll_create1: %s", std::strerror(errno));
    wakefd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakefd < 0)
        fatal("eventfd: %s", std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeId;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, wakefd, &ev) < 0)
        fatal("epoll_ctl(wakefd): %s", std::strerror(errno));
}

Reactor::~Reactor()
{
    for (auto &[id, conn] : conns)
        ::close(conn->fd);
    conns.clear();
    if (listenfd >= 0)
        ::close(listenfd);
    ::close(wakefd);
    ::close(epfd);
}

void
Reactor::wake()
{
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakefd, &one, sizeof(one));
}

std::uint64_t
Reactor::addConnection(int fd)
{
    setNonBlocking(fd);
    std::uint64_t id;
    {
        std::lock_guard lk(mtx);
        id = next_id++;
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = id;
        conns.emplace(id, std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) < 0)
        fatal("epoll_ctl(add conn): %s", std::strerror(errno));
    return id;
}

void
Reactor::setListener(int fd)
{
    setNonBlocking(fd);
    listenfd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenId;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) < 0)
        fatal("epoll_ctl(listener): %s", std::strerror(errno));
}

bool
Reactor::send(std::uint64_t id, std::vector<std::uint8_t> bytes)
{
    {
        std::lock_guard lk(mtx);
        auto it = conns.find(id);
        if (it == conns.end())
            return false;
        it->second->outq.push_back(std::move(bytes));
        flush_pending.push_back(id);
    }
    wake();
    return true;
}

std::size_t
Reactor::connectionCount() const
{
    std::lock_guard lk(mtx);
    return conns.size();
}

void
Reactor::stop()
{
    {
        std::lock_guard lk(mtx);
        stop_flag = true;
    }
    wake();
}

void
Reactor::updateInterest(Conn &conn, bool want_write)
{
    if (conn.want_write == want_write)
        return;
    conn.want_write = want_write;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    ev.data.u64 = conn.id;
    if (::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev) < 0)
        fatal("epoll_ctl(mod): %s", std::strerror(errno));
}

bool
Reactor::flushLocked(Conn &conn)
{
    while (!conn.outq.empty()) {
        const std::vector<std::uint8_t> &chunk = conn.outq.front();
        while (conn.out_off < chunk.size()) {
            ssize_t n = ::write(conn.fd, chunk.data() + conn.out_off,
                                chunk.size() - conn.out_off);
            if (n > 0) {
                conn.out_off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                updateInterest(conn, true);
                return true;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EPIPE & friends: peer is gone
        }
        conn.outq.pop_front();
        conn.out_off = 0;
    }
    updateInterest(conn, false);
    return true;
}

void
Reactor::closeConn(std::uint64_t id)
{
    int fd = -1;
    {
        std::lock_guard lk(mtx);
        auto it = conns.find(id);
        if (it == conns.end())
            return;
        fd = it->second->fd;
        conns.erase(it);
    }
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    handler.onDisconnect(id);
}

void
Reactor::acceptPending()
{
    for (;;) {
        int fd = ::accept4(listenfd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("accept failed: %s", std::strerror(errno));
            return;
        }
        std::uint64_t id = addConnection(fd);
        handler.onAccept(id);
    }
}

void
Reactor::handleReadable(std::uint64_t id)
{
    // The fd and reader are only touched on this (the reactor)
    // thread; the lock is needed just to look the connection up.
    Conn *conn;
    {
        std::lock_guard lk(mtx);
        auto it = conns.find(id);
        if (it == conns.end())
            return;
        conn = it->second.get();
    }

    std::uint8_t buf[16384];
    bool peer_gone = false;
    for (;;) {
        ssize_t n = ::read(conn->fd, buf, sizeof(buf));
        if (n > 0) {
            conn->reader.feed(buf, static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof(buf)))
                break; // short read: the socket is drained
            continue;
        }
        if (n == 0) {
            peer_gone = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        peer_gone = true;
        break;
    }

    Frame frame;
    for (;;) {
        DecodeResult r = conn->reader.next(frame);
        if (r == DecodeResult::Frame) {
            handler.onFrame(id, std::move(frame));
            continue;
        }
        if (r == DecodeResult::Error) {
            warn("dropping connection %llu: %s",
                 static_cast<unsigned long long>(id),
                 conn->reader.error().c_str());
            peer_gone = true;
        }
        break;
    }

    if (peer_gone)
        closeConn(id);
}

void
Reactor::handleWritable(std::uint64_t id)
{
    bool ok = true;
    {
        std::lock_guard lk(mtx);
        auto it = conns.find(id);
        if (it == conns.end())
            return;
        ok = flushLocked(*it->second);
    }
    if (!ok)
        closeConn(id);
}

void
Reactor::run()
{
    epoll_event events[64];
    for (;;) {
        {
            std::lock_guard lk(mtx);
            if (stop_flag) {
                // Best-effort final flush: replies queued just before
                // stop() (e.g. stop-time sheds) must still reach
                // their sockets; a full kernel buffer gives up.
                flush_pending.clear();
                for (auto &[id, conn] : conns)
                    flushLocked(*conn);
                return;
            }
        }

        int n = ::epoll_wait(epfd, events, 64, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("epoll_wait: %s", std::strerror(errno));
        }

        for (int i = 0; i < n; ++i) {
            std::uint64_t id = events[i].data.u64;
            std::uint32_t what = events[i].events;
            if (id == kWakeId) {
                std::uint64_t drain;
                while (::read(wakefd, &drain, sizeof(drain)) > 0) {
                }
                continue;
            }
            if (id == kListenId) {
                acceptPending();
                continue;
            }
            if (what & (EPOLLHUP | EPOLLERR)) {
                closeConn(id);
                continue;
            }
            if (what & EPOLLIN)
                handleReadable(id);
            if (what & EPOLLOUT)
                handleWritable(id);
        }

        // Flush replies queued by other threads since the last pass.
        std::vector<std::uint64_t> pending;
        {
            std::lock_guard lk(mtx);
            pending.swap(flush_pending);
        }
        std::vector<std::uint64_t> dead;
        {
            std::lock_guard lk(mtx);
            for (std::uint64_t id : pending) {
                auto it = conns.find(id);
                if (it == conns.end())
                    continue;
                if (!flushLocked(*it->second))
                    dead.push_back(id);
            }
        }
        for (std::uint64_t id : dead)
            closeConn(id);
    }
}

} // namespace psm::net
