/**
 * @file
 * An epoll-based non-blocking reactor: the daemon's transport thread.
 *
 * One thread calls run() and owns all socket I/O: it accepts new
 * connections from an optional listener, reads whatever bytes are
 * ready, feeds each connection's incremental FrameReader, and invokes
 * the Handler for every complete frame.  Writes are buffered
 * per-connection and flushed opportunistically; when the kernel
 * buffer fills, EPOLLOUT interest drains the rest.
 *
 * Other threads interact through two thread-safe entry points:
 * send() (the control thread queues replies; an eventfd wakes the
 * reactor to flush them) and addConnection() (adopt a connected fd,
 * e.g. one end of a socketpair).  A connection whose stream turns to
 * garbage — bad magic, unknown version or type, oversized frame — is
 * dropped, never resynchronized.
 */

#ifndef PSM_NET_REACTOR_HH
#define PSM_NET_REACTOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "frame.hh"
#include "message_reader.hh"

namespace psm::net
{

class Reactor
{
  public:
    /** The layer above (the serve service). Callbacks run on the
     * reactor thread with no reactor lock held, so they may call
     * send() freely. */
    struct Handler
    {
        virtual ~Handler() = default;
        /** One complete, validated frame arrived. */
        virtual void onFrame(std::uint64_t conn, Frame &&frame) = 0;
        /** The peer vanished (EOF, error, or garbage framing). */
        virtual void onDisconnect(std::uint64_t conn) = 0;
        /** A listener produced a new connection. */
        virtual void onAccept(std::uint64_t conn) { (void)conn; }
    };

    explicit Reactor(Handler &handler);
    ~Reactor();

    Reactor(const Reactor &) = delete;
    Reactor &operator=(const Reactor &) = delete;

    /**
     * Adopt a connected stream fd (made non-blocking here).
     * Thread-safe; usable before and during run().
     *
     * @return The connection id used in callbacks and send().
     */
    std::uint64_t addConnection(int fd);

    /** Install a listening fd; the reactor accepts from it.  Call
     * before run(). */
    void setListener(int fd);

    /**
     * Queue bytes for a connection and wake the reactor to flush.
     * Thread-safe.  @return false when the connection is gone.
     */
    bool send(std::uint64_t conn, std::vector<std::uint8_t> bytes);

    /** Run the event loop until stop(); call from the reactor
     * thread. */
    void run();

    /** Ask run() to return; thread-safe and idempotent. */
    void stop();

    /** Live connections (thread-safe gauge). */
    std::size_t connectionCount() const;

  private:
    struct Conn
    {
        int fd = -1;
        std::uint64_t id = 0;
        FrameReader reader;
        std::deque<std::vector<std::uint8_t>> outq;
        std::size_t out_off = 0; ///< bytes of outq.front() written
        bool want_write = false; ///< EPOLLOUT currently armed
    };

    Handler &handler;
    int epfd = -1;
    int wakefd = -1;
    int listenfd = -1;
    bool stop_flag = false; ///< guarded by mtx

    mutable std::mutex mtx;
    std::map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::vector<std::uint64_t> flush_pending;
    std::uint64_t next_id = 2; ///< 0 = wake, 1 = listener

    void wake();
    void acceptPending();
    void handleReadable(std::uint64_t id);
    void handleWritable(std::uint64_t id);
    /** Write the out-queue until empty or EAGAIN; manages EPOLLOUT.
     * Caller holds mtx.  @return false on a dead peer. */
    bool flushLocked(Conn &conn);
    void closeConn(std::uint64_t id);
    void updateInterest(Conn &conn, bool want_write);
};

} // namespace psm::net

#endif // PSM_NET_REACTOR_HH
