/**
 * @file
 * The wire format of the serving daemon: length-prefixed binary
 * frames with a versioned fixed header.
 *
 * Every frame is
 *
 *   offset  size  field
 *        0     2  magic "PS"
 *        2     1  protocol version (kProtocolVersion)
 *        3     1  frame type (FrameType)
 *        4     4  request id (little-endian; echoed in replies)
 *        8     4  payload length (little-endian, <= kMaxPayload)
 *       12     N  payload
 *
 * The payload encoding is frame-type specific (src/serve/protocol.hh);
 * this layer only moves validated byte vectors.  All multi-byte
 * integers are little-endian regardless of host order, and doubles
 * travel as the little-endian bytes of their IEEE-754 bit pattern, so
 * a trace recorded on one host replays bit-exactly on another.
 */

#ifndef PSM_NET_FRAME_HH
#define PSM_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace psm::net
{

constexpr std::uint8_t kMagic0 = 'P';
constexpr std::uint8_t kMagic1 = 'S';
/** v2: E2 arrivals carry a workload class + per-request SLO field. */
constexpr std::uint8_t kProtocolVersion = 2;
constexpr std::size_t kHeaderSize = 12;
/** Upper bound on a single frame's payload; larger lengths are a
 * protocol violation, not a big message. */
constexpr std::size_t kMaxPayload = 64 * 1024;

/** Every frame kind of the protocol. */
enum class FrameType : std::uint8_t
{
    Hello = 1,    ///< client handshake (version + name)
    HelloAck,     ///< server handshake reply
    Event,        ///< one E1-E4 submission (serve::EventRequest)
    EventReply,   ///< decision/shed/expiry reply (serve::EventReply)
    Query,        ///< telemetry counter lookup by name
    QueryReply,   ///< counter value (or not-found)
    Stats,        ///< full service snapshot request (empty payload)
    StatsReply,   ///< serve::StatsSnapshot
    Shutdown,     ///< ask the daemon to stop (empty payload)
    ShutdownAck,  ///< daemon acknowledges; it stops afterwards
    Error,        ///< request-level failure (string message)
};

/** True when @p raw names a defined FrameType. */
bool validFrameType(std::uint8_t raw);

/** Printable frame-type name. */
std::string frameTypeName(FrameType type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::uint32_t requestId = 0;
    std::vector<std::uint8_t> payload;
};

/** Append one encoded frame to @p out. */
void encodeFrame(FrameType type, std::uint32_t request_id,
                 const std::vector<std::uint8_t> &payload,
                 std::vector<std::uint8_t> &out);

/** Convenience: encode into a fresh buffer. */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Little-endian payload builder.  Appending never fails; take() moves
 * the buffer out.
 */
class WireWriter
{
  public:
    void putU8(std::uint8_t v) { buf.push_back(v); }
    void putU16(std::uint16_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI32(std::int32_t v);
    /** IEEE-754 bit pattern, little-endian. */
    void putF64(double v);
    /** u16 byte length followed by the bytes (no terminator). */
    void putString(const std::string &s);

    const std::vector<std::uint8_t> &bytes() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

/**
 * Bounds-checked little-endian payload parser.  A read past the end
 * (or a malformed string) latches the fail flag and returns zero
 * values; callers check good() once after parsing a whole payload.
 */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t len)
        : p(data), n(len)
    {
    }
    explicit WireReader(const std::vector<std::uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    double f64();
    std::string str();

    /** No read failed so far. */
    bool good() const { return !failed; }
    /** Every payload byte was consumed (trailing garbage check). */
    bool atEnd() const { return pos == n; }

  private:
    const std::uint8_t *p;
    std::size_t n;
    std::size_t pos = 0;
    bool failed = false;

    bool take(std::size_t count, const std::uint8_t *&out);
};

} // namespace psm::net

#endif // PSM_NET_FRAME_HH
