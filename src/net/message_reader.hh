/**
 * @file
 * Incremental frame decoding for non-blocking sockets.
 *
 * A FrameReader accumulates whatever byte slices the reactor's reads
 * produce — a frame may arrive in one read, split across many, or
 * glued to its neighbours — and yields complete, validated frames.
 * Malformed input (bad magic, unknown version or type, oversized
 * length) latches an error: framing is unrecoverable once the stream
 * desynchronizes, so the owning connection must be dropped.
 */

#ifndef PSM_NET_MESSAGE_READER_HH
#define PSM_NET_MESSAGE_READER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "frame.hh"

namespace psm::net
{

/** Outcome of one FrameReader::next() call. */
enum class DecodeResult
{
    NeedMore, ///< no complete frame buffered yet
    Frame,    ///< one frame produced
    Error,    ///< stream corrupt; drop the connection
};

class FrameReader
{
  public:
    /** Append @p len raw bytes from the socket. */
    void
    feed(const std::uint8_t *data, std::size_t len)
    {
        buf.insert(buf.end(), data, data + len);
    }

    void
    feed(const std::vector<std::uint8_t> &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    /**
     * Try to decode the next frame into @p out.  Call repeatedly
     * until it stops returning Frame — one feed() may complete
     * several frames.
     */
    DecodeResult
    next(Frame &out)
    {
        if (failed)
            return DecodeResult::Error;
        std::size_t avail = buf.size() - rd;
        if (avail < kHeaderSize)
            return DecodeResult::NeedMore;

        const std::uint8_t *h = buf.data() + rd;
        if (h[0] != kMagic0 || h[1] != kMagic1)
            return fail("bad frame magic");
        if (h[2] != kProtocolVersion)
            return fail("unsupported protocol version " +
                        std::to_string(h[2]));
        if (!validFrameType(h[3]))
            return fail("unknown frame type " + std::to_string(h[3]));
        std::uint32_t req = le32(h + 4);
        std::uint32_t len = le32(h + 8);
        if (len > kMaxPayload)
            return fail("oversized payload (" + std::to_string(len) +
                        " bytes)");
        if (avail < kHeaderSize + len)
            return DecodeResult::NeedMore;

        out.type = static_cast<FrameType>(h[3]);
        out.requestId = req;
        out.payload.assign(h + kHeaderSize, h + kHeaderSize + len);
        rd += kHeaderSize + len;
        compact();
        return DecodeResult::Frame;
    }

    /** Why the stream failed (empty while healthy). */
    const std::string &error() const { return err; }

    /** Bytes buffered but not yet consumed. */
    std::size_t buffered() const { return buf.size() - rd; }

    /** Forget everything, including a latched error. */
    void
    reset()
    {
        buf.clear();
        rd = 0;
        failed = false;
        err.clear();
    }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t rd = 0;
    bool failed = false;
    std::string err;

    static std::uint32_t
    le32(const std::uint8_t *b)
    {
        return static_cast<std::uint32_t>(b[0]) |
               (static_cast<std::uint32_t>(b[1]) << 8) |
               (static_cast<std::uint32_t>(b[2]) << 16) |
               (static_cast<std::uint32_t>(b[3]) << 24);
    }

    DecodeResult
    fail(std::string why)
    {
        failed = true;
        err = std::move(why);
        return DecodeResult::Error;
    }

    /** Drop consumed bytes once they dominate the buffer, keeping
     * amortized O(1) per byte. */
    void
    compact()
    {
        if (rd == buf.size()) {
            buf.clear();
            rd = 0;
        } else if (rd > 4096 && rd > buf.size() / 2) {
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(rd));
            rd = 0;
        }
    }
};

} // namespace psm::net

#endif // PSM_NET_MESSAGE_READER_HH
