/**
 * @file
 * Chip-maintenance ("uncore") power model — the paper's P_cm.
 *
 * Turning on any core also powers the LLC, on-chip network, memory
 * controller and QPI.  On the paper's server this costs ~20 W and,
 * crucially, is incurred *once* no matter how many applications run,
 * which is the source of the non-convexity that Requirement R4
 * exploits with energy storage (Fig. 5: consolidated duty cycling
 * amortizes P_cm between apps).
 *
 * P_cm vanishes only when every socket enters deep package sleep
 * (PC6); waking from PC6 takes hundreds of microseconds.
 */

#ifndef PSM_POWER_UNCORE_POWER_HH
#define PSM_POWER_UNCORE_POWER_HH

#include "platform.hh"
#include "util/units.hh"

namespace psm::power
{

/**
 * Models P_cm as a step function of server activity, with PC6
 * entry/exit latency.  The default granularity matches the paper's
 * measurements: one server-level lump that turns on with the first
 * active core anywhere.
 */
class UncorePowerModel
{
  public:
    explicit UncorePowerModel(const PlatformConfig &config);

    /**
     * Uncore power for the current activity state.
     *
     * @param any_core_active True when at least one core on the
     *        server is running application work.
     * @return P_cm when active, 0 when the packages are in PC6.
     */
    Watts uncorePower(bool any_core_active) const;

    /** Latency to leave PC6 once work arrives. */
    Tick wakeLatency() const { return config.socketWakeLatency; }

    /**
     * Energy overhead of one PC6 exit (uncore re-powering during the
     * wake window); charged once per sleep/wake cycle.
     */
    Joules wakeEnergy() const;

  private:
    const PlatformConfig &config;
};

} // namespace psm::power

#endif // PSM_POWER_UNCORE_POWER_HH
