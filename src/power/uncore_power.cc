#include "uncore_power.hh"

namespace psm::power
{

UncorePowerModel::UncorePowerModel(const PlatformConfig &config)
    : config(config)
{
}

Watts
UncorePowerModel::uncorePower(bool any_core_active) const
{
    return any_core_active ? config.cmPower : 0.0;
}

Joules
UncorePowerModel::wakeEnergy() const
{
    // During the wake window the uncore draws full P_cm without doing
    // useful work; the window is short (hundreds of microseconds) so
    // this is a small but non-zero tax on every duty cycle.
    return energyOver(config.cmPower, config.socketWakeLatency);
}

} // namespace psm::power
