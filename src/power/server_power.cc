#include "server_power.hh"

#include "util/logging.hh"

namespace psm::power
{

Watts
PowerBreakdown::appTotal() const
{
    Watts sum = 0.0;
    for (const auto &a : apps)
        sum += a.total();
    return sum;
}

Watts
PowerBreakdown::serverPower() const
{
    return idle + uncore + dramBackground + appTotal();
}

Watts
PowerBreakdown::wallPower() const
{
    return serverPower() + esdCharge - esdDischarge;
}

ServerPowerModel::ServerPowerModel(const PlatformConfig &config)
    : config(config), core_model(config), uncore_model(config),
      dram_model(config)
{
}

PowerBreakdown
ServerPowerModel::beginBreakdown(bool any_core_active,
                                 int active_channels) const
{
    psm_assert(active_channels >= 0 &&
               active_channels <= config.sockets);
    PowerBreakdown b;
    b.idle = config.idlePower;
    b.uncore = uncore_model.uncorePower(any_core_active);
    b.dramBackground =
        dram_model.backgroundPower() * active_channels;
    return b;
}

} // namespace psm::power
