#include "dram_power.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::power
{

namespace
{
/** Fraction of peak bandwidth still served when the budget equals the
 * background power (memory controller in maximal throttle). */
constexpr double trickleFraction = 0.02;
} // namespace

DramPowerModel::DramPowerModel(const PlatformConfig &config)
    : config(config)
{
}

Watts
DramPowerModel::backgroundPower() const
{
    return config.dramPowerMin;
}

Watts
DramPowerModel::channelPower(GBps bandwidth) const
{
    psm_assert(bandwidth >= 0.0);
    bandwidth = std::min(bandwidth, config.channelBandwidth);
    return backgroundPower() + config.dramEnergyPerGBps * bandwidth;
}

GBps
DramPowerModel::bandwidthCeiling(Watts budget) const
{
    Watts headroom = budget - backgroundPower();
    GBps trickle = trickleFraction * config.channelBandwidth;
    if (headroom <= 0.0)
        return trickle;
    GBps ceiling = headroom / config.dramEnergyPerGBps;
    return std::clamp(ceiling, trickle, config.channelBandwidth);
}

GBps
DramPowerModel::servedBandwidth(GBps offered, Watts budget) const
{
    psm_assert(offered >= 0.0);
    return std::min({offered, bandwidthCeiling(budget),
                     config.channelBandwidth});
}

Watts
DramPowerModel::throttledPower(GBps offered, Watts budget) const
{
    GBps served = servedBandwidth(offered, budget);
    return channelPower(served);
}

} // namespace psm::power
