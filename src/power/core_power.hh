/**
 * @file
 * Analytic per-core dynamic power model.
 *
 * Core power is split into a linear-in-frequency component (clock
 * distribution, short-circuit) and a cubic component (capacitive
 * switching under voltage/frequency scaling).  Both scale with the
 * core's activity factor — the fraction of cycles the core is doing
 * useful switching rather than stalled on memory, which is why
 * memory-bound applications draw less core power at the same DVFS
 * state (the non-convexity the paper exploits).
 */

#ifndef PSM_POWER_CORE_POWER_HH
#define PSM_POWER_CORE_POWER_HH

#include "platform.hh"
#include "util/units.hh"

namespace psm::power
{

/**
 * Computes the dynamic power of cores as a function of DVFS state and
 * activity.  Stateless aside from the platform calibration.
 */
class CorePowerModel
{
  public:
    explicit CorePowerModel(const PlatformConfig &config);

    /**
     * Dynamic power of one active core.
     *
     * @param freq DVFS frequency of the core.
     * @param activity Activity factor in [0, 1]: 1 = fully busy
     *        compute, lower values model stall-heavy execution.
     * @return Power in watts (0 when activity is 0).
     */
    Watts corePower(GHz freq, double activity) const;

    /**
     * Dynamic power of @p n identical active cores.
     */
    Watts corePower(GHz freq, double activity, int n) const;

    /**
     * Peak power of one core (f_max, activity 1.0) — the calibration
     * anchor.
     */
    Watts peakCorePower() const;

    /**
     * Frequency scaling factor in (0, 1]: corePower(f, a) ==
     * peak * a * freqFactor(f).
     */
    double freqFactor(GHz freq) const;

    /**
     * Invert the model: the highest legal DVFS state at which @p n
     * cores with @p activity stay within @p budget; returns freqMin
     * when even that exceeds the budget.
     */
    GHz maxFreqWithinBudget(Watts budget, double activity, int n) const;

    /**
     * Inverse of freqFactor(): the frequency ratio r (relative to
     * f_max) at which the dynamic power factor equals @p target.
     * Used by RAPL enforcement to translate a desired power reduction
     * into a frequency multiplier (including sub-f_min clock
     * modulation, floored at 5%).
     */
    double inverseFreqFactor(double target) const;

  private:
    const PlatformConfig &config;
};

} // namespace psm::power

#endif // PSM_POWER_CORE_POWER_HH
