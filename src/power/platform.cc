#include "platform.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/mathutil.hh"

namespace psm::power
{

int
PlatformConfig::freqSteps() const
{
    return static_cast<int>(
               std::round((freqMax - freqMin) / freqStep)) + 1;
}

std::vector<GHz>
PlatformConfig::freqLevels() const
{
    std::vector<GHz> levels;
    int steps = freqSteps();
    levels.reserve(static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        // Re-quantize to avoid accumulating floating point drift.
        levels.push_back(quantize(freqMin + i * freqStep, freqStep));
    }
    return levels;
}

std::vector<Watts>
PlatformConfig::dramLevels() const
{
    std::vector<Watts> levels;
    for (Watts m = dramPowerMin; m <= dramPowerMax + 1e-9;
         m += dramPowerStep) {
        levels.push_back(quantize(m, dramPowerStep));
    }
    return levels;
}

std::vector<int>
PlatformConfig::coreLevels() const
{
    std::vector<int> levels;
    for (int n = coresMinPerApp; n <= coresMaxPerApp; ++n)
        levels.push_back(n);
    return levels;
}

std::vector<KnobSetting>
PlatformConfig::knobSpace() const
{
    std::vector<KnobSetting> space;
    auto freqs = freqLevels();
    auto cores = coreLevels();
    auto drams = dramLevels();
    space.reserve(freqs.size() * cores.size() * drams.size());
    for (GHz f : freqs)
        for (int n : cores)
            for (Watts m : drams)
                space.push_back({f, n, m});
    return space;
}

KnobSetting
PlatformConfig::maxSetting() const
{
    return {freqMax, coresMaxPerApp, dramPowerMax};
}

KnobSetting
PlatformConfig::minSetting() const
{
    return {freqMin, coresMinPerApp, dramPowerMin};
}

KnobSetting
PlatformConfig::clampSetting(const KnobSetting &s) const
{
    KnobSetting out;
    out.freq = quantize(std::clamp(s.freq, freqMin, freqMax), freqStep);
    out.cores = std::clamp(s.cores, coresMinPerApp, coresMaxPerApp);
    out.dramPower = quantize(
        std::clamp(s.dramPower, dramPowerMin, dramPowerMax),
        dramPowerStep);
    return out;
}

void
PlatformConfig::validate() const
{
    if (sockets < 1 || coresPerSocket < 1)
        fatal("platform must have at least one socket and core");
    if (freqMin <= 0 || freqMax < freqMin || freqStep <= 0)
        fatal("invalid DVFS range [%f, %f] step %f", freqMin, freqMax,
              freqStep);
    if (coresMinPerApp < 1 || coresMaxPerApp < coresMinPerApp ||
        coresMaxPerApp > totalCores()) {
        fatal("invalid per-app core range [%d, %d]", coresMinPerApp,
              coresMaxPerApp);
    }
    if (dramPowerMin <= 0 || dramPowerMax < dramPowerMin)
        fatal("invalid DRAM power range [%f, %f]", dramPowerMin,
              dramPowerMax);
    if (idlePower < 0 || cmPower < 0 || offPeriodCmPower < 0 ||
        corePeakPower <= 0) {
        fatal("power constants must be non-negative");
    }
    if (coreLinearFraction < 0 || coreLinearFraction > 1)
        fatal("coreLinearFraction must lie in [0, 1]");
}

const PlatformConfig &
defaultPlatform()
{
    static const PlatformConfig config = [] {
        PlatformConfig c;
        c.validate();
        return c;
    }();
    return config;
}

} // namespace psm::power
