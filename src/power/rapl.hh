/**
 * @file
 * Emulation of Intel's Running Average Power Limit (RAPL) interface.
 *
 * The paper reads socket and DRAM power through RAPL energy counters
 * and enforces per-application caps through RAPL power limits (the
 * Util-Unaware baseline) and DRAM power budgets (the m knob).  This
 * module reproduces the software-visible behaviour of that interface:
 *
 *  - monotonically increasing energy counters in 15.3 uJ units that
 *    wrap at 32 bits, exactly like the MSR_*_ENERGY_STATUS registers;
 *  - per-domain power limits with an averaging time window: the
 *    enforcement signal is a throttle factor that the server model
 *    applies to core frequency (package domains) or memory bandwidth
 *    (DRAM domains).
 */

#ifndef PSM_POWER_RAPL_HH
#define PSM_POWER_RAPL_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/units.hh"

namespace psm::power
{

/** RAPL domains on the two-socket platform. */
enum class RaplDomainId
{
    Package0 = 0,
    Package1,
    Dram0,
    Dram1,
    NumDomains,
};

/** Printable name of a domain ("package-0", "dram-1", ...). */
std::string raplDomainName(RaplDomainId id);

/**
 * One RAPL domain: an energy counter plus an optional power limit
 * with an averaging window.
 */
class RaplDomain
{
  public:
    /** Energy unit of the emulated counter: 1/65536 J (15.26 uJ). */
    static constexpr double jouleperUnit = 1.0 / 65536.0;

    /** Construct with the enforcement averaging window. */
    explicit RaplDomain(Tick window = toTicks(0.010));

    /**
     * Account @p power drawn over @p dt: advances the energy counter
     * and the sliding enforcement window.
     */
    void recordEnergy(Watts power, Tick dt);

    /** Raw 32-bit counter value (wraps), as software would read it. */
    std::uint32_t rawCounter() const { return counter; }

    /**
     * Total energy in joules since construction, reconstructed with
     * wrap handling — what a well-written RAPL reader computes.
     */
    Joules totalEnergy() const;

    /** Set (and enable) the power limit for this domain. */
    void setPowerLimit(Watts limit);

    /** Disable the power limit. */
    void clearPowerLimit();

    bool limitEnabled() const { return limited; }
    Watts powerLimit() const { return limit; }

    /** Average power over the enforcement window (0 if empty). */
    Watts windowAveragePower() const;

    /**
     * Enforcement throttle in (0, 1]: 1 when no limit is set.  With a
     * limit, this is the running multiplicative (integral) control
     * state the hardware applies to the domain's full-speed power —
     * it shrinks while the window average rides above the limit and
     * relaxes back toward 1 when the domain is under it.
     */
    double throttleFactor() const;

    /** Ticks spent with windowAveragePower() above an enabled limit. */
    Tick violationTime() const { return violation_time; }

  private:
    Tick window;
    std::uint32_t counter = 0;
    std::uint64_t wraps = 0;
    double unit_remainder = 0.0;
    bool limited = false;
    Watts limit = 0.0;
    double enforce_ratio = 1.0;
    Tick violation_time = 0;

    /** Sliding window of (power, duration) samples. */
    std::deque<std::pair<Watts, Tick>> samples;
    Tick samples_span = 0;
    double samples_area = 0.0; ///< joules in the window
};

/**
 * The whole-server RAPL interface: four domains plus convenience
 * aggregation, mirroring /sys/class/powercap layout.
 */
class RaplInterface
{
  public:
    explicit RaplInterface(Tick window = toTicks(0.010));

    RaplDomain &domain(RaplDomainId id);
    const RaplDomain &domain(RaplDomainId id) const;

    /** Account energy for one domain. */
    void recordEnergy(RaplDomainId id, Watts power, Tick dt);

    /** Sum of totalEnergy() across all domains. */
    Joules totalEnergy() const;

    /** Sum of window-average power across all domains. */
    Watts totalWindowPower() const;

  private:
    std::vector<RaplDomain> domains;
};

} // namespace psm::power

#endif // PSM_POWER_RAPL_HH
