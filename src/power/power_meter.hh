/**
 * @file
 * Server power metering: time series, averages and cap-violation
 * accounting.
 *
 * The meter is fed one sample per simulation step (power held constant
 * over the step) and provides the aggregate views the evaluation needs:
 * time-weighted average draw, total energy, time spent above the cap,
 * and a downsampled history for the timeline figures (Fig. 11/12).
 */

#ifndef PSM_POWER_POWER_METER_HH
#define PSM_POWER_POWER_METER_HH

#include <vector>

#include "util/stats.hh"
#include "util/units.hh"

namespace psm::power
{

/** One point of the recorded power timeline. */
struct PowerSample
{
    Tick time = 0;       ///< start of the interval
    Tick duration = 0;   ///< interval length
    Watts power = 0.0;   ///< server draw over the interval
    Watts cap = 0.0;     ///< cap in force over the interval
};

/**
 * Accumulates the server's power draw against its (possibly changing)
 * cap.
 */
class PowerMeter
{
  public:
    /**
     * @param history_resolution Minimum spacing between retained
     *        history samples; finer-grained pushes are merged.  Zero
     *        retains every sample.
     */
    explicit PowerMeter(Tick history_resolution = ticksPerMs * 100);

    /**
     * Record that the server drew @p power against @p cap for @p dt
     * ticks starting at @p now.
     */
    void push(Tick now, Tick dt, Watts power, Watts cap);

    /** Discard everything. */
    void reset();

    /** Time-weighted mean draw over the recorded span. */
    Watts averagePower() const { return stats.mean(); }
    Watts peakPower() const { return stats.max(); }
    /** Total energy consumed. */
    Joules totalEnergy() const { return stats.integral(); }
    /** Total recorded span. */
    Tick duration() const { return stats.duration(); }

    /** Ticks during which draw exceeded the in-force cap. */
    Tick violationTime() const { return violation_time; }
    /** Largest draw-over-cap excess observed. */
    Watts worstOvershoot() const { return worst_overshoot; }
    /** Fraction of recorded time spent above the cap. */
    double violationFraction() const;
    /** Energy drawn in excess of the cap (joules above the cap line). */
    Joules violationEnergy() const { return violation_energy; }

    /** Downsampled timeline for plotting. */
    const std::vector<PowerSample> &history() const { return samples; }

    /**
     * Samples that arrived non-finite or negative and were replaced
     * by the last accepted reading.
     */
    std::size_t droppedSamples() const { return dropped; }

  private:
    Tick resolution;
    TimeWeightedStats stats;
    Tick violation_time = 0;
    Watts worst_overshoot = 0.0;
    Joules violation_energy = 0.0;
    Watts last_good = 0.0;
    std::size_t dropped = 0;
    std::vector<PowerSample> samples;
};

} // namespace psm::power

#endif // PSM_POWER_POWER_METER_HH
