/**
 * @file
 * DRAM channel power model with RAPL-style budget enforcement.
 *
 * Each memory channel draws a background power (refresh, PLL, ODT)
 * plus an access component proportional to the bandwidth it serves.
 * The DRAM RAPL knob (the paper's "m") caps a channel's power; when
 * the cap is below what offered traffic would draw, the memory
 * controller throttles, reducing the bandwidth the channel can serve.
 * That bandwidth ceiling is what couples the m knob to application
 * performance in the roofline model.
 */

#ifndef PSM_POWER_DRAM_POWER_HH
#define PSM_POWER_DRAM_POWER_HH

#include "platform.hh"
#include "util/units.hh"

namespace psm::power
{

/**
 * Per-channel DRAM power/bandwidth model.
 */
class DramPowerModel
{
  public:
    explicit DramPowerModel(const PlatformConfig &config);

    /** Background (zero-traffic) power of one channel. */
    Watts backgroundPower() const;

    /**
     * Unthrottled power of one channel serving @p bandwidth of
     * traffic.
     */
    Watts channelPower(GBps bandwidth) const;

    /**
     * Max bandwidth one channel can serve under a RAPL budget of
     * @p budget watts; zero headroom (budget <= background) serves
     * a trickle rather than nothing, because refresh keeps data alive
     * while the scheduler starves requests.
     *
     * The ceiling is also bounded by the channel's wire speed.
     */
    GBps bandwidthCeiling(Watts budget) const;

    /**
     * Actual power drawn when @p offered bandwidth hits a channel
     * with RAPL budget @p budget: min(channelPower(offered), budget),
     * never below background power.
     */
    Watts throttledPower(GBps offered, Watts budget) const;

    /**
     * Bandwidth actually served for @p offered traffic under
     * @p budget.
     */
    GBps servedBandwidth(GBps offered, Watts budget) const;

    /** Peak wire bandwidth of one channel. */
    GBps peakBandwidth() const { return config.channelBandwidth; }

  private:
    const PlatformConfig &config;
};

} // namespace psm::power

#endif // PSM_POWER_DRAM_POWER_HH
