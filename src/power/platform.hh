/**
 * @file
 * Platform description mirroring the paper's Table I, plus the power
 * allocation knob space (f, n, m) from Section II-B.
 *
 * The evaluation platform in the paper is a dual-socket Intel Xeon
 * E5-2620 with 12 cores, 1.2-2.0 GHz DVFS in 9 steps, 15 MB LLC, 8 GB
 * DDR3 over 2 NUMA nodes, P_idle = 50 W, P_cm = 20 W and up to 60 W of
 * dynamic power.  Every model in this library is calibrated against
 * these constants so the reproduction exercises the same operating
 * points as the paper.
 */

#ifndef PSM_POWER_PLATFORM_HH
#define PSM_POWER_PLATFORM_HH

#include <cstddef>
#include <vector>

#include "util/units.hh"

namespace psm::power
{

/**
 * One setting of the three per-application power allocation knobs from
 * the paper: per-core DVFS frequency (f), number of active cores (n)
 * and DRAM power budget (m).
 */
struct KnobSetting
{
    GHz freq = 2.0;        ///< per-core frequency, f
    int cores = 6;         ///< active core count, n
    Watts dramPower = 10.0; ///< DRAM RAPL budget, m

    bool
    operator==(const KnobSetting &o) const
    {
        return freq == o.freq && cores == o.cores &&
               dramPower == o.dramPower;
    }
};

/**
 * Static description of the server hardware (Table I).
 */
struct PlatformConfig
{
    // --- Topology -------------------------------------------------
    int sockets = 2;          ///< NUMA nodes
    int coresPerSocket = 6;   ///< physical cores per socket
    double llcMb = 15.0;      ///< shared last-level cache per socket
    double memoryGb = 8.0;    ///< DDR3 capacity
    GBps channelBandwidth = 12.8; ///< peak bandwidth per memory channel

    // --- DVFS -----------------------------------------------------
    GHz freqMin = 1.2;        ///< lowest DVFS state
    GHz freqMax = 2.0;        ///< highest DVFS state
    GHz freqStep = 0.1;       ///< DVFS granularity (9 steps total)

    // --- Knob ranges (Section II-B) --------------------------------
    int coresMinPerApp = 1;   ///< n_min
    int coresMaxPerApp = 6;   ///< n_max
    Watts dramPowerMin = 3.0; ///< m_min, also DRAM background power
    Watts dramPowerMax = 10.0; ///< m_max
    Watts dramPowerStep = 1.0; ///< m granularity

    // --- Calibrated power constants (Table I) ----------------------
    Watts idlePower = 50.0;   ///< P_idle: fans, disks, leakage, refresh
    Watts cmPower = 20.0;     ///< P_cm: uncore turn-on cost
    Watts dynamicPowerMax = 60.0; ///< rated P_dynamic headroom
    /**
     * Management-plane power still drawn during all-off (ESD charge)
     * periods.  0 on this platform: P_cm is the uncore turn-on cost,
     * and PC6 parks the uncore once every core sleeps, so the OFF
     * draw is P_idle alone (the paper's Section II-C charge-headroom
     * example).  Set to cmPower for platforms whose management plane
     * cannot sleep while charging; the ESD planner subtracts it from
     * the charge headroom in Eq. 5.
     */
    Watts offPeriodCmPower = 0.0;

    /** Peak per-core dynamic power at f_max and full activity. */
    Watts corePeakPower = 2.7;
    /**
     * Fraction of a busy core's dynamic power still burned while the
     * core stalls on memory (pipeline front-end, clocks and L1/L2 are
     * not gated during stalls).  Makes idling allocated cores
     * genuinely expensive, which is what gives core-count
     * apportioning (the n knob) its power value.
     */
    double coreStallPowerFraction = 0.60;
    /**
     * Fraction of core dynamic power that scales linearly with f (the
     * rest scales cubically via voltage scaling).
     */
    double coreLinearFraction = 0.65;

    /** Watts of DRAM access power per GB/s of traffic. */
    double dramEnergyPerGBps = 0.70;

    /** Socket deep-sleep (PC6) wake latency, per Section IV-B. */
    Tick socketWakeLatency = toTicks(300e-6);

    int totalCores() const { return sockets * coresPerSocket; }

    /** Number of DVFS states (Table I reports 9). */
    int freqSteps() const;

    /** All DVFS frequencies from freqMin to freqMax inclusive. */
    std::vector<GHz> freqLevels() const;

    /** All DRAM power budgets from m_min to m_max inclusive. */
    std::vector<Watts> dramLevels() const;

    /** All core counts from n_min to n_max inclusive. */
    std::vector<int> coreLevels() const;

    /**
     * Enumerate the full cartesian knob space for one application
     * (9 x 6 x 8 = 432 settings on the default platform).
     */
    std::vector<KnobSetting> knobSpace() const;

    /** The maximal setting (f_max, n_max, m_max). */
    KnobSetting maxSetting() const;

    /** The minimal setting (f_min, n_min, m_min). */
    KnobSetting minSetting() const;

    /** Clamp an arbitrary setting onto the legal, quantized ranges. */
    KnobSetting clampSetting(const KnobSetting &s) const;

    /** Validate internal consistency; calls fatal() on bad config. */
    void validate() const;
};

/** The default platform: the paper's Xeon E5-2620 server. */
const PlatformConfig &defaultPlatform();

} // namespace psm::power

#endif // PSM_POWER_PLATFORM_HH
