#include "power_meter.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::power
{

PowerMeter::PowerMeter(Tick history_resolution)
    : resolution(history_resolution)
{
}

void
PowerMeter::push(Tick now, Tick dt, Watts power, Watts cap)
{
    psm_assert(power >= 0.0);
    if (dt == 0)
        return;

    stats.push(power, dt);

    if (cap > 0.0 && power > cap + 1e-9) {
        violation_time += dt;
        worst_overshoot = std::max(worst_overshoot, power - cap);
        violation_energy += energyOver(power - cap, dt);
    }

    // Merge into the last history sample when it is still within the
    // retention resolution and carries the same power/cap values, so
    // steady-state periods compress to a single segment.
    if (!samples.empty()) {
        PowerSample &last = samples.back();
        bool same = last.power == power && last.cap == cap;
        bool fine = resolution > 0 && last.duration < resolution;
        if (same || fine) {
            // Blend power time-weighted when merging unequal samples.
            double total = toSeconds(last.duration) + toSeconds(dt);
            last.power = (last.power * toSeconds(last.duration) +
                          power * toSeconds(dt)) / total;
            last.cap = cap;
            last.duration += dt;
            return;
        }
    }
    samples.push_back({now, dt, power, cap});
}

void
PowerMeter::reset()
{
    stats.reset();
    violation_time = 0;
    worst_overshoot = 0.0;
    violation_energy = 0.0;
    samples.clear();
}

double
PowerMeter::violationFraction() const
{
    if (stats.duration() == 0)
        return 0.0;
    return static_cast<double>(violation_time) /
           static_cast<double>(stats.duration());
}

} // namespace psm::power
