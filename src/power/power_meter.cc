#include "power_meter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::power
{

PowerMeter::PowerMeter(Tick history_resolution)
    : resolution(history_resolution)
{
}

void
PowerMeter::push(Tick now, Tick dt, Watts power, Watts cap)
{
    if (dt == 0)
        return;

    // A real sensor occasionally returns garbage (NaN, negative
    // counter wrap).  Substitute the last accepted sample rather than
    // poison every downstream aggregate; droppedSamples() exposes how
    // often this happened.
    if (!std::isfinite(power) || power < 0.0) {
        ++dropped;
        power = last_good;
    }
    last_good = power;

    stats.push(power, dt);

    if (cap > 0.0 && power > cap + 1e-9) {
        violation_time += dt;
        worst_overshoot = std::max(worst_overshoot, power - cap);
        violation_energy += energyOver(power - cap, dt);
    }

    // Merge into the last history sample when it is still within the
    // retention resolution and carries the same power/cap values, so
    // steady-state periods compress to a single segment.
    if (!samples.empty()) {
        PowerSample &last = samples.back();
        bool same = last.power == power && last.cap == cap;
        bool fine = resolution > 0 && last.duration < resolution;
        if (same || fine) {
            // Blend power time-weighted when merging unequal samples.
            double total = toSeconds(last.duration) + toSeconds(dt);
            last.power = (last.power * toSeconds(last.duration) +
                          power * toSeconds(dt)) / total;
            last.cap = cap;
            last.duration += dt;
            return;
        }
    }
    samples.push_back({now, dt, power, cap});
}

void
PowerMeter::reset()
{
    stats.reset();
    violation_time = 0;
    worst_overshoot = 0.0;
    violation_energy = 0.0;
    last_good = 0.0;
    dropped = 0;
    samples.clear();
}

double
PowerMeter::violationFraction() const
{
    if (stats.duration() == 0)
        return 0.0;
    return static_cast<double>(violation_time) /
           static_cast<double>(stats.duration());
}

} // namespace psm::power
