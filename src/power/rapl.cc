#include "rapl.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::power
{

std::string
raplDomainName(RaplDomainId id)
{
    switch (id) {
      case RaplDomainId::Package0:
        return "package-0";
      case RaplDomainId::Package1:
        return "package-1";
      case RaplDomainId::Dram0:
        return "dram-0";
      case RaplDomainId::Dram1:
        return "dram-1";
      default:
        panic("invalid RAPL domain id %d", static_cast<int>(id));
    }
}

RaplDomain::RaplDomain(Tick window) : window(window)
{
    psm_assert(window > 0);
}

void
RaplDomain::recordEnergy(Watts power, Tick dt)
{
    psm_assert(power >= 0.0);
    if (dt == 0)
        return;

    // Advance the wrapping hardware counter in integer energy units,
    // carrying the sub-unit remainder so no energy is lost.
    double units = energyOver(power, dt) / jouleperUnit + unit_remainder;
    auto whole = static_cast<std::uint64_t>(units);
    unit_remainder = units - static_cast<double>(whole);
    std::uint64_t next = static_cast<std::uint64_t>(counter) + whole;
    wraps += next >> 32;
    counter = static_cast<std::uint32_t>(next & 0xffffffffULL);

    // Maintain the sliding enforcement window.
    samples.emplace_back(power, dt);
    samples_span += dt;
    samples_area += energyOver(power, dt);
    while (samples_span > window && samples.size() > 1) {
        auto [p, d] = samples.front();
        Tick excess = samples_span - window;
        if (d <= excess) {
            samples.pop_front();
            samples_span -= d;
            samples_area -= energyOver(p, d);
        } else {
            samples.front().second = d - excess;
            samples_span -= excess;
            samples_area -= energyOver(p, excess);
            break;
        }
    }

    if (limited) {
        // Integral enforcement: squeeze while over the limit, relax
        // gently while under it.
        Watts avg = windowAveragePower();
        if (avg > limit + 1e-9) {
            violation_time += dt;
            double ratio = std::clamp(limit / avg, 0.5, 1.0);
            enforce_ratio = std::max(enforce_ratio * ratio, 0.02);
        } else if (avg < limit * 0.95 && avg > 0.2) {
            // Relax only under active draw below the limit — an idle
            // (duty-cycled off) domain keeps its throttle state, so
            // the next ON burst does not start unthrottled.
            enforce_ratio =
                std::min(enforce_ratio * 1.02 + 0.001, 1.0);
        }
    }
}

Joules
RaplDomain::totalEnergy() const
{
    double total_units = static_cast<double>(wraps) * 4294967296.0 +
                         static_cast<double>(counter);
    return total_units * jouleperUnit;
}

void
RaplDomain::setPowerLimit(Watts new_limit)
{
    psm_assert(new_limit >= 0.0);
    limited = true;
    limit = new_limit;
}

void
RaplDomain::clearPowerLimit()
{
    limited = false;
    limit = 0.0;
    enforce_ratio = 1.0;
}

Watts
RaplDomain::windowAveragePower() const
{
    if (samples_span == 0)
        return 0.0;
    return samples_area / toSeconds(samples_span);
}

double
RaplDomain::throttleFactor() const
{
    if (!limited)
        return 1.0;
    return enforce_ratio;
}

RaplInterface::RaplInterface(Tick window)
{
    auto count = static_cast<std::size_t>(RaplDomainId::NumDomains);
    domains.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        domains.emplace_back(window);
}

RaplDomain &
RaplInterface::domain(RaplDomainId id)
{
    return domains.at(static_cast<std::size_t>(id));
}

const RaplDomain &
RaplInterface::domain(RaplDomainId id) const
{
    return domains.at(static_cast<std::size_t>(id));
}

void
RaplInterface::recordEnergy(RaplDomainId id, Watts power, Tick dt)
{
    domain(id).recordEnergy(power, dt);
}

Joules
RaplInterface::totalEnergy() const
{
    Joules sum = 0.0;
    for (const auto &d : domains)
        sum += d.totalEnergy();
    return sum;
}

Watts
RaplInterface::totalWindowPower() const
{
    Watts sum = 0.0;
    for (const auto &d : domains)
        sum += d.windowAveragePower();
    return sum;
}

} // namespace psm::power
