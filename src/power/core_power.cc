#include "core_power.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::power
{

CorePowerModel::CorePowerModel(const PlatformConfig &config)
    : config(config)
{
}

double
CorePowerModel::freqFactor(GHz freq) const
{
    double r = std::clamp(freq / config.freqMax, 0.0, 1.0);
    double lin = config.coreLinearFraction;
    return lin * r + (1.0 - lin) * r * r * r;
}

Watts
CorePowerModel::corePower(GHz freq, double activity) const
{
    psm_assert(activity >= 0.0 && activity <= 1.0);
    if (activity == 0.0)
        return 0.0;
    return config.corePeakPower * activity * freqFactor(freq);
}

Watts
CorePowerModel::corePower(GHz freq, double activity, int n) const
{
    psm_assert(n >= 0);
    return corePower(freq, activity) * n;
}

Watts
CorePowerModel::peakCorePower() const
{
    return config.corePeakPower;
}

double
CorePowerModel::inverseFreqFactor(double target) const
{
    if (target >= 1.0)
        return 1.0;
    double lo = 0.05;
    double hi = 1.0;
    if (freqFactor(lo * config.freqMax) >= target)
        return lo;
    // freqFactor is strictly increasing in r; bisect.
    for (int i = 0; i < 40; ++i) {
        double mid = (lo + hi) / 2.0;
        if (freqFactor(mid * config.freqMax) < target)
            lo = mid;
        else
            hi = mid;
    }
    return (lo + hi) / 2.0;
}

GHz
CorePowerModel::maxFreqWithinBudget(Watts budget, double activity,
                                    int n) const
{
    psm_assert(n >= 1);
    GHz best = config.freqMin;
    for (GHz f : config.freqLevels()) {
        if (corePower(f, activity, n) <= budget + 1e-9)
            best = f;
        else
            break;
    }
    return best;
}

} // namespace psm::power
