/**
 * @file
 * Whole-server power aggregation (Eq. 2 of the paper).
 *
 * Total draw = P_idle + P_cm + sum_X P_X + ESD_charge - ESD_discharge.
 * This module owns the component models and computes the per-interval
 * breakdown that the simulator meters and the Accountant polls.
 */

#ifndef PSM_POWER_SERVER_POWER_HH
#define PSM_POWER_SERVER_POWER_HH

#include <string>
#include <vector>

#include "core_power.hh"
#include "dram_power.hh"
#include "platform.hh"
#include "uncore_power.hh"
#include "util/units.hh"

namespace psm::power
{

/** Power attributed to one running application. */
struct AppPower
{
    std::string app;       ///< application name
    Watts core = 0.0;      ///< dynamic core power
    Watts dram = 0.0;      ///< DRAM access power above background
    Watts base = 0.0;      ///< per-app activation overhead

    Watts total() const { return core + dram + base; }
};

/** One interval's complete server power breakdown. */
struct PowerBreakdown
{
    Watts idle = 0.0;           ///< P_idle, always present
    Watts uncore = 0.0;         ///< P_cm when any core is active
    Watts dramBackground = 0.0; ///< channel background power
    std::vector<AppPower> apps; ///< per-application dynamic power
    Watts esdCharge = 0.0;      ///< power flowing into the ESD
    Watts esdDischarge = 0.0;   ///< power supplied by the ESD

    /** Sum of per-app dynamic power. */
    Watts appTotal() const;

    /**
     * Net draw from the provisioned feed (Eq. 2's left-hand side):
     * idle + uncore + dram background + apps + charge - discharge.
     */
    Watts wallPower() const;

    /** Power consumed by the server internals (ignoring the ESD). */
    Watts serverPower() const;
};

/**
 * Owns the component power models for one server and assembles
 * breakdowns.
 */
class ServerPowerModel
{
  public:
    explicit ServerPowerModel(const PlatformConfig &config);

    const PlatformConfig &platform() const { return config; }
    const CorePowerModel &cores() const { return core_model; }
    const UncorePowerModel &uncore() const { return uncore_model; }
    const DramPowerModel &dram() const { return dram_model; }

    /**
     * Start a breakdown for an interval: fills the always-on
     * components.
     *
     * @param any_core_active Whether P_cm is incurred this interval.
     * @param active_channels Memory channels out of deep power-down
     *        (background power is charged per active channel).
     */
    PowerBreakdown beginBreakdown(bool any_core_active,
                                  int active_channels) const;

  private:
    const PlatformConfig &config;
    CorePowerModel core_model;
    UncorePowerModel uncore_model;
    DramPowerModel dram_model;
};

} // namespace psm::power

#endif // PSM_POWER_SERVER_POWER_HH
