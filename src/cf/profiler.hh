/**
 * @file
 * Measurement front-end for the utility learner.
 *
 * In the paper, "measuring" a knob setting means actuating (f, n, m)
 * on the live application for a short window and reading RAPL power
 * plus the heartbeat rate.  Here the measurement path goes through the
 * same analytic models the simulator executes, optionally with
 * measurement noise, so the learner sees exactly what a live profiling
 * window would have produced.
 */

#ifndef PSM_CF_PROFILER_HH
#define PSM_CF_PROFILER_HH

#include <vector>

#include "matrix.hh"
#include "perf/perf_model.hh"
#include "power/platform.hh"
#include "util/random.hh"

namespace psm::cf
{

/** One online measurement of an application at one knob setting. */
struct Measurement
{
    std::size_t column = 0; ///< knob-space column index
    double power = 0.0;     ///< observed P_X in watts
    double hbRate = 0.0;    ///< observed heartbeat rate
};

/**
 * Measures applications over the knob space.
 */
class Profiler
{
  public:
    /**
     * @param config Platform whose knobSpace() defines the columns.
     * @param noise_stddev Multiplicative measurement noise (relative
     *        standard deviation) applied to both observables; zero
     *        for noiseless measurement.
     */
    explicit Profiler(const power::PlatformConfig &config,
                      double noise_stddev = 0.0);

    /** The knob settings column c refers to. */
    const std::vector<power::KnobSetting> &settings() const
    {
        return columns;
    }

    std::size_t columnCount() const { return columns.size(); }

    /**
     * Measure one application at one column.
     *
     * @param cpu_scale Phase multiplier on compute work (when the
     *        live application is mid-phase, measurement sees it).
     * @param mem_scale Phase multiplier on memory traffic.
     */
    Measurement measureOne(const perf::PerfModel &model,
                           std::size_t column, Rng &rng,
                           double cpu_scale = 1.0,
                           double mem_scale = 1.0) const;

    /** Measure one application at a set of columns. */
    std::vector<Measurement>
    measure(const perf::PerfModel &model,
            const std::vector<std::size_t> &cols, Rng &rng,
            double cpu_scale = 1.0, double mem_scale = 1.0) const;

    /**
     * Exhaustively measure an application (the paper's "optimal
     * strategy which exhaustively samples all settings").
     *
     * @param power_row Out: per-column power values.
     * @param hb_row Out: per-column heartbeat rates.
     */
    void measureAll(const perf::PerfModel &model,
                    std::vector<double> &power_row,
                    std::vector<double> &hb_row, Rng &rng) const;

  private:
    const power::PlatformConfig &config;
    double noise;
    std::vector<power::KnobSetting> columns;

    double noisy(double value, Rng &rng) const;
};

} // namespace psm::cf

#endif // PSM_CF_PROFILER_HH
