/**
 * @file
 * Low-rank matrix completion by alternating least squares (ALS) —
 * the collaborative filtering engine the paper implements in R.
 *
 * The model is the classic biased factorization used in recommender
 * systems:
 *
 *     x_rc ~ mu + b_r + d_c + u_r . v_c
 *
 * with global mean mu, per-application bias b, per-knob-setting bias
 * d, and rank-k latent factors u, v.  Training minimizes squared
 * error over the *observed* cells plus L2 regularization; prediction
 * fills every cell.  This works here for the same reason it works for
 * movie ratings: applications' responses to knob settings are highly
 * correlated (a few latent "resource sensitivity" dimensions explain
 * most of the variance), so a new application's full utility surface
 * can be recovered from a sparse sample plus the corpus of previously
 * profiled applications.
 */

#ifndef PSM_CF_ALS_HH
#define PSM_CF_ALS_HH

#include <cstddef>
#include <vector>

#include "matrix.hh"

namespace psm::cf
{

/** Hyper-parameters for the ALS solver. */
struct AlsConfig
{
    std::size_t rank = 3;      ///< latent dimensionality k
    double lambda = 0.10;      ///< L2 regularization strength
    std::size_t iterations = 25; ///< alternating sweeps
    unsigned seed = 1234;      ///< factor initialization seed
    /**
     * Sweeps when refitting from a warm start (previous factors of
     * the same app/corpus with a grown sample set): the factors begin
     * near the optimum, so far fewer alternations reach it.
     */
    std::size_t warmIterations = 8;

    /** Validate ranges; calls fatal() on nonsense. */
    void validate() const;
};

/**
 * Converged factors exported from a previous fit, used to initialize
 * a refit of the same (corpus + app) matrix when only the observation
 * mask grew.  Dimensions must match the new matrix exactly.
 */
struct AlsWarmStart
{
    std::vector<double> rowBias;
    std::vector<double> colBias;
    std::vector<double> u; ///< rows x rank, row-major
    std::vector<double> v; ///< cols x rank, row-major

    bool
    matches(std::size_t rows, std::size_t cols, std::size_t rank) const
    {
        return rowBias.size() == rows && colBias.size() == cols &&
               u.size() == rows * rank && v.size() == cols * rank;
    }
};

/**
 * Solve a symmetric positive definite k x k system A x = b in place
 * via Cholesky decomposition.  Exposed for testing.
 *
 * @return The solution vector.
 */
std::vector<double> solveSpd(std::vector<double> a,
                             std::vector<double> b, std::size_t k);

/**
 * Trained factorization model; predicts any cell.
 */
class AlsModel
{
  public:
    /**
     * Fit the model to the observed cells of @p data.
     *
     * @param warm Optional factors from a previous fit of the same
     *        matrix shape; when they match, initialization is taken
     *        from them (instead of the seeded random draw) and only
     *        config.warmIterations sweeps run.  Per-row/column solves
     *        inside each sweep run on the global thread pool; results
     *        are bit-identical to a serial fit at any pool width.
     */
    AlsModel(const MaskedMatrix &data, AlsConfig config = {},
             const AlsWarmStart *warm = nullptr);

    /** Export the fitted factors for warm-starting a later refit. */
    AlsWarmStart warmStart() const;

    /** Sweeps actually run by the fit (warm fits run fewer). */
    std::size_t sweepsRun() const { return sweeps_run; }

    /** Predicted value of cell (r, c), clamped to the observed range. */
    double predict(std::size_t r, std::size_t c) const;

    /**
     * Complete matrix: observed cells keep their measured values,
     * unobserved cells are predictions.
     */
    Matrix complete(const MaskedMatrix &data) const;

    /** RMSE over the observed (training) cells. */
    double trainRmse(const MaskedMatrix &data) const;

    std::size_t rank() const { return cfg.rank; }

  private:
    AlsConfig cfg;
    std::size_t n_rows = 0;
    std::size_t n_cols = 0;
    double mu = 0.0;
    double clamp_lo = 0.0;
    double clamp_hi = 0.0;
    std::vector<double> row_bias;
    std::vector<double> col_bias;
    std::vector<double> u; ///< n_rows x rank, row-major
    std::vector<double> v; ///< n_cols x rank, row-major
    std::size_t sweeps_run = 0;

    double rawPredict(std::size_t r, std::size_t c) const;
    void fit(const MaskedMatrix &data, const AlsWarmStart *warm);
};

} // namespace psm::cf

#endif // PSM_CF_ALS_HH
