/**
 * @file
 * K-fold cross-validation of the utility estimator (Fig. 7's
 * calibration methodology: 80% of applications estimate the metrics
 * for the remaining 20%, swept over sampling fractions).
 */

#ifndef PSM_CF_CROSS_VALIDATION_HH
#define PSM_CF_CROSS_VALIDATION_HH

#include <cstddef>
#include <vector>

#include "estimator.hh"
#include "perf/app_profile.hh"
#include "power/platform.hh"
#include "sampler.hh"

namespace psm::cf
{

/** Aggregated estimation quality at one sampling fraction. */
struct CvResult
{
    double sampleFraction = 0.0; ///< fraction of settings measured
    double powerRelError = 0.0;  ///< mean |pred-true|/true for power
    double perfRelError = 0.0;   ///< mean |pred-true|/true for perf
    /**
     * Mean relative power *under*-prediction: the component of the
     * error that causes the server to overshoot its cap when the
     * allocator trusts the estimate (Fig. 7's overshoot at low
     * sampling rates).
     */
    double powerUnderPrediction = 0.0;
    std::size_t heldOutApps = 0; ///< total held-out evaluations
};

/** Configuration of one cross-validation run. */
struct CvConfig
{
    std::size_t folds = 5;
    SamplingStrategy strategy = SamplingStrategy::Stratified;
    AlsConfig als = {};
    double measurementNoise = 0.0;
    std::uint64_t seed = 42;
};

/**
 * Run k-fold cross-validation over a set of application profiles at
 * one sampling fraction.
 *
 * Each fold holds out ~1/k of the applications; the rest form the
 * corpus.  Each held-out application is measured at the sampled
 * columns only, its surface estimated, and prediction error computed
 * against its exhaustive (ground truth) measurement.
 */
CvResult crossValidate(const power::PlatformConfig &config,
                       const std::vector<perf::AppProfile> &apps,
                       double sample_fraction, const CvConfig &cv = {});

/**
 * Sweep sampling fractions (the x-axis of Fig. 7).
 */
std::vector<CvResult>
sweepSamplingFractions(const power::PlatformConfig &config,
                       const std::vector<perf::AppProfile> &apps,
                       const std::vector<double> &fractions,
                       const CvConfig &cv = {});

} // namespace psm::cf

#endif // PSM_CF_CROSS_VALIDATION_HH
