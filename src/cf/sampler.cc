#include "sampler.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace psm::cf
{

Sampler::Sampler(const power::PlatformConfig &config,
                 SamplingStrategy strategy)
    : config(config), strategy(strategy)
{
    n_freq = config.freqLevels().size();
    n_cores = config.coreLevels().size();
    n_dram = config.dramLevels().size();
    n_cols = n_freq * n_cores * n_dram;

    // The eight corners of the (f, n, m) box, de-duplicated in case an
    // axis has a single level.
    for (std::size_t f : {std::size_t{0}, n_freq - 1})
        for (std::size_t n : {std::size_t{0}, n_cores - 1})
            for (std::size_t m : {std::size_t{0}, n_dram - 1})
                corner_ix.push_back(columnIndex(f, n, m));
    std::sort(corner_ix.begin(), corner_ix.end());
    corner_ix.erase(std::unique(corner_ix.begin(), corner_ix.end()),
                    corner_ix.end());
}

std::size_t
Sampler::columnIndex(std::size_t f, std::size_t n, std::size_t m) const
{
    psm_assert(f < n_freq && n < n_cores && m < n_dram);
    return (f * n_cores + n) * n_dram + m;
}

std::vector<std::size_t>
Sampler::select(double fraction, Rng &rng) const
{
    psm_assert(fraction > 0.0 && fraction <= 1.0);
    auto budget = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(n_cols)));
    budget = std::max(budget, corner_ix.size());

    std::vector<std::size_t> chosen = corner_ix;
    std::vector<char> taken(n_cols, 0);
    for (std::size_t c : chosen)
        taken[c] = 1;

    if (strategy == SamplingStrategy::Random) {
        while (chosen.size() < budget) {
            auto c = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(n_cols) - 1));
            if (!taken[c]) {
                taken[c] = 1;
                chosen.push_back(c);
            }
        }
    } else {
        // Stratified: round-robin the three axes, drawing the free
        // coordinates uniformly, so every axis level gets coverage
        // even at low budgets.
        std::size_t axis = 0;
        std::size_t guard = 0;
        std::size_t next_f = 0, next_n = 0, next_m = 0;
        while (chosen.size() < budget && guard < n_cols * 64) {
            ++guard;
            std::size_t f, n, m;
            if (axis == 0) {
                f = next_f++ % n_freq;
                n = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(n_cores) - 1));
                m = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(n_dram) - 1));
            } else if (axis == 1) {
                n = next_n++ % n_cores;
                f = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(n_freq) - 1));
                m = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(n_dram) - 1));
            } else {
                m = next_m++ % n_dram;
                f = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(n_freq) - 1));
                n = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(n_cores) - 1));
            }
            axis = (axis + 1) % 3;
            std::size_t c = columnIndex(f, n, m);
            if (!taken[c]) {
                taken[c] = 1;
                chosen.push_back(c);
            }
        }
        // Fall back to a scan if collisions starved the loop.
        for (std::size_t c = 0; chosen.size() < budget && c < n_cols;
             ++c) {
            if (!taken[c]) {
                taken[c] = 1;
                chosen.push_back(c);
            }
        }
    }

    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace psm::cf
