#include "matrix.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace psm::cf
{

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : n_rows(rows), n_cols(cols), data(rows * cols, fill)
{
}

std::size_t
Matrix::index(std::size_t r, std::size_t c) const
{
    psm_assert(r < n_rows && c < n_cols);
    return r * n_cols + c;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    return data[index(r, c)];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    return data[index(r, c)];
}

void
Matrix::appendRow(const std::vector<double> &row)
{
    if (n_rows == 0 && n_cols == 0)
        n_cols = row.size();
    psm_assert(row.size() == n_cols);
    data.insert(data.end(), row.begin(), row.end());
    ++n_rows;
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    psm_assert(r < n_rows);
    return {data.begin() + static_cast<long>(r * n_cols),
            data.begin() + static_cast<long>((r + 1) * n_cols)};
}

double
Matrix::rmse(const Matrix &other) const
{
    psm_assert(rows() == other.rows() && cols() == other.cols());
    if (data.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        double d = data[i] - other.data[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(data.size()));
}

MaskedMatrix::MaskedMatrix(std::size_t rows, std::size_t cols)
    : values(rows, cols), mask(rows * cols, 0)
{
}

void
MaskedMatrix::observe(std::size_t r, std::size_t c, double value)
{
    values.at(r, c) = value;
    std::size_t i = r * values.cols() + c;
    if (!mask[i]) {
        mask[i] = 1;
        ++n_observed;
    }
}

void
MaskedMatrix::unobserve(std::size_t r, std::size_t c)
{
    std::size_t i = r * values.cols() + c;
    if (mask[i]) {
        mask[i] = 0;
        --n_observed;
    }
}

bool
MaskedMatrix::observed(std::size_t r, std::size_t c) const
{
    return mask[r * values.cols() + c] != 0;
}

double
MaskedMatrix::at(std::size_t r, std::size_t c) const
{
    return values.at(r, c);
}

void
MaskedMatrix::appendObservedRow(const std::vector<double> &row)
{
    values.appendRow(row);
    mask.insert(mask.end(), row.size(), 1);
    n_observed += row.size();
}

void
MaskedMatrix::appendEmptyRow()
{
    psm_assert(values.cols() > 0);
    values.appendRow(std::vector<double>(values.cols(), 0.0));
    mask.insert(mask.end(), values.cols(), 0);
}

double
MaskedMatrix::density() const
{
    if (mask.empty())
        return 0.0;
    return static_cast<double>(n_observed) /
           static_cast<double>(mask.size());
}

double
MaskedMatrix::observedMean() const
{
    if (n_observed == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t r = 0; r < rows(); ++r)
        for (std::size_t c = 0; c < cols(); ++c)
            if (observed(r, c))
                sum += at(r, c);
    return sum / static_cast<double>(n_observed);
}

std::pair<double, double>
MaskedMatrix::observedRange() const
{
    if (n_observed == 0)
        return {0.0, 0.0};
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c = 0; c < cols(); ++c) {
            if (observed(r, c)) {
                lo = std::min(lo, at(r, c));
                hi = std::max(hi, at(r, c));
            }
        }
    }
    return {lo, hi};
}

} // namespace psm::cf
