#include "estimator.hh"

#include <cmath>

#include "util/logging.hh"

namespace psm::cf
{

namespace
{
/** Floor for log-space transforms of heartbeat rates. */
constexpr double hbFloor = 1e-6;
} // namespace

UtilityEstimator::UtilityEstimator(const power::PlatformConfig &config,
                                   AlsConfig als)
    : config(config), als_config(als), columns(config.knobSpace()),
      n_cols(columns.size()), power_corpus(0, 0), log_hb_corpus(0, 0)
{
    als_config.validate();
    psm_assert(n_cols > 0);
}

const power::KnobSetting &
UtilityEstimator::setting(std::size_t c) const
{
    psm_assert(c < n_cols);
    return columns[c];
}

std::size_t
UtilityEstimator::columnOf(const power::KnobSetting &raw) const
{
    power::KnobSetting s = config.clampSetting(raw);
    for (std::size_t c = 0; c < n_cols; ++c) {
        const power::KnobSetting &k = columns[c];
        if (std::abs(k.freq - s.freq) < 1e-6 && k.cores == s.cores &&
            std::abs(k.dramPower - s.dramPower) < 1e-6) {
            return c;
        }
    }
    panic("knob setting (%.1f GHz, %d cores, %.0f W) not in the "
          "enumerated space", s.freq, s.cores, s.dramPower);
}

void
UtilityEstimator::addCorpusApp(const std::string &name,
                               const std::vector<double> &power_row,
                               const std::vector<double> &hb_row)
{
    psm_assert(power_row.size() == n_cols && hb_row.size() == n_cols);
    if (hasCorpusApp(name))
        fatal("corpus already contains '%s'", name.c_str());

    if (power_corpus.rows() == 0) {
        power_corpus = MaskedMatrix(0, 0);
        log_hb_corpus = MaskedMatrix(0, 0);
    }
    std::vector<double> log_row(n_cols);
    for (std::size_t c = 0; c < n_cols; ++c)
        log_row[c] = std::log(std::max(hb_row[c], hbFloor));
    power_corpus.appendObservedRow(power_row);
    log_hb_corpus.appendObservedRow(log_row);
    names.push_back(name);
}

bool
UtilityEstimator::hasCorpusApp(const std::string &name) const
{
    for (const auto &n : names)
        if (n == name)
            return true;
    return false;
}

void
UtilityEstimator::clearCorpus()
{
    names.clear();
    power_corpus = MaskedMatrix(0, 0);
    log_hb_corpus = MaskedMatrix(0, 0);
}

UtilitySurface
UtilityEstimator::estimate(const std::vector<Measurement> &samples) const
{
    if (samples.empty())
        fatal("cannot estimate a utility surface from zero samples");

    // Build working copies of the corpus with the new app appended as
    // a sparse row.
    MaskedMatrix power_m = power_corpus;
    MaskedMatrix hb_m = log_hb_corpus;
    if (power_m.rows() == 0) {
        power_m = MaskedMatrix(0, n_cols);
        hb_m = MaskedMatrix(0, n_cols);
        // MaskedMatrix(0, n) has the column count fixed; append via
        // empty rows below.
    }
    power_m.appendEmptyRow();
    hb_m.appendEmptyRow();
    std::size_t new_row = power_m.rows() - 1;
    for (const Measurement &s : samples) {
        psm_assert(s.column < n_cols);
        power_m.observe(new_row, s.column, s.power);
        hb_m.observe(new_row, s.column,
                     std::log(std::max(s.hbRate, hbFloor)));
    }

    AlsModel power_model(power_m, als_config);
    AlsModel hb_model(hb_m, als_config);

    UtilitySurface surface;
    surface.power.resize(n_cols);
    surface.hbRate.resize(n_cols);
    surface.sampledColumns = samples.size();
    for (std::size_t c = 0; c < n_cols; ++c) {
        if (power_m.observed(new_row, c)) {
            surface.power[c] = power_m.at(new_row, c);
            surface.hbRate[c] = std::exp(hb_m.at(new_row, c));
        } else {
            surface.power[c] = power_model.predict(new_row, c);
            surface.hbRate[c] = std::exp(hb_model.predict(new_row, c));
        }
    }
    return surface;
}

UtilitySurface
UtilityEstimator::surfaceFromRows(const std::vector<double> &power_row,
                                  const std::vector<double> &hb_row)
{
    psm_assert(power_row.size() == hb_row.size());
    UtilitySurface s;
    s.power = power_row;
    s.hbRate = hb_row;
    s.sampledColumns = power_row.size();
    return s;
}

} // namespace psm::cf
