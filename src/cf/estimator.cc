#include "estimator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm::cf
{

namespace
{
/** Floor for log-space transforms of heartbeat rates. */
constexpr double hbFloor = 1e-6;
} // namespace

UtilityEstimator::UtilityEstimator(const power::PlatformConfig &config,
                                   AlsConfig als)
    : config(config), als_config(als), columns(config.knobSpace()),
      n_cols(columns.size()), power_corpus(0, 0), log_hb_corpus(0, 0)
{
    als_config.validate();
    psm_assert(n_cols > 0);
}

const power::KnobSetting &
UtilityEstimator::setting(std::size_t c) const
{
    psm_assert(c < n_cols);
    return columns[c];
}

std::size_t
UtilityEstimator::columnOf(const power::KnobSetting &raw) const
{
    power::KnobSetting s = config.clampSetting(raw);
    for (std::size_t c = 0; c < n_cols; ++c) {
        const power::KnobSetting &k = columns[c];
        if (std::abs(k.freq - s.freq) < 1e-6 && k.cores == s.cores &&
            std::abs(k.dramPower - s.dramPower) < 1e-6) {
            return c;
        }
    }
    panic("knob setting (%.1f GHz, %d cores, %.0f W) not in the "
          "enumerated space", s.freq, s.cores, s.dramPower);
}

void
UtilityEstimator::addCorpusApp(const std::string &name,
                               const std::vector<double> &power_row,
                               const std::vector<double> &hb_row)
{
    psm_assert(power_row.size() == n_cols && hb_row.size() == n_cols);
    if (hasCorpusApp(name))
        fatal("corpus already contains '%s'", name.c_str());

    if (power_corpus.rows() == 0) {
        power_corpus = MaskedMatrix(0, 0);
        log_hb_corpus = MaskedMatrix(0, 0);
    }
    std::vector<double> log_row(n_cols);
    for (std::size_t c = 0; c < n_cols; ++c)
        log_row[c] = std::log(std::max(hb_row[c], hbFloor));
    power_corpus.appendObservedRow(power_row);
    log_hb_corpus.appendObservedRow(log_row);
    names.push_back(name);
}

bool
UtilityEstimator::hasCorpusApp(const std::string &name) const
{
    for (const auto &n : names)
        if (n == name)
            return true;
    return false;
}

void
UtilityEstimator::clearCorpus()
{
    names.clear();
    power_corpus = MaskedMatrix(0, 0);
    log_hb_corpus = MaskedMatrix(0, 0);
}

std::pair<std::vector<std::size_t>, std::uint64_t>
UtilityEstimator::sampleMask(const std::vector<Measurement> &samples)
{
    std::vector<std::size_t> mask;
    mask.reserve(samples.size());
    for (const Measurement &s : samples)
        mask.push_back(s.column);
    std::sort(mask.begin(), mask.end());
    mask.erase(std::unique(mask.begin(), mask.end()), mask.end());

    std::uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a
    for (std::size_t c : mask) {
        hash ^= static_cast<std::uint64_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return {std::move(mask), hash};
}

UtilitySurface
UtilityEstimator::estimate(const std::vector<Measurement> &samples,
                           FitState *state, FitOutcome *outcome) const
{
    if (samples.empty())
        fatal("cannot estimate a utility surface from zero samples");
    if (outcome)
        *outcome = FitOutcome{}; // each call reports only itself

    auto [mask, mask_hash] = sampleMask(samples);
    std::size_t fit_rows = power_corpus.rows() + 1;

    if (state && state->valid && state->corpusRows == fit_rows &&
        state->maskHash == mask_hash && state->mask == mask) {
        // Same app, same corpus, same sampled columns: the refit
        // would reproduce this surface modulo measurement noise.
        if (outcome)
            outcome->cacheHit = true;
        return state->surface;
    }

    // Warm-start only when the previous mask strictly grew: the
    // factors then start near the new optimum.
    bool warm = state && state->valid &&
                state->corpusRows == fit_rows &&
                mask.size() > state->mask.size() &&
                std::includes(mask.begin(), mask.end(),
                              state->mask.begin(), state->mask.end());

    // Build working copies of the corpus with the new app appended as
    // a sparse row.
    MaskedMatrix power_m = power_corpus;
    MaskedMatrix hb_m = log_hb_corpus;
    if (power_m.rows() == 0) {
        power_m = MaskedMatrix(0, n_cols);
        hb_m = MaskedMatrix(0, n_cols);
        // MaskedMatrix(0, n) has the column count fixed; append via
        // empty rows below.
    }
    power_m.appendEmptyRow();
    hb_m.appendEmptyRow();
    std::size_t new_row = power_m.rows() - 1;
    for (const Measurement &s : samples) {
        psm_assert(s.column < n_cols);
        power_m.observe(new_row, s.column, s.power);
        hb_m.observe(new_row, s.column,
                     std::log(std::max(s.hbRate, hbFloor)));
    }

    // The two factorizations share nothing; fit them concurrently.
    auto fit_start = std::chrono::steady_clock::now();
    std::unique_ptr<AlsModel> power_model;
    std::unique_ptr<AlsModel> hb_model;
    util::ThreadPool::global().invoke(
        [&] {
            power_model = std::make_unique<AlsModel>(
                power_m, als_config,
                warm ? &state->powerWarm : nullptr);
        },
        [&] {
            hb_model = std::make_unique<AlsModel>(
                hb_m, als_config, warm ? &state->hbWarm : nullptr);
        });
    double fit_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - fit_start)
            .count();

    UtilitySurface surface;
    surface.power.resize(n_cols);
    surface.hbRate.resize(n_cols);
    surface.sampledColumns = samples.size();
    for (std::size_t c = 0; c < n_cols; ++c) {
        if (power_m.observed(new_row, c)) {
            surface.power[c] = power_m.at(new_row, c);
            surface.hbRate[c] = std::exp(hb_m.at(new_row, c));
        } else {
            surface.power[c] = power_model->predict(new_row, c);
            surface.hbRate[c] =
                std::exp(hb_model->predict(new_row, c));
        }
    }

    if (outcome) {
        outcome->cacheHit = false;
        outcome->warmStarted = warm;
        outcome->sweeps =
            power_model->sweepsRun() + hb_model->sweepsRun();
        outcome->fitSeconds = fit_seconds;
    }
    if (state) {
        state->valid = true;
        state->mask = std::move(mask);
        state->maskHash = mask_hash;
        state->corpusRows = fit_rows;
        state->surface = surface;
        state->powerWarm = power_model->warmStart();
        state->hbWarm = hb_model->warmStart();
    }
    return surface;
}

UtilitySurface
UtilityEstimator::surfaceFromRows(const std::vector<double> &power_row,
                                  const std::vector<double> &hb_row)
{
    psm_assert(power_row.size() == hb_row.size());
    UtilitySurface s;
    s.power = power_row;
    s.hbRate = hb_row;
    s.sampledColumns = power_row.size();
    return s;
}

} // namespace psm::cf
