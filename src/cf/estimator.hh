/**
 * @file
 * The utility estimator: given sparse online measurements of a new
 * application plus a corpus of previously profiled applications,
 * predict the application's full power and performance surfaces over
 * the knob space (Section III-A, "App Utilities" in Fig. 6).
 *
 * Power is factored in linear space (it is approximately additive in
 * the knobs); heartbeat rates are factored in log space because their
 * structure is multiplicative and their absolute scales differ by
 * orders of magnitude across applications.
 */

#ifndef PSM_CF_ESTIMATOR_HH
#define PSM_CF_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "als.hh"
#include "matrix.hh"
#include "profiler.hh"
#include "power/platform.hh"

namespace psm::cf
{

/** A complete predicted utility surface for one application. */
struct UtilitySurface
{
    std::vector<double> power;  ///< watts per knob-space column
    std::vector<double> hbRate; ///< heartbeats/s per column
    std::size_t sampledColumns = 0; ///< how many were measured
};

/**
 * Memoized estimation state for one application, owned by the caller
 * (the LearningPipeline keeps one per tracked app).  A repeat
 * estimate() against the same corpus with the identical sampled-column
 * mask returns the cached surface without running a single ALS sweep;
 * a mask that strictly grew warm-starts both factorizations from the
 * previous factors instead of the random cold init.
 *
 * The cache key is deliberately the *mask*, not the measured values:
 * re-measuring the same columns yields the same surface modulo
 * measurement noise, and the sampler draws a fresh random mask on
 * drift recalibration, so a stale phase's surface is not pinned.
 */
struct FitState
{
    bool valid = false;
    std::vector<std::size_t> mask; ///< sorted sampled columns
    std::uint64_t maskHash = 0;    ///< FNV-1a over the mask
    std::size_t corpusRows = 0;    ///< rows the fit was made against
    UtilitySurface surface;
    AlsWarmStart powerWarm;
    AlsWarmStart hbWarm;
};

/** What one estimate() call actually did, for telemetry upstream. */
struct FitOutcome
{
    bool cacheHit = false;    ///< surface served without any fit
    bool warmStarted = false; ///< factors seeded from previous fit
    std::size_t sweeps = 0;   ///< total ALS sweeps across both models
    double fitSeconds = 0.0;  ///< wall-clock spent fitting (0 on hit)
};

/**
 * Corpus + estimation logic.
 */
class UtilityEstimator
{
  public:
    explicit UtilityEstimator(const power::PlatformConfig &config,
                              AlsConfig als = {});

    /** Number of knob-space columns. */
    std::size_t columnCount() const { return n_cols; }

    /** The knob setting of column @p c. */
    const power::KnobSetting &setting(std::size_t c) const;

    /** Column index of a (clamped, quantized) knob setting. */
    std::size_t columnOf(const power::KnobSetting &s) const;

    // --- Corpus ------------------------------------------------------

    /**
     * Add a fully profiled application to the corpus.
     */
    void addCorpusApp(const std::string &name,
                      const std::vector<double> &power_row,
                      const std::vector<double> &hb_row);

    bool hasCorpusApp(const std::string &name) const;
    std::size_t corpusSize() const { return names.size(); }
    const std::vector<std::string> &corpusNames() const { return names; }

    /** Drop every corpus application (used by cross-validation). */
    void clearCorpus();

    // --- Estimation ---------------------------------------------------

    /**
     * Estimate the full surface of a new application from sparse
     * measurements.  Measured columns keep their measured values.
     *
     * The power and heartbeat factorizations are independent and fit
     * concurrently on the global thread pool.
     *
     * @param state Optional per-app memo: identical mask (and corpus)
     *        => cached surface, zero sweeps; grown mask => warm-
     *        started refit.  Updated in place with this fit.
     * @param outcome Optional report of what the call did (cache hit,
     *        warm start, sweeps, fit wall-clock).
     */
    UtilitySurface estimate(const std::vector<Measurement> &samples,
                            FitState *state = nullptr,
                            FitOutcome *outcome = nullptr) const;

    /** Sorted column mask of a sample set plus its FNV-1a hash. */
    static std::pair<std::vector<std::size_t>, std::uint64_t>
    sampleMask(const std::vector<Measurement> &samples);

    /**
     * Convenience for a fully known application: wrap exhaustive
     * rows as a surface.
     */
    static UtilitySurface
    surfaceFromRows(const std::vector<double> &power_row,
                    const std::vector<double> &hb_row);

  private:
    const power::PlatformConfig &config;
    AlsConfig als_config;
    std::vector<power::KnobSetting> columns;
    std::size_t n_cols;

    std::vector<std::string> names;
    MaskedMatrix power_corpus;  ///< linear watts
    MaskedMatrix log_hb_corpus; ///< log heartbeat rates
};

} // namespace psm::cf

#endif // PSM_CF_ESTIMATOR_HH
