#include "cross_validation.hh"

#include <algorithm>
#include <cmath>

#include "perf/perf_model.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace psm::cf
{

CvResult
crossValidate(const power::PlatformConfig &config,
              const std::vector<perf::AppProfile> &apps,
              double sample_fraction, const CvConfig &cv)
{
    psm_assert(sample_fraction > 0.0 && sample_fraction <= 1.0);
    psm_assert(cv.folds >= 2);
    psm_assert(apps.size() >= cv.folds);

    Rng rng(cv.seed);
    Profiler profiler(config, cv.measurementNoise);
    Sampler sampler(config, cv.strategy);

    // Exhaustive ground-truth rows for every application (measured
    // noiselessly — this is the reference, not an observation).
    Rng truth_rng(cv.seed ^ 0x7247ULL);
    Profiler truth_profiler(config, 0.0);
    std::vector<std::vector<double>> truth_power(apps.size());
    std::vector<std::vector<double>> truth_hb(apps.size());
    std::vector<perf::PerfModel> models;
    models.reserve(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        models.emplace_back(config, apps[i]);
        truth_profiler.measureAll(models[i], truth_power[i],
                                  truth_hb[i], truth_rng);
    }

    // Shuffled fold assignment.
    std::vector<std::size_t> order(apps.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    CvResult result;
    result.sampleFraction = sample_fraction;
    double power_err = 0.0;
    double perf_err = 0.0;
    double under_pred = 0.0;
    std::size_t cells = 0;
    std::size_t held_out = 0;

    for (std::size_t fold = 0; fold < cv.folds; ++fold) {
        UtilityEstimator estimator(config, cv.als);
        std::vector<std::size_t> test_apps;
        for (std::size_t i = 0; i < order.size(); ++i) {
            std::size_t app = order[i];
            if (i % cv.folds == fold)
                test_apps.push_back(app);
            else
                estimator.addCorpusApp(apps[app].name,
                                       truth_power[app],
                                       truth_hb[app]);
        }

        for (std::size_t app : test_apps) {
            auto cols = sampler.select(sample_fraction, rng);
            auto samples = profiler.measure(models[app], cols, rng);
            UtilitySurface surface = estimator.estimate(samples);

            ++held_out;
            for (std::size_t c = 0; c < surface.power.size(); ++c) {
                double tp = truth_power[app][c];
                double th = truth_hb[app][c];
                psm_assert(tp > 0.0 && th > 0.0);
                power_err += std::abs(surface.power[c] - tp) / tp;
                perf_err += std::abs(surface.hbRate[c] - th) / th;
                under_pred += std::max(0.0, tp - surface.power[c]) / tp;
                ++cells;
            }
        }
    }

    psm_assert(cells > 0);
    result.powerRelError = power_err / static_cast<double>(cells);
    result.perfRelError = perf_err / static_cast<double>(cells);
    result.powerUnderPrediction =
        under_pred / static_cast<double>(cells);
    result.heldOutApps = held_out;
    return result;
}

std::vector<CvResult>
sweepSamplingFractions(const power::PlatformConfig &config,
                       const std::vector<perf::AppProfile> &apps,
                       const std::vector<double> &fractions,
                       const CvConfig &cv)
{
    std::vector<CvResult> results;
    results.reserve(fractions.size());
    for (double f : fractions)
        results.push_back(crossValidate(config, apps, f, cv));
    return results;
}

} // namespace psm::cf
