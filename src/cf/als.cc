#include "als.hh"

#include <algorithm>
#include <cmath>
#include <random>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm::cf
{

void
AlsConfig::validate() const
{
    if (rank == 0)
        fatal("ALS rank must be positive");
    if (lambda < 0.0)
        fatal("ALS lambda must be non-negative");
    if (iterations == 0)
        fatal("ALS needs at least one iteration");
    if (warmIterations == 0)
        fatal("ALS needs at least one warm iteration");
}

std::vector<double>
solveSpd(std::vector<double> a, std::vector<double> b, std::size_t k)
{
    psm_assert(a.size() == k * k && b.size() == k);
    // In-place Cholesky: A = L L^T.
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a[i * k + j];
            for (std::size_t p = 0; p < j; ++p)
                sum -= a[i * k + p] * a[j * k + p];
            if (i == j) {
                psm_assert(sum > 0.0);
                a[i * k + j] = std::sqrt(sum);
            } else {
                a[i * k + j] = sum / a[j * k + j];
            }
        }
    }
    // Forward substitution: L y = b.
    for (std::size_t i = 0; i < k; ++i) {
        double sum = b[i];
        for (std::size_t p = 0; p < i; ++p)
            sum -= a[i * k + p] * b[p];
        b[i] = sum / a[i * k + i];
    }
    // Back substitution: L^T x = y.
    for (std::size_t ii = k; ii-- > 0;) {
        double sum = b[ii];
        for (std::size_t p = ii + 1; p < k; ++p)
            sum -= a[p * k + ii] * b[p];
        b[ii] = sum / a[ii * k + ii];
    }
    return b;
}

AlsModel::AlsModel(const MaskedMatrix &data, AlsConfig config,
                   const AlsWarmStart *warm)
    : cfg(config)
{
    cfg.validate();
    n_rows = data.rows();
    n_cols = data.cols();
    psm_assert(n_rows > 0 && n_cols > 0);
    fit(data, warm);
}

AlsWarmStart
AlsModel::warmStart() const
{
    AlsWarmStart w;
    w.rowBias = row_bias;
    w.colBias = col_bias;
    w.u = u;
    w.v = v;
    return w;
}

void
AlsModel::fit(const MaskedMatrix &data, const AlsWarmStart *warm)
{
    std::size_t k = cfg.rank;
    mu = data.observedMean();
    auto [lo, hi] = data.observedRange();
    clamp_lo = lo;
    clamp_hi = hi;

    bool warmed = warm && warm->matches(n_rows, n_cols, k);
    if (warmed) {
        row_bias = warm->rowBias;
        col_bias = warm->colBias;
        u = warm->u;
        v = warm->v;
    } else {
        row_bias.assign(n_rows, 0.0);
        col_bias.assign(n_cols, 0.0);
        u.assign(n_rows * k, 0.0);
        v.assign(n_cols * k, 0.0);

        std::mt19937 rng(cfg.seed);
        std::normal_distribution<double> init(0.0, 0.1);
        for (double &x : u)
            x = init(rng);
        for (double &x : v)
            x = init(rng);
    }

    if (data.observedCount() == 0)
        return;

    // Precompute observation lists per row and per column.
    std::vector<std::vector<std::size_t>> row_obs(n_rows);
    std::vector<std::vector<std::size_t>> col_obs(n_cols);
    for (std::size_t r = 0; r < n_rows; ++r)
        for (std::size_t c = 0; c < n_cols; ++c)
            if (data.observed(r, c)) {
                row_obs[r].push_back(c);
                col_obs[c].push_back(r);
            }

    auto residual = [&](std::size_t r, std::size_t c) {
        double dot = 0.0;
        for (std::size_t p = 0; p < k; ++p)
            dot += u[r * k + p] * v[c * k + p];
        return data.at(r, c) - (mu + row_bias[r] + col_bias[c] + dot);
    };

    // Every sub-pass below updates index i from state the pass holds
    // fixed (row biases read column biases of the *previous* pass and
    // vice versa; factor solves read the opposite side's factors), so
    // the per-index solves of one pass are independent and run on the
    // pool.  Each index writes only its own bias/factor slice, which
    // makes the result bit-identical to the serial sweep at any
    // worker count.
    util::ThreadPool &pool = util::ThreadPool::global();

    sweeps_run = warmed ? cfg.warmIterations : cfg.iterations;
    for (std::size_t iter = 0; iter < sweeps_run; ++iter) {
        // Bias updates (closed form ridge estimates).
        pool.parallelFor(n_rows, [&](std::size_t r) {
            if (row_obs[r].empty())
                return;
            double sum = 0.0;
            for (std::size_t c : row_obs[r])
                sum += residual(r, c) + row_bias[r];
            row_bias[r] =
                sum / (static_cast<double>(row_obs[r].size()) +
                       cfg.lambda);
        });
        pool.parallelFor(n_cols, [&](std::size_t c) {
            if (col_obs[c].empty())
                return;
            double sum = 0.0;
            for (std::size_t r : col_obs[c])
                sum += residual(r, c) + col_bias[c];
            col_bias[c] =
                sum / (static_cast<double>(col_obs[c].size()) +
                       cfg.lambda);
        });

        // Row factors: ridge regression against fixed column factors.
        pool.parallelFor(n_rows, [&](std::size_t r) {
            if (row_obs[r].empty())
                return;
            std::vector<double> a(k * k, 0.0);
            std::vector<double> b(k, 0.0);
            for (std::size_t c : row_obs[r]) {
                double target = data.at(r, c) - mu - row_bias[r] -
                                col_bias[c];
                for (std::size_t p = 0; p < k; ++p) {
                    b[p] += target * v[c * k + p];
                    for (std::size_t q = 0; q <= p; ++q)
                        a[p * k + q] += v[c * k + p] * v[c * k + q];
                }
            }
            for (std::size_t p = 0; p < k; ++p) {
                for (std::size_t q = p + 1; q < k; ++q)
                    a[p * k + q] = a[q * k + p];
                a[p * k + p] += cfg.lambda;
            }
            auto x = solveSpd(std::move(a), std::move(b), k);
            std::copy(x.begin(), x.end(), u.begin() +
                      static_cast<long>(r * k));
        });

        // Column factors symmetrically.
        pool.parallelFor(n_cols, [&](std::size_t c) {
            if (col_obs[c].empty())
                return;
            std::vector<double> a(k * k, 0.0);
            std::vector<double> b(k, 0.0);
            for (std::size_t r : col_obs[c]) {
                double target = data.at(r, c) - mu - row_bias[r] -
                                col_bias[c];
                for (std::size_t p = 0; p < k; ++p) {
                    b[p] += target * u[r * k + p];
                    for (std::size_t q = 0; q <= p; ++q)
                        a[p * k + q] += u[r * k + p] * u[r * k + q];
                }
            }
            for (std::size_t p = 0; p < k; ++p) {
                for (std::size_t q = p + 1; q < k; ++q)
                    a[p * k + q] = a[q * k + p];
                a[p * k + p] += cfg.lambda;
            }
            auto x = solveSpd(std::move(a), std::move(b), k);
            std::copy(x.begin(), x.end(), v.begin() +
                      static_cast<long>(c * k));
        });
    }
}

double
AlsModel::rawPredict(std::size_t r, std::size_t c) const
{
    psm_assert(r < n_rows && c < n_cols);
    double dot = 0.0;
    for (std::size_t p = 0; p < cfg.rank; ++p)
        dot += u[r * cfg.rank + p] * v[c * cfg.rank + p];
    return mu + row_bias[r] + col_bias[c] + dot;
}

double
AlsModel::predict(std::size_t r, std::size_t c) const
{
    return std::clamp(rawPredict(r, c), clamp_lo, clamp_hi);
}

Matrix
AlsModel::complete(const MaskedMatrix &data) const
{
    psm_assert(data.rows() == n_rows && data.cols() == n_cols);
    Matrix out(n_rows, n_cols);
    for (std::size_t r = 0; r < n_rows; ++r)
        for (std::size_t c = 0; c < n_cols; ++c)
            out.at(r, c) = data.observed(r, c) ? data.at(r, c)
                                               : predict(r, c);
    return out;
}

double
AlsModel::trainRmse(const MaskedMatrix &data) const
{
    if (data.observedCount() == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t r = 0; r < n_rows; ++r) {
        for (std::size_t c = 0; c < n_cols; ++c) {
            if (data.observed(r, c)) {
                double d = data.at(r, c) - predict(r, c);
                sum += d * d;
            }
        }
    }
    return std::sqrt(sum / static_cast<double>(data.observedCount()));
}

} // namespace psm::cf
