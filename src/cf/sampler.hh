/**
 * @file
 * Online sampling strategies: which knob settings to actually measure
 * when a new application arrives (Section III-A's "sparse sampling").
 *
 * Measuring all 432 settings of (f, n, m) would take minutes per
 * application; the paper instead measures a small fraction online and
 * lets collaborative filtering fill in the rest.  The strategy always
 * measures a fixed set of anchor settings (the knob-space corners)
 * because the factorization extrapolates poorly outside the sampled
 * envelope, then spreads the remaining budget uniformly or stratified
 * across the three knob axes.
 */

#ifndef PSM_CF_SAMPLER_HH
#define PSM_CF_SAMPLER_HH

#include <cstddef>
#include <vector>

#include "power/platform.hh"
#include "util/random.hh"

namespace psm::cf
{

/** How the non-anchor sampling budget is spread. */
enum class SamplingStrategy
{
    Random,     ///< uniform over all settings
    Stratified, ///< balanced across the f, n and m axes
};

/**
 * Selects knob-space column indices to measure.
 */
class Sampler
{
  public:
    /**
     * @param config Platform whose knobSpace() defines the columns.
     * @param strategy Spreading strategy for the non-anchor budget.
     */
    explicit Sampler(const power::PlatformConfig &config,
                     SamplingStrategy strategy =
                         SamplingStrategy::Stratified);

    /**
     * Pick the columns to measure.
     *
     * @param fraction Fraction of the knob space to measure, in
     *        (0, 1]; the anchors count toward the budget.
     * @param rng Randomness source.
     * @return Sorted, de-duplicated column indices.
     */
    std::vector<std::size_t> select(double fraction, Rng &rng) const;

    /** The always-measured anchor columns (knob-space corners). */
    const std::vector<std::size_t> &anchors() const { return corner_ix; }

    /** Total number of knob-space columns. */
    std::size_t columnCount() const { return n_cols; }

  private:
    const power::PlatformConfig &config;
    SamplingStrategy strategy;
    std::size_t n_cols;
    std::size_t n_freq;
    std::size_t n_cores;
    std::size_t n_dram;
    std::vector<std::size_t> corner_ix;

    std::size_t columnIndex(std::size_t f, std::size_t n,
                            std::size_t m) const;
};

} // namespace psm::cf

#endif // PSM_CF_SAMPLER_HH
