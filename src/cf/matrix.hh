/**
 * @file
 * Dense matrix with an observation mask — the "preference matrix" of
 * the paper's collaborative filtering stage.
 *
 * Rows are applications, columns are knob settings; a cell holds a
 * measured (or predicted) power or performance value.  The mask marks
 * which cells were actually measured: the estimator trains only on
 * observed cells and fills in the rest.
 */

#ifndef PSM_CF_MATRIX_HH
#define PSM_CF_MATRIX_HH

#include <cstddef>
#include <vector>

namespace psm::cf
{

/**
 * Row-major dense matrix of doubles.
 */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    std::size_t rows() const { return n_rows; }
    std::size_t cols() const { return n_cols; }
    bool empty() const { return n_rows == 0 || n_cols == 0; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Append a row (must match the column count; first row sets it). */
    void appendRow(const std::vector<double> &row);

    /** Copy of one row. */
    std::vector<double> row(std::size_t r) const;

    /** Root-mean-square difference over all cells (same shape). */
    double rmse(const Matrix &other) const;

  private:
    std::size_t n_rows = 0;
    std::size_t n_cols = 0;
    std::vector<double> data;

    std::size_t index(std::size_t r, std::size_t c) const;
};

/**
 * A matrix paired with a boolean observation mask.
 */
class MaskedMatrix
{
  public:
    MaskedMatrix() = default;
    MaskedMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return values.rows(); }
    std::size_t cols() const { return values.cols(); }

    /** Record an observation. */
    void observe(std::size_t r, std::size_t c, double value);

    /** Forget an observation (used by cross-validation hold-outs). */
    void unobserve(std::size_t r, std::size_t c);

    bool observed(std::size_t r, std::size_t c) const;
    double at(std::size_t r, std::size_t c) const;

    /** Append a fully-observed row. */
    void appendObservedRow(const std::vector<double> &row);

    /** Append a fully-unobserved (empty) row. */
    void appendEmptyRow();

    std::size_t observedCount() const { return n_observed; }
    /** Fraction of cells observed. */
    double density() const;

    /** Mean of the observed cells (0 when none). */
    double observedMean() const;

    /** Min/max over observed cells; {0,0} when none. */
    std::pair<double, double> observedRange() const;

    const Matrix &matrix() const { return values; }

  private:
    Matrix values;
    std::vector<char> mask;
    std::size_t n_observed = 0;
};

} // namespace psm::cf

#endif // PSM_CF_MATRIX_HH
