#include "profiler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace psm::cf
{

Profiler::Profiler(const power::PlatformConfig &config,
                   double noise_stddev)
    : config(config), noise(noise_stddev),
      columns(config.knobSpace())
{
    psm_assert(noise >= 0.0);
}

double
Profiler::noisy(double value, Rng &rng) const
{
    if (noise <= 0.0)
        return value;
    return std::max(0.0, value * (1.0 + rng.gaussian(0.0, noise)));
}

Measurement
Profiler::measureOne(const perf::PerfModel &model, std::size_t column,
                     Rng &rng, double cpu_scale,
                     double mem_scale) const
{
    psm_assert(column < columns.size());
    perf::OperatingPoint op = model.evaluate(columns[column], 1.0, 1.0,
                                             cpu_scale, mem_scale);
    Measurement m;
    m.column = column;
    m.power = noisy(op.totalPower(), rng);
    m.hbRate = noisy(op.hbRate, rng);
    return m;
}

std::vector<Measurement>
Profiler::measure(const perf::PerfModel &model,
                  const std::vector<std::size_t> &cols, Rng &rng,
                  double cpu_scale, double mem_scale) const
{
    std::vector<Measurement> out;
    out.reserve(cols.size());
    for (std::size_t c : cols)
        out.push_back(measureOne(model, c, rng, cpu_scale, mem_scale));
    return out;
}

void
Profiler::measureAll(const perf::PerfModel &model,
                     std::vector<double> &power_row,
                     std::vector<double> &hb_row, Rng &rng) const
{
    power_row.resize(columns.size());
    hb_row.resize(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
        Measurement m = measureOne(model, c, rng);
        power_row[c] = m.power;
        hb_row[c] = m.hbRate;
    }
}

} // namespace psm::cf
