#include "replay.hh"

#include <cmath>
#include <sstream>

#include "core/policy_registry.hh"
#include "trace/log.hh"

namespace psm::serve
{

namespace
{

/** Bump when the Config payload layout changes. */
constexpr std::uint8_t kConfigVersion = 1;

std::uint64_t
fingerprint(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
digestLine(const DecisionDigest &d, std::uint64_t epoch_sum)
{
    std::ostringstream os;
    os << "hash=" << std::hex << d.hash << std::dec
       << " passes=" << d.passes << " simNow=" << d.simNow
       << " apps=" << d.activeApps << " objective=" << d.objective
       << " surfaceEpochSum=" << epoch_sum;
    return os.str();
}

} // namespace

std::vector<std::uint8_t>
encodeCaptureConfig(const EngineConfig &cfg)
{
    std::vector<std::uint8_t> buf;
    trace::putU8(buf, kConfigVersion);
    trace::putU32(buf, static_cast<std::uint32_t>(cfg.nodes));
    trace::putF64(buf, cfg.serverCap);
    trace::putU8(buf, cfg.esd ? 1 : 0);
    trace::putU64(buf, cfg.seedBase);
    trace::putU8(buf, cfg.seedCorpus ? 1 : 0);
    trace::putF64(buf, cfg.maxAdvance);
    const core::ManagerConfig &m = cfg.manager;
    trace::putU8(buf, static_cast<std::uint8_t>(m.policy));
    trace::putF64(buf, m.sampleFraction);
    trace::putU8(buf, m.oracleUtilities ? 1 : 0);
    trace::putF64(buf, m.measurementNoise);
    trace::putU64(buf, m.calibrationPerSample);
    trace::putU64(buf, m.controlPeriod);
    trace::putF64(buf, m.budgetGuard);
    trace::putF64(buf, m.trimGain);
    trace::putU64(buf, m.refreshPeriod);
    trace::putU8(buf, static_cast<std::uint8_t>(m.sampling));
    trace::putU8(buf, m.allocator.denseDp ? 1 : 0);
    trace::putU64(buf, m.seed);
    trace::putU64(buf, fingerprint(buf));
    return buf;
}

bool
decodeCaptureConfig(const std::vector<std::uint8_t> &payload,
                    EngineConfig &out, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (payload.size() < 8)
        return fail("Config payload truncated");
    std::vector<std::uint8_t> body(payload.begin(), payload.end() - 8);
    trace::ByteCursor tail(payload);
    tail.pos = payload.size() - 8;
    std::uint64_t fp = 0;
    if (!tail.getU64(fp) || fp != fingerprint(body))
        return fail("Config fingerprint mismatch");

    trace::ByteCursor c(body);
    std::uint8_t version = 0, esd = 0, seed_corpus = 0, policy = 0,
                 oracle = 0, sampling = 0, dense_dp = 0;
    std::uint32_t nodes = 0;
    EngineConfig cfg;
    core::ManagerConfig &m = cfg.manager;
    if (!c.getU8(version) || version != kConfigVersion)
        return fail("unsupported Config version");
    if (!c.getU32(nodes) || !c.getF64(cfg.serverCap) ||
        !c.getU8(esd) || !c.getU64(cfg.seedBase) ||
        !c.getU8(seed_corpus) || !c.getF64(cfg.maxAdvance) ||
        !c.getU8(policy) || !c.getF64(m.sampleFraction) ||
        !c.getU8(oracle) || !c.getF64(m.measurementNoise) ||
        !c.getU64(m.calibrationPerSample) ||
        !c.getU64(m.controlPeriod) || !c.getF64(m.budgetGuard) ||
        !c.getF64(m.trimGain) || !c.getU64(m.refreshPeriod) ||
        !c.getU8(sampling) || !c.getU8(dense_dp) || !c.getU64(m.seed))
        return fail("Config fields truncated");
    if (!c.atEnd())
        return fail("trailing bytes after Config fields");
    if (nodes == 0)
        return fail("Config has zero nodes");
    // The policy byte is the PolicyKind wire id; resolve it through
    // the registry instead of a blind enum cast so captures from
    // builds with policies this binary does not register are refused
    // with a reason, not replayed with corrupt dispatch.
    const core::PolicyInfo *info =
        core::PolicyRegistry::instance().findWireId(policy);
    if (!info)
        return fail("unregistered policy wire id " +
                    std::to_string(static_cast<int>(policy)));
    if (sampling > static_cast<std::uint8_t>(
                       cf::SamplingStrategy::Stratified))
        return fail("invalid sampling strategy " +
                    std::to_string(static_cast<int>(sampling)));
    cfg.nodes = static_cast<int>(nodes);
    cfg.esd = esd != 0;
    cfg.seedCorpus = seed_corpus != 0;
    m.policy = info->kind;
    m.oracleUtilities = oracle != 0;
    m.sampling = static_cast<cf::SamplingStrategy>(sampling);
    m.allocator.denseDp = dense_dp != 0;
    out = cfg;
    return true;
}

std::vector<std::uint8_t>
encodeCapturedEvent(const CapturedEvent &ev)
{
    std::vector<std::uint8_t> buf;
    const EventRequest &r = ev.request;
    trace::putU8(buf, static_cast<std::uint8_t>(r.op));
    trace::putU32(buf, static_cast<std::uint32_t>(r.node));
    trace::putU32(buf, static_cast<std::uint32_t>(r.appId));
    trace::putU32(buf, r.workload);
    trace::putF64(buf, r.value);
    trace::putF64(buf, r.cpuScale);
    trace::putF64(buf, r.memScale);
    trace::putU32(buf, r.deadlineUs);
    trace::putU8(buf, static_cast<std::uint8_t>(r.appClass));
    trace::putF64(buf, r.sloP99);
    trace::putU8(buf, static_cast<std::uint8_t>(ev.outcome.status));
    trace::putU32(buf,
                  static_cast<std::uint32_t>(ev.outcome.node));
    trace::putU32(buf,
                  static_cast<std::uint32_t>(ev.outcome.appId));
    return buf;
}

bool
decodeCapturedEvent(const std::vector<std::uint8_t> &payload,
                    CapturedEvent &out)
{
    trace::ByteCursor c(payload);
    std::uint8_t op = 0, cls = 0, status = 0;
    std::uint32_t node = 0, app = 0, onode = 0, oapp = 0;
    CapturedEvent ev;
    if (!c.getU8(op) || !c.getU32(node) || !c.getU32(app) ||
        !c.getU32(ev.request.workload) ||
        !c.getF64(ev.request.value) ||
        !c.getF64(ev.request.cpuScale) ||
        !c.getF64(ev.request.memScale) ||
        !c.getU32(ev.request.deadlineUs) || !c.getU8(cls) ||
        !c.getF64(ev.request.sloP99) || !c.getU8(status) ||
        !c.getU32(onode) || !c.getU32(oapp) || !c.atEnd())
        return false;
    if (op < static_cast<std::uint8_t>(EventOp::Advance) ||
        op > static_cast<std::uint8_t>(EventOp::Kill))
        return false;
    if (cls > static_cast<std::uint8_t>(AppClass::Interactive))
        return false;
    if (!std::isfinite(ev.request.sloP99) || ev.request.sloP99 < 0.0)
        return false;
    if (status > static_cast<std::uint8_t>(ReplyStatus::BadRequest))
        return false;
    ev.request.op = static_cast<EventOp>(op);
    ev.request.appClass = static_cast<AppClass>(cls);
    ev.request.node = static_cast<std::int32_t>(node);
    ev.request.appId = static_cast<std::int32_t>(app);
    ev.outcome.status = static_cast<ReplyStatus>(status);
    ev.outcome.node = static_cast<std::int32_t>(onode);
    ev.outcome.appId = static_cast<std::int32_t>(oapp);
    out = ev;
    return true;
}

std::vector<std::uint8_t>
encodeCapturedCommit(const CapturedCommit &commit)
{
    std::vector<std::uint8_t> buf;
    trace::putU64(buf, commit.digest.hash);
    trace::putU64(buf, commit.digest.passes);
    trace::putU64(buf, commit.digest.simNow);
    trace::putU32(buf, commit.digest.activeApps);
    trace::putF64(buf, commit.digest.objective);
    trace::putU64(buf, commit.surfaceEpochSum);
    return buf;
}

bool
decodeCapturedCommit(const std::vector<std::uint8_t> &payload,
                     CapturedCommit &out)
{
    trace::ByteCursor c(payload);
    CapturedCommit commit;
    if (!c.getU64(commit.digest.hash) ||
        !c.getU64(commit.digest.passes) ||
        !c.getU64(commit.digest.simNow) ||
        !c.getU32(commit.digest.activeApps) ||
        !c.getF64(commit.digest.objective) ||
        !c.getU64(commit.surfaceEpochSum) || !c.atEnd())
        return false;
    out = commit;
    return true;
}

bool
readCapture(const std::string &path, Capture &out, std::string &error)
{
    trace::LogReader reader;
    if (!reader.open(path, error))
        return false;

    Capture cap;
    bool have_config = false;
    std::uint8_t type = 0;
    std::vector<std::uint8_t> payload;
    while (reader.readRecord(type, payload)) {
        switch (static_cast<CaptureRecord>(type)) {
          case CaptureRecord::Config:
            if (have_config) {
                error = "duplicate Config record";
                return false;
            }
            {
                std::string why;
                if (!decodeCaptureConfig(payload, cap.config, &why)) {
                    error = "malformed Config record: " + why;
                    return false;
                }
            }
            have_config = true;
            break;
          case CaptureRecord::Event: {
            Capture::Step step;
            if (!decodeCapturedEvent(payload, step.event)) {
                error = "malformed Event record";
                return false;
            }
            cap.steps.push_back(std::move(step));
            break;
          }
          case CaptureRecord::Commit: {
            Capture::Step step;
            step.isCommit = true;
            if (!decodeCapturedCommit(payload, step.commit)) {
                error = "malformed Commit record";
                return false;
            }
            cap.steps.push_back(std::move(step));
            break;
          }
          default:
            error = "unknown record type " + std::to_string(type);
            return false;
        }
    }
    if (!reader.error().empty()) {
        error = reader.error();
        return false;
    }
    if (!have_config) {
        error = "capture has no Config record";
        return false;
    }
    out = std::move(cap);
    return true;
}

ReplayResult
replayCapture(const Capture &capture)
{
    ReplayResult res;
    ServeEngine engine(capture.config);
    res.ok = true;
    for (const Capture::Step &step : capture.steps) {
        if (step.isCommit) {
            DecisionDigest got = engine.commit();
            std::uint64_t epoch_sum = engine.surfaceEpochSum();
            ++res.commits;
            res.finalDigest = got;
            res.finalSurfaceEpochSum = epoch_sum;
            if (!(got == step.commit.digest) ||
                epoch_sum != step.commit.surfaceEpochSum) {
                res.ok = false;
                ++res.mismatches;
                res.firstMismatch =
                    "commit " + std::to_string(res.commits) +
                    " diverged:\n  captured: " +
                    digestLine(step.commit.digest,
                               step.commit.surfaceEpochSum) +
                    "\n  replayed: " + digestLine(got, epoch_sum);
                return res;
            }
        } else {
            ApplyOutcome got = engine.apply(step.event.request);
            ++res.events;
            const ApplyOutcome &want = step.event.outcome;
            if (got.status != want.status || got.node != want.node ||
                got.appId != want.appId) {
                res.ok = false;
                ++res.mismatches;
                res.firstMismatch =
                    "event " + std::to_string(res.events) + " (" +
                    eventOpName(step.event.request.op) +
                    ") outcome diverged: captured " +
                    replyStatusName(want.status) + "/node=" +
                    std::to_string(want.node) + "/app=" +
                    std::to_string(want.appId) + ", replayed " +
                    replyStatusName(got.status) + "/node=" +
                    std::to_string(got.node) + "/app=" +
                    std::to_string(got.appId);
                return res;
            }
        }
    }
    res.finalDigest = engine.digest();
    res.finalSurfaceEpochSum = engine.surfaceEpochSum();
    return res;
}

} // namespace psm::serve
