/**
 * @file
 * A small blocking client for the serving protocol.
 *
 * One socket, synchronous request/reply with poll()-based timeouts.
 * Built for the bench harness, tests and the example tool — clean and
 * predictable rather than pipelined; the daemon side is where the
 * async machinery lives.  submit() is the closed-loop primitive
 * (write, wait for the matching EVENT-REPLY); send() plus
 * readEventReply() is the open-loop pair (fire a burst, then drain
 * replies as they come).
 */

#ifndef PSM_SERVE_CLIENT_HH
#define PSM_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "net/message_reader.hh"
#include "protocol.hh"

namespace psm::serve
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Adopt a connected stream fd (e.g. from
     * ServeService::openLocalConnection()). */
    void adopt(int fd);

    /** Connect to a TCP daemon. @return false on failure. */
    bool connectTcp(const std::string &host, std::uint16_t port);

    bool connected() const { return sock >= 0; }
    void close();

    /** Handshake. @return false on transport error, rejected
     * version, or timeout. */
    bool hello(const std::string &name, HelloReply &out,
               int timeout_ms = 5000);

    /** Closed loop: submit one event and wait for its reply. */
    bool submit(const EventRequest &ev, EventReply &out,
                int timeout_ms = 30000);

    /** Open loop: fire one event without waiting.  The reply arrives
     * later through readEventReply(). */
    bool send(const EventRequest &ev);

    /** Read the next EVENT-REPLY (any request id).  Other reply
     * types arriving first are discarded. */
    bool readEventReply(EventReply &out, int timeout_ms = 30000);

    /** Same, but also return which request the reply answers (for
     * open-loop latency bookkeeping). */
    bool readEventReply(EventReply &out, std::uint32_t &request_id,
                        int timeout_ms);

    bool stats(StatsSnapshot &out, int timeout_ms = 5000);

    bool query(const std::string &name, QueryReply &out,
               int timeout_ms = 5000);

    /** Ask the daemon to shut down; waits for the ack. */
    bool shutdownServer(int timeout_ms = 5000);

    /** Requests issued so far (ids are 1-based and count up). */
    std::uint32_t sent() const { return next_id - 1; }

  private:
    int sock = -1;
    std::uint32_t next_id = 1;
    net::FrameReader reader;

    bool writeAll(const std::vector<std::uint8_t> &bytes);
    /** Next complete frame, blocking up to the timeout. */
    bool readFrame(net::Frame &out, int timeout_ms);
    /** Read frames until one matches (type, id); mismatches are
     * dropped. */
    bool awaitReply(net::FrameType type, std::uint32_t request_id,
                    net::Frame &out, int timeout_ms);
};

} // namespace psm::serve

#endif // PSM_SERVE_CLIENT_HH
