#include "protocol.hh"

#include <cmath>

namespace psm::serve
{

using net::WireReader;
using net::WireWriter;

std::string
eventOpName(EventOp op)
{
    switch (op) {
      case EventOp::Advance:
        return "advance";
      case EventOp::CapChange:
        return "E1-cap-change";
      case EventOp::Arrival:
        return "E2-arrival";
      case EventOp::PhaseChange:
        return "E4-phase-change";
      case EventOp::Kill:
        return "E3-kill";
    }
    return "unknown";
}

std::string
appClassName(AppClass cls)
{
    switch (cls) {
      case AppClass::Batch:
        return "batch";
      case AppClass::Interactive:
        return "interactive";
    }
    return "unknown";
}

std::string
replyStatusName(ReplyStatus status)
{
    switch (status) {
      case ReplyStatus::Ok:
        return "ok";
      case ReplyStatus::Shed:
        return "shed";
      case ReplyStatus::Expired:
        return "expired";
      case ReplyStatus::Rejected:
        return "rejected";
      case ReplyStatus::BadRequest:
        return "bad-request";
    }
    return "unknown";
}

namespace
{

bool
validOp(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(EventOp::Advance) &&
           raw <= static_cast<std::uint8_t>(EventOp::Kill);
}

bool
validStatus(std::uint8_t raw)
{
    return raw <= static_cast<std::uint8_t>(ReplyStatus::BadRequest);
}

bool
validClass(std::uint8_t raw)
{
    return raw <= static_cast<std::uint8_t>(AppClass::Interactive);
}

void
putDigest(WireWriter &w, const DecisionDigest &d)
{
    w.putU64(d.hash);
    w.putU64(d.passes);
    w.putU64(d.simNow);
    w.putU32(d.activeApps);
    w.putF64(d.objective);
}

DecisionDigest
getDigest(WireReader &r)
{
    DecisionDigest d;
    d.hash = r.u64();
    d.passes = r.u64();
    d.simNow = r.u64();
    d.activeApps = r.u32();
    d.objective = r.f64();
    return d;
}

} // namespace

std::vector<std::uint8_t>
encodeEventRequest(const EventRequest &ev)
{
    WireWriter w;
    w.putU8(static_cast<std::uint8_t>(ev.op));
    w.putI32(ev.node);
    w.putI32(ev.appId);
    w.putU32(ev.workload);
    w.putF64(ev.value);
    w.putF64(ev.cpuScale);
    w.putF64(ev.memScale);
    w.putU32(ev.deadlineUs);
    w.putU8(static_cast<std::uint8_t>(ev.appClass));
    w.putF64(ev.sloP99);
    return w.take();
}

bool
decodeEventRequest(const std::vector<std::uint8_t> &payload,
                   EventRequest &out)
{
    WireReader r(payload);
    std::uint8_t op = r.u8();
    if (!validOp(op))
        return false;
    out.op = static_cast<EventOp>(op);
    out.node = r.i32();
    out.appId = r.i32();
    out.workload = r.u32();
    out.value = r.f64();
    out.cpuScale = r.f64();
    out.memScale = r.f64();
    out.deadlineUs = r.u32();
    std::uint8_t cls = r.u8();
    if (!validClass(cls))
        return false;
    out.appClass = static_cast<AppClass>(cls);
    out.sloP99 = r.f64();
    if (!std::isfinite(out.sloP99) || out.sloP99 < 0.0)
        return false;
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeEventReply(const EventReply &reply)
{
    WireWriter w;
    w.putU8(static_cast<std::uint8_t>(reply.status));
    w.putI32(reply.node);
    w.putI32(reply.appId);
    w.putU32(reply.batched);
    putDigest(w, reply.digest);
    return w.take();
}

bool
decodeEventReply(const std::vector<std::uint8_t> &payload,
                 EventReply &out)
{
    WireReader r(payload);
    std::uint8_t status = r.u8();
    if (!validStatus(status))
        return false;
    out.status = static_cast<ReplyStatus>(status);
    out.node = r.i32();
    out.appId = r.i32();
    out.batched = r.u32();
    out.digest = getDigest(r);
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeHelloRequest(const HelloRequest &req)
{
    WireWriter w;
    w.putU8(req.version);
    w.putString(req.client);
    return w.take();
}

bool
decodeHelloRequest(const std::vector<std::uint8_t> &payload,
                   HelloRequest &out)
{
    WireReader r(payload);
    out.version = r.u8();
    out.client = r.str();
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeHelloReply(const HelloReply &reply)
{
    WireWriter w;
    w.putU8(reply.version);
    w.putU8(reply.accepted ? 1 : 0);
    w.putString(reply.server);
    return w.take();
}

bool
decodeHelloReply(const std::vector<std::uint8_t> &payload,
                 HelloReply &out)
{
    WireReader r(payload);
    out.version = r.u8();
    out.accepted = r.u8() != 0;
    out.server = r.str();
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeStatsSnapshot(const StatsSnapshot &s)
{
    WireWriter w;
    w.putU64(s.simNow);
    w.putU32(s.nodes);
    w.putU32(s.activeApps);
    w.putU32(s.freeSockets);
    w.putU64(s.allocatorPasses);
    w.putU64(s.eventsApplied);
    w.putU64(s.batches);
    w.putU64(s.maxBatch);
    w.putU64(s.shed);
    w.putU64(s.expired);
    w.putU64(s.rejected);
    w.putU32(s.queueDepth);
    w.putU32(s.poolQueueDepth);
    w.putU32(s.poolInflight);
    w.putU64(s.digestHash);
    w.putU32(static_cast<std::uint32_t>(s.counters.size()));
    for (const auto &[name, value] : s.counters) {
        w.putString(name);
        w.putU64(value);
    }
    return w.take();
}

bool
decodeStatsSnapshot(const std::vector<std::uint8_t> &payload,
                    StatsSnapshot &out)
{
    WireReader r(payload);
    out.simNow = r.u64();
    out.nodes = r.u32();
    out.activeApps = r.u32();
    out.freeSockets = r.u32();
    out.allocatorPasses = r.u64();
    out.eventsApplied = r.u64();
    out.batches = r.u64();
    out.maxBatch = r.u64();
    out.shed = r.u64();
    out.expired = r.u64();
    out.rejected = r.u64();
    out.queueDepth = r.u32();
    out.poolQueueDepth = r.u32();
    out.poolInflight = r.u32();
    out.digestHash = r.u64();
    std::uint32_t entries = r.u32();
    out.counters.clear();
    for (std::uint32_t i = 0; i < entries && r.good(); ++i) {
        std::string name = r.str();
        std::uint64_t value = r.u64();
        out.counters.emplace(std::move(name), value);
    }
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeQueryRequest(const QueryRequest &req)
{
    WireWriter w;
    w.putString(req.name);
    return w.take();
}

bool
decodeQueryRequest(const std::vector<std::uint8_t> &payload,
                   QueryRequest &out)
{
    WireReader r(payload);
    out.name = r.str();
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeQueryReply(const QueryReply &reply)
{
    WireWriter w;
    w.putU8(reply.found ? 1 : 0);
    w.putU64(reply.value);
    return w.take();
}

bool
decodeQueryReply(const std::vector<std::uint8_t> &payload,
                 QueryReply &out)
{
    WireReader r(payload);
    out.found = r.u8() != 0;
    out.value = r.u64();
    return r.good() && r.atEnd();
}

std::vector<std::uint8_t>
encodeErrorMessage(const std::string &msg)
{
    WireWriter w;
    w.putString(msg);
    return w.take();
}

bool
decodeErrorMessage(const std::vector<std::uint8_t> &payload,
                   std::string &out)
{
    WireReader r(payload);
    out = r.str();
    return r.good() && r.atEnd();
}

} // namespace psm::serve
