/**
 * @file
 * The ServeEngine: the deterministic decision core behind the daemon.
 *
 * It hosts a NodePool of managed servers (one by default — the
 * paper's shared server — or many for a small cluster) and translates
 * decoded wire events into ControlLoop entry points: E1 cap changes,
 * E2 arrivals (with a most-free-sockets routing rule when the client
 * does not pin a node), E4-provoking phase changes, external E3
 * kills, and explicit clock advances.  commit() runs one control
 * period, so however many events were applied since the last commit,
 * the Accountant's next poll folds them into ONE reallocate() pass —
 * the coalescing the batching stage above exploits.
 *
 * Everything is deterministic: the same event sequence against the
 * same config yields bit-identical decisions whether the events came
 * over a socket or from an in-process loop.  DecisionDigest is the
 * proof — an FNV-1a fold of every node's decision state that the
 * bench compares across both paths.
 */

#ifndef PSM_SERVE_ENGINE_HH
#define PSM_SERVE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/node_pool.hh"
#include "core/manager.hh"
#include "protocol.hh"
#include "util/units.hh"

namespace psm::trace
{
class LogWriter;
}

namespace psm::serve
{

/** How to build the served cluster. */
struct EngineConfig
{
    /** Managed servers behind this daemon. */
    int nodes = 1;
    /** Initial per-server power cap. */
    Watts serverCap = 100.0;
    /** Per-server control-plane template (node i runs with
     * seed = seedBase + i). */
    core::ManagerConfig manager;
    /** Attach a lead-acid UPS to every node. */
    bool esd = false;
    std::uint64_t seedBase = 7;
    /** Seed each manager's CF corpus from the workload library. */
    bool seedCorpus = true;
    /** Longest single Advance a client may request, in seconds. */
    double maxAdvance = 600.0;
    /** Nodes per telemetry shard on the pool step path (STATS
     * snapshots fold the same per-shard sinks densely). */
    int shardSize = 64;
};

/** What applying one event did (before any commit). */
struct ApplyOutcome
{
    ReplyStatus status = ReplyStatus::Ok;
    std::int32_t node = -1;
    std::int32_t appId = -1;
};

class ServeEngine
{
  public:
    explicit ServeEngine(const EngineConfig &config);
    ~ServeEngine();

    /**
     * Apply one event without deciding.  Advance runs the cluster
     * immediately (order inside a batch is preserved); the other ops
     * only mutate state the next commit() resolves.
     */
    ApplyOutcome apply(const EventRequest &ev);

    /**
     * Run one control period across all nodes: every event applied
     * since the last commit is consumed by a single Accountant poll
     * per node — one allocator pass, however many events queued.
     *
     * @return The post-commit digest.
     */
    DecisionDigest commit();

    /** Digest of the current decision state (no stepping). */
    DecisionDigest digest() const;

    /** Allocator passes so far, cluster-wide. */
    std::uint64_t allocatorPasses() const;

    /** The control period commit() advances by. */
    Tick controlPeriod() const { return period; }

    int nodeCount() const
    {
        return static_cast<int>(pool_.size());
    }

    /**
     * Fill the simulation-side fields of a service snapshot: scalar
     * rollups plus every registered trace counter the cluster touched
     * (timers as name.count/.total_us/.max_us triplets), folded
     * through one dense trace sink.
     *
     * @param extra Optional service-level bus (serve.* and pool.*
     *        gauges) folded into the same emit.
     */
    void fillSnapshot(StatsSnapshot &snap,
                      const core::Telemetry *extra = nullptr) const;

    /**
     * Cluster-wide sum of every node's learning-layer surface epoch:
     * a cheap logical clock over calibration progress, captured with
     * each commit so replay divergence is caught even on a digest
     * hash collision.
     */
    std::uint64_t surfaceEpochSum() const;

    /**
     * Start recording every apply() and commit() to a binary capture
     * at @p path (see serve/replay.hh).  Begin before the first event
     * — the capture replays against a FRESH engine built from this
     * config.
     *
     * @return false on I/O failure (the engine keeps running
     *         uncaptured).
     */
    bool startCapture(const std::string &path);

    /** Flush and close the capture (no-op when none is open). */
    void stopCapture();

    bool capturing() const;

    cluster::NodePool &pool() { return pool_; }
    const EngineConfig &config() const { return cfg; }

  private:
    EngineConfig cfg;
    cluster::NodePool pool_;
    Tick period;
    std::unique_ptr<trace::LogWriter> capture_;

    core::ServerManager &managerAt(int ix);
    const core::ServerManager &managerAt(int ix) const;

    bool validNode(std::int32_t node) const;
    /** True when an unfinished app of this name runs on the node. */
    bool nameActiveOn(int node, const std::string &name) const;
    /** Arrival routing: most free sockets without a name clash. */
    int routeArrival(const std::string &name) const;

    ApplyOutcome applyAdvance(const EventRequest &ev);
    ApplyOutcome applyCapChange(const EventRequest &ev);
    ApplyOutcome applyArrival(const EventRequest &ev);
    ApplyOutcome applyPhaseChange(const EventRequest &ev);
    ApplyOutcome applyKill(const EventRequest &ev);
};

} // namespace psm::serve

#endif // PSM_SERVE_ENGINE_HH
