#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/logging.hh"

namespace psm::serve
{

Client::~Client() { close(); }

void
Client::adopt(int fd)
{
    close();
    sock = fd;
    reader.reset();
}

bool
Client::connectTcp(const std::string &host, std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    adopt(fd);
    return true;
}

void
Client::close()
{
    if (sock >= 0) {
        ::close(sock);
        sock = -1;
    }
}

bool
Client::writeAll(const std::vector<std::uint8_t> &bytes)
{
    if (sock < 0)
        return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(sock, bytes.data() + off,
                            bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Client::readFrame(net::Frame &out, int timeout_ms)
{
    if (sock < 0)
        return false;
    // Whatever is already buffered may hold a complete frame.
    switch (reader.next(out)) {
      case net::DecodeResult::Frame:
        return true;
      case net::DecodeResult::Error:
        return false;
      case net::DecodeResult::NeedMore:
        break;
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    std::uint8_t buf[16 * 1024];
    for (;;) {
        auto left = std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
        if (left <= 0)
            return false;
        pollfd pfd{sock, POLLIN, 0};
        int ready = ::poll(&pfd, 1, static_cast<int>(left));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (ready == 0)
            return false; // timeout
        ssize_t n = ::read(sock, buf, sizeof(buf));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EOF or error
        }
        reader.feed(buf, static_cast<std::size_t>(n));
        switch (reader.next(out)) {
          case net::DecodeResult::Frame:
            return true;
          case net::DecodeResult::Error:
            return false;
          case net::DecodeResult::NeedMore:
            break;
        }
    }
}

bool
Client::awaitReply(net::FrameType type, std::uint32_t request_id,
                   net::Frame &out, int timeout_ms)
{
    for (;;) {
        if (!readFrame(out, timeout_ms))
            return false;
        if (out.type == type && out.requestId == request_id)
            return true;
        if (out.type == net::FrameType::Error) {
            std::string msg;
            decodeErrorMessage(out.payload, msg);
            warn("serve client: server error reply: %s",
                 msg.c_str());
            return false;
        }
        // A stale reply from an earlier fire-and-forget burst; skip.
    }
}

bool
Client::hello(const std::string &name, HelloReply &out,
              int timeout_ms)
{
    HelloRequest req;
    req.client = name;
    std::uint32_t id = next_id++;
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(net::FrameType::Hello, id,
                     encodeHelloRequest(req), bytes);
    if (!writeAll(bytes))
        return false;
    net::Frame frame;
    if (!awaitReply(net::FrameType::HelloAck, id, frame, timeout_ms))
        return false;
    return decodeHelloReply(frame.payload, out) && out.accepted;
}

bool
Client::submit(const EventRequest &ev, EventReply &out,
               int timeout_ms)
{
    std::uint32_t id = next_id++;
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(net::FrameType::Event, id,
                     encodeEventRequest(ev), bytes);
    if (!writeAll(bytes))
        return false;
    net::Frame frame;
    if (!awaitReply(net::FrameType::EventReply, id, frame,
                    timeout_ms))
        return false;
    return decodeEventReply(frame.payload, out);
}

bool
Client::send(const EventRequest &ev)
{
    std::uint32_t id = next_id++;
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(net::FrameType::Event, id,
                     encodeEventRequest(ev), bytes);
    return writeAll(bytes);
}

bool
Client::readEventReply(EventReply &out, int timeout_ms)
{
    std::uint32_t id;
    return readEventReply(out, id, timeout_ms);
}

bool
Client::readEventReply(EventReply &out, std::uint32_t &request_id,
                       int timeout_ms)
{
    net::Frame frame;
    for (;;) {
        if (!readFrame(frame, timeout_ms))
            return false;
        if (frame.type == net::FrameType::EventReply) {
            request_id = frame.requestId;
            return decodeEventReply(frame.payload, out);
        }
    }
}

bool
Client::stats(StatsSnapshot &out, int timeout_ms)
{
    std::uint32_t id = next_id++;
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(net::FrameType::Stats, id, {}, bytes);
    if (!writeAll(bytes))
        return false;
    net::Frame frame;
    if (!awaitReply(net::FrameType::StatsReply, id, frame,
                    timeout_ms))
        return false;
    return decodeStatsSnapshot(frame.payload, out);
}

bool
Client::query(const std::string &name, QueryReply &out,
              int timeout_ms)
{
    QueryRequest req;
    req.name = name;
    std::uint32_t id = next_id++;
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(net::FrameType::Query, id,
                     encodeQueryRequest(req), bytes);
    if (!writeAll(bytes))
        return false;
    net::Frame frame;
    if (!awaitReply(net::FrameType::QueryReply, id, frame,
                    timeout_ms))
        return false;
    return decodeQueryReply(frame.payload, out);
}

bool
Client::shutdownServer(int timeout_ms)
{
    std::uint32_t id = next_id++;
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(net::FrameType::Shutdown, id, {}, bytes);
    if (!writeAll(bytes))
        return false;
    net::Frame frame;
    return awaitReply(net::FrameType::ShutdownAck, id, frame,
                      timeout_ms);
}

} // namespace psm::serve
