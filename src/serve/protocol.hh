/**
 * @file
 * Payload schemas of the serving protocol: what travels inside the
 * EVENT/QUERY/STATS/HELLO frames of src/net/frame.hh.
 *
 * The event vocabulary mirrors Section III-C seen from outside the
 * simulation loop: clients submit E1 cap changes, E2 arrivals, E4
 * phase changes and external E3 kills, plus an explicit clock advance
 * (the daemon hosts a simulated cluster, so time is a resource the
 * protocol controls rather than wall clock).  Replies carry a
 * DecisionDigest — a order-sensitive FNV-1a fold of every node's
 * control-plane state — which is what the bench compares bit-exactly
 * against an in-process replay.
 */

#ifndef PSM_SERVE_PROTOCOL_HH
#define PSM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "util/units.hh"

namespace psm::serve
{

/** Operations an EVENT frame can carry. */
enum class EventOp : std::uint8_t
{
    Advance = 1, ///< run the simulated cluster for `value` seconds
    CapChange,   ///< E1: set node's cap to `value` watts
    Arrival,     ///< E2: admit workloadLibrary()[workload]
    PhaseChange, ///< E4 cause: rescale an app's compute/memory phase
    Kill,        ///< external E3: terminate an app
};

/** Printable op name. */
std::string eventOpName(EventOp op);

/**
 * Workload class of an E2 arrival: which library the `workload` index
 * selects.  Added in protocol version 2 together with the per-request
 * SLO override.
 */
enum class AppClass : std::uint8_t
{
    Batch = 0,       ///< perf::workloadLibrary() index
    Interactive = 1, ///< perf::interactiveLibrary() index
};

/** Printable class name. */
std::string appClassName(AppClass cls);

/** Status of an EVENT's reply. */
enum class ReplyStatus : std::uint8_t
{
    Ok = 0,     ///< applied; digest reflects it
    Shed,       ///< admission control refused (queue saturated)
    Expired,    ///< deadline passed while queued; not applied
    Rejected,   ///< semantically impossible (no socket, dup name, ...)
    BadRequest, ///< malformed (unknown node/op/workload)
};

/** Printable status name. */
std::string replyStatusName(ReplyStatus status);

/** One client-submitted event. */
struct EventRequest
{
    EventOp op = EventOp::Advance;
    /** Target node; -1 lets the daemon route (Arrival only). */
    std::int32_t node = -1;
    std::int32_t appId = -1;  ///< PhaseChange/Kill target
    std::uint32_t workload = 0; ///< Arrival: workloadLibrary() index
    double value = 0.0;       ///< seconds (Advance) or watts (E1)
    double cpuScale = 1.0;    ///< PhaseChange compute multiplier
    double memScale = 1.0;    ///< PhaseChange memory multiplier
    /** Wall-clock budget in microseconds; 0 = no deadline.  A request
     * still queued when it lapses is answered Expired, not applied. */
    std::uint32_t deadlineUs = 0;
    /** Arrival: which workload library `workload` indexes (v2). */
    AppClass appClass = AppClass::Batch;
    /** Arrival: p99 SLO override in seconds for interactive arrivals;
     * 0 keeps the profile's calibrated SLO (v2).  Must be finite and
     * non-negative — decode rejects anything else. */
    double sloP99 = 0.0;
};

/** Bit-exact summary of the cluster's decision state. */
struct DecisionDigest
{
    std::uint64_t hash = 0;     ///< FNV-1a over all per-node state
    std::uint64_t passes = 0;   ///< allocator passes, cluster total
    Tick simNow = 0;            ///< node-0 simulated clock
    std::uint32_t activeApps = 0; ///< cluster-wide live apps
    double objective = 0.0;     ///< sum of last-allocation objectives

    bool
    operator==(const DecisionDigest &o) const
    {
        return hash == o.hash && passes == o.passes &&
               simNow == o.simNow && activeApps == o.activeApps &&
               objective == o.objective;
    }
};

/** Reply to one EVENT. */
struct EventReply
{
    ReplyStatus status = ReplyStatus::Ok;
    std::int32_t node = -1;  ///< node that handled the op
    std::int32_t appId = -1; ///< assigned id (Arrival) or echo
    /** Events coalesced into the allocator epoch that answered this
     * request (>= 1 when status == Ok). */
    std::uint32_t batched = 0;
    DecisionDigest digest;
};

/** HELLO handshake. */
struct HelloRequest
{
    std::uint8_t version = net::kProtocolVersion;
    std::string client;
};

struct HelloReply
{
    std::uint8_t version = net::kProtocolVersion;
    bool accepted = false;
    std::string server;
};

/**
 * The read-only service snapshot: rebuilt by the control thread after
 * every batch, served to STATS/QUERY frames by the reactor thread
 * without touching the engine.
 */
struct StatsSnapshot
{
    Tick simNow = 0;
    std::uint32_t nodes = 0;
    std::uint32_t activeApps = 0;
    std::uint32_t freeSockets = 0;
    std::uint64_t allocatorPasses = 0;
    std::uint64_t eventsApplied = 0;
    std::uint64_t batches = 0;
    std::uint64_t maxBatch = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t rejected = 0;
    std::uint32_t queueDepth = 0;     ///< admission queue, at publish
    std::uint32_t poolQueueDepth = 0; ///< util::ThreadPool backlog
    std::uint32_t poolInflight = 0;   ///< util::ThreadPool executing
    std::uint64_t digestHash = 0;     ///< last committed digest
    /** Selected control-plane counters folded across nodes. */
    std::map<std::string, std::uint64_t> counters;

    /** Mean events coalesced per committed batch. */
    double
    eventsPerBatch() const
    {
        return batches
                   ? static_cast<double>(eventsApplied) /
                         static_cast<double>(batches)
                   : 0.0;
    }
};

/** QUERY: look one counter up by name. */
struct QueryRequest
{
    std::string name;
};

struct QueryReply
{
    bool found = false;
    std::uint64_t value = 0;
};

// --- Payload codecs ------------------------------------------------
//
// Every decode returns false on malformed payloads (truncated,
// trailing bytes, out-of-range enums) and leaves the output in an
// unspecified state.

std::vector<std::uint8_t> encodeEventRequest(const EventRequest &ev);
bool decodeEventRequest(const std::vector<std::uint8_t> &payload,
                        EventRequest &out);

std::vector<std::uint8_t> encodeEventReply(const EventReply &reply);
bool decodeEventReply(const std::vector<std::uint8_t> &payload,
                      EventReply &out);

std::vector<std::uint8_t> encodeHelloRequest(const HelloRequest &req);
bool decodeHelloRequest(const std::vector<std::uint8_t> &payload,
                        HelloRequest &out);

std::vector<std::uint8_t> encodeHelloReply(const HelloReply &reply);
bool decodeHelloReply(const std::vector<std::uint8_t> &payload,
                      HelloReply &out);

std::vector<std::uint8_t> encodeStatsSnapshot(const StatsSnapshot &s);
bool decodeStatsSnapshot(const std::vector<std::uint8_t> &payload,
                         StatsSnapshot &out);

std::vector<std::uint8_t> encodeQueryRequest(const QueryRequest &req);
bool decodeQueryRequest(const std::vector<std::uint8_t> &payload,
                        QueryRequest &out);

std::vector<std::uint8_t> encodeQueryReply(const QueryReply &reply);
bool decodeQueryReply(const std::vector<std::uint8_t> &payload,
                      QueryReply &out);

std::vector<std::uint8_t> encodeErrorMessage(const std::string &msg);
bool decodeErrorMessage(const std::vector<std::uint8_t> &payload,
                        std::string &out);

} // namespace psm::serve

#endif // PSM_SERVE_PROTOCOL_HH
