/**
 * @file
 * Deterministic record/replay for the serving engine.
 *
 * A capture is one binary record-log (trace/log.hh container) holding
 * everything one ServeEngine run consumed and decided:
 *
 *   Config (1) — the engine's scalar configuration surface: node
 *                count, caps, policy, seeds, control period and the
 *                tuning scalars every runner (daemon CLI, benches,
 *                tests) actually sets.  Nested sub-configs that no
 *                runner touches ride on their defaults; a fingerprint
 *                over the encoded surface guards against version
 *                drift.
 *   Event (2)  — one applied EventRequest plus the ApplyOutcome the
 *                original run observed.
 *   Commit (3) — one control-period commit: the DecisionDigest it
 *                produced plus the cluster-wide surface-epoch sum
 *                (the learning layer's logical clock — catching
 *                divergence even when the decision hash collides).
 *
 * Because the engine is deterministic (seeded managers, attempt-keyed
 * fault rolls, thread-count-independent shard merges), re-running the
 * captured event stream against the captured config must reproduce
 * every digest bit-exactly.  replayCapture() is that check; the
 * psm-replay tool wraps it for the command line.
 */

#ifndef PSM_SERVE_REPLAY_HH
#define PSM_SERVE_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine.hh"
#include "protocol.hh"

namespace psm::serve
{

/** Record types inside a capture log. */
enum class CaptureRecord : std::uint8_t
{
    Config = 1,
    Event = 2,
    Commit = 3,
};

/** One applied event with the outcome the original run observed. */
struct CapturedEvent
{
    EventRequest request;
    ApplyOutcome outcome;
};

/** One commit with everything the original run decided. */
struct CapturedCommit
{
    DecisionDigest digest;
    std::uint64_t surfaceEpochSum = 0;
};

// --- record codecs --------------------------------------------------

std::vector<std::uint8_t> encodeCaptureConfig(const EngineConfig &cfg);
/**
 * Decode and validate a Config payload.  Enum bytes (policy,
 * sampling) are checked against the live registry/enum range — a
 * capture recorded by a newer build with policies this build does
 * not know fails here rather than being cast blindly.  On failure,
 * @p error (when non-null) gets the reason.
 */
bool decodeCaptureConfig(const std::vector<std::uint8_t> &payload,
                         EngineConfig &out,
                         std::string *error = nullptr);

std::vector<std::uint8_t> encodeCapturedEvent(const CapturedEvent &ev);
bool decodeCapturedEvent(const std::vector<std::uint8_t> &payload,
                         CapturedEvent &out);

std::vector<std::uint8_t>
encodeCapturedCommit(const CapturedCommit &commit);
bool decodeCapturedCommit(const std::vector<std::uint8_t> &payload,
                          CapturedCommit &out);

// --- whole-file view ------------------------------------------------

/** A parsed capture: the config plus the ordered event/commit tape. */
struct Capture
{
    EngineConfig config;

    /** One tape step: an event application or a commit. */
    struct Step
    {
        bool isCommit = false;
        CapturedEvent event;   ///< valid when !isCommit
        CapturedCommit commit; ///< valid when isCommit
    };

    std::vector<Step> steps;

    std::size_t
    commitCount() const
    {
        std::size_t n = 0;
        for (const Step &s : steps)
            n += s.isCommit ? 1 : 0;
        return n;
    }
};

/**
 * Parse @p path into @p out.
 * @return false (with @p error set) on I/O errors, corrupt records
 *         or a missing leading Config record.
 */
bool readCapture(const std::string &path, Capture &out,
                 std::string &error);

// --- replay ---------------------------------------------------------

/** What re-running a capture produced. */
struct ReplayResult
{
    bool ok = false;           ///< every step reproduced bit-exactly
    std::size_t events = 0;    ///< events re-applied
    std::size_t commits = 0;   ///< commits re-run
    std::size_t mismatches = 0;
    /** Human-readable description of the first divergence (empty when
     * ok). */
    std::string firstMismatch;
    DecisionDigest finalDigest;
    std::uint64_t finalSurfaceEpochSum = 0;
};

/**
 * Re-run @p capture's event tape against a fresh engine built from
 * its config and compare every ApplyOutcome, DecisionDigest and
 * surface-epoch sum against the recorded ones.
 */
ReplayResult replayCapture(const Capture &capture);

} // namespace psm::serve

#endif // PSM_SERVE_REPLAY_HH
