/**
 * @file
 * psm-replay: verify, inspect and self-test binary serve captures.
 *
 *   psm-replay <capture>             re-run the capture and diff every
 *                                    recorded outcome/digest (exit 1
 *                                    on divergence)
 *   psm-replay --dump <capture>      print the record tape
 *   psm-replay --self-test [dir]     capture a scripted run, replay it
 *                                    at thread widths 1 and 4, and
 *                                    byte-compare a re-capture
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "serve/replay.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace psm;
using namespace psm::serve;

[[noreturn]] void
usage()
{
    std::fprintf(stderr, "usage: psm-replay [--dump] <capture>\n"
                         "       psm-replay --self-test [dir]\n");
    std::exit(2);
}

int
verify(const std::string &path)
{
    Capture cap;
    std::string error;
    if (!readCapture(path, cap, error)) {
        std::fprintf(stderr, "psm-replay: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    ReplayResult res = replayCapture(cap);
    std::printf("%s: %zu events, %zu commits\n", path.c_str(),
                res.events, res.commits);
    if (!res.ok) {
        std::printf("REPLAY DIVERGED: %s\n",
                    res.firstMismatch.c_str());
        return 1;
    }
    std::printf("replay bit-identical (final hash=%016llx, "
                "surfaceEpochSum=%llu)\n",
                static_cast<unsigned long long>(res.finalDigest.hash),
                static_cast<unsigned long long>(
                    res.finalSurfaceEpochSum));
    return 0;
}

int
dump(const std::string &path)
{
    Capture cap;
    std::string error;
    if (!readCapture(path, cap, error)) {
        std::fprintf(stderr, "psm-replay: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("config: nodes=%d cap=%.1fW esd=%d seedBase=%llu "
                "policy=%d controlPeriod=%llu\n",
                cap.config.nodes, cap.config.serverCap,
                cap.config.esd ? 1 : 0,
                static_cast<unsigned long long>(cap.config.seedBase),
                static_cast<int>(cap.config.manager.policy),
                static_cast<unsigned long long>(
                    cap.config.manager.controlPeriod));
    std::size_t ix = 0;
    for (const Capture::Step &step : cap.steps) {
        ++ix;
        if (step.isCommit) {
            std::printf(
                "%6zu commit  hash=%016llx passes=%llu simNow=%llu "
                "apps=%u epochSum=%llu\n",
                ix,
                static_cast<unsigned long long>(
                    step.commit.digest.hash),
                static_cast<unsigned long long>(
                    step.commit.digest.passes),
                static_cast<unsigned long long>(
                    step.commit.digest.simNow),
                step.commit.digest.activeApps,
                static_cast<unsigned long long>(
                    step.commit.surfaceEpochSum));
        } else {
            const EventRequest &r = step.event.request;
            std::printf(
                "%6zu event   %-12s node=%d app=%d workload=%u "
                "value=%.3f -> %s/node=%d/app=%d\n",
                ix, eventOpName(r.op).c_str(), r.node, r.appId,
                r.workload, r.value,
                replyStatusName(step.event.outcome.status).c_str(),
                step.event.outcome.node, step.event.outcome.appId);
        }
    }
    return 0;
}

/** Drive one scripted run against @p engine (capture on or off). */
void
scriptedRun(ServeEngine &engine)
{
    EventRequest ev;
    ev.op = EventOp::Arrival;
    ev.node = -1;
    for (std::uint32_t w = 0; w < 4; ++w) {
        ev.workload = w;
        engine.apply(ev);
    }
    engine.commit();

    EventRequest cap;
    cap.op = EventOp::CapChange;
    cap.node = -1;
    cap.value = 55.0;
    engine.apply(cap);
    engine.commit();

    EventRequest adv;
    adv.op = EventOp::Advance;
    adv.value = 2.0;
    engine.apply(adv);
    engine.commit();

    EventRequest phase;
    phase.op = EventOp::PhaseChange;
    phase.node = 0;
    phase.appId = 0;
    phase.cpuScale = 1.6;
    phase.memScale = 0.7;
    engine.apply(phase);

    EventRequest kill;
    kill.op = EventOp::Kill;
    kill.node = 0;
    kill.appId = 1;
    engine.apply(kill);
    engine.commit();
    engine.commit();
}

bool
readAll(const std::string &path, std::vector<char> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

int
selfTest(const std::string &dir)
{
    const std::string capture_path = dir + "/psm-replay-selftest.bin";
    const std::string recapture_path =
        dir + "/psm-replay-selftest-2.bin";

    EngineConfig cfg;
    cfg.nodes = 2;
    cfg.serverCap = 80.0;
    cfg.seedBase = 11;

    {
        ServeEngine engine(cfg);
        if (!engine.startCapture(capture_path)) {
            std::fprintf(stderr, "self-test: cannot capture to %s\n",
                         capture_path.c_str());
            return 1;
        }
        scriptedRun(engine);
        engine.stopCapture();
    }

    Capture cap;
    std::string error;
    if (!readCapture(capture_path, cap, error)) {
        std::fprintf(stderr, "self-test: readCapture: %s\n",
                     error.c_str());
        return 1;
    }

    // Replay must be bit-identical at any thread-pool width.
    for (unsigned width : {1u, 4u}) {
        util::ThreadPool::configureGlobal(width);
        ReplayResult res = replayCapture(cap);
        if (!res.ok) {
            std::fprintf(stderr,
                         "self-test: diverged at width %u: %s\n",
                         width, res.firstMismatch.c_str());
            return 1;
        }
        std::printf("width %u: %zu events, %zu commits, "
                    "hash=%016llx OK\n",
                    width, res.events, res.commits,
                    static_cast<unsigned long long>(
                        res.finalDigest.hash));
    }

    // A captured replay of the capture must produce the same bytes.
    {
        ServeEngine engine(cap.config);
        if (!engine.startCapture(recapture_path)) {
            std::fprintf(stderr, "self-test: cannot recapture\n");
            return 1;
        }
        for (const Capture::Step &step : cap.steps) {
            if (step.isCommit)
                engine.commit();
            else
                engine.apply(step.event.request);
        }
        engine.stopCapture();
    }
    std::vector<char> a, b;
    if (!readAll(capture_path, a) || !readAll(recapture_path, b)) {
        std::fprintf(stderr, "self-test: cannot re-read captures\n");
        return 1;
    }
    std::remove(capture_path.c_str());
    std::remove(recapture_path.c_str());
    if (a != b) {
        std::fprintf(stderr,
                     "self-test: re-capture bytes differ "
                     "(%zu vs %zu)\n",
                     a.size(), b.size());
        return 1;
    }
    std::printf("re-capture byte-identical (%zu bytes)\n", a.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool do_dump = false;
    bool do_self_test = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dump")
            do_dump = true;
        else if (arg == "--self-test")
            do_self_test = true;
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (path.empty())
            path = arg;
        else
            usage();
    }
    if (do_self_test)
        return selfTest(path.empty() ? "." : path);
    if (path.empty())
        usage();
    return do_dump ? dump(path) : verify(path);
}
