/**
 * @file
 * psm-served: the power-struggle mediator as a long-running daemon.
 *
 * Hosts a managed (simulated) cluster behind the serving protocol:
 * clients connect over TCP, submit E1-E4 events and clock advances,
 * and read telemetry, while the daemon batches concurrent submissions
 * into single allocator epochs.  Runs until SIGINT/SIGTERM or a
 * client's SHUTDOWN frame.
 *
 *   psm-served [--port N] [--nodes N] [--cap W] [--policy NAME]
 *              [--esd] [--queue N] [--batch N] [--seed N]
 *              [--shard-size N]
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "core/policy.hh"
#include "core/policy_registry.hh"
#include "serve/service.hh"
#include "util/logging.hh"
#include "util/parse.hh"

namespace
{

using namespace psm;

volatile std::sig_atomic_t interrupted = 0;

void
onSignal(int)
{
    interrupted = 1;
}

bool
parsePolicy(const std::string &name, core::PolicyKind &out)
{
    const core::PolicyInfo *info =
        core::PolicyRegistry::instance().findName(name);
    if (!info)
        return false;
    out = info->kind;
    return true;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: psm-served [--port N] [--nodes N] [--cap W]\n"
        "                  [--policy %s]\n"
        "                  [--esd] [--queue N] [--batch N] "
        "[--seed N]\n"
        "                  [--shard-size N] [--capture FILE]\n",
        core::PolicyRegistry::instance().cliNames().c_str());
    std::exit(2);
}

/** Reject the flag's value with a diagnostic, then die with usage. */
[[noreturn]] void
badValue(const std::string &flag, const char *value)
{
    std::fprintf(stderr, "psm-served: invalid value '%s' for %s\n",
                 value, flag.c_str());
    usage();
}

/** Checked strtol for a flag: whole-string, in-range, or die. */
long
parseCount(const std::string &flag, const char *value, long lo,
           long hi)
{
    long out = 0;
    if (!util::parseLongInRange(value, lo, hi, out))
        badValue(flag, value);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace psm;

    std::uint16_t port = 7633;
    serve::ServiceConfig cfg;
    std::string capture_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port") {
            const char *value = next();
            if (!util::parsePort(value, port))
                badValue(arg, value);
        } else if (arg == "--nodes") {
            cfg.engine.nodes = static_cast<int>(parseCount(
                arg, next(), 1, std::numeric_limits<int>::max()));
        } else if (arg == "--cap") {
            const char *value = next();
            if (!util::parseFiniteDouble(value,
                                         cfg.engine.serverCap))
                badValue(arg, value);
        } else if (arg == "--policy") {
            const char *value = next();
            if (!parsePolicy(value, cfg.engine.manager.policy))
                badValue(arg, value);
        } else if (arg == "--esd")
            cfg.engine.esd = true;
        else if (arg == "--queue")
            cfg.maxQueue = static_cast<std::size_t>(parseCount(
                arg, next(), 0, std::numeric_limits<long>::max()));
        else if (arg == "--batch")
            cfg.maxBatch = static_cast<std::size_t>(parseCount(
                arg, next(), 1, std::numeric_limits<long>::max()));
        else if (arg == "--seed") {
            const char *value = next();
            long seed = 0;
            if (!util::parseLong(value, seed) || seed < 0)
                badValue(arg, value);
            cfg.engine.seedBase = static_cast<std::uint64_t>(seed);
        } else if (arg == "--shard-size") {
            cfg.engine.shardSize = static_cast<int>(parseCount(
                arg, next(), 1, std::numeric_limits<int>::max()));
        } else if (arg == "--capture")
            capture_path = next();
        else
            usage();
    }
    if (cfg.engine.esd)
        cfg.engine.manager.policy = core::PolicyKind::AppResEsdAware;

    serve::ServeService service(cfg);
    // Capture must begin before the first event: psm-replay rebuilds
    // a fresh engine from the recorded config.
    if (!capture_path.empty() &&
        !service.engine().startCapture(capture_path))
        fatal("cannot open capture file %s", capture_path.c_str());
    if (!service.listenTcp(port))
        fatal("cannot listen on port %u",
              static_cast<unsigned>(port));

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    service.start();
    inform(LogLevel::Normal,
           "psm-served: listening on port %u (%d node%s, policy %s)",
           static_cast<unsigned>(port), cfg.engine.nodes,
           cfg.engine.nodes == 1 ? "" : "s",
           core::policyName(cfg.engine.manager.policy).c_str());

    while (!interrupted && !service.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    inform(LogLevel::Normal, "psm-served: shutting down (%s)",
           interrupted ? "signal" : "client request");
    service.stop();
    return 0;
}
