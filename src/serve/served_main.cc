/**
 * @file
 * psm-served: the power-struggle mediator as a long-running daemon.
 *
 * Hosts a managed (simulated) cluster behind the serving protocol:
 * clients connect over TCP, submit E1-E4 events and clock advances,
 * and read telemetry, while the daemon batches concurrent submissions
 * into single allocator epochs.  Runs until SIGINT/SIGTERM or a
 * client's SHUTDOWN frame.
 *
 *   psm-served [--port N] [--nodes N] [--cap W] [--policy NAME]
 *              [--esd] [--queue N] [--batch N] [--seed N]
 *              [--shard-size N]
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/policy.hh"
#include "serve/service.hh"
#include "util/logging.hh"

namespace
{

using namespace psm;

volatile std::sig_atomic_t interrupted = 0;

void
onSignal(int)
{
    interrupted = 1;
}

bool
parsePolicy(const std::string &name, core::PolicyKind &out)
{
    static const struct
    {
        const char *name;
        core::PolicyKind kind;
    } kTable[] = {
        {"util-unaware", core::PolicyKind::UtilUnaware},
        {"server-res-aware", core::PolicyKind::ServerResAware},
        {"app-aware", core::PolicyKind::AppAware},
        {"app-res-aware", core::PolicyKind::AppResAware},
        {"app-res-esd-aware", core::PolicyKind::AppResEsdAware},
    };
    for (const auto &entry : kTable) {
        if (name == entry.name) {
            out = entry.kind;
            return true;
        }
    }
    return false;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: psm-served [--port N] [--nodes N] [--cap W]\n"
        "                  [--policy util-unaware|server-res-aware|"
        "app-aware|app-res-aware|app-res-esd-aware]\n"
        "                  [--esd] [--queue N] [--batch N] "
        "[--seed N]\n"
        "                  [--shard-size N] [--capture FILE]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace psm;

    std::uint16_t port = 7633;
    serve::ServiceConfig cfg;
    std::string capture_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port")
            port = static_cast<std::uint16_t>(std::atoi(next()));
        else if (arg == "--nodes")
            cfg.engine.nodes = std::atoi(next());
        else if (arg == "--cap")
            cfg.engine.serverCap = std::atof(next());
        else if (arg == "--policy") {
            if (!parsePolicy(next(), cfg.engine.manager.policy))
                usage();
        } else if (arg == "--esd")
            cfg.engine.esd = true;
        else if (arg == "--queue")
            cfg.maxQueue =
                static_cast<std::size_t>(std::atol(next()));
        else if (arg == "--batch")
            cfg.maxBatch =
                static_cast<std::size_t>(std::atol(next()));
        else if (arg == "--seed")
            cfg.engine.seedBase =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--shard-size")
            cfg.engine.shardSize = std::atoi(next());
        else if (arg == "--capture")
            capture_path = next();
        else
            usage();
    }
    if (cfg.engine.nodes < 1)
        fatal("--nodes must be >= 1");
    if (cfg.engine.esd)
        cfg.engine.manager.policy = core::PolicyKind::AppResEsdAware;

    serve::ServeService service(cfg);
    // Capture must begin before the first event: psm-replay rebuilds
    // a fresh engine from the recorded config.
    if (!capture_path.empty() &&
        !service.engine().startCapture(capture_path))
        fatal("cannot open capture file %s", capture_path.c_str());
    if (!service.listenTcp(port))
        fatal("cannot listen on port %u",
              static_cast<unsigned>(port));

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    service.start();
    inform(LogLevel::Normal,
           "psm-served: listening on port %u (%d node%s, policy %s)",
           static_cast<unsigned>(port), cfg.engine.nodes,
           cfg.engine.nodes == 1 ? "" : "s",
           core::policyName(cfg.engine.manager.policy).c_str());

    while (!interrupted && !service.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    inform(LogLevel::Normal, "psm-served: shutting down (%s)",
           interrupted ? "signal" : "client request");
    service.stop();
    return 0;
}
