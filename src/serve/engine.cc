#include "engine.hh"

#include <cstring>

#include "esd/battery.hh"
#include "perf/workloads.hh"
#include "replay.hh"
#include "sim/application.hh"
#include "trace/log.hh"
#include "util/logging.hh"

namespace psm::serve
{

namespace
{

cluster::NodePoolConfig
poolConfig(const EngineConfig &cfg)
{
    cluster::NodePoolConfig pc;
    pc.servers = cfg.nodes > 0 ? cfg.nodes : 1;
    pc.managed = true;
    pc.manager = cfg.manager;
    pc.seedBase = cfg.seedBase;
    pc.serverCap = cfg.serverCap;
    pc.seedWorkloadCorpus = cfg.seedCorpus;
    pc.shardSize = cfg.shardSize;
    if (cfg.esd)
        pc.esd = esd::leadAcidUps();
    return pc;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
}

void
mixF(std::uint64_t &h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(h, bits);
}

void
mixS(std::uint64_t &h, const std::string &s)
{
    mix(h, s.size());
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnvPrime;
    }
}

} // namespace

ServeEngine::ServeEngine(const EngineConfig &config)
    : cfg(config), pool_(poolConfig(config)),
      period(config.manager.controlPeriod)
{
}

ServeEngine::~ServeEngine()
{
    stopCapture();
}

bool
ServeEngine::startCapture(const std::string &path)
{
    auto writer = std::make_unique<trace::LogWriter>();
    if (!writer->open(path)) {
        warn("cannot open capture file %s", path.c_str());
        return false;
    }
    if (!writer->writeRecord(
            static_cast<std::uint8_t>(CaptureRecord::Config),
            encodeCaptureConfig(cfg))) {
        warn("cannot write capture config to %s", path.c_str());
        return false;
    }
    capture_ = std::move(writer);
    return true;
}

void
ServeEngine::stopCapture()
{
    if (capture_) {
        capture_->close();
        capture_.reset();
    }
}

bool
ServeEngine::capturing() const
{
    return capture_ && capture_->isOpen();
}

std::uint64_t
ServeEngine::surfaceEpochSum() const
{
    std::uint64_t sum = 0;
    for (int ix = 0; ix < nodeCount(); ++ix)
        sum += managerAt(ix).learning().surfaceEpoch();
    return sum;
}

core::ServerManager &
ServeEngine::managerAt(int ix)
{
    return *pool_[static_cast<std::size_t>(ix)].manager;
}

const core::ServerManager &
ServeEngine::managerAt(int ix) const
{
    return *pool_[static_cast<std::size_t>(ix)].manager;
}

bool
ServeEngine::validNode(std::int32_t node) const
{
    return node >= 0 && node < nodeCount();
}

bool
ServeEngine::nameActiveOn(int node, const std::string &name) const
{
    // Defer to the manager's record book, not Application::finished():
    // a finished app's record stays live until the next poll retires
    // it, and addApp() fatals on the record, so the pre-check must
    // agree with it exactly.
    return managerAt(node).nameActive(name);
}

int
ServeEngine::routeArrival(const std::string &name) const
{
    // Most free sockets wins; ties go to the lowest index so routing
    // is a pure function of cluster state.
    int best = -1;
    int best_free = 0;
    for (int ix = 0; ix < nodeCount(); ++ix) {
        const sim::Server &srv =
            *pool_[static_cast<std::size_t>(ix)].server;
        int free = srv.freeSockets();
        if (free > best_free && !nameActiveOn(ix, name)) {
            best = ix;
            best_free = free;
        }
    }
    return best;
}

ApplyOutcome
ServeEngine::apply(const EventRequest &ev)
{
    ApplyOutcome out{ReplyStatus::BadRequest, -1, -1};
    switch (ev.op) {
      case EventOp::Advance:
        out = applyAdvance(ev);
        break;
      case EventOp::CapChange:
        out = applyCapChange(ev);
        break;
      case EventOp::Arrival:
        out = applyArrival(ev);
        break;
      case EventOp::PhaseChange:
        out = applyPhaseChange(ev);
        break;
      case EventOp::Kill:
        out = applyKill(ev);
        break;
    }
    if (capture_) {
        capture_->writeRecord(
            static_cast<std::uint8_t>(CaptureRecord::Event),
            encodeCapturedEvent(CapturedEvent{ev, out}));
    }
    return out;
}

ApplyOutcome
ServeEngine::applyAdvance(const EventRequest &ev)
{
    if (!(ev.value > 0.0) || ev.value > cfg.maxAdvance)
        return {ReplyStatus::BadRequest, -1, -1};
    pool_.runAll(toTicks(ev.value));
    return {ReplyStatus::Ok, -1, -1};
}

ApplyOutcome
ServeEngine::applyCapChange(const EventRequest &ev)
{
    if (ev.value < 0.0)
        return {ReplyStatus::BadRequest, -1, -1};
    if (ev.node == -1) {
        // Broadcast: the cluster driver lowering every cap at once.
        for (int ix = 0; ix < nodeCount(); ++ix)
            managerAt(ix).setCap(ev.value);
        return {ReplyStatus::Ok, -1, -1};
    }
    if (!validNode(ev.node))
        return {ReplyStatus::BadRequest, -1, -1};
    managerAt(ev.node).setCap(ev.value);
    return {ReplyStatus::Ok, ev.node, -1};
}

ApplyOutcome
ServeEngine::applyArrival(const EventRequest &ev)
{
    // v2: the class selects the library the workload index points
    // into; a per-request SLO override only makes sense for the
    // interactive class.
    const auto &library = ev.appClass == AppClass::Interactive
                              ? perf::interactiveLibrary()
                              : perf::workloadLibrary();
    if (ev.workload >= library.size())
        return {ReplyStatus::BadRequest, -1, -1};
    if (ev.appClass == AppClass::Batch && ev.sloP99 != 0.0)
        return {ReplyStatus::BadRequest, -1, -1};
    perf::AppProfile profile = library[ev.workload];
    if (ev.appClass == AppClass::Interactive && ev.sloP99 > 0.0)
        profile.sloP99 = ev.sloP99;

    int node = ev.node;
    if (node == -1) {
        node = routeArrival(profile.name);
        if (node == -1)
            return {ReplyStatus::Rejected, -1, -1};
    } else {
        if (!validNode(node))
            return {ReplyStatus::BadRequest, -1, -1};
        // addApp() treats a full server or a duplicate active name as
        // programmer error; over the wire they are client errors, so
        // pre-validate instead of letting the framework fatal().
        const sim::Server &srv =
            *pool_[static_cast<std::size_t>(node)].server;
        if (srv.freeSockets() <= 0 || nameActiveOn(node, profile.name))
            return {ReplyStatus::Rejected, node, -1};
    }
    int id = managerAt(node).addApp(profile);
    return {ReplyStatus::Ok, node, id};
}

ApplyOutcome
ServeEngine::applyPhaseChange(const EventRequest &ev)
{
    if (!validNode(ev.node))
        return {ReplyStatus::BadRequest, -1, -1};
    if (!(ev.cpuScale > 0.0) || !(ev.memScale > 0.0))
        return {ReplyStatus::BadRequest, ev.node, ev.appId};
    sim::Server &srv = *pool_[static_cast<std::size_t>(ev.node)].server;
    if (!srv.hasApp(ev.appId) || srv.app(ev.appId).finished())
        return {ReplyStatus::Rejected, ev.node, ev.appId};
    // One flat phase covering the rest of the run; the drift detector
    // (E4) notices the rate change at a later poll, exactly as when
    // the scenario layer rescales phases.
    srv.app(ev.appId).setPhases({{1.0, ev.cpuScale, ev.memScale}});
    return {ReplyStatus::Ok, ev.node, ev.appId};
}

ApplyOutcome
ServeEngine::applyKill(const EventRequest &ev)
{
    if (!validNode(ev.node))
        return {ReplyStatus::BadRequest, -1, -1};
    if (!managerAt(ev.node).killApp(ev.appId))
        return {ReplyStatus::Rejected, ev.node, ev.appId};
    return {ReplyStatus::Ok, ev.node, ev.appId};
}

DecisionDigest
ServeEngine::commit()
{
    pool_.runAll(period);
    DecisionDigest d = digest();
    if (capture_) {
        capture_->writeRecord(
            static_cast<std::uint8_t>(CaptureRecord::Commit),
            encodeCapturedCommit(
                CapturedCommit{d, surfaceEpochSum()}));
    }
    return d;
}

DecisionDigest
ServeEngine::digest() const
{
    DecisionDigest d;
    std::uint64_t h = kFnvOffset;
    for (int ix = 0; ix < nodeCount(); ++ix) {
        const sim::Server &srv =
            *pool_[static_cast<std::size_t>(ix)].server;
        const core::ServerManager &mgr = managerAt(ix);
        mix(h, static_cast<std::uint64_t>(ix));
        mix(h, srv.now());
        mixF(h, srv.cap());
        mix(h, mgr.reallocationCount());
        mix(h, mgr.eventLog().size());
        mix(h, static_cast<std::uint64_t>(mgr.mode()));
        const core::Allocation &alloc = mgr.lastAllocation();
        mix(h, alloc.apps.size());
        mixF(h, alloc.dynamicBudget);
        mixF(h, alloc.used);
        mixF(h, alloc.objective);
        for (const core::AppAllocation &app : alloc.apps) {
            mixS(h, app.app);
            mixF(h, app.budget);
            mixF(h, app.expectedPerf);
            mix(h, app.scheduled() ? 1 : 0);
            if (app.point)
                mixF(h, app.point->power);
        }
        for (const sim::Application *app : srv.apps()) {
            if (!app->finished())
                ++d.activeApps;
        }
        d.passes += mgr.reallocationCount();
        d.objective += alloc.objective;
        if (ix == 0)
            d.simNow = srv.now();
    }
    d.hash = h;
    return d;
}

std::uint64_t
ServeEngine::allocatorPasses() const
{
    std::uint64_t passes = 0;
    for (int ix = 0; ix < nodeCount(); ++ix)
        passes += managerAt(ix).reallocationCount();
    return passes;
}

void
ServeEngine::fillSnapshot(StatsSnapshot &snap,
                          const core::Telemetry *extra) const
{
    snap.nodes = static_cast<std::uint32_t>(nodeCount());
    snap.activeApps = 0;
    snap.freeSockets = 0;
    snap.allocatorPasses = 0;
    for (const auto &node : pool_.snapshot()) {
        snap.activeApps += static_cast<std::uint32_t>(node.activeApps);
        snap.freeSockets +=
            static_cast<std::uint32_t>(node.freeSockets);
        snap.allocatorPasses += node.reallocations;
    }
    snap.simNow = pool_[0].server->now();
    // One dense trace fold across the pool (plus the service bus when
    // given) instead of per-key string-map walks: every registered
    // counter the cluster touched lands in the snapshot, so QUERY can
    // reach anything by name.  Timers ride along as name.count /
    // name.total_us / name.max_us triplets (1 tick = 100 us).
    trace::TraceSink sink;
    pool_.foldTrace(sink);
    if (extra)
        extra->foldInto(sink);
    sink.forEachTouched([&](trace::EventId id) {
        std::string name(trace::eventName(id));
        if (trace::eventKind(id) == trace::EventKind::Timer) {
            trace::TimerAgg agg = sink.timerValue(id);
            snap.counters[name + ".count"] = agg.count;
            snap.counters[name + ".total_us"] = agg.total * 100;
            snap.counters[name + ".max_us"] = agg.max * 100;
        } else {
            snap.counters[name] = sink.counterValue(id);
        }
    });
}

} // namespace psm::serve
