#include "service.hh"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm::serve
{

ServeService::ServeService(const ServiceConfig &config)
    : cfg(config), eng(config.engine), reactor(*this),
      req_pool(config.maxQueue)
{
    if (cfg.maxQueue == 0)
        cfg.maxQueue = 1;
    if (cfg.maxBatch == 0)
        cfg.maxBatch = 1;
}

ServeService::~ServeService()
{
    stop();
    if (listen_fd >= 0)
        ::close(listen_fd);
}

void
ServeService::start()
{
    if (started)
        return;
    started = true;
    publishSnapshot();
    reactor_thread = std::thread([this] { reactor.run(); });
    control_thread = std::thread([this] { controlLoop(); });
    inform(LogLevel::Normal,
           "serve: started (queue=%zu batch=%zu nodes=%d)",
           cfg.maxQueue, cfg.maxBatch, eng.nodeCount());
}

void
ServeService::stop()
{
    if (!started)
        return;
    started = false;
    {
        std::lock_guard lk(qmtx);
        stopping = true;
        held = false;
    }
    qcv.notify_all();
    if (control_thread.joinable())
        control_thread.join();
    reactor.stop();
    if (reactor_thread.joinable())
        reactor_thread.join();
}

int
ServeService::openLocalConnection()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return -1;
    reactor.addConnection(fds[0]);
    return fds[1];
}

std::uint64_t
ServeService::serveFd(int fd)
{
    return reactor.addConnection(fd);
}

bool
ServeService::listenTcp(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        return false;
    }
    listen_fd = fd;
    reactor.setListener(fd);
    return true;
}

void
ServeService::holdBatching(bool hold)
{
    {
        std::lock_guard lk(qmtx);
        held = hold;
    }
    if (!hold)
        qcv.notify_all();
}

std::shared_ptr<const StatsSnapshot>
ServeService::snapshot() const
{
    std::lock_guard lk(snap_mtx);
    return snap;
}

std::size_t
ServeService::queueDepth() const
{
    std::lock_guard lk(qmtx);
    return queue.size();
}

DecisionDigest
ServeService::lastDigest() const
{
    std::lock_guard lk(snap_mtx);
    return last_digest;
}

// --- Reactor-thread handlers ---------------------------------------

void
ServeService::onFrame(std::uint64_t conn, net::Frame &&frame)
{
    switch (frame.type) {
      case net::FrameType::Hello:
        handleHello(conn, frame);
        return;
      case net::FrameType::Event:
        handleEvent(conn, std::move(frame));
        return;
      case net::FrameType::Stats:
        handleStats(conn, frame);
        return;
      case net::FrameType::Query:
        handleQuery(conn, frame);
        return;
      case net::FrameType::Shutdown:
        handleShutdown(conn, frame);
        return;
      default:
        // Reply types arriving at the server are protocol misuse.
        sendError(conn, frame.requestId,
                  "unexpected frame type " +
                      net::frameTypeName(frame.type));
        return;
    }
}

void
ServeService::onDisconnect(std::uint64_t conn)
{
    (void)conn;
    // Queued requests from this connection still process; their
    // replies fail silently in Reactor::send().
}

void
ServeService::handleHello(std::uint64_t conn,
                          const net::Frame &frame)
{
    HelloRequest req;
    if (!decodeHelloRequest(frame.payload, req)) {
        sendError(conn, frame.requestId, "malformed HELLO");
        return;
    }
    HelloReply reply;
    reply.version = net::kProtocolVersion;
    reply.accepted = req.version == net::kProtocolVersion;
    reply.server = cfg.name;
    std::vector<std::uint8_t> out;
    net::encodeFrame(net::FrameType::HelloAck, frame.requestId,
                     encodeHelloReply(reply), out);
    reactor.send(conn, std::move(out));
}

void
ServeService::handleEvent(std::uint64_t conn, net::Frame &&frame)
{
    EventRequest ev;
    if (!decodeEventRequest(frame.payload, ev)) {
        sendError(conn, frame.requestId, "malformed EVENT");
        return;
    }
    bool admitted = false;
    {
        std::lock_guard lk(qmtx);
        if (!stopping && queue.size() < cfg.maxQueue) {
            RequestPtr req = req_pool.acquire();
            req->conn = conn;
            req->requestId = frame.requestId;
            req->ev = ev;
            req->enqueued = Clock::now();
            queue.push_back(std::move(req));
            admitted = true;
        }
    }
    if (admitted) {
        qcv.notify_one();
        return;
    }
    // Admission control: refuse before any simulation work so the
    // decision path never sees overload it did not choose to absorb.
    n_shed.fetch_add(1, std::memory_order_relaxed);
    EventReply reply;
    reply.status = ReplyStatus::Shed;
    reply.digest = lastDigest();
    sendEventReply(conn, frame.requestId, reply);
}

void
ServeService::handleStats(std::uint64_t conn,
                          const net::Frame &frame)
{
    std::shared_ptr<const StatsSnapshot> s = snapshot();
    std::vector<std::uint8_t> out;
    net::encodeFrame(net::FrameType::StatsReply, frame.requestId,
                     encodeStatsSnapshot(*s), out);
    reactor.send(conn, std::move(out));
}

void
ServeService::handleQuery(std::uint64_t conn,
                          const net::Frame &frame)
{
    QueryRequest req;
    if (!decodeQueryRequest(frame.payload, req)) {
        sendError(conn, frame.requestId, "malformed QUERY");
        return;
    }
    std::shared_ptr<const StatsSnapshot> s = snapshot();
    QueryReply reply;
    auto it = s->counters.find(req.name);
    if (it != s->counters.end()) {
        reply.found = true;
        reply.value = it->second;
    }
    std::vector<std::uint8_t> out;
    net::encodeFrame(net::FrameType::QueryReply, frame.requestId,
                     encodeQueryReply(reply), out);
    reactor.send(conn, std::move(out));
}

void
ServeService::handleShutdown(std::uint64_t conn,
                             const net::Frame &frame)
{
    std::vector<std::uint8_t> out;
    net::encodeFrame(net::FrameType::ShutdownAck, frame.requestId,
                     {}, out);
    reactor.send(conn, std::move(out));
    shutdown_req.store(true, std::memory_order_release);
    inform(LogLevel::Normal,
           "serve: shutdown requested by connection %llu",
           static_cast<unsigned long long>(conn));
}

void
ServeService::sendError(std::uint64_t conn, std::uint32_t request_id,
                        const std::string &message)
{
    std::vector<std::uint8_t> out;
    net::encodeFrame(net::FrameType::Error, request_id,
                     encodeErrorMessage(message), out);
    reactor.send(conn, std::move(out));
}

void
ServeService::sendEventReply(std::uint64_t conn,
                             std::uint32_t request_id,
                             const EventReply &reply)
{
    std::vector<std::uint8_t> out;
    net::encodeFrame(net::FrameType::EventReply, request_id,
                     encodeEventReply(reply), out);
    reactor.send(conn, std::move(out));
}

// --- Control thread ------------------------------------------------

void
ServeService::controlLoop()
{
    std::vector<RequestPtr> batch;
    batch.reserve(cfg.maxBatch);
    for (;;) {
        {
            std::unique_lock lk(qmtx);
            qcv.wait(lk, [this] {
                return stopping || (!held && !queue.empty());
            });
            if (stopping && queue.empty())
                return;
            if (stopping) {
                // Drain leftovers as Shed: the daemon is going away
                // and will not decide on them.
                while (!queue.empty()) {
                    RequestPtr req = std::move(queue.front());
                    queue.pop_front();
                    lk.unlock();
                    n_shed.fetch_add(1, std::memory_order_relaxed);
                    EventReply reply;
                    reply.status = ReplyStatus::Shed;
                    reply.digest = lastDigest();
                    sendEventReply(req->conn, req->requestId, reply);
                    lk.lock();
                }
                return;
            }
            while (!queue.empty() && batch.size() < cfg.maxBatch) {
                batch.push_back(std::move(queue.front()));
                queue.pop_front();
            }
        }
        processBatch(batch);
        batch.clear();
    }
}

void
ServeService::processBatch(std::vector<RequestPtr> &batch)
{
    struct Pending
    {
        std::uint64_t conn;
        std::uint32_t requestId;
        EventReply reply;
    };
    std::vector<Pending> pending;
    pending.reserve(batch.size());

    Clock::time_point now = Clock::now();
    std::uint32_t applied = 0;
    for (RequestPtr &req : batch) {
        Pending p{req->conn, req->requestId, {}};
        if (req->ev.deadlineUs > 0 &&
            now - req->enqueued >=
                std::chrono::microseconds(req->ev.deadlineUs)) {
            // The client's wall-clock budget lapsed while queued; do
            // not apply a decision nobody is waiting for.
            p.reply.status = ReplyStatus::Expired;
            ++n_expired;
        } else {
            ApplyOutcome outcome = eng.apply(req->ev);
            p.reply.status = outcome.status;
            p.reply.node = outcome.node;
            p.reply.appId = outcome.appId;
            if (outcome.status == ReplyStatus::Ok)
                ++applied;
            else
                ++n_rejected;
        }
        pending.push_back(std::move(p));
        req.reset(); // recycle before the (long) commit
    }

    // One allocator epoch resolves the whole batch.  When nothing was
    // applied there is nothing to decide — reply with the unstepped
    // digest instead of burning a control period.
    DecisionDigest digest =
        applied > 0 ? eng.commit() : eng.digest();
    if (applied > 0) {
        n_applied += applied;
        ++n_batches;
        if (applied > n_max_batch)
            n_max_batch = applied;
    }

    // Publish before replying: a client that requests STATS right
    // after seeing its reply must observe a snapshot that already
    // includes this batch.
    publishSnapshot();

    for (Pending &p : pending) {
        p.reply.batched =
            p.reply.status == ReplyStatus::Ok ? applied : 0;
        p.reply.digest = digest;
        sendEventReply(p.conn, p.requestId, p.reply);
    }
}

void
ServeService::publishSnapshot()
{
    auto next = std::make_shared<StatsSnapshot>();
    next->eventsApplied = n_applied;
    next->batches = n_batches;
    next->maxBatch = n_max_batch;
    next->shed = n_shed.load(std::memory_order_relaxed);
    next->expired = n_expired;
    next->rejected = n_rejected;
    next->queueDepth = static_cast<std::uint32_t>(queueDepth());
    util::ThreadPool &pool = util::ThreadPool::global();
    next->poolQueueDepth =
        static_cast<std::uint32_t>(pool.queueDepth());
    next->poolInflight = static_cast<std::uint32_t>(pool.inflight());

    DecisionDigest digest = eng.digest();
    next->digestHash = digest.hash;

    // Service-level gauges ride the trace bus and fold into the same
    // snapshot emit as the engine's counters, so QUERY can reach
    // everything by name.
    service_tel.gauge(trace::EventId::ServeEventsApplied, n_applied);
    service_tel.gauge(trace::EventId::ServeBatches, n_batches);
    service_tel.gauge(trace::EventId::ServeMaxBatch, n_max_batch);
    service_tel.gauge(trace::EventId::ServeShed, next->shed);
    service_tel.gauge(trace::EventId::ServeExpired, n_expired);
    service_tel.gauge(trace::EventId::ServeRejected, n_rejected);
    service_tel.gauge(trace::EventId::ServeQueueDepth,
                      next->queueDepth);
    service_tel.gauge(trace::EventId::ServeConnections,
                      reactor.connectionCount());
    service_tel.gauge(trace::EventId::PoolQueueDepth,
                      next->poolQueueDepth);
    service_tel.gauge(trace::EventId::PoolInflight,
                      next->poolInflight);
    eng.fillSnapshot(*next, &service_tel);

    std::lock_guard lk(snap_mtx);
    last_digest = digest;
    snap = std::move(next);
}

} // namespace psm::serve
