/**
 * @file
 * The ServeService: admission control and batching between the
 * reactor (transport) thread and the ServeEngine.
 *
 * Two threads split the daemon:
 *
 *   reactor thread  — owns all socket I/O.  Decodes frames; answers
 *                     HELLO/STATS/QUERY straight from the published
 *                     snapshot (never touching the engine); enqueues
 *                     EVENTs into a bounded queue, replying Shed
 *                     immediately when the queue is full (admission
 *                     control happens before any simulation work).
 *   control thread  — drains the queue in batches of up to maxBatch,
 *                     applies every event, then runs ONE control
 *                     period: the Accountant coalesces the whole
 *                     batch into a single allocator pass.  Each reply
 *                     carries the post-epoch digest and how many
 *                     events shared its pass.
 *
 * Requests ride pooled objects (net::ObjectPool), so the steady-state
 * hot path performs no allocation.  A request with a deadline that
 * lapsed while queued is answered Expired and never applied.
 */

#ifndef PSM_SERVE_SERVICE_HH
#define PSM_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine.hh"
#include "net/object_pool.hh"
#include "net/reactor.hh"
#include "protocol.hh"

namespace psm::serve
{

struct ServiceConfig
{
    EngineConfig engine;
    /** Admission bound: EVENTs queued beyond this are shed. */
    std::size_t maxQueue = 256;
    /** Most events coalesced into one allocator epoch. */
    std::size_t maxBatch = 64;
    /** Server name sent in HELLO-ACK. */
    std::string name = "psm-served";
};

class ServeService : private net::Reactor::Handler
{
  public:
    explicit ServeService(const ServiceConfig &config);
    ~ServeService() override;

    ServeService(const ServeService &) = delete;
    ServeService &operator=(const ServeService &) = delete;

    /** Spawn the reactor and control threads. */
    void start();

    /**
     * Stop both threads.  Queued, unanswered EVENTs are replied Shed
     * before the control thread exits.  Idempotent; also runs from
     * the destructor.
     */
    void stop();

    /**
     * Make an in-process connection: one end of a socketpair is
     * adopted by the reactor, the other is returned for a Client.
     * This is how CI exercises the daemon without touching the
     * network.
     *
     * @return The client-side fd, or -1 on failure.
     */
    int openLocalConnection();

    /** Adopt an already-connected stream fd (e.g. from accept()). */
    std::uint64_t serveFd(int fd);

    /**
     * Listen on a TCP port (IPv4, loopback-reachable); the reactor
     * accepts from it.  Call before start().
     *
     * @return false when the socket cannot be bound.
     */
    bool listenTcp(std::uint16_t port);

    /**
     * Pause (true) or resume (false) batch draining.  While held,
     * EVENTs accumulate in the queue (shedding past maxQueue as
     * usual); release drains them in maxBatch-sized epochs.  Lets
     * tests build a burst of known size deterministically instead of
     * racing the control thread.
     */
    void holdBatching(bool hold);

    /** The published read-only snapshot (never null after start). */
    std::shared_ptr<const StatsSnapshot> snapshot() const;

    /** True once a client asked for SHUTDOWN (the ack is sent before
     * this flips, so the requester sees it). */
    bool shutdownRequested() const
    {
        return shutdown_req.load(std::memory_order_acquire);
    }

    /** EVENTs currently queued (gauge). */
    std::size_t queueDepth() const;

    /** Pre-start access for seeding scenarios in tests. */
    ServeEngine &engine() { return eng; }

    std::size_t connectionCount() const
    {
        return reactor.connectionCount();
    }

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued EVENT (pooled; fields fully overwritten per use). */
    struct Request
    {
        std::uint64_t conn = 0;
        std::uint32_t requestId = 0;
        EventRequest ev;
        Clock::time_point enqueued;
    };

    using RequestPtr = net::ObjectPool<Request>::Ptr;

    ServiceConfig cfg;
    ServeEngine eng;
    net::Reactor reactor;
    net::ObjectPool<Request> req_pool;

    std::thread reactor_thread;
    std::thread control_thread;
    bool started = false;
    std::atomic<bool> shutdown_req{false};

    mutable std::mutex qmtx;
    std::condition_variable qcv;
    std::deque<RequestPtr> queue;
    bool stopping = false; ///< guarded by qmtx
    bool held = false;     ///< guarded by qmtx

    // Service counters: reactor thread bumps shed, control thread the
    // rest; snapshot publication reads them all.
    std::atomic<std::uint64_t> n_shed{0};
    std::uint64_t n_applied = 0; ///< control thread only
    std::uint64_t n_batches = 0;
    std::uint64_t n_max_batch = 0;
    std::uint64_t n_expired = 0;
    std::uint64_t n_rejected = 0;

    /** Service-level gauge bus (serve.*, pool.*); control thread
     * only, folded into each published snapshot. */
    core::Telemetry service_tel;

    mutable std::mutex snap_mtx;
    std::shared_ptr<const StatsSnapshot> snap;
    DecisionDigest last_digest; ///< guarded by snap_mtx

    // net::Reactor::Handler
    void onFrame(std::uint64_t conn, net::Frame &&frame) override;
    void onDisconnect(std::uint64_t conn) override;

    void controlLoop();
    /** Apply one batch, run one epoch, reply to every request. */
    void processBatch(std::vector<RequestPtr> &batch);

    void handleHello(std::uint64_t conn, const net::Frame &frame);
    void handleEvent(std::uint64_t conn, net::Frame &&frame);
    void handleStats(std::uint64_t conn, const net::Frame &frame);
    void handleQuery(std::uint64_t conn, const net::Frame &frame);
    void handleShutdown(std::uint64_t conn, const net::Frame &frame);

    void sendError(std::uint64_t conn, std::uint32_t request_id,
                   const std::string &message);
    void sendEventReply(std::uint64_t conn, std::uint32_t request_id,
                        const EventReply &reply);

    /** Rebuild and publish the snapshot (control thread). */
    void publishSnapshot();
    DecisionDigest lastDigest() const;

    int listen_fd = -1;
};

} // namespace psm::serve

#endif // PSM_SERVE_SERVICE_HH
