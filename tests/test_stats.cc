/**
 * @file
 * Unit and property tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"

namespace psm
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation)
{
    std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
    RunningStats s;
    for (double x : xs)
        s.push(x);

    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size());

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), mean * static_cast<double>(xs.size()), 1e-12);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    Rng rng(7);
    RunningStats a, b, all;
    for (int i = 0; i < 500; ++i) {
        double x = rng.gaussian(5.0, 2.0);
        if (i % 3 == 0)
            a.push(x);
        else
            b.push(x);
        all.push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a;
    a.push(2.0);
    a.push(4.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);

    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 3.0);
    // The one-sided merges must not leak the empty side's +-inf
    // min/max sentinels into the populated accumulator.
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(c.min(), 2.0);
    EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

TEST(TimeWeightedStats, WeightsByDuration)
{
    TimeWeightedStats s;
    s.push(100.0, ticksPerSecond);     // 100 W for 1 s
    s.push(50.0, 3 * ticksPerSecond);  // 50 W for 3 s
    EXPECT_NEAR(s.mean(), (100.0 + 150.0) / 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.integral(), 250.0);
    EXPECT_EQ(s.duration(), 4 * ticksPerSecond);
    EXPECT_DOUBLE_EQ(s.min(), 50.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(TimeWeightedStats, ZeroDurationIgnored)
{
    TimeWeightedStats s;
    s.push(1000.0, 0);
    EXPECT_EQ(s.duration(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Ewma, FirstSampleSeeds)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.primed());
    EXPECT_DOUBLE_EQ(e.push(10.0), 10.0);
    EXPECT_TRUE(e.primed());
    EXPECT_DOUBLE_EQ(e.push(20.0), 15.0);
}

TEST(Ewma, ConvergesToConstantInput)
{
    Ewma e(0.3);
    for (int i = 0; i < 100; ++i)
        e.push(42.0);
    EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Histogram, CountsAndPercentiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.push(static_cast<double>(i));
    EXPECT_EQ(h.totalSamples(), 100u);
    for (std::size_t b = 0; b < h.binCount(); ++b)
        EXPECT_EQ(h.binSamples(b), 10u);
    EXPECT_NEAR(h.percentile(50.0), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(95.0), 95.0, 10.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    h.push(-100.0);
    h.push(100.0);
    EXPECT_EQ(h.binSamples(0), 1u);
    EXPECT_EQ(h.binSamples(4), 1u);
}

TEST(Percentile, ExactValues)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentileOf(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentileOf(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileOf(xs, 25.0), 2.0);
}

TEST(Percentile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentileOf({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(geomeanOf({}), 0.0);
}

TEST(Percentile, OutOfRangePClampsToEnds)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentileOf(xs, -10.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(xs, 250.0), 5.0);
}

TEST(Percentile, NanInputsAreDropped)
{
    double nan = std::nan("");
    // NaN samples would break std::sort's strict weak ordering;
    // the percentile must come from the finite samples alone.
    std::vector<double> xs = {nan, 1.0, nan, 2.0, 3.0, nan};
    EXPECT_DOUBLE_EQ(percentileOf(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(xs, 100.0), 3.0);
    // A NaN p (or an all-NaN vector) yields the empty-vector answer.
    EXPECT_DOUBLE_EQ(percentileOf({1.0, 2.0}, nan), 0.0);
    EXPECT_DOUBLE_EQ(percentileOf({nan, nan}, 50.0), 0.0);
}

TEST(Histogram, NanSamplesAreDropped)
{
    Histogram h(0.0, 10.0, 5);
    h.push(std::nan(""));
    EXPECT_EQ(h.totalSamples(), 0u);
    h.push(5.0);
    EXPECT_EQ(h.totalSamples(), 1u);
    EXPECT_NEAR(h.percentile(50.0), 5.0, 1.0);
}

TEST(Histogram, InfiniteSamplesClampToEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    double inf = std::numeric_limits<double>::infinity();
    h.push(inf);
    h.push(-inf);
    EXPECT_EQ(h.binSamples(4), 1u);
    EXPECT_EQ(h.binSamples(0), 1u);
}

TEST(Histogram, PercentileEdgeCases)
{
    Histogram h(0.0, 10.0, 10);
    // Empty histogram: every percentile is 0.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
    for (double x : {1.0, 3.0, 5.0, 7.0, 9.0})
        h.push(x);
    // p clamps to [0, 100]; NaN p matches the empty answer.
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(400.0), h.percentile(100.0));
    EXPECT_DOUBLE_EQ(h.percentile(std::nan("")), 0.0);
    EXPECT_NEAR(h.percentile(0.0), 1.5, 1.0);
    EXPECT_NEAR(h.percentile(100.0), 9.5, 1.0);
}

TEST(Means, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(meanOf({2.0, 4.0, 6.0}), 4.0);
    EXPECT_NEAR(geomeanOf({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    // Non-positive input makes the geomean undefined; we return 0.
    EXPECT_DOUBLE_EQ(geomeanOf({1.0, 0.0}), 0.0);
}

/** Property: histogram percentile tracks exact percentile loosely. */
class HistogramPercentileProperty
    : public ::testing::TestWithParam<double>
{
};

TEST_P(HistogramPercentileProperty, WithinOneBinOfExact)
{
    double p = GetParam();
    Rng rng(99);
    Histogram h(0.0, 1.0, 50);
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i) {
        double x = rng.uniform();
        xs.push_back(x);
        h.push(x);
    }
    EXPECT_NEAR(h.percentile(p), percentileOf(xs, p), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramPercentileProperty,
                         ::testing::Values(5.0, 25.0, 50.0, 75.0,
                                           95.0, 99.0));

} // namespace
} // namespace psm
