/**
 * @file
 * Tests for the PolicyRegistry: the name/capability/planner table
 * behind the policy arena, and the guard that every registered
 * policy survives the round trip through CLI parsing and the capture
 * Config wire encoding.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hh"
#include "core/policy_registry.hh"
#include "serve/replay.hh"

namespace psm::core
{
namespace
{

TEST(PolicyRegistry, ContainsPaperPoliciesAndRivals)
{
    const auto &reg = PolicyRegistry::instance();
    ASSERT_GE(reg.all().size(), 7u);

    struct Expect
    {
        PolicyKind kind;
        const char *cli;
        bool hasPlanner;
    };
    const std::vector<Expect> expected = {
        {PolicyKind::UtilUnaware, "util-unaware", false},
        {PolicyKind::ServerResAware, "server-res-aware", false},
        {PolicyKind::AppAware, "app-aware", false},
        {PolicyKind::AppResAware, "app-res-aware", false},
        {PolicyKind::AppResEsdAware, "app-res-esd-aware", false},
        {PolicyKind::FastCapFair, "fastcap", true},
        {PolicyKind::CuttleSysSearch, "cuttlesys", true},
    };
    for (const Expect &e : expected) {
        const PolicyInfo *info = reg.find(e.kind);
        ASSERT_NE(info, nullptr) << e.cli;
        EXPECT_EQ(info->cliName, e.cli);
        EXPECT_EQ(static_cast<bool>(info->makePlanner), e.hasPlanner)
            << e.cli;
        if (info->makePlanner) {
            EXPECT_NE(info->makePlanner(), nullptr) << e.cli;
        }
    }
}

TEST(PolicyRegistry, CapsMatchLegacyWrappers)
{
    for (const PolicyInfo &info :
         PolicyRegistry::instance().all()) {
        EXPECT_EQ(policyName(info.kind), info.name);
        EXPECT_EQ(policyAppAware(info.kind), info.caps.appAware);
        EXPECT_EQ(policyResAware(info.kind), info.caps.resAware);
        EXPECT_EQ(policyUsesEsd(info.kind), info.caps.usesEsd);
        EXPECT_EQ(policyRaplEnforced(info.kind),
                  info.caps.raplEnforced);
    }
}

TEST(PolicyRegistry, CliNamesRoundTripAndListEveryPolicy)
{
    const auto &reg = PolicyRegistry::instance();
    std::string names = reg.cliNames();
    for (const PolicyInfo &info : reg.all()) {
        // The spelling psm-served's --policy parser accepts must
        // resolve back to the same kind...
        const PolicyInfo *found = reg.findName(info.cliName);
        ASSERT_NE(found, nullptr) << info.cliName;
        EXPECT_EQ(found->kind, info.kind);
        // ...and appear in the usage string.
        EXPECT_NE(names.find(info.cliName), std::string::npos)
            << info.cliName;
    }
    EXPECT_EQ(reg.findName("no-such-policy"), nullptr);
    EXPECT_EQ(reg.findName(""), nullptr);
}

TEST(PolicyRegistry, WireIdsRoundTrip)
{
    const auto &reg = PolicyRegistry::instance();
    for (const PolicyInfo &info : reg.all()) {
        auto wire = static_cast<std::uint8_t>(info.kind);
        const PolicyInfo *found = reg.findWireId(wire);
        ASSERT_NE(found, nullptr) << info.cliName;
        EXPECT_EQ(found->kind, info.kind);
    }
    EXPECT_EQ(reg.findWireId(200), nullptr);
    EXPECT_EQ(reg.findWireId(255), nullptr);
}

TEST(PolicyRegistry, CaptureConfigRoundTripsEveryPolicy)
{
    for (const PolicyInfo &info :
         PolicyRegistry::instance().all()) {
        serve::EngineConfig cfg;
        cfg.manager.policy = info.kind;
        std::vector<std::uint8_t> bytes =
            serve::encodeCaptureConfig(cfg);
        serve::EngineConfig decoded;
        std::string error;
        ASSERT_TRUE(
            serve::decodeCaptureConfig(bytes, decoded, &error))
            << info.cliName << ": " << error;
        EXPECT_EQ(decoded.manager.policy, info.kind);
        // Bit-exact re-encode: the decode lost nothing.
        EXPECT_EQ(serve::encodeCaptureConfig(decoded), bytes)
            << info.cliName;
    }
}

TEST(PolicyRegistry, CaptureConfigRejectsUnregisteredPolicy)
{
    serve::EngineConfig cfg;
    // An enum value no build has registered: the encoder writes the
    // raw byte, the decoder must refuse it with a diagnostic instead
    // of blindly casting.
    cfg.manager.policy = static_cast<PolicyKind>(200);
    std::vector<std::uint8_t> bytes = serve::encodeCaptureConfig(cfg);
    serve::EngineConfig decoded;
    std::string error;
    EXPECT_FALSE(serve::decodeCaptureConfig(bytes, decoded, &error));
    EXPECT_NE(error.find("policy"), std::string::npos) << error;
    EXPECT_NE(error.find("200"), std::string::npos) << error;
}

TEST(PolicyRegistry, CaptureConfigRejectsInvalidSampling)
{
    serve::EngineConfig cfg;
    cfg.manager.sampling = static_cast<cf::SamplingStrategy>(9);
    std::vector<std::uint8_t> bytes = serve::encodeCaptureConfig(cfg);
    serve::EngineConfig decoded;
    std::string error;
    EXPECT_FALSE(serve::decodeCaptureConfig(bytes, decoded, &error));
    EXPECT_NE(error.find("sampling"), std::string::npos) << error;
}

} // namespace
} // namespace psm::core
