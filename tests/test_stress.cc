/**
 * @file
 * Stress and failure-injection tests: the framework must stay sane
 * under oscillating caps, rapid churn, drained batteries and
 * degenerate configurations.
 */

#include <gtest/gtest.h>

#include "core/manager.hh"
#include "perf/workloads.hh"

namespace psm::core
{
namespace
{

using perf::workload;
using perf::workloadLibrary;

TEST(Stress, OscillatingCapNeverWedgesTheManager)
{
    sim::Server server;
    server.attachEsd(esd::leadAcidUps());
    server.setCap(100.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResEsdAware;
    ServerManager manager(server, cfg);
    manager.seedCorpus(workloadLibrary());
    manager.addApp(workload("stream"));
    manager.addApp(workload("kmeans"));

    // Thrash the cap across every regime, including one below
    // P_idle.
    const double caps[] = {100.0, 80.0, 70.0, 45.0, 120.0, 75.0,
                           100.0, 60.0, 90.0};
    for (double cap : caps) {
        manager.setCap(cap);
        manager.run(toTicks(5.0));
    }

    // Sanity: still making progress once the cap is workable again.
    manager.setCap(100.0);
    double before = manager.records()[0].beats +
                    manager.records()[1].beats;
    manager.run(toTicks(10.0));
    double after = manager.records()[0].beats +
                   manager.records()[1].beats;
    EXPECT_GT(after, before);
    EXPECT_EQ(manager.mode(), CoordinationMode::Space);
}

TEST(Stress, CapBelowIdleIdlesButRecovers)
{
    sim::Server server;
    server.setCap(40.0); // below P_idle: physically unmeetable
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResAware;
    ServerManager manager(server, cfg);
    manager.seedCorpus(workloadLibrary());
    manager.addApp(workload("x264"));
    manager.run(toTicks(10.0));
    EXPECT_EQ(manager.mode(), CoordinationMode::Idle);

    manager.setCap(100.0);
    manager.run(toTicks(10.0));
    EXPECT_EQ(manager.mode(), CoordinationMode::Space);
    EXPECT_GT(manager.serverNormalizedThroughput(), 0.0);
}

TEST(Stress, TinyBatteryStillCyclesWithoutViolatingHard)
{
    sim::Server server;
    esd::BatteryConfig tiny = esd::leadAcidUps();
    tiny.capacity = 150.0; // seconds-scale cycles
    server.attachEsd(tiny);
    server.setCap(72.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResEsdAware;
    ServerManager manager(server, cfg);
    manager.seedCorpus(workloadLibrary());
    manager.addApp(workload("stream"));
    manager.addApp(workload("kmeans"));
    manager.run(toTicks(40.0));

    EXPECT_EQ(manager.mode(), CoordinationMode::EsdAssisted);
    EXPECT_GT(manager.serverNormalizedThroughput(), 0.05);
    // The battery floor forces early OFF switches instead of
    // sustained over-cap draw: average stays at/below the cap.
    EXPECT_LE(server.meter().averagePower(), 72.5);
    EXPECT_GT(server.battery()->equivalentCycles(), 1.0);
}

TEST(Stress, RapidArrivalDepartureChurn)
{
    sim::Server server;
    server.setCap(100.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResAware;
    ServerManager manager(server, cfg);
    manager.seedCorpus(workloadLibrary());

    // Short jobs arriving as sockets free up.
    const char *names[] = {"kmeans", "x264", "pagerank", "ferret",
                           "triangle", "apr"};
    std::size_t next = 0;
    manager.addApp([&] {
        perf::AppProfile p = workload(names[next++]);
        p.totalHeartbeats = 400.0;
        return p;
    }());
    manager.addApp([&] {
        perf::AppProfile p = workload(names[next++]);
        p.totalHeartbeats = 400.0;
        return p;
    }());

    for (int step = 0; step < 120 && next < 6; ++step) {
        manager.run(toTicks(1.0));
        if (server.freeSockets() > 0 && next < 6) {
            perf::AppProfile p = workload(names[next++]);
            p.totalHeartbeats = 400.0;
            manager.addApp(p);
        }
    }
    manager.runUntilAllDone(toTicks(180.0));
    EXPECT_FALSE(manager.anyAppRunning());

    // All six jobs completed with real progress accounted.
    auto records = manager.records();
    ASSERT_EQ(records.size(), 6u);
    for (const auto &rec : records) {
        EXPECT_TRUE(rec.done) << rec.name;
        EXPECT_NEAR(rec.beats, 400.0, 1.0) << rec.name;
    }
    // Departure events fired for each.
    int departures = 0;
    for (const auto &ev : manager.eventLog())
        departures += ev.kind == EventKind::Departure;
    EXPECT_EQ(departures, 6);
}

TEST(Stress, SingleAppGetsTheWholeBudget)
{
    sim::Server server;
    server.setCap(100.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResAware;
    ServerManager manager(server, cfg);
    manager.seedCorpus(workloadLibrary());
    manager.addApp(workload("kmeans"));
    manager.run(toTicks(20.0));
    // Budget (28+ W) exceeds kmeans' max draw: it runs uncapped.
    EXPECT_GT(manager.serverNormalizedThroughput(), 0.9);
}

TEST(Stress, EmptyCorpusStillWorks)
{
    // No previously seen applications: CF falls back to biases from
    // the app's own sparse samples.
    sim::Server server;
    server.setCap(100.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResAware;
    ServerManager manager(server, cfg);
    manager.addApp(workload("stream"));
    manager.addApp(workload("kmeans"));
    manager.run(toTicks(30.0));
    EXPECT_GT(manager.serverNormalizedThroughput(), 0.3);
    EXPECT_LE(server.meter().averagePower(), 101.0);
}

TEST(Stress, OracleAndCfAgreeOnRegime)
{
    for (double cap : {100.0, 80.0}) {
        sim::Server s1, s2;
        s1.setCap(cap);
        s2.setCap(cap);
        ManagerConfig c1, c2;
        c1.policy = c2.policy = PolicyKind::AppResAware;
        c1.oracleUtilities = true;
        ServerManager m1(s1, c1), m2(s2, c2);
        m1.seedCorpus(workloadLibrary());
        m2.seedCorpus(workloadLibrary());
        for (auto *m : {&m1, &m2}) {
            m->addApp(workload("facesim"));
            m->addApp(workload("bfs"));
            m->run(toTicks(30.0));
        }
        EXPECT_EQ(m1.mode(), m2.mode()) << "cap " << cap;
        EXPECT_NEAR(m1.serverNormalizedThroughput(),
                    m2.serverNormalizedThroughput(), 0.12)
            << "cap " << cap;
    }
}

TEST(Stress, DeterministicGivenSeed)
{
    auto run_once = [] {
        sim::Server server;
        server.setCap(100.0);
        ManagerConfig cfg;
        cfg.policy = PolicyKind::AppResAware;
        cfg.seed = 99;
        ServerManager manager(server, cfg);
        manager.seedCorpus(workloadLibrary());
        manager.addApp(workload("stream"));
        manager.addApp(workload("kmeans"));
        manager.run(toTicks(20.0));
        return manager.serverNormalizedThroughput();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

} // namespace
} // namespace psm::core
