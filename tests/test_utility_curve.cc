/**
 * @file
 * Tests for utility curves / Pareto frontiers and resource marginals.
 */

#include <gtest/gtest.h>

#include "cf/profiler.hh"
#include "core/utility_curve.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"

namespace psm::core
{
namespace
{

using power::defaultPlatform;

cf::UtilitySurface
surfaceFor(const std::string &app)
{
    const auto &plat = defaultPlatform();
    cf::Profiler prof(plat, 0.0);
    perf::PerfModel model(plat, perf::workload(app));
    Rng rng(1);
    std::vector<double> p, h;
    prof.measureAll(model, p, h, rng);
    return cf::UtilityEstimator::surfaceFromRows(p, h);
}

std::vector<power::KnobSetting>
allSettings()
{
    return defaultPlatform().knobSpace();
}

class CurvePerApp : public ::testing::TestWithParam<std::string>
{
  protected:
    cf::UtilitySurface surface = surfaceFor(GetParam());
    UtilityCurve curve{GetParam(), allSettings(), surface,
                       KnobFreedom::All};
};

TEST_P(CurvePerApp, FrontierIsStrictlyImproving)
{
    const auto &pts = curve.points();
    ASSERT_FALSE(pts.empty());
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].power, pts[i - 1].power);
        EXPECT_GT(pts[i].hbRate, pts[i - 1].hbRate);
    }
}

TEST_P(CurvePerApp, NoSurfacePointDominatesTheFrontier)
{
    // Property: for every surface point there is a frontier point
    // with no more power and no less performance.
    const auto &settings = allSettings();
    for (std::size_t c = 0; c < settings.size(); c += 17) {
        double p = surface.power[c];
        double h = surface.hbRate[c];
        auto best = curve.bestWithin(p);
        ASSERT_TRUE(best.has_value());
        EXPECT_GE(best->hbRate, h - 1e-9);
    }
}

TEST_P(CurvePerApp, PerfAtIsMonotone)
{
    double prev = 0.0;
    for (double b = 0.0; b <= 30.0; b += 0.5) {
        double perf = curve.perfAt(b);
        EXPECT_GE(perf, prev - 1e-12);
        EXPECT_LE(perf, 1.0 + 1e-9);
        prev = perf;
    }
}

TEST_P(CurvePerApp, BestWithinBudgetEdges)
{
    EXPECT_FALSE(curve.bestWithin(curve.minPower() - 0.1).has_value());
    auto top = curve.bestWithin(1000.0);
    ASSERT_TRUE(top.has_value());
    EXPECT_NEAR(top->perfNorm, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(top->power, curve.maxPower());
}

TEST_P(CurvePerApp, MarginalUtilityIsZeroOutsideTheFrontier)
{
    EXPECT_DOUBLE_EQ(curve.marginalUtility(curve.minPower() - 1.0),
                     0.0);
    EXPECT_DOUBLE_EQ(curve.marginalUtility(curve.maxPower() + 1.0),
                     0.0);
    // Somewhere in the middle it is positive.
    double mid = (curve.minPower() + curve.maxPower()) / 2.0;
    EXPECT_GT(curve.marginalUtility(mid), 0.0);
}

TEST_P(CurvePerApp, MostEfficientPointHasBestRatio)
{
    auto eff = curve.mostEfficientWithin(curve.maxPower());
    ASSERT_TRUE(eff.has_value());
    double ratio = eff->perfNorm / eff->power;
    for (const auto &p : curve.points())
        EXPECT_GE(ratio, p.perfNorm / p.power - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Apps, CurvePerApp,
                         ::testing::Values("stream", "kmeans", "bfs",
                                           "x264", "facesim"));

TEST(UtilityCurve, FrequencyOnlyRestrictsKnobs)
{
    auto surface = surfaceFor("kmeans");
    UtilityCurve curve("kmeans", allSettings(), surface,
                       KnobFreedom::FrequencyOnly);
    const auto &plat = defaultPlatform();
    for (const auto &p : curve.points()) {
        EXPECT_EQ(p.setting.cores, plat.coresMaxPerApp);
        EXPECT_DOUBLE_EQ(p.setting.dramPower, plat.dramPowerMax);
    }
    // The restricted frontier starts higher than the free one.
    UtilityCurve free_curve("kmeans", allSettings(), surface,
                            KnobFreedom::All);
    EXPECT_GT(curve.minPower(), free_curve.minPower());
}

TEST(ResourceMarginals, MemoryAppFavorsDramWatts)
{
    // The Fig. 3 comparison: at a mid setting, STREAM's best next
    // watt goes to DRAM, kmeans' to frequency/cores.
    const auto &plat = defaultPlatform();
    power::KnobSetting base{1.6, 3, 6.0};
    auto s = resourceMarginals(plat, allSettings(),
                               surfaceFor("stream"), base);
    auto k = resourceMarginals(plat, allSettings(),
                               surfaceFor("kmeans"), base);
    EXPECT_GT(s.dramPerWatt, s.freqPerWatt);
    EXPECT_GT(s.dramPerWatt, k.dramPerWatt);
    EXPECT_GT(k.corePerWatt + k.freqPerWatt, k.dramPerWatt);
}

TEST(ResourceMarginals, ZeroAtKnobCeilings)
{
    const auto &plat = defaultPlatform();
    auto m = resourceMarginals(plat, allSettings(),
                               surfaceFor("kmeans"),
                               plat.maxSetting());
    // No knob can go beyond its maximum.
    EXPECT_DOUBLE_EQ(m.corePerWatt, 0.0);
    EXPECT_DOUBLE_EQ(m.freqPerWatt, 0.0);
    EXPECT_DOUBLE_EQ(m.dramPerWatt, 0.0);
}

TEST(AverageSurfaces, BlendsNormalizedShapes)
{
    auto a = surfaceFor("stream");
    auto b = surfaceFor("kmeans");
    auto avg = averageSurfaces({a, b});
    ASSERT_EQ(avg.power.size(), a.power.size());
    for (std::size_t c = 0; c < avg.power.size(); c += 31) {
        EXPECT_NEAR(avg.power[c], (a.power[c] + b.power[c]) / 2.0,
                    1e-9);
        // Normalized performance lies in (0, 1].
        EXPECT_GT(avg.hbRate[c], 0.0);
        EXPECT_LE(avg.hbRate[c], 1.0 + 1e-9);
    }
}

} // namespace
} // namespace psm::core
