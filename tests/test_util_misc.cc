/**
 * @file
 * Tests for the RNG, math helpers and table writer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "util/mathutil.hh"
#include "util/parse.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace psm
{
namespace
{

// --- Rng --------------------------------------------------------------

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(5);
    double first = a.uniform();
    a.uniform();
    a.reseed(5);
    EXPECT_DOUBLE_EQ(a.uniform(), first);
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
        int n = rng.uniformInt(-2, 2);
        EXPECT_GE(n, -2);
        EXPECT_LE(n, 2);
    }
}

TEST(Rng, SampleIndicesDistinctAndInRange)
{
    Rng rng(42);
    auto sample = rng.sampleIndices(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (std::size_t ix : sample)
        EXPECT_LT(ix, 100u);
}

TEST(Rng, SampleAllIndicesIsPermutation)
{
    Rng rng(42);
    auto sample = rng.sampleIndices(20, 20);
    std::sort(sample.begin(), sample.end());
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(9);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, GaussianMomentsApproximatelyCorrect)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.gaussian(10.0, 3.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

// --- Math helpers ------------------------------------------------------

TEST(MathUtil, Linspace)
{
    auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.0);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(MathUtil, InterpolateInsideAndOutside)
{
    std::vector<double> xs = {0.0, 1.0, 3.0};
    std::vector<double> ys = {0.0, 10.0, 30.0};
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 2.0), 20.0);
    // Clamped extrapolation.
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, -5.0), 0.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 99.0), 30.0);
}

TEST(MathUtil, Quantize)
{
    EXPECT_DOUBLE_EQ(quantize(1.26, 0.1), 1.3);
    EXPECT_DOUBLE_EQ(quantize(1.24, 0.1), 1.2);
    EXPECT_DOUBLE_EQ(quantize(-0.26, 0.1), -0.3);
}

TEST(MathUtil, SaturatingCurveProperties)
{
    EXPECT_DOUBLE_EQ(saturating(0.0, 10.0, 1.0), 0.0);
    EXPECT_LT(saturating(1.0, 10.0, 1.0), 10.0);
    // Monotone and bounded by the ceiling.
    double prev = 0.0;
    for (double x = 0.0; x < 20.0; x += 0.5) {
        double y = saturating(x, 10.0, 0.5);
        EXPECT_GE(y, prev);
        EXPECT_LE(y, 10.0);
        prev = y;
    }
}

TEST(MathUtil, AmdahlLimits)
{
    // Fully serial: no speedup.
    EXPECT_DOUBLE_EQ(amdahlSpeedup(16.0, 0.0), 1.0);
    // Fully parallel: linear speedup.
    EXPECT_DOUBLE_EQ(amdahlSpeedup(16.0, 1.0), 16.0);
    // One worker: always 1.
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 0.7), 1.0);
}

class AmdahlMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(AmdahlMonotone, SpeedupIncreasesWithWorkers)
{
    double pf = GetParam();
    double prev = 0.0;
    for (double n = 1.0; n <= 12.0; n += 1.0) {
        double s = amdahlSpeedup(n, pf);
        EXPECT_GT(s, prev);
        EXPECT_LE(s, n + 1e-9);
        prev = s;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AmdahlMonotone,
                         ::testing::Values(0.1, 0.5, 0.8, 0.9, 0.99));

// --- Table -------------------------------------------------------------

TEST(Table, BuildsAndFormats)
{
    Table t({"name", "watts"});
    t.beginRow().cell("idle").cell(50.0, 1).endRow();
    t.addRow({"cm", "20"});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.at(0, 1), "50.0");

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("idle"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvQuotesCommas)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.375, 1), "37.5%");
}

// --- checked CLI parsing ----------------------------------------------

TEST(Parse, LongAcceptsWholeNumbersOnly)
{
    long v = -1;
    EXPECT_TRUE(util::parseLong("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(util::parseLong("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_TRUE(util::parseLong(" 8", v)); // strtol skips leading ws
    EXPECT_EQ(v, 8);

    long untouched = 123;
    EXPECT_FALSE(util::parseLong("", untouched));
    EXPECT_FALSE(util::parseLong("12x", untouched));
    EXPECT_FALSE(util::parseLong("x12", untouched));
    EXPECT_FALSE(util::parseLong("-", untouched));
    EXPECT_FALSE(util::parseLong("1 2", untouched));
    EXPECT_FALSE(util::parseLong("9999999999999999999999",
                                 untouched)); // overflow
    EXPECT_FALSE(util::parseLong(nullptr, untouched));
    EXPECT_EQ(untouched, 123); // failures leave the output alone
}

TEST(Parse, LongInRangeEnforcesBounds)
{
    long v = 0;
    EXPECT_TRUE(util::parseLongInRange("5", 1, 10, v));
    EXPECT_EQ(v, 5);
    EXPECT_FALSE(util::parseLongInRange("0", 1, 10, v));
    EXPECT_FALSE(util::parseLongInRange("11", 1, 10, v));
    EXPECT_FALSE(util::parseLongInRange("-3", 0, 10, v));
}

TEST(Parse, FiniteDoubleRejectsNanInfAndGarbage)
{
    double v = 0.0;
    EXPECT_TRUE(util::parseFiniteDouble("80.5", v));
    EXPECT_DOUBLE_EQ(v, 80.5);
    EXPECT_TRUE(util::parseFiniteDouble("-2e3", v));
    EXPECT_DOUBLE_EQ(v, -2000.0);

    EXPECT_FALSE(util::parseFiniteDouble("", v));
    EXPECT_FALSE(util::parseFiniteDouble("80W", v));
    EXPECT_FALSE(util::parseFiniteDouble("nan", v));
    EXPECT_FALSE(util::parseFiniteDouble("inf", v));
    EXPECT_FALSE(util::parseFiniteDouble("-inf", v));
    EXPECT_FALSE(util::parseFiniteDouble("1e999", v)); // overflow
}

TEST(Parse, PortRejectsZeroOverflowAndNegatives)
{
    std::uint16_t port = 0;
    EXPECT_TRUE(util::parsePort("7633", port));
    EXPECT_EQ(port, 7633);
    EXPECT_TRUE(util::parsePort("65535", port));
    EXPECT_EQ(port, 65535);

    EXPECT_FALSE(util::parsePort("0", port));
    EXPECT_FALSE(util::parsePort("65536", port));
    EXPECT_FALSE(util::parsePort("-1", port));
    EXPECT_FALSE(util::parsePort("http", port));
}

} // namespace
} // namespace psm
