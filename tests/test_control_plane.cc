/**
 * @file
 * Tests for the layered control plane: the Telemetry bus, the
 * LearningPipeline, the PlanSelector, the NodePool substrate, and an
 * end-to-end scripted E1-E4 scenario observed entirely through the
 * telemetry bus.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>

#include "cf/profiler.hh"
#include "cluster/node_pool.hh"
#include "core/learning_pipeline.hh"
#include "core/manager.hh"
#include "core/plan_selector.hh"
#include "core/telemetry.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"

namespace psm::core
{
namespace
{

using perf::workload;
using perf::workloadLibrary;
using power::defaultPlatform;

// --- Telemetry bus ----------------------------------------------------------

TEST(Telemetry, CountersAccumulate)
{
    Telemetry tel;
    EXPECT_EQ(tel.counter("x"), 0u);
    tel.count("x");
    tel.count("x", 4);
    EXPECT_EQ(tel.counter("x"), 5u);
    EXPECT_EQ(tel.counter("never"), 0u);
}

TEST(Telemetry, TimersTrackCountTotalMax)
{
    Telemetry tel;
    tel.observe("t", 10);
    tel.observe("t", 30);
    tel.observe("t", 20);
    TimerStat t = tel.timer("t");
    EXPECT_EQ(t.count, 3u);
    EXPECT_EQ(t.total, 60);
    EXPECT_EQ(t.max, 30);
    EXPECT_EQ(tel.timer("never").count, 0u);
}

TEST(Telemetry, MergeFoldsCountersTimersAndDecisions)
{
    Telemetry a;
    a.count("c", 2);
    a.observe("t", 10);
    DecisionRecord rec;
    rec.plan = "idle";
    a.record(rec);

    Telemetry b;
    b.count("c", 3);
    b.count("only-b");
    b.observe("t", 25);
    rec.plan = "spatial-utility";
    b.record(rec);

    a.merge(b);
    EXPECT_EQ(a.counter("c"), 5u);
    EXPECT_EQ(a.counter("only-b"), 1u);
    EXPECT_EQ(a.timer("t").count, 2u);
    EXPECT_EQ(a.timer("t").max, 25);
    ASSERT_EQ(a.decisions().size(), 2u);
    EXPECT_EQ(a.decisions()[1].plan, "spatial-utility");

    a.reset();
    EXPECT_EQ(a.counter("c"), 0u);
    EXPECT_TRUE(a.decisions().empty());
}

TEST(Telemetry, DumpsContainTheirContent)
{
    Telemetry tel;
    tel.count("decisions.total", 7);
    tel.observe("alloc", toTicks(0.5));
    DecisionRecord rec;
    rec.trigger = "E1-cap-change";
    rec.plan = "fair-rapl-space";
    tel.record(rec);

    std::ostringstream text;
    tel.dumpText(text);
    EXPECT_NE(text.str().find("decisions.total = 7"),
              std::string::npos);
    EXPECT_NE(text.str().find("fair-rapl-space"), std::string::npos);

    std::ostringstream json;
    tel.dumpJson(json);
    EXPECT_NE(json.str().find("\"decisions.total\":7"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"trigger\":\"E1-cap-change\""),
              std::string::npos);
    // Crude structural sanity: braces balance.
    int depth = 0;
    for (char c : json.str()) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

// --- LearningPipeline -------------------------------------------------------

TEST(LearningPipeline, OracleCalibrationIsImmediate)
{
    sim::Server server;
    LearningConfig lc;
    lc.oracleUtilities = true;
    Telemetry tel;
    LearningPipeline pipe(server, lc, &tel);
    pipe.seedCorpus(workloadLibrary());
    ASSERT_TRUE(pipe.serverAverageCurve().has_value());

    int id = server.admit(workload("stream"));
    pipe.track(id, "stream");
    EXPECT_FALSE(pipe.calibrated(id));
    EXPECT_TRUE(pipe.startCalibration(id));
    EXPECT_TRUE(pipe.calibrated(id));
    EXPECT_EQ(pipe.lastCalibrationLatency(), 0);

    UtilityCurve curve = pipe.utilityFor(id, KnobFreedom::All);
    EXPECT_GT(curve.maxPower(), curve.minPower());
    EXPECT_EQ(tel.counter("learning.oracle_calibrations"), 1u);
}

TEST(LearningPipeline, OnlineCalibrationChargesWallClock)
{
    sim::Server server;
    LearningConfig lc;
    Telemetry tel;
    LearningPipeline pipe(server, lc, &tel);
    pipe.seedCorpus(workloadLibrary());

    int id = server.admit(workload("kmeans"));
    pipe.track(id, "kmeans");
    EXPECT_FALSE(pipe.startCalibration(id));
    EXPECT_FALSE(pipe.calibrated(id));
    // The app is pinned conservatively while being profiled.
    EXPECT_NEAR(server.app(id).knobs().freq,
                defaultPlatform().minSetting().freq, 1e-9);
    // Nothing is due before the measurement wall-clock elapses.
    EXPECT_TRUE(pipe.finishDueCalibrations().empty());

    server.run(toTicks(10.0));
    std::vector<int> done = pipe.finishDueCalibrations();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], id);
    EXPECT_TRUE(pipe.calibrated(id));
    EXPECT_GT(pipe.lastCalibrationLatency(), 0);
    EXPECT_EQ(tel.counter("learning.calibrations_finished"), 1u);
}

TEST(LearningPipeline, SurfaceEpochTracksRecalibrationsAndRearrivals)
{
    // The epoch gates the allocator's cross-event DP cache: it must
    // move exactly when a live utility surface can change under the
    // cache's feet, and stay put otherwise (first contact is an
    // arrival the cache absorbs incrementally).
    sim::Server server;
    LearningConfig lc;
    lc.oracleUtilities = true;
    Telemetry tel;
    LearningPipeline pipe(server, lc, &tel);
    pipe.seedCorpus(workloadLibrary());

    std::uint64_t e0 = pipe.surfaceEpoch();
    int id = server.admit(workload("stream"));
    pipe.track(id, "stream"); // first-time name: no bump
    EXPECT_EQ(pipe.surfaceEpoch(), e0);
    EXPECT_TRUE(pipe.startCalibration(id)); // first surface: no bump
    EXPECT_EQ(pipe.surfaceEpoch(), e0);
    EXPECT_TRUE(pipe.startCalibration(id)); // recalibration: bump
    EXPECT_EQ(pipe.surfaceEpoch(), e0 + 1);

    // A same-name re-arrival could alias the departed app's cached
    // frontier, so it must bump even though the app id is fresh.
    pipe.forget(id);
    EXPECT_EQ(pipe.surfaceEpoch(), e0 + 1);
    int id2 = server.admit(workload("stream"));
    pipe.track(id2, "stream");
    EXPECT_EQ(pipe.surfaceEpoch(), e0 + 2);
}

// --- PlanSelector -----------------------------------------------------------

class PlanSelectorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto &plat = defaultPlatform();
        settings = plat.knobSpace();
        cf::Profiler prof(plat, 0.0);
        Rng rng(1);
        std::vector<cf::UtilitySurface> surfaces;
        for (const char *name : {"stream", "kmeans"}) {
            perf::PerfModel model(plat, perf::workload(name));
            std::vector<double> p, h;
            prof.measureAll(model, p, h, rng);
            surfaces.push_back(
                cf::UtilityEstimator::surfaceFromRows(p, h));
            curves.push_back(std::make_unique<UtilityCurve>(
                name, settings, surfaces.back(), KnobFreedom::All,
                &plat));
        }
        ptrs = {curves[0].get(), curves[1].get()};
        avg = std::make_unique<UtilityCurve>(
            "server-average", settings, averageSurfaces(surfaces),
            KnobFreedom::All);
    }

    /** Dynamic budget the manager would derive for a given cap. */
    Watts
    budgetFor(Watts cap) const
    {
        const auto &plat = defaultPlatform();
        Watts b = std::max(cap - plat.idlePower - plat.cmPower, 0.0);
        return b * 0.98;
    }

    PlanInputs
    inputsFor(PolicyKind policy, Watts cap)
    {
        PlanInputs in;
        in.policy = policy;
        in.cap = cap;
        in.budget = budgetFor(cap);
        in.appCount = 2;
        if (policyAppAware(policy))
            in.curves = ptrs;
        if (policy == PolicyKind::ServerResAware)
            in.serverAverage = avg.get();
        return in;
    }

    std::vector<power::KnobSetting> settings;
    std::vector<std::unique_ptr<UtilityCurve>> curves;
    std::vector<const UtilityCurve *> ptrs;
    std::unique_ptr<UtilityCurve> avg;
    Telemetry tel;
    PlanSelector selector{defaultPlatform(), AllocatorConfig{}, &tel};
};

TEST_F(PlanSelectorTest, NoAppsMeansIdle)
{
    PlanInputs in;
    in.appCount = 0;
    EXPECT_EQ(selector.select(in).choice, PlanChoice::Idle);
    EXPECT_EQ(tel.counter("selector.idle"), 1u);
}

TEST_F(PlanSelectorTest, NoCapMeansUncappedRun)
{
    PlanInputs in = inputsFor(PolicyKind::AppResAware, 0.0);
    EXPECT_EQ(selector.select(in).choice, PlanChoice::UncappedRun);
}

TEST_F(PlanSelectorTest, UtilUnawareSplitsFairly)
{
    PlanDecision d =
        selector.select(inputsFor(PolicyKind::UtilUnaware, 100.0));
    EXPECT_EQ(d.choice, PlanChoice::FairRaplSpace);
    EXPECT_NEAR(d.perAppBudget, budgetFor(100.0) / 2.0, 1e-9);
    EXPECT_FALSE(d.driftDetection);

    // Share below the floor but budget above it: duty cycling with
    // the blind baseline enforcement.
    Watts floor_power = minFeasibleAppPower(defaultPlatform());
    PlanInputs in = inputsFor(PolicyKind::UtilUnaware, 100.0);
    in.budget = floor_power * 1.5;
    d = selector.select(in);
    EXPECT_EQ(d.choice, PlanChoice::FairRaplTime);
    EXPECT_FALSE(d.demandFollowingRapl);

    // Budget below the floor: nobody can run.
    in.budget = floor_power * 0.5;
    EXPECT_EQ(selector.select(in).choice, PlanChoice::Idle);
}

TEST_F(PlanSelectorTest, ServerResAwareUsesTheAverageCurve)
{
    PlanDecision d =
        selector.select(inputsFor(PolicyKind::ServerResAware, 100.0));
    EXPECT_EQ(d.choice, PlanChoice::ServerAvgSpace);
    ASSERT_TRUE(d.avgPoint.has_value());
    EXPECT_LE(d.avgPoint->power, budgetFor(100.0) / 2.0 + 1e-6);

    // A tight cap forces the temporal fallback on the same curve.
    PlanInputs in = inputsFor(PolicyKind::ServerResAware, 100.0);
    in.budget = avg->minPower() * 1.2;
    d = selector.select(in);
    EXPECT_EQ(d.choice, PlanChoice::ServerAvgTime);
}

TEST_F(PlanSelectorTest, UtilityAwareSelectsSpatialAtAmpleBudget)
{
    PlanDecision d =
        selector.select(inputsFor(PolicyKind::AppResAware, 100.0));
    EXPECT_EQ(d.choice, PlanChoice::SpatialUtility);
    EXPECT_TRUE(d.driftDetection); // E4 active only in Space mode
    EXPECT_TRUE(d.alloc.allScheduled());
    EXPECT_GT(d.objective, 0.0);
    EXPECT_EQ(tel.counter("selector.spatial-utility"), 1u);
}

TEST_F(PlanSelectorTest, UtilityAwareFallsBackToTemporalWhenTight)
{
    // A budget below the sum of curve minima cannot host everyone
    // concurrently; the selector must duty-cycle instead.
    PlanInputs in = inputsFor(PolicyKind::AppResAware, 100.0);
    in.budget =
        (curves[0]->minPower() + curves[1]->minPower()) * 0.75;
    PlanDecision d = selector.select(in);
    EXPECT_EQ(d.choice, PlanChoice::TemporalUtility);
    EXPECT_FALSE(d.driftDetection);
    EXPECT_FALSE(d.temporal.slots.empty());
}

TEST_F(PlanSelectorTest, CalibratingAppsReserveTheirFloor)
{
    PlanInputs in = inputsFor(PolicyKind::AppResAware, 100.0);
    in.calibratingCount = 1;
    PlanDecision d = selector.select(in);
    Watts floor_power = minFeasibleAppPower(defaultPlatform());
    EXPECT_NEAR(d.usableBudget, budgetFor(100.0) - floor_power, 1e-9);

    // Nobody calibrated yet: hold the floor, decide nothing.
    in.curves.clear();
    in.calibratingCount = 2;
    EXPECT_EQ(selector.select(in).choice,
              PlanChoice::CalibrationOnly);
}

TEST_F(PlanSelectorTest, EsdPolicyConsolidatesUnderTightCaps)
{
    esd::BatteryConfig esd = esd::leadAcidUps();
    PlanInputs in = inputsFor(PolicyKind::AppResEsdAware, 80.0);
    in.hasEsd = true;
    in.esd = &esd;
    PlanDecision d = selector.select(in);
    EXPECT_EQ(d.choice, PlanChoice::EsdAssisted);
    EXPECT_TRUE(d.esd.viable);
    EXPECT_TRUE(d.esd.onAllocation.allScheduled());

    // The same inputs without the battery duty-cycle instead.
    in.hasEsd = false;
    in.esd = nullptr;
    d = selector.select(in);
    EXPECT_NE(d.choice, PlanChoice::EsdAssisted);
}

// --- NodePool ---------------------------------------------------------------

TEST(NodePool, BuildsManagedNodesAndAggregatesTelemetry)
{
    cluster::NodePoolConfig pc;
    pc.servers = 2;
    pc.seedBase = 100;
    pc.serverCap = 100.0;
    cluster::NodePool pool(pc);
    ASSERT_EQ(pool.size(), 2u);

    for (std::size_t s = 0; s < pool.size(); ++s) {
        ASSERT_NE(pool[s].manager, nullptr);
        EXPECT_EQ(pool[s].manager->config().seed, 100 + s);
        pool[s].manager->addApp(workload("stream"));
        pool[s].manager->run(toTicks(3.0));
    }

    EXPECT_GT(pool.totalEnergy(), 0.0);
    Telemetry cluster_tel = pool.aggregateTelemetry();
    // Both nodes reallocated at least once each.
    EXPECT_GE(cluster_tel.counter("manager.reallocations"), 2u);
    EXPECT_EQ(cluster_tel.counter("manager.reallocations"),
              pool[0].manager->reallocationCount() +
                  pool[1].manager->reallocationCount());
}

TEST(NodePool, RawPoolHasNoManagers)
{
    cluster::NodePoolConfig pc;
    pc.servers = 2;
    pc.managed = false;
    cluster::NodePool pool(pc);
    EXPECT_EQ(pool[0].manager, nullptr);
    EXPECT_EQ(pool[1].manager, nullptr);
    EXPECT_EQ(pool.aggregateTelemetry().counters().size(), 0u);
}

// --- End-to-end: the E1-E4 script on the bus --------------------------------

TEST(ControlPlane, ScriptedEventsLandOnTheTelemetryBus)
{
    sim::Server server;
    server.setCap(100.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResAware;
    cfg.oracleUtilities = true;
    ServerManager manager(server, cfg);
    manager.seedCorpus(workloadLibrary());

    // E2: two arrivals.  The first app changes phase mid-run so its
    // draw drifts from its allocation (E4); the second is finite so
    // it departs (E3).
    int drifting = manager.addApp(workload("kmeans"));
    server.app(drifting).setPhases(
        {{0.25, 1.0, 1.0}, {1.0, 0.3, 25.0}});
    perf::AppProfile finite = workload("x264");
    finite.totalHeartbeats = 3600.0;
    manager.addApp(finite);

    // Drift detection runs in Space mode only, so the phase change
    // and the departure both happen under the 100 W cap.
    manager.run(toTicks(60.0));
    // E1: the datacenter tightens the cap mid-run.
    manager.setCap(80.0);
    manager.run(toTicks(30.0));

    const Telemetry &tel = manager.telemetry();

    // Every event kind was observed and counted.
    EXPECT_EQ(tel.counter("event.E1-cap-change"), 1u);
    EXPECT_EQ(tel.counter("event.E2-arrival"), 2u);
    EXPECT_GE(tel.counter("event.E3-departure"), 1u);
    EXPECT_GE(tel.counter("event.E4-drift"), 1u);

    // Each reallocation produced exactly one decision record.
    EXPECT_EQ(tel.counter("manager.reallocations"),
              manager.reallocationCount());
    EXPECT_EQ(tel.timer("manager.reallocate").count,
              manager.reallocationCount());
    ASSERT_EQ(tel.decisions().size(), manager.reallocationCount());

    // The triggers recorded on the bus mirror the event log.
    bool saw_cap_trigger = false, saw_arrival = false,
         saw_departure = false, saw_drift = false;
    for (const DecisionRecord &d : tel.decisions()) {
        EXPECT_EQ(d.policy, "App+Res-Aware");
        EXPECT_FALSE(d.plan.empty());
        EXPECT_FALSE(d.mode.empty());
        saw_cap_trigger |= d.trigger == "E1-cap-change";
        saw_arrival |= d.trigger == "E2-arrival";
        saw_departure |= d.trigger == "E3-departure";
        saw_drift |= d.trigger == "E4-drift";
    }
    EXPECT_TRUE(saw_cap_trigger);
    EXPECT_TRUE(saw_arrival);
    EXPECT_TRUE(saw_departure);
    EXPECT_TRUE(saw_drift);

    // The selector's plan tally matches the decision count, and the
    // coordinator published its mode transitions.
    std::uint64_t plans = 0;
    for (const auto &[name, value] : tel.counters()) {
        if (name.rfind("selector.", 0) == 0)
            plans += value;
    }
    EXPECT_EQ(plans, manager.reallocationCount());
    EXPECT_GE(tel.counter("coordinator.enter.space"), 1u);
}

TEST(ControlPlane, KilledAppIsReapedAndReplanned)
{
    sim::Server server;
    server.setCap(100.0);
    ManagerConfig cfg;
    cfg.policy = PolicyKind::AppResAware;
    cfg.oracleUtilities = true;
    ServerManager manager(server, cfg);
    int victim = manager.addApp(workload("kmeans"));
    int survivor = manager.addApp(workload("stream"));
    manager.run(toTicks(1.0));

    // Kill the first app out from under the manager: it departs
    // without ever calling finished().
    server.remove(victim);
    manager.run(toTicks(1.0));

    const Telemetry &tel = manager.telemetry();
    EXPECT_GE(tel.counter("event.E3-departure"), 1u);
    EXPECT_EQ(tel.counter("degraded.app_reaped"), 1u);
    bool saw_e3 = false;
    for (const AccountantEvent &ev : manager.eventLog())
        saw_e3 |=
            ev.kind == EventKind::Departure && ev.appId == victim;
    EXPECT_TRUE(saw_e3);

    // The victim's record closed with its pre-kill progress; the
    // survivor keeps running under a fresh plan.
    auto records = manager.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].done);
    EXPECT_GT(records[0].beats, 0.0);
    EXPECT_FALSE(records[1].done);
    EXPECT_TRUE(server.hasApp(survivor));
    EXPECT_TRUE(manager.anyAppRunning());
}

} // namespace
} // namespace psm::core
