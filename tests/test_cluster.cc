/**
 * @file
 * Tests for the cluster substrate: trace generation, peak-shaving cap
 * derivation and short replays of the three cluster policies.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_manager.hh"
#include "cluster/power_trace.hh"

namespace psm::cluster
{
namespace
{

TEST(PowerTrace, AtClampsAndReportsDuration)
{
    PowerTrace t;
    t.interval = toTicks(10.0);
    t.values = {100.0, 200.0, 300.0};
    EXPECT_DOUBLE_EQ(t.at(0), 100.0);
    EXPECT_DOUBLE_EQ(t.at(toTicks(15.0)), 200.0);
    EXPECT_DOUBLE_EQ(t.at(toTicks(1000.0)), 300.0);
    EXPECT_EQ(t.duration(), toTicks(30.0));
    EXPECT_DOUBLE_EQ(t.peak(), 300.0);
    EXPECT_DOUBLE_EQ(t.mean(), 200.0);
}

TEST(PowerTrace, DiurnalDemandHasExpectedShape)
{
    TraceConfig cfg;
    cfg.noise = 0.0;
    PowerTrace t = generateDiurnalDemand(cfg);
    ASSERT_EQ(t.values.size(), cfg.points);
    // Bounded by the configured envelope.
    for (Watts v : t.values) {
        EXPECT_GE(v, cfg.floor * 0.8 - 1e-9);
        EXPECT_LE(v, cfg.peak * 1.05 + 1e-9);
    }
    // Night is quieter than the evening peak.
    EXPECT_LT(t.values.front(), t.peak() - 100.0);
}

TEST(PowerTrace, DeterministicFromSeed)
{
    TraceConfig cfg;
    PowerTrace a = generateDiurnalDemand(cfg);
    PowerTrace b = generateDiurnalDemand(cfg);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (std::size_t i = 0; i < a.values.size(); ++i)
        EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
}

TEST(PowerTrace, PeakShavingCapsCutThePeak)
{
    TraceConfig cfg;
    cfg.noise = 0.0;
    PowerTrace demand = generateDiurnalDemand(cfg);
    PowerTrace caps = peakShavingCaps(demand, 0.30);
    EXPECT_NEAR(caps.peak(), demand.peak() * 0.7, 1e-6);
    for (std::size_t i = 0; i < caps.values.size(); ++i)
        EXPECT_LE(caps.values[i], demand.values[i] + 1e-9);
}

TEST(PowerTrace, LoadFollowingCapsMapShapeOntoUncappedDraw)
{
    TraceConfig cfg;
    cfg.noise = 0.0;
    PowerTrace demand = generateDiurnalDemand(cfg);
    PowerTrace caps = loadFollowingCaps(demand, 1000.0, 0.30);
    // Off-peak: uncapped; at peak: 30% shaved.
    double lo = 1e9, hi = 0.0;
    for (Watts v : caps.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_NEAR(hi, 1000.0, 1e-6);
    EXPECT_NEAR(lo, 700.0, 1e-6);
}

TEST(ClusterPolicy, Names)
{
    EXPECT_EQ(clusterPolicyName(ClusterPolicy::EqualRapl),
              "Equal(RAPL)");
    EXPECT_EQ(clusterPolicyName(ClusterPolicy::EqualOurs),
              "Equal(Ours)");
    EXPECT_EQ(
        clusterPolicyName(ClusterPolicy::ConsolidationMigration),
        "Consolidation+Migration(no cap)");
}

TEST(ClusterManager, DefaultPopulationIsFullyPacked)
{
    ClusterConfig cfg;
    cfg.servers = 4;
    ClusterManager cm(cfg);
    cm.populateDefault();
    EXPECT_EQ(cm.appCount(), 8u); // two per server
    // Uncapped demand: ~4 x 110 W.
    EXPECT_NEAR(cm.uncappedDemandEstimate(), 4.0 * 110.0, 40.0);
}

class ClusterReplay : public ::testing::TestWithParam<ClusterPolicy>
{
};

TEST_P(ClusterReplay, ShortReplayProducesSaneNumbers)
{
    ClusterConfig cfg;
    cfg.policy = GetParam();
    cfg.servers = 4;
    cfg.migrationDowntime = toTicks(4.0);
    cfg.serverBootDelay = toTicks(4.0);
    ClusterManager cm(cfg);
    cm.populateDefault();

    TraceConfig tc;
    tc.points = 8;
    tc.interval = toTicks(10.0);
    PowerTrace demand = generateDiurnalDemand(tc);
    PowerTrace caps =
        loadFollowingCaps(demand, cm.uncappedDemandEstimate(), 0.25);

    ClusterResult r = cm.replay(caps);
    EXPECT_GT(r.aggregatePerf, 0.05);
    EXPECT_LE(r.aggregatePerf, 1.01);
    EXPECT_GT(r.avgClusterPower, 100.0);
    EXPECT_LT(r.avgClusterPower, cm.uncappedDemandEstimate() * 1.1);
    EXPECT_GT(r.perfPerKw, 0.0);
    EXPECT_EQ(r.duration, caps.duration());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ClusterReplay,
    ::testing::Values(ClusterPolicy::EqualRapl,
                      ClusterPolicy::EqualOurs,
                      ClusterPolicy::ConsolidationMigration));

TEST(ClusterManager, ConsolidationShedsServersUnderTightCaps)
{
    ClusterConfig cfg;
    cfg.policy = ClusterPolicy::ConsolidationMigration;
    cfg.servers = 4;
    cfg.migrationDowntime = toTicks(4.0);
    cfg.serverBootDelay = toTicks(4.0);
    ClusterManager cm(cfg);
    cm.populateDefault();

    // A flat, tight cap: roughly half the uncapped demand.
    PowerTrace caps;
    caps.interval = toTicks(20.0);
    caps.values.assign(4, cm.uncappedDemandEstimate() * 0.5);
    ClusterResult r = cm.replay(caps);
    // Some applications must have been parked.
    EXPECT_GT(r.parkedAppSteps, 0u);
    // Power stays below the cap (consolidation never caps, it sheds).
    EXPECT_LT(r.avgClusterPower,
              cm.uncappedDemandEstimate() * 0.55);
}

} // namespace
} // namespace psm::cluster
