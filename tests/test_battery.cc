/**
 * @file
 * Tests for the energy storage device and charge controller.
 */

#include <gtest/gtest.h>

#include "esd/battery.hh"
#include "esd/charge_controller.hh"

namespace psm::esd
{
namespace
{

BatteryConfig
idealSmall()
{
    BatteryConfig c;
    c.capacity = 100.0;
    c.maxChargePower = 10.0;
    c.maxDischargePower = 20.0;
    c.chargeEfficiency = 1.0;
    c.dischargeEfficiency = 1.0;
    c.selfDischargePerHour = 0.0;
    return c;
}

TEST(BatteryConfig, RoundTripEfficiency)
{
    BatteryConfig c = leadAcidUps();
    EXPECT_NEAR(c.roundTripEfficiency(), 0.90 * 0.89, 1e-12);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(BatteryConfigDeath, ValidationCatchesBadValues)
{
    BatteryConfig c = leadAcidUps();
    c.capacity = 0.0;
    EXPECT_DEATH(c.validate(), "capacity");

    BatteryConfig d = leadAcidUps();
    d.chargeEfficiency = 1.5;
    EXPECT_DEATH(d.validate(), "efficienc");
}

TEST(Battery, StartsAtConfiguredSoc)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 0.5;
    Battery b(c);
    EXPECT_NEAR(b.stored(), 50.0, 1e-9);
    EXPECT_NEAR(b.soc(), 0.5, 1e-9);
    EXPECT_FALSE(b.full());
    EXPECT_FALSE(b.empty());
}

TEST(Battery, ChargeStoresEnergyUpToCapacity)
{
    Battery b(idealSmall());
    // 10 W for 5 s stores 50 J.
    Watts drawn = b.charge(10.0, 5 * ticksPerSecond);
    EXPECT_NEAR(drawn, 10.0, 1e-9);
    EXPECT_NEAR(b.stored(), 50.0, 1e-9);
    // Another 10 s would exceed capacity; the charge tapers.
    drawn = b.charge(10.0, 10 * ticksPerSecond);
    EXPECT_LT(drawn, 10.0);
    EXPECT_NEAR(b.stored(), 100.0, 1e-9);
    EXPECT_TRUE(b.full());
    // Full battery accepts nothing.
    EXPECT_DOUBLE_EQ(b.charge(10.0, ticksPerSecond), 0.0);
}

TEST(Battery, ChargePowerLimitEnforced)
{
    Battery b(idealSmall());
    Watts drawn = b.charge(100.0, ticksPerSecond);
    EXPECT_NEAR(drawn, 10.0, 1e-9); // limited to maxChargePower
}

TEST(Battery, DischargeDeliversStoredEnergy)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 1.0;
    Battery b(c);
    Watts delivered = b.discharge(20.0, 2 * ticksPerSecond);
    EXPECT_NEAR(delivered, 20.0, 1e-9);
    EXPECT_NEAR(b.stored(), 60.0, 1e-9);
    // Request above the discharge limit is clipped.
    delivered = b.discharge(100.0, ticksPerSecond);
    EXPECT_NEAR(delivered, 20.0, 1e-9);
}

TEST(Battery, DischargeTapersWhenNearlyEmpty)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 0.1; // 10 J
    Battery b(c);
    // Asking 20 W for 1 s needs 20 J; only 10 J are there.
    Watts delivered = b.discharge(20.0, ticksPerSecond);
    EXPECT_NEAR(delivered, 10.0, 1e-9);
    EXPECT_TRUE(b.empty());
    EXPECT_DOUBLE_EQ(b.discharge(20.0, ticksPerSecond), 0.0);
}

TEST(Battery, EfficiencyLossesApplied)
{
    BatteryConfig c = idealSmall();
    c.chargeEfficiency = 0.9;
    c.dischargeEfficiency = 0.8;
    Battery b(c);
    b.charge(10.0, 4 * ticksPerSecond); // 40 J from wall -> 36 J stored
    EXPECT_NEAR(b.stored(), 36.0, 1e-9);
    // Delivering 8 W for 1 s drains 10 J from the store.
    b.discharge(8.0, ticksPerSecond);
    EXPECT_NEAR(b.stored(), 26.0, 1e-9);
    EXPECT_NEAR(b.totalChargedFromWall(), 40.0, 1e-9);
    EXPECT_NEAR(b.totalDelivered(), 8.0, 1e-9);
}

TEST(Battery, SustainTimeAndTimeToFull)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 1.0;
    Battery b(c);
    // 100 J at 20 W lasts 5 s.
    EXPECT_EQ(b.sustainTime(20.0), 5 * ticksPerSecond);
    EXPECT_EQ(b.sustainTime(0.0), maxTick);

    Battery e(idealSmall());
    // 100 J at 10 W charge takes 10 s.
    EXPECT_EQ(e.timeToFull(10.0), 10 * ticksPerSecond);
    EXPECT_EQ(e.timeToFull(0.0), maxTick);
}

TEST(Battery, SelfDischargeDecaysStore)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 1.0;
    c.selfDischargePerHour = 0.10;
    Battery b(c);
    b.rest(toTicks(3600.0));
    EXPECT_NEAR(b.stored(), 90.0, 0.1);
}

TEST(Battery, EquivalentCyclesCountDischargeThroughput)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 1.0;
    Battery b(c);
    b.discharge(20.0, 5 * ticksPerSecond); // one full capacity
    EXPECT_NEAR(b.equivalentCycles(), 1.0, 1e-6);
}

TEST(Battery, PaperExampleBanksTwoHundredJoules)
{
    // Fig. 5's walk-through: 20 W of headroom for 10 s banks 200 J.
    Battery b(paperExampleEsd());
    b.charge(20.0, 10 * ticksPerSecond);
    EXPECT_NEAR(b.stored(), 200.0, 1e-6);
    EXPECT_TRUE(b.full());
}

// --- ChargeController ----------------------------------------------------

TEST(ChargeController, PlansChargeFromHeadroom)
{
    Battery b(idealSmall());
    ChargeController ctl(b);
    // Demand 60 under a 70 cap: 10 W of headroom, all chargeable.
    EsdFlow flow = ctl.plan(60.0, 70.0);
    EXPECT_NEAR(flow.charge, 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(flow.discharge, 0.0);

    // Charging can be disallowed (ON phases).
    flow = ctl.plan(60.0, 70.0, false);
    EXPECT_DOUBLE_EQ(flow.charge, 0.0);
}

TEST(ChargeController, PlansDischargeForDeficit)
{
    BatteryConfig c = idealSmall();
    c.initialSoc = 1.0;
    Battery b(c);
    ChargeController ctl(b);
    // Demand 85 above an 80 cap: bridge 5 W (Eq. 4).
    EsdFlow flow = ctl.plan(85.0, 80.0);
    EXPECT_NEAR(flow.discharge, 5.0, 1e-9);
    EXPECT_DOUBLE_EQ(flow.charge, 0.0);
    // Deficit above the discharge limit is clipped.
    flow = ctl.plan(200.0, 80.0);
    EXPECT_NEAR(flow.discharge, 20.0, 1e-9);
}

TEST(ChargeController, EmptyBatteryCannotBridge)
{
    Battery b(idealSmall());
    ChargeController ctl(b);
    EsdFlow flow = ctl.plan(100.0, 80.0);
    EXPECT_DOUBLE_EQ(flow.discharge, 0.0);
}

TEST(ChargeController, ApplyMovesEnergy)
{
    Battery b(idealSmall());
    ChargeController ctl(b);
    EsdFlow actual = ctl.apply({10.0, 0.0}, 2 * ticksPerSecond);
    EXPECT_NEAR(actual.charge, 10.0, 1e-9);
    EXPECT_NEAR(b.stored(), 20.0, 1e-9);

    actual = ctl.apply({0.0, 20.0}, ticksPerSecond);
    EXPECT_NEAR(actual.discharge, 20.0, 1e-9);
    EXPECT_NEAR(b.stored(), 0.0, 1e-9);
}

} // namespace
} // namespace psm::esd
