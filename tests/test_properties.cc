/**
 * @file
 * Property-based tests over randomized inputs: the allocator and
 * utility-curve invariants must hold for *any* plausible utility
 * surface, not just the library workloads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/power_allocator.hh"
#include "core/utility_curve.hh"
#include "power/platform.hh"
#include "util/random.hh"

namespace psm::core
{
namespace
{

using power::defaultPlatform;

/**
 * Generate a random but physically plausible utility surface:
 * power increasing in every knob, heartbeat rate monotone
 * non-decreasing in every knob, with random per-app sensitivities.
 */
cf::UtilitySurface
randomSurface(Rng &rng)
{
    const auto &plat = defaultPlatform();
    auto settings = plat.knobSpace();
    cf::UtilitySurface s;
    s.power.resize(settings.size());
    s.hbRate.resize(settings.size());

    double core_w = rng.uniform(0.5, 4.0);   // W per core
    double freq_exp = rng.uniform(1.0, 3.0); // power vs f curvature
    double dram_w = rng.uniform(0.0, 1.0);   // W per DRAM level used
    double base = rng.uniform(1.0, 5.0);
    double f_sens = rng.uniform(0.0, 1.0);   // perf sensitivities
    double n_sens = rng.uniform(0.0, 1.0);
    double m_sens = rng.uniform(0.0, 1.0);
    double scale = rng.uniform(10.0, 500.0);

    for (std::size_t c = 0; c < settings.size(); ++c) {
        const auto &k = settings[c];
        double fr = (k.freq - plat.freqMin) /
                    (plat.freqMax - plat.freqMin);
        double nr = static_cast<double>(k.cores - 1) /
                    (plat.coresMaxPerApp - 1);
        double mr = (k.dramPower - plat.dramPowerMin) /
                    (plat.dramPowerMax - plat.dramPowerMin);
        s.power[c] = base + core_w * k.cores *
                              (0.3 + 0.7 * std::pow(
                                         k.freq / plat.freqMax,
                                         freq_exp)) +
                     dram_w * k.dramPower;
        double perf = (0.2 + 0.8 * (f_sens * fr + n_sens * nr +
                                    m_sens * mr) /
                                 std::max(f_sens + n_sens + m_sens,
                                          1e-6));
        s.hbRate[c] = scale * perf;
    }
    s.sampledColumns = settings.size();
    return s;
}

class RandomizedAllocator : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
        auto settings = defaultPlatform().knobSpace();
        int napps = rng.uniformInt(2, 4);
        for (int i = 0; i < napps; ++i) {
            curves.push_back(std::make_unique<UtilityCurve>(
                "app" + std::to_string(i), settings,
                randomSurface(rng), KnobFreedom::All));
            ptrs.push_back(curves.back().get());
        }
        budget = rng.uniform(5.0, 60.0);
    }

    std::vector<std::unique_ptr<UtilityCurve>> curves;
    std::vector<const UtilityCurve *> ptrs;
    double budget = 0.0;
    PowerAllocator allocator;
};

TEST_P(RandomizedAllocator, BudgetNeverExceeded)
{
    Allocation alloc = allocator.allocate(ptrs, budget);
    EXPECT_LE(alloc.used, budget + 1e-6);
    Watts sum = 0.0;
    for (const auto &a : alloc.apps)
        if (a.scheduled())
            sum += a.point->power;
    EXPECT_NEAR(sum, alloc.used, 1e-9);
}

TEST_P(RandomizedAllocator, DominatesEqualSplit)
{
    Allocation dp = allocator.allocate(ptrs, budget);
    Allocation eq = allocator.equalSplit(ptrs, budget);
    EXPECT_GE(dp.objective, eq.objective - 1e-9);
}

TEST_P(RandomizedAllocator, GrantedPointsLieOnTheFrontier)
{
    Allocation alloc = allocator.allocate(ptrs, budget);
    for (std::size_t i = 0; i < alloc.apps.size(); ++i) {
        const auto &a = alloc.apps[i];
        if (!a.scheduled())
            continue;
        // The granted point must be the curve's best at its power.
        auto best = ptrs[i]->bestWithin(a.point->power + 1e-9);
        ASSERT_TRUE(best.has_value());
        EXPECT_NEAR(best->perfNorm, a.expectedPerf, 1e-9);
    }
}

TEST_P(RandomizedAllocator, ReservationGuaranteesAllScheduled)
{
    Watts mins = 0.0;
    for (const auto *c : ptrs)
        mins += c->minPower();
    if (mins <= budget) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_TRUE(alloc.allScheduled());
    }
}

TEST_P(RandomizedAllocator, TemporalPlanInvariants)
{
    TemporalPlan plan = allocator.temporalPlan(
        ptrs, budget, ShareMode::UtilityWeighted);
    double total = 0.0;
    for (const auto &slot : plan.slots) {
        EXPECT_GT(slot.share, 0.0);
        EXPECT_LE(slot.point.power, budget + 1e-9);
        total += slot.share;
    }
    if (!plan.slots.empty()) {
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
    EXPECT_EQ(plan.slots.size() + plan.unschedulable.size(),
              ptrs.size());
}

TEST_P(RandomizedAllocator, EsdPlanEnergyBalanced)
{
    esd::BatteryConfig esd = esd::leadAcidUps();
    EsdPlan plan = allocator.esdPlan(ptrs, 50.0, 20.0,
                                     50.0 + budget, esd);
    if (!plan.viable)
        return;
    if (plan.offFraction > 0.0) {
        double banked = plan.offFraction * plan.chargePower *
                        esd.roundTripEfficiency();
        double spent = (1.0 - plan.offFraction) * plan.deficit;
        EXPECT_NEAR(banked, spent, 1e-6);
    } else {
        EXPECT_DOUBLE_EQ(plan.deficit, 0.0);
    }
}

TEST_P(RandomizedAllocator, CurveFrontierInvariants)
{
    for (const auto *c : ptrs) {
        const auto &pts = c->points();
        ASSERT_FALSE(pts.empty());
        for (std::size_t i = 1; i < pts.size(); ++i) {
            EXPECT_GT(pts[i].power, pts[i - 1].power);
            EXPECT_GT(pts[i].perfNorm, pts[i - 1].perfNorm);
        }
        EXPECT_LE(pts.back().perfNorm, 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedAllocator,
                         ::testing::Range(0, 12));

} // namespace
} // namespace psm::core
