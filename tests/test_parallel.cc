/**
 * @file
 * Tests for the performance layer: the util::ThreadPool itself, the
 * surface cache / warm-start path of the estimator, the cache-hit
 * telemetry contract of the LearningPipeline, and the determinism
 * guard — a parallel cluster run (pool width 4) must produce
 * bit-identical energy/perf/violation results to the serial run
 * (width 1), for both cluster drivers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "cf/estimator.hh"
#include "cf/profiler.hh"
#include "cluster/cluster_manager.hh"
#include "cluster/power_trace.hh"
#include "cluster/scheduler.hh"
#include "core/learning_pipeline.hh"
#include "core/telemetry.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace psm
{
namespace
{

/** Pin the global pool to a width for one test, restoring the
 * environment default afterwards. */
class ScopedPoolWidth
{
  public:
    explicit ScopedPoolWidth(unsigned width)
    {
        util::ThreadPool::configureGlobal(width);
    }
    ~ScopedPoolWidth() { util::ThreadPool::configureGlobal(0); }
};

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.width(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RangeFlavourPartitionsWithoutGapsOrOverlap)
{
    util::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelForRange(hits.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  hits[i].fetch_add(1);
                          });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWidthRunsInlineOnCaller)
{
    util::ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    bool same_thread = true;
    pool.parallelFor(8, [&](std::size_t) {
        same_thread &= std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(8, [&](std::size_t outer) {
        // Nested regions run inline on the owning worker.
        pool.parallelFor(8, [&](std::size_t inner) {
            hits[outer * 8 + inner].fetch_add(1);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, InvokeRunsBothTasks)
{
    util::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.invoke([&] { ran.fetch_add(1); }, [&] { ran.fetch_add(10); });
    EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, ZeroCountIsANoOp)
{
    util::ThreadPool pool(4);
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });
}

// --- Estimator cache / warm start -------------------------------------------

std::vector<cf::Measurement>
measureColumns(const std::string &app,
               const std::vector<std::size_t> &cols)
{
    const auto &plat = power::defaultPlatform();
    cf::Profiler prof(plat, 0.0);
    perf::PerfModel model(plat, perf::workload(app));
    Rng rng(17);
    return prof.measure(model, cols, rng);
}

cf::UtilityEstimator
corpusEstimator(const std::string &except)
{
    const auto &plat = power::defaultPlatform();
    cf::UtilityEstimator est(plat);
    cf::Profiler prof(plat, 0.0);
    Rng rng(23);
    for (const auto &p : perf::workloadLibrary()) {
        if (p.name == except)
            continue;
        perf::PerfModel model(plat, p);
        std::vector<double> pw, hb;
        prof.measureAll(model, pw, hb, rng);
        est.addCorpusApp(p.name, pw, hb);
    }
    return est;
}

TEST(SurfaceCache, IdenticalMaskIsServedWithoutAnySweep)
{
    cf::UtilityEstimator est = corpusEstimator("stream");
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < est.columnCount(); c += 9)
        cols.push_back(c);
    auto samples = measureColumns("stream", cols);

    cf::FitState state;
    cf::FitOutcome first;
    cf::UtilitySurface cold = est.estimate(samples, &state, &first);
    EXPECT_FALSE(first.cacheHit);
    EXPECT_FALSE(first.warmStarted);
    EXPECT_GT(first.sweeps, 0u);
    EXPECT_TRUE(state.valid);

    cf::FitOutcome second;
    cf::UtilitySurface warm = est.estimate(samples, &state, &second);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.sweeps, 0u);
    ASSERT_EQ(warm.power.size(), cold.power.size());
    for (std::size_t c = 0; c < warm.power.size(); ++c) {
        EXPECT_EQ(warm.power[c], cold.power[c]);
        EXPECT_EQ(warm.hbRate[c], cold.hbRate[c]);
    }
}

TEST(SurfaceCache, GrownMaskWarmStartsWithFewerSweeps)
{
    cf::UtilityEstimator est = corpusEstimator("stream");
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < est.columnCount(); c += 9)
        cols.push_back(c);

    cf::FitState state;
    cf::FitOutcome cold;
    est.estimate(measureColumns("stream", cols), &state, &cold);

    // Grow the mask strictly.
    std::vector<std::size_t> grown = cols;
    for (std::size_t c = 4; c < est.columnCount(); c += 27) {
        if (c % 9 != 0)
            grown.push_back(c);
    }
    ASSERT_GT(grown.size(), cols.size());
    cf::FitOutcome warm;
    cf::UtilitySurface surface =
        est.estimate(measureColumns("stream", grown), &state, &warm);
    EXPECT_FALSE(warm.cacheHit);
    EXPECT_TRUE(warm.warmStarted);
    EXPECT_LT(warm.sweeps, cold.sweeps);
    EXPECT_EQ(surface.power.size(), est.columnCount());

    // The warm-started surface still tracks ground truth reasonably:
    // compare against the exhaustive measurement.
    const auto &plat = power::defaultPlatform();
    cf::Profiler prof(plat, 0.0);
    perf::PerfModel model(plat, perf::workload("stream"));
    Rng rng(29);
    std::vector<double> pw, hb;
    prof.measureAll(model, pw, hb, rng);
    double err = 0.0;
    for (std::size_t c = 0; c < pw.size(); ++c)
        err += std::abs(surface.power[c] - pw[c]) / pw[c];
    err /= static_cast<double>(pw.size());
    EXPECT_LT(err, 0.15); // mean relative power error under 15%
}

TEST(SurfaceCache, ShrunkOrDisjointMaskRefitsCold)
{
    cf::UtilityEstimator est = corpusEstimator("stream");
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < est.columnCount(); c += 9)
        cols.push_back(c);

    cf::FitState state;
    est.estimate(measureColumns("stream", cols), &state, nullptr);

    std::vector<std::size_t> shifted;
    for (std::size_t c = 1; c < est.columnCount(); c += 9)
        shifted.push_back(c);
    cf::FitOutcome out;
    est.estimate(measureColumns("stream", shifted), &state, &out);
    EXPECT_FALSE(out.cacheHit);
    EXPECT_FALSE(out.warmStarted);
}

// --- LearningPipeline telemetry contract ------------------------------------

TEST(LearningPipeline, CacheHitSkipsTheFitTimer)
{
    sim::Server server;
    core::LearningConfig lc;
    // Sampling the full knob space makes the mask deterministic, so
    // the second calibration of the same app repeats it exactly.
    lc.sampleFraction = 1.0;
    core::Telemetry tel;
    core::LearningPipeline pipe(server, lc, &tel);
    pipe.seedCorpus(perf::workloadLibrary());

    int id = server.admit(perf::workload("kmeans"));
    pipe.track(id, "kmeans");
    EXPECT_FALSE(pipe.startCalibration(id));
    server.run(toTicks(10.0));
    ASSERT_EQ(pipe.finishDueCalibrations().size(), 1u);
    EXPECT_EQ(tel.counter("learning.als_fits"), 1u);
    EXPECT_EQ(tel.timer("learning.als_fit").count, 1u);
    EXPECT_EQ(tel.counter("learning.surface_cache_hits"), 0u);
    EXPECT_GT(tel.counter("learning.als_sweeps"), 0u);

    // Recalibrate with the identical (exhaustive) mask: the surface
    // is served from the cache — zero sweeps, fit timer untouched.
    EXPECT_FALSE(pipe.startCalibration(id));
    server.run(toTicks(10.0));
    ASSERT_EQ(pipe.finishDueCalibrations().size(), 1u);
    EXPECT_EQ(tel.counter("learning.surface_cache_hits"), 1u);
    EXPECT_EQ(tel.counter("learning.als_fits"), 1u);
    EXPECT_EQ(tel.timer("learning.als_fit").count, 1u);
    EXPECT_TRUE(pipe.calibrated(id));
}

// --- Determinism guard ------------------------------------------------------

cluster::ClusterResult
replayAt(unsigned width, cluster::ClusterPolicy policy)
{
    ScopedPoolWidth pool(width);
    cluster::ClusterConfig cfg;
    cfg.policy = policy;
    cfg.servers = 4;
    cluster::ClusterManager cm(cfg);
    cm.populateDefault();

    cluster::TraceConfig tc;
    tc.points = 4;
    tc.interval = toTicks(5.0);
    cluster::PowerTrace demand = cluster::generateDiurnalDemand(tc);
    cluster::PowerTrace caps = cluster::loadFollowingCaps(
        demand, cm.uncappedDemandEstimate(), 0.25);
    return cm.replay(caps);
}

TEST(DeterminismGuard, ClusterManagerParallelMatchesSerialBitForBit)
{
    for (cluster::ClusterPolicy policy :
         {cluster::ClusterPolicy::EqualOurs,
          cluster::ClusterPolicy::EqualRapl}) {
        cluster::ClusterResult serial = replayAt(1, policy);
        cluster::ClusterResult parallel = replayAt(4, policy);
        EXPECT_EQ(serial.totalEnergy, parallel.totalEnergy);
        EXPECT_EQ(serial.aggregatePerf, parallel.aggregatePerf);
        EXPECT_EQ(serial.avgClusterPower, parallel.avgClusterPower);
        EXPECT_EQ(serial.capViolationFraction,
                  parallel.capViolationFraction);
        EXPECT_EQ(serial.perfPerKw, parallel.perfPerKw);
    }
}

struct SchedulerOutcome
{
    double meanCompletion = 0.0;
    double p95Completion = 0.0;
    Watts avgPower = 0.0;
    std::size_t unfinished = 0;
    Joules energy = 0.0;
};

SchedulerOutcome
scheduleAt(unsigned width)
{
    ScopedPoolWidth pool(width);
    cluster::SchedulerConfig cfg;
    cfg.servers = 3;
    cluster::ClusterScheduler sched(cfg);
    sched.generateWorkload(6, 4.0, 8.0);
    sched.run(toTicks(120.0));

    SchedulerOutcome out;
    out.meanCompletion = sched.meanCompletionSeconds();
    out.p95Completion = sched.p95CompletionSeconds();
    out.avgPower = sched.averageClusterPower();
    out.unfinished = sched.unfinished();
    return out;
}

TEST(DeterminismGuard, ShardSizeAndWidthDoNotAffectReplayResults)
{
    // The pool partitions its nodes into telemetry shards by
    // shardSize alone (never thread count), and everything the step
    // path publishes is a commutative aggregate — so any (shardSize,
    // width) combination must replay bit-identically, including a
    // ragged final shard.
    auto replayWithShards = [](unsigned width, int shard_size) {
        ScopedPoolWidth pool(width);
        cluster::ClusterConfig cfg;
        cfg.servers = 5;
        cfg.shardSize = shard_size;
        cluster::ClusterManager cm(cfg);
        cm.populateDefault();
        cluster::PowerTrace caps;
        caps.interval = toTicks(5.0);
        caps.values = {160.0, 140.0, 170.0};
        cluster::ClusterResult res = cm.replay(caps);
        core::Telemetry tel = cm.aggregateTelemetry();
        // Sharding must not swallow per-node observations: still one
        // per (node, interval).
        EXPECT_EQ(tel.timer("cluster.node_step").count, 15u);
        return std::tuple(res.totalEnergy, res.aggregatePerf,
                          res.avgClusterPower);
    };
    auto base = replayWithShards(1, 1);
    EXPECT_EQ(base, replayWithShards(1, 64));
    EXPECT_EQ(base, replayWithShards(4, 1));
    EXPECT_EQ(base, replayWithShards(4, 2)); // ragged final shard
}

TEST(DeterminismGuard, SchedulerParallelMatchesSerialBitForBit)
{
    SchedulerOutcome serial = scheduleAt(1);
    SchedulerOutcome parallel = scheduleAt(4);
    EXPECT_EQ(serial.meanCompletion, parallel.meanCompletion);
    EXPECT_EQ(serial.p95Completion, parallel.p95Completion);
    EXPECT_EQ(serial.avgPower, parallel.avgPower);
    EXPECT_EQ(serial.unfinished, parallel.unfinished);
}

TEST(DeterminismGuard, AlsFitIsWidthInvariant)
{
    auto fitAt = [](unsigned width) {
        ScopedPoolWidth pool(width);
        cf::UtilityEstimator est = corpusEstimator("stream");
        std::vector<std::size_t> cols;
        for (std::size_t c = 0; c < est.columnCount(); c += 7)
            cols.push_back(c);
        return est.estimate(measureColumns("stream", cols));
    };
    cf::UtilitySurface serial = fitAt(1);
    cf::UtilitySurface parallel = fitAt(4);
    ASSERT_EQ(serial.power.size(), parallel.power.size());
    for (std::size_t c = 0; c < serial.power.size(); ++c) {
        EXPECT_EQ(serial.power[c], parallel.power[c]);
        EXPECT_EQ(serial.hbRate[c], parallel.hbRate[c]);
    }
}

// --- Cluster step telemetry -------------------------------------------------

TEST(ClusterTelemetry, PerIntervalStepTimersAreObserved)
{
    cluster::ClusterConfig cfg;
    cfg.servers = 2;
    cluster::ClusterManager cm(cfg);
    cm.populateDefault();

    cluster::PowerTrace caps;
    caps.interval = toTicks(5.0);
    caps.values.assign(3, 150.0);
    cm.replay(caps);

    core::Telemetry tel = cm.aggregateTelemetry();
    // One whole-interval observation per cap value, one per-node
    // observation per (node, interval).
    EXPECT_EQ(tel.timer("cluster.step").count, 3u);
    EXPECT_EQ(tel.timer("cluster.node_step").count, 6u);
}

} // namespace
} // namespace psm
