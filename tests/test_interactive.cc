/**
 * @file
 * Tests for the latency-critical (interactive) application class:
 * profile validation and library, open-loop request-queue determinism
 * and its M/M/1 closed-form cross-check, bit-identical replay across
 * thread widths and shard sizes, checked cluster-configuration
 * errors, and the v2 wire fields (app class + SLO).
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster_manager.hh"
#include "cluster/node_pool.hh"
#include "core/manager.hh"
#include "core/utility_curve.hh"
#include "perf/latency.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "serve/protocol.hh"
#include "sim/request_queue.hh"
#include "sim/server.hh"
#include "util/thread_pool.hh"

namespace psm
{
namespace
{

TEST(InteractiveProfile, LibraryIsCalibratedAndValid)
{
    const auto &lib = perf::interactiveLibrary();
    ASSERT_GE(lib.size(), 3u);
    for (const perf::AppProfile &p : lib) {
        EXPECT_TRUE(p.interactive());
        EXPECT_GT(p.offeredLoad, 0.0);
        EXPECT_GT(p.hbPerRequest, 0.0);
        EXPECT_GT(p.sloP99, 0.0);
        p.validate(); // must not die
        // The calibration leaves the uncapped queue stable: the SLO
        // knee is attainable at full power.
        perf::PerfModel model(power::defaultPlatform(), p);
        EXPECT_LT(p.offeredLoad, p.serviceRate(model.maxHbRate()));
    }
}

TEST(InteractiveProfile, ValidationCatchesHalfBuiltProfiles)
{
    perf::AppProfile p = perf::interactiveLibrary()[0];
    p.offeredLoad = 0.0;
    EXPECT_DEATH(p.validate(), "offeredLoad");

    // Interactive fields on a batch profile are equally a bug.
    perf::AppProfile batch = perf::workload("stream");
    batch.sloP99 = 0.1;
    EXPECT_DEATH(batch.validate(), "interactive");
}

TEST(InteractiveProfile, LookupDiagnosticsListValidNames)
{
    EXPECT_TRUE(perf::hasWorkload("stream"));
    EXPECT_TRUE(perf::hasWorkload("websearch"));
    EXPECT_FALSE(perf::hasWorkload("webesearch"));
    // Both classes appear in the advertised name list.
    std::string names = perf::workloadNames();
    EXPECT_NE(names.find("stream"), std::string::npos);
    EXPECT_NE(names.find("websearch"), std::string::npos);
    // A typo dies with the valid names, not a bare "unknown".
    EXPECT_DEATH(perf::workload("webesearch"), "expected one of");
}

TEST(RequestQueue, DeterministicForIdenticalStepSequences)
{
    const perf::AppProfile &p = perf::interactiveLibrary()[0];
    sim::RequestQueue a(p, 42);
    sim::RequestQueue b(p, 42);
    // Heartbeat rate placing the queue at rho = 0.6.
    double rate = p.offeredLoad * p.hbPerRequest / 0.6;
    Tick t = 0;
    for (int i = 0; i < 50; ++i) {
        Tick next = t + toTicks(0.5);
        a.advance(t, next, rate);
        b.advance(t, next, rate);
        t = next;
    }
    EXPECT_GT(a.completed(), 0u);
    EXPECT_EQ(a.arrivals(), b.arrivals());
    EXPECT_EQ(a.completed(), b.completed());
    EXPECT_EQ(a.sloViolations(), b.sloViolations());
    EXPECT_EQ(a.p99(), b.p99());
    EXPECT_EQ(a.meanResponse(), b.meanResponse());
}

TEST(RequestQueue, ArrivalsAccumulateWhileServiceIsStalled)
{
    const perf::AppProfile &p = perf::interactiveLibrary()[0];
    sim::RequestQueue q(p, 7);
    q.advance(0, toTicks(5.0), 0.0);
    EXPECT_GT(q.arrivals(), 0u);
    EXPECT_EQ(q.completed(), 0u);
    EXPECT_EQ(q.depth(), q.arrivals());
}

TEST(RequestQueue, AgreesWithLatencyModelAtLowUtilization)
{
    // At a constant heartbeat rate the queue is exactly M/M/1;
    // perf::LatencyModel is its closed form.  bench_slo --check
    // enforces a tighter tolerance over longer runs.
    perf::AppProfile p = perf::interactiveLibrary()[1];
    const double mu = 500.0;
    const double rho = 0.4;
    p.offeredLoad = rho * mu;
    p.sloP99 = perf::LatencyModel::p99(mu, p.offeredLoad);
    p.validate();

    sim::RequestQueue q(p, 12345);
    q.advance(0, toTicks(300.0), mu * p.hbPerRequest);
    ASSERT_GT(q.completed(), 10000u);
    EXPECT_NEAR(q.p99(), p.sloP99, 0.2 * p.sloP99);
    double mean = perf::LatencyModel::meanSojourn(mu, p.offeredLoad);
    EXPECT_NEAR(q.meanResponse(), mean, 0.2 * mean);
}

TEST(InteractiveSlo, FromProfileOnlyValidForInteractive)
{
    core::InteractiveSlo batch =
        core::InteractiveSlo::fromProfile(perf::workload("stream"));
    EXPECT_FALSE(batch.valid());
    const perf::AppProfile &ip = perf::interactiveLibrary()[2];
    core::InteractiveSlo slo = core::InteractiveSlo::fromProfile(ip);
    ASSERT_TRUE(slo.valid());
    EXPECT_DOUBLE_EQ(slo.offeredLoad, ip.offeredLoad);
    EXPECT_DOUBLE_EQ(slo.hbPerRequest, ip.hbPerRequest);
    EXPECT_DOUBLE_EQ(slo.sloP99, ip.sloP99);
}

/** Fingerprint of every record's request statistics. */
std::vector<double>
recordStats(cluster::NodePool &pool)
{
    std::vector<double> out;
    for (auto &node : pool) {
        for (const core::AppRecord &rec : node.manager->records()) {
            out.push_back(rec.beats);
            out.push_back(static_cast<double>(rec.requestArrivals));
            out.push_back(
                static_cast<double>(rec.requestCompletions));
            out.push_back(
                static_cast<double>(rec.requestSloViolations));
            out.push_back(rec.requestP99);
            out.push_back(rec.requestMeanResponse);
        }
    }
    return out;
}

std::vector<double>
mixedPoolRun(int shard_size)
{
    cluster::NodePoolConfig pc;
    pc.servers = 3;
    pc.manager.oracleUtilities = true;
    pc.seedWorkloadCorpus = false;
    pc.seedBase = 5;
    pc.serverCap = 95.0;
    pc.shardSize = shard_size;
    cluster::NodePool pool(pc);
    const auto &ilib = perf::interactiveLibrary();
    const char *batch[] = {"stream", "kmeans", "x264"};
    for (std::size_t s = 0; s < pool.size(); ++s) {
        pool[s].manager->addApp(ilib[s % ilib.size()]);
        pool[s].manager->addApp(perf::workload(batch[s]));
    }
    pool.runAll(toTicks(4.0));
    for (auto &node : pool)
        node.manager->setCap(75.0);
    pool.runAll(toTicks(4.0));
    return recordStats(pool);
}

TEST(InteractiveDeterminism, BitIdenticalAcrossWidthsAndShards)
{
    struct ScopedPoolWidth
    {
        explicit ScopedPoolWidth(unsigned width)
        {
            util::ThreadPool::configureGlobal(width);
        }
        ~ScopedPoolWidth() { util::ThreadPool::configureGlobal(0); }
    };

    std::vector<double> reference;
    for (unsigned width : {1u, 4u}) {
        ScopedPoolWidth scoped(width);
        for (int shard : {1, 64}) {
            std::vector<double> stats = mixedPoolRun(shard);
            if (reference.empty()) {
                reference = stats;
                // The scenario must actually exercise the queues.
                double completions = 0.0;
                for (std::size_t i = 2; i < stats.size(); i += 6)
                    completions += stats[i];
                EXPECT_GT(completions, 0.0);
            } else {
                ASSERT_EQ(stats.size(), reference.size());
                for (std::size_t i = 0; i < stats.size(); ++i)
                    EXPECT_EQ(stats[i], reference[i])
                        << "width " << width << " shard " << shard
                        << " stat " << i;
            }
        }
    }
}

TEST(ClusterConfigValidate, ChecksNamesPoliciesAndRanges)
{
    cluster::ClusterConfig good;
    good.corpusWorkloads = {"stream", "websearch"};
    good.interactivePerServer = 1;
    std::string err;
    EXPECT_TRUE(good.validate(&err)) << err;

    cluster::ClusterConfig bad = good;
    bad.corpusWorkloads = {"stream", "webesearch"};
    ASSERT_FALSE(bad.validate(&err));
    // The checked error names the offender and lists valid names
    // (satellite of the fatal()-on-typo corpus-seeding bug).
    EXPECT_NE(err.find("webesearch"), std::string::npos);
    EXPECT_NE(err.find("stream"), std::string::npos);
    EXPECT_NE(err.find("websearch"), std::string::npos);

    cluster::ClusterConfig bad_policy = good;
    bad_policy.managedPolicy = "no-such-policy";
    ASSERT_FALSE(bad_policy.validate(&err));
    EXPECT_NE(err.find("no-such-policy"), std::string::npos);
    EXPECT_NE(err.find("app-res-esd-aware"), std::string::npos);

    cluster::ClusterConfig bad_range = good;
    bad_range.interactivePerServer = 3;
    EXPECT_FALSE(bad_range.validate(&err));
    bad_range.interactivePerServer = -1;
    EXPECT_FALSE(bad_range.validate(&err));
    bad_range.servers = 0;
    bad_range.interactivePerServer = 0;
    EXPECT_FALSE(bad_range.validate(&err));

    // validate(nullptr) is legal (existence check only).
    EXPECT_FALSE(bad.validate(nullptr));

    // The constructor defends with the same diagnostic for callers
    // that skipped validate().
    EXPECT_DEATH(cluster::ClusterManager mgr(bad), "expected one of");
}

TEST(InteractiveCluster, MixedPopulationReplaysUnderEachPolicy)
{
    for (cluster::ClusterPolicy policy :
         {cluster::ClusterPolicy::EqualOurs,
          cluster::ClusterPolicy::ConsolidationMigration}) {
        cluster::ClusterConfig cfg;
        cfg.policy = policy;
        cfg.servers = 3;
        cfg.interactivePerServer = 1;
        cfg.migrationDowntime = toTicks(2.0);
        cfg.serverBootDelay = toTicks(2.0);
        cluster::ClusterManager cm(cfg);
        cm.populateDefault();
        EXPECT_EQ(cm.appCount(), 6u); // still two per server

        cluster::PowerTrace caps;
        caps.interval = toTicks(5.0);
        Watts demand = cm.uncappedDemandEstimate();
        caps.values = {demand, demand * 0.6, demand * 0.8};
        cluster::ClusterResult r = cm.replay(caps);
        EXPECT_EQ(r.duration, caps.duration());
        EXPECT_GT(r.aggregatePerf, 0.0);
        EXPECT_LE(r.aggregatePerf, 1.01);
        EXPECT_GT(r.avgClusterPower, 0.0);
    }
}

TEST(ServeWire, EventRequestCarriesClassAndSlo)
{
    serve::EventRequest ev;
    ev.op = serve::EventOp::Arrival;
    ev.appClass = serve::AppClass::Interactive;
    ev.workload = 1;
    ev.sloP99 = 0.25;
    std::vector<std::uint8_t> bytes = serve::encodeEventRequest(ev);
    serve::EventRequest back;
    ASSERT_TRUE(serve::decodeEventRequest(bytes, back));
    EXPECT_EQ(back.appClass, serve::AppClass::Interactive);
    EXPECT_DOUBLE_EQ(back.sloP99, 0.25);

    // An out-of-range class byte is rejected at decode.  The class
    // is the last-but-9th byte (u8 class + f64 slo close the frame).
    std::vector<std::uint8_t> mutated = bytes;
    mutated[mutated.size() - 9] = 77;
    EXPECT_FALSE(serve::decodeEventRequest(mutated, back));

    // A non-finite SLO is rejected at decode.
    serve::EventRequest inf_ev = ev;
    inf_ev.sloP99 = std::numeric_limits<double>::infinity();
    std::vector<std::uint8_t> inf_bytes =
        serve::encodeEventRequest(inf_ev);
    EXPECT_FALSE(serve::decodeEventRequest(inf_bytes, back));

    // Truncated v1-style frames (no class/SLO tail) fail loudly.
    std::vector<std::uint8_t> truncated(
        bytes.begin(), bytes.end() - 9);
    EXPECT_FALSE(serve::decodeEventRequest(truncated, back));
}

TEST(ManagerInteractive, RecordsTrackQueueAndSloAttainment)
{
    sim::Server server;
    server.setCap(100.0);
    core::ManagerConfig cfg;
    cfg.oracleUtilities = true;
    core::ServerManager manager(server, cfg);
    int iid = manager.addApp(perf::interactiveLibrary()[1]);
    manager.addApp(perf::workload("stream"));
    manager.run(toTicks(20.0));

    bool found = false;
    for (const core::AppRecord &rec : manager.records()) {
        if (rec.id != iid) {
            EXPECT_FALSE(rec.interactive);
            continue;
        }
        found = true;
        EXPECT_TRUE(rec.interactive);
        EXPECT_GT(rec.sloP99, 0.0);
        EXPECT_GT(rec.requestArrivals, 0u);
        EXPECT_GT(rec.requestCompletions, 0u);
        EXPECT_GT(rec.requestP99, 0.0);
        // An interactive service is judged on SLO attainment and
        // never "finishes".
        EXPECT_FALSE(rec.done);
        EXPECT_LE(rec.normalizedPerf(server.now()), 1.0);
        EXPECT_GT(rec.normalizedPerf(server.now()), 0.0);
    }
    EXPECT_TRUE(found);
    // The interactive.* trace events surfaced on the bus.
    EXPECT_GT(manager.telemetry().counter("interactive.arrivals"),
              0u);
    EXPECT_GT(manager.telemetry().counter("interactive.completions"),
              0u);
}

} // namespace
} // namespace psm
