/**
 * @file
 * Tests for the simulation substrate: event queue, application
 * runtime and the server.
 */

#include <gtest/gtest.h>

#include <vector>

#include "perf/workloads.hh"
#include "sim/application.hh"
#include "sim/event_queue.hh"
#include "sim/server.hh"

namespace psm::sim
{
namespace
{

using perf::workload;
using power::defaultPlatform;

// --- EventQueue -----------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(toTicks(2.0), [&](Tick) { order.push_back(2); });
    q.schedule(toTicks(1.0), [&](Tick) { order.push_back(1); });
    q.schedule(toTicks(3.0), [&](Tick) { order.push_back(3); });
    EXPECT_EQ(q.runUntil(toTicks(2.5)), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.nextEventTime(), toTicks(3.0));
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&, i](Tick) { order.push_back(i); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&](Tick when) {
        ++fired;
        q.schedule(when + 5, [&](Tick) { ++fired; });
    });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyQueueReportsMaxTick)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventTime(), maxTick);
    EXPECT_EQ(q.runUntil(1000), 0u);
}

// --- Application ------------------------------------------------------------

class ApplicationTest : public ::testing::Test
{
  protected:
    const power::PlatformConfig &plat = defaultPlatform();
};

TEST_F(ApplicationTest, MakesProgressWhileRunning)
{
    Application app(1, 0, plat, workload("kmeans"));
    EXPECT_TRUE(app.running());
    AppStepResult res = app.step(0, ticksPerSecond);
    EXPECT_GT(res.beats, 0.0);
    EXPECT_GT(app.progress(), 0.0);
    EXPECT_GT(app.heartbeats().total(), 0.0);
}

TEST_F(ApplicationTest, SuspendedAppMakesNoProgress)
{
    Application app(1, 0, plat, workload("kmeans"));
    app.suspend(0);
    EXPECT_EQ(app.state(), AppState::Suspended);
    AppStepResult res = app.step(0, ticksPerSecond);
    EXPECT_DOUBLE_EQ(res.beats, 0.0);
    EXPECT_DOUBLE_EQ(res.op.totalPower(), 0.0);
}

TEST_F(ApplicationTest, ResumePaysWarmupPenalty)
{
    Application app(1, 0, plat, workload("bfs"));
    // Burn through the initial cold-start warm-up first.
    while (app.warmupRemaining() > 0)
        app.step(0, ticksPerMs * 10);
    AppStepResult warm = app.step(0, ticksPerMs * 10);

    app.suspend(toTicks(10.0));
    app.resume(toTicks(12.0));
    EXPECT_GT(app.warmupRemaining(), 0u);
    EXPECT_EQ(app.suspendedTime(), toTicks(2.0));
    AppStepResult cold = app.step(toTicks(12.0), ticksPerMs * 10);
    EXPECT_LT(cold.beats, warm.beats);
}

TEST_F(ApplicationTest, KnobsAreClamped)
{
    Application app(1, 0, plat, workload("x264"));
    app.setKnobs({9.9, 99, 99.0});
    EXPECT_DOUBLE_EQ(app.knobs().freq, plat.freqMax);
    EXPECT_EQ(app.knobs().cores, plat.coresMaxPerApp);
    EXPECT_DOUBLE_EQ(app.knobs().dramPower, plat.dramPowerMax);
}

TEST_F(ApplicationTest, FinishesAfterAllHeartbeats)
{
    perf::AppProfile small = workload("kmeans");
    small.totalHeartbeats = 50.0;
    Application app(1, 0, plat, small);
    Tick t = 0;
    while (!app.finished() && t < toTicks(60.0)) {
        app.step(t, ticksPerMs * 100);
        t += ticksPerMs * 100;
    }
    EXPECT_TRUE(app.finished());
    EXPECT_NEAR(app.progress(), 1.0, 1e-9);
    EXPECT_NEAR(app.heartbeats().total(), 50.0, 1e-6);
    // A finished app makes no further progress.
    AppStepResult res = app.step(t, ticksPerSecond);
    EXPECT_DOUBLE_EQ(res.beats, 0.0);
}

TEST_F(ApplicationTest, PhasesChangeTheOperatingPoint)
{
    perf::AppProfile p = workload("kmeans");
    p.totalHeartbeats = 1000.0;
    Application app(1, 0, plat, p);
    app.setPhases({{0.5, 1.0, 1.0}, {1.0, 1.0, 30.0}});

    // First phase: compute bound.
    EXPECT_DOUBLE_EQ(app.currentPhase().memScale, 1.0);
    while (app.progress() < 0.55 && !app.finished())
        app.step(0, ticksPerMs * 100);
    // Second phase: memory traffic exploded.
    EXPECT_DOUBLE_EQ(app.currentPhase().memScale, 30.0);
    AppStepResult res = app.step(0, ticksPerMs * 100);
    EXPECT_GT(res.op.memBandwidth, 1.0);
}

TEST_F(ApplicationTest, StateNames)
{
    EXPECT_EQ(appStateName(AppState::Running), "running");
    EXPECT_EQ(appStateName(AppState::Suspended), "suspended");
    EXPECT_EQ(appStateName(AppState::Finished), "finished");
}

// --- Server ------------------------------------------------------------------

TEST(Server, AdmitAssignsDistinctSockets)
{
    Server server;
    int a = server.admit(workload("stream"));
    int b = server.admit(workload("kmeans"));
    EXPECT_NE(server.app(a).socket(), server.app(b).socket());
    EXPECT_EQ(server.freeSockets(), 0);
    EXPECT_TRUE(server.hasApp(a));
    server.remove(a);
    EXPECT_FALSE(server.hasApp(a));
    EXPECT_EQ(server.freeSockets(), 1);
}

TEST(ServerDeath, OverAdmissionIsFatal)
{
    Server server;
    server.admit(workload("stream"));
    server.admit(workload("kmeans"));
    EXPECT_DEATH(server.admit(workload("bfs")), "no free socket");
}

TEST(Server, IdleServerDrawsIdlePower)
{
    Server server;
    server.setCap(100.0);
    server.run(toTicks(1.0));
    EXPECT_NEAR(server.meter().averagePower(),
                defaultPlatform().idlePower, 1e-6);
}

TEST(Server, UncappedPairDrawsAboutPaperNumbers)
{
    Server server;
    server.admit(workload("stream"));
    server.admit(workload("kmeans"));
    server.run(toTicks(5.0));
    // Section II-A's worked example: ~110 W.
    EXPECT_NEAR(server.meter().averagePower(), 110.0, 8.0);
}

TEST(Server, SuspendingAllAppsDropsUncore)
{
    Server server;
    int a = server.admit(workload("kmeans"));
    server.app(a).suspend(0);
    server.run(toTicks(1.0));
    // Only P_idle: packages are in PC6.
    EXPECT_NEAR(server.meter().averagePower(),
                defaultPlatform().idlePower, 1e-6);
}

TEST(Server, PackageLimitThrottlesAppPower)
{
    Server free_server;
    int a0 = free_server.admit(workload("kmeans"));
    free_server.run(toTicks(3.0));
    Watts unthrottled = free_server.observedAppPower(a0);

    Server server;
    int a = server.admit(workload("kmeans"));
    server.setPackageLimit(server.app(a).socket(), 6.0);
    server.run(toTicks(3.0));
    Watts throttled = server.observedAppPower(a);
    EXPECT_LT(throttled, unthrottled - 3.0);
    // The RAPL loop should converge near the limit + DRAM share.
    Watts pkg = throttled - server.observedAppDramPower(a);
    EXPECT_NEAR(pkg, 6.0, 1.0);
}

TEST(Server, StepReportsFinishedApps)
{
    perf::AppProfile tiny = workload("kmeans");
    tiny.totalHeartbeats = 10.0;
    Server server;
    int id = server.admit(tiny);
    std::vector<int> finished = server.run(toTicks(10.0));
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0], id);
}

TEST(Server, EsdBridgesOverCapDraw)
{
    Server server;
    esd::BatteryConfig esd = esd::leadAcidUps();
    esd.initialSoc = 1.0;
    server.attachEsd(esd);
    ASSERT_TRUE(server.hasEsd());
    server.setCap(90.0); // pair draws ~110 W -> ~20 W deficit
    server.admit(workload("stream"));
    server.admit(workload("kmeans"));
    server.run(toTicks(5.0));
    // The battery covered the deficit: wall power stays near the cap
    // and stored energy went down.
    EXPECT_NEAR(server.meter().averagePower(), 90.0, 3.0);
    EXPECT_LT(server.battery()->soc(), 1.0);
}

TEST(Server, EsdChargesOnlyWhenEnabled)
{
    Server server;
    server.attachEsd(esd::leadAcidUps());
    server.setCap(80.0);
    server.setEsdChargeEnabled(false);
    server.run(toTicks(2.0));
    EXPECT_NEAR(server.battery()->soc(), 0.0, 1e-9);

    server.setEsdChargeEnabled(true);
    server.run(toTicks(2.0));
    // Idle draw 50 W under an 80 W cap leaves 30 W of headroom.
    EXPECT_GT(server.battery()->stored(), 30.0);
    // And the wall shows the charging draw.
    EXPECT_GT(server.meter().averagePower(), 55.0);
}

TEST(Server, ObservedServerPowerTracksMeter)
{
    Server server;
    server.admit(workload("x264"));
    server.run(toTicks(3.0));
    EXPECT_NEAR(server.observedServerPower(),
                server.meter().averagePower(), 5.0);
}

} // namespace
} // namespace psm::sim
