/**
 * @file
 * Tests for application profiles, the workload library (Table II) and
 * the roofline performance model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "perf/app_profile.hh"
#include "perf/heartbeats.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "power/platform.hh"

namespace psm::perf
{
namespace
{

using power::defaultPlatform;
using power::KnobSetting;

// --- Profiles and the library ------------------------------------------

TEST(AppProfile, TypeNames)
{
    EXPECT_EQ(appTypeName(AppType::Graph), "graph");
    EXPECT_EQ(appTypeName(AppType::Memory), "memory");
    EXPECT_EQ(appTypeName(AppType::Media), "media");
}

TEST(AppProfileDeath, ValidationCatchesBadParameters)
{
    AppProfile p = workload("kmeans");
    p.parallelFraction = 1.5;
    EXPECT_DEATH(p.validate(), "parallelFraction");

    AppProfile q = workload("kmeans");
    q.cpuSecPerHb = 0.0;
    EXPECT_DEATH(q.validate(), "cpuSecPerHb");

    AppProfile r = workload("kmeans");
    r.overlap = -0.1;
    EXPECT_DEATH(r.validate(), "overlap");
}

TEST(Workloads, LibraryHasTwelveApps)
{
    EXPECT_EQ(workloadLibrary().size(), 12u);
    for (const auto &p : workloadLibrary())
        EXPECT_NO_FATAL_FAILURE(p.validate());
}

TEST(Workloads, TableTwoHasFifteenMixesOfKnownApps)
{
    const auto &mixes = tableTwoMixes();
    ASSERT_EQ(mixes.size(), 15u);
    for (const auto &m : mixes) {
        EXPECT_TRUE(hasWorkload(m.app1)) << m.app1;
        EXPECT_TRUE(hasWorkload(m.app2)) << m.app2;
        EXPECT_NE(m.app1, m.app2);
    }
    // Spot-check paper rows: mix 1 is STREAM+kmeans, mix 10 is
    // PageRank+kmeans, mix 14 is X264+SSSP.
    EXPECT_EQ(mix(1).app1, "stream");
    EXPECT_EQ(mix(1).app2, "kmeans");
    EXPECT_EQ(mix(10).app1, "pagerank");
    EXPECT_EQ(mix(14).app2, "sssp");
}

TEST(WorkloadsDeath, UnknownNamesAreFatal)
{
    EXPECT_DEATH(workload("quake3"), "unknown workload");
    EXPECT_DEATH(mix(0), "Table II");
    EXPECT_DEATH(mix(16), "Table II");
}

TEST(Workloads, ClassesMatchThePaper)
{
    EXPECT_EQ(workload("stream").type, AppType::Memory);
    EXPECT_EQ(workload("kmeans").type, AppType::Analytics);
    EXPECT_EQ(workload("bfs").type, AppType::Graph);
    EXPECT_EQ(workload("pagerank").type, AppType::Search);
    EXPECT_EQ(workload("x264").type, AppType::Media);
}

// --- Calibration against the paper's constants --------------------------

TEST(Calibration, IsolatedAppPowerIsAboutTwentyWatts)
{
    // Section II-A: one application adds ~20 W of dynamic power.
    for (const auto &p : workloadLibrary()) {
        PerfModel m(defaultPlatform(), p);
        EXPECT_GT(m.maxPower(), 14.0) << p.name;
        EXPECT_LT(m.maxPower(), 25.0) << p.name;
    }
}

TEST(Calibration, ColocatedUncappedDrawIsAbout110Watts)
{
    // Section II-A: P_idle + P_cm + 20 + 20 = 110 W.
    const auto &plat = defaultPlatform();
    PerfModel a(plat, workload("stream"));
    PerfModel b(plat, workload("kmeans"));
    double wall = plat.idlePower + plat.cmPower + a.maxPower() +
                  b.maxPower();
    EXPECT_NEAR(wall, 110.0, 6.0);
}

TEST(Calibration, TwoAppMinimaExceedTheEightyWattBudget)
{
    // Section IV-B: at P_cap = 80 W the 10 W dynamic budget cannot
    // host both applications at once.
    const auto &plat = defaultPlatform();
    for (const auto &mx : tableTwoMixes()) {
        PerfModel a(plat, workload(mx.app1));
        PerfModel b(plat, workload(mx.app2));
        EXPECT_GT(a.minPower() + b.minPower(), 10.0) << "mix "
                                                     << mx.id;
    }
}

// --- PerfModel properties ----------------------------------------------

class PerfModelPerApp : public ::testing::TestWithParam<std::string>
{
  protected:
    const power::PlatformConfig &plat = defaultPlatform();
    PerfModel model{plat, workload(GetParam())};
};

TEST_P(PerfModelPerApp, PerfNormIsOneAtMaxSetting)
{
    OperatingPoint op = model.evaluate(plat.maxSetting());
    EXPECT_NEAR(op.perfNorm, 1.0, 1e-9);
    EXPECT_NEAR(op.hbRate, model.maxHbRate(), 1e-9);
}

TEST_P(PerfModelPerApp, MonotoneInEachKnob)
{
    // More frequency never hurts.
    double prev = 0.0;
    for (GHz f : plat.freqLevels()) {
        double hb = model.evaluate({f, 6, 10.0}).hbRate;
        EXPECT_GE(hb, prev - 1e-9) << "f=" << f;
        prev = hb;
    }
    // More cores never hurt.
    prev = 0.0;
    for (int n : plat.coreLevels()) {
        double hb = model.evaluate({2.0, n, 10.0}).hbRate;
        EXPECT_GE(hb, prev - 1e-9) << "n=" << n;
        prev = hb;
    }
    // More DRAM budget never hurts.
    prev = 0.0;
    for (Watts m : plat.dramLevels()) {
        double hb = model.evaluate({2.0, 6, m}).hbRate;
        EXPECT_GE(hb, prev - 1e-9) << "m=" << m;
        prev = hb;
    }
}

TEST_P(PerfModelPerApp, PowerComponentsArePositiveAndBounded)
{
    for (const auto &s : plat.knobSpace()) {
        OperatingPoint op = model.evaluate(s);
        EXPECT_GT(op.hbRate, 0.0);
        EXPECT_GE(op.corePower, 0.0);
        EXPECT_GE(op.dramPower, plat.dramPowerMin - 1e-9);
        EXPECT_LE(op.dramPower,
                  std::max(s.dramPower, plat.dramPowerMin + 0.2));
        EXPECT_GT(op.totalPower(), 0.0);
        EXPECT_LE(op.coreUtilization, 1.0);
    }
}

TEST_P(PerfModelPerApp, ThrottlesReducePowerAndPerformance)
{
    KnobSetting max = plat.maxSetting();
    OperatingPoint base = model.evaluate(max);
    OperatingPoint throttled = model.evaluate(max, 0.5, 1.0);
    EXPECT_LT(throttled.hbRate, base.hbRate);
    EXPECT_LT(throttled.corePower, base.corePower);

    OperatingPoint bw_throttled = model.evaluate(max, 1.0, 0.3);
    EXPECT_LE(bw_throttled.hbRate, base.hbRate + 1e-9);
}

TEST_P(PerfModelPerApp, PhaseScalingShiftsTheBottleneck)
{
    KnobSetting max = plat.maxSetting();
    OperatingPoint base = model.evaluate(max);
    // Quadrupling memory traffic cannot speed the app up.
    OperatingPoint memory_heavy =
        model.evaluate(max, 1.0, 1.0, 1.0, 4.0);
    EXPECT_LT(memory_heavy.hbRate, base.hbRate + 1e-9);
    EXPECT_GE(memory_heavy.memBandwidth, 0.0);
    // Halving compute work cannot slow it down.
    OperatingPoint light = model.evaluate(max, 1.0, 1.0, 0.5, 1.0);
    EXPECT_GE(light.hbRate, base.hbRate - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, PerfModelPerApp,
    ::testing::Values("stream", "kmeans", "apr", "bfs", "connected",
                      "betweenness", "sssp", "triangle", "pagerank",
                      "x264", "facesim", "ferret"));

TEST(PerfModel, MemoryAppIsMoreDramSensitiveThanComputeApp)
{
    // The Fig. 3 premise: STREAM gains far more from DRAM watts than
    // kmeans does.
    const auto &plat = defaultPlatform();
    PerfModel stream(plat, workload("stream"));
    PerfModel kmeans(plat, workload("kmeans"));

    auto dram_gain = [&](const PerfModel &m) {
        double lo = m.evaluate({2.0, 6, 4.0}).perfNorm;
        double hi = m.evaluate({2.0, 6, 10.0}).perfNorm;
        return hi - lo;
    };
    EXPECT_GT(dram_gain(stream), 4.0 * dram_gain(kmeans));
}

TEST(PerfModel, ComputeAppIsMoreFrequencySensitive)
{
    const auto &plat = defaultPlatform();
    PerfModel stream(plat, workload("stream"));
    PerfModel kmeans(plat, workload("kmeans"));

    auto freq_gain = [&](const PerfModel &m) {
        double lo = m.evaluate({1.2, 6, 10.0}).perfNorm;
        double hi = m.evaluate({2.0, 6, 10.0}).perfNorm;
        return hi - lo;
    };
    EXPECT_GT(freq_gain(kmeans), 2.0 * freq_gain(stream));
}

// --- Heartbeats ----------------------------------------------------------

TEST(Heartbeats, TotalsAndRates)
{
    Heartbeats hb(toTicks(1.0));
    hb.emit(toTicks(0.5), toTicks(0.5), 50.0);
    hb.emit(toTicks(1.0), toTicks(0.5), 50.0);
    EXPECT_DOUBLE_EQ(hb.total(), 100.0);
    EXPECT_NEAR(hb.windowRate(), 100.0, 1e-9);
    EXPECT_NEAR(hb.lifetimeRate(), 100.0, 1e-9);
}

TEST(Heartbeats, WindowForgetsOldSamples)
{
    Heartbeats hb(toTicks(1.0));
    hb.emit(toTicks(1.0), toTicks(1.0), 100.0); // 100/s burst
    hb.emit(toTicks(3.0), toTicks(2.0), 0.0);   // then silence
    EXPECT_NEAR(hb.windowRate(), 0.0, 1e-6);
    EXPECT_NEAR(hb.lifetimeRate(), 100.0 / 3.0, 1e-6);
}

TEST(Heartbeats, ResetClears)
{
    Heartbeats hb;
    hb.emit(ticksPerSecond, ticksPerSecond, 10.0);
    hb.reset();
    EXPECT_DOUBLE_EQ(hb.total(), 0.0);
    EXPECT_DOUBLE_EQ(hb.windowRate(), 0.0);
}

} // namespace
} // namespace psm::perf
