/**
 * @file
 * Tests for the core, uncore and DRAM power models.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "power/core_power.hh"
#include "power/dram_power.hh"
#include "power/platform.hh"
#include "power/server_power.hh"
#include "power/uncore_power.hh"

namespace psm::power
{
namespace
{

class CorePowerTest : public ::testing::Test
{
  protected:
    const PlatformConfig &plat = defaultPlatform();
    CorePowerModel model{plat};
};

TEST_F(CorePowerTest, ZeroActivityDrawsNothing)
{
    EXPECT_DOUBLE_EQ(model.corePower(2.0, 0.0), 0.0);
}

TEST_F(CorePowerTest, PeakAtMaxFrequencyFullActivity)
{
    EXPECT_DOUBLE_EQ(model.corePower(plat.freqMax, 1.0),
                     plat.corePeakPower);
    EXPECT_DOUBLE_EQ(model.peakCorePower(), plat.corePeakPower);
}

TEST_F(CorePowerTest, MonotoneInFrequency)
{
    double prev = 0.0;
    for (GHz f : plat.freqLevels()) {
        double p = model.corePower(f, 1.0);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST_F(CorePowerTest, LinearInCount)
{
    EXPECT_DOUBLE_EQ(model.corePower(1.6, 0.8, 4),
                     4.0 * model.corePower(1.6, 0.8));
    EXPECT_DOUBLE_EQ(model.corePower(1.6, 0.8, 0), 0.0);
}

TEST_F(CorePowerTest, FreqFactorBounds)
{
    EXPECT_DOUBLE_EQ(model.freqFactor(plat.freqMax), 1.0);
    EXPECT_GT(model.freqFactor(plat.freqMin), 0.0);
    EXPECT_LT(model.freqFactor(plat.freqMin), 1.0);
    // Above f_max clamps.
    EXPECT_DOUBLE_EQ(model.freqFactor(10.0), 1.0);
}

TEST_F(CorePowerTest, MaxFreqWithinBudgetIsTight)
{
    // Budget exactly at the power of 1.6 GHz should return 1.6.
    double p16 = model.corePower(1.6, 1.0, 4);
    GHz f = model.maxFreqWithinBudget(p16 + 1e-6, 1.0, 4);
    EXPECT_NEAR(f, 1.6, 1e-9);
    // One microwatt less should drop a step.
    f = model.maxFreqWithinBudget(p16 - 1e-3, 1.0, 4);
    EXPECT_NEAR(f, 1.5, 1e-9);
    // Hopeless budget returns f_min.
    EXPECT_NEAR(model.maxFreqWithinBudget(0.0, 1.0, 6), plat.freqMin,
                1e-9);
}

class InverseFreqFactor : public ::testing::TestWithParam<double>
{
  protected:
    CorePowerModel model{defaultPlatform()};
};

TEST_P(InverseFreqFactor, RoundTripsThroughFreqFactor)
{
    double target = GetParam();
    double r = model.inverseFreqFactor(target);
    EXPECT_GE(r, 0.05);
    EXPECT_LE(r, 1.0);
    if (target >= model.freqFactor(0.05 * defaultPlatform().freqMax) &&
        target <= 1.0) {
        EXPECT_NEAR(model.freqFactor(r * defaultPlatform().freqMax),
                    target, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InverseFreqFactor,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0, 1.5));

TEST(UncorePower, StepFunctionOfActivity)
{
    const PlatformConfig &plat = defaultPlatform();
    UncorePowerModel model(plat);
    EXPECT_DOUBLE_EQ(model.uncorePower(true), plat.cmPower);
    EXPECT_DOUBLE_EQ(model.uncorePower(false), 0.0);
}

TEST(UncorePower, WakeEnergyMatchesLatencyWindow)
{
    const PlatformConfig &plat = defaultPlatform();
    UncorePowerModel model(plat);
    EXPECT_NEAR(model.wakeEnergy(),
                plat.cmPower * toSeconds(plat.socketWakeLatency),
                1e-9);
    EXPECT_EQ(model.wakeLatency(), plat.socketWakeLatency);
}

class DramPowerTest : public ::testing::Test
{
  protected:
    const PlatformConfig &plat = defaultPlatform();
    DramPowerModel model{plat};
};

TEST_F(DramPowerTest, BackgroundEqualsMinBudget)
{
    EXPECT_DOUBLE_EQ(model.backgroundPower(), plat.dramPowerMin);
    EXPECT_DOUBLE_EQ(model.channelPower(0.0), plat.dramPowerMin);
}

TEST_F(DramPowerTest, PowerGrowsLinearlyWithTraffic)
{
    double p1 = model.channelPower(1.0);
    double p2 = model.channelPower(2.0);
    EXPECT_NEAR(p2 - p1, plat.dramEnergyPerGBps, 1e-9);
}

TEST_F(DramPowerTest, CeilingMonotoneInBudget)
{
    double prev = 0.0;
    for (Watts m : plat.dramLevels()) {
        double bw = model.bandwidthCeiling(m);
        EXPECT_GE(bw, prev);
        EXPECT_LE(bw, plat.channelBandwidth + 1e-9);
        prev = bw;
    }
}

TEST_F(DramPowerTest, NoHeadroomStillTrickles)
{
    // Budget at/below background keeps a trickle of bandwidth.
    EXPECT_GT(model.bandwidthCeiling(plat.dramPowerMin), 0.0);
    EXPECT_GT(model.bandwidthCeiling(0.0), 0.0);
}

TEST_F(DramPowerTest, ThrottledPowerRespectsBudget)
{
    for (Watts m : plat.dramLevels()) {
        // Offered traffic far above what the budget can serve.  At
        // the floor budget the refresh trickle keeps the channel a
        // hair above it; anywhere else the budget binds exactly.
        Watts p = model.throttledPower(100.0, m);
        EXPECT_LE(p, std::max(m, model.backgroundPower() + 0.2));
        EXPECT_GE(p, model.backgroundPower() - 1e-9);
    }
}

TEST_F(DramPowerTest, ServedBandwidthNeverExceedsOffered)
{
    for (double offered : {0.0, 0.5, 3.0, 9.0, 50.0}) {
        double served = model.servedBandwidth(offered, 7.0);
        EXPECT_LE(served, offered + 1e-9);
        EXPECT_LE(served, plat.channelBandwidth + 1e-9);
    }
}

TEST(ServerPower, BreakdownArithmeticMatchesEqTwo)
{
    PowerBreakdown b;
    b.idle = 50.0;
    b.uncore = 20.0;
    b.apps.push_back({"a", 10.0, 5.0, 2.0});
    b.apps.push_back({"b", 8.0, 4.0, 2.0});
    b.esdCharge = 6.0;
    b.esdDischarge = 1.0;

    EXPECT_DOUBLE_EQ(b.appTotal(), 31.0);
    EXPECT_DOUBLE_EQ(b.serverPower(), 101.0);
    // Eq. 2: wall = server + charge - discharge.
    EXPECT_DOUBLE_EQ(b.wallPower(), 106.0);
}

TEST(ServerPower, BeginBreakdownFillsConstants)
{
    const PlatformConfig &plat = defaultPlatform();
    ServerPowerModel model(plat);
    PowerBreakdown b = model.beginBreakdown(true, 0);
    EXPECT_DOUBLE_EQ(b.idle, plat.idlePower);
    EXPECT_DOUBLE_EQ(b.uncore, plat.cmPower);
    EXPECT_TRUE(b.apps.empty());

    PowerBreakdown idle = model.beginBreakdown(false, 0);
    EXPECT_DOUBLE_EQ(idle.uncore, 0.0);
    EXPECT_DOUBLE_EQ(idle.serverPower(), plat.idlePower);
}

} // namespace
} // namespace psm::power
