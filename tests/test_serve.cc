/**
 * @file
 * Tests for the serving layer: wire framing (round trips, rejection
 * of truncated/oversized/garbage input, split-read incremental
 * decode), the payload codecs, the ServeEngine's event semantics and
 * digest determinism, the thread-pool backlog gauges, the logging
 * knob, and a deterministic end-to-end daemon exchange over a
 * socketpair — the daemon's decisions must be bit-exact against an
 * in-process ControlLoop replay of the same trace.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include "net/frame.hh"
#include "net/message_reader.hh"
#include "net/object_pool.hh"
#include "serve/client.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "serve/replay.hh"
#include "serve/service.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace psm
{
namespace
{

using net::DecodeResult;
using net::Frame;
using net::FrameReader;
using net::FrameType;
using serve::EventOp;
using serve::EventReply;
using serve::EventRequest;
using serve::ReplyStatus;
using serve::ServeEngine;
using serve::ServeService;
using serve::ServiceConfig;

// --- Framing -------------------------------------------------------

TEST(ServeFrame, RoundTripSingleFrame)
{
    std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(FrameType::Event, 42, payload, bytes);
    ASSERT_EQ(bytes.size(), net::kHeaderSize + payload.size());

    FrameReader reader;
    reader.feed(bytes);
    Frame frame;
    ASSERT_EQ(reader.next(frame), DecodeResult::Frame);
    EXPECT_EQ(frame.type, FrameType::Event);
    EXPECT_EQ(frame.requestId, 42u);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(reader.next(frame), DecodeResult::NeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeFrame, SplitReadIncrementalDecode)
{
    std::vector<std::uint8_t> payload(37, 0xab);
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(FrameType::Query, 7, payload, bytes);

    // Deliver one byte at a time: the reader must stay NeedMore
    // until the last byte lands, then produce exactly one frame.
    FrameReader reader;
    Frame frame;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        reader.feed(&bytes[i], 1);
        ASSERT_EQ(reader.next(frame), DecodeResult::NeedMore)
            << "premature frame at byte " << i;
    }
    reader.feed(&bytes[bytes.size() - 1], 1);
    ASSERT_EQ(reader.next(frame), DecodeResult::Frame);
    EXPECT_EQ(frame.payload, payload);
}

TEST(ServeFrame, GluedFramesDecodeInOrder)
{
    std::vector<std::uint8_t> bytes;
    net::encodeFrame(FrameType::Event, 1, {10}, bytes);
    net::encodeFrame(FrameType::Stats, 2, {}, bytes);
    net::encodeFrame(FrameType::Event, 3, {30, 31}, bytes);

    FrameReader reader;
    reader.feed(bytes);
    Frame frame;
    ASSERT_EQ(reader.next(frame), DecodeResult::Frame);
    EXPECT_EQ(frame.requestId, 1u);
    ASSERT_EQ(reader.next(frame), DecodeResult::Frame);
    EXPECT_EQ(frame.type, FrameType::Stats);
    ASSERT_EQ(reader.next(frame), DecodeResult::Frame);
    EXPECT_EQ(frame.requestId, 3u);
    EXPECT_EQ(frame.payload.size(), 2u);
    EXPECT_EQ(reader.next(frame), DecodeResult::NeedMore);
}

TEST(ServeFrame, GarbageMagicLatchesError)
{
    FrameReader reader;
    std::vector<std::uint8_t> junk(net::kHeaderSize, 0x5a);
    reader.feed(junk);
    Frame frame;
    EXPECT_EQ(reader.next(frame), DecodeResult::Error);
    EXPECT_FALSE(reader.error().empty());
    // The error latches: even valid bytes cannot resynchronize.
    std::vector<std::uint8_t> good;
    net::encodeFrame(FrameType::Event, 1, {}, good);
    reader.feed(good);
    EXPECT_EQ(reader.next(frame), DecodeResult::Error);
}

TEST(ServeFrame, BadVersionAndTypeAndOversizeRejected)
{
    Frame frame;
    {
        std::vector<std::uint8_t> bytes;
        net::encodeFrame(FrameType::Event, 1, {}, bytes);
        bytes[2] = 99; // version
        FrameReader reader;
        reader.feed(bytes);
        EXPECT_EQ(reader.next(frame), DecodeResult::Error);
    }
    {
        std::vector<std::uint8_t> bytes;
        net::encodeFrame(FrameType::Event, 1, {}, bytes);
        bytes[3] = 0xee; // frame type
        FrameReader reader;
        reader.feed(bytes);
        EXPECT_EQ(reader.next(frame), DecodeResult::Error);
    }
    {
        std::vector<std::uint8_t> bytes;
        net::encodeFrame(FrameType::Event, 1, {}, bytes);
        std::uint32_t huge = net::kMaxPayload + 1;
        std::memcpy(&bytes[8], &huge, sizeof(huge));
        FrameReader reader;
        reader.feed(bytes);
        EXPECT_EQ(reader.next(frame), DecodeResult::Error);
    }
}

// --- Payload codecs ------------------------------------------------

TEST(ServeWire, EventRequestRoundTrip)
{
    EventRequest ev;
    ev.op = EventOp::Arrival;
    ev.node = 3;
    ev.appId = -1;
    ev.workload = 7;
    ev.value = 123.456;
    ev.cpuScale = 1.5;
    ev.memScale = 0.25;
    ev.deadlineUs = 250000;

    EventRequest back;
    ASSERT_TRUE(decodeEventRequest(encodeEventRequest(ev), back));
    EXPECT_EQ(back.op, ev.op);
    EXPECT_EQ(back.node, ev.node);
    EXPECT_EQ(back.appId, ev.appId);
    EXPECT_EQ(back.workload, ev.workload);
    EXPECT_EQ(back.value, ev.value);
    EXPECT_EQ(back.cpuScale, ev.cpuScale);
    EXPECT_EQ(back.memScale, ev.memScale);
    EXPECT_EQ(back.deadlineUs, ev.deadlineUs);
}

TEST(ServeWire, EventReplyRoundTrip)
{
    EventReply reply;
    reply.status = ReplyStatus::Rejected;
    reply.node = 1;
    reply.appId = 12;
    reply.batched = 5;
    reply.digest.hash = 0xdeadbeefcafef00dULL;
    reply.digest.passes = 17;
    reply.digest.simNow = 123456789;
    reply.digest.activeApps = 3;
    reply.digest.objective = 2.75;

    EventReply back;
    ASSERT_TRUE(decodeEventReply(encodeEventReply(reply), back));
    EXPECT_EQ(back.status, reply.status);
    EXPECT_EQ(back.batched, reply.batched);
    EXPECT_TRUE(back.digest == reply.digest);
}

TEST(ServeWire, StatsSnapshotRoundTrip)
{
    serve::StatsSnapshot s;
    s.simNow = 42;
    s.nodes = 2;
    s.activeApps = 3;
    s.eventsApplied = 100;
    s.batches = 40;
    s.maxBatch = 8;
    s.counters["control.polls"] = 7;
    s.counters["serve.shed"] = 2;

    serve::StatsSnapshot back;
    ASSERT_TRUE(decodeStatsSnapshot(encodeStatsSnapshot(s), back));
    EXPECT_EQ(back.simNow, s.simNow);
    EXPECT_EQ(back.nodes, s.nodes);
    EXPECT_EQ(back.maxBatch, s.maxBatch);
    EXPECT_EQ(back.counters, s.counters);
    EXPECT_DOUBLE_EQ(back.eventsPerBatch(), 2.5);
}

TEST(ServeWire, MalformedPayloadsRejected)
{
    EventRequest ev;
    std::vector<std::uint8_t> bytes = encodeEventRequest(ev);

    EventRequest out;
    // Truncated.
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 1);
    EXPECT_FALSE(decodeEventRequest(cut, out));
    // Trailing bytes.
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(decodeEventRequest(padded, out));
    // Out-of-range op.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 0xff;
    EXPECT_FALSE(decodeEventRequest(bad, out));
    // Empty.
    EXPECT_FALSE(decodeEventRequest({}, out));
}

// --- Request pool --------------------------------------------------

TEST(ServePool, RecyclesWithoutGrowth)
{
    net::ObjectPool<int> pool(2);
    EXPECT_EQ(pool.created(), 2u);
    {
        auto a = pool.acquire();
        auto b = pool.acquire();
        EXPECT_EQ(pool.outstanding(), 2u);
        auto c = pool.acquire(); // grows past the reserve
        EXPECT_EQ(pool.created(), 3u);
    }
    EXPECT_EQ(pool.outstanding(), 0u);
    // Steady state: re-acquiring recycles, no new objects.
    auto d = pool.acquire();
    EXPECT_EQ(pool.created(), 3u);
}

// --- Engine semantics ----------------------------------------------

serve::EngineConfig
smallEngine(int nodes = 2)
{
    serve::EngineConfig cfg;
    cfg.nodes = nodes;
    cfg.serverCap = 100.0;
    return cfg;
}

TEST(ServeEngineTest, ArrivalRoutesAndRejectsWhenFull)
{
    ServeEngine eng(smallEngine(1));
    EventRequest arrive;
    arrive.op = EventOp::Arrival;
    arrive.node = -1;

    // Two sockets on the default platform: two routed arrivals land,
    // the third finds no free socket anywhere.
    arrive.workload = 0;
    auto a = eng.apply(arrive);
    EXPECT_EQ(a.status, ReplyStatus::Ok);
    EXPECT_EQ(a.node, 0);
    arrive.workload = 1;
    auto b = eng.apply(arrive);
    EXPECT_EQ(b.status, ReplyStatus::Ok);
    arrive.workload = 2;
    auto c = eng.apply(arrive);
    EXPECT_EQ(c.status, ReplyStatus::Rejected);

    // Out-of-range workload index is the client's error.
    arrive.workload = 100000;
    EXPECT_EQ(eng.apply(arrive).status, ReplyStatus::BadRequest);
}

TEST(ServeEngineTest, DuplicateNameOnNodeRejected)
{
    ServeEngine eng(smallEngine(2));
    EventRequest arrive;
    arrive.op = EventOp::Arrival;
    arrive.workload = 0;
    arrive.node = 0;
    EXPECT_EQ(eng.apply(arrive).status, ReplyStatus::Ok);
    // Same profile pinned to the same node: duplicate active name.
    EXPECT_EQ(eng.apply(arrive).status, ReplyStatus::Rejected);
    // Routed instead: lands on the other node.
    arrive.node = -1;
    auto out = eng.apply(arrive);
    EXPECT_EQ(out.status, ReplyStatus::Ok);
    EXPECT_EQ(out.node, 1);
}

TEST(ServeEngineTest, KillAndPhaseChangeValidateTargets)
{
    ServeEngine eng(smallEngine(1));
    EventRequest arrive;
    arrive.op = EventOp::Arrival;
    arrive.workload = 3;
    arrive.node = 0;
    auto placed = eng.apply(arrive);
    ASSERT_EQ(placed.status, ReplyStatus::Ok);

    EventRequest phase;
    phase.op = EventOp::PhaseChange;
    phase.node = 0;
    phase.appId = placed.appId;
    phase.cpuScale = 1.5;
    phase.memScale = 0.5;
    EXPECT_EQ(eng.apply(phase).status, ReplyStatus::Ok);
    phase.appId = 12345;
    EXPECT_EQ(eng.apply(phase).status, ReplyStatus::Rejected);
    phase.node = 9;
    EXPECT_EQ(eng.apply(phase).status, ReplyStatus::BadRequest);

    EventRequest kill;
    kill.op = EventOp::Kill;
    kill.node = 0;
    kill.appId = placed.appId;
    EXPECT_EQ(eng.apply(kill).status, ReplyStatus::Ok);
    // Already dead.
    EXPECT_EQ(eng.apply(kill).status, ReplyStatus::Rejected);
}

TEST(ServeEngineTest, AdvanceBoundsChecked)
{
    ServeEngine eng(smallEngine(1));
    EventRequest adv;
    adv.op = EventOp::Advance;
    adv.value = 0.0;
    EXPECT_EQ(eng.apply(adv).status, ReplyStatus::BadRequest);
    adv.value = 1e9;
    EXPECT_EQ(eng.apply(adv).status, ReplyStatus::BadRequest);
    adv.value = 0.5;
    Tick before = eng.pool()[0].server->now();
    EXPECT_EQ(eng.apply(adv).status, ReplyStatus::Ok);
    EXPECT_EQ(eng.pool()[0].server->now(), before + toTicks(0.5));
}

TEST(ServeEngineTest, DigestDeterministicAcrossInstances)
{
    auto run = [](double cap_watts) {
        ServeEngine eng(smallEngine(2));
        EventRequest arrive;
        arrive.op = EventOp::Arrival;
        arrive.workload = 2;
        arrive.node = -1;
        eng.apply(arrive);
        eng.commit();
        EventRequest cap;
        cap.op = EventOp::CapChange;
        cap.node = -1;
        cap.value = cap_watts;
        eng.apply(cap);
        return eng.commit();
    };
    serve::DecisionDigest a = run(80.0);
    serve::DecisionDigest b = run(80.0);
    EXPECT_TRUE(a == b);
    EXPECT_NE(a.hash, 0u);

    // A different event stream must change the digest (the cap bits
    // are hashed directly).
    serve::DecisionDigest c = run(90.0);
    EXPECT_NE(a.hash, c.hash);
}

TEST(ServeEngineTest, SnapshotBuiltFromTraceAggregates)
{
    ServeEngine eng(smallEngine(2));
    EventRequest arrive;
    arrive.op = EventOp::Arrival;
    arrive.workload = 1;
    arrive.node = -1;
    ASSERT_EQ(eng.apply(arrive).status, ReplyStatus::Ok);
    eng.commit();

    serve::StatsSnapshot snap;
    eng.fillSnapshot(snap);
    // Registered counters the commit must have touched.
    EXPECT_GE(snap.counters.at("control.polls"), 1u);
    EXPECT_GE(snap.counters.at("manager.reallocations"), 1u);
    EXPECT_EQ(snap.counters.at("event.E2-arrival"), 1u);
    // Timers ride along as count/total_us/max_us triplets.
    EXPECT_GE(snap.counters.at("manager.reallocate.count"), 1u);
    EXPECT_TRUE(snap.counters.count("manager.reallocate.total_us"));
    EXPECT_GE(snap.counters.at("cluster.step.count"), 1u);

    // A service-level bus folds into the same emit (gauges win by
    // last write, so the sample survives as published).
    core::Telemetry service_bus;
    service_bus.gauge(trace::EventId::ServeShed, 7);
    serve::StatsSnapshot with_extra;
    eng.fillSnapshot(with_extra, &service_bus);
    EXPECT_EQ(with_extra.counters.at("serve.shed"), 7u);
}

// --- Record/replay -------------------------------------------------

TEST(ServeReplay, CaptureReplaysBitExact)
{
    const std::string path = "serve_capture_test.bin";
    serve::EngineConfig cfg = smallEngine(2);
    cfg.seedBase = 21;

    serve::DecisionDigest recorded;
    {
        ServeEngine eng(cfg);
        ASSERT_TRUE(eng.startCapture(path));
        EventRequest arrive;
        arrive.op = EventOp::Arrival;
        arrive.node = -1;
        for (std::uint32_t w = 0; w < 3; ++w) {
            arrive.workload = w;
            eng.apply(arrive);
        }
        eng.commit();
        EventRequest cap;
        cap.op = EventOp::CapChange;
        cap.node = -1;
        cap.value = 60.0;
        eng.apply(cap);
        recorded = eng.commit();
        eng.stopCapture();
    }

    serve::Capture capture;
    std::string error;
    ASSERT_TRUE(serve::readCapture(path, capture, error)) << error;
    std::remove(path.c_str());
    EXPECT_EQ(capture.config.nodes, 2);
    EXPECT_EQ(capture.config.seedBase, 21u);
    EXPECT_EQ(capture.steps.size(), 6u); // 4 events + 2 commits
    EXPECT_EQ(capture.commitCount(), 2u);

    serve::ReplayResult res = serve::replayCapture(capture);
    EXPECT_TRUE(res.ok) << res.firstMismatch;
    EXPECT_EQ(res.events, 4u);
    EXPECT_EQ(res.commits, 2u);
    EXPECT_TRUE(res.finalDigest == recorded);
}

TEST(ServeReplay, DivergentCaptureIsReported)
{
    const std::string path = "serve_capture_diverge.bin";
    serve::EngineConfig cfg = smallEngine(1);
    {
        ServeEngine eng(cfg);
        ASSERT_TRUE(eng.startCapture(path));
        EventRequest arrive;
        arrive.op = EventOp::Arrival;
        arrive.workload = 0;
        arrive.node = 0;
        eng.apply(arrive);
        eng.commit();
        eng.stopCapture();
    }
    serve::Capture capture;
    std::string error;
    ASSERT_TRUE(serve::readCapture(path, capture, error)) << error;
    std::remove(path.c_str());

    // Tamper with the recorded digest: replay must flag commit 1.
    for (auto &step : capture.steps) {
        if (step.isCommit)
            step.commit.digest.hash ^= 1;
    }
    serve::ReplayResult res = serve::replayCapture(capture);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.firstMismatch.find("commit 1"), std::string::npos);
}

// --- Thread-pool gauges --------------------------------------------

TEST(ServeGauges, PoolBacklogReturnsToZero)
{
    util::ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.parallelFor(64, [&](std::size_t) {
        ++ran;
    });
    EXPECT_EQ(ran.load(), 64);
    // All shared-queue work has drained by the time parallelFor
    // returns.
    EXPECT_EQ(pool.queueDepth(), 0u);
    EXPECT_EQ(pool.inflight(), 0u);
}

// --- Logging knob --------------------------------------------------

TEST(ServeLogging, ParseLogLevelSpellings)
{
    LogLevel level = LogLevel::Quiet;
    EXPECT_TRUE(parseLogLevel("2", level));
    EXPECT_EQ(level, LogLevel::Verbose);
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("QUIET", level));
    EXPECT_EQ(level, LogLevel::Quiet);
    EXPECT_FALSE(parseLogLevel("5", level));
    EXPECT_FALSE(parseLogLevel("loud", level));
    EXPECT_FALSE(parseLogLevel("", level));
    EXPECT_EQ(level, LogLevel::Quiet); // untouched on failure
}

// --- End-to-end daemon ---------------------------------------------

ServiceConfig
smallService()
{
    ServiceConfig cfg;
    cfg.engine = smallEngine(2);
    cfg.maxQueue = 32;
    cfg.maxBatch = 16;
    return cfg;
}

TEST(ServeDaemon, HelloHandshake)
{
    ServeService service(smallService());
    int fd = service.openLocalConnection();
    ASSERT_GE(fd, 0);
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    serve::HelloReply hello;
    ASSERT_TRUE(cli.hello("test", hello));
    EXPECT_EQ(hello.version, net::kProtocolVersion);
    EXPECT_EQ(hello.server, "psm-served");
    service.stop();
}

TEST(ServeDaemon, DecisionsBitExactAgainstInProcessReplay)
{
    ServiceConfig cfg = smallService();
    ServeService service(cfg);
    int fd = service.openLocalConnection();
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    serve::HelloReply hello;
    ASSERT_TRUE(cli.hello("test", hello));

    // The same engine config replayed in-process is the reference;
    // closed-loop submission makes every daemon epoch a batch of one,
    // so the apply/commit sequences are identical step by step.
    ServeEngine ref(cfg.engine);

    std::vector<EventRequest> trace;
    {
        EventRequest ev;
        ev.op = EventOp::Arrival;
        ev.workload = 0;
        ev.node = -1;
        trace.push_back(ev);
        ev.workload = 4;
        trace.push_back(ev);
        ev = {};
        ev.op = EventOp::Advance;
        ev.value = 0.3;
        trace.push_back(ev);
        ev = {};
        ev.op = EventOp::CapChange;
        ev.node = -1;
        ev.value = 70.0;
        trace.push_back(ev);
        ev = {};
        ev.op = EventOp::Advance;
        ev.value = 0.2;
        trace.push_back(ev);
    }

    for (std::size_t i = 0; i < trace.size(); ++i) {
        serve::ApplyOutcome expect = ref.apply(trace[i]);
        serve::DecisionDigest expect_digest =
            expect.status == ReplyStatus::Ok ? ref.commit()
                                             : ref.digest();
        EventReply reply;
        ASSERT_TRUE(cli.submit(trace[i], reply)) << "event " << i;
        EXPECT_EQ(reply.status, expect.status) << "event " << i;
        EXPECT_EQ(reply.node, expect.node) << "event " << i;
        EXPECT_EQ(reply.appId, expect.appId) << "event " << i;
        EXPECT_TRUE(reply.digest == expect_digest)
            << "digest diverged at event " << i;
        if (reply.status == ReplyStatus::Ok) {
            EXPECT_EQ(reply.batched, 1u);
        }
    }
    service.stop();
}

TEST(ServeDaemon, HeldBurstCoalescesAndShedsDeterministically)
{
    ServiceConfig cfg = smallService();
    cfg.maxQueue = 4; // force shedding past four queued events
    ServeService service(cfg);
    int fd = service.openLocalConnection();
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    serve::HelloReply hello;
    ASSERT_TRUE(cli.hello("test", hello));

    service.holdBatching(true);
    const std::size_t burst = 7;
    for (std::size_t i = 0; i < burst; ++i) {
        EventRequest ev;
        ev.op = EventOp::CapChange;
        ev.node = -1;
        ev.value = 60.0 + static_cast<double>(i);
        ASSERT_TRUE(cli.send(ev));
    }
    // The reactor admits exactly maxQueue and sheds the rest, in
    // arrival order (single connection, single reactor thread).
    std::size_t shed = 0, ok = 0;
    std::uint64_t max_batched = 0;
    // Shed replies arrive while the hold is still on.
    for (std::size_t i = 0; i < burst - cfg.maxQueue; ++i) {
        EventReply reply;
        ASSERT_TRUE(cli.readEventReply(reply, 10000));
        EXPECT_EQ(reply.status, ReplyStatus::Shed);
        ++shed;
    }
    service.holdBatching(false);
    for (std::size_t i = 0; i < cfg.maxQueue; ++i) {
        EventReply reply;
        ASSERT_TRUE(cli.readEventReply(reply, 10000));
        EXPECT_EQ(reply.status, ReplyStatus::Ok);
        max_batched = std::max(
            max_batched, static_cast<std::uint64_t>(reply.batched));
        ++ok;
    }
    EXPECT_EQ(shed, burst - cfg.maxQueue);
    EXPECT_EQ(ok, cfg.maxQueue);
    // The whole admitted burst resolved in one allocator epoch.
    EXPECT_EQ(max_batched, cfg.maxQueue);

    auto snap = service.snapshot();
    EXPECT_EQ(snap->shed, shed);
    EXPECT_GE(snap->maxBatch, 2u);
    service.stop();
}

TEST(ServeDaemon, StatsAndQueryServedFromSnapshot)
{
    ServeService service(smallService());
    int fd = service.openLocalConnection();
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    serve::HelloReply hello;
    ASSERT_TRUE(cli.hello("test", hello));

    EventRequest arrive;
    arrive.op = EventOp::Arrival;
    arrive.workload = 1;
    arrive.node = -1;
    EventReply reply;
    ASSERT_TRUE(cli.submit(arrive, reply));
    ASSERT_EQ(reply.status, ReplyStatus::Ok);

    serve::StatsSnapshot stats;
    ASSERT_TRUE(cli.stats(stats));
    EXPECT_EQ(stats.nodes, 2u);
    EXPECT_EQ(stats.activeApps, 1u);
    EXPECT_EQ(stats.eventsApplied, 1u);
    EXPECT_EQ(stats.digestHash, reply.digest.hash);
    EXPECT_EQ(stats.counters.at("event.E2-arrival"), 1u);

    serve::QueryReply q;
    ASSERT_TRUE(cli.query("serve.batches", q));
    EXPECT_TRUE(q.found);
    EXPECT_EQ(q.value, 1u);
    // The snapshot is built from the trace core: registered timers
    // are reachable by name too, as count/total_us/max_us triplets.
    ASSERT_TRUE(cli.query("manager.reallocate.count", q));
    EXPECT_TRUE(q.found);
    EXPECT_GE(q.value, 1u);
    ASSERT_TRUE(cli.query("pool.queue_depth", q));
    EXPECT_TRUE(q.found);
    ASSERT_TRUE(cli.query("no.such.counter", q));
    EXPECT_FALSE(q.found);
    service.stop();
}

TEST(ServeDaemon, GarbageStreamDropsConnection)
{
    ServeService service(smallService());
    int fd = service.openLocalConnection();
    service.start();

    std::vector<std::uint8_t> junk(64, 0x55);
    ASSERT_EQ(::write(fd, junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    // The reactor drops the desynchronized connection; the client
    // side observes EOF.
    std::uint8_t buf[16];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    EXPECT_EQ(n, 0);
    ::close(fd);
    service.stop();
    EXPECT_EQ(service.connectionCount(), 0u);
}

TEST(ServeDaemon, ExpiredDeadlineNotApplied)
{
    ServiceConfig cfg = smallService();
    ServeService service(cfg);
    int fd = service.openLocalConnection();
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    serve::HelloReply hello;
    ASSERT_TRUE(cli.hello("test", hello));

    service.holdBatching(true);
    EventRequest ev;
    ev.op = EventOp::CapChange;
    ev.node = -1;
    ev.value = 90.0;
    ev.deadlineUs = 1; // lapses while the queue is held
    ASSERT_TRUE(cli.send(ev));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.holdBatching(false);

    EventReply reply;
    ASSERT_TRUE(cli.readEventReply(reply, 10000));
    EXPECT_EQ(reply.status, ReplyStatus::Expired);
    EXPECT_EQ(service.snapshot()->eventsApplied, 0u);
    service.stop();
}

TEST(ServeDaemon, ShutdownFrameAcksThenFlagsService)
{
    ServeService service(smallService());
    int fd = service.openLocalConnection();
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    EXPECT_FALSE(service.shutdownRequested());
    ASSERT_TRUE(cli.shutdownServer());
    EXPECT_TRUE(service.shutdownRequested());
    service.stop();
}

TEST(ServeDaemon, StopShedsQueuedRequests)
{
    ServiceConfig cfg = smallService();
    ServeService service(cfg);
    int fd = service.openLocalConnection();
    service.start();

    serve::Client cli;
    cli.adopt(fd);
    service.holdBatching(true);
    EventRequest ev;
    ev.op = EventOp::CapChange;
    ev.node = -1;
    ev.value = 75.0;
    ASSERT_TRUE(cli.send(ev));
    // Give the reactor time to enqueue, then tear the service down
    // with the request still held in the queue.
    for (int spin = 0; service.queueDepth() < 1 && spin < 2000;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    service.stop();

    EventReply reply;
    ASSERT_TRUE(cli.readEventReply(reply, 10000));
    EXPECT_EQ(reply.status, ReplyStatus::Shed);
}

} // namespace
} // namespace psm
