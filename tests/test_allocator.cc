/**
 * @file
 * Tests for the PowerAllocator: the knapsack DP (R1/R2), temporal
 * planning (R3b) and ESD planning with Eq. 5 (R4).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cf/profiler.hh"
#include "core/power_allocator.hh"
#include "esd/battery.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"

namespace psm::core
{
namespace
{

using power::defaultPlatform;

class AllocatorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto &plat = defaultPlatform();
        settings = plat.knobSpace();
        cf::Profiler prof(plat, 0.0);
        Rng rng(1);
        for (const char *name : {"stream", "kmeans"}) {
            perf::PerfModel model(plat, perf::workload(name));
            std::vector<double> p, h;
            prof.measureAll(model, p, h, rng);
            curves.push_back(std::make_unique<UtilityCurve>(
                name, settings,
                cf::UtilityEstimator::surfaceFromRows(p, h),
                KnobFreedom::All));
        }
        ptrs = {curves[0].get(), curves[1].get()};
    }

    std::vector<power::KnobSetting> settings;
    std::vector<std::unique_ptr<UtilityCurve>> curves;
    std::vector<const UtilityCurve *> ptrs;
    PowerAllocator allocator;
};

TEST_F(AllocatorTest, StaysWithinBudget)
{
    for (double budget : {8.0, 12.0, 20.0, 29.4, 45.0}) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_LE(alloc.used, budget + 1e-6) << budget;
        double perf_sum = 0.0;
        for (const auto &a : alloc.apps)
            perf_sum += a.expectedPerf;
        EXPECT_NEAR(alloc.objective, perf_sum, 1e-9);
    }
}

TEST_F(AllocatorTest, NeverWorseThanEqualSplit)
{
    // Property (the R1 claim): the utility-aware DP dominates the
    // fair split at every budget.
    for (double budget = 6.0; budget <= 46.0; budget += 2.0) {
        Allocation dp = allocator.allocate(ptrs, budget);
        Allocation eq = allocator.equalSplit(ptrs, budget);
        EXPECT_GE(dp.objective, eq.objective - 1e-9)
            << "budget " << budget;
    }
}

TEST_F(AllocatorTest, ObjectiveMonotoneWithinEachRegime)
{
    // Once the budget covers both minima the allocator reserves them
    // (nobody starves), so the objective is monotone above that
    // threshold, and separately monotone below it (starved regime).
    double mins = curves[0]->minPower() + curves[1]->minPower();
    double prev = 0.0;
    for (double budget = 4.0; budget < mins; budget += 1.0) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_GE(alloc.objective, prev - 1e-9) << budget;
        prev = alloc.objective;
    }
    prev = 0.0;
    for (double budget = mins + 0.5; budget <= 50.0; budget += 1.0) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_TRUE(alloc.allScheduled()) << budget;
        EXPECT_GE(alloc.objective, prev - 1e-9) << budget;
        prev = alloc.objective;
    }
}

TEST_F(AllocatorTest, GenerousBudgetSchedulesEveryoneAtMax)
{
    Allocation alloc = allocator.allocate(ptrs, 100.0);
    EXPECT_TRUE(alloc.allScheduled());
    EXPECT_NEAR(alloc.objective, 2.0, 1e-6);
}

TEST_F(AllocatorTest, TinyBudgetSchedulesAtMostOne)
{
    double budget = curves[0]->minPower() + 0.5;
    Allocation alloc = allocator.allocate(ptrs, budget);
    EXPECT_FALSE(alloc.allScheduled());
    int scheduled = 0;
    for (const auto &a : alloc.apps)
        scheduled += a.scheduled();
    EXPECT_LE(scheduled, 1);
}

TEST_F(AllocatorTest, EqualSplitReportsUnscheduledApps)
{
    Allocation eq = allocator.equalSplit(ptrs, 8.0); // 4 W each
    for (const auto &a : eq.apps)
        EXPECT_FALSE(a.scheduled());
    EXPECT_DOUBLE_EQ(eq.objective, 0.0);
}

TEST_F(AllocatorTest, SlackIsDistributed)
{
    // With a budget between frontier points the greedy pass should
    // leave little slack unused.
    Allocation alloc = allocator.allocate(ptrs, 29.4);
    EXPECT_TRUE(alloc.allScheduled());
    EXPECT_GT(alloc.used, 29.4 - 1.5);
}

// --- Temporal plans -------------------------------------------------------

TEST_F(AllocatorTest, TemporalSharesSumToOne)
{
    for (ShareMode mode :
         {ShareMode::Equal, ShareMode::UtilityWeighted}) {
        TemporalPlan plan = allocator.temporalPlan(ptrs, 12.0, mode);
        ASSERT_EQ(plan.slots.size(), 2u);
        double total = 0.0;
        for (const auto &s : plan.slots) {
            EXPECT_GT(s.share, 0.0);
            total += s.share;
            EXPECT_LE(s.point.power, 12.0 + 1e-9);
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST_F(AllocatorTest, TemporalEqualSharesAreFair)
{
    TemporalPlan plan =
        allocator.temporalPlan(ptrs, 12.0, ShareMode::Equal);
    for (const auto &s : plan.slots)
        EXPECT_DOUBLE_EQ(s.share, 0.5);
}

TEST_F(AllocatorTest, TemporalRespectsShareFloor)
{
    AllocatorConfig cfg;
    cfg.shareFloor = 0.4;
    PowerAllocator floored(cfg);
    TemporalPlan plan = floored.temporalPlan(
        ptrs, 12.0, ShareMode::UtilityWeighted);
    for (const auto &s : plan.slots)
        EXPECT_GE(s.share, 0.4 / 2.0 - 1e-9);
}

TEST_F(AllocatorTest, TemporalReportsUnschedulable)
{
    TemporalPlan plan = allocator.temporalPlan(
        ptrs, curves[0]->minPower() - 1.0, ShareMode::Equal);
    EXPECT_TRUE(plan.slots.empty() || !plan.unschedulable.empty());
}

// --- ESD plans -------------------------------------------------------------

TEST_F(AllocatorTest, EsdPlanImplementsEqFive)
{
    const auto &plat = defaultPlatform();
    esd::BatteryConfig esd = esd::leadAcidUps();
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, 80.0, esd);
    ASSERT_TRUE(plan.viable);
    EXPECT_TRUE(plan.onAllocation.allScheduled());
    EXPECT_GT(plan.offFraction, 0.0);
    EXPECT_LT(plan.offFraction, 1.0);
    EXPECT_LE(plan.deficit, esd.maxDischargePower + 1e-9);

    // Verify Eq. 5: off/on = deficit / (eta * charge).
    double off_over_on = plan.offFraction / (1.0 - plan.offFraction);
    double expected = plan.deficit /
                      (esd.roundTripEfficiency() * plan.chargePower);
    EXPECT_NEAR(off_over_on, expected, 1e-6);

    // Energy balance: what is banked during OFF covers ON.
    double banked = plan.offFraction * plan.chargePower *
                    esd.roundTripEfficiency();
    double spent = (1.0 - plan.offFraction) * plan.deficit;
    EXPECT_NEAR(banked, spent, 1e-6);
}

TEST_F(AllocatorTest, EsdPlanNotViableWithoutChargeHeadroom)
{
    const auto &plat = defaultPlatform();
    // Cap at P_idle: no headroom ever.
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, plat.idlePower,
                                     esd::leadAcidUps());
    EXPECT_FALSE(plan.viable);
}

TEST_F(AllocatorTest, EsdPlanRunsBothAppsAtSeventyWatts)
{
    // The paper's most stringent scenario: only the ESD scheme makes
    // progress at 70 W.
    const auto &plat = defaultPlatform();
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, 70.0,
                                     esd::leadAcidUps());
    ASSERT_TRUE(plan.viable);
    EXPECT_TRUE(plan.onAllocation.allScheduled());
    EXPECT_GT(plan.objective, 0.0);
    // OFF dominates at such a tight cap.
    EXPECT_GT(plan.offFraction, 0.4);
}

TEST_F(AllocatorTest, LooseCapNeedsNoOffPeriod)
{
    const auto &plat = defaultPlatform();
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, 150.0,
                                     esd::leadAcidUps());
    ASSERT_TRUE(plan.viable);
    EXPECT_DOUBLE_EQ(plan.offFraction, 0.0);
    EXPECT_DOUBLE_EQ(plan.deficit, 0.0);
}

TEST_F(AllocatorTest, EsdChargeHeadroomAccountsOffPeriodCmPower)
{
    // Regression for the charge-headroom bug: when the management
    // plane cannot sleep during OFF periods its draw must come out of
    // the charge budget, which lengthens the OFF fraction per Eq. 5.
    const auto &plat = defaultPlatform();
    esd::BatteryConfig esd = esd::leadAcidUps();

    // Default platform parks the uncore in PC6: full headroom.
    EsdPlan parked = allocator.esdPlan(ptrs, plat.idlePower,
                                       plat.cmPower, 80.0, esd);
    ASSERT_TRUE(parked.viable);
    EXPECT_DOUBLE_EQ(parked.chargePower,
                     std::min(80.0 - plat.idlePower,
                              esd.maxChargePower));

    // Awake management plane: headroom shrinks by P_cm, pinning the
    // corrected duty cycle (charge 80 - 50 - 20 = 10 W, not 30 W).
    EsdPlan awake = allocator.esdPlan(ptrs, plat.idlePower,
                                      plat.cmPower, 80.0, esd,
                                      plat.cmPower);
    ASSERT_TRUE(awake.viable);
    EXPECT_DOUBLE_EQ(awake.chargePower, 10.0);
    double off_over_on = awake.offFraction / (1.0 - awake.offFraction);
    EXPECT_NEAR(off_over_on,
                awake.deficit /
                    (esd.roundTripEfficiency() * awake.chargePower),
                1e-6);
    // Less charge headroom means longer OFF periods and less
    // delivered utility than the ignore-P_cm answer claimed.
    EXPECT_GT(awake.offFraction, parked.offFraction);
    EXPECT_LE(awake.objective, parked.objective + 1e-12);

    // No headroom at all once the cap only covers idle + management.
    EsdPlan starved = allocator.esdPlan(ptrs, plat.idlePower,
                                        plat.cmPower,
                                        plat.idlePower + plat.cmPower,
                                        esd, plat.cmPower);
    EXPECT_FALSE(starved.viable);
}

// --- Frontier DP, sweep sharing and the cross-event cache -----------------

/** Exhaustive noiseless curves for every library workload. */
std::vector<std::unique_ptr<UtilityCurve>>
libraryCurves(const std::vector<power::KnobSetting> &settings)
{
    const auto &plat = defaultPlatform();
    cf::Profiler prof(plat, 0.0);
    Rng rng(1);
    std::vector<std::unique_ptr<UtilityCurve>> out;
    for (const auto &profile : perf::workloadLibrary()) {
        perf::PerfModel model(plat, profile);
        std::vector<double> p, h;
        prof.measureAll(model, p, h, rng);
        out.push_back(std::make_unique<UtilityCurve>(
            profile.name, settings,
            cf::UtilityEstimator::surfaceFromRows(p, h),
            KnobFreedom::All));
    }
    return out;
}

/** Bit-for-bit equality of two allocations (the equivalence claim:
 * frontier/incremental must reproduce the dense DP exactly, not
 * approximately). */
void
expectSameAllocation(const Allocation &want, const Allocation &got)
{
    EXPECT_EQ(want.objective, got.objective);
    EXPECT_EQ(want.used, got.used);
    EXPECT_EQ(want.dynamicBudget, got.dynamicBudget);
    ASSERT_EQ(want.apps.size(), got.apps.size());
    for (std::size_t i = 0; i < want.apps.size(); ++i) {
        const AppAllocation &w = want.apps[i];
        const AppAllocation &g = got.apps[i];
        EXPECT_EQ(w.app, g.app);
        EXPECT_EQ(w.budget, g.budget);
        EXPECT_EQ(w.expectedPerf, g.expectedPerf);
        ASSERT_EQ(w.scheduled(), g.scheduled());
        if (w.scheduled()) {
            EXPECT_EQ(w.point->power, g.point->power);
        }
    }
}

AllocatorConfig
denseConfig()
{
    AllocatorConfig cfg;
    cfg.denseDp = true;
    return cfg;
}

TEST_F(AllocatorTest, FrontierMatchesDenseDpExactly)
{
    PowerAllocator dense(denseConfig());
    for (double budget = 4.0; budget <= 50.0; budget += 0.7) {
        SCOPED_TRACE(budget);
        expectSameAllocation(dense.allocate(ptrs, budget),
                             allocator.allocate(ptrs, budget));
    }
}

TEST_F(AllocatorTest, EsdSweepSharingMatchesDense)
{
    const auto &plat = defaultPlatform();
    esd::BatteryConfig esd = esd::leadAcidUps();
    PowerAllocator dense(denseConfig());
    for (double cap : {62.0, 68.0, 70.0, 75.0, 80.0, 90.0, 110.0,
                       150.0}) {
        SCOPED_TRACE(cap);
        EsdPlan want = dense.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, cap, esd);
        EsdPlan got = allocator.esdPlan(ptrs, plat.idlePower,
                                        plat.cmPower, cap, esd);
        ASSERT_EQ(want.viable, got.viable);
        EXPECT_EQ(want.objective, got.objective);
        EXPECT_EQ(want.offFraction, got.offFraction);
        EXPECT_EQ(want.deficit, got.deficit);
        EXPECT_EQ(want.chargePower, got.chargePower);
        if (want.viable)
            expectSameAllocation(want.onAllocation, got.onAllocation);
    }
}

TEST(AllocatorEquivalence, CacheMatchesDenseAcrossRandomEvents)
{
    // The satellite property test: replay a seeded arrival/departure/
    // budget-change/recalibration tape at k in [1, 8] and demand the
    // cache-served allocation equal the dense baseline bit-for-bit at
    // every step.
    const auto &plat = defaultPlatform();
    auto settings = plat.knobSpace();
    auto pool = libraryCurves(settings);
    ASSERT_GE(pool.size(), 8u);

    Rng rng(20260806);
    PowerAllocator dense(denseConfig());
    PowerAllocator fast;
    Telemetry tel;
    fast.setTelemetry(&tel);
    AllocatorCache cache;
    std::uint64_t epoch = 1;

    std::vector<std::size_t> active = {0, 1, 2, 3};
    std::vector<std::size_t> parked;
    for (std::size_t i = 4; i < pool.size(); ++i)
        parked.push_back(i);
    double budget = 40.0;

    for (int ev = 0; ev < 160; ++ev) {
        switch (rng.uniformInt(0, 3)) {
          case 0: // arrival appends (activeIds() is id-ordered)
            if (active.size() < 8 && !parked.empty()) {
                std::size_t slot = static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<int>(parked.size()) -
                                       1));
                active.push_back(parked[slot]);
                parked.erase(parked.begin() +
                             static_cast<long>(slot));
            }
            break;
          case 1: // departure of a random slot
            if (active.size() > 1) {
                std::size_t slot = static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<int>(active.size()) -
                                       1));
                parked.push_back(active[slot]);
                active.erase(active.begin() +
                             static_cast<long>(slot));
            }
            break;
          case 2: // cap change
            budget = rng.uniform(
                2.0, 16.0 * static_cast<double>(active.size()));
            break;
          case 3: // recalibration bumps the surface epoch
            ++epoch;
            break;
        }
        std::vector<const UtilityCurve *> curves;
        for (std::size_t ix : active)
            curves.push_back(pool[ix].get());

        SCOPED_TRACE(ev);
        Allocation want = dense.allocate(curves, budget);
        expectSameAllocation(want, fast.allocate(curves, budget));
        expectSameAllocation(
            want, fast.allocate(curves, budget, &cache, epoch));
    }

    // The tape must have exercised every cache serve mode, or the
    // equivalence above proved less than it claims.
    EXPECT_GT(tel.counter("allocator.dp_rebuilds"), 0u);
    EXPECT_GT(tel.counter("allocator.dp_full_hits"), 0u);
    EXPECT_GT(tel.counter("allocator.dp_extends"), 0u);
    EXPECT_GT(tel.counter("allocator.dp_combines"), 0u);
}

TEST_F(AllocatorTest, CacheInvalidatesOnEpochBump)
{
    Telemetry tel;
    PowerAllocator fast;
    fast.setTelemetry(&tel);
    AllocatorCache cache;

    Allocation first = fast.allocate(ptrs, 30.0, &cache, 1);
    EXPECT_EQ(tel.counter("allocator.dp_rebuilds"), 1u);

    Allocation again = fast.allocate(ptrs, 30.0, &cache, 1);
    EXPECT_EQ(tel.counter("allocator.dp_full_hits"), 1u);
    EXPECT_EQ(tel.counter("allocator.dp_rebuilds"), 1u);
    expectSameAllocation(first, again);

    // A recalibration epoch invalidates everything cached.
    Allocation bumped = fast.allocate(ptrs, 30.0, &cache, 2);
    EXPECT_EQ(tel.counter("allocator.dp_rebuilds"), 2u);
    expectSameAllocation(first, bumped);

    // Epoch 0 means no epoch discipline: the cache must be bypassed,
    // not trusted.
    fast.allocate(ptrs, 30.0, &cache, 0);
    EXPECT_EQ(tel.counter("allocator.dp_rebuilds"), 2u);
    EXPECT_EQ(tel.counter("allocator.dp_full_hits"), 1u);
}

TEST_F(AllocatorTest, SlackUpgradeKeepsGrantedBudget)
{
    // Regression for the slack-pass bug that overwrote an app's grant
    // with its operating point's draw: every chosen point must fit
    // inside the granted budget (a slack upgrade widens the grant, it
    // never shrinks it below the draw), and `used` stays the sum of
    // actual draws.
    for (double budget : {8.0, 12.0, 20.0, 29.4, 45.0}) {
        SCOPED_TRACE(budget);
        Allocation alloc = allocator.allocate(ptrs, budget);
        double draw = 0.0;
        for (const auto &a : alloc.apps) {
            if (!a.scheduled())
                continue;
            EXPECT_LE(a.point->power, a.budget + 1e-9);
            draw += a.point->power;
        }
        EXPECT_NEAR(alloc.used, draw, 1e-9);
        EXPECT_LE(alloc.used, budget + 1e-6);
    }
}

TEST(AllocatorTemporal, WeightedFloorSurvivesRenormalization)
{
    // Two single-point curves with a 6x perf-per-watt spread: the old
    // floor-then-renormalize scheme diluted the weak app back below
    // the floor (~0.26 here); the water-fill must hold it at exactly
    // floor/n and hand the remainder to the strong app.
    const auto &plat = defaultPlatform();
    std::vector<power::KnobSetting> one = {plat.knobSpace().front()};
    UtilityCurve strong("strong", one,
                        cf::UtilityEstimator::surfaceFromRows(
                            {5.0}, {1000.0}),
                        KnobFreedom::All);
    UtilityCurve weak("weak", one,
                      cf::UtilityEstimator::surfaceFromRows(
                          {30.0}, {90.0}),
                      KnobFreedom::All);
    std::vector<const UtilityCurve *> pair = {&strong, &weak};

    AllocatorConfig cfg;
    cfg.shareFloor = 0.6;
    PowerAllocator floored(cfg);
    TemporalPlan plan =
        floored.temporalPlan(pair, 35.0, ShareMode::UtilityWeighted);
    ASSERT_EQ(plan.slots.size(), 2u);
    double total = 0.0;
    for (const auto &s : plan.slots) {
        EXPECT_GE(s.share, 0.6 / 2.0 - 1e-9) << s.app;
        total += s.share;
        if (s.app == "weak")
            EXPECT_NEAR(s.share, 0.3, 1e-9);
        else
            EXPECT_NEAR(s.share, 0.7, 1e-9);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

} // namespace
} // namespace psm::core
