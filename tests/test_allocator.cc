/**
 * @file
 * Tests for the PowerAllocator: the knapsack DP (R1/R2), temporal
 * planning (R3b) and ESD planning with Eq. 5 (R4).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cf/profiler.hh"
#include "core/power_allocator.hh"
#include "esd/battery.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"

namespace psm::core
{
namespace
{

using power::defaultPlatform;

class AllocatorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto &plat = defaultPlatform();
        settings = plat.knobSpace();
        cf::Profiler prof(plat, 0.0);
        Rng rng(1);
        for (const char *name : {"stream", "kmeans"}) {
            perf::PerfModel model(plat, perf::workload(name));
            std::vector<double> p, h;
            prof.measureAll(model, p, h, rng);
            curves.push_back(std::make_unique<UtilityCurve>(
                name, settings,
                cf::UtilityEstimator::surfaceFromRows(p, h),
                KnobFreedom::All));
        }
        ptrs = {curves[0].get(), curves[1].get()};
    }

    std::vector<power::KnobSetting> settings;
    std::vector<std::unique_ptr<UtilityCurve>> curves;
    std::vector<const UtilityCurve *> ptrs;
    PowerAllocator allocator;
};

TEST_F(AllocatorTest, StaysWithinBudget)
{
    for (double budget : {8.0, 12.0, 20.0, 29.4, 45.0}) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_LE(alloc.used, budget + 1e-6) << budget;
        double perf_sum = 0.0;
        for (const auto &a : alloc.apps)
            perf_sum += a.expectedPerf;
        EXPECT_NEAR(alloc.objective, perf_sum, 1e-9);
    }
}

TEST_F(AllocatorTest, NeverWorseThanEqualSplit)
{
    // Property (the R1 claim): the utility-aware DP dominates the
    // fair split at every budget.
    for (double budget = 6.0; budget <= 46.0; budget += 2.0) {
        Allocation dp = allocator.allocate(ptrs, budget);
        Allocation eq = allocator.equalSplit(ptrs, budget);
        EXPECT_GE(dp.objective, eq.objective - 1e-9)
            << "budget " << budget;
    }
}

TEST_F(AllocatorTest, ObjectiveMonotoneWithinEachRegime)
{
    // Once the budget covers both minima the allocator reserves them
    // (nobody starves), so the objective is monotone above that
    // threshold, and separately monotone below it (starved regime).
    double mins = curves[0]->minPower() + curves[1]->minPower();
    double prev = 0.0;
    for (double budget = 4.0; budget < mins; budget += 1.0) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_GE(alloc.objective, prev - 1e-9) << budget;
        prev = alloc.objective;
    }
    prev = 0.0;
    for (double budget = mins + 0.5; budget <= 50.0; budget += 1.0) {
        Allocation alloc = allocator.allocate(ptrs, budget);
        EXPECT_TRUE(alloc.allScheduled()) << budget;
        EXPECT_GE(alloc.objective, prev - 1e-9) << budget;
        prev = alloc.objective;
    }
}

TEST_F(AllocatorTest, GenerousBudgetSchedulesEveryoneAtMax)
{
    Allocation alloc = allocator.allocate(ptrs, 100.0);
    EXPECT_TRUE(alloc.allScheduled());
    EXPECT_NEAR(alloc.objective, 2.0, 1e-6);
}

TEST_F(AllocatorTest, TinyBudgetSchedulesAtMostOne)
{
    double budget = curves[0]->minPower() + 0.5;
    Allocation alloc = allocator.allocate(ptrs, budget);
    EXPECT_FALSE(alloc.allScheduled());
    int scheduled = 0;
    for (const auto &a : alloc.apps)
        scheduled += a.scheduled();
    EXPECT_LE(scheduled, 1);
}

TEST_F(AllocatorTest, EqualSplitReportsUnscheduledApps)
{
    Allocation eq = allocator.equalSplit(ptrs, 8.0); // 4 W each
    for (const auto &a : eq.apps)
        EXPECT_FALSE(a.scheduled());
    EXPECT_DOUBLE_EQ(eq.objective, 0.0);
}

TEST_F(AllocatorTest, SlackIsDistributed)
{
    // With a budget between frontier points the greedy pass should
    // leave little slack unused.
    Allocation alloc = allocator.allocate(ptrs, 29.4);
    EXPECT_TRUE(alloc.allScheduled());
    EXPECT_GT(alloc.used, 29.4 - 1.5);
}

// --- Temporal plans -------------------------------------------------------

TEST_F(AllocatorTest, TemporalSharesSumToOne)
{
    for (ShareMode mode :
         {ShareMode::Equal, ShareMode::UtilityWeighted}) {
        TemporalPlan plan = allocator.temporalPlan(ptrs, 12.0, mode);
        ASSERT_EQ(plan.slots.size(), 2u);
        double total = 0.0;
        for (const auto &s : plan.slots) {
            EXPECT_GT(s.share, 0.0);
            total += s.share;
            EXPECT_LE(s.point.power, 12.0 + 1e-9);
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST_F(AllocatorTest, TemporalEqualSharesAreFair)
{
    TemporalPlan plan =
        allocator.temporalPlan(ptrs, 12.0, ShareMode::Equal);
    for (const auto &s : plan.slots)
        EXPECT_DOUBLE_EQ(s.share, 0.5);
}

TEST_F(AllocatorTest, TemporalRespectsShareFloor)
{
    AllocatorConfig cfg;
    cfg.shareFloor = 0.4;
    PowerAllocator floored(cfg);
    TemporalPlan plan = floored.temporalPlan(
        ptrs, 12.0, ShareMode::UtilityWeighted);
    for (const auto &s : plan.slots)
        EXPECT_GE(s.share, 0.4 / 2.0 - 1e-9);
}

TEST_F(AllocatorTest, TemporalReportsUnschedulable)
{
    TemporalPlan plan = allocator.temporalPlan(
        ptrs, curves[0]->minPower() - 1.0, ShareMode::Equal);
    EXPECT_TRUE(plan.slots.empty() || !plan.unschedulable.empty());
}

// --- ESD plans -------------------------------------------------------------

TEST_F(AllocatorTest, EsdPlanImplementsEqFive)
{
    const auto &plat = defaultPlatform();
    esd::BatteryConfig esd = esd::leadAcidUps();
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, 80.0, esd);
    ASSERT_TRUE(plan.viable);
    EXPECT_TRUE(plan.onAllocation.allScheduled());
    EXPECT_GT(plan.offFraction, 0.0);
    EXPECT_LT(plan.offFraction, 1.0);
    EXPECT_LE(plan.deficit, esd.maxDischargePower + 1e-9);

    // Verify Eq. 5: off/on = deficit / (eta * charge).
    double off_over_on = plan.offFraction / (1.0 - plan.offFraction);
    double expected = plan.deficit /
                      (esd.roundTripEfficiency() * plan.chargePower);
    EXPECT_NEAR(off_over_on, expected, 1e-6);

    // Energy balance: what is banked during OFF covers ON.
    double banked = plan.offFraction * plan.chargePower *
                    esd.roundTripEfficiency();
    double spent = (1.0 - plan.offFraction) * plan.deficit;
    EXPECT_NEAR(banked, spent, 1e-6);
}

TEST_F(AllocatorTest, EsdPlanNotViableWithoutChargeHeadroom)
{
    const auto &plat = defaultPlatform();
    // Cap at P_idle: no headroom ever.
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, plat.idlePower,
                                     esd::leadAcidUps());
    EXPECT_FALSE(plan.viable);
}

TEST_F(AllocatorTest, EsdPlanRunsBothAppsAtSeventyWatts)
{
    // The paper's most stringent scenario: only the ESD scheme makes
    // progress at 70 W.
    const auto &plat = defaultPlatform();
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, 70.0,
                                     esd::leadAcidUps());
    ASSERT_TRUE(plan.viable);
    EXPECT_TRUE(plan.onAllocation.allScheduled());
    EXPECT_GT(plan.objective, 0.0);
    // OFF dominates at such a tight cap.
    EXPECT_GT(plan.offFraction, 0.4);
}

TEST_F(AllocatorTest, LooseCapNeedsNoOffPeriod)
{
    const auto &plat = defaultPlatform();
    EsdPlan plan = allocator.esdPlan(ptrs, plat.idlePower,
                                     plat.cmPower, 150.0,
                                     esd::leadAcidUps());
    ASSERT_TRUE(plan.viable);
    EXPECT_DOUBLE_EQ(plan.offFraction, 0.0);
    EXPECT_DOUBLE_EQ(plan.deficit, 0.0);
}

} // namespace
} // namespace psm::core
