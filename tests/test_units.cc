/**
 * @file
 * Unit tests for simulated-time and unit helpers.
 */

#include <gtest/gtest.h>

#include "util/units.hh"

namespace psm
{
namespace
{

TEST(Units, TickResolutionIsHundredMicroseconds)
{
    EXPECT_EQ(ticksPerSecond, 10000u);
    EXPECT_EQ(ticksPerMs, 10u);
}

TEST(Units, ToSecondsInvertsToTicks)
{
    for (double s : {0.0, 0.001, 0.5, 1.0, 3.25, 100.0}) {
        EXPECT_NEAR(toSeconds(toTicks(s)), s, 1e-4)
            << "round trip failed for " << s;
    }
}

TEST(Units, ToTicksClampsNegative)
{
    EXPECT_EQ(toTicks(-1.0), 0u);
    EXPECT_EQ(toTicks(0.0), 0u);
}

TEST(Units, ToTicksRounds)
{
    // 0.00016 s = 1.6 ticks, rounds to 2.
    EXPECT_EQ(toTicks(0.00016), 2u);
    // 0.00013 s = 1.3 ticks, rounds to 1.
    EXPECT_EQ(toTicks(0.00013), 1u);
}

TEST(Units, EnergyOverIntegratesPower)
{
    // 100 W for 2 s = 200 J.
    EXPECT_DOUBLE_EQ(energyOver(100.0, 2 * ticksPerSecond), 200.0);
    EXPECT_DOUBLE_EQ(energyOver(50.0, 0), 0.0);
}

TEST(Units, FormattersProduceReadableStrings)
{
    EXPECT_EQ(formatTime(ticksPerSecond), "1.0000 s");
    EXPECT_EQ(formatPower(87.25), "87.2 W");
}

class TickRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(TickRoundTrip, SecondsSurviveConversion)
{
    double s = GetParam();
    EXPECT_NEAR(toSeconds(toTicks(s)), s, 0.5 / ticksPerSecond);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TickRoundTrip,
                         ::testing::Values(0.0001, 0.01, 0.123, 1.7,
                                           42.0, 86400.0));

} // namespace
} // namespace psm
