/**
 * @file
 * Tests for the emulated RAPL interface: energy counters (including
 * 32-bit wraparound), window averaging, limits and the power meter.
 */

#include <gtest/gtest.h>

#include "power/power_meter.hh"
#include "power/rapl.hh"

namespace psm::power
{
namespace
{

TEST(RaplDomain, EnergyCounterAccumulatesJoules)
{
    RaplDomain d;
    d.recordEnergy(100.0, ticksPerSecond); // 100 J
    EXPECT_NEAR(d.totalEnergy(), 100.0, 1e-3);
    d.recordEnergy(50.0, 2 * ticksPerSecond); // +100 J
    EXPECT_NEAR(d.totalEnergy(), 200.0, 1e-3);
}

TEST(RaplDomain, SubUnitEnergyIsNotLost)
{
    RaplDomain d;
    // Tiny increments, each well below one energy unit (15.26 uJ)
    // would truncate to zero without remainder carry.
    for (int i = 0; i < 100000; ++i)
        d.recordEnergy(0.001, 1); // 0.1 uJ per tick
    // The counter only advances in 15.26 uJ units; up to one unit
    // may still sit in the remainder.
    EXPECT_NEAR(d.totalEnergy(), 0.001 * toSeconds(100000), 2e-5);
}

TEST(RaplDomain, CounterWrapsAt32Bits)
{
    RaplDomain d;
    // 2^32 units * 1/65536 J/unit = 65536 J. Push past one wrap.
    // 70000 J at 1 kW takes 70 s.
    for (int i = 0; i < 70; ++i)
        d.recordEnergy(1000.0, ticksPerSecond);
    // The raw counter must have wrapped at least once...
    EXPECT_LT(static_cast<double>(d.rawCounter()) / 65536.0, 65536.0);
    // ...but reconstructed total energy is correct.
    EXPECT_NEAR(d.totalEnergy(), 70000.0, 1.0);
}

TEST(RaplDomain, WindowAverageTracksRecentPower)
{
    RaplDomain d(toTicks(0.010));
    d.recordEnergy(10.0, toTicks(0.005));
    EXPECT_NEAR(d.windowAveragePower(), 10.0, 1e-9);
    // Fill the window with 20 W; the 10 W sample ages out.
    d.recordEnergy(20.0, toTicks(0.020));
    EXPECT_NEAR(d.windowAveragePower(), 20.0, 1e-6);
}

TEST(RaplDomain, WindowAverageBlendsPartialSamples)
{
    RaplDomain d(toTicks(0.010));
    d.recordEnergy(0.0, toTicks(0.005));
    d.recordEnergy(10.0, toTicks(0.005));
    EXPECT_NEAR(d.windowAveragePower(), 5.0, 1e-9);
}

TEST(RaplDomain, ThrottleFactorNoLimit)
{
    RaplDomain d;
    d.recordEnergy(100.0, toTicks(0.01));
    EXPECT_DOUBLE_EQ(d.throttleFactor(), 1.0);
    EXPECT_FALSE(d.limitEnabled());
}

TEST(RaplDomain, ThrottleSqueezesOverLimitAndReleasesUnder)
{
    RaplDomain d;
    d.setPowerLimit(50.0);
    EXPECT_TRUE(d.limitEnabled());
    d.recordEnergy(100.0, toTicks(0.02));
    EXPECT_NEAR(d.throttleFactor(), 0.5, 1e-9);
    // Persistently over the limit squeezes further (integral).
    d.recordEnergy(100.0, toTicks(0.02));
    EXPECT_LT(d.throttleFactor(), 0.5);
    // Under the limit the throttle relaxes back toward 1.
    double prev = d.throttleFactor();
    for (int i = 0; i < 200; ++i)
        d.recordEnergy(10.0, toTicks(0.02));
    EXPECT_GT(d.throttleFactor(), prev);
    EXPECT_NEAR(d.throttleFactor(), 1.0, 1e-6);
}

TEST(RaplDomain, ThrottleFactorFloored)
{
    RaplDomain d;
    d.setPowerLimit(0.1);
    d.recordEnergy(1000.0, toTicks(0.02));
    EXPECT_GE(d.throttleFactor(), 0.01);
}

TEST(RaplDomain, ViolationTimeAccumulatesOnlyOverLimit)
{
    RaplDomain d;
    d.setPowerLimit(50.0);
    d.recordEnergy(100.0, toTicks(0.02));
    Tick v1 = d.violationTime();
    EXPECT_EQ(v1, toTicks(0.02));
    // A long spell far below the limit adds no violation time.
    d.recordEnergy(10.0, toTicks(0.10));
    EXPECT_EQ(d.violationTime(), v1);
}

TEST(RaplDomain, ClearPowerLimit)
{
    RaplDomain d;
    d.setPowerLimit(10.0);
    d.clearPowerLimit();
    EXPECT_FALSE(d.limitEnabled());
    d.recordEnergy(100.0, toTicks(0.02));
    EXPECT_DOUBLE_EQ(d.throttleFactor(), 1.0);
}

TEST(RaplInterface, FourDomainsWithNames)
{
    RaplInterface rapl;
    EXPECT_EQ(raplDomainName(RaplDomainId::Package0), "package-0");
    EXPECT_EQ(raplDomainName(RaplDomainId::Dram1), "dram-1");
    rapl.recordEnergy(RaplDomainId::Package0, 30.0, ticksPerSecond);
    rapl.recordEnergy(RaplDomainId::Dram0, 10.0, ticksPerSecond);
    EXPECT_NEAR(rapl.totalEnergy(), 40.0, 1e-3);
}

TEST(RaplInterface, TotalWindowPowerSumsDomains)
{
    RaplInterface rapl;
    rapl.recordEnergy(RaplDomainId::Package0, 30.0, toTicks(0.01));
    rapl.recordEnergy(RaplDomainId::Package1, 25.0, toTicks(0.01));
    EXPECT_NEAR(rapl.totalWindowPower(), 55.0, 1e-6);
}

// --- PowerMeter ---------------------------------------------------------

TEST(PowerMeter, AveragesAndEnergy)
{
    PowerMeter meter;
    meter.push(0, ticksPerSecond, 100.0, 120.0);
    meter.push(ticksPerSecond, ticksPerSecond, 50.0, 120.0);
    EXPECT_NEAR(meter.averagePower(), 75.0, 1e-9);
    EXPECT_NEAR(meter.totalEnergy(), 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(meter.peakPower(), 100.0);
    EXPECT_EQ(meter.duration(), 2 * ticksPerSecond);
    EXPECT_EQ(meter.violationTime(), 0u);
}

TEST(PowerMeter, TracksCapViolations)
{
    PowerMeter meter;
    meter.push(0, ticksPerSecond, 110.0, 100.0);
    meter.push(ticksPerSecond, ticksPerSecond, 90.0, 100.0);
    EXPECT_EQ(meter.violationTime(), ticksPerSecond);
    EXPECT_NEAR(meter.violationFraction(), 0.5, 1e-9);
    EXPECT_NEAR(meter.worstOvershoot(), 10.0, 1e-9);
    EXPECT_NEAR(meter.violationEnergy(), 10.0, 1e-9);
}

TEST(PowerMeter, UncappedNeverViolates)
{
    PowerMeter meter;
    meter.push(0, ticksPerSecond, 500.0, 0.0);
    EXPECT_EQ(meter.violationTime(), 0u);
}

TEST(PowerMeter, HistoryCompressesSteadyState)
{
    PowerMeter meter(ticksPerMs * 100);
    for (int i = 0; i < 1000; ++i) {
        meter.push(static_cast<Tick>(i) * ticksPerMs * 10,
                   ticksPerMs * 10, 80.0, 100.0);
    }
    // 10 s of identical samples should compress massively.
    EXPECT_LT(meter.history().size(), 200u);
    // And preserve the total duration.
    Tick total = 0;
    for (const auto &s : meter.history())
        total += s.duration;
    EXPECT_EQ(total, meter.duration());
}

TEST(PowerMeter, ResetClearsEverything)
{
    PowerMeter meter;
    meter.push(0, ticksPerSecond, 120.0, 100.0);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.averagePower(), 0.0);
    EXPECT_EQ(meter.violationTime(), 0u);
    EXPECT_TRUE(meter.history().empty());
}

} // namespace
} // namespace psm::power
