/**
 * @file
 * Tests for the binary trace core and the Telemetry façade riding on
 * it: the event registry, TraceSink fold/merge semantics, the binary
 * record-log container, façade routing (registered names onto dense
 * ids, unknown names onto the overflow map), the decision-ring bound
 * across merges, JSON escaping/non-finite hygiene, and trace/legacy
 * aggregate equivalence under TelemetryShards-style parallel publish.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "core/telemetry.hh"
#include "trace/log.hh"
#include "trace/trace.hh"
#include "util/thread_pool.hh"

namespace psm
{
namespace
{

using core::DecisionRecord;
using core::Telemetry;
using core::TelemetryShards;
using core::TimerStat;

// --- Event registry ------------------------------------------------

TEST(TraceRegistry, NamesRoundTripToDenseIds)
{
    ASSERT_GT(trace::kEventCount, 0u);
    for (std::size_t i = 0; i < trace::kEventCount; ++i) {
        auto id = static_cast<trace::EventId>(i);
        std::string_view name = trace::eventName(id);
        ASSERT_FALSE(name.empty());
        trace::EventId back;
        ASSERT_TRUE(trace::lookupEvent(name, back)) << name;
        EXPECT_EQ(back, id) << name;
    }
    trace::EventId out;
    EXPECT_FALSE(trace::lookupEvent("definitely.not.registered", out));
}

// --- TraceSink -----------------------------------------------------

TEST(TraceSink, FoldAndMergeSemantics)
{
    trace::TraceSink a;
    // Push well past the ring capacity: the automatic fold must keep
    // aggregates exact.
    for (std::size_t i = 0;
         i < trace::TraceSink::kDefaultRingCapacity * 3 + 17; ++i)
        a.count(trace::EventId::ControlPolls);
    a.observe(trace::EventId::ManagerReallocate, 10);
    a.observe(trace::EventId::ManagerReallocate, 4);
    a.gauge(trace::EventId::PoolInflight, 5);

    EXPECT_EQ(a.counterValue(trace::EventId::ControlPolls),
              trace::TraceSink::kDefaultRingCapacity * 3 + 17);
    trace::TimerAgg t = a.timerValue(trace::EventId::ManagerReallocate);
    EXPECT_EQ(t.count, 2u);
    EXPECT_EQ(t.total, 14u);
    EXPECT_EQ(t.max, 10u);
    EXPECT_TRUE(a.touched(trace::EventId::PoolInflight));
    EXPECT_FALSE(a.touched(trace::EventId::FaultMeterNan));

    trace::TraceSink b;
    b.count(trace::EventId::ControlPolls, 3);
    b.observe(trace::EventId::ManagerReallocate, 20);
    b.gauge(trace::EventId::PoolInflight, 9);

    a.mergeFrom(b);
    EXPECT_EQ(a.counterValue(trace::EventId::ControlPolls),
              trace::TraceSink::kDefaultRingCapacity * 3 + 20);
    t = a.timerValue(trace::EventId::ManagerReallocate);
    EXPECT_EQ(t.count, 3u);
    EXPECT_EQ(t.total, 34u);
    EXPECT_EQ(t.max, 20u);
    // Gauges: the merged-in sink's sample wins.
    EXPECT_EQ(a.counterValue(trace::EventId::PoolInflight), 9u);

    a.reset();
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.counterValue(trace::EventId::ControlPolls), 0u);
}

// --- Binary record-log container -----------------------------------

TEST(TraceLog, ContainerRoundTripAndCorruption)
{
    const std::string path = "trace_log_test.bin";
    {
        trace::LogWriter w;
        ASSERT_TRUE(w.open(path));
        ASSERT_TRUE(w.writeRecord(1, {0xaa, 0xbb}));
        ASSERT_TRUE(w.writeRecord(2, {}));
        ASSERT_TRUE(w.writeRecord(7, {1, 2, 3, 4, 5}));
        w.close();
    }
    {
        trace::LogReader r;
        std::string error;
        ASSERT_TRUE(r.open(path, error)) << error;
        std::uint8_t type = 0;
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(r.readRecord(type, payload));
        EXPECT_EQ(type, 1);
        EXPECT_EQ(payload, (std::vector<std::uint8_t>{0xaa, 0xbb}));
        ASSERT_TRUE(r.readRecord(type, payload));
        EXPECT_EQ(type, 2);
        EXPECT_TRUE(payload.empty());
        ASSERT_TRUE(r.readRecord(type, payload));
        EXPECT_EQ(type, 7);
        // Clean EOF: readRecord false, no error.
        EXPECT_FALSE(r.readRecord(type, payload));
        EXPECT_TRUE(r.error().empty());
    }
    // Truncate mid-record: the reader must flag corruption, not EOF.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.put(static_cast<char>(3)); // type byte, then nothing
    }
    {
        trace::LogReader r;
        std::string error;
        ASSERT_TRUE(r.open(path, error)) << error;
        std::uint8_t type = 0;
        std::vector<std::uint8_t> payload;
        while (r.readRecord(type, payload)) {
        }
        EXPECT_FALSE(r.error().empty());
    }
    std::remove(path.c_str());
}

// --- Façade routing ------------------------------------------------

TEST(TelemetryTrace, StringNamesRouteToDenseSlots)
{
    Telemetry tel(Telemetry::Backend::Trace);
    tel.count("control.polls", 3);
    tel.count(trace::EventId::ControlPolls, 2);
    EXPECT_EQ(tel.counter("control.polls"), 5u);
    EXPECT_EQ(tel.counter(trace::EventId::ControlPolls), 5u);

    tel.observe("manager.reallocate", 7);
    tel.observe(trace::EventId::ManagerReallocate, 3);
    TimerStat t = tel.timer("manager.reallocate");
    EXPECT_EQ(t.count, 2u);
    EXPECT_EQ(t.total, 10u);
    EXPECT_EQ(t.max, 7u);

    // Registered names must not leak into the overflow map: the view
    // carries exactly one entry for the routed key.
    EXPECT_EQ(tel.counters().count("control.polls"), 1u);
    EXPECT_EQ(tel.counters().at("control.polls"), 5u);
}

TEST(TelemetryTrace, UnregisteredNamesKeepMapSemantics)
{
    Telemetry tel(Telemetry::Backend::Trace);
    tel.count("x");
    tel.count("x", 4);
    tel.observe("custom.duration", 9);
    EXPECT_EQ(tel.counter("x"), 5u);
    EXPECT_EQ(tel.timer("custom.duration").max, 9u);
    EXPECT_EQ(tel.counter("never.bumped"), 0u);
    // Mixed views: overflow and registered names in one name-ordered
    // map.
    tel.count(trace::EventId::ControlPolls);
    const auto &counters = tel.counters();
    EXPECT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters.begin()->first, "control.polls");
}

TEST(TelemetryTrace, BackendDefaultFlips)
{
    Telemetry::Backend saved = Telemetry::processDefault();
    Telemetry::setProcessDefault(Telemetry::Backend::Legacy);
    EXPECT_EQ(Telemetry().backend(), Telemetry::Backend::Legacy);
    Telemetry::setProcessDefault(Telemetry::Backend::Trace);
    EXPECT_EQ(Telemetry().backend(), Telemetry::Backend::Trace);
    Telemetry::setProcessDefault(saved);
}

// --- Decision ring bound across merge ------------------------------

TEST(TelemetryTrace, DecisionRingBoundHeldAcrossMerge)
{
    auto fill = [](Telemetry &tel, Tick base, std::size_t n) {
        DecisionRecord rec;
        rec.policy = "app-res-aware";
        rec.plan = "spatial-utility";
        rec.mode = "space";
        rec.trigger = "refresh";
        for (std::size_t i = 0; i < n; ++i) {
            rec.when = base + static_cast<Tick>(i);
            tel.record(rec);
        }
    };
    const std::size_t n = Telemetry::maxDecisions - 1000;
    Telemetry a(Telemetry::Backend::Trace);
    Telemetry b(Telemetry::Backend::Trace);
    fill(a, 0, n);
    fill(b, 1u << 20, n);
    ASSERT_EQ(a.decisions().size(), n);

    // Two near-full logs: the merged ring must stay bounded, keeping
    // the newest records (all of b's survive, a's oldest drop).
    a.merge(b);
    const auto &log = a.decisions();
    ASSERT_EQ(log.size(), Telemetry::maxDecisions);
    const std::size_t dropped = 2 * n - Telemetry::maxDecisions;
    EXPECT_EQ(log.front().when, static_cast<Tick>(dropped));
    EXPECT_EQ(log.back().when,
              static_cast<Tick>((1u << 20) + n - 1));
    EXPECT_EQ(log.back().plan, "spatial-utility");
}

// --- JSON hygiene --------------------------------------------------

TEST(TelemetryTrace, JsonEscapesControlCharacters)
{
    Telemetry tel(Telemetry::Backend::Trace);
    DecisionRecord rec;
    rec.trigger = std::string("a\"b\\c\nd\te\rf\x01g\bh\ff");
    rec.policy = "p";
    rec.plan = "q";
    rec.mode = "m";
    tel.record(rec);

    std::ostringstream os;
    tel.dumpJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g\\bh\\ff"),
              std::string::npos)
        << json;
    // No raw control characters may survive into the document.
    for (char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(TelemetryTrace, JsonNonFiniteNumbersAreNull)
{
    for (auto backend :
         {Telemetry::Backend::Trace, Telemetry::Backend::Legacy}) {
        Telemetry tel(backend);
        DecisionRecord rec;
        rec.trigger = "t";
        rec.policy = "p";
        rec.plan = "q";
        rec.mode = "m";
        rec.objective = std::numeric_limits<double>::quiet_NaN();
        rec.budget = std::numeric_limits<double>::infinity();
        tel.record(rec);

        std::ostringstream os;
        tel.dumpJson(os);
        std::string json = os.str();
        EXPECT_NE(json.find("\"objective\":null"), std::string::npos)
            << json;
        EXPECT_NE(json.find("\"budget_w\":null"), std::string::npos)
            << json;
        EXPECT_EQ(json.find("nan"), std::string::npos) << json;
        EXPECT_EQ(json.find("inf"), std::string::npos) << json;
    }
}

// --- Trace/legacy equivalence under parallel publish ---------------

void
publishShardMix(TelemetryShards &shards)
{
    util::ThreadPool::global().parallelFor(
        shards.size(), [&](std::size_t s) {
            Telemetry &bus = shards.shard(s);
            for (std::size_t i = 0; i < 200; ++i) {
                bus.count(trace::EventId::ControlPolls);
                bus.count("allocator.allocate", s + 1);
                bus.observe(trace::EventId::ManagerReallocate,
                            static_cast<Tick>((s * 7 + i) % 11));
                bus.observe("custom.timer",
                            static_cast<Tick>(i % 5 + s));
                bus.count("custom.key", 2);
            }
            DecisionRecord rec;
            rec.when = static_cast<Tick>(s);
            rec.trigger = "shard";
            rec.policy = "p";
            rec.plan = "q";
            rec.mode = "m";
            bus.record(rec);
        });
}

TEST(TelemetryTrace, TraceAndLegacyAggregateIdentically)
{
    Telemetry::Backend saved = Telemetry::processDefault();

    Telemetry::setProcessDefault(Telemetry::Backend::Trace);
    TelemetryShards trace_shards(8);
    publishShardMix(trace_shards);
    Telemetry trace_bus(Telemetry::Backend::Trace);
    trace_shards.mergeInto(trace_bus);

    Telemetry::setProcessDefault(Telemetry::Backend::Legacy);
    TelemetryShards legacy_shards(8);
    publishShardMix(legacy_shards);
    Telemetry legacy_bus(Telemetry::Backend::Legacy);
    legacy_shards.mergeInto(legacy_bus);

    Telemetry::setProcessDefault(saved);

    // Counter views must be identical maps.
    EXPECT_EQ(trace_bus.counters(), legacy_bus.counters());

    // Timer views: same keys, same aggregates.
    const auto &tt = trace_bus.timers();
    const auto &lt = legacy_bus.timers();
    ASSERT_EQ(tt.size(), lt.size());
    for (const auto &[name, stat] : tt) {
        auto it = lt.find(name);
        ASSERT_NE(it, lt.end()) << name;
        EXPECT_EQ(stat.count, it->second.count) << name;
        EXPECT_EQ(stat.total, it->second.total) << name;
        EXPECT_EQ(stat.max, it->second.max) << name;
    }

    // Decision logs: same order (shard-index merge order), same
    // content.
    const auto &td = trace_bus.decisions();
    const auto &ld = legacy_bus.decisions();
    ASSERT_EQ(td.size(), ld.size());
    ASSERT_EQ(td.size(), 8u);
    for (std::size_t i = 0; i < td.size(); ++i) {
        EXPECT_EQ(td[i].when, ld[i].when);
        EXPECT_EQ(td[i].trigger, ld[i].trigger);
    }

    // Cross-backend merge bridges through the name registry: folding
    // the legacy bus into the trace bus doubles every aggregate.
    Telemetry combined(Telemetry::Backend::Trace);
    combined.merge(trace_bus);
    combined.merge(legacy_bus);
    EXPECT_EQ(combined.counter("control.polls"),
              2 * trace_bus.counter("control.polls"));
    EXPECT_EQ(combined.timer("manager.reallocate").count,
              2 * trace_bus.timer("manager.reallocate").count);
}

} // namespace
} // namespace psm
