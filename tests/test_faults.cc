/**
 * @file
 * Tests for the fault-injection layer (util::FaultInjector) and the
 * graceful-degradation paths it drives: meter fallback + staleness
 * watchdog in the ControlLoop, ESD loss/restore and app kills in the
 * ServerManager, actuation faults demoting to fair RAPL, and node
 * crash isolation in the NodePool — plus the determinism guarantee
 * that one seed replays the identical fault schedule at any thread
 * width.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/node_pool.hh"
#include "core/control_loop.hh"
#include "core/coordinator.hh"
#include "core/manager.hh"
#include "core/telemetry.hh"
#include "esd/battery.hh"
#include "perf/workloads.hh"
#include "power/power_meter.hh"
#include "sim/server.hh"
#include "util/fault.hh"
#include "util/thread_pool.hh"

namespace psm
{
namespace
{

using perf::workload;
using util::FaultInjector;
using util::FaultKind;
using util::FaultPlanConfig;
using util::FaultWindow;

// --- FaultInjector ----------------------------------------------------------

TEST(Faults, DisabledInjectorNeverFires)
{
    FaultInjector off;
    EXPECT_FALSE(off.enabled());
    FaultInjector zero{FaultPlanConfig{}};
    EXPECT_FALSE(zero.enabled());
    for (Tick t = 0; t < 1000; t += 7) {
        EXPECT_FALSE(off.inject(FaultKind::MeterNan, t));
        EXPECT_FALSE(zero.inject(FaultKind::NodeCrash, t, t, 0));
    }
}

TEST(Faults, RollsAreDeterministicAndRateBounded)
{
    FaultPlanConfig cfg;
    cfg.meterNanRate = 0.3;
    cfg.seed = 42;
    FaultInjector one(cfg);
    FaultInjector two(cfg);

    int fires = 0;
    const int rolls = 10000;
    for (Tick t = 0; t < static_cast<Tick>(rolls); ++t) {
        bool a = one.inject(FaultKind::MeterNan, t);
        // Same (seed, stream, kind, tick, salt) -> same answer.
        EXPECT_EQ(a, two.inject(FaultKind::MeterNan, t));
        fires += a ? 1 : 0;
    }
    // Uniform variate against 0.3: the hit rate lands near it.
    EXPECT_GT(fires, rolls / 5);
    EXPECT_LT(fires, rolls * 2 / 5);

    // Certainty and impossibility are exact.
    cfg.meterNanRate = 1.0;
    FaultInjector always(cfg);
    for (Tick t = 0; t < 100; ++t)
        EXPECT_TRUE(always.inject(FaultKind::MeterNan, t));
    // A different kind with rate 0 never fires on the same injector.
    EXPECT_FALSE(always.inject(FaultKind::AppKill, 5));
}

TEST(Faults, SeedsAndStreamsDecorrelateRolls)
{
    FaultPlanConfig cfg;
    cfg.meterStaleRate = 0.5;
    cfg.seed = 1;
    FaultInjector base(cfg, 0);
    FaultInjector other_stream(cfg, 1);
    cfg.seed = 2;
    FaultInjector other_seed(cfg, 0);

    bool stream_differs = false, seed_differs = false;
    for (Tick t = 0; t < 256; ++t) {
        bool b = base.inject(FaultKind::MeterStale, t);
        stream_differs |=
            b != other_stream.inject(FaultKind::MeterStale, t);
        seed_differs |=
            b != other_seed.inject(FaultKind::MeterStale, t);
    }
    EXPECT_TRUE(stream_differs);
    EXPECT_TRUE(seed_differs);
}

TEST(Faults, ScheduledWindowsFireExactlyInRange)
{
    FaultPlanConfig cfg; // no ambient rates at all
    cfg.schedule.push_back(FaultWindow{FaultKind::AppKill, 100, 200, 7});
    FaultInjector inj(cfg);
    EXPECT_TRUE(inj.enabled());

    EXPECT_FALSE(inj.inject(FaultKind::AppKill, 99, 0, 7));
    EXPECT_TRUE(inj.inject(FaultKind::AppKill, 100, 0, 7));
    EXPECT_TRUE(inj.inject(FaultKind::AppKill, 199, 0, 7));
    EXPECT_FALSE(inj.inject(FaultKind::AppKill, 200, 0, 7)); // end open
    // Wrong target or kind: the window does not apply.
    EXPECT_FALSE(inj.inject(FaultKind::AppKill, 150, 0, 8));
    EXPECT_FALSE(inj.inject(FaultKind::MeterNan, 150));
    EXPECT_TRUE(inj.scheduled(FaultKind::AppKill, 150, 7));
    EXPECT_FALSE(inj.scheduled(FaultKind::AppKill, 250, 7));

    // target = -1 in the window matches every roll target.
    FaultPlanConfig any;
    any.schedule.push_back(FaultWindow{FaultKind::NodeCrash, 10, 20, -1});
    FaultInjector any_inj(any);
    EXPECT_TRUE(any_inj.inject(FaultKind::NodeCrash, 15, 0, 3));
    EXPECT_TRUE(any_inj.inject(FaultKind::NodeCrash, 15, 0, -1));
}

TEST(Faults, AmbientRateScalesKindsSensibly)
{
    FaultPlanConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    cfg.setAmbientRate(0.02);
    EXPECT_TRUE(cfg.enabled());
    // Frequent, benign faults at the ambient rate; destructive ones
    // scaled down; per-interval node crashes scaled up.
    EXPECT_DOUBLE_EQ(cfg.rate(FaultKind::MeterStale), 0.02);
    EXPECT_LT(cfg.rate(FaultKind::AppKill),
              cfg.rate(FaultKind::MeterStale));
    EXPECT_GT(cfg.rate(FaultKind::NodeCrash),
              cfg.rate(FaultKind::MeterStale));
    EXPECT_GT(cfg.rate(FaultKind::EsdLoss), 0.0);
    EXPECT_GT(cfg.rate(FaultKind::EsdFade), 0.0);
    EXPECT_GT(cfg.rate(FaultKind::ActuationStuck), 0.0);
    EXPECT_GT(cfg.rate(FaultKind::MeterNan), 0.0);
}

TEST(Faults, AmbientEnvVarArmsManagersUnlessPlanIsExplicit)
{
    const char *prev = std::getenv("PSM_FAULT_RATE");
    std::string saved = prev ? prev : "";

    ::setenv("PSM_FAULT_RATE", "0.05", 1);
    {
        sim::Server server;
        core::ServerManager manager(server);
        EXPECT_TRUE(manager.faultInjector().enabled());
        EXPECT_DOUBLE_EQ(
            manager.faultInjector().config().rate(FaultKind::MeterStale),
            0.05);
        // The derived seed follows the manager seed, so the ambient
        // schedule is reproducible too.
        EXPECT_EQ(manager.faultInjector().config().seed,
                  manager.config().seed);

        // An explicitly configured plan wins over the environment.
        sim::Server other;
        core::ManagerConfig cfg;
        cfg.faults.meterNanRate = 0.1;
        core::ServerManager explicit_mgr(other, cfg);
        EXPECT_DOUBLE_EQ(explicit_mgr.faultInjector().config().rate(
                             FaultKind::MeterStale),
                         0.0);
        EXPECT_DOUBLE_EQ(explicit_mgr.faultInjector().config().rate(
                             FaultKind::MeterNan),
                         0.1);
    }
    ::unsetenv("PSM_FAULT_RATE");
    {
        sim::Server server;
        core::ServerManager manager(server);
        EXPECT_FALSE(manager.faultInjector().enabled());
    }
    if (!saved.empty())
        ::setenv("PSM_FAULT_RATE", saved.c_str(), 1);
}

// --- PowerMeter hardening ---------------------------------------------------

TEST(Faults, MeterSanitizesGarbageSamples)
{
    power::PowerMeter meter(0);
    meter.push(0, 100, 50.0, 100.0);
    meter.push(100, 100, std::nan(""), 100.0);
    meter.push(200, 100, -5.0, 100.0);
    EXPECT_EQ(meter.droppedSamples(), 2u);
    // Garbage is replaced by the last accepted reading, keeping the
    // aggregates finite and the averages sane.
    EXPECT_TRUE(std::isfinite(meter.totalEnergy()));
    EXPECT_NEAR(meter.totalEnergy(), 50.0 * toSeconds(300), 1e-9);
    EXPECT_NEAR(meter.averagePower(), 50.0, 1e-9);
}

// --- ControlLoop: meter fallback + watchdog ---------------------------------

/** Minimal delegate: records reallocation triggers, nothing else. */
struct RecordingDelegate : core::ControlLoop::Delegate
{
    std::vector<std::string> triggers;
    void onDeparture(const core::AccountantEvent &) override {}
    bool onDrift(int) override { return false; }
    bool onCalibrationsDue() override { return false; }
    void reallocate(const std::string &trigger) override
    {
        triggers.push_back(trigger);
    }
};

TEST(Faults, MeterFaultFallsBackThenWatchdogThenRecovers)
{
    sim::Server server;
    server.setCap(60.0);
    server.admit(workload("kmeans"));
    core::Coordinator coord;
    core::Telemetry tel;
    core::ControlLoopConfig cc;
    cc.controlPeriod = toTicks(0.1);
    cc.meterWatchdog = toTicks(0.3);
    RecordingDelegate delegate;
    core::ControlLoop loop(server, coord, cc, delegate, &tel);

    FaultPlanConfig fc;
    fc.seed = 5;
    // The meter is unreadable for sim-time [0.5 s, 1.5 s).
    fc.schedule.push_back(FaultWindow{FaultKind::MeterNan,
                                      toTicks(0.5), toTicks(1.5), -1});
    FaultInjector inj(fc);
    loop.setFaultInjector(&inj);

    auto runFor = [&](double secs) {
        Tick end = server.now() + toTicks(secs);
        while (server.now() < end) {
            loop.maybePoll();
            server.step();
        }
    };

    runFor(0.45); // healthy
    EXPECT_EQ(tel.counter("fault.meter_nan"), 0u);
    EXPECT_EQ(loop.meterStaleSince(), maxTick);

    runFor(0.6); // ~1.05 s: inside the outage, past the watchdog
    EXPECT_GT(tel.counter("fault.meter_nan"), 0u);
    EXPECT_GT(tel.counter("degraded.meter_fallback"), 0u);
    EXPECT_NE(loop.meterStaleSince(), maxTick);
    EXPECT_GT(tel.counter("degraded.meter_watchdog"), 0u);

    runFor(0.8); // past 1.5 s: readings are back
    EXPECT_GE(tel.counter("degraded.meter_recovered"), 1u);
    EXPECT_EQ(loop.meterStaleSince(), maxTick);
}

// --- ServerManager: ESD loss / app kill / stuck actuation -------------------

TEST(Faults, EsdLossDemotesToTimeAndRestores)
{
    sim::Server server;
    server.attachEsd(esd::leadAcidUps());
    server.setCap(80.0);
    core::ManagerConfig cfg;
    cfg.policy = core::PolicyKind::AppResEsdAware;
    cfg.oracleUtilities = true;
    cfg.faults.seed = 11;
    cfg.faults.esdOutage = toTicks(2.0);
    cfg.faults.schedule.push_back(FaultWindow{
        FaultKind::EsdLoss, toTicks(1.0), toTicks(1.1), -1});
    core::ServerManager manager(server, cfg);
    manager.addApp(workload("stream"));
    manager.addApp(workload("kmeans"));

    manager.run(toTicks(1.5));
    const core::Telemetry &tel = manager.telemetry();
    EXPECT_GE(tel.counter("fault.esd_loss"), 1u);
    EXPECT_GE(tel.counter("degraded.esd_unavailable"), 1u);
    // The battery is still installed but the management plane cannot
    // see it, and the replan stopped relying on it.
    EXPECT_TRUE(server.esdInstalled());
    EXPECT_FALSE(server.hasEsd());
    EXPECT_NE(manager.mode(), core::CoordinationMode::EsdAssisted);

    manager.run(toTicks(2.0)); // past the 2 s outage
    EXPECT_GE(tel.counter("degraded.esd_restored"), 1u);
    EXPECT_TRUE(server.hasEsd());
}

TEST(Faults, KilledAppsAreReapedAndAccounted)
{
    sim::Server server;
    server.setCap(100.0);
    core::ManagerConfig cfg;
    cfg.policy = core::PolicyKind::AppResAware;
    cfg.oracleUtilities = true;
    cfg.faults.seed = 3;
    // Both apps die in one control period without calling finished().
    cfg.faults.schedule.push_back(FaultWindow{
        FaultKind::AppKill, toTicks(0.5), toTicks(0.55), -1});
    core::ServerManager manager(server, cfg);
    int a = manager.addApp(workload("stream"));
    int b = manager.addApp(workload("kmeans"));

    manager.run(toTicks(2.0));

    EXPECT_FALSE(server.hasApp(a));
    EXPECT_FALSE(server.hasApp(b));
    EXPECT_FALSE(manager.anyAppRunning());
    const core::Telemetry &tel = manager.telemetry();
    EXPECT_EQ(tel.counter("fault.app_kill"), 2u);
    // The Accountant noticed the vanished apps and synthesized their
    // E3s; the manager reaped the already-gone entries.
    EXPECT_EQ(tel.counter("event.E3-departure"), 2u);
    EXPECT_EQ(tel.counter("degraded.app_reaped"), 2u);
    for (const core::AppRecord &rec : manager.records()) {
        EXPECT_TRUE(rec.done);
        EXPECT_GT(rec.beats, 0.0); // pre-kill progress was harvested
        EXPECT_NE(rec.finishedAt, maxTick);
    }
}

TEST(Faults, StuckActuationDemotesToFairRapl)
{
    sim::Server server;
    server.setCap(100.0);
    core::ManagerConfig cfg;
    cfg.policy = core::PolicyKind::AppResAware;
    cfg.oracleUtilities = true;
    cfg.faults.seed = 9;
    cfg.faults.actuationFailRate = 1.0; // every reallocation faults
    core::ServerManager manager(server, cfg);
    manager.addApp(workload("stream"));
    manager.addApp(workload("kmeans"));
    manager.run(toTicks(1.0));

    const core::Telemetry &tel = manager.telemetry();
    EXPECT_GT(tel.counter("fault.actuation_stuck"), 0u);
    EXPECT_GT(tel.counter("degraded.knobs_to_rapl"), 0u);
    // The fallback plan is the hardware-enforced fair split, not a
    // knob-actuated utility plan.
    bool any_fair_rapl = false;
    for (const core::DecisionRecord &d : tel.decisions())
        any_fair_rapl |= d.plan == "fair-rapl-space" ||
                         d.plan == "fair-rapl-time";
    EXPECT_TRUE(any_fair_rapl);
}

// --- NodePool: crash isolation ----------------------------------------------

TEST(Faults, NodeCrashIsolatesThenRestarts)
{
    cluster::NodePoolConfig pc;
    pc.servers = 3;
    pc.seedBase = 50;
    pc.serverCap = 100.0;
    pc.manager.oracleUtilities = true;
    pc.seedWorkloadCorpus = false;
    pc.faults.seed = 1;
    // NodeCrash windows are keyed on the node's 1-based runAll()
    // attempt counter: node 1 crashes on its first attempt only.
    pc.faults.schedule.push_back(FaultWindow{FaultKind::NodeCrash, 1, 2, 1});
    cluster::NodePool pool(pc);
    for (std::size_t s = 0; s < pool.size(); ++s)
        pool[s].manager->addApp(workload("stream"));

    core::Telemetry tel;
    pool.runAll(toTicks(1.0), &tel);
    EXPECT_EQ(tel.counter("fault.node_crash"), 1u);
    EXPECT_EQ(tel.counter("degraded.node_isolated"), 1u);
    // The crashed node sat the interval out; the others advanced.
    EXPECT_EQ(pool[1].server->now(), 0u);
    EXPECT_EQ(pool[0].server->now(), toTicks(1.0));
    EXPECT_EQ(pool[2].server->now(), toTicks(1.0));

    pool.runAll(toTicks(1.0), &tel); // attempt 2: healthy again
    EXPECT_EQ(tel.counter("fault.node_crash"), 1u);
    EXPECT_EQ(tel.counter("degraded.node_restarted"), 1u);
    EXPECT_EQ(pool[1].server->now(), toTicks(1.0)); // lags one interval
    EXPECT_EQ(pool[0].server->now(), toTicks(2.0));
}

TEST(Faults, ConsecutiveCrashesBackOffExponentially)
{
    cluster::NodePoolConfig pc;
    pc.servers = 2;
    pc.seedBase = 60;
    pc.serverCap = 100.0;
    pc.manager.oracleUtilities = true;
    pc.seedWorkloadCorpus = false;
    pc.faults.seed = 2;
    // Node 0 crashes on attempts 1 and 2 (streak of two).
    pc.faults.schedule.push_back(FaultWindow{FaultKind::NodeCrash, 1, 3, 0});
    cluster::NodePool pool(pc);
    for (std::size_t s = 0; s < pool.size(); ++s)
        pool[s].manager->addApp(workload("kmeans"));

    core::Telemetry tel;
    // Attempt 1: crash (streak 1, retry immediately).  Attempt 2:
    // crash again (streak 2, cooldown 1).  Attempt 3: skipped.
    // Attempt 4: healthy run.
    for (int i = 0; i < 4; ++i)
        pool.runAll(toTicks(0.5), &tel);
    EXPECT_EQ(tel.counter("fault.node_crash"), 2u);
    EXPECT_EQ(tel.counter("degraded.node_isolated"), 2u);
    EXPECT_EQ(tel.counter("degraded.node_skipped"), 1u);
    EXPECT_EQ(tel.counter("degraded.node_restarted"), 1u);
    EXPECT_EQ(pool[0].server->now(), toTicks(0.5)); // one good interval
    EXPECT_EQ(pool[1].server->now(), toTicks(2.0)); // all four
}

TEST(Faults, CrashBackoffShiftClampedForHugeStreaks)
{
    cluster::NodePoolConfig pc;
    pc.servers = 1;
    pc.seedBase = 61;
    pc.serverCap = 100.0;
    pc.manager.oracleUtilities = true;
    pc.seedWorkloadCorpus = false;
    pc.faults.seed = 3;
    // Node 0 crashes on every attempt, forever.
    pc.faults.schedule.push_back(
        FaultWindow{FaultKind::NodeCrash, 1, maxTick, 0});
    cluster::NodePool pool(pc);
    pool[0].manager->addApp(workload("stream"));

    // A node that has been flapping for ages: the naive
    // `1 << (streak - 2)` backoff is UB once the streak passes the
    // width of int.  The shift amount must be clamped so the cooldown
    // stays at the 8-interval cap.
    pool[0].crashStreak = 1000;
    core::Telemetry tel;
    pool.runAll(toTicks(0.5), &tel);
    EXPECT_EQ(tel.counter("fault.node_crash"), 1u);
    EXPECT_EQ(pool[0].crashStreak, 1001);
    EXPECT_EQ(pool[0].cooldown, 8);

    // The streak itself saturates instead of eventually overflowing.
    pool[0].crashStreak = 1 << 20;
    pool[0].cooldown = 0;
    pool.runAll(toTicks(0.5), &tel);
    EXPECT_EQ(pool[0].crashStreak, 1 << 20);
    EXPECT_EQ(pool[0].cooldown, 8);
}

TEST(Faults, AmbientConfiguredManagerRunsToCompletion)
{
    // Under the psm_tests_ambient_faults ctest job PSM_FAULT_RATE is
    // set, so this default-configured manager rolls ambient faults of
    // every kind; in a clean environment it is a plain run.  Either
    // way the control plane must reach the horizon without crashing,
    // and every injected fault must surface a degradation action.
    sim::Server server;
    server.attachEsd(esd::leadAcidUps());
    server.setCap(90.0);
    core::ManagerConfig cfg;
    cfg.policy = core::PolicyKind::AppResEsdAware;
    cfg.oracleUtilities = true;
    core::ServerManager manager(server, cfg);
    manager.addApp(workload("stream"));
    manager.addApp(workload("kmeans"));
    manager.run(toTicks(10.0));
    EXPECT_EQ(server.now(), toTicks(10.0));

    if (manager.faultInjector().enabled()) {
        std::uint64_t faults = 0, degraded = 0;
        for (const auto &[name, value] :
             manager.telemetry().counters()) {
            if (name.rfind("fault.", 0) == 0)
                faults += value;
            if (name.rfind("degraded.", 0) == 0)
                degraded += value;
        }
        if (faults > 0) {
            EXPECT_GT(degraded, 0u);
        }
    }
}

// --- Determinism across thread widths ---------------------------------------

TEST(Faults, PoolFaultScheduleIsThreadWidthInvariant)
{
    auto runPool = [](unsigned width) {
        util::ThreadPool::configureGlobal(width);
        cluster::NodePoolConfig pc;
        pc.servers = 4;
        pc.seedBase = 77;
        pc.serverCap = 90.0;
        pc.manager.oracleUtilities = true;
        pc.seedWorkloadCorpus = false;
        pc.manager.faults.meterNanRate = 0.05;
        pc.manager.faults.appKillRate = 0.02;
        pc.faults.nodeCrashRate = 0.2;
        cluster::NodePool pool(pc);
        for (std::size_t s = 0; s < pool.size(); ++s) {
            pool[s].manager->addApp(workload("stream"));
            pool[s].manager->addApp(workload("kmeans"));
        }
        for (int i = 0; i < 6; ++i)
            pool.runAll(toTicks(0.5));
        std::map<std::string, std::uint64_t> out;
        core::Telemetry agg = pool.aggregateTelemetry();
        for (const auto &[name, value] : agg.counters()) {
            if (name.rfind("fault.", 0) == 0 ||
                name.rfind("degraded.", 0) == 0)
                out.emplace(name, value);
        }
        return std::make_pair(out, pool.totalEnergy());
    };

    auto serial = runPool(1);
    auto wide = runPool(4);
    util::ThreadPool::configureGlobal(0); // restore the default

    // Something actually faulted, and the schedule (every fault and
    // degradation counter) plus the physics replayed identically.
    EXPECT_FALSE(serial.first.empty());
    EXPECT_EQ(serial.first, wide.first);
    EXPECT_DOUBLE_EQ(serial.second, wide.second);
}

} // namespace
} // namespace psm
