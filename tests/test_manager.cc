/**
 * @file
 * Integration tests of the full per-server framework: the manager's
 * control loop, all five policies, cap adherence and the dynamic
 * scenarios of Section IV-C.
 */

#include <gtest/gtest.h>

#include "core/manager.hh"
#include "perf/workloads.hh"

namespace psm::core
{
namespace
{

using perf::workload;
using perf::workloadLibrary;

struct Harness
{
    sim::Server server;
    std::unique_ptr<ServerManager> manager;

    explicit Harness(PolicyKind policy, Watts cap, bool esd = false,
                     bool oracle = false)
    {
        if (esd)
            server.attachEsd(esd::leadAcidUps());
        server.setCap(cap);
        ManagerConfig cfg;
        cfg.policy = policy;
        cfg.oracleUtilities = oracle;
        manager = std::make_unique<ServerManager>(server, cfg);
        manager->seedCorpus(workloadLibrary());
    }
};

class PolicyAdherence : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyAdherence, HoldsTheHundredWattCap)
{
    Harness h(GetParam(), 100.0,
              GetParam() == PolicyKind::AppResEsdAware);
    h.manager->addApp(workload("stream"));
    h.manager->addApp(workload("kmeans"));
    h.manager->run(toTicks(30.0));

    // Average at/below the cap, only marginal transient overshoot.
    EXPECT_LE(h.server.meter().averagePower(), 100.5);
    // The admission transient (apps run before the first allocation
    // lands) may briefly overshoot; steady state rides at the cap
    // with only noise-level excursions, so the energy drawn above
    // the cap must be a negligible share of the total.
    EXPECT_LT(h.server.meter().worstOvershoot(), 13.0);
    EXPECT_LT(h.server.meter().violationEnergy(),
              0.01 * h.server.meter().totalEnergy());
    // And real progress was made.
    EXPECT_GT(h.manager->serverNormalizedThroughput(), 0.4);
    EXPECT_EQ(h.manager->mode(), CoordinationMode::Space);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyAdherence,
    ::testing::Values(PolicyKind::UtilUnaware,
                      PolicyKind::ServerResAware, PolicyKind::AppAware,
                      PolicyKind::AppResAware,
                      PolicyKind::AppResEsdAware));

TEST(Manager, UncappedRunsEverythingFlatOut)
{
    Harness h(PolicyKind::AppResAware, 0.0);
    h.manager->addApp(workload("stream"));
    h.manager->addApp(workload("kmeans"));
    h.manager->run(toTicks(20.0));
    EXPECT_GT(h.manager->serverNormalizedThroughput(), 0.9);
    EXPECT_NEAR(h.server.meter().averagePower(), 110.0, 8.0);
}

TEST(Manager, EightyWattCapForcesTemporalCoordination)
{
    Harness h(PolicyKind::AppResAware, 80.0);
    h.manager->addApp(workload("stream"));
    h.manager->addApp(workload("kmeans"));
    h.manager->run(toTicks(30.0));
    EXPECT_EQ(h.manager->mode(), CoordinationMode::Time);
    // Both apps make some progress (fair alternation).
    for (const auto &rec : h.manager->records())
        EXPECT_GT(rec.normalizedPerf(h.server.now()), 0.02)
            << rec.name;
}

TEST(Manager, EightyWattCapWithEsdUsesConsolidatedDutyCycling)
{
    Harness h(PolicyKind::AppResEsdAware, 80.0, true);
    h.manager->addApp(workload("stream"));
    h.manager->addApp(workload("kmeans"));
    h.manager->run(toTicks(30.0));
    EXPECT_EQ(h.manager->mode(), CoordinationMode::EsdAssisted);
    EXPECT_GT(h.server.battery()->totalDelivered(), 0.0);
}

TEST(Manager, EsdBeatsTemporalAtStringentCap)
{
    // The headline Fig. 10 result: the battery roughly doubles
    // throughput under the 80 W cap.
    Harness time_only(PolicyKind::AppResAware, 80.0);
    time_only.manager->addApp(workload("stream"));
    time_only.manager->addApp(workload("kmeans"));
    time_only.manager->run(toTicks(40.0));

    Harness with_esd(PolicyKind::AppResEsdAware, 80.0, true);
    with_esd.manager->addApp(workload("stream"));
    with_esd.manager->addApp(workload("kmeans"));
    with_esd.manager->run(toTicks(40.0));

    EXPECT_GT(with_esd.manager->serverNormalizedThroughput(),
              1.5 * time_only.manager->serverNormalizedThroughput());
}

TEST(Manager, OnlyEsdMakesProgressAtSeventyWatts)
{
    Harness plain(PolicyKind::AppResAware, 70.0);
    plain.manager->addApp(workload("stream"));
    plain.manager->addApp(workload("kmeans"));
    plain.manager->run(toTicks(30.0));
    EXPECT_LT(plain.manager->serverNormalizedThroughput(), 0.05);

    Harness esd(PolicyKind::AppResEsdAware, 70.0, true);
    esd.manager->addApp(workload("stream"));
    esd.manager->addApp(workload("kmeans"));
    esd.manager->run(toTicks(30.0));
    EXPECT_GT(esd.manager->serverNormalizedThroughput(), 0.15);
    // And still under the cap on average.
    EXPECT_LE(esd.server.meter().averagePower(), 71.0);
}

TEST(Manager, ArrivalTriggersReallocation)
{
    // Section IV-C (Fig. 11a): SSSP alone, then x264 arrives.
    Harness h(PolicyKind::AppResAware, 100.0);
    int sssp = h.manager->addApp(workload("sssp"));
    h.manager->run(toTicks(10.0));
    Watts sssp_alone = h.server.observedAppPower(sssp);

    h.manager->addApp(workload("x264"));
    h.manager->run(toTicks(10.0));
    Watts sssp_shared = h.server.observedAppPower(sssp);

    // SSSP's power shrank to make room for the arrival.
    EXPECT_LT(sssp_shared, sssp_alone - 2.0);
    const Allocation &alloc = h.manager->lastAllocation();
    EXPECT_EQ(alloc.apps.size(), 2u);
    EXPECT_TRUE(alloc.allScheduled());
    // Reallocation (calibration + decision) completed within ~1 s
    // (the paper reports 800 ms).
    EXPECT_LT(h.manager->lastReallocationLatency(), toTicks(1.5));
    EXPECT_GT(h.manager->lastReallocationLatency(), 0u);
}

TEST(Manager, DepartureReleasesPowerToSurvivor)
{
    // Section IV-C (Fig. 11b): kmeans + PageRank, PageRank departs.
    Harness h(PolicyKind::AppResAware, 100.0);
    perf::AppProfile pr = workload("pagerank");
    pr.totalHeartbeats = 2000.0; // finishes in ~12 s
    int kmeans = h.manager->addApp(workload("kmeans"));
    h.manager->addApp(pr);
    h.manager->run(toTicks(8.0));
    Watts kmeans_shared = h.server.observedAppPower(kmeans);

    h.manager->run(toTicks(20.0));
    // PageRank finished and was removed.
    bool departed = false;
    for (const auto &ev : h.manager->eventLog())
        departed |= ev.kind == EventKind::Departure;
    EXPECT_TRUE(departed);
    EXPECT_EQ(h.server.apps().size(), 1u);
    // kmeans scaled up into the freed headroom.
    Watts kmeans_alone = h.server.observedAppPower(kmeans);
    EXPECT_GT(kmeans_alone, kmeans_shared + 2.0);
}

TEST(Manager, CapDropTriggersModeSwitch)
{
    // E1: a 100 -> 80 W cap change moves the server from spatial to
    // temporal coordination.
    Harness h(PolicyKind::AppResAware, 100.0);
    h.manager->addApp(workload("stream"));
    h.manager->addApp(workload("kmeans"));
    h.manager->run(toTicks(10.0));
    EXPECT_EQ(h.manager->mode(), CoordinationMode::Space);

    h.manager->setCap(80.0);
    h.manager->run(toTicks(10.0));
    EXPECT_EQ(h.manager->mode(), CoordinationMode::Time);
    bool saw_e1 = false;
    for (const auto &ev : h.manager->eventLog())
        saw_e1 |= ev.kind == EventKind::CapChange;
    EXPECT_TRUE(saw_e1);
}

TEST(Manager, PhaseChangeTriggersDriftRecalibration)
{
    // E4: a mid-run phase change makes observed power diverge from
    // the allocation; the Accountant fires and the manager
    // recalibrates.
    Harness h(PolicyKind::AppResAware, 100.0, false, true);
    perf::AppProfile km = workload("kmeans");
    int id = h.manager->addApp(km);
    h.server.app(id).setPhases({{0.25, 1.0, 1.0}, {1.0, 0.3, 25.0}});
    h.manager->addApp(workload("x264"));
    h.manager->run(toTicks(60.0));

    bool saw_drift = false;
    for (const auto &ev : h.manager->eventLog())
        saw_drift |= ev.kind == EventKind::Drift &&
                     ev.appId == id;
    EXPECT_TRUE(saw_drift);
}

TEST(Manager, RunUntilAllDoneStops)
{
    Harness h(PolicyKind::AppResAware, 100.0);
    perf::AppProfile tiny = workload("kmeans");
    tiny.totalHeartbeats = 300.0;
    h.manager->addApp(tiny);
    h.manager->runUntilAllDone(toTicks(120.0));
    EXPECT_FALSE(h.manager->anyAppRunning());
    auto recs = h.manager->records();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].done);
    EXPECT_NEAR(recs[0].beats, 300.0, 1.0);
}

TEST(Manager, RecordsTrackNormalizedThroughput)
{
    Harness h(PolicyKind::AppResAware, 0.0);
    h.manager->addApp(workload("kmeans"));
    h.manager->run(toTicks(10.0));
    auto recs = h.manager->records();
    ASSERT_EQ(recs.size(), 1u);
    // Uncapped: close to 1.0 (warm-up eats a little).
    EXPECT_GT(recs[0].normalizedPerf(h.server.now()), 0.9);
    EXPECT_LE(recs[0].normalizedPerf(h.server.now()), 1.01);
}

TEST(ManagerDeath, DuplicateActiveAppNameRejected)
{
    Harness h(PolicyKind::AppResAware, 100.0);
    h.manager->addApp(workload("kmeans"));
    EXPECT_DEATH(h.manager->addApp(workload("kmeans")),
                 "already exists");
}

} // namespace
} // namespace psm::core
