/**
 * @file
 * Tests for the collaborative filtering stack: matrices, ALS,
 * sampling, the estimator and cross-validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cf/als.hh"
#include "cf/cross_validation.hh"
#include "cf/estimator.hh"
#include "cf/matrix.hh"
#include "cf/profiler.hh"
#include "cf/sampler.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"

namespace psm::cf
{
namespace
{

using power::defaultPlatform;

// --- Matrix ---------------------------------------------------------------

TEST(Matrix, BasicAccessAndAppend)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
    m.at(0, 0) = 7.0;
    EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);

    m.appendRow({1.0, 2.0, 3.0});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.row(2), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Matrix, RmseAgainstSelfIsZero)
{
    Matrix m(3, 3, 2.0);
    EXPECT_DOUBLE_EQ(m.rmse(m), 0.0);
    Matrix n(3, 3, 4.0);
    EXPECT_DOUBLE_EQ(m.rmse(n), 2.0);
}

TEST(MaskedMatrix, ObservationBookkeeping)
{
    MaskedMatrix m(2, 4);
    EXPECT_EQ(m.observedCount(), 0u);
    m.observe(0, 1, 5.0);
    m.observe(1, 3, 9.0);
    EXPECT_TRUE(m.observed(0, 1));
    EXPECT_FALSE(m.observed(0, 0));
    EXPECT_EQ(m.observedCount(), 2u);
    EXPECT_DOUBLE_EQ(m.density(), 0.25);
    EXPECT_DOUBLE_EQ(m.observedMean(), 7.0);
    auto [lo, hi] = m.observedRange();
    EXPECT_DOUBLE_EQ(lo, 5.0);
    EXPECT_DOUBLE_EQ(hi, 9.0);

    m.unobserve(0, 1);
    EXPECT_EQ(m.observedCount(), 1u);
    // Re-observing the same cell does not double count.
    m.observe(1, 3, 9.0);
    EXPECT_EQ(m.observedCount(), 1u);
}

TEST(MaskedMatrix, AppendRows)
{
    MaskedMatrix m(0, 0);
    m.appendObservedRow({1.0, 2.0});
    m.appendEmptyRow();
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_TRUE(m.observed(0, 0));
    EXPECT_FALSE(m.observed(1, 0));
}

// --- ALS --------------------------------------------------------------------

TEST(SolveSpd, MatchesKnownSolution)
{
    // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
    auto x = solveSpd({4.0, 1.0, 1.0, 3.0}, {1.0, 2.0}, 2);
    EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
    EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(Als, RecoversLowRankMatrixFromSparseSample)
{
    // Build a rank-2 ground truth and observe 30% of it.
    const std::size_t rows = 12, cols = 40;
    Rng rng(3);
    std::vector<double> u(rows * 2), v(cols * 2);
    for (auto &x : u)
        x = rng.uniform(0.5, 1.5);
    for (auto &x : v)
        x = rng.uniform(0.5, 1.5);

    Matrix truth(rows, cols);
    MaskedMatrix observed(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            double val = u[r * 2] * v[c * 2] +
                         u[r * 2 + 1] * v[c * 2 + 1];
            truth.at(r, c) = val;
            if (rng.chance(0.3))
                observed.observe(r, c, val);
        }
    }

    AlsConfig cfg;
    cfg.rank = 2;
    cfg.lambda = 0.01;
    AlsModel model(observed, cfg);
    Matrix completed = model.complete(observed);
    EXPECT_LT(completed.rmse(truth), 0.25);
    EXPECT_LT(model.trainRmse(observed), 0.10);
}

TEST(Als, CompleteKeepsObservedValues)
{
    MaskedMatrix m(2, 2);
    m.observe(0, 0, 1.0);
    m.observe(1, 1, 2.0);
    AlsModel model(m);
    Matrix out = model.complete(m);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 2.0);
}

TEST(Als, PredictionsClampedToObservedRange)
{
    MaskedMatrix m(3, 3);
    m.observe(0, 0, 10.0);
    m.observe(1, 1, 20.0);
    m.observe(2, 2, 15.0);
    AlsModel model(m);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_GE(model.predict(r, c), 10.0);
            EXPECT_LE(model.predict(r, c), 20.0);
        }
}

TEST(AlsDeath, ConfigValidation)
{
    MaskedMatrix m(1, 1);
    m.observe(0, 0, 1.0);
    AlsConfig bad;
    bad.rank = 0;
    EXPECT_DEATH(AlsModel(m, bad), "rank");
}

// --- Sampler -----------------------------------------------------------------

class SamplerTest
    : public ::testing::TestWithParam<SamplingStrategy>
{
};

TEST_P(SamplerTest, AnchorsAlwaysIncludedAndBudgetMet)
{
    Sampler sampler(defaultPlatform(), GetParam());
    Rng rng(5);
    for (double frac : {0.02, 0.05, 0.10, 0.25}) {
        auto cols = sampler.select(frac, rng);
        // Budget: ceil(frac * 432), at least the anchor count.
        std::size_t budget = static_cast<std::size_t>(
            std::ceil(frac * static_cast<double>(
                                 sampler.columnCount())));
        budget = std::max(budget, sampler.anchors().size());
        EXPECT_EQ(cols.size(), budget);
        // Distinct, sorted, in range.
        std::set<std::size_t> unique(cols.begin(), cols.end());
        EXPECT_EQ(unique.size(), cols.size());
        EXPECT_LT(*cols.rbegin(), sampler.columnCount());
        // Anchors present.
        for (std::size_t a : sampler.anchors())
            EXPECT_TRUE(unique.count(a)) << "anchor " << a;
    }
}

TEST_P(SamplerTest, FullFractionCoversEverything)
{
    Sampler sampler(defaultPlatform(), GetParam());
    Rng rng(6);
    auto cols = sampler.select(1.0, rng);
    EXPECT_EQ(cols.size(), sampler.columnCount());
}

INSTANTIATE_TEST_SUITE_P(Strategies, SamplerTest,
                         ::testing::Values(SamplingStrategy::Random,
                                           SamplingStrategy::Stratified));

TEST(Sampler, EightCornerAnchors)
{
    Sampler sampler(defaultPlatform());
    EXPECT_EQ(sampler.anchors().size(), 8u);
}

// --- Profiler / Estimator ------------------------------------------------------

TEST(Profiler, NoiselessMeasurementMatchesModel)
{
    const auto &plat = defaultPlatform();
    Profiler prof(plat, 0.0);
    perf::PerfModel model(plat, perf::workload("kmeans"));
    Rng rng(1);
    Measurement m = prof.measureOne(model, 0, rng);
    perf::OperatingPoint op = model.evaluate(prof.settings()[0]);
    EXPECT_DOUBLE_EQ(m.power, op.totalPower());
    EXPECT_DOUBLE_EQ(m.hbRate, op.hbRate);
}

TEST(Estimator, ColumnIndexRoundTrips)
{
    const auto &plat = defaultPlatform();
    UtilityEstimator est(plat);
    for (std::size_t c = 0; c < est.columnCount(); c += 37) {
        EXPECT_EQ(est.columnOf(est.setting(c)), c);
    }
}

TEST(Estimator, MeasuredColumnsKeepMeasuredValues)
{
    const auto &plat = defaultPlatform();
    UtilityEstimator est(plat);
    std::vector<Measurement> samples = {
        {0, 12.0, 100.0}, {10, 14.0, 150.0}, {431, 20.0, 300.0}};
    UtilitySurface s = est.estimate(samples);
    EXPECT_DOUBLE_EQ(s.power[0], 12.0);
    EXPECT_DOUBLE_EQ(s.power[10], 14.0);
    EXPECT_DOUBLE_EQ(s.power[431], 20.0);
    EXPECT_NEAR(s.hbRate[10], 150.0, 1e-6);
    EXPECT_EQ(s.sampledColumns, 3u);
}

TEST(Estimator, CorpusManagement)
{
    const auto &plat = defaultPlatform();
    UtilityEstimator est(plat);
    std::vector<double> row(est.columnCount(), 10.0);
    est.addCorpusApp("alpha", row, row);
    EXPECT_TRUE(est.hasCorpusApp("alpha"));
    EXPECT_EQ(est.corpusSize(), 1u);
    EXPECT_DEATH(est.addCorpusApp("alpha", row, row),
                 "already contains");
    est.clearCorpus();
    EXPECT_EQ(est.corpusSize(), 0u);
}

TEST(Estimator, LeaveOneOutPredictsHeldOutAppWell)
{
    // Corpus: 11 apps fully profiled.  Estimate the 12th from 10%
    // samples; relative error should be small (the Fig. 7 result).
    const auto &plat = defaultPlatform();
    Profiler prof(plat, 0.0);
    Rng rng(17);
    UtilityEstimator est(plat);

    const std::string target = "facesim";
    std::vector<double> truth_p, truth_h;
    for (const auto &p : perf::workloadLibrary()) {
        perf::PerfModel model(plat, p);
        std::vector<double> pr, hr;
        prof.measureAll(model, pr, hr, rng);
        if (p.name == target) {
            truth_p = pr;
            truth_h = hr;
        } else {
            est.addCorpusApp(p.name, pr, hr);
        }
    }

    Sampler sampler(plat);
    auto cols = sampler.select(0.10, rng);
    perf::PerfModel model(plat, perf::workload(target));
    auto samples = prof.measure(model, cols, rng);
    UtilitySurface s = est.estimate(samples);

    double perr = 0.0, herr = 0.0;
    for (std::size_t c = 0; c < s.power.size(); ++c) {
        perr += std::abs(s.power[c] - truth_p[c]) / truth_p[c];
        herr += std::abs(s.hbRate[c] - truth_h[c]) / truth_h[c];
    }
    perr /= static_cast<double>(s.power.size());
    herr /= static_cast<double>(s.power.size());
    EXPECT_LT(perr, 0.06);
    EXPECT_LT(herr, 0.12);
}

// --- Cross validation -------------------------------------------------------

TEST(CrossValidation, ErrorShrinksWithMoreSamples)
{
    CvConfig cv;
    cv.measurementNoise = 0.0;
    auto coarse = crossValidate(defaultPlatform(),
                                perf::workloadLibrary(), 0.03, cv);
    auto fine = crossValidate(defaultPlatform(),
                              perf::workloadLibrary(), 0.40, cv);
    EXPECT_EQ(coarse.heldOutApps, 12u);
    EXPECT_GT(coarse.perfRelError, 0.0);
    EXPECT_LT(fine.perfRelError, coarse.perfRelError);
    EXPECT_LE(fine.powerUnderPrediction,
              coarse.powerUnderPrediction + 0.01);
}

TEST(CrossValidation, SweepCoversRequestedFractions)
{
    CvConfig cv;
    auto results = sweepSamplingFractions(
        defaultPlatform(), perf::workloadLibrary(), {0.05, 0.10}, cv);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_DOUBLE_EQ(results[0].sampleFraction, 0.05);
    EXPECT_DOUBLE_EQ(results[1].sampleFraction, 0.10);
}

} // namespace
} // namespace psm::cf
