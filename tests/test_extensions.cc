/**
 * @file
 * Tests for the extension modules: trace CSV I/O, the latency (QoS)
 * model and the cluster job scheduler.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cluster/power_trace.hh"
#include "core/manager.hh"
#include "cluster/scheduler.hh"
#include "perf/latency.hh"
#include "perf/workloads.hh"

namespace psm
{
namespace
{

// --- Trace CSV I/O -----------------------------------------------------

class TraceCsvTest : public ::testing::Test
{
  protected:
    std::string path = ::testing::TempDir() + "psm_trace_test.csv";

    void TearDown() override { std::remove(path.c_str()); }
};

TEST_F(TraceCsvTest, RoundTripsThroughCsv)
{
    cluster::TraceConfig cfg;
    cfg.points = 16;
    cluster::PowerTrace original =
        cluster::generateDiurnalDemand(cfg);
    cluster::saveTraceCsv(original, path);
    cluster::PowerTrace loaded = cluster::loadTraceCsv(path);

    EXPECT_EQ(loaded.interval, original.interval);
    ASSERT_EQ(loaded.values.size(), original.values.size());
    for (std::size_t i = 0; i < loaded.values.size(); ++i)
        EXPECT_NEAR(loaded.values[i], original.values[i], 1e-4);
}

TEST_F(TraceCsvTest, LoadsHeaderlessFiles)
{
    std::ofstream out(path);
    out << "0,100\n10,200\n20,300\n";
    out.close();
    cluster::PowerTrace t = cluster::loadTraceCsv(path);
    EXPECT_EQ(t.interval, toTicks(10.0));
    EXPECT_DOUBLE_EQ(t.values[2], 300.0);
}

TEST_F(TraceCsvTest, RejectsNonUniformSpacing)
{
    std::ofstream out(path);
    out << "0,100\n10,200\n15,300\n";
    out.close();
    EXPECT_DEATH(cluster::loadTraceCsv(path), "uniformly spaced");
}

TEST_F(TraceCsvTest, RejectsMissingAndMalformedFiles)
{
    EXPECT_DEATH(cluster::loadTraceCsv("/nonexistent/trace.csv"),
                 "cannot read");
    std::ofstream out(path);
    out << "watts only\nnot,numbers,here\n";
    out.close();
    EXPECT_DEATH(cluster::loadTraceCsv(path), "");
}

// --- Latency model -------------------------------------------------------

TEST(LatencyModel, KnownValues)
{
    using perf::LatencyModel;
    // mu = 100/s, lambda = 50/s: mean = 20 ms.
    EXPECT_NEAR(LatencyModel::meanSojourn(100.0, 50.0), 0.02, 1e-12);
    EXPECT_NEAR(LatencyModel::utilization(100.0, 50.0), 0.5, 1e-12);
    // p99 = ln(100) * mean ~ 92 ms.
    EXPECT_NEAR(LatencyModel::p99(100.0, 50.0),
                0.02 * std::log(100.0), 1e-12);
}

TEST(LatencyModel, UnstableQueueIsInfinite)
{
    using perf::LatencyModel;
    EXPECT_EQ(LatencyModel::meanSojourn(100.0, 100.0),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::p99(50.0, 80.0), LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::utilization(0.0, 10.0),
              LatencyModel::unstable);
}

TEST(LatencyModel, OutOfDomainInputsReturnSentinel)
{
    using perf::LatencyModel;
    double nan = std::nan("");
    // The sentinel contract is uniform: negative rates, NaNs and
    // non-positive SLOs all answer `unstable`, never an assert.
    EXPECT_EQ(LatencyModel::utilization(-1.0, 10.0),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::utilization(10.0, -1.0),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::utilization(nan, 10.0),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::meanSojourn(-5.0, 1.0),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::meanSojourn(100.0, nan),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::p99(nan, nan), LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::requiredRateForSlo(100.0, 0.0),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::requiredRateForSlo(100.0, -0.1),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::requiredRateForSlo(-1.0, 0.1),
              LatencyModel::unstable);
    EXPECT_EQ(LatencyModel::requiredRateForSlo(100.0, nan),
              LatencyModel::unstable);
}

TEST(LatencyModel, ZeroLoadIsServiceTimeOnly)
{
    using perf::LatencyModel;
    // Valid boundary inputs still answer normally.
    EXPECT_NEAR(LatencyModel::meanSojourn(100.0, 0.0), 0.01, 1e-12);
    EXPECT_NEAR(LatencyModel::utilization(100.0, 0.0), 0.0, 1e-12);
}

TEST(LatencyModel, RequiredRateInvertsP99)
{
    using perf::LatencyModel;
    double lambda = 120.0;
    double slo = 0.050; // 50 ms p99
    double mu = LatencyModel::requiredRateForSlo(lambda, slo);
    EXPECT_GT(mu, lambda);
    EXPECT_NEAR(LatencyModel::p99(mu, lambda), slo, 1e-9);
}

TEST(LatencyModel, TailDegradesGracefullyTowardSaturation)
{
    using perf::LatencyModel;
    double prev = 0.0;
    for (double lambda = 10.0; lambda < 100.0; lambda += 10.0) {
        double p = LatencyModel::p99(100.0, lambda);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

// --- Cluster job scheduler ------------------------------------------------

TEST(ClusterScheduler, RunsAGeneratedWorkloadToCompletion)
{
    cluster::SchedulerConfig cfg;
    cfg.servers = 2;
    cfg.serverCap = 100.0;
    cluster::ClusterScheduler sched(cfg);
    sched.generateWorkload(6, 5.0, 15.0);
    ASSERT_EQ(sched.jobs().size(), 6u);
    sched.run(toTicks(600.0));

    EXPECT_EQ(sched.unfinished(), 0u);
    for (const auto &job : sched.jobs()) {
        EXPECT_TRUE(job.done());
        EXPECT_GE(job.started, job.arrival);
        EXPECT_GT(job.finished, job.started);
        EXPECT_GE(job.server, 0);
    }
    EXPECT_GT(sched.meanCompletionSeconds(), 0.0);
    EXPECT_GE(sched.p95CompletionSeconds(),
              sched.meanCompletionSeconds());
    EXPECT_GT(sched.averageClusterPower(),
              power::defaultPlatform().idlePower);
}

TEST(ClusterScheduler, QueuesWhenSocketsAreBusy)
{
    cluster::SchedulerConfig cfg;
    cfg.servers = 1; // two sockets total
    cluster::ClusterScheduler sched(cfg);
    // Three long jobs arriving at once: the third must queue.
    for (int i = 0; i < 3; ++i) {
        cluster::Job job;
        job.profile = perf::workload(
            i == 0 ? "kmeans" : (i == 1 ? "x264" : "bfs"));
        job.profile.totalHeartbeats /= 8.0;
        job.arrival = 0;
        sched.submit(std::move(job));
    }
    sched.run(toTicks(120.0));
    // The queued job started strictly later than its arrival.
    const auto &third = sched.jobs()[2];
    EXPECT_TRUE(third.done());
    EXPECT_GT(third.started, third.arrival);
}

TEST(ClusterScheduler, PlacementPolicyNames)
{
    EXPECT_EQ(cluster::placementPolicyName(
                  cluster::PlacementPolicy::FirstFit),
              "FirstFit");
    EXPECT_EQ(cluster::placementPolicyName(
                  cluster::PlacementPolicy::PowerHeadroom),
              "PowerHeadroom");
}

TEST(ClusterScheduler, HeadroomPlacementAvoidsTheLoadedServer)
{
    // Two servers under a tight cap: one already hosts a heavy app.
    // The power-aware policy should place the next job on the idle
    // server even though the loaded one is first-fit eligible.
    for (auto policy : {cluster::PlacementPolicy::FirstFit,
                        cluster::PlacementPolicy::PowerHeadroom}) {
        cluster::SchedulerConfig cfg;
        cfg.servers = 2;
        cfg.serverCap = 92.0;
        cfg.placement = policy;
        cluster::ClusterScheduler sched(cfg);

        cluster::Job first;
        first.profile = perf::workload("kmeans");
        first.profile.totalHeartbeats *= 10.0; // effectively endless
        first.arrival = 0;
        sched.submit(std::move(first));

        cluster::Job second;
        second.profile = perf::workload("stream");
        second.profile.totalHeartbeats *= 10.0;
        second.arrival = toTicks(10.0);
        sched.submit(std::move(second));

        sched.run(toTicks(20.0));
        const auto &jobs = sched.jobs();
        ASSERT_EQ(jobs[0].server, 0);
        if (policy == cluster::PlacementPolicy::PowerHeadroom) {
            // Server 1 is idle (50 W draw vs ~75 W on server 0).
            EXPECT_EQ(jobs[1].server, 1);
        } else {
            EXPECT_EQ(jobs[1].server, 0);
        }
    }
}


// --- PC6 residency and chemistry variants --------------------------------

TEST(Pc6Residency, SleepTimeAndWakesAreAccounted)
{
    sim::Server server;
    int id = server.admit(perf::workload("kmeans"));
    server.run(toTicks(1.0));
    EXPECT_EQ(server.packageSleepTime(), 0u);

    server.app(id).suspend(server.now());
    server.run(toTicks(2.0));
    EXPECT_NEAR(toSeconds(server.packageSleepTime()), 2.0, 0.05);

    std::size_t wakes_before = server.packageWakeCount();
    server.app(id).resume(server.now());
    server.run(toTicks(1.0));
    EXPECT_EQ(server.packageWakeCount(), wakes_before + 1);
    // Sleep time stops accumulating once active again.
    EXPECT_NEAR(toSeconds(server.packageSleepTime()), 2.0, 0.05);
}

TEST(Pc6Residency, EsdModeSleepsDuringChargePhases)
{
    sim::Server server;
    server.attachEsd(esd::leadAcidUps());
    server.setCap(80.0);
    core::ManagerConfig cfg;
    cfg.policy = core::PolicyKind::AppResEsdAware;
    core::ServerManager manager(server, cfg);
    manager.seedCorpus(perf::workloadLibrary());
    manager.addApp(perf::workload("stream"));
    manager.addApp(perf::workload("kmeans"));
    manager.run(toTicks(30.0));

    // Consolidated duty cycling spends the OFF fraction in PC6 and
    // wakes once per cycle.
    double sleep_frac = toSeconds(server.packageSleepTime()) /
                        toSeconds(server.now());
    EXPECT_GT(sleep_frac, 0.3);
    EXPECT_LT(sleep_frac, 0.8);
    EXPECT_GT(server.packageWakeCount(), 5u);
}

TEST(BatteryChemistry, LiIonBeatsLeadAcidPerEqFive)
{
    // Higher round-trip efficiency shrinks the Eq. 5 OFF fraction.
    esd::BatteryConfig lead = esd::leadAcidUps();
    esd::BatteryConfig li = esd::liIonPack();
    EXPECT_GT(li.roundTripEfficiency(),
              lead.roundTripEfficiency() + 0.1);
    EXPECT_NO_FATAL_FAILURE(li.validate());

    auto throughput = [](const esd::BatteryConfig &bat) {
        sim::Server server;
        server.attachEsd(bat);
        server.setCap(75.0);
        core::ManagerConfig cfg;
        cfg.policy = core::PolicyKind::AppResEsdAware;
        core::ServerManager manager(server, cfg);
        manager.seedCorpus(perf::workloadLibrary());
        manager.addApp(perf::workload("stream"));
        manager.addApp(perf::workload("kmeans"));
        manager.run(toTicks(30.0));
        return manager.serverNormalizedThroughput();
    };
    EXPECT_GT(throughput(li), throughput(lead) * 1.05);
}

} // namespace
} // namespace psm
