/**
 * @file
 * Tests for the policy arena's rival planners: FastCap's max-min
 * fair capping and CuttleSys's data-driven local search.  Both must
 * conserve the budget at every operating point, fall through the
 * selector ladder when even the floor does not fit, and replan
 * deterministically (capture replay depends on it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cf/profiler.hh"
#include "core/plan_selector.hh"
#include "core/policy_cuttlesys.hh"
#include "core/policy_fastcap.hh"
#include "core/policy_registry.hh"
#include "core/telemetry.hh"
#include "perf/perf_model.hh"
#include "perf/workloads.hh"
#include "util/random.hh"

namespace psm::core
{
namespace
{

using power::defaultPlatform;

class ArenaPlannerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto &plat = defaultPlatform();
        settings = plat.knobSpace();
        cf::Profiler prof(plat, 0.0);
        Rng rng(1);
        for (const char *name :
             {"stream", "kmeans", "pagerank", "x264"}) {
            perf::PerfModel model(plat, perf::workload(name));
            std::vector<double> p, h;
            prof.measureAll(model, p, h, rng);
            curves.push_back(std::make_unique<UtilityCurve>(
                name, settings,
                cf::UtilityEstimator::surfaceFromRows(p, h),
                KnobFreedom::All));
        }
        for (const auto &c : curves)
            ptrs.push_back(c.get());
    }

    SpatialPlanner::Context
    ctx(Telemetry *tel = nullptr)
    {
        return SpatialPlanner::Context{defaultPlatform(), alloc_cfg,
                                       tel};
    }

    Watts
    floorTotal() const
    {
        Watts total = 0.0;
        for (const auto &c : curves)
            total += c->minPower();
        return total;
    }

    /** Minimum achieved perfNorm across scheduled apps. */
    static double
    minPerf(const Allocation &alloc)
    {
        double lo = std::numeric_limits<double>::infinity();
        for (const AppAllocation &a : alloc.apps)
            if (a.scheduled())
                lo = std::min(lo, a.point->perfNorm);
        return lo;
    }

    std::vector<power::KnobSetting> settings;
    std::vector<std::unique_ptr<UtilityCurve>> curves;
    std::vector<const UtilityCurve *> ptrs;
    AllocatorConfig alloc_cfg;
};

TEST_F(ArenaPlannerTest, FastCapConservesEveryBudget)
{
    FastCapPlanner planner;
    for (double budget = 5.0; budget <= 160.0; budget += 2.5) {
        Allocation alloc = planner.plan(ptrs, budget, ctx());
        EXPECT_LE(alloc.used, budget + 1e-6) << "budget " << budget;
        if (budget >= floorTotal() + 1e-6) {
            EXPECT_TRUE(alloc.allScheduled()) << "budget " << budget;
        }
    }
}

TEST_F(ArenaPlannerTest, FastCapInfeasibleFloorFallsThrough)
{
    FastCapPlanner planner;
    Allocation alloc =
        planner.plan(ptrs, 0.5 * floorTotal(), ctx());
    // At least one app must stay unscheduled so the PlanSelector
    // takes the temporal/fair-RAPL fallback ladder instead.
    EXPECT_FALSE(alloc.allScheduled());
    EXPECT_LE(alloc.used, 0.5 * floorTotal() + 1e-6);
}

TEST_F(ArenaPlannerTest, FastCapIsMaxMinOptimalOnTheLadder)
{
    FastCapPlanner planner;
    for (double budget : {40.0, 60.0, 80.0, 100.0, 120.0}) {
        if (budget < floorTotal())
            continue;
        Allocation alloc = planner.plan(ptrs, budget, ctx());
        ASSERT_TRUE(alloc.allScheduled());
        double achieved = minPerf(alloc);

        // No uniform level strictly above the achieved minimum can
        // fit the budget: the cost of lifting every app to the next
        // distinct ladder level (capped at its own ceiling) exceeds
        // it.  Apps already at their own maximum are exempt — they
        // cannot be lifted and do not bound the shared level.
        double next = std::numeric_limits<double>::infinity();
        for (const UtilityCurve *c : ptrs)
            for (const UtilityPoint &p : c->points())
                if (p.perfNorm > achieved + 1e-12)
                    next = std::min(next, p.perfNorm);
        if (!std::isfinite(next))
            continue; // everyone is flat out
        Watts cost = 0.0;
        bool anyone_lifted = false;
        for (const UtilityCurve *c : ptrs) {
            const auto &pts = c->points();
            auto it = std::lower_bound(
                pts.begin(), pts.end(), next,
                [](const UtilityPoint &p, double l) {
                    return p.perfNorm < l;
                });
            if (it == pts.end()) {
                cost += pts.back().power; // own ceiling
            } else {
                cost += it->power;
                if (it->perfNorm > achieved + 1e-12)
                    anyone_lifted = true;
            }
        }
        if (anyone_lifted) {
            EXPECT_GT(cost, budget - 1e-6)
                << "level " << next << " above min " << achieved
                << " was affordable at budget " << budget;
        }
    }
}

TEST_F(ArenaPlannerTest, FastCapMinPerfMonotoneInBudget)
{
    FastCapPlanner planner;
    double prev = 0.0;
    for (double budget = floorTotal(); budget <= 150.0;
         budget += 5.0) {
        Allocation alloc = planner.plan(ptrs, budget, ctx());
        ASSERT_TRUE(alloc.allScheduled());
        double lo = minPerf(alloc);
        EXPECT_GE(lo, prev - 1e-9) << "budget " << budget;
        prev = lo;
    }
}

TEST_F(ArenaPlannerTest, CuttleSysConservesEveryBudget)
{
    CuttleSysPlanner planner;
    for (double budget = 5.0; budget <= 160.0; budget += 2.5) {
        Allocation alloc = planner.plan(ptrs, budget, ctx());
        EXPECT_LE(alloc.used, budget + 1e-6) << "budget " << budget;
        if (budget >= floorTotal() + 1e-6) {
            EXPECT_TRUE(alloc.allScheduled()) << "budget " << budget;
        }
    }
}

TEST_F(ArenaPlannerTest, CuttleSysDeterministicAcrossInstances)
{
    // Two fresh planners fed the identical call sequence (including
    // a budget shrink that exercises warm start + repair) must agree
    // bit-for-bit; capture replay rebuilds planners from scratch.
    CuttleSysPlanner a, b;
    for (double budget : {120.0, 120.0, 70.0, 95.0, 40.0}) {
        Allocation pa = a.plan(ptrs, budget, ctx());
        Allocation pb = b.plan(ptrs, budget, ctx());
        ASSERT_EQ(pa.apps.size(), pb.apps.size());
        EXPECT_EQ(pa.used, pb.used) << "budget " << budget;
        EXPECT_EQ(pa.objective, pb.objective);
        for (std::size_t i = 0; i < pa.apps.size(); ++i) {
            ASSERT_EQ(pa.apps[i].scheduled(),
                      pb.apps[i].scheduled());
            if (pa.apps[i].scheduled()) {
                EXPECT_EQ(pa.apps[i].point->power,
                          pb.apps[i].point->power);
                EXPECT_EQ(pa.apps[i].point->perfNorm,
                          pb.apps[i].point->perfNorm);
            }
        }
    }
}

TEST_F(ArenaPlannerTest, CuttleSysWarmStartsOnRepeatedAppSet)
{
    Telemetry tel;
    CuttleSysPlanner planner;
    planner.plan(ptrs, 100.0, ctx(&tel));
    EXPECT_EQ(
        tel.counter(trace::EventId::PolicyCuttlesysWarmStarts), 0u);
    Allocation warm = planner.plan(ptrs, 100.0, ctx(&tel));
    EXPECT_EQ(
        tel.counter(trace::EventId::PolicyCuttlesysWarmStarts), 1u);
    // The warm-started replan of an unchanged problem matches the
    // cold plan of a fresh instance.
    CuttleSysPlanner cold;
    cold.plan(ptrs, 100.0, ctx());
    Allocation fresh = cold.plan(ptrs, 100.0, ctx());
    EXPECT_EQ(warm.used, fresh.used);
    EXPECT_EQ(warm.objective, fresh.objective);
}

TEST_F(ArenaPlannerTest, CuttleSysSearchNearsDpObjective)
{
    // The local search trades exactness for cheap warm-started
    // replans; it must still land near the DP optimum.
    CuttleSysPlanner planner;
    PowerAllocator dp;
    for (double budget : {50.0, 80.0, 110.0, 140.0}) {
        Allocation search = planner.plan(ptrs, budget, ctx());
        Allocation exact = dp.allocate(ptrs, budget);
        if (!exact.allScheduled() || !search.allScheduled())
            continue;
        EXPECT_GE(search.objective, 0.9 * exact.objective)
            << "budget " << budget;
    }
}

TEST_F(ArenaPlannerTest, SelectorRoutesRegistryPlanners)
{
    // The PlanSelector must dispatch registry policies with planner
    // factories to those planners (counted via their trace events)
    // and still enforce conservation end to end.
    for (PolicyKind kind :
         {PolicyKind::FastCapFair, PolicyKind::CuttleSysSearch}) {
        Telemetry tel;
        PlanSelector selector(defaultPlatform(), AllocatorConfig{},
                              &tel);
        PlanInputs in;
        in.policy = kind;
        in.cap = 100.0;
        in.budget = 100.0;
        in.curves = ptrs;
        in.appCount = ptrs.size();
        PlanDecision d = selector.select(in);
        EXPECT_EQ(d.choice, PlanChoice::SpatialUtility);
        EXPECT_LE(d.alloc.used, in.budget + 1e-6);
        trace::EventId counter =
            kind == PolicyKind::FastCapFair
                ? trace::EventId::PolicyFastcapPlans
                : trace::EventId::PolicyCuttlesysPlans;
        EXPECT_GE(tel.counter(counter), 1u);
    }
}

} // namespace
} // namespace psm::core
